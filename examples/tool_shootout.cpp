//===- examples/tool_shootout.cpp - Compare all tools on one subject ------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs pFuzzer, AFL, KLEE and the random baseline on one subject and
/// prints a side-by-side comparison: coverage, valid inputs, tokens by
/// length. A one-subject slice of the paper's evaluation.
///
///   ./tool_shootout [--subject=tinyc] [--execs=N] [--seed=N] [--jobs=N]
///
//===----------------------------------------------------------------------===//

#include "eval/Campaign.h"
#include "eval/TableWriter.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace pfuzz;

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  std::string SubjectName = Cli.getString("subject", "tinyc");
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 20000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  int Jobs = static_cast<int>(Cli.getInt("jobs", 1));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    std::fprintf(stderr, "usage: tool_shootout [--subject=NAME]"
                         " [--execs=N] [--seed=N] [--jobs=N]\n");
    return 1;
  }
  const Subject *S = findSubject(SubjectName);
  if (S == nullptr) {
    std::fprintf(stderr, "error: unknown subject '%s' (try: ini csv json"
                         " tinyc mjs arith)\n",
                 SubjectName.c_str());
    return 1;
  }

  std::printf("Shootout on subject '%s', %llu executions per tool\n\n",
              SubjectName.c_str(),
              static_cast<unsigned long long>(Execs));
  const TokenInventory &Inv = TokenInventory::forSubject(SubjectName);
  TableWriter Table({"Tool", "Coverage %", "Valid inputs", "Tokens",
                     "Long tokens", "Longest input", "Execs/s"});
  std::vector<CampaignCell> Grid;
  for (ToolKind Kind : {ToolKind::Random, ToolKind::Afl, ToolKind::Klee,
                        ToolKind::PFuzzer})
    Grid.push_back({Kind, S, Execs});
  std::vector<CampaignResult> Results = runCampaignGrid(Grid, Seed, 1, Jobs);
  for (const CampaignResult &R : Results) {
    ToolKind Kind = R.Tool;
    uint32_t Long = 0;
    for (const std::string &Tok : R.TokensFound)
      if (Inv.lengthOf(Tok) > 3)
        ++Long;
    std::string Longest;
    for (const std::string &I : R.Report.ValidInputs)
      if (I.size() > Longest.size())
        Longest = I;
    Table.addRow({std::string(toolName(Kind)),
                  formatDouble(R.coverageRatio(*S) * 100, 1),
                  std::to_string(R.Report.ValidInputs.size()),
                  std::to_string(R.TokensFound.size()) + "/" +
                      std::to_string(Inv.size()),
                  std::to_string(Long),
                  escapeString(Longest).substr(0, 32),
                  formatExecsPerSec(R.TotalExecutions, R.WallSeconds)});
  }
  Table.print(stdout);
  std::printf("\nTry --subject=mjs to watch KLEE hit path explosion, or"
              " --subject=csv\nto watch AFL shine on a shallow format.\n");
  return 0;
}
