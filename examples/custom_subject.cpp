//===- examples/custom_subject.cpp - Bring your own parser ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows how to put *your own* parser under pFuzzer: implement Subject,
/// read input through the ExecutionContext, and route comparisons through
/// the instrumentation macros (the moral equivalent of compiling your C
/// program with the paper's LLVM pass).
///
/// The example parser accepts a tiny network-message language:
///
///   message ::= ("GET" | "PUT") " " path ["?" digits] <end>
///   path    ::= "/" [a-z]+ ("/" [a-z]+)*
///
/// Watch pFuzzer synthesise GET/PUT via the wrapped strcmp and grow valid
/// paths — no grammar, no seed inputs.
///
///   ./custom_subject [--execs=N] [--seed=N]
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "runtime/Instrument.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace pfuzz;

PF_INSTRUMENT_BEGIN()

namespace {

/// The user-supplied parser: a recursive-descent "message" parser.
class MessageParser {
public:
  explicit MessageParser(ExecutionContext &Ctx) : Ctx(Ctx) {}

  int parse() {
    PF_FUNC(Ctx);
    // Method: a 3-letter word compared via the wrapped strcmp.
    TString Method;
    for (int I = 0; I < 3; ++I) {
      TChar C = Ctx.peekChar(I);
      if (PF_BR(Ctx, C.isEof()))
        break;
      Method.push_back(C);
    }
    bool IsGet = Ctx.cmpStr(Method, "GET");
    bool IsPut = Ctx.cmpStr(Method, "PUT");
    if (PF_BR(Ctx, !IsGet && !IsPut))
      return 1;
    for (int I = 0; I < 3; ++I)
      Ctx.nextChar();
    if (!PF_IF_EQ(Ctx, Ctx.peekChar(), ' '))
      return 1;
    Ctx.nextChar();
    if (PF_BR(Ctx, !parsePath()))
      return 1;
    // Optional query: "?" digits.
    if (PF_IF_EQ(Ctx, Ctx.peekChar(), '?')) {
      Ctx.nextChar();
      if (!PF_IF_RANGE(Ctx, Ctx.peekChar(), '0', '9'))
        return 1;
      while (PF_IF_RANGE(Ctx, Ctx.peekChar(), '0', '9'))
        Ctx.nextChar();
    }
    if (PF_BR(Ctx, !Ctx.peekChar().isEof()))
      return 1;
    return 0;
  }

private:
  bool parsePath() {
    PF_FUNC(Ctx);
    if (!PF_IF_EQ(Ctx, Ctx.peekChar(), '/'))
      return false;
    while (PF_IF_EQ(Ctx, Ctx.peekChar(), '/')) {
      Ctx.nextChar();
      if (!PF_IF_RANGE(Ctx, Ctx.peekChar(), 'a', 'z'))
        return false;
      while (PF_IF_RANGE(Ctx, Ctx.peekChar(), 'a', 'z'))
        Ctx.nextChar();
    }
    return true;
  }

  ExecutionContext &Ctx;
};

} // namespace

PF_INSTRUMENT_END(MessageNumBranchSites)

namespace {

class MessageSubject final : public Subject {
public:
  std::string_view name() const override { return "message"; }
  uint32_t numBranchSites() const override { return MessageNumBranchSites; }
  int run(ExecutionContext &Ctx) const override {
    return MessageParser(Ctx).parse();
  }
};

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 15000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    std::fprintf(stderr, "usage: custom_subject [--execs=N] [--seed=N]\n");
    return 1;
  }

  MessageSubject S;
  std::printf("Custom subject: %u branch sites registered by the"
              " instrumentation.\n",
              S.numBranchSites());
  std::printf("Sanity: accepts(\"GET /a\") = %d, accepts(\"POST /a\") ="
              " %d\n\n",
              S.accepts("GET /a"), S.accepts("POST /a"));

  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  FuzzReport R = Tool.run(S, Opts);

  std::printf("pFuzzer discovered %zu valid messages in %llu"
              " executions:\n",
              R.ValidInputs.size(),
              static_cast<unsigned long long>(R.Executions));
  size_t Shown = 0;
  for (const std::string &Input : R.ValidInputs) {
    std::printf("  %s\n", escapeString(Input).c_str());
    if (++Shown == 15 && R.ValidInputs.size() > 15) {
      std::printf("  ... and %zu more\n", R.ValidInputs.size() - 15);
      break;
    }
  }
  bool SawGet = false, SawPut = false, SawQuery = false;
  for (const std::string &I : R.ValidInputs) {
    SawGet |= I.find("GET") != std::string::npos;
    SawPut |= I.find("PUT") != std::string::npos;
    SawQuery |= I.find('?') != std::string::npos;
  }
  std::printf("\nsynthesised GET: %s, PUT: %s, query strings: %s\n",
              SawGet ? "yes" : "no", SawPut ? "yes" : "no",
              SawQuery ? "yes" : "no");
  return 0;
}
