//===- examples/pfuzz_cli.cpp - Command-line fuzzing driver ---------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pFuzzer-style command-line driver: run any tool against any built-in
/// subject, print the valid inputs as they are found (as the paper's
/// prototype does), and finish with coverage, token and timeline
/// statistics. Also exposes the mined-grammar pipeline via --mine.
///
///   ./pfuzz_cli --subject=json [--tool=pfuzzer|afl|klee|random]
///               [--execs=N] [--seed=N] [--runs=N] [--jobs=N]
///               [--shards=N] [--shard-sync=N] [--shard-stats]
///               [--telemetry=FILE] [--heartbeat=N] [--telemetry-stats]
///               [--list-subjects] [--mine] [--quiet]
///
//===----------------------------------------------------------------------===//

#include "eval/Campaign.h"
#include "eval/TableWriter.h"
#include "mining/MiningPipeline.h"
#include "support/CommandLine.h"
#include "support/Scheduler.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "tokens/TokenCoverage.h"

#include <cstdio>

using namespace pfuzz;

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  std::string SubjectName = Cli.getString("subject", "json");
  std::string ToolName = Cli.getString("tool", "pfuzzer");
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 50000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  int Runs = static_cast<int>(Cli.getInt("runs", 1));
  int Jobs = static_cast<int>(Cli.getCount("jobs", 1));
  ToolOptions Tools;
  Tools.PFuzzerRunCache =
      static_cast<uint32_t>(Cli.getCount("run-cache", Tools.PFuzzerRunCache));
  Tools.PFuzzerSpeculation = static_cast<int>(
      Cli.getCount("speculate", Tools.PFuzzerSpeculation, /*Min=*/-1));
  Tools.PFuzzerSpeculationDepth = static_cast<uint32_t>(
      Cli.getCount("speculate-depth", Tools.PFuzzerSpeculationDepth));
  Tools.PFuzzerResumeCache = static_cast<uint32_t>(
      Cli.getCount("resume-cache", Tools.PFuzzerResumeCache));
  Tools.PFuzzerResumeStride = static_cast<uint32_t>(
      Cli.getCount("resume-stride", Tools.PFuzzerResumeStride));
  Tools.PFuzzerResumeRungs = static_cast<uint32_t>(
      Cli.getCount("resume-rungs", Tools.PFuzzerResumeRungs));
  // --locality is a switch with a tuned default batch size; the exact
  // size is a wall-clock knob, never a behavior one.
  Tools.PFuzzerLocality = Cli.getBool("locality", false) ? 64 : 0;
  Tools.PFuzzerMaxQueue =
      static_cast<size_t>(Cli.getCount("max-queue", Tools.PFuzzerMaxQueue));
  // getCount with Min=1 rejects 0, negatives and garbage outright —
  // a campaign always has at least one shard.
  Tools.PFuzzerShards = static_cast<uint32_t>(
      Cli.getCount("shards", Tools.PFuzzerShards, /*Min=*/1));
  Tools.PFuzzerShardSyncInterval = static_cast<uint32_t>(
      Cli.getCount("shard-sync", Tools.PFuzzerShardSyncInterval));
  bool ShardStatsFlag = Cli.getBool("shard-stats", false);
  std::string TelemetryPath = Cli.getString("telemetry", "");
  // Interval in executions between heartbeat records; the default keeps
  // the stream small even on long campaigns.
  uint64_t HeartbeatEvery = static_cast<uint64_t>(
      Cli.getCount("heartbeat", 4096, /*Min=*/1));
  bool TelemetryStatsFlag = Cli.getBool("telemetry-stats", false);
  bool ListSubjects = Cli.getBool("list-subjects", false);
  bool LocalityStatsFlag = Cli.getBool("locality-stats", false);
  bool SchedStatsFlag = Cli.getBool("sched-stats", false);
  bool QueueStatsFlag = Cli.getBool("queue-stats", false);
  bool Mine = Cli.getBool("mine", false);
  bool Quiet = Cli.getBool("quiet", false);
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    for (const std::string &Err : Cli.errors())
      std::fprintf(stderr, "error: %s\n", Err.c_str());
    for (const std::string &Flag : Cli.unqueried())
      std::fprintf(stderr, "error: unknown flag --%s\n", Flag.c_str());
    std::fprintf(stderr,
                 "usage: pfuzz_cli [--subject=NAME] [--tool=NAME]"
                 " [--execs=N] [--seed=N] [--runs=N] [--jobs=N]"
                 " [--run-cache=N] [--resume-cache=N] [--resume-stride=N]"
                 " [--resume-rungs=N] [--locality] [--locality-stats]"
                 " [--speculate=N] [--speculate-depth=N] [--sched-stats]"
                 " [--max-queue=N] [--queue-stats] [--shards=N]"
                 " [--shard-sync=N] [--shard-stats] [--telemetry=FILE]"
                 " [--heartbeat=N] [--telemetry-stats] [--list-subjects]"
                 " [--mine] [--quiet]\n"
                 "subjects: arith dyck ini csv json tinyc mjs\n"
                 "tools: pfuzzer afl klee random\n"
                 "--run-cache: pFuzzer memoized-run LRU entries (0=off;"
                 " results are identical at any value)\n"
                 "--resume-cache: pFuzzer prefix-resumption checkpoints"
                 " (0=off; results are identical at any value)\n"
                 "--resume-stride: checkpoint-ladder byte stride (0 = only"
                 " past-end checkpoints; identical results at any value)\n"
                 "--resume-rungs: ladder checkpoints per run\n"
                 "--locality: pre-execute the equal-score queue front in"
                 " prefix order (identical results on or off)\n"
                 "--locality-stats: print locality-scheduler counters\n"
                 "--speculate: pFuzzer prefetch hint per campaign"
                 " (0=off, -1=auto; results are identical at any value)\n"
                 "--speculate-depth: candidates kept in flight (0=auto)\n"
                 "--sched-stats: print work-stealing scheduler counters\n"
                 "--max-queue: candidate-queue cap (0 = default; unlike"
                 " the knobs above this one changes which candidates"
                 " survive trims)\n"
                 "--queue-stats: print candidate-store counters (queue"
                 " memory, rescore time)\n"
                 "--shards: concurrent pFuzzer shard loops (>= 1; shards=1"
                 " matches the unsharded engine byte for byte, N > 1 is a"
                 " deterministic sharded search)\n"
                 "--shard-sync: executions per coverage-sync epoch\n"
                 "--shard-stats: print shard-sync counters\n"
                 "--telemetry: stream heartbeat NDJSON records to FILE"
                 " (observational only; results are identical with or"
                 " without)\n"
                 "--heartbeat: executions between heartbeat records\n"
                 "--telemetry-stats: print the consolidated telemetry"
                 " snapshot\n"
                 "--list-subjects: print the built-in subject names and"
                 " exit\n");
    return 1;
  }
  if (ListSubjects) {
    for (const Subject *Sub : allSubjects())
      std::printf("%.*s\n", static_cast<int>(Sub->name().size()),
                  Sub->name().data());
    return 0;
  }
  const Subject *S = findSubject(SubjectName);
  if (S == nullptr) {
    std::fprintf(stderr, "error: unknown subject '%s'\n",
                 SubjectName.c_str());
    return 1;
  }
  ToolKind Kind;
  if (ToolName == "pfuzzer")
    Kind = ToolKind::PFuzzer;
  else if (ToolName == "afl")
    Kind = ToolKind::Afl;
  else if (ToolName == "klee")
    Kind = ToolKind::Klee;
  else if (ToolName == "random")
    Kind = ToolKind::Random;
  else {
    std::fprintf(stderr, "error: unknown tool '%s'\n", ToolName.c_str());
    return 1;
  }

  HeartbeatEmitter Heartbeat;
  if (!TelemetryPath.empty()) {
    if (!Heartbeat.open(TelemetryPath, HeartbeatEvery)) {
      std::fprintf(stderr, "error: cannot open telemetry file '%s'\n",
                   TelemetryPath.c_str());
      return 1;
    }
    Tools.PFuzzerHeartbeat = &Heartbeat;
  }

  // A campaign of one or more seeds; --jobs=N runs the seeds in parallel
  // (results are identical for every jobs value — see eval/Campaign.h).
  SchedulerStats SchedBefore = Scheduler::globalStats();
  CampaignResult Best = runCampaign(Kind, *S, Execs, Seed, Runs, Jobs, Tools);
  const FuzzReport &R = Best.Report;

  if (!Quiet)
    for (const std::string &Input : R.ValidInputs)
      std::printf("%s\n", escapeString(Input).c_str());

  const TokenInventory &Inv = TokenInventory::forSubject(SubjectName);
  std::fprintf(stderr,
               "\n%s on %s: %llu executions, %zu emitted inputs,"
               " %.1f%% branch coverage of valid inputs, %zu/%zu tokens\n",
               ToolName.c_str(), SubjectName.c_str(),
               static_cast<unsigned long long>(Best.TotalExecutions),
               R.ValidInputs.size(), 100 * R.coverageRatio(*S),
               Best.TokensFound.size(), Inv.size());
  std::fprintf(stderr, "wall-clock %s (%s)\n",
               formatSeconds(Best.WallSeconds).c_str(),
               formatExecsPerSec(Best.TotalExecutions, Best.WallSeconds)
                   .c_str());
  if (Best.Resume.Probes > 0)
    std::fprintf(stderr,
                 "prefix resumption: %.1f%% hit rate, %llu bytes skipped,"
                 " avg rung depth %.2f\n",
                 100 * Best.Resume.hitRate(),
                 static_cast<unsigned long long>(Best.Resume.BytesSkipped),
                 Best.Resume.avgHitRungDepth());
  if (LocalityStatsFlag) {
    const LocalityStats &L = Best.Locality;
    std::fprintf(stderr,
                 "locality batching: %llu batches, %llu tie-front"
                 " candidates, %llu pre-executed, %llu consumed"
                 " (%.1f%%), %llu recycled, %llu discarded\n",
                 static_cast<unsigned long long>(L.Batches),
                 static_cast<unsigned long long>(L.TieFront),
                 static_cast<unsigned long long>(L.Batched),
                 static_cast<unsigned long long>(L.Consumed),
                 100 * L.consumeRate(),
                 static_cast<unsigned long long>(L.Recycled),
                 static_cast<unsigned long long>(L.Discarded));
  }
  if (QueueStatsFlag) {
    const QueueStats &Q = Best.Queue;
    std::fprintf(stderr,
                 "candidate store: %llu pushes, %llu rescores (%.1f ms,"
                 " %llu group slices), %llu trims (%llu dropped),"
                 " %llu compactions (%llu bytes reclaimed),"
                 " %llu path decays\n",
                 static_cast<unsigned long long>(Q.Pushes),
                 static_cast<unsigned long long>(Q.Rescores),
                 static_cast<double>(Q.RescoreNanos) / 1e6,
                 static_cast<unsigned long long>(Q.GroupsFiltered),
                 static_cast<unsigned long long>(Q.Trims),
                 static_cast<unsigned long long>(Q.TrimmedCandidates),
                 static_cast<unsigned long long>(Q.Compactions),
                 static_cast<unsigned long long>(Q.ArenaBytesReclaimed),
                 static_cast<unsigned long long>(Q.PathDecays));
    std::fprintf(stderr,
                 "queue peaks: %llu bytes, %llu candidates, %llu arena"
                 " bytes, %llu groups, %llu path entries\n",
                 static_cast<unsigned long long>(Q.PeakBytes),
                 static_cast<unsigned long long>(Q.PeakCandidates),
                 static_cast<unsigned long long>(Q.PeakArenaBytes),
                 static_cast<unsigned long long>(Q.PeakGroups),
                 static_cast<unsigned long long>(Q.PeakPathTable));
  }
  if (ShardStatsFlag) {
    const ShardStats &Sh = Best.Shards;
    std::fprintf(stderr,
                 "shard sync: %llu sync points, %llu deltas published"
                 " (%llu merged), %llu branches imported, migrations"
                 " %llu accepted / %llu rejected of %llu offered,"
                 " max frontier lag %llu epochs\n",
                 static_cast<unsigned long long>(Sh.SyncPoints),
                 static_cast<unsigned long long>(Sh.DeltasPublished),
                 static_cast<unsigned long long>(Sh.DeltasMerged),
                 static_cast<unsigned long long>(Sh.BranchesImported),
                 static_cast<unsigned long long>(Sh.MigrationsAccepted),
                 static_cast<unsigned long long>(Sh.MigrationsRejected),
                 static_cast<unsigned long long>(Sh.MigrationsOffered),
                 static_cast<unsigned long long>(Sh.MaxFrontierLag));
  }
  if (SchedStatsFlag) {
    SchedulerStats D = Scheduler::globalStats().minus(SchedBefore);
    std::fprintf(stderr,
                 "scheduler: %llu tasks (%llu jobs, %llu locality,"
                 " %llu speculation), %llu on workers, %llu inline,"
                 " %llu stolen, %llu cancelled, steal success %.1f%%,"
                 " idle %.2fs\n",
                 static_cast<unsigned long long>(D.submitted()),
                 static_cast<unsigned long long>(D.Submitted[0]),
                 static_cast<unsigned long long>(D.Submitted[1]),
                 static_cast<unsigned long long>(D.Submitted[2]),
                 static_cast<unsigned long long>(D.executed()),
                 static_cast<unsigned long long>(D.RanInline),
                 static_cast<unsigned long long>(D.Stolen),
                 static_cast<unsigned long long>(D.Cancelled),
                 100 * D.stealSuccessRate(), D.IdleSeconds);
  }
  if (TelemetryStatsFlag) {
    const TelemetrySnapshot &T = Best.Telemetry;
    std::fprintf(stderr,
                 "telemetry: %llu executions, %llu valid inputs,"
                 " frontier %llu, run cache %llu/%llu (%.1f%%)\n",
                 static_cast<unsigned long long>(T.Executions),
                 static_cast<unsigned long long>(T.ValidInputs),
                 static_cast<unsigned long long>(T.FrontierSize),
                 static_cast<unsigned long long>(T.RunCacheHits),
                 static_cast<unsigned long long>(T.RunCacheLookups),
                 100 * T.runCacheHitRate());
    std::fprintf(stderr,
                 "telemetry: speculation %llu submitted / %llu hits,"
                 " resume %llu/%llu probes, locality %llu batched,"
                 " queue peak %llu bytes, %llu shard sync points,"
                 " sched %llu tasks (%llu stolen)\n",
                 static_cast<unsigned long long>(T.Speculation.Submitted),
                 static_cast<unsigned long long>(T.Speculation.Hits),
                 static_cast<unsigned long long>(T.Resume.Hits),
                 static_cast<unsigned long long>(T.Resume.Probes),
                 static_cast<unsigned long long>(T.Locality.Batched),
                 static_cast<unsigned long long>(T.Queue.PeakBytes),
                 static_cast<unsigned long long>(T.Sharding.SyncPoints),
                 static_cast<unsigned long long>(T.Sched.submitted()),
                 static_cast<unsigned long long>(T.Sched.Stolen));
  }
  if (Heartbeat.enabled()) {
    uint64_t Beats = Heartbeat.beats();
    if (!Heartbeat.close())
      std::fprintf(stderr, "error: writing telemetry file '%s' failed\n",
                   TelemetryPath.c_str());
    else
      std::fprintf(stderr, "telemetry: %llu heartbeat records -> %s\n",
                   static_cast<unsigned long long>(Beats),
                   TelemetryPath.c_str());
  }
  std::fprintf(stderr, "coverage timeline (execs -> branch outcomes):\n");
  size_t Step = std::max<size_t>(1, R.CoverageTimeline.size() / 8);
  for (size_t I = 0; I < R.CoverageTimeline.size(); I += Step)
    std::fprintf(stderr, "  %8llu -> %llu\n",
                 static_cast<unsigned long long>(R.CoverageTimeline[I].first),
                 static_cast<unsigned long long>(
                     R.CoverageTimeline[I].second));

  if (Mine) {
    std::fprintf(stderr, "\nmining a grammar from %zu valid inputs...\n",
                 R.ValidInputs.size());
    Grammar G = mineGrammar(*S, R.ValidInputs);
    std::fprintf(stderr, "%zu nonterminals, %zu alternatives\n",
                 G.numNonTerminals(), G.numAlternatives());
    std::printf("%s", G.toString().c_str());
  }
  return 0;
}
