//===- examples/quickstart.cpp - The Section 2 walkthrough ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: fuzz the Section 2 "mystery program P" (an arithmetic
/// expression parser) with pFuzzer and watch it discover the input
/// language character by character — the Figure 1 walkthrough, live.
///
///   ./quickstart [--execs=N] [--seed=N]
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace pfuzz;

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 5000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    std::fprintf(stderr, "usage: quickstart [--execs=N] [--seed=N]\n");
    return 1;
  }

  const Subject &P = arithSubject();
  std::printf("Fuzzing the Section 2 mystery program P (%llu executions)."
              "\nWe know nothing about it except that it reads characters"
              " and accepts\nor rejects. pFuzzer probes it:\n\n",
              static_cast<unsigned long long>(Execs));

  // Show what a single probe looks like before fuzzing: run "A" and dump
  // the comparisons the parser made (Figure 1, step 1).
  RunResult Probe = P.execute("A");
  std::printf("Probe with input \"A\" -> rejected (exit %d)."
              " Comparisons at index 0:\n",
              Probe.ExitCode);
  for (const ComparisonEvent &E : Probe.Comparisons) {
    if (E.Taint.empty() || !E.Taint.contains(0))
      continue;
    const char *Kind = E.Kind == CompareKind::CharEq      ? "char=="
                       : E.Kind == CompareKind::CharSet   ? "in-set"
                       : E.Kind == CompareKind::CharRange ? "in-range"
                                                          : "strcmp";
    std::printf("  %-8s expected \"%s\"\n", Kind,
                escapeString(std::string(Probe.expected(E))).c_str());
  }
  std::printf("\nEach expected value is a candidate substitution — that is"
              " the whole\ntrick. Now the full search:\n\n");

  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  FuzzReport R = Tool.run(P, Opts);

  std::printf("Valid inputs discovered (every one accepted by P, by"
              " construction):\n");
  size_t Shown = 0;
  for (const std::string &Input : R.ValidInputs) {
    std::printf("  %s\n", escapeString(Input).c_str());
    if (++Shown == 20 && R.ValidInputs.size() > 20) {
      std::printf("  ... and %zu more\n", R.ValidInputs.size() - 20);
      break;
    }
  }
  std::printf("\n%zu valid inputs from %llu executions; %zu branch"
              " outcomes covered\n(out of %u).\n",
              R.ValidInputs.size(),
              static_cast<unsigned long long>(R.Executions),
              R.ValidBranches.size(), 2 * P.numBranchSites());
  std::printf("\nCompare Section 2's expected discoveries: 1, 11, +1, -1,"
              " 1+1, 1-1, (1), ...\n");
  return 0;
}
