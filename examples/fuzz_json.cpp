//===- examples/fuzz_json.cpp - Keyword discovery on cJSON ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fuzzes the json subject and reports when each keyword (true, false,
/// null) is first synthesised — the capability Section 5.3 highlights
/// ("pFuzzer, by contrast, is able to cover all tokens"). Also prints the
/// token-coverage summary for the campaign.
///
///   ./fuzz_json [--execs=N] [--seed=N]
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "tokens/TokenCoverage.h"

#include <cstdio>

using namespace pfuzz;

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 30000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    std::fprintf(stderr, "usage: fuzz_json [--execs=N] [--seed=N]\n");
    return 1;
  }

  const Subject &S = jsonSubject();
  PFuzzer Tool;
  TokenCoverage Tokens("json");
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  Opts.OnValidInput = [&Tokens](std::string_view Input) {
    Tokens.addInput(Input);
  };

  std::printf("Fuzzing the json subject (cJSON stand-in) with pFuzzer,"
              " %llu executions...\n\n",
              static_cast<unsigned long long>(Execs));
  FuzzReport R = Tool.run(S, Opts);

  // Report first discovery of each keyword among the emitted inputs.
  for (const char *Keyword : {"true", "false", "null"}) {
    bool Found = false;
    for (size_t I = 0; I != R.ValidInputs.size(); ++I) {
      if (R.ValidInputs[I].find(Keyword) != std::string::npos) {
        std::printf("keyword %-5s first appears in emitted input #%zu:"
                    " %s\n",
                    Keyword, I + 1,
                    escapeString(R.ValidInputs[I]).c_str());
        Found = true;
        break;
      }
    }
    if (!Found)
      std::printf("keyword %-5s not found in this campaign (try more"
                  " --execs)\n",
                  Keyword);
  }

  std::printf("\nToken coverage: %zu of %zu inventory tokens\n",
              Tokens.found().size(), Tokens.inventory().size());
  std::printf("  length <= 3: %.1f%%   length > 3: %.1f%%\n",
              Tokens.shortTokenRatio() * 100,
              Tokens.longTokenRatio() * 100);
  std::printf("\nBranch coverage of valid inputs: %.1f%% (%zu of %u"
              " outcomes)\n",
              R.coverageRatio(S) * 100, R.ValidBranches.size(),
              2 * S.numBranchSites());
  std::printf("\nNote: the UTF-16 escape feature set stays uncovered by"
              " design — the\npaper's Section 5.2 taint limitation is"
              " reproduced faithfully.\n");
  return 0;
}
