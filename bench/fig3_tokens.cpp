//===- bench/fig3_tokens.cpp - Figure 3: tokens by length per tool --------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 3 of the paper: the number of inventory tokens each
/// tool generates in its valid inputs, grouped by token length, for all
/// five subjects — plus the Section 5.3 headline aggregates:
///
///   tokens of length <= 3: AFL 91.5%, KLEE 28.7%, pFuzzer 81.9%
///   tokens of length  > 3: AFL 5%,    KLEE 7.5%,  pFuzzer 52.5%
///
/// The key shape: only pFuzzer finds a majority of the long tokens.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "eval/Campaign.h"
#include "eval/TableWriter.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <map>

using namespace pfuzz;

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  CampaignBudgets Budgets;
  Budgets.scale(static_cast<uint64_t>(Cli.getInt("budget-scale", 1)));
  int Runs = static_cast<int>(Cli.getInt("runs", 1));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  int Jobs = static_cast<int>(Cli.getCount("jobs", 1));
  ToolOptions ToolCfg;
  ToolCfg.PFuzzerRunCache =
      static_cast<uint32_t>(Cli.getCount("run-cache", ToolCfg.PFuzzerRunCache));
  ToolCfg.PFuzzerSpeculation = static_cast<int>(
      Cli.getCount("speculate", ToolCfg.PFuzzerSpeculation, /*Min=*/-1));
  ToolCfg.PFuzzerResumeCache = static_cast<uint32_t>(
      Cli.getCount("resume-cache", ToolCfg.PFuzzerResumeCache));
  std::string TelemetryPath = Cli.getString("telemetry", "");
  uint64_t HeartbeatEvery = static_cast<uint64_t>(
      Cli.getCount("heartbeat", 4096, /*Min=*/1));
  BenchJsonWriter Json(Cli.getString("json", ""));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    for (const std::string &Err : Cli.errors())
      std::fprintf(stderr, "error: %s\n", Err.c_str());
    std::fprintf(stderr, "usage: fig3_tokens [--budget-scale=N] [--runs=N]"
                         " [--seed=N] [--jobs=N] [--run-cache=N]"
                         " [--resume-cache=N] [--speculate=N]"
                         " [--telemetry=FILE] [--heartbeat=N]"
                         " [--json=PATH]\n");
    return 1;
  }
  HeartbeatEmitter Heartbeat;
  if (!TelemetryPath.empty()) {
    if (!Heartbeat.open(TelemetryPath, HeartbeatEvery)) {
      std::fprintf(stderr, "error: cannot open telemetry file '%s'\n",
                   TelemetryPath.c_str());
      return 1;
    }
    ToolCfg.PFuzzerHeartbeat = &Heartbeat;
  }

  std::printf("== Figure 3: tokens generated, grouped by token length ==\n");
  const ToolKind Tools[] = {ToolKind::Afl, ToolKind::Klee,
                            ToolKind::PFuzzer};

  // Aggregates over all subjects for the Section 5.3 headline numbers.
  uint32_t ShortFound[3] = {}, ShortTotal = 0;
  uint32_t LongFound[3] = {}, LongTotal = 0;

  std::vector<const Subject *> Subjects = evaluationSubjects();
  std::vector<CampaignCell> Grid;
  for (const Subject *S : Subjects)
    for (ToolKind Tool : Tools)
      Grid.push_back({Tool, S, Budgets.executionsFor(Tool)});
  std::vector<CampaignResult> Results =
      runCampaignGrid(Grid, Seed, Runs, Jobs, ToolCfg);

  for (size_t SubIdx = 0; SubIdx != Subjects.size(); ++SubIdx) {
    const Subject *S = Subjects[SubIdx];
    const TokenInventory &Inv = TokenInventory::forSubject(S->name());
    auto Totals = Inv.countsByLength();
    std::printf("\n-- %s --\n", std::string(S->name()).c_str());
    std::vector<std::string> Header = {"Tool"};
    for (const auto &[Length, Count] : Totals)
      Header.push_back("len" + std::to_string(Length) + "/" +
                       std::to_string(Count));
    TableWriter Table(std::move(Header));
    ShortTotal += Inv.numShort();
    LongTotal += Inv.numLong();

    for (int T = 0; T != 3; ++T) {
      const CampaignResult &R = Results[SubIdx * 3 + static_cast<size_t>(T)];
      std::map<uint32_t, uint32_t> Found;
      for (const std::string &Tok : R.TokensFound) {
        uint32_t Len = Inv.lengthOf(Tok);
        ++Found[Len];
        if (Len <= 3)
          ++ShortFound[T];
        else
          ++LongFound[T];
      }
      std::vector<std::string> Cells = {std::string(toolName(Tools[T]))};
      for (const auto &[Length, Count] : Totals)
        Cells.push_back(std::to_string(Found[Length]));
      Table.addRow(std::move(Cells));
      Json.add({.Bench = "fig3_tokens",
                .Subject = std::string(toolName(Tools[T])) + "/" +
                           std::string(S->name()),
                .ExecsPerSec = R.execsPerSec(),
                .WallMs = R.WallSeconds * 1000.0,
                .ResumeHitRate = R.Resume.hitRate()});
      std::fprintf(stderr, "  done: %s on %s (%zu tokens, %s, %s)\n",
                   std::string(toolName(Tools[T])).c_str(),
                   std::string(S->name()).c_str(), R.TokensFound.size(),
                   formatSeconds(R.WallSeconds).c_str(),
                   formatExecsPerSec(R.TotalExecutions, R.WallSeconds)
                       .c_str());
    }
    Table.print(stdout);
  }

  std::printf("\n== Section 5.3 headline aggregates ==\n");
  TableWriter Agg({"Tokens", "AFL", "KLEE", "pFuzzer", "Paper"});
  auto Pct = [](uint32_t Num, uint32_t Den) {
    return Den == 0 ? std::string("-")
                    : formatDouble(100.0 * Num / Den, 1) + "%";
  };
  Agg.addRow({"length <= 3", Pct(ShortFound[0], ShortTotal),
              Pct(ShortFound[1], ShortTotal), Pct(ShortFound[2], ShortTotal),
              "91.5 / 28.7 / 81.9"});
  Agg.addRow({"length > 3", Pct(LongFound[0], LongTotal),
              Pct(LongFound[1], LongTotal), Pct(LongFound[2], LongTotal),
              "5.0 / 7.5 / 52.5"});
  Agg.print(stdout);

  bool PFuzzerWinsLong =
      LongFound[2] > LongFound[0] && LongFound[2] > LongFound[1];
  std::printf("\nCentral result (only pFuzzer detects longer tokens):"
              " %s\n",
              PFuzzerWinsLong ? "reproduced" : "NOT reproduced");
  if (Heartbeat.enabled()) {
    uint64_t Beats = Heartbeat.beats();
    if (!Heartbeat.close()) {
      std::fprintf(stderr, "error: writing telemetry file '%s' failed\n",
                   TelemetryPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "telemetry: %llu heartbeat records -> %s\n",
                 static_cast<unsigned long long>(Beats),
                 TelemetryPath.c_str());
  }
  return Json.write() ? 0 : 1;
}
