//===- bench/micro_shard.cpp - Sharded campaign benchmark -----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the sharded campaign engine (PFuzzerOptions::Shards) on the
/// two subjects where throughput matters most in CI — json and mjs —
/// across a 1/2/4 shard grid, and self-checks the contracts the engine
/// ships under (exit code 1 on any violation):
///
/// 1. --shards=1 reproduces the unsharded engine byte for byte: the
///    single-shard report is compared field-by-field against a run with
///    a default-constructed PFuzzer.
///
/// 2. Fixed (seed, N) is bit-reproducible: the 4-shard cell runs twice
///    and both reports must be identical — sync points are execution-
///    count epochs, not wall-clock, so thread interleaving never leaks
///    into the result.
///
/// 3. The ShardStats ledger balances: every published delta is merged
///    by exactly one peer (DeltasPublished == DeltasMerged once every
///    shard has drained), and every offered migration is either
///    accepted or rejected (Accepted + Rejected == Offered).
///
/// 4. Sharding trades search overlap for wall-clock, not coverage: the
///    4-shard merged frontier must stay within 5% of the single-shard
///    frontier.
///
/// 5. On a machine with >= 4 hardware threads, 4 shards must deliver at
///    least 2x the single-shard execs/sec (skipped — with a note — on
///    smaller machines, where shard loops time-slice one core).
///
///   ./micro_shard [--execs=N] [--seed=N] [--sync=N] [--json=PATH]
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "core/PFuzzer.h"
#include "core/ShardSync.h"
#include "subjects/Subject.h"
#include "support/CommandLine.h"
#include "support/Scheduler.h"

#include <chrono>
#include <cstdio>

using namespace pfuzz;

namespace {

struct RunOutcome {
  FuzzReport Report;
  ShardStats Shards;
  double WallSeconds = 0;
};

RunOutcome runOnce(const Subject &S, uint64_t Execs, uint64_t Seed,
                   uint32_t Shards, uint32_t SyncInterval) {
  RunOutcome Out;
  PFuzzerOptions Options;
  if (Shards != 0) {
    Options.Shards = Shards;
    if (SyncInterval != 0)
      Options.ShardSyncInterval = SyncInterval;
  }
  Options.ShardStatsOut = &Out.Shards;
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  auto Start = std::chrono::steady_clock::now();
  Out.Report = Tool.run(S, Opts);
  Out.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Out;
}

bool sameReport(const FuzzReport &A, const FuzzReport &B) {
  return A.Executions == B.Executions && A.ValidInputs == B.ValidInputs &&
         A.ValidBranches == B.ValidBranches &&
         A.CoverageTimeline == B.CoverageTimeline;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 20000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  uint32_t Sync = static_cast<uint32_t>(Cli.getCount("sync", 0));
  BenchJsonWriter Json(Cli.getString("json", ""));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    for (const std::string &Err : Cli.errors())
      std::fprintf(stderr, "error: %s\n", Err.c_str());
    std::fprintf(stderr, "usage: micro_shard [--execs=N] [--seed=N]"
                         " [--sync=N] [--json=PATH]\n");
    return 1;
  }

  unsigned Hardware = Scheduler::hardwareThreads();
  bool CheckSpeedup = Hardware >= 4;
  std::printf("== Sharded campaign: throughput and frontier sync ==\n");
  std::printf("(%llu execs per run, seed %llu, sync interval %s,"
              " %u hardware threads)\n\n",
              static_cast<unsigned long long>(Execs),
              static_cast<unsigned long long>(Seed),
              Sync == 0 ? "default" : std::to_string(Sync).c_str(), Hardware);
  std::printf("%-8s %7s %9s %11s %8s %9s %7s %7s  %s\n", "subject", "shards",
              "wall[s]", "execs/s", "speedup", "coverage", "deltas", "migr",
              "report");

  bool Ok = true;
  const Subject *Subjects[] = {&jsonSubject(), &mjsSubject()};
  const uint32_t ShardGrid[] = {1, 2, 4};
  for (const Subject *S : Subjects) {
    // The unsharded reference: a default-constructed engine, no shard
    // options touched at all.
    RunOutcome Plain = runOnce(*S, Execs, Seed, /*Shards=*/0, 0);
    RunOutcome Single;
    for (uint32_t N : ShardGrid) {
      RunOutcome Out = runOnce(*S, Execs, Seed, N, Sync);
      const ShardStats &St = Out.Shards;
      bool Identical = true;
      if (N == 1) {
        // Contract 1: --shards=1 is the plain engine, byte for byte.
        Identical = sameReport(Plain.Report, Out.Report);
        Single = std::move(Out);
      }
      const RunOutcome &Cur = N == 1 ? Single : Out;
      // Contract 3: the sync ledger balances after every shard drained.
      bool Balanced = St.DeltasPublished == St.DeltasMerged &&
                      St.MigrationsAccepted + St.MigrationsRejected ==
                          St.MigrationsOffered;
      // Every shard publishes at least its Final packet to each peer.
      if (N > 1 && St.DeltasPublished < uint64_t(N) * (N - 1))
        Balanced = false;
      // The budget must be spent exactly, shards or not.
      bool BudgetExact = Cur.Report.Executions == Execs;
      if (N == 4) {
        // Contract 2: fixed (seed, N) reruns bit-identically.
        RunOutcome Again = runOnce(*S, Execs, Seed, N, Sync);
        if (!sameReport(Cur.Report, Again.Report))
          Identical = false;
        // Contract 4: merged frontier within 5% of single-shard.
        if (static_cast<double>(Cur.Report.ValidBranches.size()) <
            0.95 * static_cast<double>(Single.Report.ValidBranches.size()))
          Ok = false;
      }
      Ok &= Identical && Balanced && BudgetExact;
      double Speedup =
          Cur.WallSeconds > 0 ? Single.WallSeconds / Cur.WallSeconds : 0;
      // Contract 5: >= 2x at 4 shards, only meaningful with real cores.
      if (N == 4 && CheckSpeedup && Speedup < 2.0)
        Ok = false;
      std::printf("%-8s %7u %9.3f %11.0f %7.2fx %9zu %7llu %7llu  %s%s\n",
                  S->name().data(), N, Cur.WallSeconds,
                  Cur.WallSeconds > 0 ? Execs / Cur.WallSeconds : 0, Speedup,
                  Cur.Report.ValidBranches.size(),
                  static_cast<unsigned long long>(St.DeltasPublished),
                  static_cast<unsigned long long>(St.MigrationsAccepted),
                  Identical ? (N == 1 ? "identical" : "reproducible")
                            : "MISMATCH",
                  Balanced ? "" : " UNBALANCED");
      Json.add({.Bench = "micro_shard",
                .Subject = std::string(S->name()) + "/s" + std::to_string(N),
                .ExecsPerSec = Cur.WallSeconds > 0 ? Execs / Cur.WallSeconds
                                                   : 0,
                .WallMs = Cur.WallSeconds * 1000.0,
                .Shards = static_cast<double>(N),
                .ShardDeltas = static_cast<double>(St.DeltasPublished),
                .ShardMigrations = static_cast<double>(St.MigrationsAccepted),
                .ShardFrontierLag = static_cast<double>(St.MaxFrontierLag)});
    }
    std::printf("\n");
  }
  if (!CheckSpeedup)
    std::printf("note: < 4 hardware threads — the 2x speedup gate was"
                " skipped (identity, reproducibility, ledger and coverage"
                " checks all ran)\n");
  if (!Ok) {
    std::fprintf(stderr, "error: a sharded run violated its contract (see"
                         " MISMATCH/UNBALANCED rows or the coverage and"
                         " speedup gates above)\n");
    return 1;
  }
  return Json.write() ? 0 : 1;
}
