//===- bench/micro_locality.cpp - Prefix-locality scheduling bench --------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures prefix-locality scheduling — checkpoint ladders plus
/// trie-batched candidate execution — and self-checks the two contracts
/// the features ship under (exit code 1 on any violation):
///
/// 1. Rung sweep: a sibling-only splice wave — substitution candidates
///    of one long parent at hash-spread depths, the pattern of a search
///    parked at a frontier — executed against engines with 0, 1, 2 and
///    4 ladder rungs per run over one tight checkpoint cache. Every
///    configuration must reproduce the cold reference event for event,
///    and the resume rate (fraction of submitted bytes skipped) and the
///    average hit rung depth must rise strictly with the rung count —
///    the ladder's whole claim. Raw hit frequency is printed but not
///    asserted beyond rungs >= 1 beating rungs == 0: once any rung
///    exists almost every probe re-enters somewhere, and deeper ladders
///    trade a few shallow hits for much deeper ones. With no rungs at
///    all the wave scores zero — a sibling's past-end checkpoint embeds
///    its own suffix, so it can never serve the next sibling, and only
///    rungs put pure parent prefixes back in the cache. Prints
///    execs/sec per rung count and the hit-by-rung-depth histogram.
///
/// 2. Campaign modes: one pFuzzer campaign run cold (no resumption),
///    laddered (--resume-cache), and laddered + trie batching
///    (--locality). All three reports must be byte-identical; the mode
///    table shows where the wall-clock goes and what the locality
///    scheduler consumed.
///
///   ./micro_locality [--execs=N] [--seed=N] [--cache=N] [--stride=N]
///                    [--growth-len=N] [--wave=N] [--json=PATH]
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "RunResultCompare.h"
#include "core/PFuzzer.h"
#include "subjects/Subject.h"
#include "support/CommandLine.h"
#include "support/Scheduler.h"

#include <chrono>
#include <cstdio>

using namespace pfuzz;

namespace {

/// The same deterministic JSON document micro_resume grows: flat records
/// under one array, no 5/6/8/9 digits (see waveInputs).
std::string growthDocument(size_t Len) {
  std::string Doc = "{\"k\": [";
  const char *Records[] = {
      "{\"id\": 12, \"on\": true}", "[1, 22, 333, \"abc\"]",
      "\"u\\u0041text\"", "{\"x\": [false, \"y\"], \"n\": 7}"};
  for (size_t I = 0; Doc.size() < Len; ++I) {
    if (I != 0)
      Doc += ", ";
    Doc += Records[I % 4];
  }
  Doc += "]}";
  return Doc;
}

/// Sibling-only wave: \p N substitution candidates of one parent
/// document, spliced at hash-spread depths in [L/4, L). The suffixes
/// never occur in the document, so a sibling's past-end checkpoint
/// cannot pose as a pure parent prefix — every deep re-entry has to
/// come from a real ladder rung.
std::vector<std::string> waveInputs(const std::string &Doc, size_t N) {
  static const char *Suffixes[] = {"8", "9]", "5e8", "6.5", "98, ", "5678"};
  std::vector<std::string> Steps;
  Steps.reserve(N);
  size_t L = Doc.size();
  for (size_t I = 0; I != N; ++I) {
    uint64_t R = (I + 1) * 6364136223846793005ULL;
    R ^= R >> 29;
    size_t Lo = L / 4;
    size_t K = Lo + (R >> 33) % (L - Lo);
    Steps.push_back(Doc.substr(0, K) + Suffixes[I % 6]);
  }
  return Steps;
}

struct CampaignOutcome {
  FuzzReport Report;
  ResumeStats Resume;
  LocalityStats Locality;
  /// Shared-scheduler activity attributable to this campaign (a global-
  /// counter delta; exact here because the modes run one at a time).
  SchedulerStats Sched;
  double WallSeconds = 0;
};

CampaignOutcome runCampaign(const Subject &S, uint64_t Execs, uint64_t Seed,
                            uint32_t ResumeCache, uint32_t LocalityBatch) {
  CampaignOutcome Out;
  PFuzzerOptions Options;
  Options.ResumeCacheSize = ResumeCache;
  Options.LocalityBatch = LocalityBatch;
  Options.ResumeStatsOut = &Out.Resume;
  Options.LocalityStatsOut = &Out.Locality;
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  SchedulerStats Before = Scheduler::globalStats();
  auto Start = std::chrono::steady_clock::now();
  Out.Report = Tool.run(S, Opts);
  Out.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Out.Sched = Scheduler::globalStats().minus(Before);
  return Out;
}

bool sameReport(const FuzzReport &A, const FuzzReport &B) {
  return A.Executions == B.Executions && A.ValidInputs == B.ValidInputs &&
         A.ValidBranches == B.ValidBranches &&
         A.CoverageTimeline == B.CoverageTimeline;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 30000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  size_t CacheSize = static_cast<size_t>(Cli.getCount("cache", 8));
  uint32_t Stride = static_cast<uint32_t>(Cli.getCount("stride", 16));
  size_t GrowthLen = static_cast<size_t>(Cli.getCount("growth-len", 240));
  size_t Wave = static_cast<size_t>(Cli.getCount("wave", 4000));
  BenchJsonWriter Json(Cli.getString("json", ""));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    for (const std::string &Err : Cli.errors())
      std::fprintf(stderr, "error: %s\n", Err.c_str());
    std::fprintf(stderr, "usage: micro_locality [--execs=N] [--seed=N]"
                         " [--cache=N] [--stride=N] [--growth-len=N]"
                         " [--wave=N] [--json=PATH]\n");
    return 1;
  }

  std::printf("== Prefix-locality scheduling: ladders and trie batching"
              " ==\n");
  std::printf("(seed %llu, checkpoint cache %zu, stride %u, fibers %s)\n\n",
              static_cast<unsigned long long>(Seed), CacheSize, Stride,
              PrefixResumeEngine::available() ? "available" : "UNAVAILABLE");

  bool Ok = true;

  // --- 1. Rung sweep: the resume rate (bytes skipped per byte
  // submitted) and the average hit rung depth must rise strictly with
  // the rung count.
  if (PrefixResumeEngine::available()) {
    const Subject &J = jsonSubject();
    const std::string Doc = growthDocument(GrowthLen);
    const std::vector<std::string> Steps = waveInputs(Doc, Wave);
    uint64_t WaveBytes = 0;
    for (const std::string &In : Steps)
      WaveBytes += In.size();
    std::vector<RunResult> Reference;
    Reference.reserve(Steps.size());
    for (const std::string &In : Steps) {
      Reference.emplace_back();
      Reference.back() = J.execute(In, InstrumentationMode::Full);
    }
    const uint32_t RungCounts[] = {0, 1, 2, 4};
    bool Monotone = true;
    uint64_t PrevSkipped = 0;
    double FirstHitRate = 0, PrevDepth = -1;
    std::printf("rung sweep (json, %zu-byte parent, %zu siblings/round,"
                " 6 rounds):\n",
                Doc.size(), Steps.size());
    std::printf("  %6s %9s %11s %7s %9s %9s  %s\n", "rungs", "wall[s]",
                "execs/s", "hit%", "resume%", "avg-rung", "report");
    ResumeStats Deepest;
    for (uint32_t Rungs : RungCounts) {
      PrefixResumeEngine Engine(
          [&J](ExecutionContext &Ctx) { return J.run(Ctx); }, CacheSize,
          /*MinInput=*/0, Stride, Rungs);
      bool Identical = true;
      RunResult Scratch;
      const int Rounds = 6;
      auto T0 = std::chrono::steady_clock::now();
      for (int R = 0; R != Rounds; ++R)
        for (size_t I = 0; I != Steps.size(); ++I) {
          const RunResult &Run = Engine.execute(Steps[I], Scratch);
          if (!sameRunResult(Reference[I], Run))
            Identical = false;
        }
      double Secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - T0)
                        .count();
      const ResumeStats St = Engine.stats();
      Deepest = St;
      double ResumeRate =
          static_cast<double>(St.BytesSkipped) / (6.0 * WaveBytes);
      std::printf("  %6u %9.3f %11.0f %6.1f%% %8.1f%% %9.2f  %s\n", Rungs,
                  Secs, Secs > 0 ? Rounds * Steps.size() / Secs : 0,
                  100 * St.hitRate(), 100 * ResumeRate,
                  St.avgHitRungDepth(), Identical ? "identical" : "MISMATCH");
      Ok &= Identical;
      // Strictly more bytes resumed and strictly deeper hits with every
      // added rung; any rung at all must beat the rungless engine's hit
      // rate (which this wave pins at zero — see the header comment).
      if (St.BytesSkipped <= PrevSkipped && Rungs != 0)
        Monotone = false;
      if (St.avgHitRungDepth() <= PrevDepth)
        Monotone = false;
      if (Rungs == 0)
        FirstHitRate = St.hitRate();
      else if (St.hitRate() <= FirstHitRate)
        Monotone = false;
      PrevSkipped = St.BytesSkipped;
      PrevDepth = St.avgHitRungDepth();
      char Name[32];
      std::snprintf(Name, sizeof(Name), "json/rungs-%u", Rungs);
      Json.add({.Bench = "micro_locality",
                .Subject = Name,
                .ExecsPerSec = Secs > 0 ? Rounds * Steps.size() / Secs : 0,
                .WallMs = Secs * 1000.0,
                .ResumeHitRate = St.hitRate(),
                .ResumeRungDepth = St.avgHitRungDepth()});
    }
    std::printf("  resume rate and rung depth %s with rung count\n",
                Monotone ? "strictly increasing" : "NOT MONOTONE");
    Ok &= Monotone;
    std::printf("  hits by rung depth (4 rungs):");
    for (size_t I = 0; I != ResumeStats::RungBuckets; ++I)
      if (Deepest.HitsByRung[I] != 0)
        std::printf("  %zu:%llu", I,
                    static_cast<unsigned long long>(Deepest.HitsByRung[I]));
    std::printf("\n\n");
  } else {
    std::printf("rung sweep: skipped (fibers unavailable)\n\n");
  }

  // --- 2. Campaign modes: cold vs laddered vs laddered + trie batching.
  {
    const Subject &J = jsonSubject();
    CampaignOutcome Cold = runCampaign(J, Execs, Seed, /*ResumeCache=*/0,
                                       /*LocalityBatch=*/0);
    CampaignOutcome Ladder = runCampaign(J, Execs, Seed, /*ResumeCache=*/256,
                                         /*LocalityBatch=*/0);
    CampaignOutcome Trie = runCampaign(J, Execs, Seed, /*ResumeCache=*/256,
                                       /*LocalityBatch=*/64);
    bool LadderSame = sameReport(Cold.Report, Ladder.Report);
    bool TrieSame = sameReport(Cold.Report, Trie.Report);
    Ok &= LadderSame && TrieSame;
    std::printf("campaign modes (json, %llu execs):\n",
                static_cast<unsigned long long>(Execs));
    std::printf("  %-13s %9s %11s  %s\n", "mode", "wall[s]", "execs/s",
                "report");
    std::printf("  %-13s %9.3f %11.0f  %s\n", "cold", Cold.WallSeconds,
                Cold.WallSeconds > 0 ? Execs / Cold.WallSeconds : 0,
                "baseline");
    std::printf("  %-13s %9.3f %11.0f  %s\n", "ladder", Ladder.WallSeconds,
                Ladder.WallSeconds > 0 ? Execs / Ladder.WallSeconds : 0,
                LadderSame ? "identical" : "MISMATCH");
    std::printf("  %-13s %9.3f %11.0f  %s\n", "ladder+trie", Trie.WallSeconds,
                Trie.WallSeconds > 0 ? Execs / Trie.WallSeconds : 0,
                TrieSame ? "identical" : "MISMATCH");
    std::printf("  trie batching: %llu batches, %llu pre-executed,"
                " %llu consumed (%.1f%%)\n",
                static_cast<unsigned long long>(Trie.Locality.Batches),
                static_cast<unsigned long long>(Trie.Locality.Batched),
                static_cast<unsigned long long>(Trie.Locality.Consumed),
                100 * Trie.Locality.consumeRate());
    Json.add({.Bench = "micro_locality",
              .Subject = "json/cold",
              .ExecsPerSec =
                  Cold.WallSeconds > 0 ? Execs / Cold.WallSeconds : 0,
              .WallMs = Cold.WallSeconds * 1000.0,
              .SchedTasks = static_cast<double>(Cold.Sched.submitted()),
              .SchedStealRate = Cold.Sched.stealSuccessRate()});
    Json.add({.Bench = "micro_locality",
              .Subject = "json/ladder",
              .ExecsPerSec =
                  Ladder.WallSeconds > 0 ? Execs / Ladder.WallSeconds : 0,
              .WallMs = Ladder.WallSeconds * 1000.0,
              .ResumeHitRate = Ladder.Resume.hitRate(),
              .ResumeRungDepth = Ladder.Resume.avgHitRungDepth(),
              .SchedTasks = static_cast<double>(Ladder.Sched.submitted()),
              .SchedStealRate = Ladder.Sched.stealSuccessRate()});
    Json.add({.Bench = "micro_locality",
              .Subject = "json/ladder+trie",
              .ExecsPerSec =
                  Trie.WallSeconds > 0 ? Execs / Trie.WallSeconds : 0,
              .WallMs = Trie.WallSeconds * 1000.0,
              .ResumeHitRate = Trie.Resume.hitRate(),
              .ResumeRungDepth = Trie.Resume.avgHitRungDepth(),
              .LocalityBatch = 64,
              .SchedTasks = static_cast<double>(Trie.Sched.submitted()),
              .SchedStealRate = Trie.Sched.stealSuccessRate()});
  }

  if (!Ok) {
    std::fprintf(stderr, "error: a locality-scheduled run diverged from its"
                         " baseline (or the rung sweep was not monotone)\n");
    return 1;
  }
  return Json.write() ? 0 : 1;
}
