//===- bench/ablation_heuristic.cpp - Heuristic term ablations ------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation study of the Algorithm 1 heuristic terms (the design choices
/// Section 3 motivates): runs pFuzzer with each term disabled on json and
/// tinyc, reporting valid inputs, branch coverage of valid inputs, and
/// long-token discovery. The paper argues each term matters:
///
///  - length penalty: avoids a depth-first blowup (Section 3);
///  - 2x replacement bonus: steers towards string comparisons / keywords;
///  - stack-size term: helps closing nested structures (Section 3.2);
///  - parent count: keeps substitution chains short;
///  - path novelty: avoids re-exploring identical parse paths.
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "eval/TableWriter.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/Scheduler.h"
#include "tokens/TokenCoverage.h"

#include <algorithm>
#include <cstdio>

using namespace pfuzz;

namespace {

struct Variant {
  const char *Name;
  HeuristicOptions Options;
};

std::vector<Variant> variants() {
  std::vector<Variant> Out;
  Out.push_back({"full", HeuristicOptions()});
  HeuristicOptions NoLen;
  NoLen.LengthPenalty = false;
  Out.push_back({"no-length", NoLen});
  HeuristicOptions NoRep;
  NoRep.ReplacementBonus = false;
  Out.push_back({"no-replacement", NoRep});
  HeuristicOptions NoStack;
  NoStack.StackSizeTerm = false;
  Out.push_back({"no-stack", NoStack});
  HeuristicOptions NoParents;
  NoParents.ParentCountTerm = false;
  Out.push_back({"no-parents", NoParents});
  HeuristicOptions NoPath;
  NoPath.PathNovelty = false;
  Out.push_back({"no-path-novelty", NoPath});
  HeuristicOptions CoverageOnly;
  CoverageOnly.LengthPenalty = false;
  CoverageOnly.ReplacementBonus = false;
  CoverageOnly.StackSizeTerm = false;
  CoverageOnly.ParentCountTerm = false;
  CoverageOnly.PathNovelty = false;
  Out.push_back({"coverage-only", CoverageOnly});
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 20000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  int Runs = static_cast<int>(Cli.getInt("runs", 3));
  int Jobs = static_cast<int>(Cli.getInt("jobs", 1));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    std::fprintf(stderr, "usage: ablation_heuristic [--execs=N] [--seed=N]"
                         " [--runs=N] [--jobs=N]\n");
    return 1;
  }

  std::printf("== Heuristic ablation (pFuzzer, %llu execs per cell,"
              " mean of %d seeds) ==\n",
              static_cast<unsigned long long>(Execs), Runs);
  const std::vector<Variant> Vars = variants();
  for (const char *SubjectName : {"json", "tinyc"}) {
    const Subject *S = findSubject(SubjectName);
    const TokenInventory &Inv = TokenInventory::forSubject(SubjectName);
    std::printf("\n-- %s --\n", SubjectName);
    TableWriter Table({"Variant", "Valid inputs", "Coverage %",
                       "Tokens", "Long tokens"});
    // PFuzzer instances carry custom heuristics, so this bench cannot go
    // through runCampaignGrid; it fans (variant, seed) tasks over the
    // pool itself and reduces in index order (means stay deterministic).
    struct RunOutcome {
      double Valid = 0, Cov = 0, Tokens = 0, Long = 0;
    };
    size_t NumRuns = static_cast<size_t>(std::max(Runs, 0));
    std::vector<RunOutcome> Outcomes(Vars.size() * NumRuns);
    auto RunTask = [&](size_t TaskIdx) {
      const Variant &V = Vars[TaskIdx / NumRuns];
      PFuzzer Tool(V.Options);
      TokenCoverage Tokens(SubjectName);
      FuzzerOptions Opts;
      Opts.Seed = Seed + static_cast<uint64_t>(TaskIdx % NumRuns);
      Opts.MaxExecutions = Execs;
      Opts.OnValidInput = [&Tokens](std::string_view Input) {
        Tokens.addInput(Input);
      };
      FuzzReport R = Tool.run(*S, Opts);
      uint32_t Long = 0;
      for (const std::string &Tok : Tokens.found())
        if (Inv.lengthOf(Tok) > 3)
          ++Long;
      Outcomes[TaskIdx] = {static_cast<double>(R.ValidInputs.size()),
                           R.coverageRatio(*S) * 100,
                           static_cast<double>(Tokens.found().size()),
                           static_cast<double>(Long)};
    };
    if (Jobs == 1) {
      for (size_t TaskIdx = 0; TaskIdx != Outcomes.size(); ++TaskIdx)
        RunTask(TaskIdx);
    } else {
      Scheduler::global().parallelFor(0, Outcomes.size(), RunTask,
                                      Jobs <= 0 ? 0 : static_cast<size_t>(Jobs));
    }
    for (size_t VarIdx = 0; VarIdx != Vars.size(); ++VarIdx) {
      double SumValid = 0, SumCov = 0, SumTokens = 0, SumLong = 0;
      for (size_t Run = 0; Run != NumRuns; ++Run) {
        const RunOutcome &Out = Outcomes[VarIdx * NumRuns + Run];
        SumValid += Out.Valid;
        SumCov += Out.Cov;
        SumTokens += Out.Tokens;
        SumLong += Out.Long;
      }
      Table.addRow({Vars[VarIdx].Name, formatDouble(SumValid / Runs, 1),
                    formatDouble(SumCov / Runs, 1),
                    formatDouble(SumTokens / Runs, 1),
                    formatDouble(SumLong / Runs, 1)});
      std::fprintf(stderr, "  done: %s on %s\n", Vars[VarIdx].Name,
                   SubjectName);
    }
    Table.print(stdout);
  }
  std::printf("\nReading: 'full' should dominate or match each single-term"
              " ablation\non long-token discovery; 'coverage-only'"
              " degenerates towards\ndepth-first search (Section 3).\n");
  return 0;
}
