//===- bench/table1_subjects.cpp - Table 1: evaluation subjects -----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1 of the paper ("The subjects used for the
/// evaluation"): the five subjects with their sizes, extended with the
/// instrumentation statistics of our substitutes. The paper's LoC column
/// refers to the third-party C parsers; ours counts the reimplementations.
///
//===----------------------------------------------------------------------===//

#include "SubjectLoc.h"
#include "eval/TableWriter.h"
#include "subjects/Subject.h"

#include <cstdio>

using namespace pfuzz;

int main() {
  std::printf("== Table 1: the subjects used for the evaluation ==\n");
  std::printf("(paper LoC refers to the original third-party parsers; ours"
              " to the\n reimplementation against the instrumented"
              " runtime)\n\n");
  TableWriter Table({"Name", "Paper LoC", "Our LoC", "Branch sites",
                     "Branch outcomes"});
  struct Row {
    const char *Name;
    int PaperLoc;
    int OurLoc;
  };
  const Row Rows[] = {
      {"ini", 293, PFUZZ_LOC_INI},
      {"csv", 297, PFUZZ_LOC_CSV},
      {"json", 2483, PFUZZ_LOC_JSON},
      {"tinyc", 191, PFUZZ_LOC_TINYC},
      {"mjs", 10920, PFUZZ_LOC_MJS},
  };
  for (const Row &R : Rows) {
    const Subject *S = findSubject(R.Name);
    if (S == nullptr) {
      std::fprintf(stderr, "error: subject %s not registered\n", R.Name);
      return 1;
    }
    Table.addRow({R.Name, std::to_string(R.PaperLoc),
                  std::to_string(R.OurLoc),
                  std::to_string(S->numBranchSites()),
                  std::to_string(2 * S->numBranchSites())});
  }
  Table.print(stdout);
  std::printf("\nShape check: mjs is the largest subject and tinyc the"
              " smallest,\nmatching the paper's ordering.\n");
  return 0;
}
