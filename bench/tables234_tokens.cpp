//===- bench/tables234_tokens.cpp - Tables 2, 3, 4: token inventories -----===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Tables 2, 3 and 4 of the paper: the number of possible
/// tokens per length for json, tinyC and mjs, with examples per length.
/// Also prints the (paper-less) ini/csv inventories used by Figure 3.
///
//===----------------------------------------------------------------------===//

#include "eval/TableWriter.h"
#include "tokens/TokenInventory.h"

#include <cstdio>
#include <map>

using namespace pfuzz;

static void printInventory(const char *Title, const char *SubjectName) {
  std::printf("\n== %s ==\n", Title);
  const TokenInventory &Inv = TokenInventory::forSubject(SubjectName);
  TableWriter Table({"Length", "#", "Examples"});
  std::map<uint32_t, std::vector<std::string>> ByLength;
  for (const TokenDef &T : Inv.tokens())
    ByLength[T.Length].push_back(T.Text);
  for (const auto &[Length, Tokens] : ByLength) {
    std::string Examples;
    size_t Shown = 0;
    for (const std::string &T : Tokens) {
      if (Shown == 8) {
        Examples += " ...";
        break;
      }
      if (Shown != 0)
        Examples += " ";
      Examples += T;
      ++Shown;
    }
    Table.addRow({std::to_string(Length), std::to_string(Tokens.size()),
                  Examples});
  }
  Table.print(stdout);
  std::printf("total: %zu tokens (%u of length <= 3, %u of length > 3)\n",
              Inv.size(), Inv.numShort(), Inv.numLong());
}

int main() {
  std::printf("== Token inventories (paper Tables 2-4 + small subjects) ==\n");
  printInventory("Table 2: json tokens per length", "json");
  printInventory("Table 3: tinyC tokens per length", "tinyc");
  printInventory("Table 4: mjs tokens per length", "mjs");
  printInventory("ini tokens (no paper table; used by Figure 3)", "ini");
  printInventory("csv tokens (no paper table; used by Figure 3)", "csv");
  printInventory("arith tokens (Section 2 example)", "arith");
  std::printf("\nPaper check: json 8/1/2/1 for lengths 1/2/4/5; tinyC"
              " 11/2/1/1 for\nlengths 1/2/4/5; mjs 27/24/13/10/9/7/3/3/2/1"
              " (ours has 26 at length 1\n-- one punctuation token fewer"
              " than cesanta mjs; see EXPERIMENTS.md).\n");
  return 0;
}
