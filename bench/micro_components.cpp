//===- bench/micro_components.cpp - Component micro-benchmarks ------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks of the fuzzing building blocks: taint-set algebra,
/// tainted strings, tokenizers, the heuristic, and short end-to-end
/// fuzzing bursts of each tool. These bound the per-execution cost of the
/// machinery around the subjects.
///
//===----------------------------------------------------------------------===//

#include "baselines/AflFuzzer.h"
#include "baselines/KleeFuzzer.h"
#include "core/Heuristic.h"
#include "core/PFuzzer.h"
#include "tokens/Tokenizers.h"

#include <benchmark/benchmark.h>

using namespace pfuzz;

static void BM_TaintMergeDisjoint(benchmark::State &State) {
  TaintSet A = TaintSet::forRange(0, 16);
  TaintSet B = TaintSet::forRange(100, 116);
  for (auto _ : State) {
    TaintSet M = TaintSet::merged(A, B);
    benchmark::DoNotOptimize(M.size());
  }
}
BENCHMARK(BM_TaintMergeDisjoint);

static void BM_TaintMergeOverlapping(benchmark::State &State) {
  TaintSet A = TaintSet::forRange(0, 64);
  TaintSet B = TaintSet::forRange(32, 96);
  for (auto _ : State) {
    TaintSet M = TaintSet::merged(A, B);
    benchmark::DoNotOptimize(M.size());
  }
}
BENCHMARK(BM_TaintMergeOverlapping);

static void BM_TStringAccumulate(benchmark::State &State) {
  for (auto _ : State) {
    TString S;
    for (uint32_t I = 0; I != 32; ++I)
      S.push_back(TChar('a' + (I % 26), TaintSet::forIndex(I)));
    benchmark::DoNotOptimize(S.size());
  }
}
BENCHMARK(BM_TStringAccumulate);

static void BM_HeuristicScore(benchmark::State &State) {
  HeuristicInputs In;
  In.NewBranches = 12;
  In.InputLen = 20;
  In.ReplacementLen = 5;
  In.AvgStackSize = 4;
  In.NumParents = 7;
  In.PathCount = 3;
  HeuristicOptions Opt;
  for (auto _ : State)
    benchmark::DoNotOptimize(heuristicScore(In, Opt));
}
BENCHMARK(BM_HeuristicScore);

static void BM_TokenizeMjs(benchmark::State &State) {
  const char *Program =
      "function f(a){for(var i=0;i<a.length;i++){if(a[i]>=0){continue;}"
      "else{return JSON.stringify(a);}}return undefined;}";
  for (auto _ : State)
    benchmark::DoNotOptimize(extractTokens("mjs", Program).size());
}
BENCHMARK(BM_TokenizeMjs);

static void BM_TokenizeJson(benchmark::State &State) {
  const char *Doc = "{\"a\":[1,2,3,true,false,null],\"b\":\"str\"}";
  for (auto _ : State)
    benchmark::DoNotOptimize(extractTokens("json", Doc).size());
}
BENCHMARK(BM_TokenizeJson);

namespace {

/// Measures a whole mini-campaign of a tool; the counter reports
/// executions per second of wall-clock, the throughput unit the paper's
/// budget comparisons hinge on.
template <typename ToolT>
void runBurst(benchmark::State &State, const Subject &S, uint64_t Execs) {
  uint64_t Seed = 1;
  for (auto _ : State) {
    ToolT Tool;
    FuzzerOptions Opts;
    Opts.Seed = Seed++;
    Opts.MaxExecutions = Execs;
    FuzzReport R = Tool.run(S, Opts);
    benchmark::DoNotOptimize(R.ValidInputs.size());
  }
  State.counters["execs_per_iter"] = static_cast<double>(Execs);
}

} // namespace

static void BM_PFuzzerBurstJson(benchmark::State &State) {
  runBurst<PFuzzer>(State, jsonSubject(), 500);
}
BENCHMARK(BM_PFuzzerBurstJson);

static void BM_AflBurstJson(benchmark::State &State) {
  runBurst<AflFuzzer>(State, jsonSubject(), 500);
}
BENCHMARK(BM_AflBurstJson);

static void BM_KleeBurstJson(benchmark::State &State) {
  runBurst<KleeFuzzer>(State, jsonSubject(), 500);
}
BENCHMARK(BM_KleeBurstJson);

static void BM_PFuzzerBurstMjs(benchmark::State &State) {
  runBurst<PFuzzer>(State, mjsSubject(), 500);
}
BENCHMARK(BM_PFuzzerBurstMjs);
