//===- bench/fig2_coverage.cpp - Figure 2: coverage per subject/tool ------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 2 of the paper: branch coverage obtained by the
/// valid inputs of each tool (AFL, KLEE, pFuzzer) on each subject, as a
/// grouped bar chart. The paper ran 48 h per tool/subject; here execution
/// budgets stand in (AFL gets a 10x budget, reflecting its throughput
/// advantage — scale everything with --budget-scale=N for longer runs).
///
/// --subject=NAME and --tools=LIST cut the grid down to one cell — CI's
/// perf smoke runs `--tools=pfuzzer --subject=json --json=...` twice,
/// with and without --locality, and compares throughput. The paper
/// shape checks only run on the full grid.
///
/// Expected shape (paper Section 5.2): AFL ahead on ini and csv, AFL
/// clearly ahead on mjs, pFuzzer ahead on tinyC, KLEE near zero on mjs.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "eval/Campaign.h"
#include "eval/TableWriter.h"
#include "support/CommandLine.h"
#include "support/Scheduler.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace pfuzz;

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  CampaignBudgets Budgets;
  Budgets.scale(static_cast<uint64_t>(Cli.getInt("budget-scale", 1)));
  int Runs = static_cast<int>(Cli.getInt("runs", 1));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  int Jobs = static_cast<int>(Cli.getCount("jobs", 1));
  ToolOptions ToolCfg;
  ToolCfg.PFuzzerRunCache =
      static_cast<uint32_t>(Cli.getCount("run-cache", ToolCfg.PFuzzerRunCache));
  ToolCfg.PFuzzerSpeculation = static_cast<int>(
      Cli.getCount("speculate", ToolCfg.PFuzzerSpeculation, /*Min=*/-1));
  ToolCfg.PFuzzerResumeCache = static_cast<uint32_t>(
      Cli.getCount("resume-cache", ToolCfg.PFuzzerResumeCache));
  ToolCfg.PFuzzerLocality = Cli.getBool("locality", false) ? 64 : 0;
  ToolCfg.PFuzzerShards = static_cast<uint32_t>(
      Cli.getCount("shards", ToolCfg.PFuzzerShards, /*Min=*/1));
  std::string SubjectFilter = Cli.getString("subject", "");
  std::string ToolsFilter = Cli.getString("tools", "afl,klee,pfuzzer");
  bool Timeline = Cli.getBool("timeline", false);
  std::string TelemetryPath = Cli.getString("telemetry", "");
  uint64_t HeartbeatEvery = static_cast<uint64_t>(
      Cli.getCount("heartbeat", 4096, /*Min=*/1));
  BenchJsonWriter Json(Cli.getString("json", ""));
  bool FlagsOk = Cli.ok() && Cli.unqueried().empty();

  HeartbeatEmitter Heartbeat;
  if (FlagsOk && !TelemetryPath.empty()) {
    if (!Heartbeat.open(TelemetryPath, HeartbeatEvery)) {
      std::fprintf(stderr, "error: cannot open telemetry file '%s'\n",
                   TelemetryPath.c_str());
      return 1;
    }
    ToolCfg.PFuzzerHeartbeat = &Heartbeat;
  }

  // Resolve the tool list before the usage check so a typo in --tools
  // reports through the same path as an unknown flag.
  std::vector<ToolKind> Tools;
  for (const std::string &Name : splitString(ToolsFilter, ',')) {
    if (Name == "afl")
      Tools.push_back(ToolKind::Afl);
    else if (Name == "klee")
      Tools.push_back(ToolKind::Klee);
    else if (Name == "pfuzzer")
      Tools.push_back(ToolKind::PFuzzer);
    else {
      std::fprintf(stderr, "error: unknown tool '%s'\n", Name.c_str());
      FlagsOk = false;
    }
  }
  std::vector<const Subject *> Subjects;
  for (const Subject *S : evaluationSubjects())
    if (SubjectFilter.empty() || S->name() == SubjectFilter)
      Subjects.push_back(S);
  if (Subjects.empty()) {
    std::fprintf(stderr, "error: unknown subject '%s'\n",
                 SubjectFilter.c_str());
    FlagsOk = false;
  }
  if (!FlagsOk) {
    for (const std::string &Err : Cli.errors())
      std::fprintf(stderr, "error: %s\n", Err.c_str());
    std::fprintf(stderr, "usage: fig2_coverage [--budget-scale=N]"
                         " [--runs=N] [--seed=N] [--jobs=N] [--run-cache=N]"
                         " [--resume-cache=N] [--locality] [--speculate=N]"
                         " [--shards=N] [--subject=NAME] [--tools=LIST]"
                         " [--timeline] [--telemetry=FILE] [--heartbeat=N]"
                         " [--json=PATH]\n");
    return 1;
  }

  std::printf("== Figure 2: obtained coverage per subject and tool ==\n");
  std::printf("(branch coverage of valid inputs; budgets: pFuzzer/KLEE"
              " %llu, AFL %llu execs, best of %d run(s), %d job(s))\n\n",
              static_cast<unsigned long long>(Budgets.PFuzzerExecs),
              static_cast<unsigned long long>(Budgets.AflExecs), Runs,
              Jobs <= 0 ? static_cast<int>(Scheduler::hardwareThreads())
                        : Jobs);

  size_t NumTools = Tools.size();
  // One flat grid: every (tool, subject, seed) run is an independent task,
  // so --jobs=N overlaps slow cells (AFL's 10x budget) with fast ones.
  std::vector<CampaignCell> Grid;
  for (const Subject *S : Subjects)
    for (ToolKind Tool : Tools)
      Grid.push_back({Tool, S, Budgets.executionsFor(Tool)});
  auto GridStart = std::chrono::steady_clock::now();
  SchedulerStats SchedBefore = Scheduler::globalStats();
  std::vector<CampaignResult> Results =
      runCampaignGrid(Grid, Seed, Runs, Jobs, ToolCfg);
  SchedulerStats Sched = Scheduler::globalStats().minus(SchedBefore);
  double GridSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - GridStart)
                           .count();

  std::vector<std::string> Headers = {"Subject"};
  for (ToolKind Tool : Tools)
    Headers.push_back(std::string(toolName(Tool)) + " %");
  Headers.push_back("Wall");
  Headers.push_back("Execs/s");
  TableWriter Table(Headers);
  struct BarRow {
    std::string Subject;
    std::vector<double> Ratios;
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> Timelines;
    uint64_t Outcomes = 0;
  };
  std::vector<BarRow> Bars;
  for (size_t SubIdx = 0; SubIdx != Subjects.size(); ++SubIdx) {
    const Subject *S = Subjects[SubIdx];
    BarRow Row;
    Row.Subject = S->name();
    std::vector<std::string> Cells = {std::string(S->name())};
    double RowSeconds = 0;
    uint64_t RowExecs = 0;
    for (size_t T = 0; T != NumTools; ++T) {
      const CampaignResult &R = Results[SubIdx * NumTools + T];
      Row.Ratios.push_back(R.coverageRatio(*S));
      Row.Timelines.push_back(R.Report.CoverageTimeline);
      Row.Outcomes = 2ull * S->numBranchSites();
      RowSeconds += R.WallSeconds;
      RowExecs += R.TotalExecutions;
      Json.add(
          {.Bench = "fig2_coverage",
           .Subject = std::string(toolName(Tools[T])) + "/" + Row.Subject,
           .ExecsPerSec = R.execsPerSec(),
           .WallMs = R.WallSeconds * 1000.0,
           .ResumeHitRate = R.Resume.hitRate(),
           .ResumeRungDepth = R.Resume.avgHitRungDepth(),
           .LocalityBatch = Tools[T] == ToolKind::PFuzzer
                                ? static_cast<double>(ToolCfg.PFuzzerLocality)
                                : 0,
           .SchedTasks = static_cast<double>(Sched.submitted()),
           .SchedStealRate = Sched.stealSuccessRate(),
           .QueueBytesPeak = static_cast<double>(R.Queue.PeakBytes),
           .RescoreNsPerExec =
               static_cast<double>(R.Queue.RescoreNanos) /
               static_cast<double>(std::max<uint64_t>(R.TotalExecutions, 1)),
           .Shards = Tools[T] == ToolKind::PFuzzer
                         ? static_cast<double>(ToolCfg.PFuzzerShards)
                         : 0,
           .ShardDeltas = static_cast<double>(R.Shards.DeltasPublished),
           .ShardMigrations = static_cast<double>(R.Shards.MigrationsAccepted),
           .ShardFrontierLag =
               static_cast<double>(R.Shards.MaxFrontierLag)});
      Cells.push_back(formatDouble(Row.Ratios[T] * 100, 1));
      std::fprintf(stderr,
                   "  done: %s on %s (%llu execs, %zu valid, %s, %s)\n",
                   std::string(toolName(Tools[T])).c_str(),
                   std::string(S->name()).c_str(),
                   static_cast<unsigned long long>(R.TotalExecutions),
                   R.Report.ValidInputs.size(),
                   formatSeconds(R.WallSeconds).c_str(),
                   formatExecsPerSec(R.TotalExecutions, R.WallSeconds)
                       .c_str());
    }
    Cells.push_back(formatSeconds(RowSeconds));
    Cells.push_back(formatExecsPerSec(RowExecs, RowSeconds));
    Bars.push_back(Row);
    Table.addRow(std::move(Cells));
  }
  Table.print(stdout);
  uint64_t GridExecs = 0;
  double CpuSeconds = 0;
  for (const CampaignResult &R : Results) {
    GridExecs += R.TotalExecutions;
    CpuSeconds += R.WallSeconds;
  }
  std::printf("\ngrid wall-clock %s (cpu %s), %s aggregate\n",
              formatSeconds(GridSeconds).c_str(),
              formatSeconds(CpuSeconds).c_str(),
              formatExecsPerSec(GridExecs, GridSeconds).c_str());
  if (Sched.submitted() > 0)
    std::printf("scheduler: %llu tasks, %llu stolen, steal success %.1f%%,"
                " idle %.2fs\n",
                static_cast<unsigned long long>(Sched.submitted()),
                static_cast<unsigned long long>(Sched.Stolen),
                100 * Sched.stealSuccessRate(), Sched.IdleSeconds);

  std::printf("\nCoverage by each tool:\n");
  for (const BarRow &Row : Bars) {
    std::printf("%s\n", Row.Subject.c_str());
    for (size_t T = 0; T != NumTools; ++T)
      printBar(stdout, std::string(toolName(Tools[T])).c_str(),
               Row.Ratios[T]);
  }

  if (Timeline) {
    std::printf("\nCoverage growth over each tool's own budget (left ="
                " campaign start):\n");
    for (const BarRow &Row : Bars) {
      std::printf("%s (of %llu outcomes)\n", Row.Subject.c_str(),
                  static_cast<unsigned long long>(Row.Outcomes));
      for (size_t T = 0; T != NumTools; ++T)
        printSeries(stdout, std::string(toolName(Tools[T])).c_str(),
                    Row.Timelines[T], Row.Outcomes);
    }
  }

  // Shape checks against the paper's Figure 2 — meaningful only on the
  // full tool x subject grid.
  if (NumTools == 3 && SubjectFilter.empty()) {
    auto Ratio = [&](const char *Name, int Tool) {
      for (const BarRow &Row : Bars)
        if (Row.Subject == Name)
          return Row.Ratios[static_cast<size_t>(Tool)];
      return 0.0;
    };
    std::printf("\nShape checks vs paper:\n");
    std::printf("  AFL >= pFuzzer on ini: %s\n",
                Ratio("ini", 0) >= Ratio("ini", 2) ? "yes" : "NO");
    std::printf("  AFL >= pFuzzer on csv: %s\n",
                Ratio("csv", 0) >= Ratio("csv", 2) ? "yes" : "NO");
    std::printf("  pFuzzer > AFL on tinyc: %s\n",
                Ratio("tinyc", 2) > Ratio("tinyc", 0) ? "yes" : "NO");
    std::printf("  AFL > pFuzzer on mjs: %s\n",
                Ratio("mjs", 0) > Ratio("mjs", 2) ? "yes" : "NO");
    std::printf("  KLEE lowest on mjs: %s\n",
                (Ratio("mjs", 1) <= Ratio("mjs", 0) &&
                 Ratio("mjs", 1) <= Ratio("mjs", 2))
                    ? "yes"
                    : "NO");
  }
  if (Heartbeat.enabled()) {
    uint64_t Beats = Heartbeat.beats();
    if (!Heartbeat.close()) {
      std::fprintf(stderr, "error: writing telemetry file '%s' failed\n",
                   TelemetryPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "telemetry: %llu heartbeat records -> %s\n",
                 static_cast<unsigned long long>(Beats),
                 TelemetryPath.c_str());
  }
  return Json.write() ? 0 : 1;
}
