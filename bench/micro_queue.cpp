//===- bench/micro_queue.cpp - Queue + coverage bookkeeping benchmarks ----===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks of the fuzzing loop's hot bookkeeping: branch-coverage
/// membership tests (the per-execution runCheck pattern and the per-rescore
/// novelty filter), comparing the old std::set representation against the
/// dense BranchCoverageMap bitmap, plus candidate max-heap push/pop. The
/// *Set* and *Bitmap* pairs run the same workload, so their ratio is the
/// speedup of the dense representation.
///
/// `--sweep` switches to the campaign sweeps instead. First the
/// scheduler contention sweep: a mixed Jobs + speculation campaign grid
/// at 1/2/4/8 workers, run twice per worker count — once on the unified
/// work-stealing scheduler (one pool for both layers) and once on the
/// legacy static split (mutex-FIFO ThreadPool for Jobs, a dedicated
/// per-campaign pool for speculation). Then the queue representation
/// sweep: each cell re-run sequentially on the compact candidate store
/// and on the string-backed reference queue, recording peak queue bytes
/// and amortized rescore time per execution for both. Everything goes to
/// --json; every configuration is checked byte-identical against a
/// sequential reference, so the sweep doubles as an end-to-end
/// determinism gate (exit 1 on any divergence).
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "core/BranchCoverageMap.h"
#include "eval/Campaign.h"
#include "runtime/ExecutionContext.h"
#include "support/CommandLine.h"
#include "support/Scheduler.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string_view>
#include <vector>

using namespace pfuzz;

namespace {

/// Deterministic branch-key stream shaped like real traces: keys cluster
/// in a bounded site range and repeat heavily (parsers re-execute the
/// same dispatch branches on every input).
std::vector<uint32_t> traceKeys(size_t Count, uint32_t SiteRange,
                                uint64_t Seed) {
  std::vector<uint32_t> Keys;
  Keys.reserve(Count);
  uint64_t State = Seed * 6364136223846793005ull + 1442695040888963407ull;
  for (size_t I = 0; I != Count; ++I) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    uint32_t Site = static_cast<uint32_t>((State >> 33) % SiteRange);
    Keys.push_back(Site << 1 | static_cast<uint32_t>(State & 1));
  }
  return Keys;
}

/// Per-candidate branch lists as rescoreQueue sees them: each list is the
/// novel suffix of one execution's trace.
std::vector<std::vector<uint32_t>> candidateLists(size_t NumCandidates,
                                                  size_t ListLen,
                                                  uint32_t SiteRange) {
  std::vector<std::vector<uint32_t>> Lists;
  Lists.reserve(NumCandidates);
  for (size_t I = 0; I != NumCandidates; ++I)
    Lists.push_back(traceKeys(ListLen, SiteRange, I + 17));
  return Lists;
}

} // namespace

// The runCheck pattern: for every execution, walk the covered branches of
// the run, count the unseen ones, then fold them into global coverage.
static void BM_RunCheckBookkeepingSet(benchmark::State &State) {
  std::vector<std::vector<uint32_t>> Traces = candidateLists(64, 400, 500);
  for (auto _ : State) {
    std::set<uint32_t> Valid;
    size_t Fresh = 0;
    for (const std::vector<uint32_t> &Trace : Traces) {
      for (uint32_t B : Trace)
        if (!Valid.count(B))
          ++Fresh;
      Valid.insert(Trace.begin(), Trace.end());
    }
    benchmark::DoNotOptimize(Fresh);
    benchmark::DoNotOptimize(Valid.size());
  }
}
BENCHMARK(BM_RunCheckBookkeepingSet);

static void BM_RunCheckBookkeepingBitmap(benchmark::State &State) {
  std::vector<std::vector<uint32_t>> Traces = candidateLists(64, 400, 500);
  for (auto _ : State) {
    BranchCoverageMap Valid;
    size_t Fresh = 0;
    for (const std::vector<uint32_t> &Trace : Traces) {
      for (uint32_t B : Trace)
        if (!Valid.test(B))
          ++Fresh;
      Valid.insert(Trace.begin(), Trace.end());
    }
    benchmark::DoNotOptimize(Fresh);
    benchmark::DoNotOptimize(Valid.size());
  }
}
BENCHMARK(BM_RunCheckBookkeepingBitmap);

// The rescoreQueue pattern: re-filter every queued candidate's branch
// list against grown global coverage.
static void BM_RescoreFilterSet(benchmark::State &State) {
  std::vector<std::vector<uint32_t>> Lists = candidateLists(256, 60, 1000);
  std::vector<uint32_t> Covered = traceKeys(800, 1000, 99);
  std::set<uint32_t> Valid(Covered.begin(), Covered.end());
  for (auto _ : State) {
    size_t Surviving = 0;
    for (const std::vector<uint32_t> &List : Lists)
      for (uint32_t B : List)
        if (!Valid.count(B))
          ++Surviving;
    benchmark::DoNotOptimize(Surviving);
  }
}
BENCHMARK(BM_RescoreFilterSet);

static void BM_RescoreFilterBitmap(benchmark::State &State) {
  std::vector<std::vector<uint32_t>> Lists = candidateLists(256, 60, 1000);
  std::vector<uint32_t> Covered = traceKeys(800, 1000, 99);
  BranchCoverageMap Valid;
  Valid.insert(Covered.begin(), Covered.end());
  for (auto _ : State) {
    size_t Surviving = 0;
    for (const std::vector<uint32_t> &List : Lists)
      for (uint32_t B : List)
        if (!Valid.test(B))
          ++Surviving;
    benchmark::DoNotOptimize(Surviving);
  }
}
BENCHMARK(BM_RescoreFilterBitmap);

// Candidate queue push/pop: the max-heap discipline PFuzzer::run uses
// (push_heap on add, pop_heap on pick).
static void BM_QueuePushPop(benchmark::State &State) {
  struct Candidate {
    double Score;
    uint64_t Id;
    bool operator<(const Candidate &O) const { return Score < O.Score; }
  };
  std::vector<uint32_t> Scores = traceKeys(4096, 1 << 20, 42);
  for (auto _ : State) {
    std::vector<Candidate> Queue;
    Queue.reserve(Scores.size());
    // Grow the heap, interleaving pops the way the fuzzing loop does.
    for (size_t I = 0; I != Scores.size(); ++I) {
      Queue.push_back({static_cast<double>(Scores[I]), I});
      std::push_heap(Queue.begin(), Queue.end());
      if (I % 4 == 3) {
        std::pop_heap(Queue.begin(), Queue.end());
        Queue.pop_back();
      }
    }
    benchmark::DoNotOptimize(Queue.size());
  }
}
BENCHMARK(BM_QueuePushPop);

// Distinct-branch extraction (RunResult::coveredBranchesUpTo), the
// per-execution dedup runCheck and computeStats perform twice per run.
// Before: copy the trace, sort the whole copy, unique. After: one
// epoch-stamped seen-array pass over the trace, sorting only the distinct
// entries. Same workload, same (sorted) output — the ratio is the speedup.
static void BM_CoveredBranchesSortUnique(benchmark::State &State) {
  std::vector<uint32_t> Trace = traceKeys(4000, 400, 7);
  std::vector<uint32_t> Out;
  for (auto _ : State) {
    Out.assign(Trace.begin(), Trace.end());
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    benchmark::DoNotOptimize(Out.size());
  }
}
BENCHMARK(BM_CoveredBranchesSortUnique);

static void BM_CoveredBranchesEpochStamp(benchmark::State &State) {
  RunResult RR;
  RR.BranchTrace = traceKeys(4000, 400, 7);
  std::vector<uint32_t> Out;
  for (auto _ : State) {
    RR.coveredBranches(Out);
    benchmark::DoNotOptimize(Out.size());
  }
}
BENCHMARK(BM_CoveredBranchesEpochStamp);

// Epoch short-circuit: a rescore pass over candidates whose FilterEpoch
// already matches does no membership tests at all.
static void BM_RescoreEpochSkip(benchmark::State &State) {
  std::vector<std::vector<uint32_t>> Lists = candidateLists(256, 60, 1000);
  BranchCoverageMap Valid;
  uint64_t Epoch = Valid.epoch();
  std::vector<uint64_t> FilterEpochs(Lists.size(), Epoch);
  for (auto _ : State) {
    size_t Rescored = 0;
    for (size_t I = 0; I != Lists.size(); ++I)
      if (FilterEpochs[I] != Valid.epoch())
        ++Rescored;
    benchmark::DoNotOptimize(Rescored);
  }
}
BENCHMARK(BM_RescoreEpochSkip);

//===----------------------------------------------------------------------===//
// Scheduler contention sweep (--sweep)
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic-result equality: everything in a CampaignResult except
/// timing must match the sequential reference bit for bit.
bool identicalResults(const CampaignResult &A, const CampaignResult &B) {
  return A.Report.Executions == B.Report.Executions &&
         A.TotalExecutions == B.TotalExecutions &&
         A.Report.ValidInputs == B.Report.ValidInputs &&
         A.Report.ValidBranches == B.Report.ValidBranches &&
         A.Report.CoverageTimeline == B.Report.CoverageTimeline &&
         A.TokensFound == B.TokensFound;
}

/// Folds per-seed single-run results into one best-run cell result, in
/// seed order — the same reduction eval/Campaign.cpp performs, repeated
/// here so the static-split baseline can fan (cell, seed) tasks out over
/// a plain ThreadPool without touching the unified scheduler.
CampaignResult foldBest(std::vector<CampaignResult> &Seeds) {
  CampaignResult Best = std::move(Seeds.front());
  for (size_t I = 1; I < Seeds.size(); ++I) {
    CampaignResult &Out = Seeds[I];
    Best.WallSeconds += Out.WallSeconds;
    Best.TotalExecutions += Out.TotalExecutions;
    bool Better =
        Out.Report.ValidBranches.size() > Best.Report.ValidBranches.size() ||
        (Out.Report.ValidBranches.size() ==
             Best.Report.ValidBranches.size() &&
         Out.TokensFound.size() > Best.TokensFound.size());
    if (Better) {
      Best.Report = std::move(Out.Report);
      Best.TokensFound = std::move(Out.TokensFound);
    }
  }
  return Best;
}

uint64_t totalExecs(const std::vector<CampaignResult> &Results) {
  uint64_t Sum = 0;
  for (const CampaignResult &R : Results)
    Sum += R.TotalExecutions;
  return Sum;
}

int runSweep(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  Cli.getBool("sweep", false); // the mode switch that got us here
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("sweep-execs", 2500));
  int Runs = static_cast<int>(Cli.getInt("sweep-runs", 3));
  std::string WorkersList = Cli.getString("workers", "1,2,4,8");
  BenchJsonWriter Json(Cli.getString("json", ""));
  bool FlagsOk = Cli.ok() && Cli.unqueried().empty();
  std::vector<unsigned> WorkerGrid;
  for (const std::string &Tok : splitString(WorkersList, ',')) {
    int W = std::atoi(Tok.c_str());
    if (W < 1) {
      std::fprintf(stderr, "error: bad worker count '%s'\n", Tok.c_str());
      FlagsOk = false;
      break;
    }
    WorkerGrid.push_back(static_cast<unsigned>(W));
  }
  if (!FlagsOk) {
    for (const std::string &Err : Cli.errors())
      std::fprintf(stderr, "error: %s\n", Err.c_str());
    std::fprintf(stderr, "usage: micro_queue --sweep [--sweep-execs=N]"
                         " [--sweep-runs=N] [--workers=LIST]"
                         " [--json=PATH]\n");
    return 1;
  }

  // Mixed load: two pFuzzer cells, every campaign speculating — Jobs,
  // speculation, and (in the unified mode) their interleavings all hit
  // the same queues.
  std::vector<CampaignCell> Cells = {
      {ToolKind::PFuzzer, &dyckSubject(), Execs},
      {ToolKind::PFuzzer, &jsonSubject(), Execs},
  };
  constexpr uint64_t Seed = 1;
  constexpr int SpecHint = 2;

  std::printf("== Scheduler contention sweep: unified vs static split ==\n");
  std::printf("(%zu cells x %d seed runs, %llu execs each, speculation"
              " hint %d)\n\n",
              Cells.size(), Runs, static_cast<unsigned long long>(Execs),
              SpecHint);

  // The sequential reference: Jobs=1, no speculation, no pools. Every
  // parallel configuration below must reproduce it byte for byte.
  std::vector<CampaignResult> Ref =
      runCampaignGrid(Cells, Seed, Runs, /*Jobs=*/1, ToolOptions());

  std::printf("%-9s %8s %9s %11s %7s %7s %6s  %s\n", "mode", "workers",
              "wall[s]", "execs/s", "tasks", "stolen", "steal%", "reports");
  bool AllIdentical = true;
  for (unsigned W : WorkerGrid) {
    // Unified: one work-stealing pool carries the Jobs layer and every
    // campaign's speculation, at descending priority.
    auto T0 = std::chrono::steady_clock::now();
    SchedulerStats St;
    std::vector<CampaignResult> Unified;
    {
      Scheduler Sched(W);
      ToolOptions Tools;
      Tools.Sched = &Sched;
      Tools.PFuzzerSpeculation = SpecHint;
      Unified = runCampaignGrid(Cells, Seed, Runs, static_cast<int>(W),
                                Tools);
      St = Sched.stats();
    }
    double UnifiedWall = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - T0)
                             .count();
    bool UnifiedSame = Unified.size() == Ref.size();
    for (size_t I = 0; UnifiedSame && I != Ref.size(); ++I)
      UnifiedSame = identicalResults(Ref[I], Unified[I]);
    AllIdentical &= UnifiedSame;
    double UnifiedRate =
        UnifiedWall > 0 ? static_cast<double>(totalExecs(Unified)) /
                              UnifiedWall
                        : 0;
    std::printf("%-9s %8u %9.3f %11.0f %7llu %7llu %5.1f%%  %s\n", "unified",
                W, UnifiedWall, UnifiedRate,
                static_cast<unsigned long long>(St.submitted()),
                static_cast<unsigned long long>(St.Stolen),
                100 * St.stealSuccessRate(),
                UnifiedSame ? "identical" : "MISMATCH");
    Json.add({.Bench = "micro_queue",
              .Subject = "sweep-unified/w" + std::to_string(W),
              .ExecsPerSec = UnifiedRate,
              .WallMs = UnifiedWall * 1000.0,
              .SchedTasks = static_cast<double>(St.submitted()),
              .SchedStealRate = St.stealSuccessRate()});

    // Static split: the pre-scheduler world. A mutex-FIFO ThreadPool
    // fans the (cell, seed) tasks out, and every campaign owns a
    // dedicated speculation pool — thread counts multiply and idle
    // speculation workers cannot help other campaigns.
    T0 = std::chrono::steady_clock::now();
    size_t NumRuns = static_cast<size_t>(Runs);
    std::vector<std::vector<CampaignResult>> PerSeed(
        Cells.size(), std::vector<CampaignResult>(NumRuns));
    // Summed over every short-lived private pool, so the JSON row carries
    // the split world's real task traffic, comparable with the unified
    // row above.
    std::atomic<uint64_t> StaticTasks{0};
    std::atomic<uint64_t> StaticStealAttempts{0};
    std::atomic<uint64_t> StaticStealHits{0};
    {
      ThreadPool Pool(W);
      Pool.parallelFor(0, Cells.size() * NumRuns, [&](size_t Idx) {
        size_t C = Idx / NumRuns, R = Idx % NumRuns;
        Scheduler Private(SpecHint); // per-campaign dedicated pool
        ToolOptions Tools;
        Tools.Sched = &Private;
        Tools.PFuzzerSpeculation = SpecHint;
        PerSeed[C][R] =
            runCampaign(Cells[C].Tool, *Cells[C].S, Cells[C].Executions,
                        Seed + R, /*Runs=*/1, /*Jobs=*/1, Tools);
        SchedulerStats PSt = Private.stats();
        StaticTasks += PSt.submitted();
        StaticStealAttempts += PSt.StealAttempts;
        StaticStealHits += PSt.StealHits;
      });
    }
    std::vector<CampaignResult> Static;
    Static.reserve(Cells.size());
    for (std::vector<CampaignResult> &Seeds : PerSeed)
      Static.push_back(foldBest(Seeds));
    double StaticWall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - T0)
                            .count();
    bool StaticSame = Static.size() == Ref.size();
    for (size_t I = 0; StaticSame && I != Ref.size(); ++I)
      StaticSame = identicalResults(Ref[I], Static[I]);
    AllIdentical &= StaticSame;
    double StaticRate =
        StaticWall > 0 ? static_cast<double>(totalExecs(Static)) / StaticWall
                       : 0;
    std::printf("%-9s %8u %9.3f %11.0f %7s %7s %6s  %s\n", "static", W,
                StaticWall, StaticRate, "-", "-", "-",
                StaticSame ? "identical" : "MISMATCH");
    uint64_t Attempts = StaticStealAttempts.load();
    Json.add({.Bench = "micro_queue",
              .Subject = "sweep-static/w" + std::to_string(W),
              .ExecsPerSec = StaticRate,
              .WallMs = StaticWall * 1000.0,
              .SchedTasks = static_cast<double>(StaticTasks.load()),
              .SchedStealRate =
                  Attempts == 0
                      ? 0
                      : static_cast<double>(StaticStealHits.load()) /
                            static_cast<double>(Attempts)});
  }

  // Queue representation sweep: sequential campaigns run twice, once on
  // the compact candidate store and once on the by-value string queue,
  // compared byte for byte against each other. The dyck/json cells reuse
  // the contention budget (short-input regime, where the string queue
  // rides the small-string optimization); json-deep runs a 32x budget at
  // the default queue cap, filling the queue with ~100k candidates whose
  // inputs have outgrown SSO — the O(candidates x input-length) regime
  // the compact store targets, and where the headline memory ratio is
  // measured.
  struct RepCell {
    const char *Label;
    const Subject *S;
    uint64_t Execs;
    size_t MaxQueue; // 0 = default cap
  };
  const RepCell RepCells[] = {
      {"dyck", &dyckSubject(), Execs, 0},
      {"json", &jsonSubject(), Execs, 0},
      {"json-deep", &jsonSubject(), Execs * 32, 0},
  };
  std::printf("\n== Queue representation: compact store vs string queue ==\n");
  std::printf("%-9s %-10s %9s %11s %12s %11s  %s\n", "mode", "cell",
              "wall[s]", "execs/s", "peak[B]", "resc[ns/e]", "reports");
  for (const RepCell &Cell : RepCells) {
    const char *ModeName[2] = {"compact", "stringq"};
    double PeakBytes[2] = {0, 0};
    double Rate[2] = {0, 0};
    CampaignResult Results[2];
    for (int Mode = 0; Mode != 2; ++Mode) {
      ToolOptions Tools;
      Tools.PFuzzerReferenceQueue = Mode == 1;
      Tools.PFuzzerMaxQueue = Cell.MaxQueue;
      SchedulerStats SchedBefore = Scheduler::globalStats();
      auto T0 = std::chrono::steady_clock::now();
      Results[Mode] = runCampaign(ToolKind::PFuzzer, *Cell.S, Cell.Execs,
                                  Seed, Runs, /*Jobs=*/1, Tools);
      double Wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - T0)
                        .count();
      SchedulerStats SchedDelta = Scheduler::globalStats().minus(SchedBefore);
      const CampaignResult &R = Results[Mode];
      bool Same = Mode == 0 || identicalResults(Results[0], Results[1]);
      AllIdentical &= Same;
      Rate[Mode] =
          Wall > 0 ? static_cast<double>(R.TotalExecutions) / Wall : 0;
      PeakBytes[Mode] = static_cast<double>(R.Queue.PeakBytes);
      double RescoreNs = static_cast<double>(R.Queue.RescoreNanos) /
                         static_cast<double>(std::max<uint64_t>(
                             R.TotalExecutions, 1));
      std::printf("%-9s %-10s %9.3f %11.0f %12.0f %11.1f  %s\n",
                  ModeName[Mode], Cell.Label, Wall, Rate[Mode],
                  PeakBytes[Mode], RescoreNs,
                  Mode == 0 ? "-" : Same ? "identical" : "MISMATCH");
      Json.add({.Bench = "micro_queue",
                .Subject = std::string("sweep-") + ModeName[Mode] + "/" +
                           Cell.Label,
                .ExecsPerSec = Rate[Mode],
                .WallMs = Wall * 1000.0,
                .SchedTasks = static_cast<double>(SchedDelta.submitted()),
                .SchedStealRate = SchedDelta.stealSuccessRate(),
                .QueueBytesPeak = PeakBytes[Mode],
                .RescoreNsPerExec = RescoreNs});
    }
    if (PeakBytes[0] > 0 && Rate[1] > 0)
      std::printf("%-9s %-10s queue bytes %.2fx smaller, throughput %.2fx\n",
                  "ratio", Cell.Label, PeakBytes[1] / PeakBytes[0],
                  Rate[0] / Rate[1]);
  }

  if (!AllIdentical) {
    std::fprintf(stderr, "error: a parallel configuration diverged from"
                         " the sequential reference\n");
    return 1;
  }
  return Json.write() ? 0 : 1;
}

} // namespace

/// Custom main instead of benchmark_main: `--sweep` runs the scheduler
/// contention sweep; anything else goes to google-benchmark untouched.
int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::string_view(Argv[I]).rfind("--sweep", 0) == 0)
      return runSweep(Argc, Argv);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
