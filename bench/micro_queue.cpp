//===- bench/micro_queue.cpp - Queue + coverage bookkeeping benchmarks ----===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks of the fuzzing loop's hot bookkeeping: branch-coverage
/// membership tests (the per-execution runCheck pattern and the per-rescore
/// novelty filter), comparing the old std::set representation against the
/// dense BranchCoverageMap bitmap, plus candidate max-heap push/pop. The
/// *Set* and *Bitmap* pairs run the same workload, so their ratio is the
/// speedup of the dense representation.
///
//===----------------------------------------------------------------------===//

#include "core/BranchCoverageMap.h"
#include "runtime/ExecutionContext.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

using namespace pfuzz;

namespace {

/// Deterministic branch-key stream shaped like real traces: keys cluster
/// in a bounded site range and repeat heavily (parsers re-execute the
/// same dispatch branches on every input).
std::vector<uint32_t> traceKeys(size_t Count, uint32_t SiteRange,
                                uint64_t Seed) {
  std::vector<uint32_t> Keys;
  Keys.reserve(Count);
  uint64_t State = Seed * 6364136223846793005ull + 1442695040888963407ull;
  for (size_t I = 0; I != Count; ++I) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    uint32_t Site = static_cast<uint32_t>((State >> 33) % SiteRange);
    Keys.push_back(Site << 1 | static_cast<uint32_t>(State & 1));
  }
  return Keys;
}

/// Per-candidate branch lists as rescoreQueue sees them: each list is the
/// novel suffix of one execution's trace.
std::vector<std::vector<uint32_t>> candidateLists(size_t NumCandidates,
                                                  size_t ListLen,
                                                  uint32_t SiteRange) {
  std::vector<std::vector<uint32_t>> Lists;
  Lists.reserve(NumCandidates);
  for (size_t I = 0; I != NumCandidates; ++I)
    Lists.push_back(traceKeys(ListLen, SiteRange, I + 17));
  return Lists;
}

} // namespace

// The runCheck pattern: for every execution, walk the covered branches of
// the run, count the unseen ones, then fold them into global coverage.
static void BM_RunCheckBookkeepingSet(benchmark::State &State) {
  std::vector<std::vector<uint32_t>> Traces = candidateLists(64, 400, 500);
  for (auto _ : State) {
    std::set<uint32_t> Valid;
    size_t Fresh = 0;
    for (const std::vector<uint32_t> &Trace : Traces) {
      for (uint32_t B : Trace)
        if (!Valid.count(B))
          ++Fresh;
      Valid.insert(Trace.begin(), Trace.end());
    }
    benchmark::DoNotOptimize(Fresh);
    benchmark::DoNotOptimize(Valid.size());
  }
}
BENCHMARK(BM_RunCheckBookkeepingSet);

static void BM_RunCheckBookkeepingBitmap(benchmark::State &State) {
  std::vector<std::vector<uint32_t>> Traces = candidateLists(64, 400, 500);
  for (auto _ : State) {
    BranchCoverageMap Valid;
    size_t Fresh = 0;
    for (const std::vector<uint32_t> &Trace : Traces) {
      for (uint32_t B : Trace)
        if (!Valid.test(B))
          ++Fresh;
      Valid.insert(Trace.begin(), Trace.end());
    }
    benchmark::DoNotOptimize(Fresh);
    benchmark::DoNotOptimize(Valid.size());
  }
}
BENCHMARK(BM_RunCheckBookkeepingBitmap);

// The rescoreQueue pattern: re-filter every queued candidate's branch
// list against grown global coverage.
static void BM_RescoreFilterSet(benchmark::State &State) {
  std::vector<std::vector<uint32_t>> Lists = candidateLists(256, 60, 1000);
  std::vector<uint32_t> Covered = traceKeys(800, 1000, 99);
  std::set<uint32_t> Valid(Covered.begin(), Covered.end());
  for (auto _ : State) {
    size_t Surviving = 0;
    for (const std::vector<uint32_t> &List : Lists)
      for (uint32_t B : List)
        if (!Valid.count(B))
          ++Surviving;
    benchmark::DoNotOptimize(Surviving);
  }
}
BENCHMARK(BM_RescoreFilterSet);

static void BM_RescoreFilterBitmap(benchmark::State &State) {
  std::vector<std::vector<uint32_t>> Lists = candidateLists(256, 60, 1000);
  std::vector<uint32_t> Covered = traceKeys(800, 1000, 99);
  BranchCoverageMap Valid;
  Valid.insert(Covered.begin(), Covered.end());
  for (auto _ : State) {
    size_t Surviving = 0;
    for (const std::vector<uint32_t> &List : Lists)
      for (uint32_t B : List)
        if (!Valid.test(B))
          ++Surviving;
    benchmark::DoNotOptimize(Surviving);
  }
}
BENCHMARK(BM_RescoreFilterBitmap);

// Candidate queue push/pop: the max-heap discipline PFuzzer::run uses
// (push_heap on add, pop_heap on pick).
static void BM_QueuePushPop(benchmark::State &State) {
  struct Candidate {
    double Score;
    uint64_t Id;
    bool operator<(const Candidate &O) const { return Score < O.Score; }
  };
  std::vector<uint32_t> Scores = traceKeys(4096, 1 << 20, 42);
  for (auto _ : State) {
    std::vector<Candidate> Queue;
    Queue.reserve(Scores.size());
    // Grow the heap, interleaving pops the way the fuzzing loop does.
    for (size_t I = 0; I != Scores.size(); ++I) {
      Queue.push_back({static_cast<double>(Scores[I]), I});
      std::push_heap(Queue.begin(), Queue.end());
      if (I % 4 == 3) {
        std::pop_heap(Queue.begin(), Queue.end());
        Queue.pop_back();
      }
    }
    benchmark::DoNotOptimize(Queue.size());
  }
}
BENCHMARK(BM_QueuePushPop);

// Distinct-branch extraction (RunResult::coveredBranchesUpTo), the
// per-execution dedup runCheck and computeStats perform twice per run.
// Before: copy the trace, sort the whole copy, unique. After: one
// epoch-stamped seen-array pass over the trace, sorting only the distinct
// entries. Same workload, same (sorted) output — the ratio is the speedup.
static void BM_CoveredBranchesSortUnique(benchmark::State &State) {
  std::vector<uint32_t> Trace = traceKeys(4000, 400, 7);
  std::vector<uint32_t> Out;
  for (auto _ : State) {
    Out.assign(Trace.begin(), Trace.end());
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    benchmark::DoNotOptimize(Out.size());
  }
}
BENCHMARK(BM_CoveredBranchesSortUnique);

static void BM_CoveredBranchesEpochStamp(benchmark::State &State) {
  RunResult RR;
  RR.BranchTrace = traceKeys(4000, 400, 7);
  std::vector<uint32_t> Out;
  for (auto _ : State) {
    RR.coveredBranches(Out);
    benchmark::DoNotOptimize(Out.size());
  }
}
BENCHMARK(BM_CoveredBranchesEpochStamp);

// Epoch short-circuit: a rescore pass over candidates whose FilterEpoch
// already matches does no membership tests at all.
static void BM_RescoreEpochSkip(benchmark::State &State) {
  std::vector<std::vector<uint32_t>> Lists = candidateLists(256, 60, 1000);
  BranchCoverageMap Valid;
  uint64_t Epoch = Valid.epoch();
  std::vector<uint64_t> FilterEpochs(Lists.size(), Epoch);
  for (auto _ : State) {
    size_t Rescored = 0;
    for (size_t I = 0; I != Lists.size(); ++I)
      if (FilterEpochs[I] != Valid.epoch())
        ++Rescored;
    benchmark::DoNotOptimize(Rescored);
  }
}
BENCHMARK(BM_RescoreEpochSkip);
