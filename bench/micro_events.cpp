//===- bench/micro_events.cpp - Event-recording allocation counts ---------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counts heap allocations per instrumented execution by overriding the
/// global allocator in this binary. Each subject parses a fixed valid
/// corpus through one recycled RunResult (the campaign pattern); after a
/// short warm-up that grows every pooled buffer to its working-set size,
/// the steady state is measured.
///
/// Read the numbers as a pair: allocs_per_exec in Off mode is what the
/// subject itself allocates; the Full-mode figure minus the Off-mode
/// figure is the allocation cost of event recording — the quantity the
/// arena-backed events, inline taint representation and interned function
/// names drive to zero.
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> AllocCount{0};

} // namespace

// Counting allocator for this binary. Counting is the point; the actual
// allocation defers to malloc/free — which also makes GCC's
// -Wmismatched-new-delete a false positive here (our delete is free).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void *operator new(std::size_t Size) {
  AllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

using namespace pfuzz;

namespace {

const char *corpusFor(std::string_view Name) {
  if (Name == "ini")
    return "[section]\nkey=value\nother=1\n; comment\n[next]\na=b\n";
  if (Name == "csv")
    return "a,b,c\n\"quoted, field\",2,3\nx,\"y\"\"z\",w\n";
  if (Name == "json")
    return "{\"a\":[1,2.5,-3,true,false,null],\"b\":{\"s\":\"str\"}}";
  if (Name == "tinyc")
    return "{i=0;while(i<9){i=i+1;if(i<5)a=a+i;else b=b+i;}}";
  return "var a=[1,2,3];for(var i=0;i<3;i=i+1){a.push(i*2);}"
         "if(a.length>4){a=a.slice(1);}";
}

void runAllocBench(benchmark::State &State, const Subject &S,
                   InstrumentationMode Mode) {
  const char *Corpus = corpusFor(S.name());
  if (!S.accepts(Corpus)) {
    State.SkipWithError("corpus rejected");
    return;
  }
  RunResult RR;
  // Warm-up: grow every recycled buffer (trace vectors, event arena,
  // intern remap scratch) to working-set size.
  for (int I = 0; I != 16; ++I)
    S.execute(Corpus, Mode, RR);
  uint64_t Before = AllocCount.load(std::memory_order_relaxed);
  uint64_t Execs = 0;
  for (auto _ : State) {
    S.execute(Corpus, Mode, RR);
    ++Execs;
  }
  uint64_t Allocs = AllocCount.load(std::memory_order_relaxed) - Before;
  State.counters["allocs_per_exec"] =
      static_cast<double>(Allocs) / static_cast<double>(Execs ? Execs : 1);
}

} // namespace

#define PFUZZ_ALLOC_BENCH(SUBJECT)                                           \
  static void BM_##SUBJECT##_Allocs_Off(benchmark::State &State) {           \
    runAllocBench(State, SUBJECT##Subject(), InstrumentationMode::Off);      \
  }                                                                          \
  BENCHMARK(BM_##SUBJECT##_Allocs_Off);                                      \
  static void BM_##SUBJECT##_Allocs_Full(benchmark::State &State) {          \
    runAllocBench(State, SUBJECT##Subject(), InstrumentationMode::Full);     \
  }                                                                          \
  BENCHMARK(BM_##SUBJECT##_Allocs_Full);

PFUZZ_ALLOC_BENCH(ini)
PFUZZ_ALLOC_BENCH(csv)
PFUZZ_ALLOC_BENCH(json)
PFUZZ_ALLOC_BENCH(tinyc)
PFUZZ_ALLOC_BENCH(mjs)
