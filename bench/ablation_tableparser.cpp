//===- bench/ablation_tableparser.cpp - Section 7.1 study -----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7.1 claims that parser-directed fuzzing extends to table-driven
/// parsers: "instead of code coverage, one could implement coverage of
/// table elements. Thus, the general search heuristic would still work
/// especially as the implicit paths and character comparisons do also
/// exist in a table driven parser."
///
/// This bench fuzzes the *same language* (the Section 2 arithmetic
/// expressions) through two parsers — the recursive-descent `arith`
/// subject (code-branch coverage) and the LL(1) table-driven `ll1arith`
/// subject (table-element coverage) — and compares what every tool
/// achieves on each.
///
//===----------------------------------------------------------------------===//

#include "eval/Campaign.h"
#include "eval/TableWriter.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace pfuzz;

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 20000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  int Jobs = static_cast<int>(Cli.getInt("jobs", 1));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    std::fprintf(stderr, "usage: ablation_tableparser [--execs=N]"
                         " [--seed=N] [--jobs=N]\n");
    return 1;
  }

  std::printf("== Section 7.1: recursive descent vs table-driven parsing"
              " ==\n");
  std::printf("(same input language; %llu execs per tool; ll1arith counts"
              " parse-table\n elements as coverage sites)\n\n",
              static_cast<unsigned long long>(Execs));
  const char *SubjectNames[] = {"arith", "ll1arith"};
  const ToolKind Tools[] = {ToolKind::PFuzzer, ToolKind::Afl,
                            ToolKind::Klee};
  std::vector<CampaignCell> Grid;
  for (const char *SubjectName : SubjectNames)
    for (ToolKind Kind : Tools)
      Grid.push_back({Kind, findSubject(SubjectName), Execs});
  std::vector<CampaignResult> Results = runCampaignGrid(Grid, Seed, 1, Jobs);

  TableWriter Table({"Parser", "Tool", "Valid inputs", "Coverage %",
                     "Tokens", "Longest valid", "Execs/s"});
  for (size_t Cell = 0; Cell != Grid.size(); ++Cell) {
    const CampaignResult &R = Results[Cell];
    const Subject *S = Grid[Cell].S;
    size_t Longest = 0;
    for (const std::string &Input : R.Report.ValidInputs)
      Longest = std::max(Longest, Input.size());
    Table.addRow({SubjectNames[Cell / 3],
                  std::string(toolName(Grid[Cell].Tool)),
                  std::to_string(R.Report.ValidInputs.size()),
                  formatDouble(R.coverageRatio(*S) * 100, 1),
                  std::to_string(R.TokensFound.size()) + "/5",
                  std::to_string(Longest),
                  formatExecsPerSec(R.TotalExecutions, R.WallSeconds)});
    std::fprintf(stderr, "  done: %s on %s (%s)\n",
                 std::string(toolName(Grid[Cell].Tool)).c_str(),
                 SubjectNames[Cell / 3],
                 formatSeconds(R.WallSeconds).c_str());
  }
  Table.print(stdout);
  std::printf("\nReading: pFuzzer should find structured valid inputs on"
              " BOTH parsers,\nvalidating the Section 7.1 claim. Absolute"
              " coverage percentages are not\ncomparable across the two"
              " rows (branch sites vs table cells, and LL(1)\ntables"
              " contain many never-consulted error cells).\n");
  return 0;
}
