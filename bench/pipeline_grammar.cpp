//===- bench/pipeline_grammar.cpp - Section 7.4 pipeline study ------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates the paper's Section 7.4 proposal: "rely on parser-directed
/// fuzzing for initial exploration, mine the grammar from the resulting
/// sequences, and use the mined grammar for generating longer and more
/// complex sequences that contain recursive structures."
///
/// For each subject: pFuzzer explores, a grammar is mined from the valid
/// inputs' derivation trees (AutoGram-style), the grammar generates
/// sentences, and the table reports the validity ratio, the recursion
/// payoff (longest valid input before/after), and the coverage gained.
///
//===----------------------------------------------------------------------===//

#include "eval/TableWriter.h"
#include "mining/MiningPipeline.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/Scheduler.h"

#include <cstdio>

using namespace pfuzz;

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Explore = static_cast<uint64_t>(Cli.getInt("explore", 30000));
  uint64_t Generate = static_cast<uint64_t>(Cli.getInt("generate", 2000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  int Jobs = static_cast<int>(Cli.getInt("jobs", 1));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    std::fprintf(stderr, "usage: pipeline_grammar [--explore=N]"
                         " [--generate=N] [--seed=N] [--jobs=N]\n");
    return 1;
  }

  std::printf("== Section 7.4 pipeline: explore -> mine grammar ->"
              " generate ==\n");
  std::printf("(pFuzzer %llu execs, then %llu grammar-generated"
              " sentences)\n\n",
              static_cast<unsigned long long>(Explore),
              static_cast<unsigned long long>(Generate));
  TableWriter Table({"Subject", "Seeds", "NTs", "Alts", "Valid %",
                     "Max seed len", "Max gen len", "Cov before",
                     "Cov after"});
  const char *Names[] = {"arith", "json", "tinyc", "mjs"};
  PipelineResult Results[4];
  // Each subject's explore+mine+generate pipeline is self-contained, so
  // --jobs=N runs whole pipelines side by side.
  auto RunPipeline = [&](size_t Idx) {
    Results[Idx] =
        runMiningPipeline(*findSubject(Names[Idx]), Explore, Generate, Seed);
  };
  if (Jobs == 1) {
    for (size_t Idx = 0; Idx != 4; ++Idx)
      RunPipeline(Idx);
  } else {
    Scheduler::global().parallelFor(0, 4, RunPipeline,
                                    Jobs <= 0 ? 0 : static_cast<size_t>(Jobs));
  }
  for (size_t Idx = 0; Idx != 4; ++Idx) {
    const PipelineResult &R = Results[Idx];
    Table.addRow({Names[Idx], std::to_string(R.SeedInputs.size()),
                  std::to_string(R.GrammarNonTerminals),
                  std::to_string(R.GrammarAlternatives),
                  formatDouble(R.validRatio() * 100, 1),
                  std::to_string(R.MaxSeedLen),
                  std::to_string(R.MaxGeneratedValidLen),
                  std::to_string(R.SeedBranches),
                  std::to_string(R.CombinedBranches)});
    std::fprintf(stderr, "  done: %s\n", Names[Idx]);
  }
  Table.print(stdout);
  std::printf("\nReading: 'Max gen len' > 'Max seed len' demonstrates the"
              " recursion\npayoff the paper predicts; 'Cov after' >= 'Cov"
              " before' shows the\ngrammar phase adds coverage on top of"
              " exploration.\n");
  std::printf("\nExpected split: arith/json (pure 1-char-lookahead"
              " parsers) mine clean\ngrammars with near-100%% validity;"
              " tinyc/mjs validity collapses because\nthe interleaved"
              " tokenizer pre-reads one token, so activation spans\ninclude"
              " lookahead -- the same tokenization break that defeats"
              " taint\ntracking in Section 7.2.\n");
  return 0;
}
