//===- bench/RunResultCompare.h - Full-depth RunResult equality --*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared by the self-checking benches (micro_resume, micro_locality):
/// event-for-event equality of two RunResults, the strongest form of the
/// byte-identity contract — a resumed, laddered or batched execution must
/// record exactly what a cold execution of the same input records.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_BENCH_RUNRESULTCOMPARE_H
#define PFUZZ_BENCH_RUNRESULTCOMPARE_H

#include "runtime/ExecutionContext.h"

namespace pfuzz {

/// Full-depth RunResult equality: every trace, every comparison operand,
/// every taint set.
inline bool sameRunResult(const RunResult &A, const RunResult &B) {
  if (A.ExitCode != B.ExitCode || A.BranchTrace != B.BranchTrace ||
      A.EventChars != B.EventChars || A.FunctionNames != B.FunctionNames ||
      A.EofAccesses.size() != B.EofAccesses.size() ||
      A.CallTrace.size() != B.CallTrace.size() ||
      A.Comparisons.size() != B.Comparisons.size())
    return false;
  for (size_t I = 0; I != A.EofAccesses.size(); ++I)
    if (A.EofAccesses[I].AccessIndex != B.EofAccesses[I].AccessIndex)
      return false;
  for (size_t I = 0; I != A.CallTrace.size(); ++I)
    if (A.CallTrace[I].NameId != B.CallTrace[I].NameId ||
        A.CallTrace[I].Cursor != B.CallTrace[I].Cursor)
      return false;
  for (size_t I = 0; I != A.Comparisons.size(); ++I) {
    const ComparisonEvent &EA = A.Comparisons[I];
    const ComparisonEvent &EB = B.Comparisons[I];
    if (EA.Kind != EB.Kind || EA.Matched != EB.Matched ||
        EA.OnEof != EB.OnEof || EA.Implicit != EB.Implicit ||
        EA.StackDepth != EB.StackDepth ||
        EA.TracePosition != EB.TracePosition ||
        A.expected(EA) != B.expected(EB) || A.actual(EA) != B.actual(EB) ||
        !(EA.Taint == EB.Taint))
      return false;
  }
  return true;
}

} // namespace pfuzz

#endif // PFUZZ_BENCH_RUNRESULTCOMPARE_H
