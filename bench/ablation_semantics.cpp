//===- bench/ablation_semantics.cpp - Section 7.3 study -------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the Section 7.3 limitation: "our technique has no notion of
/// a delayed constraint. It assumes that if a character was accepted by
/// the parser, the character is correct. Hence, the input generated,
/// while it passes the parser, fails the semantic checks."
///
/// Runs pFuzzer against plain mjs (semantic checking disabled, the
/// paper's evaluation setup) and against mjssem (undeclared-identifier
/// reads fail after parsing), reporting how many syntactically valid
/// inputs survive the semantic phase.
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "eval/TableWriter.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/Scheduler.h"

#include <cstdio>

using namespace pfuzz;

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 40000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  int Jobs = static_cast<int>(Cli.getInt("jobs", 1));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    std::fprintf(stderr, "usage: ablation_semantics [--execs=N] [--seed=N]"
                         " [--jobs=N]\n");
    return 1;
  }

  std::printf("== Section 7.3: delayed semantic constraints ==\n");
  std::printf("(pFuzzer, %llu execs per campaign)\n\n",
              static_cast<unsigned long long>(Execs));

  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;

  // The two campaigns are independent; --jobs=2 overlaps them.
  const Subject *Subjects[2] = {&mjsSubject(), &mjsSemSubject()};
  FuzzReport Reports[2];
  auto RunCampaign = [&](size_t Idx) {
    PFuzzer Tool;
    Reports[Idx] = Tool.run(*Subjects[Idx], Opts);
  };
  if (Jobs == 1) {
    RunCampaign(0);
    RunCampaign(1);
  } else {
    Scheduler::global().parallelFor(0, 2, RunCampaign,
                                    Jobs <= 0 ? 0 : static_cast<size_t>(Jobs));
  }
  FuzzReport &Plain = Reports[0];
  FuzzReport &Sem = Reports[1];
  uint64_t SurviveSemantics = 0;
  for (const std::string &Input : Plain.ValidInputs)
    if (mjsSemSubject().accepts(Input))
      ++SurviveSemantics;

  TableWriter Table({"Campaign", "Emitted inputs", "Pass semantics",
                     "Coverage %"});
  Table.addRow({"mjs (checks off, paper setup)",
                std::to_string(Plain.ValidInputs.size()),
                std::to_string(SurviveSemantics) + " (" +
                    formatDouble(Plain.ValidInputs.empty()
                                     ? 0
                                     : 100.0 * SurviveSemantics /
                                           Plain.ValidInputs.size(),
                                 1) +
                    "%)",
                formatDouble(Plain.coverageRatio(mjsSubject()) * 100, 1)});
  Table.addRow({"mjssem (checks on)",
                std::to_string(Sem.ValidInputs.size()),
                std::to_string(Sem.ValidInputs.size()) + " (100.0%)",
                formatDouble(Sem.coverageRatio(mjsSemSubject()) * 100, 1)});
  Table.print(stdout);

  std::printf("\nReading: the gap in 'Pass semantics' for the first row is"
              " the paper's\nSection 7.3 limitation; fuzzing mjssem"
              " directly forces pFuzzer to only\nemit inputs that satisfy"
              " the delayed constraints (fewer, harder).\n");
  return 0;
}
