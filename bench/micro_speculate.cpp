//===- bench/micro_speculate.cpp - Speculative prefetch benchmark ---------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the speculative candidate prefetcher (PFuzzerOptions::
/// SpeculationThreads) on every evaluation subject: wall-clock and
/// throughput at 0/1/2/4 workers, prefetch hit rate, and waste. Every
/// speculating run's report is compared field-by-field against the
/// sequential baseline, so the benchmark doubles as an end-to-end
/// byte-identical check (exit code 1 on any divergence).
///
///   ./micro_speculate [--execs=N] [--seed=N] [--depth=N] [--run-cache=N]
///                     [--resume-cache=N] [--json=PATH]
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "core/PFuzzer.h"
#include "subjects/Subject.h"
#include "support/CommandLine.h"
#include "support/Scheduler.h"

#include <chrono>
#include <cstdio>

using namespace pfuzz;

namespace {

struct RunOutcome {
  FuzzReport Report;
  SpeculationStats Stats;
  ResumeStats Resume;
  SchedulerStats Sched;
  double WallSeconds = 0;
};

RunOutcome runOnce(const Subject &S, uint64_t Execs, uint64_t Seed,
                   uint32_t Workers, uint32_t Depth, uint32_t CacheSize,
                   uint32_t ResumeCache) {
  RunOutcome Out;
  PFuzzerOptions Options;
  Options.RunCacheSize = CacheSize;
  Options.SpeculationThreads = Workers;
  Options.SpeculationDepth = Depth;
  Options.StatsOut = &Out.Stats;
  Options.ResumeCacheSize = ResumeCache;
  Options.ResumeStatsOut = &Out.Resume;
  // A private pool pinned to exactly `Workers` threads, so the sweep
  // measures worker counts instead of whatever Scheduler::global() has.
  std::unique_ptr<Scheduler> Sched;
  if (Workers > 0) {
    Sched = std::make_unique<Scheduler>(Workers);
    Options.Sched = Sched.get();
  }
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  auto Start = std::chrono::steady_clock::now();
  Out.Report = Tool.run(S, Opts);
  Out.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  if (Sched)
    Out.Sched = Sched->stats();
  return Out;
}

bool sameReport(const FuzzReport &A, const FuzzReport &B) {
  return A.Executions == B.Executions && A.ValidInputs == B.ValidInputs &&
         A.ValidBranches == B.ValidBranches &&
         A.CoverageTimeline == B.CoverageTimeline;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 20000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  uint32_t Depth = static_cast<uint32_t>(Cli.getCount("depth", 0));
  uint32_t CacheSize = static_cast<uint32_t>(Cli.getCount("run-cache", 64));
  uint32_t ResumeCache =
      static_cast<uint32_t>(Cli.getCount("resume-cache", 0));
  BenchJsonWriter Json(Cli.getString("json", ""));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    for (const std::string &Err : Cli.errors())
      std::fprintf(stderr, "error: %s\n", Err.c_str());
    std::fprintf(stderr, "usage: micro_speculate [--execs=N] [--seed=N]"
                         " [--depth=N] [--run-cache=N] [--resume-cache=N]"
                         " [--json=PATH]\n");
    return 1;
  }

  std::printf("== Speculative prefetch: wall-clock and hit rates ==\n");
  std::printf("(%llu execs per run, seed %llu, depth %s, run-cache %u)\n\n",
              static_cast<unsigned long long>(Execs),
              static_cast<unsigned long long>(Seed),
              Depth == 0 ? "auto" : std::to_string(Depth).c_str(), CacheSize);
  std::printf("%-8s %7s %9s %11s %8s %6s %7s %7s  %s\n", "subject", "workers",
              "wall[s]", "execs/s", "speedup", "hit%", "ready%", "waste%",
              "report");

  bool AllIdentical = true;
  const uint32_t WorkerGrid[] = {0, 1, 2, 4};
  for (const Subject *S : evaluationSubjects()) {
    RunOutcome Baseline;
    for (uint32_t Workers : WorkerGrid) {
      RunOutcome Out =
          runOnce(*S, Execs, Seed, Workers, Depth, CacheSize, ResumeCache);
      bool Identical = true;
      if (Workers == 0) {
        Baseline = std::move(Out);
      } else {
        Identical = sameReport(Baseline.Report, Out.Report);
        AllIdentical &= Identical;
      }
      const RunOutcome &Cur = Workers == 0 ? Baseline : Out;
      const SpeculationStats &St = Cur.Stats;
      double Speedup = Cur.WallSeconds > 0
                           ? Baseline.WallSeconds / Cur.WallSeconds
                           : 0;
      double HitRate = St.Lookups ? 100.0 * St.Hits / St.Lookups : 0;
      double ReadyRate = St.Hits ? 100.0 * St.HitsReady / St.Hits : 0;
      std::printf("%-8s %7u %9.3f %11.0f %7.2fx %5.1f%% %6.1f%% %6.1f%%  %s\n",
                  S->name().data(), Workers, Cur.WallSeconds,
                  Cur.WallSeconds > 0 ? Execs / Cur.WallSeconds : 0,
                  Speedup, HitRate, ReadyRate, 100 * St.wasteRate(),
                  Workers == 0 ? "baseline"
                               : (Identical ? "identical" : "MISMATCH"));
      Json.add({.Bench = "micro_speculate",
                .Subject = std::string(S->name()) + "/w" +
                           std::to_string(Workers),
                .ExecsPerSec = Cur.WallSeconds > 0 ? Execs / Cur.WallSeconds
                                                   : 0,
                .WallMs = Cur.WallSeconds * 1000.0,
                .ResumeHitRate = Cur.Resume.hitRate(),
                .SchedTasks = static_cast<double>(Cur.Sched.submitted()),
                .SchedStealRate = Cur.Sched.stealSuccessRate()});
    }
    std::printf("\n");
  }
  if (!AllIdentical) {
    std::fprintf(stderr, "error: a speculating run diverged from the"
                         " sequential baseline\n");
    return 1;
  }
  return Json.write() ? 0 : 1;
}
