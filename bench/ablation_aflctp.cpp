//===- bench/ablation_aflctp.cpp - Section 6.2 AFL-CTP conjecture ---------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates the paper's Section 6.2 discussion of AFL-CTP (laf-intel):
///
///  1. Plain AFL has no insight into string comparisons.
///  2. AFL-CTP on code-reusing parsers exposes comparison *progress*, but
///     "prefixes of different keywords are indistinguishable regarding
///     coverage" (one shared strcmp site serves all keywords).
///  3. The paper's conjecture: "if indeed it is possible to transform
///     strcmp() in such a way that for different keywords AFL recognizes
///     new coverage, AFL might be able to achieve similar results in terms
///     of token coverage as pFuzzer".
///
/// This bench runs all three AFL variants plus pFuzzer on json/tinyc/mjs
/// and reports long-token coverage, testing the conjecture directly.
///
//===----------------------------------------------------------------------===//

#include "baselines/AflFuzzer.h"
#include "core/PFuzzer.h"
#include "eval/TableWriter.h"
#include "support/CommandLine.h"
#include "support/Scheduler.h"
#include "tokens/TokenCoverage.h"

#include <cstdio>
#include <iterator>
#include <memory>

using namespace pfuzz;

namespace {

/// A tool variant, described by a factory so each task can build its own
/// instance (fuzzers are single-use and not shareable across threads).
struct Variant {
  const char *Name;
  std::unique_ptr<Fuzzer> (*Make)();
  uint64_t Execs;
};

std::unique_ptr<Fuzzer> makePlainAfl() {
  return std::make_unique<AflFuzzer>();
}

std::unique_ptr<Fuzzer> makeSharedCtp() {
  AflOptions Shared;
  Shared.Cmp = CmpFeedback::SharedSite;
  return std::make_unique<AflFuzzer>(Shared);
}

std::unique_ptr<Fuzzer> makePerKeywordCtp() {
  AflOptions PerKw;
  PerKw.Cmp = CmpFeedback::PerKeyword;
  return std::make_unique<AflFuzzer>(PerKw);
}

std::unique_ptr<Fuzzer> makePFuzzer() { return std::make_unique<PFuzzer>(); }

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t AflExecs = static_cast<uint64_t>(Cli.getInt("afl-execs", 150000));
  uint64_t PfExecs = static_cast<uint64_t>(Cli.getInt("pf-execs", 60000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  int Jobs = static_cast<int>(Cli.getInt("jobs", 1));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    std::fprintf(stderr, "usage: ablation_aflctp [--afl-execs=N]"
                         " [--pf-execs=N] [--seed=N] [--jobs=N]\n");
    return 1;
  }

  std::printf("== Section 6.2: can AFL-CTP match pFuzzer's token"
              " coverage? ==\n");
  std::printf("(AFL variants %llu execs, pFuzzer %llu execs)\n",
              static_cast<unsigned long long>(AflExecs),
              static_cast<unsigned long long>(PfExecs));

  for (const char *SubjectName : {"json", "tinyc", "mjs"}) {
    const Subject *S = findSubject(SubjectName);
    const TokenInventory &Inv = TokenInventory::forSubject(SubjectName);
    std::printf("\n-- %s --\n", SubjectName);
    TableWriter Table({"Variant", "Tokens", "Long tokens", "Valid cov %"});

    const Variant Variants[] = {
        {"AFL", makePlainAfl, AflExecs},
        {"AFL-CTP (shared)", makeSharedCtp, AflExecs},
        {"AFL-CTP (per-keyword)", makePerKeywordCtp, AflExecs},
        {"pFuzzer", makePFuzzer, PfExecs},
    };
    constexpr size_t NumVariants = std::size(Variants);
    struct VariantOutcome {
      size_t Tokens = 0;
      uint32_t Long = 0;
      double Cov = 0;
    };
    VariantOutcome Outcomes[NumVariants];
    auto RunVariant = [&](size_t Idx) {
      const Variant &V = Variants[Idx];
      std::unique_ptr<Fuzzer> Tool = V.Make();
      TokenCoverage Tokens(SubjectName);
      FuzzerOptions Opts;
      Opts.Seed = Seed;
      Opts.MaxExecutions = V.Execs;
      Opts.OnValidInput = [&Tokens](std::string_view Input) {
        Tokens.addInput(Input);
      };
      FuzzReport R = Tool->run(*S, Opts);
      uint32_t Long = 0;
      for (const std::string &Tok : Tokens.found())
        if (Inv.lengthOf(Tok) > 3)
          ++Long;
      Outcomes[Idx] = {Tokens.found().size(), Long,
                       R.coverageRatio(*S) * 100};
    };
    if (Jobs == 1) {
      for (size_t Idx = 0; Idx != NumVariants; ++Idx)
        RunVariant(Idx);
    } else {
      Scheduler::global().parallelFor(0, NumVariants, RunVariant,
                                      Jobs <= 0 ? 0 : static_cast<size_t>(Jobs));
    }

    for (size_t Idx = 0; Idx != NumVariants; ++Idx) {
      char Cov[32];
      std::snprintf(Cov, sizeof(Cov), "%.1f", Outcomes[Idx].Cov);
      Table.addRow({Variants[Idx].Name,
                    std::to_string(Outcomes[Idx].Tokens) + "/" +
                        std::to_string(Inv.size()),
                    std::to_string(Outcomes[Idx].Long) + "/" +
                        std::to_string(Inv.numLong()),
                    Cov});
      std::fprintf(stderr, "  done: %s on %s\n", Variants[Idx].Name,
                   SubjectName);
    }
    Table.print(stdout);
  }
  std::printf("\nReading: per-keyword comparison feedback should close"
              " (part of) the\nlong-token gap between plain AFL and"
              " pFuzzer, as the paper conjectures;\nshared-site feedback"
              " should help far less.\n");
  return 0;
}
