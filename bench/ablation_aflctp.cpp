//===- bench/ablation_aflctp.cpp - Section 6.2 AFL-CTP conjecture ---------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates the paper's Section 6.2 discussion of AFL-CTP (laf-intel):
///
///  1. Plain AFL has no insight into string comparisons.
///  2. AFL-CTP on code-reusing parsers exposes comparison *progress*, but
///     "prefixes of different keywords are indistinguishable regarding
///     coverage" (one shared strcmp site serves all keywords).
///  3. The paper's conjecture: "if indeed it is possible to transform
///     strcmp() in such a way that for different keywords AFL recognizes
///     new coverage, AFL might be able to achieve similar results in terms
///     of token coverage as pFuzzer".
///
/// This bench runs all three AFL variants plus pFuzzer on json/tinyc/mjs
/// and reports long-token coverage, testing the conjecture directly.
///
//===----------------------------------------------------------------------===//

#include "baselines/AflFuzzer.h"
#include "core/PFuzzer.h"
#include "eval/TableWriter.h"
#include "support/CommandLine.h"
#include "tokens/TokenCoverage.h"

#include <cstdio>
#include <memory>

using namespace pfuzz;

namespace {

struct Variant {
  const char *Name;
  std::unique_ptr<Fuzzer> Tool;
  uint64_t Execs;
};

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t AflExecs = static_cast<uint64_t>(Cli.getInt("afl-execs", 150000));
  uint64_t PfExecs = static_cast<uint64_t>(Cli.getInt("pf-execs", 60000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    std::fprintf(stderr, "usage: ablation_aflctp [--afl-execs=N]"
                         " [--pf-execs=N] [--seed=N]\n");
    return 1;
  }

  std::printf("== Section 6.2: can AFL-CTP match pFuzzer's token"
              " coverage? ==\n");
  std::printf("(AFL variants %llu execs, pFuzzer %llu execs)\n",
              static_cast<unsigned long long>(AflExecs),
              static_cast<unsigned long long>(PfExecs));

  for (const char *SubjectName : {"json", "tinyc", "mjs"}) {
    const Subject *S = findSubject(SubjectName);
    const TokenInventory &Inv = TokenInventory::forSubject(SubjectName);
    std::printf("\n-- %s --\n", SubjectName);
    TableWriter Table({"Variant", "Tokens", "Long tokens", "Valid cov %"});

    std::vector<Variant> Variants;
    Variants.push_back({"AFL", std::make_unique<AflFuzzer>(), AflExecs});
    AflOptions Shared;
    Shared.Cmp = CmpFeedback::SharedSite;
    Variants.push_back(
        {"AFL-CTP (shared)", std::make_unique<AflFuzzer>(Shared), AflExecs});
    AflOptions PerKw;
    PerKw.Cmp = CmpFeedback::PerKeyword;
    Variants.push_back({"AFL-CTP (per-keyword)",
                        std::make_unique<AflFuzzer>(PerKw), AflExecs});
    Variants.push_back({"pFuzzer", std::make_unique<PFuzzer>(), PfExecs});

    for (Variant &V : Variants) {
      TokenCoverage Tokens(SubjectName);
      FuzzerOptions Opts;
      Opts.Seed = Seed;
      Opts.MaxExecutions = V.Execs;
      Opts.OnValidInput = [&Tokens](std::string_view Input) {
        Tokens.addInput(Input);
      };
      FuzzReport R = V.Tool->run(*S, Opts);
      uint32_t Long = 0;
      for (const std::string &Tok : Tokens.found())
        if (Inv.lengthOf(Tok) > 3)
          ++Long;
      char Cov[32];
      std::snprintf(Cov, sizeof(Cov), "%.1f", R.coverageRatio(*S) * 100);
      Table.addRow({V.Name,
                    std::to_string(Tokens.found().size()) + "/" +
                        std::to_string(Inv.size()),
                    std::to_string(Long) + "/" +
                        std::to_string(Inv.numLong()),
                    Cov});
      std::fprintf(stderr, "  done: %s on %s\n", V.Name, SubjectName);
    }
    Table.print(stdout);
  }
  std::printf("\nReading: per-keyword comparison feedback should close"
              " (part of) the\nlong-token gap between plain AFL and"
              " pFuzzer, as the paper conjectures;\nshared-site feedback"
              " should help far less.\n");
  return 0;
}
