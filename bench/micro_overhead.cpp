//===- bench/micro_overhead.cpp - Instrumentation overhead (Section 4) ----===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the instrumentation overhead the paper quantifies in
/// Section 4 ("executions are slowed down by a factor of about 100"):
/// each subject parses a fixed valid corpus in Off (uninstrumented twin),
/// CoverageOnly (AFL-grade) and Full (pFuzzer-grade) modes. Compare the
/// per-mode timings to read off the slowdown factor.
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include <benchmark/benchmark.h>

using namespace pfuzz;

namespace {

const char *corpusFor(std::string_view Name) {
  if (Name == "ini")
    return "[section]\nkey=value\nother=1\n; comment\n[next]\na=b\n";
  if (Name == "csv")
    return "a,b,c\n\"quoted, field\",2,3\nx,\"y\"\"z\",w\n";
  if (Name == "json")
    return "{\"a\":[1,2.5,-3,true,false,null],\"b\":{\"s\":\"str\"}}";
  if (Name == "tinyc")
    return "{i=0;while(i<9){i=i+1;if(i<5)a=a+i;else b=b+i;}}";
  return "var a=[1,2,3];for(var i=0;i<3;i=i+1){a.push(i*2);}"
         "if(a.length>4){a=a.slice(1);}";
}

void runSubject(benchmark::State &State, const Subject &S,
                InstrumentationMode Mode) {
  const char *Corpus = corpusFor(S.name());
  // Sanity: benchmark inputs must be valid.
  if (!S.accepts(Corpus)) {
    State.SkipWithError("corpus rejected");
    return;
  }
  for (auto _ : State) {
    RunResult RR = S.execute(Corpus, Mode);
    benchmark::DoNotOptimize(RR.ExitCode);
  }
}

} // namespace

#define PFUZZ_OVERHEAD_BENCH(SUBJECT)                                         \
  static void BM_##SUBJECT##_Off(benchmark::State &State) {                   \
    runSubject(State, SUBJECT##Subject(), InstrumentationMode::Off);          \
  }                                                                           \
  BENCHMARK(BM_##SUBJECT##_Off);                                              \
  static void BM_##SUBJECT##_CoverageOnly(benchmark::State &State) {          \
    runSubject(State, SUBJECT##Subject(),                                     \
               InstrumentationMode::CoverageOnly);                            \
  }                                                                           \
  BENCHMARK(BM_##SUBJECT##_CoverageOnly);                                     \
  static void BM_##SUBJECT##_Full(benchmark::State &State) {                  \
    runSubject(State, SUBJECT##Subject(), InstrumentationMode::Full);         \
  }                                                                           \
  BENCHMARK(BM_##SUBJECT##_Full);

PFUZZ_OVERHEAD_BENCH(ini)
PFUZZ_OVERHEAD_BENCH(csv)
PFUZZ_OVERHEAD_BENCH(json)
PFUZZ_OVERHEAD_BENCH(tinyc)
PFUZZ_OVERHEAD_BENCH(mjs)
