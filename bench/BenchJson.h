//===- bench/BenchJson.h - Machine-readable bench results --------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every campaign bench accepts `--json=PATH` and writes its measurements
/// as a JSON array of records
///
///   {"bench": ..., "subject": ..., "execs_per_sec": ...,
///    "wall_ms": ..., "resume_hit_rate": ...}
///
/// so CI and trend scripts consume throughput numbers without scraping
/// the human-readable tables. Bench and subject names are internal
/// identifiers (no quotes/backslashes), so no JSON escaping is needed.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_BENCH_BENCHJSON_H
#define PFUZZ_BENCH_BENCHJSON_H

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace pfuzz {

/// One campaign measurement.
struct BenchJsonRecord {
  std::string Bench;
  std::string Subject;
  double ExecsPerSec = 0;
  double WallMs = 0;
  double ResumeHitRate = 0;
};

/// Collects records and writes them on demand. Constructed with an empty
/// path (the flag's default), every call is a no-op.
class BenchJsonWriter {
public:
  explicit BenchJsonWriter(std::string Path) : Path(std::move(Path)) {}

  void add(std::string Bench, std::string Subject, double ExecsPerSec,
           double WallSeconds, double ResumeHitRate) {
    if (Path.empty())
      return;
    Records.push_back({std::move(Bench), std::move(Subject), ExecsPerSec,
                       WallSeconds * 1000.0, ResumeHitRate});
  }

  /// Writes the collected records to the path; returns true on success
  /// (and when disabled). Benches call this last and fold the result
  /// into their exit code so a bad --json path is not silently ignored.
  bool write() const {
    if (Path.empty())
      return true;
    std::FILE *Out = std::fopen(Path.c_str(), "w");
    if (Out == nullptr) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   Path.c_str());
      return false;
    }
    std::fprintf(Out, "[\n");
    for (size_t I = 0; I != Records.size(); ++I) {
      const BenchJsonRecord &R = Records[I];
      std::fprintf(Out,
                   "  {\"bench\": \"%s\", \"subject\": \"%s\","
                   " \"execs_per_sec\": %.1f, \"wall_ms\": %.3f,"
                   " \"resume_hit_rate\": %.4f}%s\n",
                   R.Bench.c_str(), R.Subject.c_str(), R.ExecsPerSec, R.WallMs,
                   R.ResumeHitRate, I + 1 == Records.size() ? "" : ",");
    }
    std::fprintf(Out, "]\n");
    std::fclose(Out);
    return true;
  }

private:
  std::string Path;
  std::vector<BenchJsonRecord> Records;
};

} // namespace pfuzz

#endif // PFUZZ_BENCH_BENCHJSON_H
