//===- bench/BenchJson.h - Machine-readable bench results --------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every campaign bench accepts `--json=PATH` and writes its measurements
/// as a JSON array of records
///
///   {"bench": ..., "subject": ..., "execs_per_sec": ...,
///    "wall_ms": ..., "resume_hit_rate": ..., "resume_rung_depth": ...,
///    "locality_batch": ..., "sched_tasks": ..., "sched_steal_rate": ...,
///    "queue_bytes_peak": ..., "rescore_ns_per_exec": ...,
///    "shards": ..., "shard_deltas": ..., "shard_migrations": ...,
///    "shard_frontier_lag": ...}
///
/// so CI and trend scripts consume throughput numbers without scraping
/// the human-readable tables. Every record carries every key — disabled
/// features emit 0 instead of omitting the field, so downstream
/// BENCH_*.json diffing never needs schema sniffing. String fields are
/// JSON-escaped on write, so records stay well-formed even when a label
/// carries quotes, backslashes, or control bytes.
///
/// Benches fill a BenchJsonRecord by designated initializer — each
/// measurement names exactly the fields it has, everything else stays at
/// its documented zero — and hand it to add(). The old positional
/// overload (14 defaulted doubles, where adding a field in the middle
/// silently re-bound every later call site) is gone on purpose.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_BENCH_BENCHJSON_H
#define PFUZZ_BENCH_BENCHJSON_H

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace pfuzz {

/// One campaign measurement.
struct BenchJsonRecord {
  std::string Bench;
  std::string Subject;
  double ExecsPerSec = 0;
  /// Measurement wall-clock in milliseconds. Call sites convert
  /// explicitly (`.WallMs = Seconds * 1000.0`) — the writer stores what
  /// it is given.
  double WallMs = 0;
  double ResumeHitRate = 0;
  /// Average ladder-rung depth of resume-cache hits (0 when the ladder
  /// is off or never hit).
  double ResumeRungDepth = 0;
  /// Locality batch size the measurement ran with (0 = batching off).
  double LocalityBatch = 0;
  /// Tasks submitted to the work-stealing scheduler during the
  /// measurement (0 = the scheduler never engaged).
  double SchedTasks = 0;
  /// Fraction of idle-worker steal probes that yielded a task.
  double SchedStealRate = 0;
  /// Peak sampled candidate-queue bytes (0 = not a pFuzzer measurement).
  double QueueBytesPeak = 0;
  /// Queue-rescore wall time amortized per execution, in nanoseconds.
  double RescoreNsPerExec = 0;
  /// Shard loops the measurement ran with (0 = not a sharded pFuzzer
  /// measurement; 1 = sharded engine explicitly pinned to one shard).
  double Shards = 0;
  /// Coverage-frontier delta packets published across all shards.
  double ShardDeltas = 0;
  /// Candidate migrations accepted across all shards.
  double ShardMigrations = 0;
  /// Worst observed frontier lag, in sync epochs.
  double ShardFrontierLag = 0;
};

/// Escapes \p S for embedding in a JSON string literal: quotes and
/// backslashes get a backslash, control bytes become \uXXXX.
inline std::string benchJsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (U < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", U);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Collects records and writes them on demand. Constructed with an empty
/// path (the flag's default), every call is a no-op.
class BenchJsonWriter {
public:
  explicit BenchJsonWriter(std::string Path) : Path(std::move(Path)) {}

  void add(BenchJsonRecord Record) {
    if (Path.empty())
      return;
    Records.push_back(std::move(Record));
  }

  /// Writes the collected records to the path; returns true on success
  /// (and when disabled). Benches call this last and fold the result
  /// into their exit code so a bad --json path is not silently ignored.
  bool write() const {
    if (Path.empty())
      return true;
    std::FILE *Out = std::fopen(Path.c_str(), "w");
    if (Out == nullptr) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   Path.c_str());
      return false;
    }
    std::fprintf(Out, "[\n");
    for (size_t I = 0; I != Records.size(); ++I) {
      const BenchJsonRecord &R = Records[I];
      std::fprintf(Out,
                   "  {\"bench\": \"%s\", \"subject\": \"%s\","
                   " \"execs_per_sec\": %.1f, \"wall_ms\": %.3f,"
                   " \"resume_hit_rate\": %.4f, \"resume_rung_depth\": %.4f,"
                   " \"locality_batch\": %.0f, \"sched_tasks\": %.0f,"
                   " \"sched_steal_rate\": %.4f, \"queue_bytes_peak\": %.0f,"
                   " \"rescore_ns_per_exec\": %.4f, \"shards\": %.0f,"
                   " \"shard_deltas\": %.0f, \"shard_migrations\": %.0f,"
                   " \"shard_frontier_lag\": %.0f}%s\n",
                   benchJsonEscape(R.Bench).c_str(),
                   benchJsonEscape(R.Subject).c_str(), R.ExecsPerSec, R.WallMs,
                   R.ResumeHitRate, R.ResumeRungDepth, R.LocalityBatch,
                   R.SchedTasks, R.SchedStealRate, R.QueueBytesPeak,
                   R.RescoreNsPerExec, R.Shards, R.ShardDeltas,
                   R.ShardMigrations, R.ShardFrontierLag,
                   I + 1 == Records.size() ? "" : ",");
    }
    std::fprintf(Out, "]\n");
    std::fclose(Out);
    return true;
  }

private:
  std::string Path;
  std::vector<BenchJsonRecord> Records;
};

} // namespace pfuzz

#endif // PFUZZ_BENCH_BENCHJSON_H
