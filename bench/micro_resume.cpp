//===- bench/micro_resume.cpp - Prefix-resumption benchmark ---------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the prefix-resumption engine (PFuzzerOptions::ResumeCacheSize)
/// two ways, each doubling as a byte-identical self-check (exit code 1 on
/// any divergence from cold execution):
///
/// 1. The long-prefix growth sweep — the parser-directed access pattern
///    the engine exists for: execute every prefix of a long JSON document
///    in order, cold vs resuming. Cold work is quadratic in the document
///    length (every step re-parses the whole prefix); resumed work is
///    linear, so this is where the headline speedup (>= 1.5x) shows.
///
/// 2. Whole campaigns on every evaluation subject: end-to-end wall-clock,
///    hit rate and bytes skipped. Campaign inputs within small budgets
///    are dominated by short strings the engine deliberately bypasses
///    (see PFuzzerOptions::ResumeMinLength), so expect ~1x here on the
///    built-in micro-parsers; subjects that are not resume-safe (tinyc,
///    mjs) pin the "engine disengaged, identical results" path.
///
///   ./micro_resume [--execs=N] [--seed=N] [--resume-cache=N]
///                  [--resume-min=N] [--run-cache=N] [--growth-len=N]
///                  [--json=PATH]
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "core/PFuzzer.h"
#include "subjects/Subject.h"
#include "support/CommandLine.h"

#include <chrono>
#include <cstdio>

using namespace pfuzz;

namespace {

struct RunOutcome {
  FuzzReport Report;
  ResumeStats Stats;
  double WallSeconds = 0;
};

RunOutcome runOnce(const Subject &S, uint64_t Execs, uint64_t Seed,
                   uint32_t ResumeCache, uint32_t RunCache,
                   uint32_t ResumeMin) {
  RunOutcome Out;
  PFuzzerOptions Options;
  Options.RunCacheSize = RunCache;
  Options.ResumeCacheSize = ResumeCache;
  Options.ResumeMinLength = ResumeMin;
  Options.ResumeStatsOut = &Out.Stats;
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  auto Start = std::chrono::steady_clock::now();
  Out.Report = Tool.run(S, Opts);
  Out.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Out;
}

bool sameReport(const FuzzReport &A, const FuzzReport &B) {
  return A.Executions == B.Executions && A.ValidInputs == B.ValidInputs &&
         A.ValidBranches == B.ValidBranches &&
         A.CoverageTimeline == B.CoverageTimeline;
}

/// Full-depth RunResult equality — the growth sweep checks every event a
/// resumed run records against the cold run of the same input.
bool sameRunResult(const RunResult &A, const RunResult &B) {
  if (A.ExitCode != B.ExitCode || A.BranchTrace != B.BranchTrace ||
      A.EventChars != B.EventChars || A.FunctionNames != B.FunctionNames ||
      A.EofAccesses.size() != B.EofAccesses.size() ||
      A.CallTrace.size() != B.CallTrace.size() ||
      A.Comparisons.size() != B.Comparisons.size())
    return false;
  for (size_t I = 0; I != A.EofAccesses.size(); ++I)
    if (A.EofAccesses[I].AccessIndex != B.EofAccesses[I].AccessIndex)
      return false;
  for (size_t I = 0; I != A.CallTrace.size(); ++I)
    if (A.CallTrace[I].NameId != B.CallTrace[I].NameId ||
        A.CallTrace[I].Cursor != B.CallTrace[I].Cursor)
      return false;
  for (size_t I = 0; I != A.Comparisons.size(); ++I) {
    const ComparisonEvent &EA = A.Comparisons[I];
    const ComparisonEvent &EB = B.Comparisons[I];
    if (EA.Kind != EB.Kind || EA.Matched != EB.Matched ||
        EA.OnEof != EB.OnEof || EA.Implicit != EB.Implicit ||
        EA.StackDepth != EB.StackDepth ||
        EA.TracePosition != EB.TracePosition ||
        A.expected(EA) != B.expected(EB) || A.actual(EA) != B.actual(EB) ||
        !(EA.Taint == EB.Taint))
      return false;
  }
  return true;
}

/// A deterministic JSON document of at least \p Len bytes — flat-ish
/// records under one array, the shape a parser-directed search settles
/// into once it has learned the object/array/string tokens.
std::string growthDocument(size_t Len) {
  std::string Doc = "{\"k\": [";
  const char *Records[] = {
      "{\"id\": 12, \"on\": true}", "[1, 22, 333, \"abc\"]",
      "\"u\\u0041text\"", "{\"x\": [false, \"y\"], \"n\": 7}"};
  for (size_t I = 0; Doc.size() < Len; ++I) {
    if (I != 0)
      Doc += ", ";
    Doc += Records[I % 4];
  }
  Doc += "]}";
  return Doc;
}

/// Executes every prefix of Doc in growth order; resuming when \p Engine
/// is non-null, cold otherwise. Returns false on any divergence from the
/// cold reference results in \p Reference (filled when null).
bool sweepPrefixes(const Subject &S, const std::string &Doc,
                   PrefixResumeEngine *Engine,
                   std::vector<RunResult> *Reference, bool Check) {
  bool Identical = true;
  RunResult Pooled;
  for (size_t L = 1; L <= Doc.size(); ++L) {
    std::string_view In(Doc.data(), L);
    if (Engine)
      Engine->execute(In, Pooled);
    else
      Pooled = S.execute(In, InstrumentationMode::Full);
    if (Check && !sameRunResult((*Reference)[L - 1], Pooled))
      Identical = false;
    else if (!Check && Reference) {
      Reference->emplace_back();
      Reference->back().assignFrom(Pooled);
    }
  }
  return Identical;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 30000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  uint32_t ResumeCache =
      static_cast<uint32_t>(Cli.getCount("resume-cache", 256));
  uint32_t RunCache = static_cast<uint32_t>(Cli.getCount("run-cache", 64));
  uint32_t ResumeMin = static_cast<uint32_t>(
      Cli.getCount("resume-min", PFuzzerOptions().ResumeMinLength));
  size_t GrowthLen = static_cast<size_t>(Cli.getCount("growth-len", 240));
  BenchJsonWriter Json(Cli.getString("json", ""));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    for (const std::string &Err : Cli.errors())
      std::fprintf(stderr, "error: %s\n", Err.c_str());
    std::fprintf(stderr, "usage: micro_resume [--execs=N] [--seed=N]"
                         " [--resume-cache=N] [--resume-min=N] [--run-cache=N]"
                         " [--growth-len=N] [--json=PATH]\n");
    return 1;
  }

  std::printf("== Prefix resumption: wall-clock against cold re-execution"
              " ==\n");
  std::printf("(%llu execs per run, seed %llu, resume-cache %u, resume-min %u,"
              " run-cache %u, fibers %s)\n\n",
              static_cast<unsigned long long>(Execs),
              static_cast<unsigned long long>(Seed), ResumeCache, ResumeMin,
              RunCache,
              PrefixResumeEngine::available() ? "available" : "UNAVAILABLE");

  bool AllIdentical = true;

  // --- 1. Long-prefix growth sweep: execute every prefix of a long JSON
  // document in order, the search's extend-by-a-byte access pattern. ---
  if (PrefixResumeEngine::available()) {
    const Subject &J = jsonSubject();
    const std::string Doc = growthDocument(GrowthLen);
    std::vector<RunResult> Reference;
    Reference.reserve(Doc.size());
    sweepPrefixes(J, Doc, nullptr, &Reference, /*Check=*/false);
    PrefixResumeEngine Engine(
        [&J](ExecutionContext &C) { return J.run(C); }, Doc.size() + 1);
    // Untimed identity pass: every prefix's resumed RunResult must match
    // the cold reference event for event.
    bool GrowthIdentical =
        sweepPrefixes(J, Doc, &Engine, &Reference, /*Check=*/true);
    AllIdentical &= GrowthIdentical;
    const int Rounds = 20;
    auto T0 = std::chrono::steady_clock::now();
    for (int R = 0; R != Rounds; ++R)
      sweepPrefixes(J, Doc, nullptr, nullptr, false);
    auto T1 = std::chrono::steady_clock::now();
    for (int R = 0; R != Rounds; ++R)
      sweepPrefixes(J, Doc, &Engine, nullptr, false);
    auto T2 = std::chrono::steady_clock::now();
    double ColdSecs = std::chrono::duration<double>(T1 - T0).count();
    double WarmSecs = std::chrono::duration<double>(T2 - T1).count();
    double Steps = static_cast<double>(Rounds) * Doc.size();
    std::printf("long-prefix growth (json, %zu-byte document, %d sweeps):\n",
                Doc.size(), Rounds);
    std::printf("  cold   %8.3fs  %9.0f execs/s\n", ColdSecs,
                ColdSecs > 0 ? Steps / ColdSecs : 0);
    std::printf("  resume %8.3fs  %9.0f execs/s  %.2fx speedup  %s\n",
                WarmSecs, WarmSecs > 0 ? Steps / WarmSecs : 0,
                WarmSecs > 0 ? ColdSecs / WarmSecs : 0,
                GrowthIdentical ? "identical" : "MISMATCH");
    Json.add("micro_resume", "json/growth-cold",
             ColdSecs > 0 ? Steps / ColdSecs : 0, ColdSecs, 0);
    Json.add("micro_resume", "json/growth-resume",
             WarmSecs > 0 ? Steps / WarmSecs : 0, WarmSecs,
             Engine.stats().hitRate());
  } else {
    std::printf("long-prefix growth: skipped (fibers unavailable)\n");
  }

  // --- 2. Whole campaigns on every evaluation subject. ---
  std::printf("\n%-8s %9s %9s %11s %8s %6s %12s  %s\n", "subject", "mode",
              "wall[s]", "execs/s", "speedup", "hit%", "bytes-skip", "report");
  for (const Subject *S : evaluationSubjects()) {
    RunOutcome Cold =
        runOnce(*S, Execs, Seed, /*ResumeCache=*/0, RunCache, ResumeMin);
    RunOutcome Warm =
        runOnce(*S, Execs, Seed, ResumeCache, RunCache, ResumeMin);
    bool Identical = sameReport(Cold.Report, Warm.Report);
    AllIdentical &= Identical;
    double Speedup = Warm.WallSeconds > 0
                         ? Cold.WallSeconds / Warm.WallSeconds
                         : 0;
    std::printf("%-8s %9s %9.3f %11.0f %7s %6s %12s  %s\n", S->name().data(),
                "cold", Cold.WallSeconds,
                Cold.WallSeconds > 0 ? Execs / Cold.WallSeconds : 0, "-", "-",
                "-", "baseline");
    std::printf("%-8s %9s %9.3f %11.0f %7.2fx %5.1f%% %12llu  %s\n",
                S->name().data(), "resume", Warm.WallSeconds,
                Warm.WallSeconds > 0 ? Execs / Warm.WallSeconds : 0, Speedup,
                100 * Warm.Stats.hitRate(),
                static_cast<unsigned long long>(Warm.Stats.BytesSkipped),
                Identical ? "identical" : "MISMATCH");
    Json.add("micro_resume", std::string(S->name()) + "/cold",
             Cold.WallSeconds > 0 ? Execs / Cold.WallSeconds : 0,
             Cold.WallSeconds, 0);
    Json.add("micro_resume", std::string(S->name()) + "/resume",
             Warm.WallSeconds > 0 ? Execs / Warm.WallSeconds : 0,
             Warm.WallSeconds, Warm.Stats.hitRate());
  }
  if (!AllIdentical) {
    std::fprintf(stderr, "error: a resuming run diverged from the cold"
                         " baseline\n");
    return 1;
  }
  return Json.write() ? 0 : 1;
}
