//===- bench/micro_resume.cpp - Prefix-resumption benchmark ---------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the prefix-resumption engine (PFuzzerOptions::ResumeCacheSize)
/// two ways, each doubling as a byte-identical self-check (exit code 1 on
/// any divergence from cold execution):
///
/// 1. The growth sweep — Algorithm 1's access pattern: grow a long JSON
///    document prefix by prefix, and after every growth step run a wave
///    of substitution candidates spliced *below* the frontier (the shape
///    addInputs produces at Taint.minIndex()). Measured three ways under
///    a bounded checkpoint cache: cold, single-checkpoint (stride 0, the
///    pre-ladder engine), and laddered. Growth steps resume from the
///    frontier in both engine modes; the spliced candidates are where
///    ladders pay — a single-checkpoint cache only ever holds per-length
///    past-end entries that the wave's eviction churn flushes, while
///    ladder rungs sit at shared stride positions that every sibling
///    re-hits and every resumed run re-mints.
///
/// 2. Whole campaigns on every evaluation subject: end-to-end wall-clock,
///    hit rate and bytes skipped. Campaign inputs within small budgets
///    are dominated by short strings the engine deliberately bypasses
///    (see PFuzzerOptions::ResumeMinLength), so expect ~1x here on the
///    built-in micro-parsers; subjects that are not resume-safe (tinyc,
///    mjs) pin the "engine disengaged, identical results" path.
///
///   ./micro_resume [--execs=N] [--seed=N] [--resume-cache=N]
///                  [--resume-min=N] [--resume-stride=N] [--resume-rungs=N]
///                  [--run-cache=N] [--growth-len=N] [--sweep-cache=N]
///                  [--sweep-wave=N] [--json=PATH]
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "RunResultCompare.h"
#include "core/PFuzzer.h"
#include "subjects/Subject.h"
#include "support/CommandLine.h"

#include <chrono>
#include <cstdio>

using namespace pfuzz;

namespace {

struct RunOutcome {
  FuzzReport Report;
  ResumeStats Stats;
  double WallSeconds = 0;
};

RunOutcome runOnce(const Subject &S, uint64_t Execs, uint64_t Seed,
                   uint32_t ResumeCache, uint32_t RunCache, uint32_t ResumeMin,
                   uint32_t ResumeStride, uint32_t ResumeRungs) {
  RunOutcome Out;
  PFuzzerOptions Options;
  Options.RunCacheSize = RunCache;
  Options.ResumeCacheSize = ResumeCache;
  Options.ResumeMinLength = ResumeMin;
  Options.ResumeStride = ResumeStride;
  Options.ResumeRungs = ResumeRungs;
  Options.ResumeStatsOut = &Out.Stats;
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  auto Start = std::chrono::steady_clock::now();
  Out.Report = Tool.run(S, Opts);
  Out.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Out;
}

bool sameReport(const FuzzReport &A, const FuzzReport &B) {
  return A.Executions == B.Executions && A.ValidInputs == B.ValidInputs &&
         A.ValidBranches == B.ValidBranches &&
         A.CoverageTimeline == B.CoverageTimeline;
}

/// A deterministic JSON document of at least \p Len bytes — flat-ish
/// records under one array, the shape a parser-directed search settles
/// into once it has learned the object/array/string tokens.
std::string growthDocument(size_t Len) {
  std::string Doc = "{\"k\": [";
  const char *Records[] = {
      "{\"id\": 12, \"on\": true}", "[1, 22, 333, \"abc\"]",
      "\"u\\u0041text\"", "{\"x\": [false, \"y\"], \"n\": 7}"};
  for (size_t I = 0; Doc.size() < Len; ++I) {
    if (I != 0)
      Doc += ", ";
    Doc += Records[I % 4];
  }
  Doc += "]}";
  return Doc;
}

/// The growth sweep's execution sequence: every prefix of \p Doc in
/// growth order, each growth step followed by a wave of substitution
/// candidates spliced below the frontier at pseudo-random depths — the
/// sibling-heavy shape Algorithm 1 produces when a rejected comparison
/// spawns many rewrites of one parent at Taint.minIndex().
///
/// Two deliberate properties keep the single-checkpoint baseline honest:
///
///  - The replacement suffixes never occur in the document (no 5/6/8/9
///    anywhere in growthDocument's records), so a splice's past-end
///    checkpoint — whose key is the full spliced input — can never
///    masquerade as a pure document prefix and serve later siblings.
///
///  - Splice depths are spread by a hash, not drifted smoothly, so a
///    single-checkpoint cache cannot ride one per-length entry along
///    the frontier. It must keep individual growth-step checkpoints
///    alive under the splice wave's eviction churn, while ladder rungs
///    sit at shared stride positions that every sibling re-hits and
///    every resumed run re-mints.
std::vector<std::string> sweepInputs(const std::string &Doc, size_t Wave) {
  static const char *Suffixes[] = {"8", "9]", "5e8", "6.5", "98, ", "5678"};
  std::vector<std::string> Steps;
  Steps.reserve((1 + Wave) * Doc.size());
  for (size_t L = 1; L <= Doc.size(); ++L) {
    Steps.push_back(Doc.substr(0, L));
    for (size_t J = 0; J != Wave; ++J) {
      // Splitmix-style spread over [L/4, L): deterministic, but with no
      // step-to-step locality a sticky LRU entry could exploit.
      uint64_t R =
          L * 6364136223846793005ULL + (J + 1) * 1442695040888963407ULL;
      R ^= R >> 29;
      size_t Lo = L / 4;
      size_t K = L > Lo ? Lo + (R >> 33) % (L - Lo) : 0;
      if (K == 0)
        continue;
      Steps.push_back(Doc.substr(0, K) + Suffixes[(L + J) % 6]);
    }
  }
  return Steps;
}

/// Executes every step of \p Steps in order; resuming when \p Engine is
/// non-null, cold otherwise. Returns false on any divergence from the
/// cold reference results in \p Reference (filled when Check is false).
bool sweepRun(const Subject &S, const std::vector<std::string> &Steps,
              PrefixResumeEngine *Engine, std::vector<RunResult> *Reference,
              bool Check) {
  bool Identical = true;
  RunResult Scratch;
  for (size_t I = 0; I != Steps.size(); ++I) {
    const RunResult *Run;
    if (Engine) {
      // The engine's result may live in its checkpoint pool: read it
      // through the returned reference, valid until the next execute.
      Run = &Engine->execute(Steps[I], Scratch);
    } else {
      Scratch = S.execute(Steps[I], InstrumentationMode::Full);
      Run = &Scratch;
    }
    if (Check && !sameRunResult((*Reference)[I], *Run))
      Identical = false;
    else if (!Check && Reference) {
      Reference->emplace_back();
      Reference->back().assignFrom(*Run);
    }
  }
  return Identical;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli(Argc, Argv);
  uint64_t Execs = static_cast<uint64_t>(Cli.getInt("execs", 30000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  uint32_t ResumeCache =
      static_cast<uint32_t>(Cli.getCount("resume-cache", 256));
  uint32_t RunCache = static_cast<uint32_t>(Cli.getCount("run-cache", 64));
  uint32_t ResumeMin = static_cast<uint32_t>(
      Cli.getCount("resume-min", PFuzzerOptions().ResumeMinLength));
  uint32_t ResumeStride = static_cast<uint32_t>(
      Cli.getCount("resume-stride", PFuzzerOptions().ResumeStride));
  uint32_t ResumeRungs = static_cast<uint32_t>(
      Cli.getCount("resume-rungs", PFuzzerOptions().ResumeRungs));
  size_t GrowthLen = static_cast<size_t>(Cli.getCount("growth-len", 240));
  size_t SweepCache = static_cast<size_t>(Cli.getCount("sweep-cache", 20));
  size_t SweepWave = static_cast<size_t>(Cli.getCount("sweep-wave", 12));
  BenchJsonWriter Json(Cli.getString("json", ""));
  if (!Cli.ok() || !Cli.unqueried().empty()) {
    for (const std::string &Err : Cli.errors())
      std::fprintf(stderr, "error: %s\n", Err.c_str());
    std::fprintf(stderr, "usage: micro_resume [--execs=N] [--seed=N]"
                         " [--resume-cache=N] [--resume-min=N]"
                         " [--resume-stride=N] [--resume-rungs=N]"
                         " [--run-cache=N] [--growth-len=N] [--sweep-cache=N]"
                         " [--sweep-wave=N] [--json=PATH]\n");
    return 1;
  }

  std::printf("== Prefix resumption: wall-clock against cold re-execution"
              " ==\n");
  std::printf("(%llu execs per run, seed %llu, resume-cache %u, resume-min %u,"
              " run-cache %u, fibers %s)\n\n",
              static_cast<unsigned long long>(Execs),
              static_cast<unsigned long long>(Seed), ResumeCache, ResumeMin,
              RunCache,
              PrefixResumeEngine::available() ? "available" : "UNAVAILABLE");

  bool AllIdentical = true;

  // --- 1. Growth sweep: grow a long JSON document prefix by prefix with
  // substitution candidates spliced below the frontier after every step,
  // under a bounded checkpoint cache — cold vs single-checkpoint (the
  // pre-ladder engine, stride 0) vs laddered. ---
  if (PrefixResumeEngine::available()) {
    const Subject &J = jsonSubject();
    const std::string Doc = growthDocument(GrowthLen);
    const std::vector<std::string> Steps = sweepInputs(Doc, SweepWave);
    std::vector<RunResult> Reference;
    Reference.reserve(Steps.size());
    sweepRun(J, Steps, nullptr, &Reference, /*Check=*/false);
    PrefixResumeEngine Single(
        [&J](ExecutionContext &C) { return J.run(C); }, SweepCache,
        /*MinInput=*/0, /*RungStride=*/0, /*RungCap=*/0);
    PrefixResumeEngine Ladder([&J](ExecutionContext &C) { return J.run(C); },
                              SweepCache, /*MinInput=*/0, ResumeStride,
                              ResumeRungs);
    // Untimed identity passes: every step's resumed RunResult must match
    // the cold reference event for event, in both engine modes.
    bool SingleIdentical = sweepRun(J, Steps, &Single, &Reference, true);
    bool LadderIdentical = sweepRun(J, Steps, &Ladder, &Reference, true);
    AllIdentical &= SingleIdentical && LadderIdentical;
    const int Rounds = 20;
    auto T0 = std::chrono::steady_clock::now();
    for (int R = 0; R != Rounds; ++R)
      sweepRun(J, Steps, nullptr, nullptr, false);
    auto T1 = std::chrono::steady_clock::now();
    for (int R = 0; R != Rounds; ++R)
      sweepRun(J, Steps, &Single, nullptr, false);
    auto T2 = std::chrono::steady_clock::now();
    for (int R = 0; R != Rounds; ++R)
      sweepRun(J, Steps, &Ladder, nullptr, false);
    auto T3 = std::chrono::steady_clock::now();
    double ColdSecs = std::chrono::duration<double>(T1 - T0).count();
    double SingleSecs = std::chrono::duration<double>(T2 - T1).count();
    double LadderSecs = std::chrono::duration<double>(T3 - T2).count();
    double NumSteps = static_cast<double>(Rounds) * Steps.size();
    std::printf("growth sweep (json, %zu-byte document, %zu steps/sweep,"
                " %d sweeps, wave %zu,\n sweep-cache %zu, stride %u,"
                " rungs %u):\n",
                Doc.size(), Steps.size(), Rounds, SweepWave, SweepCache,
                ResumeStride, ResumeRungs);
    std::printf("  cold    %8.3fs  %9.0f execs/s\n", ColdSecs,
                ColdSecs > 0 ? NumSteps / ColdSecs : 0);
    std::printf("  single  %8.3fs  %9.0f execs/s  %.2fx vs cold  %s\n",
                SingleSecs, SingleSecs > 0 ? NumSteps / SingleSecs : 0,
                SingleSecs > 0 ? ColdSecs / SingleSecs : 0,
                SingleIdentical ? "identical" : "MISMATCH");
    std::printf("  ladder  %8.3fs  %9.0f execs/s  %.2fx vs cold"
                "  %.2fx vs single  %s\n",
                LadderSecs, LadderSecs > 0 ? NumSteps / LadderSecs : 0,
                LadderSecs > 0 ? ColdSecs / LadderSecs : 0,
                LadderSecs > 0 ? SingleSecs / LadderSecs : 0,
                LadderIdentical ? "identical" : "MISMATCH");
    std::printf("  ladder hit rate %.1f%% (avg rung depth %.2f,"
                " %llu bytes skipped), single hit rate %.1f%%"
                " (%llu bytes skipped)\n",
                100 * Ladder.stats().hitRate(),
                Ladder.stats().avgHitRungDepth(),
                static_cast<unsigned long long>(Ladder.stats().BytesSkipped),
                100 * Single.stats().hitRate(),
                static_cast<unsigned long long>(Single.stats().BytesSkipped));
    Json.add({.Bench = "micro_resume",
              .Subject = "json/sweep-cold",
              .ExecsPerSec = ColdSecs > 0 ? NumSteps / ColdSecs : 0,
              .WallMs = ColdSecs * 1000.0});
    Json.add({.Bench = "micro_resume",
              .Subject = "json/sweep-single",
              .ExecsPerSec = SingleSecs > 0 ? NumSteps / SingleSecs : 0,
              .WallMs = SingleSecs * 1000.0,
              .ResumeHitRate = Single.stats().hitRate()});
    Json.add({.Bench = "micro_resume",
              .Subject = "json/sweep-ladder",
              .ExecsPerSec = LadderSecs > 0 ? NumSteps / LadderSecs : 0,
              .WallMs = LadderSecs * 1000.0,
              .ResumeHitRate = Ladder.stats().hitRate(),
              .ResumeRungDepth = Ladder.stats().avgHitRungDepth()});
  } else {
    std::printf("growth sweep: skipped (fibers unavailable)\n");
  }

  // --- 2. Whole campaigns on every evaluation subject. ---
  std::printf("\n%-8s %9s %9s %11s %8s %6s %12s  %s\n", "subject", "mode",
              "wall[s]", "execs/s", "speedup", "hit%", "bytes-skip", "report");
  for (const Subject *S : evaluationSubjects()) {
    RunOutcome Cold = runOnce(*S, Execs, Seed, /*ResumeCache=*/0, RunCache,
                              ResumeMin, ResumeStride, ResumeRungs);
    RunOutcome Warm = runOnce(*S, Execs, Seed, ResumeCache, RunCache,
                              ResumeMin, ResumeStride, ResumeRungs);
    bool Identical = sameReport(Cold.Report, Warm.Report);
    AllIdentical &= Identical;
    double Speedup = Warm.WallSeconds > 0
                         ? Cold.WallSeconds / Warm.WallSeconds
                         : 0;
    std::printf("%-8s %9s %9.3f %11.0f %7s %6s %12s  %s\n", S->name().data(),
                "cold", Cold.WallSeconds,
                Cold.WallSeconds > 0 ? Execs / Cold.WallSeconds : 0, "-", "-",
                "-", "baseline");
    std::printf("%-8s %9s %9.3f %11.0f %7.2fx %5.1f%% %12llu  %s\n",
                S->name().data(), "resume", Warm.WallSeconds,
                Warm.WallSeconds > 0 ? Execs / Warm.WallSeconds : 0, Speedup,
                100 * Warm.Stats.hitRate(),
                static_cast<unsigned long long>(Warm.Stats.BytesSkipped),
                Identical ? "identical" : "MISMATCH");
    Json.add({.Bench = "micro_resume",
              .Subject = std::string(S->name()) + "/cold",
              .ExecsPerSec = Cold.WallSeconds > 0 ? Execs / Cold.WallSeconds
                                                  : 0,
              .WallMs = Cold.WallSeconds * 1000.0});
    Json.add({.Bench = "micro_resume",
              .Subject = std::string(S->name()) + "/resume",
              .ExecsPerSec = Warm.WallSeconds > 0 ? Execs / Warm.WallSeconds
                                                  : 0,
              .WallMs = Warm.WallSeconds * 1000.0,
              .ResumeHitRate = Warm.Stats.hitRate(),
              .ResumeRungDepth = Warm.Stats.avgHitRungDepth()});
  }
  if (!AllIdentical) {
    std::fprintf(stderr, "error: a resuming run diverged from the cold"
                         " baseline\n");
    return 1;
  }
  return Json.write() ? 0 : 1;
}
