#!/usr/bin/env python3
"""Validate a pfuzz heartbeat NDJSON stream (--telemetry=FILE output).

Checks, per line: the line parses as a standalone JSON object carrying
exactly the documented key set with the right types and ranges. Across
lines: beat numbers count 1, 2, 3, ... and the execution/timestamp
columns never regress (the emitter re-reads the shared counter under its
lock, so concurrent shard emissions must still serialize monotonically).

Usage: validate_heartbeat.py FILE [--min-beats=N]

Exit code 0 when the stream validates, 1 otherwise. Stdlib only — CI
runs this straight from a checkout.
"""

import json
import sys

# The stable schema: key -> (type check, value check). Records carry
# exactly these keys — nothing optional, nothing extra — so downstream
# trend tooling never needs schema sniffing.
SCHEMA = {
    "ts_ms": (int, lambda v: v > 0),
    "beat": (int, lambda v: v >= 1),
    "shard": (int, lambda v: v >= 0),
    "executions": (int, lambda v: v >= 1),
    "wall_s": ((int, float), lambda v: v >= 0),
    "execs_per_sec": ((int, float), lambda v: v >= 0),
    "frontier": (int, lambda v: v >= 0),
    "queue_bytes": (int, lambda v: v >= 0),
    "run_cache_hit_rate": ((int, float), lambda v: 0 <= v <= 1),
    "resume_hit_rate": ((int, float), lambda v: 0 <= v <= 1),
    "sched_steal_rate": ((int, float), lambda v: 0 <= v <= 1),
    "shard_lag": (int, lambda v: v >= 0),
}


def fail(msg):
    print(f"validate_heartbeat: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 2:
        fail(f"usage: {argv[0]} FILE [--min-beats=N]")
    path = argv[1]
    min_beats = 1
    for arg in argv[2:]:
        if arg.startswith("--min-beats="):
            min_beats = int(arg.split("=", 1)[1])
        else:
            fail(f"unknown argument '{arg}'")

    last_beat = 0
    last_execs = 0
    last_ts = 0
    records = 0
    with open(path, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                fail(f"line {lineno}: blank line inside the stream")
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                fail(f"line {lineno}: not valid JSON: {err}")
            if not isinstance(rec, dict):
                fail(f"line {lineno}: record is not an object")
            if set(rec) != set(SCHEMA):
                missing = set(SCHEMA) - set(rec)
                extra = set(rec) - set(SCHEMA)
                fail(
                    f"line {lineno}: key set mismatch"
                    f" (missing {sorted(missing)}, extra {sorted(extra)})"
                )
            for key, (types, ok) in SCHEMA.items():
                value = rec[key]
                if isinstance(value, bool) or not isinstance(value, types):
                    fail(f"line {lineno}: {key} has type {type(value).__name__}")
                if not ok(value):
                    fail(f"line {lineno}: {key} out of range: {value!r}")
            if rec["beat"] != last_beat + 1:
                fail(
                    f"line {lineno}: beat {rec['beat']} after {last_beat}"
                    " (must count 1, 2, 3, ...)"
                )
            if rec["executions"] < last_execs:
                fail(
                    f"line {lineno}: executions regressed"
                    f" {last_execs} -> {rec['executions']}"
                )
            if rec["ts_ms"] < last_ts:
                fail(
                    f"line {lineno}: ts_ms regressed"
                    f" {last_ts} -> {rec['ts_ms']}"
                )
            last_beat = rec["beat"]
            last_execs = rec["executions"]
            last_ts = rec["ts_ms"]
            records += 1

    if records < min_beats:
        fail(f"only {records} record(s), expected at least {min_beats}")
    print(
        f"validate_heartbeat: OK — {records} record(s),"
        f" final executions={last_execs}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
