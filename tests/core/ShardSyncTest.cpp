//===- tests/core/ShardSyncTest.cpp - Shard exchange-layer tests ----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shard synchronization layer on its own, without a campaign on top:
/// the SPSC packet ring preserves order and blocks correctly at both
/// ends, endpoints deliver every published packet exactly once (the
/// published == merged ledger), collectThrough enforces the lag-1 epoch
/// discipline across unevenly paced producers, and the terminal
/// Final-then-drain handshake lets shards with different lifetimes all
/// terminate with balanced books.
///
//===----------------------------------------------------------------------===//

#include "core/ShardSync.h"

#include <gtest/gtest.h>

#include <thread>

using namespace pfuzz;

namespace {

ShardPacket makePacket(uint64_t Epoch, std::vector<uint32_t> Branches = {},
                       bool Final = false) {
  ShardPacket P;
  P.Epoch = Epoch;
  P.Final = Final;
  P.Branches = std::move(Branches);
  return P;
}

} // namespace

TEST(ShardSyncTest, RingTransfersInOrder) {
  ShardPacketRing Ring;
  for (uint64_t E = 1; E <= 3; ++E)
    Ring.push(makePacket(E, {static_cast<uint32_t>(E * 10)}));
  ShardPacket P;
  for (uint64_t E = 1; E <= 3; ++E) {
    Ring.pop(P);
    EXPECT_EQ(P.Epoch, E);
    EXPECT_EQ(P.Branches, std::vector<uint32_t>{static_cast<uint32_t>(E * 10)});
  }
  EXPECT_FALSE(Ring.tryPop(P));
}

TEST(ShardSyncTest, RingBlocksFullProducerAndEmptyConsumer) {
  ShardPacketRing Ring;
  // Fill to capacity, then push one more from a thread; it must block
  // until the consumer makes room — and every packet must come out in
  // order anyway.
  for (uint64_t E = 1; E <= ShardPacketRing::Capacity; ++E)
    Ring.push(makePacket(E));
  std::thread Producer(
      [&Ring] { Ring.push(makePacket(ShardPacketRing::Capacity + 1)); });
  ShardPacket P;
  for (uint64_t E = 1; E <= ShardPacketRing::Capacity + 1; ++E) {
    Ring.pop(P); // the last pop blocks until the producer lands its push
    EXPECT_EQ(P.Epoch, E);
  }
  Producer.join();
}

TEST(ShardSyncTest, TwoEndpointsExchangeWithBalancedLedger) {
  ShardHub Hub(2);
  const int Epochs = 20;
  auto ShardLoop = [&Hub](uint32_t Index) {
    ShardEndpoint &Self = Hub.endpoint(Index);
    std::vector<uint64_t> Seen;
    for (uint64_t E = 1; E <= Epochs; ++E) {
      Self.publish(makePacket(E, {static_cast<uint32_t>(Index * 1000 + E)}));
      Self.collectThrough(E - 1, [&Seen](const ShardPacket &P) {
        Seen.push_back(P.Epoch);
      });
    }
    ShardPacket Final = makePacket(Epochs + 1, {}, /*Final=*/true);
    Self.publish(Final);
    Self.drainAll(
        [&Seen](const ShardPacket &P) { Seen.push_back(P.Epoch); });
    // In-order, gapless delivery from the single peer.
    ASSERT_EQ(Seen.size(), static_cast<size_t>(Epochs + 1));
    for (size_t I = 0; I != Seen.size(); ++I)
      EXPECT_EQ(Seen[I], I + 1);
  };
  std::thread Other([&ShardLoop] { ShardLoop(1); });
  ShardLoop(0);
  Other.join();
  uint64_t Published = 0, Merged = 0;
  for (uint32_t I = 0; I != 2; ++I) {
    Published += Hub.endpoint(I).Stats.DeltasPublished;
    Merged += Hub.endpoint(I).Stats.DeltasMerged;
    EXPECT_EQ(Hub.endpoint(I).Stats.SyncPoints,
              static_cast<uint64_t>(Epochs + 1));
    // Lag-1 discipline: no merge point ever waited on more than one
    // outstanding epoch.
    EXPECT_LE(Hub.endpoint(I).Stats.MaxFrontierLag, 1u);
  }
  EXPECT_EQ(Published, Merged);
  EXPECT_EQ(Published, 2u * (Epochs + 1));
}

TEST(ShardSyncTest, ThreeShardsWithUnevenLifetimes) {
  // Shards run different epoch counts; the Final/drain handshake must
  // still deliver every packet exactly once and let everyone terminate.
  ShardHub Hub(3);
  const uint64_t EpochsFor[3] = {3, 10, 6};
  auto ShardLoop = [&](uint32_t Index) {
    ShardEndpoint &Self = Hub.endpoint(Index);
    uint64_t E = 1;
    for (; E <= EpochsFor[Index]; ++E) {
      Self.publish(makePacket(E));
      Self.collectThrough(E - 1, [](const ShardPacket &) {});
    }
    Self.publish(makePacket(E, {}, /*Final=*/true));
    Self.drainAll([](const ShardPacket &) {});
  };
  std::thread T1([&] { ShardLoop(1); });
  std::thread T2([&] { ShardLoop(2); });
  ShardLoop(0);
  T1.join();
  T2.join();
  uint64_t Published = 0, Merged = 0, Expected = 0;
  for (uint32_t I = 0; I != 3; ++I) {
    Published += Hub.endpoint(I).Stats.DeltasPublished;
    Merged += Hub.endpoint(I).Stats.DeltasMerged;
    Expected += 2 * (EpochsFor[I] + 1); // every epoch + Final, to 2 peers
  }
  EXPECT_EQ(Published, Merged);
  EXPECT_EQ(Published, Expected);
}

TEST(ShardSyncTest, RingPublishDrainHammer) {
  // Two threads hammer one ring far past its capacity so both sleep
  // paths (producer-full, consumer-empty) engage thousands of times.
  // Run under TSan this pins the ring's synchronization contract: the
  // acquire/release index handoff publishes the slot contents, and the
  // lock-before-notify discipline in notify() admits no lost wakeup —
  // a single missed notify deadlocks the test instead of passing slowly.
  ShardPacketRing Ring;
  const uint64_t Packets = 20000;
  std::thread Producer([&Ring] {
    for (uint64_t E = 1; E <= Packets; ++E) {
      ShardPacket P = makePacket(E, {static_cast<uint32_t>(E)});
      P.CandidateBytes.assign(static_cast<size_t>(E % 64), 'x');
      Ring.push(std::move(P));
    }
  });
  uint64_t Next = 1;
  ShardPacket P;
  while (Next <= Packets) {
    // Alternate the opportunistic and blocking consumer paths — the
    // end-of-campaign drain uses both, back to back.
    if (Next % 3 == 0) {
      if (!Ring.tryPop(P))
        continue;
    } else {
      Ring.pop(P);
    }
    ASSERT_EQ(P.Epoch, Next);
    ASSERT_EQ(P.Branches.size(), 1u);
    ASSERT_EQ(P.Branches[0], static_cast<uint32_t>(Next));
    ASSERT_EQ(P.CandidateBytes.size(), static_cast<size_t>(Next % 64));
    ++Next;
  }
  Producer.join();
  EXPECT_FALSE(Ring.tryPop(P));
}

TEST(ShardSyncTest, DrainRacesInFlightFinalPackets) {
  // One shard publishes a burst ending in Final while its peer is
  // already inside drainAll: the opportunistic sweep keeps hitting empty
  // rings mid-burst, and the drain must still fall through to blocking
  // waits until the Final packet itself is consumed — never terminate on
  // an empty ring that merely hasn't received Final yet. Repeated so the
  // sweep lands at different points of the burst.
  for (int Round = 0; Round != 50; ++Round) {
    ShardHub Hub(2);
    const uint64_t Epochs = 12;
    std::thread Publisher([&Hub] {
      ShardEndpoint &Self = Hub.endpoint(1);
      for (uint64_t E = 1; E <= Epochs; ++E)
        Self.publish(makePacket(E, {static_cast<uint32_t>(E)}));
      Self.publish(makePacket(Epochs + 1, {}, /*Final=*/true));
      Self.drainAll([](const ShardPacket &) {});
    });
    ShardEndpoint &Drainer = Hub.endpoint(0);
    Drainer.publish(makePacket(1, {}, /*Final=*/true));
    uint64_t Consumed = 0;
    bool SawFinal = false;
    Drainer.drainAll([&](const ShardPacket &P) {
      ++Consumed;
      SawFinal |= P.Final;
    });
    Publisher.join();
    EXPECT_TRUE(SawFinal);
    EXPECT_EQ(Consumed, Epochs + 1);
    EXPECT_EQ(Drainer.Stats.DeltasMerged, Epochs + 1);
    EXPECT_EQ(Hub.endpoint(1).Stats.DeltasMerged, 1u);
  }
}

TEST(ShardSyncTest, MigrationLedgerBalances) {
  ShardHub Hub(2);
  const int Epochs = 5;
  auto ShardLoop = [&Hub](uint32_t Index) {
    ShardEndpoint &Self = Hub.endpoint(Index);
    for (uint64_t E = 1; E <= Epochs; ++E) {
      ShardPacket P = makePacket(E);
      P.HasCandidate = true;
      P.CandidateBytes = "abc";
      P.CandidateHash = Index * 100 + E;
      Self.publish(P);
      Self.collectThrough(E - 1, [&Self](const ShardPacket &In) {
        if (!In.HasCandidate)
          return;
        // Accept even hashes, reject odd ones — any deterministic split.
        if (In.CandidateHash % 2 == 0)
          ++Self.Stats.MigrationsAccepted;
        else
          ++Self.Stats.MigrationsRejected;
      });
    }
    Self.publish(makePacket(Epochs + 1, {}, /*Final=*/true));
    Self.drainAll([&Self](const ShardPacket &In) {
      if (In.HasCandidate)
        ++Self.Stats.MigrationsRejected; // late arrivals are rejects
    });
  };
  std::thread Other([&ShardLoop] { ShardLoop(1); });
  ShardLoop(0);
  Other.join();
  uint64_t Offered = 0, Accepted = 0, Rejected = 0;
  for (uint32_t I = 0; I != 2; ++I) {
    Offered += Hub.endpoint(I).Stats.MigrationsOffered;
    Accepted += Hub.endpoint(I).Stats.MigrationsAccepted;
    Rejected += Hub.endpoint(I).Stats.MigrationsRejected;
  }
  EXPECT_EQ(Offered, 2u * Epochs);
  EXPECT_EQ(Accepted + Rejected, Offered);
}
