//===- tests/core/PFuzzerLocalityTest.cpp - Locality scheduling -----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract of prefix-locality scheduling — checkpoint ladders
/// (PFuzzerOptions::ResumeStride/ResumeRungs) and trie-batched candidate
/// execution (PFuzzerOptions::LocalityBatch): both are pure wall-clock
/// optimizations. Draining the equal-score queue front in prefix order
/// reorders only executions the heap ranks as ties, and every batched
/// pre-execution is consumed (or recycled) by the same sequential pop
/// loop, so the FuzzReport must be byte-identical at any batch size, any
/// ladder geometry, and any checkpoint-cache size — on every evaluation
/// subject. Ladder rungs restored under eviction pressure must reproduce
/// cold execution event for event.
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "runtime/PrefixResumeCache.h"
#include "subjects/Subject.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace pfuzz;

namespace {

FuzzReport fuzzLocality(const Subject &S, uint64_t Execs, uint64_t Seed,
                        uint32_t ResumeCache, uint32_t LocalityBatch,
                        uint32_t Stride = 16, uint32_t Rungs = 3,
                        LocalityStats *Stats = nullptr) {
  PFuzzerOptions Options;
  Options.ResumeCacheSize = ResumeCache;
  // Engage the engine on every input so short campaign inputs exercise
  // the batcher too (the shipped default bypasses short strings).
  Options.ResumeMinLength = 0;
  Options.ResumeStride = Stride;
  Options.ResumeRungs = Rungs;
  Options.LocalityBatch = LocalityBatch;
  Options.LocalityStatsOut = Stats;
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  return Tool.run(S, Opts);
}

void expectIdenticalReports(const FuzzReport &A, const FuzzReport &B) {
  EXPECT_EQ(A.Executions, B.Executions);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
  EXPECT_EQ(A.ValidBranches, B.ValidBranches);
  EXPECT_EQ(A.CoverageTimeline, B.CoverageTimeline);
}

void expectIdenticalRunResults(const RunResult &A, const RunResult &B) {
  EXPECT_EQ(A.ExitCode, B.ExitCode);
  EXPECT_EQ(A.BranchTrace, B.BranchTrace);
  EXPECT_EQ(A.EventChars, B.EventChars);
  EXPECT_EQ(A.FunctionNames, B.FunctionNames);
  ASSERT_EQ(A.EofAccesses.size(), B.EofAccesses.size());
  for (size_t I = 0; I != A.EofAccesses.size(); ++I)
    EXPECT_EQ(A.EofAccesses[I].AccessIndex, B.EofAccesses[I].AccessIndex);
  ASSERT_EQ(A.CallTrace.size(), B.CallTrace.size());
  for (size_t I = 0; I != A.CallTrace.size(); ++I) {
    EXPECT_EQ(A.CallTrace[I].NameId, B.CallTrace[I].NameId);
    EXPECT_EQ(A.CallTrace[I].Cursor, B.CallTrace[I].Cursor);
  }
  ASSERT_EQ(A.Comparisons.size(), B.Comparisons.size());
  for (size_t I = 0; I != A.Comparisons.size(); ++I) {
    const ComparisonEvent &EA = A.Comparisons[I];
    const ComparisonEvent &EB = B.Comparisons[I];
    EXPECT_EQ(EA.Kind, EB.Kind);
    EXPECT_EQ(EA.Matched, EB.Matched);
    EXPECT_EQ(EA.OnEof, EB.OnEof);
    EXPECT_EQ(EA.Implicit, EB.Implicit);
    EXPECT_EQ(EA.StackDepth, EB.StackDepth);
    EXPECT_EQ(EA.TracePosition, EB.TracePosition);
    EXPECT_EQ(A.expected(EA), B.expected(EB));
    EXPECT_EQ(A.actual(EA), B.actual(EB));
    EXPECT_TRUE(EA.Taint == EB.Taint);
  }
}

} // namespace

TEST(PFuzzerLocalityTest, ReportIdenticalAcrossBatchAndCacheSizes) {
  // The identity sweep: trie-batched order must be invisible in the
  // report on every evaluation subject, at tiny and ample batch sizes,
  // under starved and generous checkpoint caches.
  for (const Subject *S : evaluationSubjects()) {
    uint64_t Execs = S == &jsonSubject() ? 3000 : 1500;
    FuzzReport Sequential =
        fuzzLocality(*S, Execs, 1, /*ResumeCache=*/64, /*LocalityBatch=*/0);
    for (uint32_t Batch : {4u, 64u})
      for (uint32_t Cache : {1u, 8u, 64u}) {
        SCOPED_TRACE(std::string(S->name()) + " batch " +
                     std::to_string(Batch) + " cache " +
                     std::to_string(Cache));
        expectIdenticalReports(Sequential,
                               fuzzLocality(*S, Execs, 1, Cache, Batch));
      }
  }
}

TEST(PFuzzerLocalityTest, ReportIdenticalAcrossLadderGeometries) {
  // Stride and rung count only move checkpoints around; the ladder off
  // (stride 0), fine, and coarse must all report identically.
  FuzzReport Baseline = fuzzLocality(jsonSubject(), 3000, 3, 64, 0,
                                     /*Stride=*/0, /*Rungs=*/0);
  struct {
    uint32_t Stride, Rungs;
  } Geometries[] = {{4, 1}, {16, 3}, {64, 8}};
  for (const auto &G : Geometries) {
    SCOPED_TRACE("stride " + std::to_string(G.Stride) + " rungs " +
                 std::to_string(G.Rungs));
    expectIdenticalReports(
        Baseline,
        fuzzLocality(jsonSubject(), 3000, 3, 64, 64, G.Stride, G.Rungs));
  }
}

TEST(PFuzzerLocalityTest, BatchingActiveWithoutResumeEngine) {
  // LocalityBatch without a resume cache has no engine to keep warm;
  // the batcher instead fans the tie front out as cold pre-executions
  // on the shared work-stealing scheduler (Locality priority). Work
  // placement only: the report must stay byte-identical to the plain
  // sequential run, and the accounting invariant must hold.
  LocalityStats Stats;
  FuzzReport Baseline = fuzzLocality(jsonSubject(), 2000, 7, 0, 0);
  FuzzReport Batched = fuzzLocality(jsonSubject(), 2000, 7, /*ResumeCache=*/0,
                                    /*LocalityBatch=*/64, 16, 3, &Stats);
  expectIdenticalReports(Baseline, Batched);
  EXPECT_GT(Stats.Batches, 0u);
  EXPECT_GT(Stats.Batched, 0u);
  EXPECT_GT(Stats.Consumed, 0u);
  EXPECT_EQ(Stats.Batched, Stats.Consumed + Stats.Recycled + Stats.Discarded);
}

TEST(PFuzzerLocalityTest, StatsExposeBatchingWork) {
  if (!PrefixResumeEngine::available())
    GTEST_SKIP() << "fibers unavailable in this build";
  LocalityStats Stats;
  fuzzLocality(jsonSubject(), 4000, 1, 256, 64, 16, 3, &Stats);
  EXPECT_GT(Stats.Batches, 0u);
  EXPECT_GT(Stats.TieFront, 0u);
  EXPECT_GT(Stats.Batched, 0u);
  EXPECT_GT(Stats.Consumed, 0u);
  // Pre-executions are only ever taken from inspected tie fronts, and
  // consumption cannot exceed the work performed.
  EXPECT_LE(Stats.Batched, Stats.TieFront);
  EXPECT_LE(Stats.Consumed, Stats.Batched);
  // Every batched run is eventually consumed, recycled, or discarded at
  // campaign end — nothing leaks.
  EXPECT_EQ(Stats.Batched, Stats.Consumed + Stats.Recycled + Stats.Discarded);
}

TEST(PFuzzerLocalityTest, LadderRestoreCorrectUnderEvictionPressure) {
  // Direct engine sweep: siblings spliced below a long parent, executed
  // against ladders over every cache size from one entry up. Restores
  // from rungs that survived eviction — and cold re-runs where nothing
  // did — must match cold execution event for event.
  if (!PrefixResumeEngine::available())
    GTEST_SKIP() << "fibers unavailable in this build";
  const Subject &S = jsonSubject();
  const std::string Parent = "{\"a\": [11, 22, [33, {\"b\": \"cd\"}], 44],"
                             " \"e\": [true, false, null, 55]}";
  std::vector<std::string> Inputs;
  for (size_t L = 1; L <= Parent.size(); L += 3)
    Inputs.push_back(Parent.substr(0, L));
  // Spliced siblings: the suffix digits never occur in the parent, so
  // their checkpoints cannot serve as pure parent prefixes.
  for (size_t K = 5; K + 7 < Parent.size(); K += 7) {
    Inputs.push_back(Parent.substr(0, K) + "9");
    Inputs.push_back(Parent.substr(0, K + 3) + "8]");
  }
  std::vector<RunResult> Reference;
  Reference.reserve(Inputs.size());
  for (const std::string &In : Inputs)
    Reference.push_back(S.execute(In, InstrumentationMode::Full));
  for (size_t CacheSize : {1u, 2u, 3u, 6u, 32u}) {
    SCOPED_TRACE("cache " + std::to_string(CacheSize));
    PrefixResumeEngine Engine([&S](ExecutionContext &C) { return S.run(C); },
                              CacheSize, /*MinInput=*/0, /*RungStride=*/8,
                              /*RungCap=*/4);
    RunResult Scratch;
    for (int Round = 0; Round != 2; ++Round)
      for (size_t I = 0; I != Inputs.size(); ++I) {
        SCOPED_TRACE("round " + std::to_string(Round) + " input " +
                     std::to_string(I));
        const RunResult &Run = Engine.execute(Inputs[I], Scratch);
        expectIdenticalRunResults(Reference[I], Run);
      }
    EXPECT_GT(Engine.stats().RungsMinted, 0u);
  }
}

TEST(PFuzzerLocalityTest, RungDepthHistogramRecordsLadderHits) {
  // A parent long enough for several rungs, then siblings spliced at
  // depths only rungs can serve: the hit histogram must report rung
  // depths >= 1 and the average must be positive.
  if (!PrefixResumeEngine::available())
    GTEST_SKIP() << "fibers unavailable in this build";
  const Subject &S = jsonSubject();
  const std::string Parent = "[[1, 2, 3], [1, 2, 3], [1, 2, 3], [1, 2, 3]]";
  PrefixResumeEngine Engine([&S](ExecutionContext &C) { return S.run(C); },
                            /*MaxEntries=*/64, /*MinInput=*/0,
                            /*RungStride=*/8, /*RungCap=*/4);
  RunResult Scratch;
  // Cold parent run mints rungs at 8, 16, 24, 32 plus its past-end
  // checkpoint.
  Engine.execute(Parent, Scratch);
  EXPECT_EQ(Engine.stats().RungsMinted, 4u);
  // A sibling spliced mid-parent can only resume from a rung: bucket 0
  // (past-end hits) must stay empty while some deeper bucket fills.
  Engine.execute(Parent.substr(0, 19) + "9]]", Scratch);
  const ResumeStats &St = Engine.stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.HitsByRung[0], 0u);
  EXPECT_GT(St.avgHitRungDepth(), 0.0);
  uint64_t DeepHits = 0;
  for (size_t I = 1; I != ResumeStats::RungBuckets; ++I)
    DeepHits += St.HitsByRung[I];
  EXPECT_EQ(DeepHits, 1u);
}
