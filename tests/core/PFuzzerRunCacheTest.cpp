//===- tests/core/PFuzzerRunCacheTest.cpp - Memoized replay tests ---------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract of the memoized-run cache (PFuzzerOptions::RunCacheSize):
/// replaying a recorded RunResult instead of re-executing the subject is
/// purely a throughput optimization. A cache hit still counts against the
/// execution budget, still reports through OnValidInput and still feeds
/// the same bookkeeping, so the FuzzReport must be byte-for-byte identical
/// at any cache size — including 0 (disabled).
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "eval/Campaign.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

FuzzReport fuzzWithCache(const Subject &S, uint64_t Execs, uint64_t Seed,
                         uint32_t CacheSize,
                         std::vector<std::string> *ValidLog = nullptr) {
  PFuzzerOptions Options;
  Options.RunCacheSize = CacheSize;
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  if (ValidLog)
    Opts.OnValidInput = [ValidLog](std::string_view Input) {
      ValidLog->emplace_back(Input);
    };
  return Tool.run(S, Opts);
}

void expectIdenticalReports(const FuzzReport &A, const FuzzReport &B) {
  EXPECT_EQ(A.Executions, B.Executions);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
  EXPECT_EQ(A.ValidBranches, B.ValidBranches);
  EXPECT_EQ(A.CoverageTimeline, B.CoverageTimeline);
}

} // namespace

TEST(PFuzzerRunCacheTest, CachedReportIdenticalAcrossSubjectsAndSeeds) {
  for (const Subject *S :
       {&arithSubject(), &jsonSubject(), &tinycSubject(), &dyckSubject()}) {
    for (uint64_t Seed : {1u, 7u}) {
      FuzzReport Uncached = fuzzWithCache(*S, 4000, Seed, /*CacheSize=*/0);
      FuzzReport Cached = fuzzWithCache(*S, 4000, Seed, /*CacheSize=*/64);
      SCOPED_TRACE(std::string(S->name()) + " seed " + std::to_string(Seed));
      expectIdenticalReports(Uncached, Cached);
    }
  }
}

TEST(PFuzzerRunCacheTest, TinyCacheAlsoBehaviorInvariant) {
  // A capacity of 1 maximizes eviction churn; the report must not care.
  FuzzReport Uncached = fuzzWithCache(jsonSubject(), 5000, 3, 0);
  FuzzReport Tiny = fuzzWithCache(jsonSubject(), 5000, 3, 1);
  expectIdenticalReports(Uncached, Tiny);
}

TEST(PFuzzerRunCacheTest, OnValidInputStreamUnchangedByCache) {
  // Token accounting consumes the OnValidInput stream, duplicates
  // included — a replayed valid run must still fire the callback.
  std::vector<std::string> Uncached, Cached;
  fuzzWithCache(arithSubject(), 3000, 5, 0, &Uncached);
  fuzzWithCache(arithSubject(), 3000, 5, 64, &Cached);
  EXPECT_EQ(Uncached, Cached);
}

TEST(PFuzzerRunCacheTest, CampaignCachedMatchesUncached) {
  ToolOptions NoCache;
  NoCache.PFuzzerRunCache = 0;
  ToolOptions WithCache;
  WithCache.PFuzzerRunCache = 64;
  CampaignResult A = runCampaign(ToolKind::PFuzzer, jsonSubject(), 2500, 1,
                                 /*Runs=*/2, /*Jobs=*/1, NoCache);
  CampaignResult B = runCampaign(ToolKind::PFuzzer, jsonSubject(), 2500, 1,
                                 /*Runs=*/2, /*Jobs=*/1, WithCache);
  EXPECT_EQ(A.Report.Executions, B.Report.Executions);
  EXPECT_EQ(A.Report.ValidInputs, B.Report.ValidInputs);
  EXPECT_EQ(A.Report.ValidBranches, B.Report.ValidBranches);
  EXPECT_EQ(A.Report.CoverageTimeline, B.Report.CoverageTimeline);
  EXPECT_EQ(A.TokensFound, B.TokensFound);
}

TEST(PFuzzerRunCacheTest, CampaignCachedJobs4MatchesJobs1) {
  // The cache is per-fuzzer-instance (one per seed run), so parallel
  // seeds stay independent and the Jobs contract holds with it enabled.
  ToolOptions WithCache;
  WithCache.PFuzzerRunCache = 64;
  CampaignResult Seq = runCampaign(ToolKind::PFuzzer, dyckSubject(), 3000, 7,
                                   /*Runs=*/4, /*Jobs=*/1, WithCache);
  CampaignResult Par = runCampaign(ToolKind::PFuzzer, dyckSubject(), 3000, 7,
                                   /*Runs=*/4, /*Jobs=*/4, WithCache);
  EXPECT_EQ(Seq.Report.Executions, Par.Report.Executions);
  EXPECT_EQ(Seq.Report.ValidInputs, Par.Report.ValidInputs);
  EXPECT_EQ(Seq.Report.ValidBranches, Par.Report.ValidBranches);
  EXPECT_EQ(Seq.Report.CoverageTimeline, Par.Report.CoverageTimeline);
  EXPECT_EQ(Seq.TokensFound, Par.TokensFound);
}
