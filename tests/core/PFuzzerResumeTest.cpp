//===- tests/core/PFuzzerResumeTest.cpp - Resumption invariants -----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract of the prefix-resumption engine
/// (PFuzzerOptions::ResumeCacheSize): resuming a checkpointed run with an
/// appended suffix is purely an execution-time optimization. A resumed
/// run records byte-for-byte what a cold run records, so the FuzzReport —
/// executions, emitted inputs, coverage, timeline — and the OnValidInput
/// stream must be identical at any cache size (off, tiny, moderate,
/// unbounded), with and without speculation workers, and on builds
/// without fiber support. Also pins the engine's eligibility gates and
/// the direct engine-vs-cold RunResult equivalence.
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "runtime/PrefixResumeCache.h"
#include "subjects/Subject.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace pfuzz;

namespace {

FuzzReport fuzzResuming(const Subject &S, uint64_t Execs, uint64_t Seed,
                        uint32_t ResumeCache, uint32_t Workers = 0,
                        ResumeStats *Stats = nullptr,
                        std::vector<std::string> *ValidLog = nullptr,
                        uint32_t ResumeMin = 0) {
  PFuzzerOptions Options;
  Options.ResumeCacheSize = ResumeCache;
  // Tests default the bypass threshold to 0 so short campaigns exercise
  // the engine on every input; the sweep also covers the shipped default.
  Options.ResumeMinLength = ResumeMin;
  Options.SpeculationThreads = Workers;
  Options.ResumeStatsOut = Stats;
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  if (ValidLog)
    Opts.OnValidInput = [ValidLog](std::string_view Input) {
      ValidLog->emplace_back(Input);
    };
  return Tool.run(S, Opts);
}

void expectIdenticalReports(const FuzzReport &A, const FuzzReport &B) {
  EXPECT_EQ(A.Executions, B.Executions);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
  EXPECT_EQ(A.ValidBranches, B.ValidBranches);
  EXPECT_EQ(A.CoverageTimeline, B.CoverageTimeline);
}

/// Every RunResult field, not just the report aggregates — resumed
/// executions must be indistinguishable down to arena slices and
/// interned-name order.
void expectIdenticalRunResults(const RunResult &A, const RunResult &B) {
  EXPECT_EQ(A.ExitCode, B.ExitCode);
  EXPECT_EQ(A.BranchTrace, B.BranchTrace);
  EXPECT_EQ(A.EventChars, B.EventChars);
  EXPECT_EQ(A.FunctionNames, B.FunctionNames);
  ASSERT_EQ(A.EofAccesses.size(), B.EofAccesses.size());
  for (size_t I = 0; I != A.EofAccesses.size(); ++I)
    EXPECT_EQ(A.EofAccesses[I].AccessIndex, B.EofAccesses[I].AccessIndex);
  ASSERT_EQ(A.CallTrace.size(), B.CallTrace.size());
  for (size_t I = 0; I != A.CallTrace.size(); ++I) {
    EXPECT_EQ(A.CallTrace[I].NameId, B.CallTrace[I].NameId);
    EXPECT_EQ(A.CallTrace[I].Cursor, B.CallTrace[I].Cursor);
  }
  ASSERT_EQ(A.Comparisons.size(), B.Comparisons.size());
  for (size_t I = 0; I != A.Comparisons.size(); ++I) {
    const ComparisonEvent &EA = A.Comparisons[I];
    const ComparisonEvent &EB = B.Comparisons[I];
    EXPECT_EQ(EA.Kind, EB.Kind);
    EXPECT_EQ(EA.Matched, EB.Matched);
    EXPECT_EQ(EA.OnEof, EB.OnEof);
    EXPECT_EQ(EA.Implicit, EB.Implicit);
    EXPECT_EQ(EA.StackDepth, EB.StackDepth);
    EXPECT_EQ(EA.TracePosition, EB.TracePosition);
    EXPECT_EQ(A.expected(EA), B.expected(EB));
    EXPECT_EQ(A.actual(EA), B.actual(EB));
    EXPECT_TRUE(EA.Taint == EB.Taint);
  }
}

constexpr uint32_t Unbounded = 0xFFFFFFFFu;

TEST(PFuzzerResumeTest, ReportIdenticalAcrossCacheSizesAndSpeculation) {
  // The identity sweep of the engine's contract: {off, 1, 8, unbounded}
  // x {no speculation, 2 workers} x {engine on every input, shipped
  // bypass threshold} on two resume-safe subjects.
  for (const Subject *S : {&jsonSubject(), &iniSubject()}) {
    uint64_t Execs = 3000;
    std::vector<std::string> BaseValid;
    FuzzReport Baseline =
        fuzzResuming(*S, Execs, 7, /*ResumeCache=*/0, /*Workers=*/0, nullptr,
                     &BaseValid);
    for (uint32_t CacheSize : {0u, 1u, 8u, Unbounded}) {
      for (uint32_t Workers : {0u, 2u}) {
        for (uint32_t MinLen : {0u, PFuzzerOptions().ResumeMinLength}) {
          SCOPED_TRACE(std::string(S->name()) + " resume-cache " +
                       std::to_string(CacheSize) + " workers " +
                       std::to_string(Workers) + " min-len " +
                       std::to_string(MinLen));
          std::vector<std::string> Valid;
          FuzzReport Report = fuzzResuming(*S, Execs, 7, CacheSize, Workers,
                                           nullptr, &Valid, MinLen);
          expectIdenticalReports(Baseline, Report);
          EXPECT_EQ(BaseValid, Valid);
        }
      }
    }
  }
}

TEST(PFuzzerResumeTest, EngineResumesWhenAvailable) {
  if (!PrefixResumeEngine::available())
    GTEST_SKIP() << "fibers unavailable in this build";
  ResumeStats Stats;
  fuzzResuming(jsonSubject(), 3000, 11, /*ResumeCache=*/256, 0, &Stats);
  // The search extends prefixes constantly; with a roomy cache most
  // probes must land.
  EXPECT_GT(Stats.Minted, 0u);
  EXPECT_GT(Stats.Hits, 0u);
  EXPECT_GT(Stats.BytesSkipped, 0u);
  EXPECT_GT(Stats.hitRate(), 0.2);
}

TEST(PFuzzerResumeTest, StatsStayZeroWhenDisabledOrIneligible) {
  ResumeStats Stats;
  // Disabled by size.
  fuzzResuming(jsonSubject(), 500, 3, /*ResumeCache=*/0, 0, &Stats);
  EXPECT_EQ(Stats.Probes, 0u);
  EXPECT_EQ(Stats.Minted, 0u);
  // Ineligible subject: mjs frames own heap state, so it must never be
  // checkpointed no matter the configured size.
  EXPECT_FALSE(mjsSubject().resumeSafe());
  fuzzResuming(mjsSubject(), 500, 3, /*ResumeCache=*/64, 0, &Stats);
  EXPECT_EQ(Stats.Probes, 0u);
  EXPECT_EQ(Stats.Minted, 0u);
}

TEST(PFuzzerResumeTest, EvictionBoundsTheCache) {
  if (!PrefixResumeEngine::available())
    GTEST_SKIP() << "fibers unavailable in this build";
  // A one-entry cache must keep working (and keep reports identical —
  // covered by the sweep above); here: it actually evicts.
  ResumeStats Stats;
  fuzzResuming(jsonSubject(), 2000, 11, /*ResumeCache=*/1, 0, &Stats);
  EXPECT_GT(Stats.Minted, 0u);
  EXPECT_GT(Stats.Evicted, 0u);
}

TEST(PFuzzerResumeTest, EngineMatchesColdExecutionEventForEvent) {
  if (!PrefixResumeEngine::available())
    GTEST_SKIP() << "fibers unavailable in this build";
  // Drive the engine directly through a grow-by-one-character sweep, the
  // search's access pattern, and compare every RunResult against a cold
  // execution of the same input.
  const Subject &S = jsonSubject();
  PrefixResumeEngine Engine(
      [&S](ExecutionContext &Ctx) { return S.run(Ctx); }, 64);
  const std::string Final = "{\"key\": [1, 22, true], \"x\": \"ab\\u0041\"}";
  RunResult Scratch;
  for (size_t Len = 1; Len <= Final.size(); ++Len) {
    std::string Input = Final.substr(0, Len);
    SCOPED_TRACE("prefix length " + std::to_string(Len));
    // The result may live in the engine's pool, not Scratch: read it
    // through the returned reference, valid until the next execute.
    const RunResult &Resumed = Engine.execute(Input, Scratch);
    RunResult Cold = S.execute(Input, InstrumentationMode::Full);
    expectIdenticalRunResults(Cold, Resumed);
  }
  // Growing character by character, every step past the first should
  // resume from the previous step's checkpoint.
  EXPECT_GE(Engine.stats().Hits, Final.size() - 2);
  EXPECT_GT(Engine.stats().BytesSkipped, 0u);
}

TEST(PFuzzerResumeTest, MinInputBypassesShortInputs) {
  if (!PrefixResumeEngine::available())
    GTEST_SKIP() << "fibers unavailable in this build";
  // Below the break-even threshold the engine runs inputs plainly —
  // identical results, zero probes, zero checkpoints.
  const Subject &S = jsonSubject();
  PrefixResumeEngine Engine(
      [&S](ExecutionContext &Ctx) { return S.run(Ctx); }, 64, /*MinInput=*/8);
  RunResult Scratch;
  {
    const RunResult &Resumed = Engine.execute("[1]", Scratch);
    RunResult Cold = S.execute("[1]", InstrumentationMode::Full);
    expectIdenticalRunResults(Cold, Resumed);
  }
  EXPECT_EQ(Engine.stats().Probes, 0u);
  EXPECT_EQ(Engine.stats().Minted, 0u);
  // At or past the threshold the machinery engages.
  {
    const RunResult &Resumed = Engine.execute("[true, 12]", Scratch);
    RunResult Cold = S.execute("[true, 12]", InstrumentationMode::Full);
    expectIdenticalRunResults(Cold, Resumed);
  }
  EXPECT_EQ(Engine.stats().Probes, 1u);
  EXPECT_EQ(Engine.stats().Minted, 1u);
}

TEST(PFuzzerResumeTest, ResumesAcrossBranchingExtensions) {
  if (!PrefixResumeEngine::available())
    GTEST_SKIP() << "fibers unavailable in this build";
  // Multi-shot: one checkpoint serves many different suffixes, and a
  // resumed run's own checkpoint chains further extensions.
  const Subject &S = jsonSubject();
  PrefixResumeEngine Engine(
      [&S](ExecutionContext &Ctx) { return S.run(Ctx); }, 64);
  const std::string Prefix = "[true, ";
  RunResult Scratch;
  Engine.execute(Prefix, Scratch); // cold; mints the shared checkpoint
  for (const char *Suffix : {"1]", "\"s\"]", "false]", "[]]", "nul", "1, 2]"}) {
    std::string Input = Prefix + Suffix;
    SCOPED_TRACE(Input);
    const RunResult &Resumed = Engine.execute(Input, Scratch);
    RunResult Cold = S.execute(Input, InstrumentationMode::Full);
    expectIdenticalRunResults(Cold, Resumed);
  }
  EXPECT_GE(Engine.stats().Hits, 6u);
}

} // namespace
