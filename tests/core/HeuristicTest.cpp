//===- tests/core/HeuristicTest.cpp - Heuristic unit tests ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Heuristic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace pfuzz;

namespace {

HeuristicInputs base() {
  HeuristicInputs In;
  In.NewBranches = 10;
  In.InputLen = 5;
  In.ReplacementLen = 1;
  In.AvgStackSize = 2;
  In.NumParents = 3;
  In.PathCount = 0;
  return In;
}

} // namespace

TEST(HeuristicTest, AllTermsFormula) {
  // 10 - 5 + 2*1 - 2 - 3 - 0 = 2
  EXPECT_DOUBLE_EQ(heuristicScore(base(), HeuristicOptions()), 2.0);
}

TEST(HeuristicTest, NewCoverageRaisesScore) {
  HeuristicInputs Hi = base(), Lo = base();
  Hi.NewBranches = 20;
  EXPECT_GT(heuristicScore(Hi, HeuristicOptions()),
            heuristicScore(Lo, HeuristicOptions()));
}

TEST(HeuristicTest, LongerInputsSink) {
  HeuristicInputs Short = base(), Long = base();
  Long.InputLen = 50;
  EXPECT_LT(heuristicScore(Long, HeuristicOptions()),
            heuristicScore(Short, HeuristicOptions()));
}

TEST(HeuristicTest, StringReplacementsRise) {
  HeuristicInputs Keyword = base(), Char = base();
  Keyword.ReplacementLen = 5; // e.g. "while"
  EXPECT_GT(heuristicScore(Keyword, HeuristicOptions()),
            heuristicScore(Char, HeuristicOptions()));
  // The bonus is exactly 2 per replacement character (line 49).
  EXPECT_DOUBLE_EQ(heuristicScore(Keyword, HeuristicOptions()) -
                       heuristicScore(Char, HeuristicOptions()),
                   8.0);
}

TEST(HeuristicTest, DeepStacksSink) {
  HeuristicInputs Deep = base();
  Deep.AvgStackSize = 9;
  EXPECT_LT(heuristicScore(Deep, HeuristicOptions()),
            heuristicScore(base(), HeuristicOptions()));
}

TEST(HeuristicTest, MoreParentsSink) {
  HeuristicInputs Chain = base();
  Chain.NumParents = 9;
  EXPECT_LT(heuristicScore(Chain, HeuristicOptions()),
            heuristicScore(base(), HeuristicOptions()));
}

TEST(HeuristicTest, HotPathsSinkButBounded) {
  HeuristicInputs Hot = base();
  Hot.PathCount = 5;
  EXPECT_LT(heuristicScore(Hot, HeuristicOptions()),
            heuristicScore(base(), HeuristicOptions()));
  HeuristicInputs VeryHot = base();
  VeryHot.PathCount = 1000000;
  HeuristicInputs Capped = base();
  Capped.PathCount = 24;
  EXPECT_DOUBLE_EQ(heuristicScore(VeryHot, HeuristicOptions()),
                   heuristicScore(Capped, HeuristicOptions()));
}

TEST(HeuristicTest, DisabledTermsHaveNoEffect) {
  HeuristicOptions NoLen;
  NoLen.LengthPenalty = false;
  HeuristicInputs Short = base(), Long = base();
  Long.InputLen = 100;
  EXPECT_DOUBLE_EQ(heuristicScore(Short, NoLen),
                   heuristicScore(Long, NoLen));

  HeuristicOptions NoRep;
  NoRep.ReplacementBonus = false;
  HeuristicInputs Big = base();
  Big.ReplacementLen = 50;
  EXPECT_DOUBLE_EQ(heuristicScore(Big, NoRep),
                   heuristicScore(base(), NoRep));

  HeuristicOptions NoStack;
  NoStack.StackSizeTerm = false;
  HeuristicInputs Deep = base();
  Deep.AvgStackSize = 100;
  EXPECT_DOUBLE_EQ(heuristicScore(Deep, NoStack),
                   heuristicScore(base(), NoStack));

  HeuristicOptions NoParents;
  NoParents.ParentCountTerm = false;
  HeuristicInputs Chain = base();
  Chain.NumParents = 100;
  EXPECT_DOUBLE_EQ(heuristicScore(Chain, NoParents),
                   heuristicScore(base(), NoParents));

  HeuristicOptions NoPath;
  NoPath.PathNovelty = false;
  HeuristicInputs Hot = base();
  Hot.PathCount = 100;
  EXPECT_DOUBLE_EQ(heuristicScore(Hot, NoPath),
                   heuristicScore(base(), NoPath));
}

//===----------------------------------------------------------------------===//
// PrefixOrderTrie — the deterministic tie-break order behind trie-batched
// candidate scheduling (PFuzzerOptions::LocalityBatch). DFS order is the
// scheduler's contract: shared prefixes run back-to-back, a prefix runs
// before its extensions, and the order depends only on the key set —
// never on insertion order.
//===----------------------------------------------------------------------===//

namespace {

/// DFS order over the inserted keys, independently computed: sort
/// lexicographically by bytes. std::string's operator< already ranks a
/// prefix before its extensions, which is exactly radix-trie DFS.
std::vector<uint32_t> referenceOrder(std::vector<std::string> Keys) {
  std::vector<size_t> Idx(Keys.size());
  for (size_t I = 0; I != Idx.size(); ++I)
    Idx[I] = I;
  std::sort(Idx.begin(), Idx.end(),
            [&Keys](size_t A, size_t B) { return Keys[A] < Keys[B]; });
  return std::vector<uint32_t>(Idx.begin(), Idx.end());
}

} // namespace

TEST(PrefixOrderTrieTest, DfsIsLexicographicPrefixFirst) {
  // Sibling-heavy key set with shared prefixes, a key that is a strict
  // prefix of two others, unsigned-byte comparisons past 0x7F, and an
  // empty key (the root itself).
  std::vector<std::string> Keys = {
      "[1, 2]", "[1, 22]", "[1, 2",  "[1,",  "[true]", "[",
      "{\"a\"", "{\"ab\"", "{\"b\"", "",     "\x7f",   "\x80",
      "zz",     "z",       "[1, 2a", "[2]"};
  PrefixOrderTrie Trie;
  for (size_t I = 0; I != Keys.size(); ++I)
    ASSERT_TRUE(Trie.insert(Keys[I], static_cast<uint32_t>(I)));
  EXPECT_EQ(Trie.size(), Keys.size());
  std::vector<uint32_t> Order;
  Trie.dfsOrder(Order);
  EXPECT_EQ(Order, referenceOrder(Keys));
}

TEST(PrefixOrderTrieTest, OrderIndependentOfInsertionOrder) {
  // The regression that motivates the trie: a heap pops equal scores in
  // arbitrary sibling order, varying run to run. DFS order must not —
  // any permutation of inserts yields the same sequence of tags.
  std::vector<std::string> Keys = {"ba", "ab", "a", "b", "abc", "ba1", "",
                                   "ab0"};
  std::vector<uint32_t> Expected = referenceOrder(Keys);
  std::vector<size_t> Perm(Keys.size());
  for (size_t I = 0; I != Perm.size(); ++I)
    Perm[I] = I;
  std::sort(Perm.begin(), Perm.end());
  do {
    PrefixOrderTrie Trie;
    for (size_t I : Perm)
      ASSERT_TRUE(Trie.insert(Keys[I], static_cast<uint32_t>(I)));
    std::vector<uint32_t> Order;
    Trie.dfsOrder(Order);
    ASSERT_EQ(Order, Expected);
  } while (std::next_permutation(Perm.begin(), Perm.end()));
}

TEST(PrefixOrderTrieTest, DuplicateKeepsFirstTag) {
  PrefixOrderTrie Trie;
  EXPECT_TRUE(Trie.insert("abc", 1));
  EXPECT_FALSE(Trie.insert("abc", 2));
  EXPECT_EQ(Trie.size(), 1u);
  std::vector<uint32_t> Order;
  Trie.dfsOrder(Order);
  EXPECT_EQ(Order, std::vector<uint32_t>({1}));
}

TEST(PrefixOrderTrieTest, ClearResetsForReuse) {
  // The scheduler reuses one trie across every batch; clear() must drop
  // old keys (and their tags) completely.
  PrefixOrderTrie Trie;
  Trie.insert("stale", 9);
  Trie.insert("staler", 8);
  Trie.clear();
  EXPECT_EQ(Trie.size(), 0u);
  std::vector<uint32_t> Order;
  Trie.dfsOrder(Order);
  EXPECT_TRUE(Order.empty());
  EXPECT_TRUE(Trie.insert("stale", 3));
  Trie.insert("fresh", 4);
  Trie.dfsOrder(Order);
  EXPECT_EQ(Order, std::vector<uint32_t>({4, 3}));
}

TEST(PrefixOrderTrieTest, DfsOrderAppendsToExistingOutput) {
  // dfsOrder appends — the scheduler accumulates one batch after
  // another into the same vector.
  PrefixOrderTrie Trie;
  Trie.insert("x", 7);
  std::vector<uint32_t> Order = {42};
  Trie.dfsOrder(Order);
  EXPECT_EQ(Order, std::vector<uint32_t>({42, 7}));
}
