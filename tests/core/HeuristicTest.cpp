//===- tests/core/HeuristicTest.cpp - Heuristic unit tests ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Heuristic.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

HeuristicInputs base() {
  HeuristicInputs In;
  In.NewBranches = 10;
  In.InputLen = 5;
  In.ReplacementLen = 1;
  In.AvgStackSize = 2;
  In.NumParents = 3;
  In.PathCount = 0;
  return In;
}

} // namespace

TEST(HeuristicTest, AllTermsFormula) {
  // 10 - 5 + 2*1 - 2 - 3 - 0 = 2
  EXPECT_DOUBLE_EQ(heuristicScore(base(), HeuristicOptions()), 2.0);
}

TEST(HeuristicTest, NewCoverageRaisesScore) {
  HeuristicInputs Hi = base(), Lo = base();
  Hi.NewBranches = 20;
  EXPECT_GT(heuristicScore(Hi, HeuristicOptions()),
            heuristicScore(Lo, HeuristicOptions()));
}

TEST(HeuristicTest, LongerInputsSink) {
  HeuristicInputs Short = base(), Long = base();
  Long.InputLen = 50;
  EXPECT_LT(heuristicScore(Long, HeuristicOptions()),
            heuristicScore(Short, HeuristicOptions()));
}

TEST(HeuristicTest, StringReplacementsRise) {
  HeuristicInputs Keyword = base(), Char = base();
  Keyword.ReplacementLen = 5; // e.g. "while"
  EXPECT_GT(heuristicScore(Keyword, HeuristicOptions()),
            heuristicScore(Char, HeuristicOptions()));
  // The bonus is exactly 2 per replacement character (line 49).
  EXPECT_DOUBLE_EQ(heuristicScore(Keyword, HeuristicOptions()) -
                       heuristicScore(Char, HeuristicOptions()),
                   8.0);
}

TEST(HeuristicTest, DeepStacksSink) {
  HeuristicInputs Deep = base();
  Deep.AvgStackSize = 9;
  EXPECT_LT(heuristicScore(Deep, HeuristicOptions()),
            heuristicScore(base(), HeuristicOptions()));
}

TEST(HeuristicTest, MoreParentsSink) {
  HeuristicInputs Chain = base();
  Chain.NumParents = 9;
  EXPECT_LT(heuristicScore(Chain, HeuristicOptions()),
            heuristicScore(base(), HeuristicOptions()));
}

TEST(HeuristicTest, HotPathsSinkButBounded) {
  HeuristicInputs Hot = base();
  Hot.PathCount = 5;
  EXPECT_LT(heuristicScore(Hot, HeuristicOptions()),
            heuristicScore(base(), HeuristicOptions()));
  HeuristicInputs VeryHot = base();
  VeryHot.PathCount = 1000000;
  HeuristicInputs Capped = base();
  Capped.PathCount = 24;
  EXPECT_DOUBLE_EQ(heuristicScore(VeryHot, HeuristicOptions()),
                   heuristicScore(Capped, HeuristicOptions()));
}

TEST(HeuristicTest, DisabledTermsHaveNoEffect) {
  HeuristicOptions NoLen;
  NoLen.LengthPenalty = false;
  HeuristicInputs Short = base(), Long = base();
  Long.InputLen = 100;
  EXPECT_DOUBLE_EQ(heuristicScore(Short, NoLen),
                   heuristicScore(Long, NoLen));

  HeuristicOptions NoRep;
  NoRep.ReplacementBonus = false;
  HeuristicInputs Big = base();
  Big.ReplacementLen = 50;
  EXPECT_DOUBLE_EQ(heuristicScore(Big, NoRep),
                   heuristicScore(base(), NoRep));

  HeuristicOptions NoStack;
  NoStack.StackSizeTerm = false;
  HeuristicInputs Deep = base();
  Deep.AvgStackSize = 100;
  EXPECT_DOUBLE_EQ(heuristicScore(Deep, NoStack),
                   heuristicScore(base(), NoStack));

  HeuristicOptions NoParents;
  NoParents.ParentCountTerm = false;
  HeuristicInputs Chain = base();
  Chain.NumParents = 100;
  EXPECT_DOUBLE_EQ(heuristicScore(Chain, NoParents),
                   heuristicScore(base(), NoParents));

  HeuristicOptions NoPath;
  NoPath.PathNovelty = false;
  HeuristicInputs Hot = base();
  Hot.PathCount = 100;
  EXPECT_DOUBLE_EQ(heuristicScore(Hot, NoPath),
                   heuristicScore(base(), NoPath));
}
