//===- tests/core/PFuzzerQueueStoreTest.cpp - Compact candidate store -----===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract of the compact candidate store (core/CandidateStore.h):
/// representation only, never behavior. A campaign run on compact
/// prefix-suffix records must produce a FuzzReport byte-identical to the
/// same campaign run on the string-backed reference queue — on every
/// evaluation subject, crossed with speculation, locality batching, run
/// cache and queue-trim pressure. Plus direct store unit tests
/// (materialization chains, trim + arena compaction) and the PathCounts
/// decay regression.
///
//===----------------------------------------------------------------------===//

#include "core/CandidateStore.h"
#include "core/PFuzzer.h"
#include "subjects/Subject.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace pfuzz;

namespace {

struct QueueConfig {
  const char *Name;
  uint32_t RunCache = 64;
  uint32_t Speculation = 0;
  uint32_t Locality = 0;
  uint32_t ResumeCache = 0;
  size_t MaxQueue = 100000;
};

FuzzReport fuzzQueue(const Subject &S, uint64_t Execs, uint64_t Seed,
                     const QueueConfig &C, bool Reference,
                     QueueStats *Stats = nullptr) {
  PFuzzerOptions Options;
  Options.RunCacheSize = C.RunCache;
  Options.SpeculationThreads = C.Speculation;
  Options.LocalityBatch = C.Locality;
  Options.ResumeCacheSize = C.ResumeCache;
  // Engage the resume engine on every input so short campaign inputs
  // exercise the warm handoff paths too.
  Options.ResumeMinLength = 0;
  Options.MaxQueue = C.MaxQueue;
  Options.ReferenceQueue = Reference;
  Options.QueueStatsOut = Stats;
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  return Tool.run(S, Opts);
}

void expectIdenticalReports(const FuzzReport &A, const FuzzReport &B) {
  EXPECT_EQ(A.Executions, B.Executions);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
  EXPECT_EQ(A.ValidBranches, B.ValidBranches);
  EXPECT_EQ(A.CoverageTimeline, B.CoverageTimeline);
}

} // namespace

TEST(PFuzzerQueueStoreTest, ReportIdenticalToReferenceQueueAcrossConfigs) {
  // The identity sweep: compact records against the by-value reference
  // queue, on all five evaluation subjects, crossed with every execution
  // optimization and with queue caps small enough to force trims.
  const QueueConfig Configs[] = {
      {"default"},
      {"nocache-trim", /*RunCache=*/0, 0, 0, 0, /*MaxQueue=*/256},
      {"speculation", 64, /*Speculation=*/2},
      {"locality-resume", 64, 0, /*Locality=*/64, /*ResumeCache=*/64},
      {"all-trim", 64, /*Speculation=*/2, /*Locality=*/64, /*ResumeCache=*/64,
       /*MaxQueue=*/512},
  };
  for (const Subject *S : evaluationSubjects()) {
    uint64_t Execs = S == &jsonSubject() ? 3000 : 1500;
    for (const QueueConfig &C : Configs) {
      SCOPED_TRACE(std::string(S->name()) + " config " + C.Name);
      FuzzReport Reference = fuzzQueue(*S, Execs, 1, C, /*Reference=*/true);
      FuzzReport Compact = fuzzQueue(*S, Execs, 1, C, /*Reference=*/false);
      expectIdenticalReports(Reference, Compact);
    }
  }
}

TEST(PFuzzerQueueStoreTest, TrimPressureConfigActuallyTrims) {
  // Guard against the sweep silently losing its trim coverage: the
  // small-cap config must overflow the queue and drop candidates.
  QueueConfig C{"nocache-trim", /*RunCache=*/0, 0, 0, 0, /*MaxQueue=*/256};
  QueueStats Stats;
  fuzzQueue(jsonSubject(), 3000, 1, C, /*Reference=*/false, &Stats);
  EXPECT_GT(Stats.Trims, 0u);
  EXPECT_GT(Stats.TrimmedCandidates, 0u);
}

TEST(PFuzzerQueueStoreTest, CompactStoreUsesLessQueueMemory) {
  // The structural claim behind the tentpole, asserted on sampled peaks
  // (the 2x Release-bench gate lives in CI; here only the direction, so
  // Debug and sanitizer builds stay robust).
  QueueConfig C{"default"};
  QueueStats Reference, Compact;
  fuzzQueue(jsonSubject(), 3000, 1, C, /*Reference=*/true, &Reference);
  fuzzQueue(jsonSubject(), 3000, 1, C, /*Reference=*/false, &Compact);
  ASSERT_GT(Reference.PeakBytes, 0u);
  ASSERT_GT(Compact.PeakBytes, 0u);
  EXPECT_LT(Compact.PeakBytes, Reference.PeakBytes);
  EXPECT_EQ(Compact.Pushes, Reference.Pushes);
  EXPECT_EQ(Compact.Rescores, Reference.Rescores);
  EXPECT_GT(Compact.PeakArenaBytes, 0u);
  EXPECT_EQ(Reference.PeakArenaBytes, 0u); // strings, not arena slices
}

TEST(PFuzzerQueueStoreTest, PathTableDecaysInsteadOfGrowingUnbounded) {
  // Regression for the unbounded PathCounts growth: with a small cap the
  // campaign must decay the table (halve counts, drop zeros) instead of
  // letting it grow past the cap, and still complete its budget.
  QueueConfig C{"tiny-cap", 64, 0, 0, 0, /*MaxQueue=*/32};
  QueueStats Stats;
  FuzzReport Report =
      fuzzQueue(jsonSubject(), 3000, 1, C, /*Reference=*/false, &Stats);
  EXPECT_EQ(Report.Executions, 3000u);
  EXPECT_GT(Stats.PathDecays, 0u);
  // The table can only exceed the cap by the insert that triggers each
  // decay; well under 2x is the "bounded" part of the contract.
  EXPECT_LE(Stats.PeakPathTable, 2 * C.MaxQueue);
}

TEST(PFuzzerQueueStoreTest, MaterializesParentChains) {
  // Direct store exercise: a substitution chain three records deep, each
  // splicing below its parent, must reassemble exactly.
  CandidateStore Store(/*Reference=*/false, /*MaxQueue=*/100);
  uint32_t Root = Store.internRoot("abc", 0x1);
  std::vector<uint32_t> Branches{10, 20, 30};
  uint32_t Run = Store.makeRun(Branches, 0, 1.5, 0x99, 0);
  Store.push(Run, Root, "abc", 2, "xy", 0x2, 2, 1, 5.0);
  std::string Out;
  CandidateStore::Popped P = Store.pop(Out);
  EXPECT_EQ(Out, "abxy");
  EXPECT_EQ(P.Score, 5.0);
  EXPECT_EQ(P.InputHash, 0x2u);
  EXPECT_EQ(P.NumParents, 1u);
  EXPECT_EQ(P.ReplacementLen, 2u);
  EXPECT_EQ(P.NewBranchCount, 3u);
  // The popped record (still pinned) becomes the next parent.
  uint32_t Run2 = Store.makeRun(Branches, 0, 1.5, 0x99, P.NumParents);
  Store.push(Run2, P.Id, Out, 3, "z", 0x3, 1, 1, 6.0);
  // A requeue-style record: empty suffix spliced at the full length is
  // its parent byte for byte at zero stored bytes.
  Store.push(Run2, P.Id, Out, 4, std::string_view(), 0x4, 1, 0, 4.0);
  CandidateStore::Popped Child = Store.pop(Out);
  EXPECT_EQ(Out, "abxz");
  EXPECT_EQ(Child.NumParents, 2u);
  CandidateStore::Popped Requeue = Store.pop(Out);
  EXPECT_EQ(Out, "abxy");
  EXPECT_EQ(Requeue.NumParents, 1u);
  EXPECT_TRUE(Store.empty());
  Store.releaseRun(Run);
  Store.releaseRun(Run2);
  Store.release(Requeue.Id);
  Store.release(Child.Id);
  Store.release(P.Id);
  Store.release(Root);
}

TEST(PFuzzerQueueStoreTest, TrimReleasesRecordsAndCompactsArena) {
  // Overflow a tiny queue with large-suffix candidates: the rescore trim
  // must drop the worst-scored half, and with most of the arena then
  // dead, compaction must rebuild it — after which the survivors must
  // still materialize byte for byte (offsets patched correctly).
  CandidateStore Store(/*Reference=*/false, /*MaxQueue=*/4);
  BranchCoverageMap VBr;
  PathCountMap PathCounts;
  HeuristicOptions Heur;
  uint32_t Root = Store.internRoot("", 0x1);
  std::vector<uint32_t> NoBranches;
  uint32_t Run = Store.makeRun(NoBranches, 0, 0.0, 0, 0);
  for (uint32_t I = 0; I != 12; ++I) {
    std::string Suffix(600, static_cast<char>('a' + I));
    // Score recomputation at rescore: 0 new branches - 600 length +
    // 2 * ReplacementLen - 0 stack - 1 parent - 0 path = 2 * I - 601,
    // strictly increasing in I, so the trim keeps the highest I's.
    Store.push(Run, Root, "", 0, Suffix, 0x100 + I, /*ReplacementLen=*/I,
               /*ParentDelta=*/1, 2.0 * I - 601);
  }
  ASSERT_EQ(Store.queueSize(), 12u);
  bool Trimmed = Store.rescore(VBr, PathCounts, Heur);
  EXPECT_TRUE(Trimmed);
  EXPECT_EQ(Store.queueSize(), 2u);
  EXPECT_EQ(Store.Stats.Trims, 1u);
  EXPECT_EQ(Store.Stats.TrimmedCandidates, 10u);
  EXPECT_EQ(Store.Stats.Compactions, 1u);
  EXPECT_GT(Store.Stats.ArenaBytesReclaimed, 5000u);
  std::string Out;
  CandidateStore::Popped First = Store.pop(Out);
  EXPECT_EQ(Out, std::string(600, 'a' + 11));
  EXPECT_EQ(First.Score, 2.0 * 11 - 601);
  Store.pop(Out);
  EXPECT_EQ(Out, std::string(600, 'a' + 10));
  EXPECT_TRUE(Store.empty());
}
