//===- tests/core/BranchCoverageMapTest.cpp - Coverage bitmap unit tests --===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dense branch-outcome bitmap underneath the fuzzing loop and the
/// shard-sync layer: membership, incremental size and epoch accounting,
/// content equality across different word-vector lengths, and the delta
/// journal contract — exportDelta(SinceEpoch) hands out exactly the keys
/// set after that epoch, mergeDelta replays them into another map, and a
/// clear() degrades older anchors to a full-content resync instead of a
/// wrong partial answer.
///
//===----------------------------------------------------------------------===//

#include "core/BranchCoverageMap.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(BranchCoverageMapTest, SetTestSizeAndEpoch) {
  BranchCoverageMap Map;
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.epoch(), 0u);

  EXPECT_TRUE(Map.set(7));
  EXPECT_TRUE(Map.set(64)); // second word
  EXPECT_FALSE(Map.set(7)); // duplicate: no epoch advance
  EXPECT_TRUE(Map.test(7));
  EXPECT_TRUE(Map.test(64));
  EXPECT_FALSE(Map.test(8));
  EXPECT_FALSE(Map.test(1000)); // past the last word
  EXPECT_EQ(Map.size(), 2u);
  EXPECT_EQ(Map.epoch(), 2u);
}

TEST(BranchCoverageMapTest, InsertValuesAndToSet) {
  BranchCoverageMap Map;
  const uint32_t Keys[] = {130, 3, 130, 65, 3};
  Map.insert(std::begin(Keys), std::end(Keys));
  EXPECT_EQ(Map.size(), 3u);
  EXPECT_EQ(Map.values(), (std::vector<uint32_t>{3, 65, 130}));
  EXPECT_EQ(Map.toSet(), (std::set<uint32_t>{3, 65, 130}));
}

TEST(BranchCoverageMapTest, EqualityIgnoresTrailingEmptyWords) {
  BranchCoverageMap A, B;
  A.set(5);
  B.set(5);
  // Grow B's word vector past A's, then clear, re-set: same content,
  // different internal lengths.
  B.set(500);
  BranchCoverageMap C;
  C.set(5);
  EXPECT_NE(A, B);
  B.clear();
  B.set(5);
  EXPECT_EQ(A, B);
  EXPECT_EQ(B, C);
}

TEST(BranchCoverageMapTest, ExportDeltaMergeDeltaRoundTrip) {
  BranchCoverageMap Source, Sink;
  Source.set(10);
  Source.set(20);
  uint64_t Mark = Source.epoch();

  // Nothing new past the current epoch.
  std::vector<uint32_t> Delta;
  EXPECT_EQ(Source.exportDelta(Mark, Delta), 0u);
  EXPECT_TRUE(Delta.empty());

  Source.set(30);
  Source.set(40);
  EXPECT_EQ(Source.exportDelta(Mark, Delta), 2u);
  // First-set order, not ascending key order.
  EXPECT_EQ(Delta, (std::vector<uint32_t>{30, 40}));

  // A delta from epoch 0 replays the full history and reproduces the
  // source exactly.
  Delta.clear();
  EXPECT_EQ(Source.exportDelta(0, Delta), 4u);
  EXPECT_EQ(Sink.mergeDelta(Delta.begin(), Delta.end()), 4u);
  EXPECT_EQ(Sink, Source);

  // Re-merging the same delta is idempotent: nothing fresh.
  EXPECT_EQ(Sink.mergeDelta(Delta.begin(), Delta.end()), 0u);
  EXPECT_EQ(Sink.size(), 4u);
}

TEST(BranchCoverageMapTest, MergeDeltaCountsOnlyFreshKeys) {
  BranchCoverageMap Map;
  Map.set(1);
  const uint32_t Incoming[] = {1, 2, 3, 2};
  EXPECT_EQ(Map.mergeDelta(std::begin(Incoming), std::end(Incoming)), 2u);
  EXPECT_EQ(Map.size(), 3u);
}

TEST(BranchCoverageMapTest, ClearDegradesOldAnchorsToFullResync) {
  BranchCoverageMap Map;
  Map.set(10);
  uint64_t PreClear = Map.epoch();
  Map.clear();
  EXPECT_TRUE(Map.empty());
  Map.set(20);
  Map.set(30);

  // The pre-clear anchor cannot be served from the journal any more; the
  // export falls back to the entire current content — a superset of the
  // true delta, which merges idempotently.
  std::vector<uint32_t> Delta;
  EXPECT_EQ(Map.exportDelta(PreClear, Delta), 2u);
  EXPECT_EQ(Delta, (std::vector<uint32_t>{20, 30}));

  // Anchors taken after the clear are incremental again.
  uint64_t PostClear = Map.epoch();
  Map.set(40);
  Delta.clear();
  EXPECT_EQ(Map.exportDelta(PostClear, Delta), 1u);
  EXPECT_EQ(Delta, (std::vector<uint32_t>{40}));
}

TEST(BranchCoverageMapTest, DeltaChainTracksGrowth) {
  // A consumer that advances its anchor after every export sees every
  // key exactly once, whatever the batching.
  BranchCoverageMap Source, Sink;
  uint64_t Anchor = Source.epoch();
  size_t TotalReceived = 0;
  for (uint32_t Round = 0; Round != 5; ++Round) {
    for (uint32_t K = Round * 10; K != Round * 10 + Round + 1; ++K)
      Source.set(K);
    std::vector<uint32_t> Delta;
    Source.exportDelta(Anchor, Delta);
    Anchor = Source.epoch();
    TotalReceived += Delta.size();
    Sink.mergeDelta(Delta.begin(), Delta.end());
  }
  EXPECT_EQ(TotalReceived, Source.size());
  EXPECT_EQ(Sink, Source);
}
