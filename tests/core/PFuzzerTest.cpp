//===- tests/core/PFuzzerTest.cpp - pFuzzer behavioural tests -------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

FuzzReport fuzz(const Subject &S, uint64_t Execs, uint64_t Seed = 1) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  return Tool.run(S, Opts);
}

bool anyContains(const std::vector<std::string> &Inputs,
                 std::string_view Needle) {
  for (const std::string &I : Inputs)
    if (I.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(PFuzzerTest, AllOutputsAreValidByConstruction) {
  for (const Subject *S :
       {&arithSubject(), &jsonSubject(), &tinycSubject()}) {
    FuzzReport R = fuzz(*S, 3000);
    for (const std::string &Input : R.ValidInputs)
      EXPECT_TRUE(S->accepts(Input))
          << S->name() << " emitted invalid input: " << Input;
  }
}

TEST(PFuzzerTest, FindsValidArithInputsQuickly) {
  FuzzReport R = fuzz(arithSubject(), 1500);
  EXPECT_FALSE(R.ValidInputs.empty());
}

TEST(PFuzzerTest, ArithDiversityMirrorsSection2) {
  // Section 2 promises inputs covering digits, signs and parentheses.
  FuzzReport R = fuzz(arithSubject(), 8000);
  EXPECT_TRUE(anyContains(R.ValidInputs, "("));
  bool SawSign = anyContains(R.ValidInputs, "+") ||
                 anyContains(R.ValidInputs, "-");
  EXPECT_TRUE(SawSign);
}

TEST(PFuzzerTest, SynthesisesJsonKeywords) {
  // The paper's headline: pFuzzer generates true/false/null on cJSON
  // (Section 5.3, Table 2 row of Figure 3).
  FuzzReport R = fuzz(jsonSubject(), 25000);
  EXPECT_TRUE(anyContains(R.ValidInputs, "true"));
  EXPECT_TRUE(anyContains(R.ValidInputs, "false"));
  EXPECT_TRUE(anyContains(R.ValidInputs, "null"));
}

TEST(PFuzzerTest, SynthesisesTinyCKeyword) {
  FuzzReport R = fuzz(tinycSubject(), 25000);
  bool AnyKeyword = anyContains(R.ValidInputs, "while") ||
                    anyContains(R.ValidInputs, "if") ||
                    anyContains(R.ValidInputs, "do");
  EXPECT_TRUE(AnyKeyword);
}

TEST(PFuzzerTest, DeterministicForSameSeed) {
  FuzzReport A = fuzz(jsonSubject(), 2000, 7);
  FuzzReport B = fuzz(jsonSubject(), 2000, 7);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
  EXPECT_EQ(A.ValidBranches, B.ValidBranches);
}

TEST(PFuzzerTest, SeedsChangeExploration) {
  FuzzReport A = fuzz(jsonSubject(), 2000, 1);
  FuzzReport B = fuzz(jsonSubject(), 2000, 2);
  // Not a hard guarantee, but with different seeds the discovery order
  // should differ in practice.
  EXPECT_NE(A.ValidInputs, B.ValidInputs);
}

TEST(PFuzzerTest, RespectsExecutionBudget) {
  FuzzReport R = fuzz(jsonSubject(), 500);
  EXPECT_LE(R.Executions, 501u);
  EXPECT_GE(R.Executions, 499u);
}

TEST(PFuzzerTest, CoverageTimelineMonotone) {
  FuzzReport R = fuzz(jsonSubject(), 5000);
  ASSERT_FALSE(R.CoverageTimeline.empty());
  for (size_t I = 1; I < R.CoverageTimeline.size(); ++I) {
    EXPECT_LE(R.CoverageTimeline[I - 1].second,
              R.CoverageTimeline[I].second);
    EXPECT_LE(R.CoverageTimeline[I - 1].first,
              R.CoverageTimeline[I].first);
  }
}

TEST(PFuzzerTest, ValidInputsCoverNewBranchesOnly) {
  // Each reported input must have contributed coverage: there can be no
  // more reported inputs than covered branch outcomes.
  FuzzReport R = fuzz(jsonSubject(), 5000);
  EXPECT_LE(R.ValidInputs.size(), R.ValidBranches.size());
}

TEST(PFuzzerTest, IgnoresImplicitComparisons) {
  // On json, the \u hex digits are implicit: pFuzzer should never emit a
  // valid input containing a unicode escape (the Section 5.2 limitation).
  FuzzReport R = fuzz(jsonSubject(), 20000);
  EXPECT_FALSE(anyContains(R.ValidInputs, "\\u"));
}

TEST(PFuzzerTest, GrowsInputsBeyondOneCharacter) {
  FuzzReport R = fuzz(arithSubject(), 8000);
  size_t MaxLen = 0;
  for (const std::string &I : R.ValidInputs)
    MaxLen = std::max(MaxLen, I.size());
  EXPECT_GE(MaxLen, 3u);
}

TEST(PFuzzerTest, AblationWithoutReplacementBonusStillRuns) {
  HeuristicOptions NoBonus;
  NoBonus.ReplacementBonus = false;
  PFuzzer Tool(NoBonus);
  FuzzerOptions Opts;
  Opts.Seed = 1;
  Opts.MaxExecutions = 2000;
  FuzzReport R = Tool.run(jsonSubject(), Opts);
  EXPECT_GT(R.Executions, 0u);
}
