//===- tests/core/PFuzzerInternalsTest.cpp - pFuzzer edge cases -----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

/// A parser with swapped range bounds, as in `c >= 200 && c <= 'd'` typos:
/// the range admits nothing, but its recorded bounds (Lo=0xC8, Hi=0x64)
/// underflow a naive Hi - Lo + 1 candidate count. The only accepting
/// input starts with byte 0xC8 — unreachable for the fuzzer unless the
/// inverted range fabricates it as a boundary candidate.
class InvertedRangeSubject final : public Subject {
public:
  std::string_view name() const override { return "inverted-range"; }
  uint32_t numBranchSites() const override { return 2; }
  int run(ExecutionContext &Ctx) const override {
    TChar C = Ctx.nextChar();
    if (C.isEof())
      return 1;
    bool InRange = Ctx.cmpRange(C, static_cast<char>(0xC8), 'd');
    Ctx.recordBranch(0, InRange);
    // Validity checked on the raw byte, not through a recorded
    // comparison, so substitution candidates can only come from the
    // inverted range above.
    bool Valid = C.value() == 0xC8;
    Ctx.recordBranch(1, Valid);
    return Valid ? 0 : 1;
  }
};

} // namespace

TEST(PFuzzerInternalsTest, InvertedCharRangeYieldsNoExpansions) {
  // Random extensions only draw printables, so the sole way to reach the
  // accepting 0xC8 byte would be an expansion fabricated from the
  // inverted range's underflowed bounds. The campaign must instead burn
  // its whole budget finding nothing.
  InvertedRangeSubject S;
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 1;
  Opts.MaxExecutions = 3000;
  FuzzReport R = Tool.run(S, Opts);
  EXPECT_TRUE(R.ValidInputs.empty());
  EXPECT_EQ(R.Executions, 3000u);
}

TEST(PFuzzerInternalsTest, MaxInputLenRespected) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 1;
  Opts.MaxExecutions = 5000;
  Opts.MaxInputLen = 6;
  FuzzReport R = Tool.run(arithSubject(), Opts);
  for (const std::string &Input : R.ValidInputs)
    EXPECT_LE(Input.size(), 7u); // candidate <= 6, extension adds <= 1
}

TEST(PFuzzerInternalsTest, OnValidInputSeesEveryValidExecution) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 2;
  Opts.MaxExecutions = 4000;
  uint64_t Callbacks = 0;
  Opts.OnValidInput = [&Callbacks](std::string_view) { ++Callbacks; };
  FuzzReport R = Tool.run(arithSubject(), Opts);
  // Every *reported* input was a valid execution, and re-runs of valid
  // prefixes make the callback count at least as large.
  EXPECT_GE(Callbacks, R.ValidInputs.size());
}

TEST(PFuzzerInternalsTest, ZeroBudgetProducesNothing) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 1;
  Opts.MaxExecutions = 0;
  FuzzReport R = Tool.run(jsonSubject(), Opts);
  EXPECT_EQ(R.Executions, 0u);
  EXPECT_TRUE(R.ValidInputs.empty());
}

TEST(PFuzzerInternalsTest, TinyBudgetStillTerminates) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 1;
  for (uint64_t Budget : {1ull, 2ull, 3ull, 7ull}) {
    Opts.MaxExecutions = Budget;
    FuzzReport R = Tool.run(mjsSubject(), Opts);
    EXPECT_LE(R.Executions, Budget + 1);
  }
}

TEST(PFuzzerInternalsTest, NoDuplicateEmittedInputs) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 3;
  Opts.MaxExecutions = 10000;
  FuzzReport R = Tool.run(jsonSubject(), Opts);
  std::set<std::string> Unique(R.ValidInputs.begin(), R.ValidInputs.end());
  EXPECT_EQ(Unique.size(), R.ValidInputs.size());
}

TEST(PFuzzerInternalsTest, EmittedBranchSetConsistent) {
  // Re-running all emitted inputs reproduces exactly the reported
  // valid-branch set (determinism of subjects + bookkeeping).
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 4;
  Opts.MaxExecutions = 8000;
  FuzzReport R = Tool.run(tinycSubject(), Opts);
  std::set<uint32_t> Rebuilt;
  for (const std::string &Input : R.ValidInputs) {
    RunResult RR = tinycSubject().execute(Input);
    ASSERT_EQ(RR.ExitCode, 0);
    for (uint32_t B : RR.coveredBranches())
      Rebuilt.insert(B);
  }
  EXPECT_EQ(Rebuilt, R.ValidBranches.toSet());
}

TEST(PFuzzerInternalsTest, EveryEmittedInputAddedCoverageAtEmission) {
  // Replaying the emitted inputs in order: each must contribute at least
  // one branch outcome unseen so far (the line-29 validity condition).
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 5;
  Opts.MaxExecutions = 8000;
  FuzzReport R = Tool.run(jsonSubject(), Opts);
  std::set<uint32_t> Seen;
  for (const std::string &Input : R.ValidInputs) {
    RunResult RR = jsonSubject().execute(Input);
    bool AddedNew = false;
    for (uint32_t B : RR.coveredBranches())
      if (Seen.insert(B).second)
        AddedNew = true;
    EXPECT_TRUE(AddedNew) << "redundant emitted input: " << Input;
  }
}

TEST(PFuzzerInternalsTest, WorksOnAllSubjects) {
  for (const Subject *S : allSubjects()) {
    PFuzzer Tool;
    FuzzerOptions Opts;
    Opts.Seed = 1;
    Opts.MaxExecutions = 1500;
    FuzzReport R = Tool.run(*S, Opts);
    EXPECT_GE(R.Executions, 1499u) << S->name();
    for (const std::string &Input : R.ValidInputs)
      EXPECT_TRUE(S->accepts(Input)) << S->name() << ": " << Input;
  }
}

TEST(PFuzzerInternalsTest, ResetOnValidStillEmitsValidInputs) {
  PFuzzerOptions Config;
  Config.ResetOnValid = true;
  PFuzzer Tool(Config);
  FuzzerOptions Opts;
  Opts.Seed = 1;
  Opts.MaxExecutions = 6000;
  FuzzReport R = Tool.run(arithSubject(), Opts);
  EXPECT_FALSE(R.ValidInputs.empty());
  for (const std::string &Input : R.ValidInputs)
    EXPECT_TRUE(arithSubject().accepts(Input));
}

TEST(PFuzzerInternalsTest, ResetOnValidKeepsInputsShorter) {
  // Without continuation, valid inputs cannot grow past the first
  // acceptance; the default mode produces longer ones.
  FuzzerOptions Opts;
  Opts.Seed = 3;
  Opts.MaxExecutions = 8000;
  PFuzzerOptions Reset;
  Reset.ResetOnValid = true;
  auto MaxLen = [](const FuzzReport &R) {
    size_t Len = 0;
    for (const std::string &I : R.ValidInputs)
      Len = std::max(Len, I.size());
    return Len;
  };
  PFuzzer Continue;
  PFuzzer Resetting(Reset);
  EXPECT_GE(MaxLen(Continue.run(arithSubject(), Opts)),
            MaxLen(Resetting.run(arithSubject(), Opts)));
}
