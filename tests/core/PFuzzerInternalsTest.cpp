//===- tests/core/PFuzzerInternalsTest.cpp - pFuzzer edge cases -----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(PFuzzerInternalsTest, MaxInputLenRespected) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 1;
  Opts.MaxExecutions = 5000;
  Opts.MaxInputLen = 6;
  FuzzReport R = Tool.run(arithSubject(), Opts);
  for (const std::string &Input : R.ValidInputs)
    EXPECT_LE(Input.size(), 7u); // candidate <= 6, extension adds <= 1
}

TEST(PFuzzerInternalsTest, OnValidInputSeesEveryValidExecution) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 2;
  Opts.MaxExecutions = 4000;
  uint64_t Callbacks = 0;
  Opts.OnValidInput = [&Callbacks](std::string_view) { ++Callbacks; };
  FuzzReport R = Tool.run(arithSubject(), Opts);
  // Every *reported* input was a valid execution, and re-runs of valid
  // prefixes make the callback count at least as large.
  EXPECT_GE(Callbacks, R.ValidInputs.size());
}

TEST(PFuzzerInternalsTest, ZeroBudgetProducesNothing) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 1;
  Opts.MaxExecutions = 0;
  FuzzReport R = Tool.run(jsonSubject(), Opts);
  EXPECT_EQ(R.Executions, 0u);
  EXPECT_TRUE(R.ValidInputs.empty());
}

TEST(PFuzzerInternalsTest, TinyBudgetStillTerminates) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 1;
  for (uint64_t Budget : {1ull, 2ull, 3ull, 7ull}) {
    Opts.MaxExecutions = Budget;
    FuzzReport R = Tool.run(mjsSubject(), Opts);
    EXPECT_LE(R.Executions, Budget + 1);
  }
}

TEST(PFuzzerInternalsTest, NoDuplicateEmittedInputs) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 3;
  Opts.MaxExecutions = 10000;
  FuzzReport R = Tool.run(jsonSubject(), Opts);
  std::set<std::string> Unique(R.ValidInputs.begin(), R.ValidInputs.end());
  EXPECT_EQ(Unique.size(), R.ValidInputs.size());
}

TEST(PFuzzerInternalsTest, EmittedBranchSetConsistent) {
  // Re-running all emitted inputs reproduces exactly the reported
  // valid-branch set (determinism of subjects + bookkeeping).
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 4;
  Opts.MaxExecutions = 8000;
  FuzzReport R = Tool.run(tinycSubject(), Opts);
  std::set<uint32_t> Rebuilt;
  for (const std::string &Input : R.ValidInputs) {
    RunResult RR = tinycSubject().execute(Input);
    ASSERT_EQ(RR.ExitCode, 0);
    for (uint32_t B : RR.coveredBranches())
      Rebuilt.insert(B);
  }
  EXPECT_EQ(Rebuilt, R.ValidBranches.toSet());
}

TEST(PFuzzerInternalsTest, EveryEmittedInputAddedCoverageAtEmission) {
  // Replaying the emitted inputs in order: each must contribute at least
  // one branch outcome unseen so far (the line-29 validity condition).
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 5;
  Opts.MaxExecutions = 8000;
  FuzzReport R = Tool.run(jsonSubject(), Opts);
  std::set<uint32_t> Seen;
  for (const std::string &Input : R.ValidInputs) {
    RunResult RR = jsonSubject().execute(Input);
    bool AddedNew = false;
    for (uint32_t B : RR.coveredBranches())
      if (Seen.insert(B).second)
        AddedNew = true;
    EXPECT_TRUE(AddedNew) << "redundant emitted input: " << Input;
  }
}

TEST(PFuzzerInternalsTest, WorksOnAllSubjects) {
  for (const Subject *S : allSubjects()) {
    PFuzzer Tool;
    FuzzerOptions Opts;
    Opts.Seed = 1;
    Opts.MaxExecutions = 1500;
    FuzzReport R = Tool.run(*S, Opts);
    EXPECT_GE(R.Executions, 1499u) << S->name();
    for (const std::string &Input : R.ValidInputs)
      EXPECT_TRUE(S->accepts(Input)) << S->name() << ": " << Input;
  }
}

TEST(PFuzzerInternalsTest, ResetOnValidStillEmitsValidInputs) {
  PFuzzerOptions Config;
  Config.ResetOnValid = true;
  PFuzzer Tool(Config);
  FuzzerOptions Opts;
  Opts.Seed = 1;
  Opts.MaxExecutions = 6000;
  FuzzReport R = Tool.run(arithSubject(), Opts);
  EXPECT_FALSE(R.ValidInputs.empty());
  for (const std::string &Input : R.ValidInputs)
    EXPECT_TRUE(arithSubject().accepts(Input));
}

TEST(PFuzzerInternalsTest, ResetOnValidKeepsInputsShorter) {
  // Without continuation, valid inputs cannot grow past the first
  // acceptance; the default mode produces longer ones.
  FuzzerOptions Opts;
  Opts.Seed = 3;
  Opts.MaxExecutions = 8000;
  PFuzzerOptions Reset;
  Reset.ResetOnValid = true;
  auto MaxLen = [](const FuzzReport &R) {
    size_t Len = 0;
    for (const std::string &I : R.ValidInputs)
      Len = std::max(Len, I.size());
    return Len;
  };
  PFuzzer Continue;
  PFuzzer Resetting(Reset);
  EXPECT_GE(MaxLen(Continue.run(arithSubject(), Opts)),
            MaxLen(Resetting.run(arithSubject(), Opts)));
}
