//===- tests/core/PFuzzerTelemetryTest.cpp - Campaign telemetry tests -----===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign-level telemetry contract: the consolidated
/// TelemetrySnapshot agrees field-for-field with the individual *StatsOut
/// sinks it subsumes (they are thin views of the same accounting, filled
/// at the same points), wiring a snapshot sink or a heartbeat emitter
/// never perturbs the FuzzReport, and the campaign runners aggregate
/// per-seed snapshots exactly like they aggregate the per-layer stats.
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "eval/Campaign.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

using namespace pfuzz;

namespace {

struct RunWithStats {
  FuzzReport Report;
  TelemetrySnapshot Telemetry;
  SpeculationStats Speculation;
  ResumeStats Resume;
  LocalityStats Locality;
  QueueStats Queue;
  ShardStats Shards;
};

struct RunConfig {
  uint32_t Speculation = 0;
  uint32_t Locality = 0;
  uint32_t Shards = 1;
  uint32_t ResumeCache = 0;
};

RunWithStats runInstrumented(const Subject &S, uint64_t Execs, uint64_t Seed,
                             const RunConfig &C,
                             HeartbeatEmitter *Heartbeat = nullptr,
                             bool WithTelemetry = true) {
  RunWithStats Out;
  PFuzzerOptions Options;
  Options.SpeculationThreads = C.Speculation;
  Options.LocalityBatch = C.Locality;
  Options.Shards = C.Shards;
  Options.ResumeCacheSize = C.ResumeCache;
  Options.StatsOut = &Out.Speculation;
  Options.ResumeStatsOut = &Out.Resume;
  Options.LocalityStatsOut = &Out.Locality;
  Options.QueueStatsOut = &Out.Queue;
  Options.ShardStatsOut = &Out.Shards;
  if (WithTelemetry)
    Options.TelemetryOut = &Out.Telemetry;
  Options.Heartbeat = Heartbeat;
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  Out.Report = Tool.run(S, Opts);
  return Out;
}

void expectIdenticalReports(const FuzzReport &A, const FuzzReport &B) {
  EXPECT_EQ(A.Executions, B.Executions);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
  EXPECT_EQ(A.ValidBranches, B.ValidBranches);
  EXPECT_EQ(A.CoverageTimeline, B.CoverageTimeline);
}

/// The snapshot's embedded per-layer stats must equal the values the
/// dedicated sinks saw — same sources, same fill points.
void expectSnapshotMatchesSinks(const RunWithStats &R) {
  const TelemetrySnapshot &T = R.Telemetry;
  EXPECT_EQ(T.Executions, R.Report.Executions);
  EXPECT_EQ(T.ValidInputs, R.Report.ValidInputs.size());
  EXPECT_EQ(T.FrontierSize, R.Report.ValidBranches.size());

  EXPECT_EQ(T.Speculation.Lookups, R.Speculation.Lookups);
  EXPECT_EQ(T.Speculation.Submitted, R.Speculation.Submitted);
  EXPECT_EQ(T.Speculation.Hits, R.Speculation.Hits);
  EXPECT_EQ(T.Speculation.Cancelled, R.Speculation.Cancelled);

  EXPECT_EQ(T.Resume.Probes, R.Resume.Probes);
  EXPECT_EQ(T.Resume.Hits, R.Resume.Hits);
  EXPECT_EQ(T.Resume.BytesSkipped, R.Resume.BytesSkipped);

  EXPECT_EQ(T.Locality.Batches, R.Locality.Batches);
  EXPECT_EQ(T.Locality.Batched, R.Locality.Batched);
  EXPECT_EQ(T.Locality.Consumed, R.Locality.Consumed);

  EXPECT_EQ(T.Queue.Pushes, R.Queue.Pushes);
  EXPECT_EQ(T.Queue.Rescores, R.Queue.Rescores);
  EXPECT_EQ(T.Queue.Trims, R.Queue.Trims);
  EXPECT_EQ(T.Queue.PeakBytes, R.Queue.PeakBytes);
  EXPECT_EQ(T.Queue.PeakCandidates, R.Queue.PeakCandidates);

  EXPECT_EQ(T.Sharding.SyncPoints, R.Shards.SyncPoints);
  EXPECT_EQ(T.Sharding.DeltasPublished, R.Shards.DeltasPublished);
  EXPECT_EQ(T.Sharding.DeltasMerged, R.Shards.DeltasMerged);
  EXPECT_EQ(T.Sharding.MaxFrontierLag, R.Shards.MaxFrontierLag);
}

} // namespace

TEST(PFuzzerTelemetryTest, SnapshotMatchesStatsSinksAcrossConfigSweep) {
  // Five subjects crossed with the perf layers the snapshot consolidates:
  // plain, speculating, locality-batched, resuming, and sharded.
  const RunConfig Configs[] = {
      {},                          // plain sequential engine
      {.Speculation = 2},          // speculative prefetch
      {.Locality = 16},            // trie-batched locality
      {.ResumeCache = 32},         // prefix-resumption ladder
      {.Shards = 2},               // sharded engine
  };
  const Subject *Subjects[] = {&arithSubject(), &dyckSubject(),
                               &iniSubject(), &csvSubject(), &jsonSubject()};
  for (const Subject *S : Subjects) {
    for (const RunConfig &C : Configs) {
      SCOPED_TRACE(std::string(S->name()) + " spec=" +
                   std::to_string(C.Speculation) + " loc=" +
                   std::to_string(C.Locality) + " shards=" +
                   std::to_string(C.Shards) + " resume=" +
                   std::to_string(C.ResumeCache));
      RunWithStats R = runInstrumented(*S, 2000, 1, C);
      expectSnapshotMatchesSinks(R);
    }
  }
}

TEST(PFuzzerTelemetryTest, SnapshotSinkDoesNotPerturbReport) {
  for (uint32_t Shards : {1u, 3u}) {
    SCOPED_TRACE("shards=" + std::to_string(Shards));
    RunConfig C;
    C.Shards = Shards;
    RunWithStats Without =
        runInstrumented(jsonSubject(), 3000, 5, C, nullptr,
                        /*WithTelemetry=*/false);
    RunWithStats With = runInstrumented(jsonSubject(), 3000, 5, C);
    expectIdenticalReports(Without.Report, With.Report);
  }
}

TEST(PFuzzerTelemetryTest, HeartbeatDoesNotPerturbReport) {
  std::string Path = ::testing::TempDir() + "pfuzz_hb_report_" +
                     std::to_string(::getpid()) + ".ndjson";
  for (uint32_t Shards : {1u, 2u}) {
    SCOPED_TRACE("shards=" + std::to_string(Shards));
    RunConfig C;
    C.Shards = Shards;
    RunWithStats Without = runInstrumented(tinycSubject(), 2500, 3, C);
    HeartbeatEmitter HB;
    ASSERT_TRUE(HB.open(Path, 250));
    RunWithStats With = runInstrumented(tinycSubject(), 2500, 3, C, &HB);
    EXPECT_GT(HB.beats(), 0u);
    EXPECT_TRUE(HB.close());
    expectIdenticalReports(Without.Report, With.Report);
    expectSnapshotMatchesSinks(With);
  }
  std::remove(Path.c_str());
}

TEST(PFuzzerTelemetryTest, ShardedSnapshotAggregatesShardLoops) {
  // The sharded engine folds per-shard snapshots: executions sum to the
  // campaign total while the frontier reports the merged union (filled
  // after the shard reports merge), and the sharding subtree carries the
  // same totals as the dedicated ShardStats sink.
  RunConfig C;
  C.Shards = 4;
  RunWithStats R = runInstrumented(dyckSubject(), 4000, 2, C);
  EXPECT_EQ(R.Telemetry.Executions, R.Report.Executions);
  EXPECT_EQ(R.Telemetry.FrontierSize, R.Report.ValidBranches.size());
  EXPECT_GT(R.Telemetry.Sharding.SyncPoints, 0u);
  expectSnapshotMatchesSinks(R);
}

TEST(PFuzzerTelemetryTest, CampaignRunnerAggregatesSeedSnapshots) {
  // CampaignResult::Telemetry accumulates per-seed snapshots in seed
  // order: executions sum over every run, and the total matches the
  // runner's own TotalExecutions accounting.
  ToolOptions Tools;
  CampaignResult Cell = runCampaign(ToolKind::PFuzzer, arithSubject(), 1500,
                                    1, /*Runs=*/3, /*Jobs=*/1, Tools);
  EXPECT_EQ(Cell.Telemetry.Executions, Cell.TotalExecutions);
  EXPECT_EQ(Cell.Telemetry.Resume.Probes, Cell.Resume.Probes);
  EXPECT_EQ(Cell.Telemetry.Queue.Pushes, Cell.Queue.Pushes);
  EXPECT_GE(Cell.Telemetry.FrontierSize,
            Cell.Report.ValidBranches.size());
}

TEST(PFuzzerTelemetryTest, CampaignTelemetryIdenticalAcrossJobs) {
  // The Jobs contract extends to the consolidated snapshot: per-seed
  // snapshots reduce in seed order, so parallel fan-out must aggregate
  // to the same totals as sequential (Sched is pool-global and excluded).
  ToolOptions Tools;
  CampaignResult Seq = runCampaign(ToolKind::PFuzzer, dyckSubject(), 2000, 7,
                                   /*Runs=*/3, /*Jobs=*/1, Tools);
  CampaignResult Par = runCampaign(ToolKind::PFuzzer, dyckSubject(), 2000, 7,
                                   /*Runs=*/3, /*Jobs=*/3, Tools);
  expectIdenticalReports(Seq.Report, Par.Report);
  EXPECT_EQ(Seq.Telemetry.Executions, Par.Telemetry.Executions);
  EXPECT_EQ(Seq.Telemetry.ValidInputs, Par.Telemetry.ValidInputs);
  EXPECT_EQ(Seq.Telemetry.FrontierSize, Par.Telemetry.FrontierSize);
  EXPECT_EQ(Seq.Telemetry.Queue.Pushes, Par.Telemetry.Queue.Pushes);
  EXPECT_EQ(Seq.Telemetry.Resume.Probes, Par.Telemetry.Resume.Probes);
}
