//===- tests/core/PFuzzerShardTest.cpp - Sharded campaign engine tests ----===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract of the sharded campaign engine (PFuzzerOptions::Shards):
/// --shards=1 takes the plain sequential code path, so its report is
/// byte-identical to the unsharded engine under every composition of the
/// other performance layers (speculation, locality batching, run cache,
/// resume ladder). For N > 1 the search is different by design but
/// deterministic: a fixed (seed, N, interval) reproduces the merged
/// report bit for bit, the budget is spent exactly, the valid-input
/// stream and coverage union are consistent, and the sync ledger
/// balances (published == merged, accepted + rejected == offered).
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "core/ShardSync.h"
#include "subjects/Subject.h"

#include <gtest/gtest.h>

#include <mutex>
#include <set>

using namespace pfuzz;

namespace {

struct ShardRunConfig {
  uint32_t Shards = 1;
  uint32_t SyncInterval = 0; // 0 = engine default
  int Speculation = 0;
  uint32_t Locality = 0;
  uint32_t RunCache = 64;
  uint32_t ResumeCache = 64;
};

FuzzReport fuzzWith(const Subject &S, uint64_t Execs, uint64_t Seed,
                    const ShardRunConfig &Cfg,
                    ShardStats *Stats = nullptr,
                    std::vector<std::string> *ValidLog = nullptr) {
  PFuzzerOptions Options;
  Options.Shards = Cfg.Shards;
  if (Cfg.SyncInterval != 0)
    Options.ShardSyncInterval = Cfg.SyncInterval;
  Options.SpeculationThreads = static_cast<unsigned>(
      Cfg.Speculation < 0 ? 0 : Cfg.Speculation);
  Options.LocalityBatch = Cfg.Locality;
  Options.RunCacheSize = Cfg.RunCache;
  Options.ResumeCacheSize = Cfg.ResumeCache;
  Options.ShardStatsOut = Stats;
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  std::mutex LogMutex;
  if (ValidLog)
    Opts.OnValidInput = [ValidLog, &LogMutex](std::string_view Input) {
      std::lock_guard<std::mutex> Lock(LogMutex);
      ValidLog->emplace_back(Input);
    };
  return Tool.run(S, Opts);
}

void expectIdenticalReports(const FuzzReport &A, const FuzzReport &B) {
  EXPECT_EQ(A.Executions, B.Executions);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
  EXPECT_EQ(A.ValidBranches, B.ValidBranches);
  EXPECT_EQ(A.CoverageTimeline, B.CoverageTimeline);
}

} // namespace

TEST(PFuzzerShardTest, SingleShardIdenticalToUnshardedAcrossSubjects) {
  // The identity sweep of the acceptance contract: --shards=1 composed
  // with every other perf layer must reproduce the default engine on
  // every evaluation subject.
  const ShardRunConfig Compositions[] = {
      {1, 0, 0, 0, 64, 64},    // plain
      {1, 0, 2, 0, 64, 64},    // + speculation
      {1, 0, 0, 64, 64, 64},   // + locality batching
      {1, 128, 2, 64, 0, 0},   // everything on, caches off, odd interval
  };
  for (const Subject *S : evaluationSubjects()) {
    uint64_t Execs = 1500;
    ShardRunConfig Unsharded; // Shards = 1 via the unsharded code path
    FuzzReport Baseline = fuzzWith(*S, Execs, 7, Unsharded);
    for (const ShardRunConfig &Cfg : Compositions) {
      SCOPED_TRACE(std::string(S->name()) + " spec " +
                   std::to_string(Cfg.Speculation) + " locality " +
                   std::to_string(Cfg.Locality) + " run-cache " +
                   std::to_string(Cfg.RunCache));
      // Same seed, same budget: every composition row must agree with
      // the plain baseline (the perf layers are behavior-invariant, and
      // shards=1 must not change that).
      expectIdenticalReports(Baseline, fuzzWith(*S, Execs, 7, Cfg));
    }
  }
}

TEST(PFuzzerShardTest, SingleShardLeavesStatsZeroed) {
  ShardStats Stats;
  Stats.DeltasPublished = 99; // stale sink content must be overwritten
  fuzzWith(jsonSubject(), 500, 1, ShardRunConfig(), &Stats);
  EXPECT_EQ(Stats.DeltasPublished, 0u);
  EXPECT_EQ(Stats.SyncPoints, 0u);
  EXPECT_EQ(Stats.MigrationsOffered, 0u);
}

TEST(PFuzzerShardTest, ShardedRunIsReproducible) {
  ShardRunConfig Cfg;
  Cfg.Shards = 3;
  Cfg.SyncInterval = 200;
  for (const Subject *S : {&jsonSubject(), &mjsSubject()}) {
    SCOPED_TRACE(std::string(S->name()));
    FuzzReport First = fuzzWith(*S, 3000, 11, Cfg);
    FuzzReport Second = fuzzWith(*S, 3000, 11, Cfg);
    expectIdenticalReports(First, Second);
  }
}

TEST(PFuzzerShardTest, ShardedBudgetIsSpentExactly) {
  // Budgets that do not divide evenly by the shard count must still sum
  // to exactly the requested total.
  ShardRunConfig Cfg;
  Cfg.Shards = 3;
  for (uint64_t Execs : {999u, 1000u, 1001u}) {
    SCOPED_TRACE(std::to_string(Execs));
    FuzzReport R = fuzzWith(jsonSubject(), Execs, 2, Cfg);
    EXPECT_EQ(R.Executions, Execs);
    // The merged timeline ends at the full budget with the union
    // coverage.
    ASSERT_FALSE(R.CoverageTimeline.empty());
    EXPECT_EQ(R.CoverageTimeline.back().first, Execs);
    EXPECT_EQ(R.CoverageTimeline.back().second, R.ValidBranches.size());
  }
}

TEST(PFuzzerShardTest, ShardedLedgerBalances) {
  ShardStats Stats;
  ShardRunConfig Cfg;
  Cfg.Shards = 4;
  Cfg.SyncInterval = 100;
  FuzzReport R = fuzzWith(jsonSubject(), 4000, 3, Cfg, &Stats);
  EXPECT_EQ(R.Executions, 4000u);
  // Every published packet consumed exactly once; every offered
  // candidate either accepted or rejected.
  EXPECT_EQ(Stats.DeltasPublished, Stats.DeltasMerged);
  EXPECT_EQ(Stats.MigrationsAccepted + Stats.MigrationsRejected,
            Stats.MigrationsOffered);
  // 4 shards x 1000 execs at interval 100: ~10 boundaries each plus the
  // Final packet (one fewer when a shard's budget ends exactly on a
  // boundary, whose packet then rides along as the Final).
  EXPECT_GE(Stats.SyncPoints, 4u * 10);
  EXPECT_GT(Stats.DeltasPublished, 0u);
}

TEST(PFuzzerShardTest, ShardedValidInputsAreAccepted) {
  // Every input in the merged report must actually be accepted by the
  // subject — migration and frontier merging must never smuggle a
  // rejected input into the output stream.
  ShardRunConfig Cfg;
  Cfg.Shards = 2;
  std::vector<std::string> ValidLog;
  FuzzReport R = fuzzWith(jsonSubject(), 3000, 5, Cfg, nullptr, &ValidLog);
  for (const std::string &Input : R.ValidInputs)
    EXPECT_EQ(jsonSubject().execute(Input).ExitCode, 0) << Input;
  // The callback fires on every accepted execution (novel or not), so
  // its stream is a superset of the merged report's novelty-filtered
  // inputs.
  std::set<std::string> Seen(ValidLog.begin(), ValidLog.end());
  EXPECT_GE(ValidLog.size(), R.ValidInputs.size());
  for (const std::string &Input : R.ValidInputs)
    EXPECT_TRUE(Seen.count(Input)) << Input;
}
