//===- tests/core/PFuzzerSpeculationTest.cpp - Prefetcher invariants ------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract of the speculative candidate prefetcher
/// (PFuzzerOptions::SpeculationThreads): running top-ranked queue
/// candidates on background workers is purely a wall-clock optimization.
/// Every speculation decision is made on the sequential thread and results
/// are consumed in pop order, so the FuzzReport — executions, emitted
/// inputs, coverage, timeline — and the OnValidInput stream must be
/// byte-for-byte identical at any worker count, any depth, with or
/// without the run cache, and under the campaign Jobs layer.
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "eval/Campaign.h"
#include "support/Scheduler.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

FuzzReport fuzzSpeculating(const Subject &S, uint64_t Execs, uint64_t Seed,
                           uint32_t Workers, uint32_t Depth = 0,
                           uint32_t CacheSize = 64,
                           SpeculationStats *Stats = nullptr,
                           std::vector<std::string> *ValidLog = nullptr) {
  PFuzzerOptions Options;
  Options.RunCacheSize = CacheSize;
  Options.SpeculationThreads = Workers;
  Options.SpeculationDepth = Depth;
  Options.StatsOut = Stats;
  PFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  if (ValidLog)
    Opts.OnValidInput = [ValidLog](std::string_view Input) {
      ValidLog->emplace_back(Input);
    };
  return Tool.run(S, Opts);
}

void expectIdenticalReports(const FuzzReport &A, const FuzzReport &B) {
  EXPECT_EQ(A.Executions, B.Executions);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
  EXPECT_EQ(A.ValidBranches, B.ValidBranches);
  EXPECT_EQ(A.CoverageTimeline, B.CoverageTimeline);
}

} // namespace

TEST(PFuzzerSpeculationTest, ReportIdenticalAcrossWorkerCounts) {
  for (const Subject *S : {&jsonSubject(), &mjsSubject()}) {
    uint64_t Execs = S == &jsonSubject() ? 4000 : 2500;
    FuzzReport Sequential = fuzzSpeculating(*S, Execs, 1, /*Workers=*/0);
    for (uint32_t Workers : {1u, 4u}) {
      SCOPED_TRACE(std::string(S->name()) + " workers " +
                   std::to_string(Workers));
      FuzzReport Speculated = fuzzSpeculating(*S, Execs, 1, Workers);
      expectIdenticalReports(Sequential, Speculated);
    }
  }
}

TEST(PFuzzerSpeculationTest, IdenticalWithAndWithoutRunCache) {
  // Speculation interacts with the run cache twice over: hits skip the
  // prefetch table, and evicted mispredictions are recycled into the
  // cache. Neither path may leak into the report.
  FuzzReport Baseline = fuzzSpeculating(jsonSubject(), 3000, 5, 0, 0,
                                        /*CacheSize=*/0);
  for (uint32_t CacheSize : {0u, 64u}) {
    SCOPED_TRACE("cache " + std::to_string(CacheSize));
    FuzzReport Speculated =
        fuzzSpeculating(jsonSubject(), 3000, 5, /*Workers=*/2, 0, CacheSize);
    expectIdenticalReports(Baseline, Speculated);
  }
}

TEST(PFuzzerSpeculationTest, DepthExtremesBehaviorInvariant) {
  // Depth 1 maximizes churn (every refill replaces the in-flight set);
  // depth 16 keeps far more speculative runs alive than ever get popped.
  FuzzReport Sequential = fuzzSpeculating(mjsSubject(), 2000, 2, 0);
  for (uint32_t Depth : {1u, 16u}) {
    SCOPED_TRACE("depth " + std::to_string(Depth));
    FuzzReport Speculated =
        fuzzSpeculating(mjsSubject(), 2000, 2, /*Workers=*/2, Depth);
    expectIdenticalReports(Sequential, Speculated);
  }
}

TEST(PFuzzerSpeculationTest, OnValidInputStreamUnchanged) {
  // Token accounting consumes the OnValidInput stream; a consumed
  // speculative run must fire the callback exactly like a live run.
  std::vector<std::string> Sequential, Speculated;
  fuzzSpeculating(jsonSubject(), 3000, 9, 0, 0, 64, nullptr, &Sequential);
  fuzzSpeculating(jsonSubject(), 3000, 9, 4, 0, 64, nullptr, &Speculated);
  EXPECT_EQ(Sequential, Speculated);
}

TEST(PFuzzerSpeculationTest, StatsReportUsefulWork) {
  SpeculationStats Stats;
  fuzzSpeculating(jsonSubject(), 3000, 1, /*Workers=*/2, 0, 64, &Stats);
  // The prefetcher must actually engage: work submitted, hits consumed,
  // and the accounting must balance (every submission is consumed,
  // cancelled, recycled or discarded by shutdown).
  EXPECT_GT(Stats.Submitted, 0u);
  EXPECT_GT(Stats.Hits, 0u);
  EXPECT_LE(Stats.Hits, Stats.Lookups);
  EXPECT_EQ(Stats.Submitted,
            Stats.Hits + Stats.Cancelled + Stats.Recycled + Stats.Discarded);
}

TEST(PFuzzerSpeculationTest, StatsClearedWhenSpeculationOff) {
  SpeculationStats Stats;
  Stats.Submitted = 123;
  fuzzSpeculating(jsonSubject(), 500, 1, /*Workers=*/0, 0, 64, &Stats);
  EXPECT_EQ(Stats.Submitted, 0u);
  EXPECT_EQ(Stats.Lookups, 0u);
}

TEST(PFuzzerSpeculationTest, CampaignSpeculatingJobs4MatchesSequential) {
  // Both parallelism layers at once: 4 concurrent seed runs, each with a
  // speculating fuzzer, against the plain sequential configuration.
  ToolOptions Plain;
  Plain.PFuzzerSpeculation = 0;
  ToolOptions Speculating;
  Speculating.PFuzzerSpeculation = 2;
  CampaignResult Seq = runCampaign(ToolKind::PFuzzer, jsonSubject(), 2000, 3,
                                   /*Runs=*/4, /*Jobs=*/1, Plain);
  CampaignResult Par = runCampaign(ToolKind::PFuzzer, jsonSubject(), 2000, 3,
                                   /*Runs=*/4, /*Jobs=*/4, Speculating);
  EXPECT_EQ(Seq.Report.Executions, Par.Report.Executions);
  EXPECT_EQ(Seq.Report.ValidInputs, Par.Report.ValidInputs);
  EXPECT_EQ(Seq.Report.ValidBranches, Par.Report.ValidBranches);
  EXPECT_EQ(Seq.Report.CoverageTimeline, Par.Report.CoverageTimeline);
  EXPECT_EQ(Seq.TokensFound, Par.TokensFound);
}

TEST(PFuzzerSpeculationTest, ArbitrationSharesCoresAcrossLayers) {
  size_t HW = Scheduler::hardwareThreads();
  // Off stays off, no matter the fan-out.
  EXPECT_EQ(arbitrateSpeculation(0, 1).Threads, 0u);
  EXPECT_EQ(arbitrateSpeculation(0, 8).Threads, 0u);
  EXPECT_FALSE(arbitrateSpeculation(0, 8).Capped);
  // A lone campaign gets its explicit request verbatim, uncapped.
  EXPECT_EQ(arbitrateSpeculation(4, 1).Threads, 4u);
  EXPECT_FALSE(arbitrateSpeculation(4, 1).Capped);
  // Auto on a saturated machine yields nothing (and is never "capped" —
  // nothing explicit was reduced).
  EXPECT_EQ(arbitrateSpeculation(-1, HW + 1).Threads, 0u);
  EXPECT_FALSE(arbitrateSpeculation(-1, HW + 1).Capped);
  // Explicit requests under fan-out are capped at the fair share but
  // never silently disabled.
  SpeculationHint Shared = arbitrateSpeculation(4, 4);
  EXPECT_GE(Shared.Threads, 1u);
  EXPECT_LE(Shared.Threads, std::max<size_t>(1, HW / 4));
}

TEST(PFuzzerSpeculationTest, ArbitrationOnExplicitHardwareCounts) {
  // A 1-core box, four concurrent campaigns: auto yields nothing, an
  // explicit request softens to the floor of 1 and reports the cap.
  EXPECT_EQ(arbitrateSpeculation(-1, 4, /*Hardware=*/1).Threads, 0u);
  SpeculationHint OneCore = arbitrateSpeculation(4, 4, /*Hardware=*/1);
  EXPECT_EQ(OneCore.Threads, 1u);
  EXPECT_TRUE(OneCore.Capped);
  // Oversubscribed: 8 campaigns on 4 cores. Auto has no leftover; an
  // explicit 2 collapses to the fair-share floor.
  EXPECT_EQ(arbitrateSpeculation(-1, 8, /*Hardware=*/4).Threads, 0u);
  SpeculationHint Over = arbitrateSpeculation(2, 8, /*Hardware=*/4);
  EXPECT_EQ(Over.Threads, 1u);
  EXPECT_TRUE(Over.Capped);
  // Plenty of cores: 16 cores over 4 campaigns leaves room, the request
  // fits inside the fair share and stays uncapped.
  EXPECT_EQ(arbitrateSpeculation(-1, 4, /*Hardware=*/16).Threads, 3u);
  SpeculationHint Roomy = arbitrateSpeculation(3, 4, /*Hardware=*/16);
  EXPECT_EQ(Roomy.Threads, 3u);
  EXPECT_FALSE(Roomy.Capped);
  // The cap flag fires exactly when the returned hint is below the ask.
  SpeculationHint Trimmed = arbitrateSpeculation(8, 4, /*Hardware=*/16);
  EXPECT_EQ(Trimmed.Threads, 4u);
  EXPECT_TRUE(Trimmed.Capped);
}
