//===- tests/taint/TaintTest.cpp - TaintSet unit tests --------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "taint/Taint.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(TaintSetTest, EmptyByDefault) {
  TaintSet T;
  EXPECT_TRUE(T.empty());
  EXPECT_EQ(T.size(), 0u);
  EXPECT_FALSE(T.contains(0));
}

TEST(TaintSetTest, Singleton) {
  TaintSet T = TaintSet::forIndex(5);
  EXPECT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(5));
  EXPECT_FALSE(T.contains(4));
  EXPECT_EQ(T.minIndex(), 5u);
  EXPECT_EQ(T.maxIndex(), 5u);
}

TEST(TaintSetTest, RangeConstruction) {
  TaintSet T = TaintSet::forRange(2, 6);
  EXPECT_EQ(T.size(), 4u);
  for (uint32_t I = 2; I < 6; ++I)
    EXPECT_TRUE(T.contains(I));
  EXPECT_FALSE(T.contains(6));
  EXPECT_EQ(T.minIndex(), 2u);
  EXPECT_EQ(T.maxIndex(), 5u);
}

TEST(TaintSetTest, EmptyRange) {
  TaintSet T = TaintSet::forRange(3, 3);
  EXPECT_TRUE(T.empty());
}

TEST(TaintSetTest, MergeDisjoint) {
  TaintSet A = TaintSet::forIndex(1);
  A.mergeWith(TaintSet::forIndex(9));
  EXPECT_EQ(A.size(), 2u);
  EXPECT_EQ(A.minIndex(), 1u);
  EXPECT_EQ(A.maxIndex(), 9u);
}

TEST(TaintSetTest, MergeDeduplicates) {
  TaintSet A = TaintSet::forRange(0, 4);
  A.mergeWith(TaintSet::forRange(2, 6));
  EXPECT_EQ(A.size(), 6u);
  EXPECT_EQ(A.maxIndex(), 5u);
}

TEST(TaintSetTest, MergeWithEmptyIsIdentity) {
  TaintSet A = TaintSet::forIndex(3);
  TaintSet Before = A;
  A.mergeWith(TaintSet());
  EXPECT_TRUE(A == Before);
  TaintSet Empty;
  Empty.mergeWith(A);
  EXPECT_TRUE(Empty == A);
}

TEST(TaintSetTest, MergedIsCommutative) {
  TaintSet A = TaintSet::forRange(0, 3);
  TaintSet B = TaintSet::forRange(5, 8);
  EXPECT_TRUE(TaintSet::merged(A, B) == TaintSet::merged(B, A));
}

TEST(TaintSetTest, MergedIsAssociative) {
  TaintSet A = TaintSet::forIndex(1);
  TaintSet B = TaintSet::forIndex(2);
  TaintSet C = TaintSet::forIndex(3);
  EXPECT_TRUE(TaintSet::merged(TaintSet::merged(A, B), C) ==
              TaintSet::merged(A, TaintSet::merged(B, C)));
}

TEST(TaintSetTest, IndicesStaySorted) {
  TaintSet A = TaintSet::forIndex(9);
  A.mergeWith(TaintSet::forIndex(1));
  A.mergeWith(TaintSet::forIndex(5));
  ASSERT_EQ(A.indices().size(), 3u);
  EXPECT_EQ(A.indices()[0], 1u);
  EXPECT_EQ(A.indices()[1], 5u);
  EXPECT_EQ(A.indices()[2], 9u);
}

// Representation transitions. The three canonical forms (Interval, Pair,
// Spill) must switch exactly at the documented boundaries, and any merge
// whose result is contiguous must collapse back to Interval — operator==
// relies on that canonicality.

TEST(TaintSetRepTest, SingletonAndRangeAreIntervals) {
  EXPECT_TRUE(TaintSet().isInterval());
  EXPECT_TRUE(TaintSet::forIndex(7).isInterval());
  EXPECT_TRUE(TaintSet::forRange(2, 9).isInterval());
}

TEST(TaintSetRepTest, AdjacentSingletonsStayInterval) {
  TaintSet A = TaintSet::forIndex(4);
  A.mergeWith(TaintSet::forIndex(5));
  EXPECT_TRUE(A.isInterval());
  EXPECT_EQ(A.size(), 2u);
}

TEST(TaintSetRepTest, DisjointSingletonsBecomePair) {
  TaintSet A = TaintSet::forIndex(9);
  A.mergeWith(TaintSet::forIndex(2));
  EXPECT_TRUE(A.isPair());
  EXPECT_EQ(A.size(), 2u);
  EXPECT_EQ(A.minIndex(), 2u);
  EXPECT_EQ(A.maxIndex(), 9u);
}

TEST(TaintSetRepTest, PairAbsorbsMemberSingleton) {
  TaintSet A = TaintSet::forIndex(1);
  A.mergeWith(TaintSet::forIndex(5));
  ASSERT_TRUE(A.isPair());
  A.mergeWith(TaintSet::forIndex(1));
  EXPECT_TRUE(A.isPair());
  A.mergeWith(TaintSet::forIndex(5));
  EXPECT_TRUE(A.isPair());
  EXPECT_EQ(A.size(), 2u);
}

TEST(TaintSetRepTest, PairPlusNewIndexSpills) {
  TaintSet A = TaintSet::forIndex(0);
  A.mergeWith(TaintSet::forIndex(4));
  ASSERT_TRUE(A.isPair());
  A.mergeWith(TaintSet::forIndex(8));
  EXPECT_TRUE(A.isSpilled());
  EXPECT_EQ(A.size(), 3u);
  EXPECT_EQ(A.minIndex(), 0u);
  EXPECT_EQ(A.maxIndex(), 8u);
}

TEST(TaintSetRepTest, PairFillingGapCollapsesToInterval) {
  TaintSet A = TaintSet::forIndex(3);
  A.mergeWith(TaintSet::forIndex(5));
  ASSERT_TRUE(A.isPair());
  A.mergeWith(TaintSet::forIndex(4));
  EXPECT_TRUE(A.isInterval());
  EXPECT_EQ(A.size(), 3u);
}

TEST(TaintSetRepTest, SpillFillingGapsCollapsesToInterval) {
  TaintSet A = TaintSet::forIndex(0);
  A.mergeWith(TaintSet::forIndex(2));
  A.mergeWith(TaintSet::forIndex(4));
  ASSERT_TRUE(A.isSpilled());
  A.mergeWith(TaintSet::forIndex(1));
  ASSERT_TRUE(A.isSpilled());
  A.mergeWith(TaintSet::forIndex(3));
  // {0,1,2,3,4} is contiguous; canonical form is the interval [0, 5).
  EXPECT_TRUE(A.isInterval());
  EXPECT_TRUE(A == TaintSet::forRange(0, 5));
}

TEST(TaintSetRepTest, CanonicalFormsCompareEqual) {
  // Same set reached through different merge orders must compare equal.
  TaintSet A = TaintSet::forIndex(6);
  A.mergeWith(TaintSet::forIndex(2));
  A.mergeWith(TaintSet::forRange(3, 6));
  TaintSet B = TaintSet::forRange(2, 7);
  EXPECT_TRUE(A == B);
}

TEST(TaintSetRepTest, OverlappingRangeMergesStayInterval) {
  TaintSet A = TaintSet::forRange(0, 10);
  A.mergeWith(TaintSet::forRange(5, 15));
  EXPECT_TRUE(A.isInterval());
  A.mergeWith(TaintSet::forRange(15, 20)); // touching
  EXPECT_TRUE(A.isInterval());
  EXPECT_EQ(A.size(), 20u);
}

TEST(TaintSetRepTest, SpillAbsorbsContainedInterval) {
  TaintSet A = TaintSet::forIndex(0);
  A.mergeWith(TaintSet::forIndex(10));
  A.mergeWith(TaintSet::forRange(4, 7));
  ASSERT_TRUE(A.isSpilled());
  TaintSet Before = A;
  A.mergeWith(TaintSet::forRange(4, 7)); // fully contained: no change
  EXPECT_TRUE(A == Before);
}

/// Property sweep: merge of arbitrary ranges has min/max of the union.
class TaintMergeProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(TaintMergeProperty, MinMaxOfUnion) {
  auto [A, B] = GetParam();
  TaintSet X = TaintSet::forRange(A, A + 3);
  TaintSet Y = TaintSet::forRange(B, B + 2);
  TaintSet M = TaintSet::merged(X, Y);
  EXPECT_EQ(M.minIndex(), std::min(A, B));
  EXPECT_EQ(M.maxIndex(), std::max(A + 2, B + 1));
  EXPECT_EQ(M.size(), TaintSet::merged(Y, X).size());
}

INSTANTIATE_TEST_SUITE_P(Ranges, TaintMergeProperty,
                         ::testing::Combine(::testing::Values(0u, 2u, 7u,
                                                              100u),
                                            ::testing::Values(0u, 3u, 50u)));
