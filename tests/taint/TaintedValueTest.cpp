//===- tests/taint/TaintedValueTest.cpp - TChar/TString tests -------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "taint/TaintedValue.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(TCharTest, DefaultIsEof) {
  TChar C;
  EXPECT_TRUE(C.isEof());
  EXPECT_TRUE(C.taint().empty());
}

TEST(TCharTest, ConstantHasNoTaint) {
  TChar C = TChar::constant('x');
  EXPECT_FALSE(C.isEof());
  EXPECT_EQ(C.ch(), 'x');
  EXPECT_TRUE(C.taint().empty());
}

TEST(TCharTest, TaintedCharKeepsIndex) {
  TChar C('a', TaintSet::forIndex(7));
  EXPECT_EQ(C.value(), 'a');
  EXPECT_TRUE(C.taint().contains(7));
}

TEST(TCharTest, DropTaintModelsImplicitFlow) {
  TChar C('a', TaintSet::forIndex(7));
  TChar D = C.dropTaint();
  EXPECT_EQ(D.value(), 'a');
  EXPECT_TRUE(D.taint().empty());
  // The original is unchanged.
  EXPECT_FALSE(C.taint().empty());
}

TEST(TCharTest, DeriveKeepsTaint) {
  TChar C('a', TaintSet::forIndex(3));
  TChar Upper = C.derive('A');
  EXPECT_EQ(Upper.ch(), 'A');
  EXPECT_TRUE(Upper.taint().contains(3));
}

TEST(TStringTest, AccumulatesBytesAndTaints) {
  TString S;
  S.push_back(TChar('w', TaintSet::forIndex(0)));
  S.push_back(TChar('h', TaintSet::forIndex(1)));
  S.push_back(TChar('i', TaintSet::forIndex(2)));
  EXPECT_EQ(S.str(), "whi");
  EXPECT_EQ(S.size(), 3u);
  EXPECT_EQ(S.taint().size(), 3u);
  EXPECT_EQ(S.taint().minIndex(), 0u);
  EXPECT_EQ(S.taint().maxIndex(), 2u);
}

TEST(TStringTest, LiteralAppendAddsNoTaint) {
  TString S;
  S.appendLiteral('x');
  S.appendLiteral('y');
  EXPECT_EQ(S.str(), "xy");
  EXPECT_TRUE(S.taint().empty());
}

TEST(TStringTest, ClearResetsEverything) {
  TString S;
  S.push_back(TChar('a', TaintSet::forIndex(4)));
  S.clear();
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.taint().empty());
}

TEST(TStringTest, ComparesAgainstStringView) {
  TString S;
  S.push_back(TChar('o', TaintSet::forIndex(0)));
  S.push_back(TChar('k', TaintSet::forIndex(1)));
  EXPECT_TRUE(S == "ok");
  EXPECT_FALSE(S == "no");
}

TEST(TStringTest, MixedLiteralAndTainted) {
  TString S;
  S.appendLiteral('<');
  S.push_back(TChar('x', TaintSet::forIndex(9)));
  S.appendLiteral('>');
  EXPECT_EQ(S.str(), "<x>");
  EXPECT_EQ(S.taint().size(), 1u);
  EXPECT_TRUE(S.taint().contains(9));
}
