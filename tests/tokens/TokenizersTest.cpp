//===- tests/tokens/TokenizersTest.cpp - Tokenizer tests ------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tokens/Tokenizers.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace pfuzz;

static bool hasToken(const std::vector<std::string> &Tokens,
                     std::string_view Name) {
  return std::find(Tokens.begin(), Tokens.end(), Name) != Tokens.end();
}

TEST(TokenizersTest, JsonKeywordsAndPunctuation) {
  auto T = extractTokens("json", "{\"a\": [true, false, null, -1.5]}");
  for (const char *Expect :
       {"{", "}", "[", "]", ":", ",", "-", "string", "number", "true",
        "false", "null"})
    EXPECT_TRUE(hasToken(T, Expect)) << Expect;
}

TEST(TokenizersTest, JsonStringContentsNotTokens) {
  // "true" inside a string literal is string content, not a keyword.
  auto T = extractTokens("json", "\"true\"");
  EXPECT_TRUE(hasToken(T, "string"));
  EXPECT_FALSE(hasToken(T, "true"));
}

TEST(TokenizersTest, TinyCKeywordsVsIdentifiers) {
  auto T = extractTokens("tinyc", "if(a<1)b=2;else while(0);");
  for (const char *Expect : {"if", "else", "while", "(", ")", "<", "=",
                             ";", "identifier", "number"})
    EXPECT_TRUE(hasToken(T, Expect)) << Expect;
  EXPECT_FALSE(hasToken(T, "do"));
}

TEST(TokenizersTest, TinyCMultiLetterWordIsNotIdentifier) {
  auto T = extractTokens("tinyc", "ab;");
  EXPECT_FALSE(hasToken(T, "identifier"));
  EXPECT_TRUE(hasToken(T, ";"));
}

TEST(TokenizersTest, MjsMaximalMunch) {
  auto T = extractTokens("mjs", "x>>>=1;y=a>>>b;z=c>>d;w=e>f;");
  EXPECT_TRUE(hasToken(T, ">>>="));
  EXPECT_TRUE(hasToken(T, ">>>"));
  EXPECT_TRUE(hasToken(T, ">>"));
  EXPECT_TRUE(hasToken(T, ">"));
}

TEST(TokenizersTest, MjsKeywordsAndBuiltins) {
  auto T = extractTokens(
      "mjs", "function f(){return JSON.stringify(a.indexOf(1));}");
  for (const char *Expect :
       {"function", "return", "JSON", "stringify", "indexOf", "identifier",
        "(", ")", "{", "}", ".", ";"})
    EXPECT_TRUE(hasToken(T, Expect)) << Expect;
}

TEST(TokenizersTest, MjsStringsAndNumbers) {
  auto T = extractTokens("mjs", "x='while';y=3.25;");
  EXPECT_TRUE(hasToken(T, "string"));
  EXPECT_TRUE(hasToken(T, "number"));
  // Keyword inside a string literal does not count.
  EXPECT_FALSE(hasToken(T, "while"));
}

TEST(TokenizersTest, IniStructure) {
  auto T = extractTokens("ini", "[sec]\nkey=value\n; comment\n");
  for (const char *Expect : {"[", "]", "=", ";", "name"})
    EXPECT_TRUE(hasToken(T, Expect)) << Expect;
}

TEST(TokenizersTest, CsvFieldsAndStrings) {
  auto T = extractTokens("csv", "a,\"q\"\nb,");
  EXPECT_TRUE(hasToken(T, "field"));
  EXPECT_TRUE(hasToken(T, "string"));
  EXPECT_TRUE(hasToken(T, ","));
}

TEST(TokenizersTest, ArithTokens) {
  auto T = extractTokens("arith", "(12-3)+4");
  for (const char *Expect : {"(", ")", "+", "-", "number"})
    EXPECT_TRUE(hasToken(T, Expect)) << Expect;
}

TEST(TokenizersTest, EmptyInputYieldsNothing) {
  for (const char *Name : {"arith", "ini", "csv", "json", "tinyc", "mjs"})
    EXPECT_TRUE(extractTokens(Name, "").empty()) << Name;
}

TEST(TokenizersTest, WhitespaceIgnored) {
  auto T = extractTokens("mjs", "   \t\n  ");
  EXPECT_TRUE(T.empty());
}

TEST(TokenizersTest, MjsCommentsAreNotTokens) {
  auto T = extractTokens("mjs", "// while true\nx=1;/* for */");
  EXPECT_FALSE(hasToken(T, "while"));
  EXPECT_FALSE(hasToken(T, "true"));
  EXPECT_FALSE(hasToken(T, "for"));
  EXPECT_TRUE(hasToken(T, "identifier"));
  EXPECT_TRUE(hasToken(T, "number"));
}

TEST(TokenizersTest, CsvQuotedFieldWithNewlineIsOneString) {
  auto T = extractTokens("csv", "\"a\nb\",c");
  int Strings = 0, Fields = 0;
  for (const std::string &Tok : T) {
    if (Tok == "string")
      ++Strings;
    if (Tok == "field")
      ++Fields;
  }
  EXPECT_EQ(Strings, 1);
  EXPECT_EQ(Fields, 1);
}

TEST(TokenizersTest, IniValueAfterEqualsIsName) {
  auto T = extractTokens("ini", "k=v");
  int Names = 0;
  for (const std::string &Tok : T)
    if (Tok == "name")
      ++Names;
  EXPECT_EQ(Names, 2); // key and value
}

TEST(TokenizersTest, DyckIgnoresForeignCharacters) {
  auto T = extractTokens("dyck", "(a[b]c)");
  EXPECT_EQ(T.size(), 4u); // ( [ ] )
}
