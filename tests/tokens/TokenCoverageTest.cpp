//===- tests/tokens/TokenCoverageTest.cpp - TokenCoverage tests -----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tokens/TokenCoverage.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(TokenCoverageTest, StartsEmpty) {
  TokenCoverage Cov("json");
  EXPECT_TRUE(Cov.found().empty());
  EXPECT_EQ(Cov.shortTokenRatio(), 0.0);
  EXPECT_EQ(Cov.longTokenRatio(), 0.0);
}

TEST(TokenCoverageTest, AccumulatesAcrossInputs) {
  TokenCoverage Cov("json");
  Cov.addInput("1");
  EXPECT_EQ(Cov.found().size(), 1u); // number
  Cov.addInput("[true]");
  EXPECT_TRUE(Cov.found().count("["));
  EXPECT_TRUE(Cov.found().count("]"));
  EXPECT_TRUE(Cov.found().count("true"));
  Cov.addInput("[true]"); // duplicates change nothing
  EXPECT_EQ(Cov.found().size(), 4u);
}

TEST(TokenCoverageTest, FoundByLengthGroups) {
  TokenCoverage Cov("json");
  Cov.addInput("{\"k\": null}");
  auto ByLen = Cov.foundByLength();
  EXPECT_EQ(ByLen[1], 3u); // { } :
  EXPECT_EQ(ByLen[2], 1u); // string
  EXPECT_EQ(ByLen[4], 1u); // null
}

TEST(TokenCoverageTest, RatiosReachOne) {
  TokenCoverage Cov("json");
  Cov.addInput("{\"a\":[1,-2],\"b\":true,\"c\":false,\"d\":null}");
  EXPECT_DOUBLE_EQ(Cov.shortTokenRatio(), 1.0);
  EXPECT_DOUBLE_EQ(Cov.longTokenRatio(), 1.0);
}

TEST(TokenCoverageTest, LongShortSplitTinyC) {
  TokenCoverage Cov("tinyc");
  Cov.addInput("if(1)a=2;");
  EXPECT_GT(Cov.shortTokenRatio(), 0.0);
  EXPECT_EQ(Cov.longTokenRatio(), 0.0); // no while/else yet
  Cov.addInput("while(0);");
  EXPECT_DOUBLE_EQ(Cov.longTokenRatio(), 0.5); // while but not else
}

TEST(TokenCoverageTest, MjsLongTokens) {
  TokenCoverage Cov("mjs");
  Cov.addInput("x instanceof y;");
  Cov.addInput("typeof z;");
  auto ByLen = Cov.foundByLength();
  EXPECT_EQ(ByLen[10], 1u);
  EXPECT_EQ(ByLen[6], 1u);
}
