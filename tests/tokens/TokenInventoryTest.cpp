//===- tests/tokens/TokenInventoryTest.cpp - Inventory tests --------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tokens/TokenInventory.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(TokenInventoryTest, JsonMatchesTable2) {
  const TokenInventory &Inv = TokenInventory::forSubject("json");
  auto Counts = Inv.countsByLength();
  EXPECT_EQ(Counts[1], 8u); // { } [ ] - : , number
  EXPECT_EQ(Counts[2], 1u); // string
  EXPECT_EQ(Counts[4], 2u); // null true
  EXPECT_EQ(Counts[5], 1u); // false
  EXPECT_EQ(Inv.size(), 12u);
}

TEST(TokenInventoryTest, TinyCMatchesTable3) {
  const TokenInventory &Inv = TokenInventory::forSubject("tinyc");
  auto Counts = Inv.countsByLength();
  EXPECT_EQ(Counts[1], 11u);
  EXPECT_EQ(Counts[2], 2u); // if do
  EXPECT_EQ(Counts[4], 1u); // else
  EXPECT_EQ(Counts[5], 1u); // while
  EXPECT_EQ(Inv.size(), 15u);
}

TEST(TokenInventoryTest, MjsMatchesTable4Shape) {
  const TokenInventory &Inv = TokenInventory::forSubject("mjs");
  auto Counts = Inv.countsByLength();
  EXPECT_EQ(Counts[1], 26u); // paper: 27; one punctuation token fewer
  EXPECT_EQ(Counts[2], 24u);
  EXPECT_EQ(Counts[3], 13u);
  EXPECT_EQ(Counts[4], 10u);
  EXPECT_EQ(Counts[5], 9u);
  EXPECT_EQ(Counts[6], 7u);
  EXPECT_EQ(Counts[7], 3u);
  EXPECT_EQ(Counts[8], 3u);
  EXPECT_EQ(Counts[9], 2u);
  EXPECT_EQ(Counts[10], 1u);
  EXPECT_EQ(Inv.size(), 98u);
}

TEST(TokenInventoryTest, LongTokensPresent) {
  const TokenInventory &Inv = TokenInventory::forSubject("mjs");
  for (const char *T : {"while", "typeof", "function", "instanceof",
                        "undefined", "stringify", "indexOf", "debugger"})
    EXPECT_TRUE(Inv.contains(T)) << T;
}

TEST(TokenInventoryTest, LengthOfReturnsClassLength) {
  const TokenInventory &Inv = TokenInventory::forSubject("json");
  EXPECT_EQ(Inv.lengthOf("string"), 2u);
  EXPECT_EQ(Inv.lengthOf("number"), 1u);
  EXPECT_EQ(Inv.lengthOf("false"), 5u);
  EXPECT_EQ(Inv.lengthOf("bogus"), 0u);
}

TEST(TokenInventoryTest, ShortLongSplit) {
  const TokenInventory &Json = TokenInventory::forSubject("json");
  EXPECT_EQ(Json.numShort(), 9u); // 8 len-1 + string
  EXPECT_EQ(Json.numLong(), 3u);  // null true false
  const TokenInventory &TinyC = TokenInventory::forSubject("tinyc");
  EXPECT_EQ(TinyC.numShort(), 13u);
  EXPECT_EQ(TinyC.numLong(), 2u);
}

TEST(TokenInventoryTest, IniAndCsvSmallSets) {
  EXPECT_EQ(TokenInventory::forSubject("ini").size(), 5u);
  EXPECT_EQ(TokenInventory::forSubject("csv").size(), 3u);
  EXPECT_EQ(TokenInventory::forSubject("arith").size(), 5u);
}

TEST(TokenInventoryTest, NoDuplicateTokens) {
  for (const char *Name : {"arith", "ini", "csv", "json", "tinyc", "mjs"}) {
    const TokenInventory &Inv = TokenInventory::forSubject(Name);
    std::set<std::string> Seen;
    for (const TokenDef &T : Inv.tokens())
      EXPECT_TRUE(Seen.insert(T.Text).second)
          << "duplicate token " << T.Text << " in " << Name;
  }
}

TEST(TokenInventoryTest, LiteralTokenLengthsMatchSpelling) {
  // Class tokens aside, a literal's length class is its spelled length.
  for (const char *Name : {"json", "tinyc", "mjs"}) {
    const TokenInventory &Inv = TokenInventory::forSubject(Name);
    for (const TokenDef &T : Inv.tokens()) {
      if (T.Text == "identifier" || T.Text == "number" ||
          T.Text == "string" || T.Text == "field" || T.Text == "name")
        continue;
      EXPECT_EQ(T.Length, T.Text.size()) << T.Text;
    }
  }
}
