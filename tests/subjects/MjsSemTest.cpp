//===- tests/subjects/MjsSemTest.cpp - Section 7.3 semantic checks --------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the mjssem subject (semantic checking enabled) and the
/// Section 7.3 phenomenon: pFuzzer assumes "if a character was accepted
/// by the parser, the character is correct. Hence, the input generated,
/// while it passes the parser, fails the semantic checks."
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(MjsSemTest, DeclaredUsesAccepted) {
  EXPECT_TRUE(mjsSemSubject().accepts("var x=1;x+1;"));
  EXPECT_TRUE(mjsSemSubject().accepts("let y=2;y*y;"));
  EXPECT_TRUE(mjsSemSubject().accepts("x=1;x+1;")); // assignment declares
  EXPECT_TRUE(mjsSemSubject().accepts("function f(a){return a;}f(1);"));
}

TEST(MjsSemTest, UndeclaredReadRejectedAfterParsing) {
  // Parses fine on mjs, fails semantics on mjssem with a distinct exit
  // code — the "delayed constraint" of Section 7.3.
  EXPECT_TRUE(mjsSubject().accepts("undeclared+1;"));
  RunResult RR = mjsSemSubject().execute("undeclared+1;");
  EXPECT_EQ(RR.ExitCode, 2);
}

TEST(MjsSemTest, KnownGlobalsStillResolve) {
  EXPECT_TRUE(mjsSemSubject().accepts("var t=typeof undefined;"));
  EXPECT_TRUE(mjsSemSubject().accepts("var n=NaN;"));
  EXPECT_TRUE(mjsSemSubject().accepts("var j=JSON.stringify([1]);"));
}

TEST(MjsSemTest, SyntaxErrorsKeepExitCodeOne) {
  RunResult RR = mjsSemSubject().execute("var ;");
  EXPECT_EQ(RR.ExitCode, 1);
}

TEST(MjsSemTest, UnreachedReadsDoNotFail) {
  // The constraint is dynamic: a read in dead code never executes.
  EXPECT_TRUE(mjsSemSubject().accepts("if(0){ghost+1;}"));
  EXPECT_EQ(mjsSemSubject().execute("if(1){ghost+1;}").ExitCode, 2);
}

TEST(MjsSemTest, PFuzzerHitsTheDelayedConstraintWall) {
  // Section 7.3 reproduced: a large share of what pFuzzer emits against
  // plain mjs (valid there by construction) fails mjssem's checks, and
  // fuzzing mjssem directly yields fewer valid inputs.
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 1;
  Opts.MaxExecutions = 15000;
  FuzzReport Plain = Tool.run(mjsSubject(), Opts);
  ASSERT_FALSE(Plain.ValidInputs.empty());
  uint64_t FailSemantics = 0;
  for (const std::string &Input : Plain.ValidInputs)
    if (!mjsSemSubject().accepts(Input))
      ++FailSemantics;
  EXPECT_GT(FailSemantics, 0u);

  PFuzzer Tool2;
  FuzzReport Sem = Tool2.run(mjsSemSubject(), Opts);
  for (const std::string &Input : Sem.ValidInputs)
    EXPECT_TRUE(mjsSemSubject().accepts(Input));
  EXPECT_LE(Sem.ValidInputs.size(), Plain.ValidInputs.size());
}
