//===- tests/subjects/JsonTest.cpp - JSON subject tests -------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

class JsonAccepts : public ::testing::TestWithParam<const char *> {};
class JsonRejects : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(JsonAccepts, Valid) {
  EXPECT_TRUE(jsonSubject().accepts(GetParam())) << "input: " << GetParam();
}

TEST_P(JsonRejects, Invalid) {
  EXPECT_FALSE(jsonSubject().accepts(GetParam())) << "input: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Scalars, JsonAccepts,
    ::testing::Values("0", "5", "42", "-1", "3.14", "1e10", "1E-2",
                      "2.5e+3", "true", "false", "null", "\"\"",
                      "\"abc\"", " 1 ", "\t\n 1 \r\n"));

INSTANTIATE_TEST_SUITE_P(
    Structures, JsonAccepts,
    ::testing::Values("[]", "[1]", "[1,2,3]", "[[[]]]", "{}",
                      "{\"a\":1}", "{\"a\":1,\"b\":[true,null]}",
                      "{\"k\":{\"n\":{}}}", "[{\"x\":\"y\"}, 2]"));

INSTANTIATE_TEST_SUITE_P(
    Escapes, JsonAccepts,
    ::testing::Values("\"a\\nb\"", "\"\\t\\r\\b\\f\"", "\"\\\\\"",
                      "\"\\\"\"", "\"\\/\"", "\"\\u0041\"",
                      "\"\\u00e9\"", "\"\\uD834\\uDD1E\"",
                      "\"\\uFFFF\""));

INSTANTIATE_TEST_SUITE_P(
    Invalid, JsonRejects,
    ::testing::Values("", " ", "tru", "truex", "TRUE", "nul", "+1",
                      "01", "1.", ".5", "1e", "-", "[", "[1,", "[1,]",
                      "{", "{\"a\"}", "{\"a\":}", "{a:1}", "{\"a\":1,}",
                      "\"", "\"abc", "\"\\x\"", "\"\\u12\"",
                      "\"\\u12G4\"", "\"\\uD834\"", "\"\\uD834\\u0041\"",
                      "\"\\uDC00\"", "1 2", "[1]]", "{} {}"));

TEST(JsonTest, KeywordRecognisedViaWrappedStrcmp) {
  RunResult RR = jsonSubject().execute("trXe");
  EXPECT_NE(RR.ExitCode, 0);
  bool SawTrueCmp = false;
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Kind == CompareKind::StrEq && RR.expected(E) == "true") {
      SawTrueCmp = true;
      EXPECT_FALSE(E.Matched);
      EXPECT_EQ(RR.actual(E), "trXe");
      EXPECT_EQ(E.Taint.minIndex(), 0u);
      EXPECT_EQ(E.Taint.maxIndex(), 3u);
    }
  }
  EXPECT_TRUE(SawTrueCmp);
}

TEST(JsonTest, HexDigitChecksAreImplicit) {
  // The \u hex validation must be invisible to the taint-based extraction
  // (the cJSON UTF-16 limitation of Section 5.2).
  RunResult RR = jsonSubject().execute("\"\\uZZZZ\"");
  EXPECT_NE(RR.ExitCode, 0);
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Kind == CompareKind::CharRange &&
        (RR.expected(E) == "09" || RR.expected(E) == "af" ||
         RR.expected(E) == "AF"))
      EXPECT_TRUE(E.Implicit);
  }
}

TEST(JsonTest, SurrogatePairsCoverExtraBranches) {
  RunResult Basic = jsonSubject().execute("\"\\u0041\"");
  RunResult Pair = jsonSubject().execute("\"\\uD834\\uDD1E\"");
  EXPECT_EQ(Basic.ExitCode, 0);
  EXPECT_EQ(Pair.ExitCode, 0);
  EXPECT_GT(Pair.coveredBranches().size(), Basic.coveredBranches().size());
}

TEST(JsonTest, ControlCharInStringRejected) {
  std::string Input = "\"a\x01b\"";
  EXPECT_FALSE(jsonSubject().accepts(Input));
  std::string Nul = "\"a";
  Nul.push_back('\0');
  Nul += "b\"";
  EXPECT_FALSE(jsonSubject().accepts(Nul));
}

TEST(JsonTest, DeepNestingHitsLimit) {
  std::string Deep(500, '[');
  EXPECT_FALSE(jsonSubject().accepts(Deep));
  // Within the limit, nesting works.
  std::string Ok = std::string(50, '[') + "1" + std::string(50, ']');
  EXPECT_TRUE(jsonSubject().accepts(Ok));
}

TEST(JsonTest, IncompleteValueHitsEof) {
  for (const char *Prefix : {"[1,", "{\"a\":", "\"abc", "tr"}) {
    RunResult RR = jsonSubject().execute(Prefix);
    EXPECT_NE(RR.ExitCode, 0) << Prefix;
    EXPECT_TRUE(RR.hitEof()) << Prefix;
  }
}

TEST(JsonTest, BranchSitesRegistered) {
  EXPECT_GT(jsonSubject().numBranchSites(), 40u);
}
