//===- tests/subjects/MjsEvaluatorTest.cpp - mJS evaluator tests ----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the mjs *evaluator* (valid programs execute, per the paper's
/// setup). The evaluator has no output channel, so behaviour is observed
/// through acceptance, termination and branch coverage: a program whose
/// condition is truthy must cover more (or different) branches than one
/// whose condition is falsy, and all control flow must terminate.
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

size_t branchesOf(const char *Program) {
  RunResult RR = mjsSubject().execute(Program);
  EXPECT_EQ(RR.ExitCode, 0) << Program;
  return RR.coveredBranches().size();
}

std::vector<uint32_t> coverageOf(const char *Program) {
  RunResult RR = mjsSubject().execute(Program);
  EXPECT_EQ(RR.ExitCode, 0) << Program;
  return RR.coveredBranches();
}

} // namespace

TEST(MjsEvaluatorTest, BranchConditionsSteerExecution) {
  // Same syntax, different truth value: the then/else arms differ in the
  // branch trace.
  EXPECT_NE(coverageOf("if(1){x=1;}else{y=[];}"),
            coverageOf("if(0){x=1;}else{y=[];}"));
}

TEST(MjsEvaluatorTest, LoopsActuallyIterate) {
  // An executed loop body covers strictly more than a skipped one.
  EXPECT_GT(branchesOf("for(var i=0;i<3;i++){x=[i];}"),
            branchesOf("for(var i=0;i<0;i++){x=[i];}"));
}

TEST(MjsEvaluatorTest, FunctionsAreCalled) {
  EXPECT_GT(branchesOf("function f(a){return a+1;}f(1);"),
            branchesOf("function f(a){return a+1;}"));
}

TEST(MjsEvaluatorTest, ThrowReachesCatch) {
  EXPECT_NE(coverageOf("try{throw 1;x=2;}catch(e){y=e;}"),
            coverageOf("try{x=2;}catch(e){y=e;}"));
}

TEST(MjsEvaluatorTest, SwitchDispatch) {
  // Matching vs non-matching discriminant takes different paths.
  EXPECT_NE(coverageOf("switch(1){case 1:x=1;break;default:x=2;}"),
            coverageOf("switch(9){case 1:x=1;break;default:x=2;}"));
}

TEST(MjsEvaluatorTest, ShortCircuitSkipsRhs) {
  EXPECT_NE(coverageOf("0&&(x=[1]);"), coverageOf("1&&(x=[1]);"));
  EXPECT_NE(coverageOf("1||(x=[1]);"), coverageOf("0||(x=[1]);"));
}

TEST(MjsEvaluatorTest, ArrayBuiltinsRun) {
  // push/pop/indexOf round trips terminate and execute builtin code.
  EXPECT_TRUE(mjsSubject().accepts(
      "var a=[];a.push(1);a.push(2);var b=a.pop();var c=a.indexOf(1);"));
  EXPECT_TRUE(mjsSubject().accepts("var s='a,b,c'.split(',');var n=s.length;"));
  EXPECT_TRUE(mjsSubject().accepts("var c='hello'.charAt(1);"));
  EXPECT_TRUE(mjsSubject().accepts("var t='hello'.slice(2);"));
  EXPECT_TRUE(mjsSubject().accepts("var m=[1,2].map(x=>x+1);"));
  EXPECT_TRUE(mjsSubject().accepts("var j=JSON.stringify({a:[1,'s']});"));
}

TEST(MjsEvaluatorTest, ForInAndForOfIterate) {
  EXPECT_GT(branchesOf("for(var k in {a:1,b:2}){x=k;}"),
            branchesOf("for(var k in {}){x=k;}"));
  EXPECT_TRUE(mjsSubject().accepts("for(var v of [1,2,3]){x=v;}"));
  EXPECT_TRUE(mjsSubject().accepts("for(var c of 'ab'){x=c;}"));
}

TEST(MjsEvaluatorTest, CompoundAssignmentEvaluates) {
  for (const char *Program :
       {"var x=1;x+=2;", "var x=8;x>>=1;", "var x=1;x<<=4;",
        "var x=7;x&=3;", "var x=1;x|=6;", "var x=5;x^=2;",
        "var x=9;x%=4;", "var x=8;x/=2;", "var x=3;x*=3;",
        "var x=16;x>>>=2;"})
    EXPECT_TRUE(mjsSubject().accepts(Program)) << Program;
}

TEST(MjsEvaluatorTest, RuntimeRecursionBounded) {
  // Mutual recursion without a base case terminates via the step cap.
  EXPECT_TRUE(mjsSubject().accepts(
      "function a(){return b();}function b(){return a();}a();"));
}

TEST(MjsEvaluatorTest, DeepValueNestingSafe) {
  // Self-referential structures through assignment must not loop the
  // stringifier or the evaluator.
  EXPECT_TRUE(mjsSubject().accepts("var a=[1];a[0]=a.length;"));
  EXPECT_TRUE(mjsSubject().accepts("var o={};o.x=o;")); // cyclic object
}

TEST(MjsEvaluatorTest, TypeofAndEqualityTable) {
  for (const char *Program :
       {"var t=typeof 1;", "var t=typeof 's';", "var t=typeof true;",
        "var t=typeof undefined;", "var t=typeof null;",
        "var t=typeof f;", "x=1==='1';", "x=1=='1';", "x=null==undefined;",
        "x=null===undefined;", "x=NaN==NaN;"})
    EXPECT_TRUE(mjsSubject().accepts(Program)) << Program;
}

TEST(MjsEvaluatorTest, WithAndNewExecute) {
  EXPECT_TRUE(mjsSubject().accepts("with({a:1}){x=2;}"));
  EXPECT_TRUE(mjsSubject().accepts("var o=new Object();o.k=1;"));
}
