//===- tests/subjects/MjsTest.cpp - mJS subject tests ---------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

class MjsAccepts : public ::testing::TestWithParam<const char *> {};
class MjsRejects : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(MjsAccepts, Valid) {
  EXPECT_TRUE(mjsSubject().accepts(GetParam())) << "input: " << GetParam();
}

TEST_P(MjsRejects, Invalid) {
  EXPECT_FALSE(mjsSubject().accepts(GetParam())) << "input: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, MjsAccepts,
    ::testing::Values("1;", "1.5;", "x;", "x=1;", "x+=2;", "x-=2;",
                      "x*=2;", "x/=2;", "x%=2;", "x&=1;", "x|=1;",
                      "x^=1;", "x<<=1;", "x>>=1;", "x>>>=1;", "x++;",
                      "++x;", "--x;", "x--;", "1+2*3;", "(1+2)*3;",
                      "1<2;", "1<=2;", "1===1;", "1!==2;", "1==1;",
                      "1!=2;", "1&&2;", "1||0;", "1&2|3^4;", "1<<2;",
                      "1>>2;", "1>>>2;", "~1;", "!0;", "-x;", "+x;",
                      "1?2:3;", "'s';", "\"s\";", "x='a'+'b';"));

INSTANTIATE_TEST_SUITE_P(
    Statements, MjsAccepts,
    ::testing::Values("", ";", "{}", "{1;}", "if(1)x=1;", "if(0){}else{}",
                      "while(0);", "do;while(0);", "for(;;)break;",
                      "for(x=0;x<3;x++)y=x;", "for(var i=0;i<2;i=i+1);",
                      "for(x in [1,2]);", "for(x of [1,2]);",
                      "for(var k in {a:1});", "var x;", "var x=1,y=2;",
                      "let z=3;", "const c=4;", "throw 1;",
                      "try{}catch(e){}", "try{}finally{}",
                      "try{throw 1;}catch(e){x=e;}",
                      "switch(1){case 1:break;default:x=2;}",
                      "with({}){}", "debugger;"));

INSTANTIATE_TEST_SUITE_P(
    Functions, MjsAccepts,
    ::testing::Values("function f(){}", "function f(a,b){return a+b;}",
                      "var f=function(){return 1;};",
                      "var g=x=>x+1;", "var h=x=>{return x;};",
                      "f();", "f(1,2);", "a.b;", "a.b.c;", "a[0];",
                      "a.push(1);", "x=[1,2].length;",
                      "x={a:1,\"b\":2};", "x={};", "x=[];",
                      "typeof x;", "delete a.b;", "void 0;",
                      "new f();", "x instanceof y;", "'a' in {};",
                      "JSON.stringify([1,2]);", "x=a.indexOf;",
                      "function f(n){if(n<1)return 0;return f(n-1);}f(3);"));

INSTANTIATE_TEST_SUITE_P(
    Invalid, MjsRejects,
    ::testing::Values("1", "x=", "x=;", "1+;", "var;", "var 1;",
                      "if;", "if(1)", "if()x;", "while;", "while()x;",
                      "do;", "do;while(1)", "for;", "for(;;)",
                      "function(){};", "function f(;){}", "try{}",
                      "switch(1){}x", "switch(1){case:}", "x=>;",
                      "a.;", "a[;", "'unterminated", "\"multi\nline\"",
                      "@;", "#;", "1..2;", "{", "}", "x===;",
                      "throw;", "case 1:;", "1;;;x=", "((1);"));

TEST(MjsTest, KeywordsViaWrappedStrcmp) {
  RunResult RR = mjsSubject().execute("whil");
  EXPECT_NE(RR.ExitCode, 0);
  bool SawWhile = false, SawFunction = false;
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Kind != CompareKind::StrEq)
      continue;
    if (RR.expected(E) == "while")
      SawWhile = true;
    if (RR.expected(E) == "function")
      SawFunction = true;
  }
  EXPECT_TRUE(SawWhile);
  EXPECT_TRUE(SawFunction);
}

TEST(MjsTest, BuiltinMemberNamesComparedAtRuntime) {
  // Evaluating a member access resolves the name against the builtin
  // table via wrapped strcmps — the source of long tokens like indexOf.
  RunResult RR = mjsSubject().execute("a.xyz;");
  EXPECT_EQ(RR.ExitCode, 0);
  bool SawIndexOf = false, SawStringify = false;
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Kind != CompareKind::StrEq)
      continue;
    if (RR.expected(E) == "indexOf")
      SawIndexOf = true;
    if (RR.expected(E) == "stringify")
      SawStringify = true;
  }
  EXPECT_TRUE(SawIndexOf);
  EXPECT_TRUE(SawStringify);
}

TEST(MjsTest, GlobalNamesComparedAtRuntime) {
  RunResult RR = mjsSubject().execute("q;");
  EXPECT_EQ(RR.ExitCode, 0);
  bool SawUndefined = false, SawObject = false;
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Kind != CompareKind::StrEq)
      continue;
    if (RR.expected(E) == "undefined")
      SawUndefined = true;
    if (RR.expected(E) == "Object")
      SawObject = true;
  }
  EXPECT_TRUE(SawUndefined);
  EXPECT_TRUE(SawObject);
}

TEST(MjsTest, InfiniteLoopsBounded) {
  EXPECT_TRUE(mjsSubject().accepts("while(1);"));
  EXPECT_TRUE(mjsSubject().accepts("for(;;);"));
  EXPECT_TRUE(mjsSubject().accepts("do;while(1);"));
  EXPECT_TRUE(
      mjsSubject().accepts("function f(){return f();}f();")); // recursion
}

TEST(MjsTest, SemanticallyOddButSyntacticallyValid) {
  // Semantic checking is disabled (paper setup): these parse and run.
  EXPECT_TRUE(mjsSubject().accepts("undeclared + 1;"));
  EXPECT_TRUE(mjsSubject().accepts("1();"));
  EXPECT_TRUE(mjsSubject().accepts("null.x;"));
  EXPECT_TRUE(mjsSubject().accepts("\"s\".nonsense();"));
}

TEST(MjsTest, MaximalMunchOperators) {
  EXPECT_TRUE(mjsSubject().accepts("x=1>>>2;"));
  EXPECT_TRUE(mjsSubject().accepts("x>>>=1;"));
  EXPECT_TRUE(mjsSubject().accepts("x=1>2;"));
  EXPECT_TRUE(mjsSubject().accepts("x=a>=b;"));
}

TEST(MjsTest, ExecutionProducesValues) {
  // The evaluator runs: an array builtin round trip must not crash and
  // must cover more branches than a constant statement.
  RunResult Plain = mjsSubject().execute("1;");
  RunResult Busy = mjsSubject().execute(
      "var a=[1,2,3];a.push(4);var s=a.length;var t=a.indexOf(2);");
  EXPECT_EQ(Plain.ExitCode, 0);
  EXPECT_EQ(Busy.ExitCode, 0);
  EXPECT_GT(Busy.coveredBranches().size(), Plain.coveredBranches().size());
}

TEST(MjsTest, DeepNestingBounded) {
  std::string Deep(2000, '(');
  Deep += "1";
  Deep += std::string(2000, ')');
  Deep += ";";
  EXPECT_FALSE(mjsSubject().accepts(Deep));
  EXPECT_TRUE(mjsSubject().accepts("x=((((1))));"));
}

TEST(MjsTest, StringsWithEscapes) {
  EXPECT_TRUE(mjsSubject().accepts("x='a\\n\\t\\\\';"));
  EXPECT_TRUE(mjsSubject().accepts("x=\"quote:\\\"\";"));
  EXPECT_FALSE(mjsSubject().accepts("x='bad"));
}

TEST(MjsTest, BranchSitesRegistered) {
  // mjs is by far the largest subject (Table 1 shape).
  EXPECT_GT(mjsSubject().numBranchSites(),
            tinycSubject().numBranchSites() * 2);
}

TEST(MjsTest, CommentsAreSkipped) {
  EXPECT_TRUE(mjsSubject().accepts("// just a comment"));
  EXPECT_TRUE(mjsSubject().accepts("// c\nx=1;"));
  EXPECT_TRUE(mjsSubject().accepts("x=1;// trailing"));
  EXPECT_TRUE(mjsSubject().accepts("/* block */x=1;"));
  EXPECT_TRUE(mjsSubject().accepts("x=/* inline */1;"));
  EXPECT_TRUE(mjsSubject().accepts("/* multi\nline */;"));
}

TEST(MjsTest, UnterminatedBlockCommentRejected) {
  EXPECT_FALSE(mjsSubject().accepts("/* never closed"));
  EXPECT_FALSE(mjsSubject().accepts("x=1;/*"));
}

TEST(MjsTest, DivisionStillWorksAroundComments) {
  EXPECT_TRUE(mjsSubject().accepts("x=4/2;"));
  EXPECT_TRUE(mjsSubject().accepts("x=4/2/1;"));
  EXPECT_TRUE(mjsSubject().accepts("x/=2;"));
}
