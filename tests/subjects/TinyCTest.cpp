//===- tests/subjects/TinyCTest.cpp - Tiny-C subject tests ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

class TinyCAccepts : public ::testing::TestWithParam<const char *> {};
class TinyCRejects : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(TinyCAccepts, Valid) {
  EXPECT_TRUE(tinycSubject().accepts(GetParam())) << "input: " << GetParam();
}

TEST_P(TinyCRejects, Invalid) {
  EXPECT_FALSE(tinycSubject().accepts(GetParam())) << "input: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Statements, TinyCAccepts,
    ::testing::Values(";", "1;", "a;", "a=1;", "a=b=2;", "{}", "{;}",
                      "{a=1;b=2;}", "a=1+2;", "a=1-2+3;", "a=(1);",
                      "a<b;", "a=b<c;", "(1);", "{{{;}}}"));

INSTANTIATE_TEST_SUITE_P(
    ControlFlow, TinyCAccepts,
    ::testing::Values("if(1);", "if (1) a=2;", "if(a<b)a=b;else b=a;",
                      "while(0);", "while(a<9)a=a+1;",
                      "do a=a+1; while(a<5);", "do;while(0);",
                      "{i=0;while(i<3){i=i+1;}}",
                      "if(1){a=1;}else{a=2;}"));

INSTANTIATE_TEST_SUITE_P(
    Invalid, TinyCRejects,
    ::testing::Values("", "1", "a=1", "{", "}", "if", "if(1)", "if 1;",
                      "while(1)", "do;", "do;while(1)", "ab;",
                      "foo=1;", "a=;", "a==1;", "a=1;;x", "else;",
                      "a=1;}", "1+;", "<;", "if();"));

TEST(TinyCTest, KeywordsViaWrappedStrcmp) {
  RunResult RR = tinycSubject().execute("wh");
  EXPECT_NE(RR.ExitCode, 0);
  bool SawWhile = false;
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Kind == CompareKind::StrEq && RR.expected(E) == "while") {
      SawWhile = true;
      EXPECT_EQ(RR.actual(E), "wh");
      EXPECT_EQ(E.Taint.minIndex(), 0u);
    }
  }
  EXPECT_TRUE(SawWhile);
}

TEST(TinyCTest, TokenKindChecksAreInvisible) {
  // Tokenization breaks taint flow (Section 7.2): after the lexer, no
  // comparison event should be attributed to parser-level kind checks.
  // We verify that all events are lexer-level: char or keyword compares.
  RunResult RR = tinycSubject().execute("if(1);");
  EXPECT_EQ(RR.ExitCode, 0);
  for (const ComparisonEvent &E : RR.Comparisons) {
    bool LexerLevel = E.Kind == CompareKind::CharEq ||
                      E.Kind == CompareKind::CharRange ||
                      E.Kind == CompareKind::CharSet ||
                      E.Kind == CompareKind::StrEq;
    EXPECT_TRUE(LexerLevel);
  }
}

TEST(TinyCTest, InfiniteLoopTerminatesViaStepCap) {
  // The paper manually fixed while(9); to avoid a hang; our interpreter
  // bounds evaluation steps instead.
  EXPECT_TRUE(tinycSubject().accepts("while(9);"));
  EXPECT_TRUE(tinycSubject().accepts("do;while(1);"));
  EXPECT_TRUE(tinycSubject().accepts("a=1;")); // still fine afterwards
}

TEST(TinyCTest, ExecutionCoversInterpreterOnlyOnLoops) {
  RunResult Plain = tinycSubject().execute("a=1;");
  RunResult Loop = tinycSubject().execute("{i=0;while(i<3)i=i+1;}");
  EXPECT_EQ(Plain.ExitCode, 0);
  EXPECT_EQ(Loop.ExitCode, 0);
  EXPECT_GT(Loop.coveredBranches().size(), Plain.coveredBranches().size());
}

TEST(TinyCTest, MultiLetterIdentifierRejected) {
  // tiny-c identifiers are single letters; multi-letter non-keywords are
  // syntax errors.
  EXPECT_FALSE(tinycSubject().accepts("abc=1;"));
  EXPECT_FALSE(tinycSubject().accepts("whilex(1);"));
}

TEST(TinyCTest, DeepNestingBounded) {
  std::string Deep(1000, '(');
  Deep += "1";
  Deep += std::string(1000, ')');
  Deep += ";";
  EXPECT_FALSE(tinycSubject().accepts(Deep));
  EXPECT_TRUE(tinycSubject().accepts("a=((((1))));"));
}

TEST(TinyCTest, DanglingElseBindsToInnerIf) {
  EXPECT_TRUE(tinycSubject().accepts("if(1)if(0)a=1;else a=2;"));
}

TEST(TinyCTest, BranchSitesRegistered) {
  EXPECT_GT(tinycSubject().numBranchSites(), 50u);
}
