//===- tests/subjects/ArithTest.cpp - Section 2 subject tests -------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

class ArithAccepts : public ::testing::TestWithParam<const char *> {};
class ArithRejects : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(ArithAccepts, Valid) {
  EXPECT_TRUE(arithSubject().accepts(GetParam())) << "input: " << GetParam();
}

TEST_P(ArithRejects, Invalid) {
  EXPECT_FALSE(arithSubject().accepts(GetParam())) << "input: " << GetParam();
}

// The Section 2 examples plus structural variants.
INSTANTIATE_TEST_SUITE_P(Paper, ArithAccepts,
                         ::testing::Values("1", "11", "+1", "-1", "1+1",
                                           "1-1", "(1)", "(2-94)"));

INSTANTIATE_TEST_SUITE_P(Nesting, ArithAccepts,
                         ::testing::Values("((1))", "(((42)))", "(1+2)-3",
                                           "1+2+3+4", "-(1)", "+(2-3)",
                                           "(1)+(2)", "0", "007"));

INSTANTIATE_TEST_SUITE_P(Basic, ArithRejects,
                         ::testing::Values("", "A", "(", ")", "+", "-",
                                           "1+", "(1", "1)", "()", "1 1",
                                           "1++1", "--1", "1.5", "a+b",
                                           " 1", "1 "));

TEST(ArithTest, EmptyInputHitsEof) {
  RunResult RR = arithSubject().execute("");
  EXPECT_NE(RR.ExitCode, 0);
  EXPECT_TRUE(RR.hitEof());
  EXPECT_EQ(RR.EofAccesses[0].AccessIndex, 0u);
}

TEST(ArithTest, RejectionComparesAgainstGrammarAlternatives) {
  // On "A" the parser must have compared index 0 against '(', '+'/'-' and
  // the digit range — the comparisons Figure 1 lists.
  RunResult RR = arithSubject().execute("A");
  EXPECT_NE(RR.ExitCode, 0);
  bool SawParen = false, SawSign = false, SawDigit = false;
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Taint.empty() || !E.Taint.contains(0))
      continue;
    if (E.Kind == CompareKind::CharEq && RR.expected(E) == "(")
      SawParen = true;
    if (E.Kind == CompareKind::CharSet && RR.expected(E) == "+-")
      SawSign = true;
    if (E.Kind == CompareKind::CharRange && RR.expected(E) == "09")
      SawDigit = true;
  }
  EXPECT_TRUE(SawParen);
  EXPECT_TRUE(SawSign);
  EXPECT_TRUE(SawDigit);
}

TEST(ArithTest, ValidPrefixAccessesNextIndex) {
  // "(2" is a valid prefix; the parser should try to read further.
  RunResult RR = arithSubject().execute("(2");
  EXPECT_NE(RR.ExitCode, 0);
  ASSERT_TRUE(RR.hitEof());
  EXPECT_EQ(RR.EofAccesses[0].AccessIndex, 2u);
}

TEST(ArithTest, TrailingGarbageRejected) {
  RunResult RR = arithSubject().execute("1)");
  EXPECT_NE(RR.ExitCode, 0);
}

TEST(ArithTest, BranchSitesRegistered) {
  EXPECT_GT(arithSubject().numBranchSites(), 5u);
  EXPECT_LT(arithSubject().numBranchSites(), 40u);
}

TEST(ArithTest, ValidRunCoversBranches) {
  RunResult RR = arithSubject().execute("(2-94)");
  EXPECT_EQ(RR.ExitCode, 0);
  EXPECT_GT(RR.coveredBranches().size(), 8u);
}
