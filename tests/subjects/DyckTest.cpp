//===- tests/subjects/DyckTest.cpp - Dyck subject + Section 3 analysis ----===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the balanced-bracket subject and empirically verifies the
/// Section 3 search-space analysis: a random walk over {open, close} that
/// stays non-negative for 2n steps ends balanced with probability
/// 1/(n+1) (the Catalan-number argument in the paper's footnote) — which
/// is why naive random choice cannot close long prefixes and a guided
/// search is needed.
///
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"
#include "subjects/Subject.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

class DyckAccepts : public ::testing::TestWithParam<const char *> {};
class DyckRejects : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(DyckAccepts, Valid) {
  EXPECT_TRUE(dyckSubject().accepts(GetParam())) << GetParam();
}

TEST_P(DyckRejects, Invalid) {
  EXPECT_FALSE(dyckSubject().accepts(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Valid, DyckAccepts,
                         ::testing::Values("()", "[]", "<>", "(())",
                                           "()()", "([<>])", "(()[])<>",
                                           "<<<>>>", "()[]<>"));

INSTANTIATE_TEST_SUITE_P(Invalid, DyckRejects,
                         ::testing::Values("", "(", ")", "(]", "([)]",
                                           "())", "(()", "x", "()x",
                                           "<(>)"));

TEST(DyckTest, MismatchedKindsRejected) {
  EXPECT_FALSE(dyckSubject().accepts("(>"));
  EXPECT_FALSE(dyckSubject().accepts("[)"));
  EXPECT_TRUE(dyckSubject().accepts("(<[]>)"));
}

TEST(DyckTest, DeepNestingBounded) {
  std::string Deep(1000, '(');
  EXPECT_FALSE(dyckSubject().accepts(Deep));
  std::string Ok = std::string(100, '(') + std::string(100, ')');
  EXPECT_TRUE(dyckSubject().accepts(Ok));
}

TEST(DyckTest, PFuzzerClosesBrackets) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 1;
  Opts.MaxExecutions = 8000;
  FuzzReport R = Tool.run(dyckSubject(), Opts);
  ASSERT_FALSE(R.ValidInputs.empty());
  // All three bracket kinds should be closable.
  bool Round = false, Square = false, Pointed = false;
  for (const std::string &I : R.ValidInputs) {
    Round |= I.find("()") != std::string::npos ||
             I.find('(') != std::string::npos;
    Square |= I.find('[') != std::string::npos;
    Pointed |= I.find('<') != std::string::npos;
  }
  EXPECT_TRUE(Round);
  EXPECT_TRUE(Square);
  EXPECT_TRUE(Pointed);
}

namespace {

/// One uniform open/close walk of 2n steps, as in the paper's footnote:
/// walks that dip below zero are rejected (the parser would have errored
/// out); among the surviving non-negative walks, the balanced fraction is
/// the n-th Catalan ratio 1/(n+1).
enum class WalkOutcome { Rejected, Open, Closed };

WalkOutcome randomWalk(Rng &R, int N) {
  int Depth = 0;
  for (int Step = 0; Step != 2 * N; ++Step) {
    Depth += R.chance(1, 2) ? 1 : -1;
    if (Depth < 0)
      return WalkOutcome::Rejected;
  }
  return Depth == 0 ? WalkOutcome::Closed : WalkOutcome::Open;
}

} // namespace

/// Parameterised over n: the closing probability of the random walk is
/// approximately 1/(n+1) (within generous sampling error) — the paper's
/// argument for why random choice "does not work in practice".
class DyckClosingProbability : public ::testing::TestWithParam<int> {};

TEST_P(DyckClosingProbability, MatchesCatalanEstimate) {
  int N = GetParam();
  Rng R(1234 + N);
  const int WantValid = 20000;
  int Valid = 0, Closed = 0;
  uint64_t Attempts = 0;
  while (Valid < WantValid && ++Attempts < 50000000) {
    WalkOutcome Outcome = randomWalk(R, N);
    if (Outcome == WalkOutcome::Rejected)
      continue;
    ++Valid;
    if (Outcome == WalkOutcome::Closed)
      ++Closed;
  }
  ASSERT_EQ(Valid, WantValid);
  double Observed = static_cast<double>(Closed) / Valid;
  double Predicted = 1.0 / (N + 1);
  EXPECT_LT(Observed, Predicted * 1.5) << "n=" << N;
  EXPECT_GT(Observed, Predicted / 1.5) << "n=" << N;
}

INSTANTIATE_TEST_SUITE_P(WalkLengths, DyckClosingProbability,
                         ::testing::Values(2, 5, 10, 20, 50));

TEST(DyckTest, ClosingProbabilityDecaysWithLength) {
  Rng R(99);
  auto Estimate = [&](int N) {
    int Valid = 0, Closed = 0;
    uint64_t Attempts = 0;
    while (Valid < 10000 && ++Attempts < 50000000) {
      WalkOutcome Outcome = randomWalk(R, N);
      if (Outcome == WalkOutcome::Rejected)
        continue;
      ++Valid;
      if (Outcome == WalkOutcome::Closed)
        ++Closed;
    }
    return static_cast<double>(Closed) / Valid;
  };
  // "After 100 characters, this probability is about 1%" (n = 50 gives
  // 1/51), "and continues to decrease as we add more characters."
  double P50 = Estimate(50);
  EXPECT_LT(P50, 0.04);
  EXPECT_GT(Estimate(5), P50);
}
