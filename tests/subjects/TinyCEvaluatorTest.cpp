//===- tests/subjects/TinyCEvaluatorTest.cpp - Interpreter tests ----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the tiny-c *interpreter* phase, observed through branch
/// coverage: conditions steer execution, loops iterate, and runaway
/// programs terminate via the step cap.
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

std::vector<uint32_t> coverageOf(const char *Program) {
  RunResult RR = tinycSubject().execute(Program);
  EXPECT_EQ(RR.ExitCode, 0) << Program;
  return RR.coveredBranches();
}

} // namespace

TEST(TinyCEvaluatorTest, IfConditionSteersExecution) {
  EXPECT_NE(coverageOf("if(1)a=1;else b=(2);"),
            coverageOf("if(0)a=1;else b=(2);"));
}

TEST(TinyCEvaluatorTest, WhileIterationsVisible) {
  // A loop that runs covers the body-execution branches.
  auto Zero = coverageOf("{i=9;while(i<0)i=i+1;}");
  auto Some = coverageOf("{i=0;while(i<5)i=i+1;}");
  EXPECT_GT(Some.size(), Zero.size());
}

TEST(TinyCEvaluatorTest, DoLoopRunsBodyAtLeastOnce) {
  auto DoCov = coverageOf("do a=a+1; while(0);");
  auto WhileCov = coverageOf("while(0) a=a+1;");
  EXPECT_NE(DoCov, WhileCov);
}

TEST(TinyCEvaluatorTest, LessThanBothOutcomes) {
  EXPECT_NE(coverageOf("a=1<2;"), coverageOf("a=2<1;"));
}

TEST(TinyCEvaluatorTest, AssignmentChainsEvaluate) {
  EXPECT_TRUE(tinycSubject().accepts("a=b=c=5;"));
  EXPECT_TRUE(tinycSubject().accepts("{a=1;b=a+a;c=b-a;}"));
}

TEST(TinyCEvaluatorTest, StepCapStopsAllLoopForms) {
  // The paper hit a while(9); hang and an if-statement hang in AFL's
  // output; our interpreter bounds all of them.
  EXPECT_TRUE(tinycSubject().accepts("while(9);"));
  EXPECT_TRUE(tinycSubject().accepts("do;while(9);"));
  EXPECT_TRUE(tinycSubject().accepts("{a=0;while(0<1){a=a+1;}}"));
  EXPECT_TRUE(
      tinycSubject().accepts("{i=0;while(i<1){i=i-1;}}")); // diverges
}

TEST(TinyCEvaluatorTest, NumberSaturationIsSafe) {
  // Huge literals saturate instead of overflowing.
  EXPECT_TRUE(tinycSubject().accepts("a=99999999999999999999;"));
}

TEST(TinyCEvaluatorTest, NestedControlFlow) {
  EXPECT_TRUE(tinycSubject().accepts(
      "{i=0;while(i<3){j=0;while(j<3){j=j+1;}i=i+1;}}"));
  EXPECT_TRUE(tinycSubject().accepts(
      "if(a<1){if(b<1){c=1;}else{c=2;}}else{c=3;}"));
}
