//===- tests/subjects/CsvTest.cpp - CSV subject tests ---------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

class CsvAccepts : public ::testing::TestWithParam<const char *> {};
class CsvRejects : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(CsvAccepts, Valid) {
  EXPECT_TRUE(csvSubject().accepts(GetParam())) << "input: " << GetParam();
}

TEST_P(CsvRejects, Invalid) {
  EXPECT_FALSE(csvSubject().accepts(GetParam())) << "input: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Valid, CsvAccepts,
    ::testing::Values("", "a", "a,b", "a,b,c", "a,b\nc,d", "a,b\n",
                      ",", ",,", "\n", "\"quoted\"", "\"a,b\"",
                      "\"line\nbreak\"", "\"esc\"\"aped\"", "\"\"",
                      "a,\"b\",c", "\"\",\"\"", "x\n\ny"));

INSTANTIATE_TEST_SUITE_P(
    Invalid, CsvRejects,
    ::testing::Values("\"", "\"abc", "\"a\"x", "a\"b", "\"a\"\"",
                      "ab\"", "\"x\" ,y"));

TEST(CsvTest, UnterminatedQuoteHitsEof) {
  RunResult RR = csvSubject().execute("\"abc");
  EXPECT_NE(RR.ExitCode, 0);
  EXPECT_TRUE(RR.hitEof());
}

TEST(CsvTest, QuoteComparisonsTracked) {
  RunResult RR = csvSubject().execute("a");
  EXPECT_EQ(RR.ExitCode, 0);
  bool SawQuote = false, SawComma = false;
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Kind == CompareKind::CharEq && RR.expected(E) == "\"")
      SawQuote = true;
    if (E.Kind == CompareKind::CharEq && RR.expected(E) == ",")
      SawComma = true;
  }
  EXPECT_TRUE(SawQuote);
  EXPECT_TRUE(SawComma);
}

TEST(CsvTest, EscapedQuoteStaysInsideField) {
  EXPECT_TRUE(csvSubject().accepts("\"a\"\"b\""));
  EXPECT_FALSE(csvSubject().accepts("\"a\"b\""));
}

TEST(CsvTest, BinaryBytesAllowedInBareField) {
  std::string Input = "a";
  Input.push_back(static_cast<char>(0xC3));
  Input.push_back(static_cast<char>(0xA9));
  EXPECT_TRUE(csvSubject().accepts(Input));
}

TEST(CsvTest, BranchSitesRegistered) {
  EXPECT_GT(csvSubject().numBranchSites(), 8u);
}
