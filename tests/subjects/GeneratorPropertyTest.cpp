//===- tests/subjects/GeneratorPropertyTest.cpp - Acceptance properties ---===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based tests: reference generators construct random inputs
/// that are valid *by construction*, and every subject must accept them.
/// This cross-checks the hand-written parsers against an independent
/// specification of each input language.
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

std::string genArith(Rng &R, int Depth);

std::string genArithOperand(Rng &R, int Depth) {
  if (Depth > 0 && R.chance(1, 3))
    return "(" + genArith(R, Depth - 1) + ")";
  std::string Num;
  for (uint64_t I = 0, N = 1 + R.below(3); I != N; ++I)
    Num.push_back(static_cast<char>('0' + R.below(10)));
  return Num;
}

std::string genArith(Rng &R, int Depth) {
  std::string Out;
  if (R.chance(1, 4))
    Out += R.chance(1, 2) ? "+" : "-";
  Out += genArithOperand(R, Depth);
  for (uint64_t I = 0, N = R.below(3); I != N; ++I) {
    Out += R.chance(1, 2) ? "+" : "-";
    Out += genArithOperand(R, Depth);
  }
  return Out;
}

std::string genJsonValue(Rng &R, int Depth) {
  switch (Depth > 0 ? R.below(6) : R.below(4)) {
  case 0: {
    std::string Num;
    if (R.chance(1, 3))
      Num += "-";
    Num.push_back(static_cast<char>('1' + R.below(9)));
    if (R.chance(1, 3)) {
      Num += ".";
      Num.push_back(static_cast<char>('0' + R.below(10)));
    }
    return Num;
  }
  case 1: {
    std::string Str = "\"";
    for (uint64_t I = 0, N = R.below(6); I != N; ++I) {
      char C = R.nextPrintable();
      if (C == '"' || C == '\\')
        C = 'x';
      Str.push_back(C);
    }
    return Str + "\"";
  }
  case 2:
    return R.chance(1, 2) ? "true" : "false";
  case 3:
    return "null";
  case 4: {
    std::string Arr = "[";
    for (uint64_t I = 0, N = R.below(4); I != N; ++I) {
      if (I != 0)
        Arr += ",";
      Arr += genJsonValue(R, Depth - 1);
    }
    return Arr + "]";
  }
  default: {
    std::string Obj = "{";
    for (uint64_t I = 0, N = R.below(3); I != N; ++I) {
      if (I != 0)
        Obj += ",";
      Obj += "\"k" + std::to_string(I) + "\":" + genJsonValue(R, Depth - 1);
    }
    return Obj + "}";
  }
  }
}

std::string genCsv(Rng &R) {
  std::string Out;
  for (uint64_t Row = 0, Rows = 1 + R.below(4); Row != Rows; ++Row) {
    if (Row != 0)
      Out += "\n";
    for (uint64_t Col = 0, Cols = 1 + R.below(4); Col != Cols; ++Col) {
      if (Col != 0)
        Out += ",";
      if (R.chance(1, 3)) {
        Out += "\"";
        for (uint64_t I = 0, N = R.below(5); I != N; ++I) {
          char C = R.nextPrintable();
          if (C == '"')
            Out += "\"\""; // escaped quote
          else
            Out.push_back(C);
        }
        Out += "\"";
      } else {
        for (uint64_t I = 0, N = R.below(5); I != N; ++I) {
          char C = R.nextPrintable();
          if (C == ',' || C == '"')
            C = '_';
          Out.push_back(C);
        }
      }
    }
  }
  return Out;
}

std::string genIni(Rng &R) {
  std::string Out;
  for (uint64_t Line = 0, Lines = R.below(6); Line != Lines; ++Line) {
    switch (R.below(4)) {
    case 0:
      Out += "[sec" + std::to_string(R.below(10)) + "]\n";
      break;
    case 1:
      Out += "; a comment\n";
      break;
    case 2:
      Out += "\n";
      break;
    default:
      Out += "key" + std::to_string(R.below(10)) + " = value\n";
      break;
    }
  }
  return Out;
}

std::string genTinyCStmt(Rng &R, int Depth) {
  auto Expr = [&R]() {
    std::string E(1, static_cast<char>('a' + R.below(26)));
    E += "=";
    E.push_back(static_cast<char>('0' + R.below(10)));
    if (R.chance(1, 2)) {
      E += R.chance(1, 2) ? "+" : "-";
      E.push_back(static_cast<char>('a' + R.below(26)));
    }
    return E;
  };
  if (Depth <= 0 || R.chance(1, 2))
    return Expr() + ";";
  switch (R.below(4)) {
  case 0:
    return "if(" + Expr() + ")" + genTinyCStmt(R, Depth - 1);
  case 1:
    return "while(a<3)" + genTinyCStmt(R, Depth - 1);
  case 2:
    return "do " + genTinyCStmt(R, Depth - 1) + "while(0);";
  default:
    return "{" + genTinyCStmt(R, Depth - 1) + genTinyCStmt(R, Depth - 1) +
           "}";
  }
}

std::string genMjsStmt(Rng &R, int Depth) {
  auto Expr = [&R]() {
    std::string E = "x" + std::to_string(R.below(5));
    switch (R.below(4)) {
    case 0:
      E += "=" + std::to_string(R.below(100));
      break;
    case 1:
      E += "+=" + std::to_string(R.below(10));
      break;
    case 2:
      E += "=[1," + std::to_string(R.below(9)) + "]";
      break;
    default:
      E += "='s'+" + std::to_string(R.below(10));
      break;
    }
    return E;
  };
  if (Depth <= 0 || R.chance(1, 2))
    return Expr() + ";";
  switch (R.below(5)) {
  case 0:
    return "if(" + Expr() + ")" + genMjsStmt(R, Depth - 1);
  case 1:
    return "while(0)" + genMjsStmt(R, Depth - 1);
  case 2:
    return "for(var i=0;i<2;i++)" + genMjsStmt(R, Depth - 1);
  case 3:
    return "try{" + genMjsStmt(R, Depth - 1) + "}catch(e){}";
  default:
    return "{" + genMjsStmt(R, Depth - 1) + genMjsStmt(R, Depth - 1) + "}";
  }
}

std::string genDyck(Rng &R, int Depth) {
  static const char *Pairs[] = {"()", "[]", "<>"};
  const char *P = Pairs[R.below(3)];
  std::string Inner;
  if (Depth > 0)
    for (uint64_t I = 0, N = R.below(3); I != N; ++I)
      Inner += genDyck(R, Depth - 1);
  return std::string(1, P[0]) + Inner + std::string(1, P[1]);
}

} // namespace

/// Sweep: every generated-valid input must be accepted by its subject.
class AcceptanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AcceptanceProperty, ArithGeneratedInputsAccepted) {
  Rng R(GetParam());
  for (int I = 0; I != 50; ++I) {
    std::string Input = genArith(R, 3);
    EXPECT_TRUE(arithSubject().accepts(Input)) << Input;
  }
}

TEST_P(AcceptanceProperty, JsonGeneratedInputsAccepted) {
  Rng R(GetParam());
  for (int I = 0; I != 50; ++I) {
    std::string Input = genJsonValue(R, 3);
    EXPECT_TRUE(jsonSubject().accepts(Input)) << Input;
  }
}

TEST_P(AcceptanceProperty, CsvGeneratedInputsAccepted) {
  Rng R(GetParam());
  for (int I = 0; I != 50; ++I) {
    std::string Input = genCsv(R);
    EXPECT_TRUE(csvSubject().accepts(Input)) << Input;
  }
}

TEST_P(AcceptanceProperty, IniGeneratedInputsAccepted) {
  Rng R(GetParam());
  for (int I = 0; I != 50; ++I) {
    std::string Input = genIni(R);
    EXPECT_TRUE(iniSubject().accepts(Input)) << Input;
  }
}

TEST_P(AcceptanceProperty, TinyCGeneratedInputsAccepted) {
  Rng R(GetParam());
  for (int I = 0; I != 50; ++I) {
    std::string Input = genTinyCStmt(R, 3);
    EXPECT_TRUE(tinycSubject().accepts(Input)) << Input;
  }
}

TEST_P(AcceptanceProperty, MjsGeneratedInputsAccepted) {
  Rng R(GetParam());
  for (int I = 0; I != 50; ++I) {
    std::string Input = genMjsStmt(R, 3);
    EXPECT_TRUE(mjsSubject().accepts(Input)) << Input;
  }
}

TEST_P(AcceptanceProperty, DyckGeneratedInputsAccepted) {
  Rng R(GetParam());
  for (int I = 0; I != 50; ++I) {
    std::string Input = genDyck(R, 4);
    EXPECT_TRUE(dyckSubject().accepts(Input)) << Input;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcceptanceProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17, 23));
