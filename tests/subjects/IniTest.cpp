//===- tests/subjects/IniTest.cpp - INI subject tests ---------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

class IniAccepts : public ::testing::TestWithParam<const char *> {};
class IniRejects : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(IniAccepts, Valid) {
  EXPECT_TRUE(iniSubject().accepts(GetParam())) << "input: " << GetParam();
}

TEST_P(IniRejects, Invalid) {
  EXPECT_FALSE(iniSubject().accepts(GetParam())) << "input: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Valid, IniAccepts,
    ::testing::Values("", "\n", "  \n", "; comment", "; comment\n",
                      "[section]", "[section]\n", "[]", "[s p a c e]",
                      "key=value", "key=value\n", "k=", "a=b\nc=d\n",
                      "[sec]\nkey=value\n", "key = value",
                      "[a]\n; note\nx=1\n\n[b]\ny=2", "key=v;still value",
                      "key=[not a section]", "[sec] ; trailing comment"));

INSTANTIATE_TEST_SUITE_P(
    Invalid, IniRejects,
    ::testing::Values("[", "[section", "[sec\n]", "key", "key\n", "=v",
                      "  =v", "justtext", "[s]garbage", "key;=v",
                      "[a]\nnotapair\n", "\t=x"));

TEST(IniTest, SectionRequiresClosingBracket) {
  RunResult RR = iniSubject().execute("[abc");
  EXPECT_NE(RR.ExitCode, 0);
  // The parser was looking for ']' at the end: either an EOF access or a
  // ']' comparison at the last index must be present.
  bool SawClose = false;
  for (const ComparisonEvent &E : RR.Comparisons)
    if (E.Kind == CompareKind::CharEq && RR.expected(E) == "]")
      SawClose = true;
  EXPECT_TRUE(SawClose);
}

TEST(IniTest, WhitespaceComparisonsAreImplicit) {
  RunResult RR = iniSubject().execute("  x=1");
  EXPECT_EQ(RR.ExitCode, 0);
  bool SawImplicitBlank = false;
  for (const ComparisonEvent &E : RR.Comparisons)
    if (E.Implicit && E.Kind == CompareKind::CharSet)
      SawImplicitBlank = true;
  EXPECT_TRUE(SawImplicitBlank);
}

TEST(IniTest, EmptyInputValidWithEofProbe) {
  RunResult RR = iniSubject().execute("");
  EXPECT_EQ(RR.ExitCode, 0);
  EXPECT_TRUE(RR.hitEof());
}

TEST(IniTest, MultipleSectionsAndPairs) {
  EXPECT_TRUE(iniSubject().accepts("[one]\na=1\nb=2\n[two]\nc=3\n"));
}

TEST(IniTest, ValueMayContainAnything) {
  EXPECT_TRUE(iniSubject().accepts("k==[]{}\"'\x01\x7f"));
}

TEST(IniTest, BranchSitesRegistered) {
  EXPECT_GT(iniSubject().numBranchSites(), 10u);
}
