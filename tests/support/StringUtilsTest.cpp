//===- tests/support/StringUtilsTest.cpp - String helper tests ------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(StringUtilsTest, EscapePlainTextUnchanged) {
  EXPECT_EQ(escapeString("hello world"), "hello world");
}

TEST(StringUtilsTest, EscapeControlCharacters) {
  EXPECT_EQ(escapeString("a\nb"), "a\\nb");
  EXPECT_EQ(escapeString("a\tb"), "a\\tb");
  EXPECT_EQ(escapeString("a\rb"), "a\\rb");
  EXPECT_EQ(escapeString("a\\b"), "a\\\\b");
}

TEST(StringUtilsTest, EscapeNonPrintableAsHex) {
  EXPECT_EQ(escapeString(std::string("\x01", 1)), "\\x01");
  EXPECT_EQ(escapeString(std::string("\x00", 1)), "\\x00");
  EXPECT_EQ(escapeString("\x7f"), "\\x7f");
}

TEST(StringUtilsTest, EscapeHighBytes) {
  std::string Input;
  Input.push_back(static_cast<char>(0xFF));
  EXPECT_EQ(escapeString(Input), "\\xff");
}

TEST(StringUtilsTest, JoinBasics) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(formatDouble(1.0, 1), "1.0");
  EXPECT_EQ(formatDouble(0.125, 2), "0.12"); // round-to-even banker's note
  EXPECT_EQ(formatDouble(72.4999, 1), "72.5");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_TRUE(startsWith("foo", ""));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_FALSE(startsWith("xfoo", "foo"));
}

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  auto Parts = splitString("a,,b", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[2], "b");
}

TEST(StringUtilsTest, SplitNoSeparator) {
  auto Parts = splitString("abc", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "abc");
}

TEST(StringUtilsTest, SplitTrailingSeparator) {
  auto Parts = splitString("a,", ',');
  ASSERT_EQ(Parts.size(), 2u);
  EXPECT_EQ(Parts[1], "");
}
