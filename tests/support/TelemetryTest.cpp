//===- tests/support/TelemetryTest.cpp - Metrics registry tests -----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry substrate on its own: registration is idempotent and
/// kind-checked, sharded counters consolidate exactly (including under
/// many concurrent writers — the TSan target), histogram samples land in
/// their bit-width buckets with exact sums, snapshot diffs isolate an
/// interval, and the heartbeat emitter writes schema-stable NDJSON with
/// monotone beat/execution columns and exactly one boundary claim per
/// interval.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace pfuzz;

namespace {

/// A temp-file path unique to this test process.
std::string tempPath(const std::string &Tag) {
  return ::testing::TempDir() + "pfuzz_telemetry_" + Tag + "_" +
         std::to_string(::getpid()) + ".ndjson";
}

/// Reads a file's lines (heartbeat records are one JSON object per line).
std::vector<std::string> readLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  return Lines;
}

/// Minimal field scraper: returns the raw token following "key": in a
/// flat one-line JSON object (enough for the schema checks below without
/// a JSON parser dependency).
std::string fieldOf(const std::string &Line, const std::string &Key) {
  std::string Needle = "\"" + Key + "\": ";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return "";
  size_t Start = At + Needle.size();
  size_t End = Line.find_first_of(",}", Start);
  return Line.substr(Start, End - Start);
}

} // namespace

TEST(TelemetryTest, CounterRegistrationIdempotentAndExact) {
#ifdef PFUZZ_NO_TELEMETRY
  GTEST_SKIP() << "registry mutators are compiled out under PFUZZ_NO_TELEMETRY";
#endif
  TelemetryRegistry Reg;
  MetricId A = Reg.counter("test.counter");
  MetricId B = Reg.counter("test.counter");
  EXPECT_TRUE(A.valid());
  EXPECT_EQ(A.Slot, B.Slot);
  Reg.add(A, 3);
  Reg.add(B, 4);
  Reg.add(A);
  RegistrySnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.counter("test.counter"), 8u);
  EXPECT_EQ(Snap.counter("test.never-registered"), 0u);
}

TEST(TelemetryTest, GaugeLastWriterWins) {
#ifdef PFUZZ_NO_TELEMETRY
  GTEST_SKIP() << "registry mutators are compiled out under PFUZZ_NO_TELEMETRY";
#endif
  TelemetryRegistry Reg;
  MetricId G = Reg.gauge("test.gauge");
  Reg.set(G, 41);
  Reg.set(G, 17);
  EXPECT_EQ(Reg.snapshot().gauge("test.gauge"), 17u);
}

TEST(TelemetryTest, HistogramBucketsByBitWidthWithExactSum) {
#ifdef PFUZZ_NO_TELEMETRY
  GTEST_SKIP() << "registry mutators are compiled out under PFUZZ_NO_TELEMETRY";
#endif
  TelemetryRegistry Reg;
  MetricId H = Reg.histogram("test.hist");
  // Bucket index is the value's bit width: 0 -> bucket 0, 1 -> bucket 1,
  // 2 and 3 -> bucket 2, 1000 -> bucket 10.
  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 1000ull})
    Reg.record(H, V);
  const HistogramData *D = Reg.snapshot().histogram("test.hist");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Count, 5u);
  EXPECT_EQ(D->Sum, 1006u);
  EXPECT_DOUBLE_EQ(D->mean(), 1006.0 / 5.0);
  EXPECT_EQ(D->Buckets[0], 1u);
  EXPECT_EQ(D->Buckets[1], 1u);
  EXPECT_EQ(D->Buckets[2], 2u);
  EXPECT_EQ(D->Buckets[10], 1u);
}

TEST(TelemetryTest, HistogramClampsOversizedValuesToLastBucket) {
#ifdef PFUZZ_NO_TELEMETRY
  GTEST_SKIP() << "registry mutators are compiled out under PFUZZ_NO_TELEMETRY";
#endif
  TelemetryRegistry Reg;
  MetricId H = Reg.histogram("test.clamp");
  Reg.record(H, UINT64_MAX);
  const HistogramData *D = Reg.snapshot().histogram("test.clamp");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Buckets[HistogramData::BucketCount - 1], 1u);
  EXPECT_EQ(D->Sum, UINT64_MAX);
}

TEST(TelemetryTest, SnapshotMinusIsolatesAnInterval) {
#ifdef PFUZZ_NO_TELEMETRY
  GTEST_SKIP() << "registry mutators are compiled out under PFUZZ_NO_TELEMETRY";
#endif
  TelemetryRegistry Reg;
  MetricId C = Reg.counter("test.delta");
  MetricId G = Reg.gauge("test.delta-gauge");
  MetricId H = Reg.histogram("test.delta-hist");
  Reg.add(C, 10);
  Reg.set(G, 5);
  Reg.record(H, 100);
  RegistrySnapshot Before = Reg.snapshot();
  Reg.add(C, 7);
  Reg.set(G, 9);
  Reg.record(H, 200);
  RegistrySnapshot Delta = Reg.snapshot().minus(Before);
  // Counters and histograms subtract; gauges keep the later value.
  EXPECT_EQ(Delta.counter("test.delta"), 7u);
  EXPECT_EQ(Delta.gauge("test.delta-gauge"), 9u);
  const HistogramData *D = Delta.histogram("test.delta-hist");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Count, 1u);
  EXPECT_EQ(D->Sum, 200u);
}

TEST(TelemetryTest, ConcurrentCountersConsolidateExactly) {
#ifdef PFUZZ_NO_TELEMETRY
  GTEST_SKIP() << "registry mutators are compiled out under PFUZZ_NO_TELEMETRY";
#endif
  // Many threads hammer the same counters through their per-thread
  // shards; after joining, a snapshot must account for every increment.
  // Run under TSan this is the registry's data-race pin: the hot path is
  // relaxed atomics on per-thread cells, consolidation reads them all.
  TelemetryRegistry Reg;
  MetricId C = Reg.counter("test.hammer");
  MetricId H = Reg.histogram("test.hammer-hist");
  const int Threads = 8;
  const uint64_t PerThread = 50000;
  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T)
    Pool.emplace_back([&Reg, C, H] {
      for (uint64_t I = 0; I != PerThread; ++I) {
        Reg.add(C);
        if (I % 100 == 0)
          Reg.record(H, I);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  RegistrySnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.counter("test.hammer"),
            static_cast<uint64_t>(Threads) * PerThread);
  const HistogramData *D = Snap.histogram("test.hammer-hist");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Count, static_cast<uint64_t>(Threads) * (PerThread / 100));
}

TEST(TelemetryTest, SpanRecordsIntoGlobalRegistry) {
  RegistrySnapshot Before = TelemetryRegistry::global().snapshot();
  {
    TELEMETRY_SPAN("unit-test-span");
  }
  {
    TELEMETRY_SPAN("unit-test-span");
  }
  RegistrySnapshot Delta =
      TelemetryRegistry::global().snapshot().minus(Before);
  const HistogramData *D = Delta.histogram("span.unit-test-span");
#ifndef PFUZZ_NO_TELEMETRY
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Count, 2u);
#else
  EXPECT_EQ(D, nullptr);
#endif
}

TEST(TelemetryTest, HeartbeatTickClaimsEachBoundaryOnce) {
  HeartbeatEmitter HB;
  EXPECT_FALSE(HB.enabled());
  EXPECT_FALSE(HB.tick()); // disarmed: never claims
  std::string Path = tempPath("tick");
  ASSERT_TRUE(HB.open(Path, 10));
  uint64_t Claims = 0;
  for (int I = 0; I != 35; ++I)
    Claims += HB.tick() ? 1 : 0;
  EXPECT_EQ(Claims, 3u); // boundaries at 10, 20, 30
  EXPECT_TRUE(HB.close());
  std::remove(Path.c_str());
}

TEST(TelemetryTest, HeartbeatConcurrentTicksClaimExactBoundaries) {
  // The boundary claim is a fetch_add race by design: whichever thread's
  // increment lands on a multiple of N claims it. Total claims across
  // all threads must be exactly ticks / N.
  HeartbeatEmitter HB;
  std::string Path = tempPath("conc");
  ASSERT_TRUE(HB.open(Path, 64));
  const int Threads = 4;
  const uint64_t PerThread = 6400;
  std::vector<uint64_t> Claims(Threads, 0);
  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T)
    Pool.emplace_back([&HB, &Claims, T] {
      for (uint64_t I = 0; I != PerThread; ++I)
        Claims[static_cast<size_t>(T)] += HB.tick() ? 1 : 0;
    });
  for (std::thread &T : Pool)
    T.join();
  uint64_t Total = 0;
  for (uint64_t C : Claims)
    Total += C;
  EXPECT_EQ(Total, static_cast<uint64_t>(Threads) * PerThread / 64);
  EXPECT_TRUE(HB.close());
  std::remove(Path.c_str());
}

TEST(TelemetryTest, HeartbeatRecordsCarryStableSchemaAndMonotoneColumns) {
  HeartbeatEmitter HB;
  std::string Path = tempPath("schema");
  ASSERT_TRUE(HB.open(Path, 100));
  EXPECT_EQ(HB.interval(), 100u);
  for (int Beat = 0; Beat != 5; ++Beat) {
    for (int I = 0; I != 100; ++I)
      if (HB.tick()) {
        HeartbeatSample S;
        S.Shard = 2;
        S.Frontier = static_cast<uint64_t>(10 * (Beat + 1));
        S.QueueBytes = 4096;
        S.RunCacheHitRate = 0.25;
        S.ResumeHitRate = 0.5;
        S.SchedStealRate = 0.125;
        S.ShardLag = 1;
        HB.emit(S);
      }
  }
  EXPECT_EQ(HB.beats(), 5u);
  ASSERT_TRUE(HB.close());
  std::vector<std::string> Lines = readLines(Path);
  ASSERT_EQ(Lines.size(), 5u);
  const char *Keys[] = {"ts_ms",        "beat",
                        "shard",        "executions",
                        "wall_s",       "execs_per_sec",
                        "frontier",     "queue_bytes",
                        "run_cache_hit_rate", "resume_hit_rate",
                        "sched_steal_rate",   "shard_lag"};
  uint64_t LastBeat = 0, LastExecs = 0;
  for (const std::string &Line : Lines) {
    // Every record is a one-line object carrying the full fixed key set.
    EXPECT_EQ(Line.front(), '{');
    EXPECT_EQ(Line.back(), '}');
    for (const char *Key : Keys)
      EXPECT_NE(fieldOf(Line, Key), "") << Key << " missing in " << Line;
    uint64_t Beat = std::stoull(fieldOf(Line, "beat"));
    uint64_t Execs = std::stoull(fieldOf(Line, "executions"));
    EXPECT_GT(Beat, LastBeat);
    EXPECT_GT(Execs, LastExecs);
    LastBeat = Beat;
    LastExecs = Execs;
    EXPECT_EQ(fieldOf(Line, "shard"), "2");
    EXPECT_EQ(fieldOf(Line, "queue_bytes"), "4096");
    EXPECT_EQ(fieldOf(Line, "run_cache_hit_rate"), "0.2500");
  }
  std::remove(Path.c_str());
}

TEST(TelemetryTest, HeartbeatOpenFailureStaysDisabled) {
  HeartbeatEmitter HB;
  EXPECT_FALSE(HB.open("/nonexistent-dir-zzz/hb.ndjson", 10));
  EXPECT_FALSE(HB.enabled());
  EXPECT_FALSE(HB.tick());
  EXPECT_TRUE(HB.close()); // closing a never-opened emitter is clean
}
