//===- tests/support/FiberTest.cpp - Stackful coroutine tests -------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fiber contract the prefix-resumption engine depends on: runs
/// execute to completion on the fiber stack, yield/resume round-trips,
/// one stack serves many runs, and a checkpoint can be restored any
/// number of times — each continuation seeing the stack exactly as
/// captured. Runs under ASan exercise the sanitizer fiber annotations
/// (and the leak checker covers the stack and checkpoint buffers).
///
//===----------------------------------------------------------------------===//

#include "support/Fiber.h"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

using namespace pfuzz;

namespace {

#define REQUIRE_FIBERS()                                                       \
  do {                                                                         \
    if (!Fiber::available())                                                   \
      GTEST_SKIP() << "fibers unavailable in this build";                      \
  } while (0)

TEST(FiberTest, RunsEntryToCompletion) {
  REQUIRE_FIBERS();
  Fiber F;
  int Value = 0;
  F.run([](void *Arg) { *static_cast<int *>(Arg) = 42; }, &Value);
  EXPECT_EQ(Value, 42);
  EXPECT_TRUE(F.finished());
}

TEST(FiberTest, YieldSuspendsAndResumeContinues) {
  REQUIRE_FIBERS();
  Fiber F;
  std::vector<int> Trace;
  F.run(
      [](void *Arg) {
        auto &T = *static_cast<std::vector<int> *>(Arg);
        T.push_back(1);
        Fiber::yield();
        T.push_back(3);
        Fiber::yield();
        T.push_back(5);
      },
      &Trace);
  EXPECT_FALSE(F.finished());
  Trace.push_back(2);
  F.resume();
  Trace.push_back(4);
  F.resume();
  EXPECT_TRUE(F.finished());
  EXPECT_EQ(Trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FiberTest, StackIsReusedAcrossRuns) {
  REQUIRE_FIBERS();
  Fiber F;
  // Each run leaves its own values in the same frames; a later run must
  // see only its own state.
  for (int Round = 0; Round != 50; ++Round) {
    struct Payload {
      int In;
      long Out;
    } P{Round, 0};
    F.run(
        [](void *Arg) {
          auto *P = static_cast<Payload *>(Arg);
          long Acc = 0;
          for (int I = 0; I <= P->In; ++I)
            Acc += I;
          P->Out = Acc;
        },
        &P);
    ASSERT_TRUE(F.finished());
    EXPECT_EQ(P.Out, static_cast<long>(Round) * (Round + 1) / 2);
  }
}

/// Harness for checkpoint tests: the fiber builds a string characterwise,
/// checkpoints mid-way, and finishes; restores then diverge by appending
/// through the engine-owned Tail.
struct CheckpointRig {
  FiberCheckpoint Cp;
  std::string Built;
  std::string Tail;

  static void body(void *Arg) {
    auto *R = static_cast<CheckpointRig *>(Arg);
    // Frame-local state that must survive capture and every restore.
    std::array<char, 4> Local = {'a', 'b', 'c', '\0'};
    R->Built.assign(Local.data());
    Fiber::checkpoint(R->Cp);
    // Runs once cold and once per restore; Tail differs per continuation.
    R->Built += R->Tail;
    R->Built += Local[0]; // proves the restored frame bytes are intact
  }
};

TEST(FiberTest, CheckpointRestoresAnyNumberOfTimes) {
  REQUIRE_FIBERS();
  Fiber F;
  CheckpointRig R;
  R.Tail = "-cold";
  F.run(&CheckpointRig::body, &R);
  ASSERT_TRUE(F.finished());
  EXPECT_EQ(R.Built, "abc-colda");
  ASSERT_TRUE(R.Cp.Captured);
  // Multi-shot: the same checkpoint seeds several continuations, each
  // re-entering the captured frame with its bytes restored.
  for (const char *Tail : {"-one", "-two", "-three"}) {
    R.Tail = Tail;
    // Off-stack state is the caller's to restore before re-entering —
    // exactly what the engine's RunSnapshot restore does.
    R.Built = "abc";
    F.resumeAt(R.Cp);
    ASSERT_TRUE(F.finished());
    EXPECT_EQ(R.Built, std::string("abc") + Tail + "a");
  }
}

TEST(FiberTest, CheckpointsFromDeepFramesCaptureTheLiveRegion) {
  REQUIRE_FIBERS();
  struct Rig {
    FiberCheckpoint Cp;
    int Depth = 0;
    long Sum = 0;

    static long descend(Rig *R, int Level) {
      if (Level == 0) {
        Fiber::checkpoint(R->Cp);
        return R->Depth; // engine-owned: differs per continuation
      }
      // Locals at every level must survive the restore.
      long Here = Level * 7;
      return Here + descend(R, Level - 1);
    }
    static void body(void *Arg) {
      auto *R = static_cast<Rig *>(Arg);
      R->Sum = descend(R, 12);
    }
  };
  Fiber F;
  Rig R;
  R.Depth = 1000;
  F.run(&Rig::body, &R);
  long Spine = 0;
  for (int L = 1; L <= 12; ++L)
    Spine += L * 7;
  EXPECT_EQ(R.Sum, Spine + 1000);
  for (int D : {2000, 3000}) {
    R.Depth = D;
    R.Sum = 0;
    F.resumeAt(R.Cp);
    ASSERT_TRUE(F.finished());
    EXPECT_EQ(R.Sum, Spine + D);
  }
}

TEST(FiberTest, CheckpointBuffersAreCallerOwned) {
  REQUIRE_FIBERS();
  // A checkpoint outliving its fiber is destroyed without touching the
  // (gone) stack — the leak/ASan run validates the ownership story.
  FiberCheckpoint Cp;
  {
    Fiber F;
    CheckpointRig R;
    R.Tail = "";
    struct Shim {
      FiberCheckpoint *Cp;
      static void body(void *Arg) {
        Fiber::checkpoint(*static_cast<Shim *>(Arg)->Cp);
      }
    } S{&Cp};
    F.run(&Shim::body, &S);
    EXPECT_TRUE(Cp.Captured);
  }
  EXPECT_TRUE(Cp.Captured);
  Cp.reset();
  EXPECT_FALSE(Cp.Captured);
}

} // namespace
