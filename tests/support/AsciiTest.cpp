//===- tests/support/AsciiTest.cpp - Ascii predicate tests ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Ascii.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(AsciiTest, Digits) {
  for (char C = '0'; C <= '9'; ++C)
    EXPECT_TRUE(isAsciiDigit(C));
  EXPECT_FALSE(isAsciiDigit('a'));
  EXPECT_FALSE(isAsciiDigit('/')); // '0' - 1
  EXPECT_FALSE(isAsciiDigit(':')); // '9' + 1
}

TEST(AsciiTest, AlphaBoundaries) {
  EXPECT_TRUE(isAsciiAlpha('a'));
  EXPECT_TRUE(isAsciiAlpha('z'));
  EXPECT_TRUE(isAsciiAlpha('A'));
  EXPECT_TRUE(isAsciiAlpha('Z'));
  EXPECT_FALSE(isAsciiAlpha('@')); // 'A' - 1
  EXPECT_FALSE(isAsciiAlpha('['));
  EXPECT_FALSE(isAsciiAlpha('`'));
  EXPECT_FALSE(isAsciiAlpha('{'));
}

TEST(AsciiTest, SpaceSet) {
  for (char C : {' ', '\t', '\n', '\r', '\v', '\f'})
    EXPECT_TRUE(isAsciiSpace(C));
  EXPECT_FALSE(isAsciiSpace('x'));
  EXPECT_FALSE(isAsciiSpace('\0'));
}

TEST(AsciiTest, IdentifierChars) {
  EXPECT_TRUE(isIdentStart('_'));
  EXPECT_TRUE(isIdentStart('q'));
  EXPECT_FALSE(isIdentStart('5'));
  EXPECT_TRUE(isIdentBody('5'));
  EXPECT_TRUE(isIdentBody('_'));
  EXPECT_FALSE(isIdentBody('-'));
}

TEST(AsciiTest, HexValues) {
  EXPECT_EQ(hexValue('0'), 0);
  EXPECT_EQ(hexValue('9'), 9);
  EXPECT_EQ(hexValue('a'), 10);
  EXPECT_EQ(hexValue('f'), 15);
  EXPECT_EQ(hexValue('A'), 10);
  EXPECT_EQ(hexValue('F'), 15);
  EXPECT_EQ(hexValue('g'), -1);
  EXPECT_EQ(hexValue(' '), -1);
}

TEST(AsciiTest, HexDigitPredicateMatchesHexValue) {
  for (int C = 0; C < 128; ++C)
    EXPECT_EQ(isHexDigit(static_cast<char>(C)),
              hexValue(static_cast<char>(C)) >= 0);
}

TEST(AsciiTest, ToLower) {
  EXPECT_EQ(toAsciiLower('A'), 'a');
  EXPECT_EQ(toAsciiLower('Z'), 'z');
  EXPECT_EQ(toAsciiLower('a'), 'a');
  EXPECT_EQ(toAsciiLower('3'), '3');
}

TEST(AsciiTest, PrintableBoundaries) {
  EXPECT_TRUE(isAsciiPrintable(' '));
  EXPECT_TRUE(isAsciiPrintable('~'));
  EXPECT_FALSE(isAsciiPrintable('\x1f'));
  EXPECT_FALSE(isAsciiPrintable('\x7f'));
}
