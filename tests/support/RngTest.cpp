//===- tests/support/RngTest.cpp - Rng unit tests -------------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace pfuzz;

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 4);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng A(7);
  uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng R(3);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 100ull, 1000000007ull})
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.below(Bound), Bound);
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng R(9);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(R.below(1), 0u);
}

TEST(RngTest, PrintableRangeRespected) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    char C = R.nextPrintable();
    EXPECT_GE(C, 0x20);
    EXPECT_LE(C, 0x7E);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng R(13);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 2000; ++I)
    Seen.insert(R.below(10));
  EXPECT_EQ(Seen.size(), 10u);
}

TEST(RngTest, ChanceExtremes) {
  Rng R(17);
  for (int I = 0; I < 64; ++I) {
    EXPECT_FALSE(R.chance(0, 10));
    EXPECT_TRUE(R.chance(10, 10));
  }
}

TEST(RngTest, PickReturnsElementOfVector) {
  Rng R(19);
  std::vector<int> V = {3, 5, 7};
  for (int I = 0; I < 64; ++I) {
    int X = R.pick(V);
    EXPECT_TRUE(X == 3 || X == 5 || X == 7);
  }
}

TEST(RngTest, ZeroSeedStillWorks) {
  Rng R(0);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 16; ++I)
    Seen.insert(R.next());
  EXPECT_GT(Seen.size(), 10u);
}
