//===- tests/support/SchedulerTest.cpp - Work-stealing scheduler tests ----===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract of the shared work-stealing scheduler: Chase-Lev deque
/// ordering (owner LIFO, thief FIFO), priority-class scan order, the
/// Phase-CAS arbitration between cancel(), runInline() and worker claims
/// (exercised under real stealing — the TSan CI job runs these tests to
/// check the protocol's happens-before edges), exception propagation,
/// parallelFor semantics, drain-on-destruction, and the stats counters.
///
//===----------------------------------------------------------------------===//

#include "support/Scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace pfuzz;

TEST(SchedulerDequeTest, OwnerPopsLifoThiefStealsFifo) {
  sched_detail::WorkStealingDeque<int> D;
  int Items[3] = {10, 20, 30};
  for (int &I : Items)
    D.push(&I);
  EXPECT_EQ(D.sizeRelaxed(), 3);
  // The thief sees the oldest element first...
  EXPECT_EQ(D.steal(), &Items[0]);
  // ...while the owner pops the newest.
  EXPECT_EQ(D.pop(), &Items[2]);
  EXPECT_EQ(D.pop(), &Items[1]);
  EXPECT_EQ(D.pop(), nullptr);
  EXPECT_EQ(D.steal(), nullptr);
}

TEST(SchedulerDequeTest, GrowthPreservesEveryElementInOrder) {
  // Push past the initial ring capacity so grow() copies the live range.
  sched_detail::WorkStealingDeque<int> D(4);
  std::vector<int> Items(100);
  for (size_t I = 0; I != Items.size(); ++I) {
    Items[I] = static_cast<int>(I);
    D.push(&Items[I]);
  }
  // Steal half from the top (oldest first), pop half from the bottom.
  for (size_t I = 0; I != 50; ++I)
    EXPECT_EQ(D.steal(), &Items[I]);
  for (size_t I = Items.size(); I != 50;)
    EXPECT_EQ(D.pop(), &Items[--I]);
  EXPECT_EQ(D.pop(), nullptr);
}

TEST(SchedulerDequeTest, ConcurrentStealsClaimEachElementExactlyOnce) {
  // The classic deque torture: one owner pushing and popping, several
  // thieves stealing; every element must be claimed exactly once. Run
  // under TSan in CI, this is the memory-ordering regression test for
  // the seq_cst Chase-Lev variant.
  constexpr int NumItems = 20000;
  constexpr int NumThieves = 3;
  sched_detail::WorkStealingDeque<std::atomic<int>> D;
  std::vector<std::atomic<int>> Claims(NumItems);
  for (std::atomic<int> &C : Claims)
    C.store(0);
  std::atomic<bool> Done{false};
  std::atomic<int> Claimed{0};
  std::vector<std::thread> Thieves;
  for (int T = 0; T != NumThieves; ++T)
    Thieves.emplace_back([&] {
      while (!Done.load() || Claimed.load() != NumItems) {
        if (std::atomic<int> *Item = D.steal()) {
          EXPECT_EQ(Item->fetch_add(1), 0);
          Claimed.fetch_add(1);
        }
      }
    });
  // Owner: push everything, popping a few along the way to exercise the
  // one-element owner/thief race.
  for (int I = 0; I != NumItems; ++I) {
    D.push(&Claims[static_cast<size_t>(I)]);
    if (I % 7 == 0) {
      if (std::atomic<int> *Item = D.pop()) {
        EXPECT_EQ(Item->fetch_add(1), 0);
        Claimed.fetch_add(1);
      }
    }
  }
  while (std::atomic<int> *Item = D.pop()) {
    EXPECT_EQ(Item->fetch_add(1), 0);
    Claimed.fetch_add(1);
  }
  Done.store(true);
  for (std::thread &T : Thieves)
    T.join();
  EXPECT_EQ(Claimed.load(), NumItems);
  for (const std::atomic<int> &C : Claims)
    EXPECT_EQ(C.load(), 1);
}

TEST(SchedulerTest, HardwareThreadsAtLeastOne) {
  EXPECT_GE(Scheduler::hardwareThreads(), 1u);
}

TEST(SchedulerTest, DefaultSizeMatchesHardware) {
  Scheduler Sched;
  EXPECT_EQ(Sched.size(), Scheduler::hardwareThreads());
}

TEST(SchedulerTest, SubmittedTasksRunAndWaitReturns) {
  Scheduler Sched(2);
  std::atomic<uint64_t> Sum{0};
  std::vector<TaskHandle> Tasks;
  for (uint64_t I = 1; I <= 500; ++I)
    Tasks.push_back(
        Sched.submit(TaskClass::Jobs, [&Sum, I] { Sum.fetch_add(I); }));
  for (TaskHandle &T : Tasks) {
    T.wait();
    EXPECT_TRUE(T.ran());
  }
  EXPECT_EQ(Sum.load(), 500u * 501u / 2);
}

TEST(SchedulerTest, GetRethrowsTaskException) {
  Scheduler Sched(2);
  TaskHandle T = Sched.submit(TaskClass::Jobs,
                              [] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(T.get(), std::runtime_error);
  // A task that threw did not "run to completion".
  EXPECT_FALSE(T.ran());
}

TEST(SchedulerTest, JobsOutrankLocalityOutranksSpeculation) {
  // Occupy the lone worker, enqueue one task per class in *ascending*
  // priority order, then release: the worker must drain the injectors
  // in class order — Jobs, Locality, Speculation — regardless of
  // submission order.
  Scheduler Sched(1);
  std::atomic<bool> Release{false};
  TaskHandle Gate = Sched.submit(TaskClass::Jobs, [&Release] {
    while (!Release.load())
      std::this_thread::yield();
  });
  std::mutex OrderMutex;
  std::vector<TaskClass> Order;
  auto Record = [&](TaskClass C) {
    std::lock_guard<std::mutex> Lock(OrderMutex);
    Order.push_back(C);
  };
  std::vector<TaskHandle> Tasks;
  for (TaskClass C : {TaskClass::Speculation, TaskClass::Locality,
                      TaskClass::Jobs})
    Tasks.push_back(Sched.submit(C, [&Record, C] { Record(C); }));
  Release.store(true);
  for (TaskHandle &T : Tasks)
    T.wait();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], TaskClass::Jobs);
  EXPECT_EQ(Order[1], TaskClass::Locality);
  EXPECT_EQ(Order[2], TaskClass::Speculation);
}

TEST(SchedulerTest, CancelPendingTaskSkipsExecution) {
  Scheduler Sched(1);
  std::atomic<bool> Release{false};
  TaskHandle Gate = Sched.submit(TaskClass::Jobs, [&Release] {
    while (!Release.load())
      std::this_thread::yield();
  });
  std::atomic<bool> Ran{false};
  TaskHandle Task =
      Sched.submit(TaskClass::Speculation, [&Ran] { Ran.store(true); });
  ASSERT_TRUE(Task.valid());
  EXPECT_TRUE(Task.cancel());
  EXPECT_FALSE(Task.cancel()) << "second cancel must report failure";
  EXPECT_FALSE(Task.runInline()) << "cancelled tasks cannot be claimed";
  Release.store(true);
  Gate.wait();
  Task.wait(); // returns without the shell having drained yet
  EXPECT_FALSE(Ran.load());
  EXPECT_FALSE(Task.ran());
}

TEST(SchedulerTest, CancelRunningTaskFailsAndTaskCompletes) {
  Scheduler Sched(1);
  std::atomic<bool> Started{false}, Release{false}, Ran{false};
  TaskHandle Task = Sched.submit(TaskClass::Jobs, [&] {
    Started.store(true);
    while (!Release.load())
      std::this_thread::yield();
    Ran.store(true);
  });
  while (!Started.load())
    std::this_thread::yield();
  EXPECT_FALSE(Task.cancel()) << "a started task cannot be retracted";
  Release.store(true);
  Task.wait();
  EXPECT_TRUE(Ran.load());
  EXPECT_TRUE(Task.ran());
}

TEST(SchedulerTest, RunInlineClaimsPendingTask) {
  Scheduler Sched(1);
  std::atomic<bool> Release{false};
  TaskHandle Gate = Sched.submit(TaskClass::Jobs, [&Release] {
    while (!Release.load())
      std::this_thread::yield();
  });
  std::atomic<bool> Ran{false};
  TaskHandle Task =
      Sched.submit(TaskClass::Speculation, [&Ran] { Ran.store(true); });
  // The worker is blocked, so the claim must succeed on this thread.
  EXPECT_TRUE(Task.runInline());
  EXPECT_TRUE(Ran.load());
  EXPECT_TRUE(Task.ran());
  EXPECT_FALSE(Task.cancel()) << "an executed task cannot be retracted";
  EXPECT_FALSE(Task.runInline()) << "a task only runs once";
  Release.store(true);
  Gate.wait();
  SchedulerStats Stats = Sched.stats();
  EXPECT_EQ(Stats.RanInline, 1u);
}

TEST(SchedulerTest, CancellationArbitratesCorrectlyUnderStealing) {
  // The satellite regression test for cancel-vs-steal: a worker-side
  // producer floods its own deque (so other workers claim via steals),
  // while this thread races cancel() against the claims. The Phase CAS
  // must hand every task to exactly one fate: executed on some thread,
  // or cancelled and never run. Run under TSan in CI, this checks the
  // cross-thread publication of the task body as well.
  constexpr size_t NumTasks = 4000;
  Scheduler Sched(4);
  std::vector<std::atomic<int>> Ran(NumTasks);
  for (std::atomic<int> &R : Ran)
    R.store(0);
  std::vector<TaskHandle> Handles(NumTasks);
  std::atomic<size_t> Published{0};
  TaskHandle Producer = Sched.submit(TaskClass::Jobs, [&] {
    for (size_t I = 0; I != NumTasks; ++I) {
      // Submitted from a worker: lands in its own deque, so every
      // execution by the other three workers is a steal.
      Handles[I] = Sched.submit(TaskClass::Speculation, [&Ran, I] {
        EXPECT_EQ(Ran[I].fetch_add(1), 0);
      });
      Published.store(I + 1, std::memory_order_release);
    }
  });
  size_t Cancelled = 0;
  for (size_t I = 0; I != NumTasks; ++I) {
    while (Published.load(std::memory_order_acquire) <= I)
      std::this_thread::yield();
    if (I % 3 == 0 && Handles[I].cancel())
      ++Cancelled;
  }
  Producer.wait();
  size_t Executed = 0;
  for (size_t I = 0; I != NumTasks; ++I) {
    Handles[I].wait();
    if (Handles[I].ran()) {
      ++Executed;
      EXPECT_EQ(Ran[I].load(), 1);
    } else {
      EXPECT_EQ(Ran[I].load(), 0) << "a cancelled task must never run";
    }
  }
  EXPECT_EQ(Executed + Cancelled, NumTasks);
  SchedulerStats Stats = Sched.stats();
  EXPECT_EQ(Stats.Cancelled, Cancelled);
  EXPECT_EQ(Stats.Executed[2] + Stats.RanInline, Executed);
}

TEST(SchedulerTest, ParallelForCoversEveryIndexExactlyOnce) {
  Scheduler Sched(4);
  std::vector<std::atomic<int>> Hits(100);
  for (std::atomic<int> &H : Hits)
    H.store(0);
  Sched.parallelFor(0, Hits.size(),
                    [&Hits](size_t I) { Hits[I].fetch_add(1); });
  for (const std::atomic<int> &Hit : Hits)
    EXPECT_EQ(Hit.load(), 1);
}

TEST(SchedulerTest, ParallelForEmptyRangeIsANoOp) {
  Scheduler Sched(2);
  int Calls = 0;
  Sched.parallelFor(5, 5, [&Calls](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
}

TEST(SchedulerTest, ParallelForHonorsConcurrencyCap) {
  Scheduler Sched(4);
  std::atomic<int> Active{0}, MaxActive{0};
  Sched.parallelFor(
      0, 64,
      [&](size_t) {
        int Now = Active.fetch_add(1) + 1;
        int Seen = MaxActive.load();
        while (Now > Seen && !MaxActive.compare_exchange_weak(Seen, Now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        Active.fetch_sub(1);
      },
      /*MaxConcurrency=*/2);
  EXPECT_LE(MaxActive.load(), 2);
}

TEST(SchedulerTest, ParallelForRethrowsFirstExceptionInIndexOrder) {
  Scheduler Sched(4);
  std::atomic<int> Completed{0};
  try {
    Sched.parallelFor(0, 32, [&Completed](size_t I) {
      if (I == 3)
        throw std::runtime_error("index 3");
      if (I == 20)
        throw std::logic_error("index 20");
      Completed.fetch_add(1);
    });
    FAIL() << "parallelFor should have thrown";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "index 3");
  }
  // Every non-throwing iteration still ran despite the exceptions.
  EXPECT_EQ(Completed.load(), 30);
}

TEST(SchedulerTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> Done{0};
  {
    Scheduler Sched(1);
    // The first task blocks the lone worker long enough for the rest to
    // pile up; all of them must still run before the destructor returns.
    for (int I = 0; I != 8; ++I)
      Sched.submit(TaskClass::Jobs, [&Done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        Done.fetch_add(1);
      });
  }
  EXPECT_EQ(Done.load(), 8);
}

TEST(SchedulerTest, CancelledQueuedTasksDrainWithoutRunning) {
  std::atomic<int> Executed{0};
  std::vector<TaskHandle> Tasks;
  {
    Scheduler Sched(1);
    std::atomic<bool> Release{false};
    Sched.submit(TaskClass::Jobs, [&Release] {
      while (!Release.load())
        std::this_thread::yield();
    });
    for (int I = 0; I != 8; ++I)
      Tasks.push_back(Sched.submit(
          TaskClass::Jobs, [&Executed] { Executed.fetch_add(1); }));
    for (size_t I = 0; I != Tasks.size(); I += 2)
      EXPECT_TRUE(Tasks[I].cancel());
    Release.store(true);
    // Scheduler destructor drains the queue: cancelled shells are no-ops.
  }
  EXPECT_EQ(Executed.load(), 4);
  for (size_t I = 0; I != Tasks.size(); ++I)
    EXPECT_EQ(Tasks[I].ran(), I % 2 == 1);
}

TEST(SchedulerTest, DefaultConstructedHandleIsInvalid) {
  TaskHandle Task;
  EXPECT_FALSE(Task.valid());
  EXPECT_FALSE(Task.cancel());
  EXPECT_FALSE(Task.runInline());
  EXPECT_FALSE(Task.ran());
  Task.wait(); // no-op, must not crash
}

TEST(SchedulerTest, HandleCopiesShareTheTask) {
  Scheduler Sched(1);
  std::atomic<bool> Release{false};
  TaskHandle Gate = Sched.submit(TaskClass::Jobs, [&Release] {
    while (!Release.load())
      std::this_thread::yield();
  });
  TaskHandle A = Sched.submit(TaskClass::Jobs, [] {});
  TaskHandle B = A;
  EXPECT_TRUE(A.cancel());
  EXPECT_FALSE(B.cancel()) << "the copy observes the shared cancellation";
  TaskHandle C = std::move(A);
  EXPECT_FALSE(A.valid());
  EXPECT_TRUE(C.valid());
  Release.store(true);
  Gate.wait();
}

TEST(SchedulerTest, StatsCountSubmissionsPerClass) {
  Scheduler Sched(2);
  std::vector<TaskHandle> Tasks;
  for (int I = 0; I != 3; ++I)
    Tasks.push_back(Sched.submit(TaskClass::Jobs, [] {}));
  for (int I = 0; I != 2; ++I)
    Tasks.push_back(Sched.submit(TaskClass::Locality, [] {}));
  Tasks.push_back(Sched.submit(TaskClass::Speculation, [] {}));
  for (TaskHandle &T : Tasks)
    T.wait();
  SchedulerStats Stats = Sched.stats();
  EXPECT_EQ(Stats.Submitted[0], 3u);
  EXPECT_EQ(Stats.Submitted[1], 2u);
  EXPECT_EQ(Stats.Submitted[2], 1u);
  EXPECT_EQ(Stats.submitted(), 6u);
  EXPECT_EQ(Stats.executed() + Stats.RanInline, 6u);
  EXPECT_EQ(Stats.Cancelled, 0u);
  // Delta against an empty baseline is the snapshot itself.
  SchedulerStats Delta = Stats.minus(SchedulerStats());
  EXPECT_EQ(Delta.submitted(), Stats.submitted());
}
