//===- tests/support/CommandLineTest.cpp - Flag parser tests --------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <gtest/gtest.h>

#include <climits>

using namespace pfuzz;

static CommandLine parse(std::vector<const char *> Args) {
  Args.insert(Args.begin(), "prog");
  return CommandLine(static_cast<int>(Args.size()), Args.data());
}

TEST(CommandLineTest, ParsesKeyValueFlags) {
  CommandLine C = parse({"--seed=42", "--subject=json"});
  EXPECT_TRUE(C.ok());
  EXPECT_EQ(C.getInt("seed", 0), 42);
  EXPECT_EQ(C.getString("subject", ""), "json");
}

TEST(CommandLineTest, BareFlagIsTrue) {
  CommandLine C = parse({"--verbose"});
  EXPECT_TRUE(C.getBool("verbose", false));
}

TEST(CommandLineTest, DefaultsWhenAbsent) {
  CommandLine C = parse({});
  EXPECT_EQ(C.getInt("n", 7), 7);
  EXPECT_EQ(C.getString("s", "x"), "x");
  EXPECT_FALSE(C.getBool("b", false));
  EXPECT_TRUE(C.getBool("b2", true));
}

TEST(CommandLineTest, MalformedIntFallsBack) {
  CommandLine C = parse({"--n=abc", "--m=12x"});
  EXPECT_EQ(C.getInt("n", -1), -1);
  EXPECT_EQ(C.getInt("m", -1), -1);
}

TEST(CommandLineTest, NegativeInt) {
  CommandLine C = parse({"--n=-5"});
  EXPECT_EQ(C.getInt("n", 0), -5);
}

TEST(CommandLineTest, PositionalArguments) {
  CommandLine C = parse({"alpha", "--x=1", "beta"});
  ASSERT_EQ(C.positional().size(), 2u);
  EXPECT_EQ(C.positional()[0], "alpha");
  EXPECT_EQ(C.positional()[1], "beta");
}

TEST(CommandLineTest, DoubleDashRejected) {
  CommandLine C = parse({"--"});
  EXPECT_FALSE(C.ok());
}

TEST(CommandLineTest, UnqueriedFlagsReported) {
  CommandLine C = parse({"--known=1", "--typo=2"});
  (void)C.getInt("known", 0);
  auto Unused = C.unqueried();
  ASSERT_EQ(Unused.size(), 1u);
  EXPECT_EQ(Unused[0], "typo");
}

TEST(CommandLineTest, GetCountAcceptsValidValues) {
  CommandLine C = parse({"--jobs=4", "--speculate=-1"});
  EXPECT_EQ(C.getCount("jobs", 1), 4);
  EXPECT_EQ(C.getCount("speculate", 0, /*Min=*/-1), -1);
  EXPECT_EQ(C.getCount("absent", 9), 9);
  EXPECT_TRUE(C.ok());
  EXPECT_TRUE(C.errors().empty());
}

TEST(CommandLineTest, GetCountRejectsGarbage) {
  // Where getInt silently falls back, a count flag must turn the whole
  // parse into a usage error naming the flag and the offending value.
  CommandLine C = parse({"--run-cache=abc"});
  EXPECT_EQ(C.getCount("run-cache", 64), 64);
  EXPECT_FALSE(C.ok());
  ASSERT_EQ(C.errors().size(), 1u);
  EXPECT_NE(C.errors()[0].find("--run-cache"), std::string::npos);
  EXPECT_NE(C.errors()[0].find("abc"), std::string::npos);
}

TEST(CommandLineTest, GetCountRejectsNegativeAndTrailingJunk) {
  CommandLine C = parse({"--jobs=-2", "--resume-cache=12x", "--depth="});
  EXPECT_EQ(C.getCount("jobs", 1), 1);
  EXPECT_EQ(C.getCount("resume-cache", 0), 0);
  EXPECT_EQ(C.getCount("depth", 3), 3);
  EXPECT_FALSE(C.ok());
  EXPECT_EQ(C.errors().size(), 3u);
}

TEST(CommandLineTest, GetCountHonorsSentinelFloor) {
  // --speculate admits -1 (auto) but nothing below it.
  CommandLine C = parse({"--speculate=-2"});
  EXPECT_EQ(C.getCount("speculate", 0, /*Min=*/-1), 0);
  EXPECT_FALSE(C.ok());
  ASSERT_EQ(C.errors().size(), 1u);
  EXPECT_NE(C.errors()[0].find(">= -1"), std::string::npos);
}

TEST(CommandLineTest, IntBoundariesExactValuesAccepted) {
  // The extreme representable values parse exactly; one past either end
  // must NOT saturate to them (see the rejection tests below).
  CommandLine C = parse({"--max=9223372036854775807",
                         "--min=-9223372036854775808"});
  EXPECT_EQ(C.getInt("max", 0), INT64_MAX);
  EXPECT_EQ(C.getInt("min", 0), INT64_MIN);
  EXPECT_EQ(C.getCount("max", 0), INT64_MAX);
}

TEST(CommandLineTest, IntOverflowFallsBackInsteadOfSaturating) {
  // strtoll clamps out-of-range input to LLONG_MAX/LLONG_MIN with
  // errno=ERANGE; getInt must not hand that clamp to the caller —
  // "--execs=<too many digits>" would silently run a near-unbounded
  // campaign instead of surfacing the typo.
  CommandLine C = parse({"--a=9223372036854775808",
                         "--b=-9223372036854775809",
                         "--c=18446744073709551616",
                         "--d=99999999999999999999999999"});
  EXPECT_EQ(C.getInt("a", -7), -7);
  EXPECT_EQ(C.getInt("b", -7), -7);
  EXPECT_EQ(C.getInt("c", -7), -7);
  EXPECT_EQ(C.getInt("d", -7), -7);
}

TEST(CommandLineTest, GetCountRejectsIntBoundaryOverflow) {
  // Same boundary discipline as getInt, but loud: counts push a usage
  // error instead of silently keeping the default.
  CommandLine C = parse({"--jobs=9223372036854775808",
                         "--runs=18446744073709551616"});
  EXPECT_EQ(C.getCount("jobs", 1), 1);
  EXPECT_EQ(C.getCount("runs", 3), 3);
  EXPECT_FALSE(C.ok());
  EXPECT_EQ(C.errors().size(), 2u);
}

TEST(CommandLineTest, PlusPrefixedIntegersAccepted) {
  // strtoll admits an explicit sign; pin that so a future rewrite with a
  // stricter hand-rolled parser fails this test rather than silently
  // changing flag acceptance.
  CommandLine C = parse({"--n=+5", "--jobs=+8"});
  EXPECT_EQ(C.getInt("n", 0), 5);
  EXPECT_EQ(C.getCount("jobs", 1), 8);
  EXPECT_TRUE(C.errors().empty());
}

TEST(CommandLineTest, NonAsciiDigitsRejected) {
  // Locale or Unicode digits (Arabic-Indic five here) never parse —
  // strtoll is byte-oriented and stops at the first non-ASCII byte.
  CommandLine C = parse({"--n=\xd9\xa5", "--jobs=\xd9\xa5"});
  EXPECT_EQ(C.getInt("n", -7), -7);
  EXPECT_EQ(C.getCount("jobs", 1), 1);
  EXPECT_FALSE(C.ok());
  EXPECT_EQ(C.errors().size(), 1u);
}

TEST(CommandLineTest, HexAndWhitespaceForms) {
  // Base-10 only: hex rejects. Leading whitespace is consumed by
  // strtoll (pinned, not endorsed); trailing whitespace is junk.
  CommandLine C = parse({"--hex=0x10", "--lead= 5", "--trail=5 "});
  EXPECT_EQ(C.getInt("hex", -7), -7);
  EXPECT_EQ(C.getInt("lead", -7), 5);
  EXPECT_EQ(C.getInt("trail", -7), -7);
}

TEST(CommandLineTest, BoolParsesCommonSpellings) {
  CommandLine C = parse({"--a=true", "--b=1", "--c=false", "--d=0"});
  EXPECT_TRUE(C.getBool("a", false));
  EXPECT_TRUE(C.getBool("b", false));
  EXPECT_FALSE(C.getBool("c", true));
  EXPECT_FALSE(C.getBool("d", true));
}
