//===- tests/support/ThreadPoolTest.cpp - Worker pool tests ---------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace pfuzz;

TEST(ThreadPoolTest, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPoolTest, DefaultSizeMatchesHardware) {
  ThreadPool Pool;
  EXPECT_EQ(Pool.size(), ThreadPool::hardwareThreads());
}

TEST(ThreadPoolTest, SingleThreadPoolRunsTasksInSubmissionOrder) {
  ThreadPool Pool(1);
  std::vector<int> Order;
  std::vector<std::future<void>> Futures;
  for (int I = 0; I != 16; ++I)
    Futures.push_back(Pool.submit([&Order, I] { Order.push_back(I); }));
  for (std::future<void> &F : Futures)
    F.wait();
  ASSERT_EQ(Order.size(), 16u);
  for (int I = 0; I != 16; ++I)
    EXPECT_EQ(Order[static_cast<size_t>(I)], I);
}

TEST(ThreadPoolTest, SubmitReturnsFutureCarryingException) {
  ThreadPool Pool(2);
  std::future<void> F =
      Pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(F.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(100);
  Pool.parallelFor(0, Hits.size(),
                   [&Hits](size_t I) { Hits[I].fetch_add(1); });
  for (const std::atomic<int> &Hit : Hits)
    EXPECT_EQ(Hit.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsANoOp) {
  ThreadPool Pool(2);
  int Calls = 0;
  Pool.parallelFor(5, 5, [&Calls](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstExceptionInIndexOrder) {
  ThreadPool Pool(4);
  std::atomic<int> Completed{0};
  try {
    Pool.parallelFor(0, 32, [&Completed](size_t I) {
      if (I == 3)
        throw std::runtime_error("index 3");
      if (I == 20)
        throw std::logic_error("index 20");
      Completed.fetch_add(1);
    });
    FAIL() << "parallelFor should have thrown";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "index 3");
  }
  // Every non-throwing iteration still ran despite the exceptions.
  EXPECT_EQ(Completed.load(), 30);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> Done{0};
  {
    ThreadPool Pool(1);
    // The first task blocks the lone worker long enough for the rest to
    // pile up in the queue; all of them must still run before the
    // destructor returns.
    for (int I = 0; I != 8; ++I)
      Pool.submit([&Done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        Done.fetch_add(1);
      });
  }
  EXPECT_EQ(Done.load(), 8);
}

TEST(ThreadPoolTest, ManyTasksAcrossManyWorkers) {
  ThreadPool Pool(8);
  std::atomic<uint64_t> Sum{0};
  std::vector<std::future<void>> Futures;
  for (uint64_t I = 1; I <= 500; ++I)
    Futures.push_back(Pool.submit([&Sum, I] { Sum.fetch_add(I); }));
  for (std::future<void> &F : Futures)
    F.wait();
  EXPECT_EQ(Sum.load(), 500u * 501u / 2);
}

TEST(ThreadPoolTest, CancelPendingTaskSkipsExecution) {
  ThreadPool Pool(1);
  std::atomic<bool> Release{false};
  // Occupy the lone worker so the second task stays pending.
  std::future<void> Gate = Pool.submit([&Release] {
    while (!Release.load())
      std::this_thread::yield();
  });
  std::atomic<bool> Ran{false};
  CancellableTask Task =
      Pool.submitCancellable([&Ran] { Ran.store(true); });
  ASSERT_TRUE(Task.valid());
  EXPECT_TRUE(Task.cancel());
  EXPECT_FALSE(Task.cancel()) << "second cancel must report failure";
  Release.store(true);
  Gate.wait();
  // The cancelled shell drains through the queue as a no-op.
  Task.wait();
  EXPECT_FALSE(Ran.load());
  EXPECT_FALSE(Task.ran());
}

TEST(ThreadPoolTest, CancelRunningTaskFailsAndTaskCompletes) {
  ThreadPool Pool(1);
  std::atomic<bool> Started{false}, Release{false}, Ran{false};
  CancellableTask Task = Pool.submitCancellable([&] {
    Started.store(true);
    while (!Release.load())
      std::this_thread::yield();
    Ran.store(true);
  });
  while (!Started.load())
    std::this_thread::yield();
  EXPECT_FALSE(Task.cancel()) << "a started task cannot be retracted";
  Release.store(true);
  Task.wait();
  EXPECT_TRUE(Ran.load());
  EXPECT_TRUE(Task.ran());
}

TEST(ThreadPoolTest, CancelledQueuedTasksDrainWithoutRunning) {
  std::atomic<int> Executed{0};
  std::vector<CancellableTask> Tasks;
  {
    ThreadPool Pool(1);
    std::atomic<bool> Release{false};
    Pool.submit([&Release] {
      while (!Release.load())
        std::this_thread::yield();
    });
    for (int I = 0; I != 8; ++I)
      Tasks.push_back(
          Pool.submitCancellable([&Executed] { Executed.fetch_add(1); }));
    for (size_t I = 0; I != Tasks.size(); I += 2)
      EXPECT_TRUE(Tasks[I].cancel());
    Release.store(true);
    // Pool destructor drains the queue: cancelled shells are no-ops.
  }
  EXPECT_EQ(Executed.load(), 4);
  for (size_t I = 0; I != Tasks.size(); ++I)
    EXPECT_EQ(Tasks[I].ran(), I % 2 == 1);
}

TEST(ThreadPoolTest, WaitOnCancelledTaskReturns) {
  ThreadPool Pool(1);
  std::atomic<bool> Release{false};
  std::future<void> Gate = Pool.submit([&Release] {
    while (!Release.load())
      std::this_thread::yield();
  });
  CancellableTask Task = Pool.submitCancellable([] {});
  ASSERT_TRUE(Task.cancel());
  Release.store(true);
  Task.wait(); // must not deadlock on the never-executed body
  EXPECT_FALSE(Task.ran());
  Gate.wait();
}

TEST(ThreadPoolTest, DefaultConstructedCancellableTaskIsInvalid) {
  CancellableTask Task;
  EXPECT_FALSE(Task.valid());
  EXPECT_FALSE(Task.cancel());
  EXPECT_FALSE(Task.ran());
  Task.wait(); // no-op, must not crash
}
