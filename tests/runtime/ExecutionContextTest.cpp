//===- tests/runtime/ExecutionContextTest.cpp - Runtime tests -------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecutionContext.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(ExecutionContextTest, ReadsCharactersWithTaints) {
  ExecutionContext Ctx("ab");
  TChar A = Ctx.nextChar();
  EXPECT_EQ(A.ch(), 'a');
  EXPECT_TRUE(A.taint().contains(0));
  TChar B = Ctx.nextChar();
  EXPECT_EQ(B.ch(), 'b');
  EXPECT_TRUE(B.taint().contains(1));
}

TEST(ExecutionContextTest, ReadPastEndRecordsEofAccess) {
  ExecutionContext Ctx("x");
  Ctx.nextChar();
  TChar Eof = Ctx.nextChar();
  EXPECT_TRUE(Eof.isEof());
  // The EOF sentinel carries the accessed index.
  EXPECT_TRUE(Eof.taint().contains(1));
  Ctx.setExitCode(1);
  RunResult RR = Ctx.takeResult();
  ASSERT_TRUE(RR.hitEof());
  EXPECT_EQ(RR.EofAccesses[0].AccessIndex, 1u);
}

TEST(ExecutionContextTest, PeekDoesNotConsume) {
  ExecutionContext Ctx("xy");
  EXPECT_EQ(Ctx.peekChar().ch(), 'x');
  EXPECT_EQ(Ctx.peekChar(1).ch(), 'y');
  EXPECT_EQ(Ctx.position(), 0u);
  EXPECT_EQ(Ctx.nextChar().ch(), 'x');
}

TEST(ExecutionContextTest, PeekPastEndRecordsEof) {
  ExecutionContext Ctx("x");
  Ctx.peekChar(3);
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  ASSERT_EQ(RR.EofAccesses.size(), 1u);
  EXPECT_EQ(RR.EofAccesses[0].AccessIndex, 3u);
}

TEST(ExecutionContextTest, RepeatedPeeksAtSameCursorRecordOneEofAccess) {
  // A parser polling past the end at one position (peeking in a loop
  // before erroring out) observes the missing input once; duplicate
  // EofEvents would skew the substitution heuristic's EOF evidence.
  ExecutionContext Ctx("x");
  for (int I = 0; I != 5; ++I)
    EXPECT_TRUE(Ctx.peekChar(2).isEof());
  Ctx.setExitCode(1);
  RunResult RR = Ctx.takeResult();
  ASSERT_EQ(RR.EofAccesses.size(), 1u);
  EXPECT_EQ(RR.EofAccesses[0].AccessIndex, 2u);
}

TEST(ExecutionContextTest, AlternatingPastEndIndicesRecordSeparately) {
  // The dedup collapses only consecutive same-index accesses — distinct
  // positions (and returns to an earlier one) are distinct evidence.
  ExecutionContext Ctx("x");
  Ctx.peekChar(1);
  Ctx.peekChar(2);
  Ctx.peekChar(1);
  Ctx.setExitCode(1);
  RunResult RR = Ctx.takeResult();
  ASSERT_EQ(RR.EofAccesses.size(), 3u);
  EXPECT_EQ(RR.EofAccesses[0].AccessIndex, 1u);
  EXPECT_EQ(RR.EofAccesses[1].AccessIndex, 2u);
  EXPECT_EQ(RR.EofAccesses[2].AccessIndex, 1u);
}

TEST(ExecutionContextTest, ConsumingPastEndReadsAdvanceTheIndex) {
  // nextChar keeps consuming past the end, so a read loop records one
  // event per position, not one per call at a stuck cursor.
  ExecutionContext Ctx("");
  Ctx.nextChar();
  Ctx.nextChar();
  Ctx.setExitCode(1);
  RunResult RR = Ctx.takeResult();
  ASSERT_EQ(RR.EofAccesses.size(), 2u);
  EXPECT_EQ(RR.EofAccesses[0].AccessIndex, 0u);
  EXPECT_EQ(RR.EofAccesses[1].AccessIndex, 1u);
}

TEST(ExecutionContextTest, UngetRewindsOnePosition) {
  ExecutionContext Ctx("ab");
  Ctx.nextChar();
  Ctx.ungetChar();
  EXPECT_EQ(Ctx.nextChar().ch(), 'a');
}

TEST(ExecutionContextTest, CmpEqRecordsEvent) {
  ExecutionContext Ctx("a");
  TChar A = Ctx.nextChar();
  EXPECT_FALSE(Ctx.cmpEq(A, 'b'));
  EXPECT_TRUE(Ctx.cmpEq(A, 'a'));
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  ASSERT_EQ(RR.Comparisons.size(), 2u);
  EXPECT_EQ(RR.Comparisons[0].Kind, CompareKind::CharEq);
  EXPECT_EQ(RR.expected(RR.Comparisons[0]), "b");
  EXPECT_EQ(RR.actual(RR.Comparisons[0]), "a");
  EXPECT_FALSE(RR.Comparisons[0].Matched);
  EXPECT_TRUE(RR.Comparisons[1].Matched);
  EXPECT_TRUE(RR.Comparisons[0].Taint.contains(0));
}

TEST(ExecutionContextTest, CmpRangeUnsignedSemantics) {
  std::string Input;
  Input.push_back(static_cast<char>(0xF0));
  ExecutionContext Ctx(Input);
  TChar C = Ctx.nextChar();
  // As unsigned bytes 0xF0 is not within ['0', '9'].
  EXPECT_FALSE(Ctx.cmpRange(C, '0', '9'));
  // But it is within [0x80, 0xFF].
  EXPECT_TRUE(Ctx.cmpRange(C, static_cast<char>(0x80),
                           static_cast<char>(0xFF)));
}

TEST(ExecutionContextTest, CmpSetMatchesMembers) {
  ExecutionContext Ctx("+");
  TChar C = Ctx.nextChar();
  EXPECT_TRUE(Ctx.cmpSet(C, "+-"));
  EXPECT_FALSE(Ctx.cmpSet(C, "*/"));
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  EXPECT_EQ(RR.Comparisons[0].Kind, CompareKind::CharSet);
  EXPECT_EQ(RR.expected(RR.Comparisons[0]), "+-");
}

TEST(ExecutionContextTest, EofNeverMatchesComparisons) {
  ExecutionContext Ctx("");
  TChar Eof = Ctx.nextChar();
  EXPECT_FALSE(Ctx.cmpEq(Eof, 'a'));
  EXPECT_FALSE(Ctx.cmpRange(Eof, 'a', 'z'));
  EXPECT_FALSE(Ctx.cmpSet(Eof, "abc"));
  Ctx.setExitCode(1);
  RunResult RR = Ctx.takeResult();
  for (const ComparisonEvent &E : RR.Comparisons)
    EXPECT_TRUE(E.OnEof);
}

TEST(ExecutionContextTest, CmpStrRecordsFullOperands) {
  ExecutionContext Ctx("whx");
  TString S;
  S.push_back(Ctx.nextChar());
  S.push_back(Ctx.nextChar());
  S.push_back(Ctx.nextChar());
  EXPECT_FALSE(Ctx.cmpStr(S, "while"));
  Ctx.setExitCode(1);
  RunResult RR = Ctx.takeResult();
  ASSERT_EQ(RR.Comparisons.size(), 1u);
  EXPECT_EQ(RR.Comparisons[0].Kind, CompareKind::StrEq);
  EXPECT_EQ(RR.expected(RR.Comparisons[0]), "while");
  EXPECT_EQ(RR.actual(RR.Comparisons[0]), "whx");
  EXPECT_EQ(RR.Comparisons[0].Taint.minIndex(), 0u);
  EXPECT_EQ(RR.Comparisons[0].Taint.maxIndex(), 2u);
}

TEST(ExecutionContextTest, ImplicitFlagPropagates) {
  ExecutionContext Ctx("a");
  TChar C = Ctx.nextChar();
  Ctx.cmpEq(C, 'a', /*Implicit=*/true);
  Ctx.cmpEq(C, 'a', /*Implicit=*/false);
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  EXPECT_TRUE(RR.Comparisons[0].Implicit);
  EXPECT_FALSE(RR.Comparisons[1].Implicit);
}

TEST(ExecutionContextTest, BranchTraceAndCoverage) {
  ExecutionContext Ctx("ab");
  Ctx.recordBranch(0, true);
  Ctx.recordBranch(1, false);
  Ctx.recordBranch(0, true); // repeat
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  ASSERT_EQ(RR.BranchTrace.size(), 3u);
  EXPECT_EQ(RR.BranchTrace[0], 1u);  // (0 << 1) | 1
  EXPECT_EQ(RR.BranchTrace[1], 2u);  // (1 << 1) | 0
  std::vector<uint32_t> Covered = RR.coveredBranches();
  EXPECT_EQ(Covered.size(), 2u);
}

TEST(ExecutionContextTest, CoverageUpToCutsTrace) {
  ExecutionContext Ctx("");
  Ctx.recordBranch(0, true);
  Ctx.recordBranch(1, true);
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  EXPECT_EQ(RR.coveredBranchesUpTo(1).size(), 1u);
  EXPECT_EQ(RR.coveredBranchesUpTo(0).size(), 0u);
  EXPECT_EQ(RR.coveredBranchesUpTo(99).size(), 2u);
}

TEST(ExecutionContextTest, StackDepthTracked) {
  ExecutionContext Ctx("a");
  EXPECT_EQ(Ctx.stackDepth(), 0u);
  {
    ExecutionContext::FunctionScope S1(Ctx, "outer");
    EXPECT_EQ(Ctx.stackDepth(), 1u);
    {
      ExecutionContext::FunctionScope S2(Ctx, "inner");
      EXPECT_EQ(Ctx.stackDepth(), 2u);
      TChar C = Ctx.nextChar();
      Ctx.cmpEq(C, 'a');
    }
  }
  EXPECT_EQ(Ctx.stackDepth(), 0u);
  EXPECT_EQ(Ctx.maxStackDepth(), 2u);
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  EXPECT_EQ(RR.Comparisons[0].StackDepth, 2u);
}

TEST(ExecutionContextTest, CallTraceRecordsEnterExitWithCursor) {
  ExecutionContext Ctx("ab");
  {
    ExecutionContext::FunctionScope Outer(Ctx, "parse");
    Ctx.nextChar();
    {
      ExecutionContext::FunctionScope Inner(Ctx, "parseTail");
      Ctx.nextChar();
    }
  }
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  ASSERT_EQ(RR.CallTrace.size(), 4u);
  ASSERT_EQ(RR.FunctionNames.size(), 2u);
  EXPECT_EQ(RR.FunctionNames[0], "parse");
  EXPECT_EQ(RR.FunctionNames[1], "parseTail");
  EXPECT_EQ(RR.CallTrace[0].NameId, 0);
  EXPECT_EQ(RR.CallTrace[0].Cursor, 0u);
  EXPECT_EQ(RR.CallTrace[1].NameId, 1);
  EXPECT_EQ(RR.CallTrace[1].Cursor, 1u);
  EXPECT_EQ(RR.CallTrace[2].NameId, -1); // exit parseTail
  EXPECT_EQ(RR.CallTrace[2].Cursor, 2u);
  EXPECT_EQ(RR.CallTrace[3].NameId, -1); // exit parse
}

TEST(ExecutionContextTest, CallTraceInternsRepeatedNames) {
  ExecutionContext Ctx("x");
  static const char *Name = "recurse";
  for (int I = 0; I < 3; ++I)
    ExecutionContext::FunctionScope Scope(Ctx, Name);
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  EXPECT_EQ(RR.FunctionNames.size(), 1u);
  EXPECT_EQ(RR.CallTrace.size(), 6u);
}

TEST(ExecutionContextTest, OffModeRecordsNothing) {
  ExecutionContext Ctx("abc", InstrumentationMode::Off);
  TChar C = Ctx.nextChar();
  Ctx.cmpEq(C, 'a');
  Ctx.recordBranch(0, true);
  Ctx.peekChar(10);
  {
    ExecutionContext::FunctionScope Scope(Ctx, "noop");
  }
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  EXPECT_TRUE(RR.Comparisons.empty());
  EXPECT_TRUE(RR.BranchTrace.empty());
  EXPECT_TRUE(RR.EofAccesses.empty());
  EXPECT_TRUE(RR.CallTrace.empty());
}

TEST(ExecutionContextTest, CoverageOnlyRecordsBranchesOnly) {
  ExecutionContext Ctx("abc", InstrumentationMode::CoverageOnly);
  TChar C = Ctx.nextChar();
  Ctx.cmpEq(C, 'a');
  Ctx.recordBranch(0, true);
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  EXPECT_TRUE(RR.Comparisons.empty());
  EXPECT_EQ(RR.BranchTrace.size(), 1u);
}

TEST(ExecutionContextTest, ComparisonOutcomeSameAcrossModes) {
  for (InstrumentationMode Mode :
       {InstrumentationMode::Off, InstrumentationMode::CoverageOnly,
        InstrumentationMode::Full}) {
    ExecutionContext Ctx("q", Mode);
    TChar C = Ctx.nextChar();
    EXPECT_TRUE(Ctx.cmpEq(C, 'q'));
    EXPECT_FALSE(Ctx.cmpEq(C, 'r'));
  }
}
