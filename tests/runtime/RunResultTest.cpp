//===- tests/runtime/RunResultTest.cpp - RunResult edge cases -------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecutionContext.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(RunResultTest, DefaultIsRejecting) {
  RunResult RR;
  EXPECT_NE(RR.ExitCode, 0);
  EXPECT_FALSE(RR.hitEof());
  EXPECT_TRUE(RR.coveredBranches().empty());
}

TEST(RunResultTest, CoveredBranchesDeduplicatesAndSorts) {
  RunResult RR;
  RR.BranchTrace = {9, 3, 9, 1, 3, 1, 9};
  std::vector<uint32_t> Covered = RR.coveredBranches();
  ASSERT_EQ(Covered.size(), 3u);
  EXPECT_EQ(Covered[0], 1u);
  EXPECT_EQ(Covered[1], 3u);
  EXPECT_EQ(Covered[2], 9u);
}

TEST(RunResultTest, EmptyStringComparisonTracked) {
  ExecutionContext Ctx("x");
  TString Empty;
  EXPECT_FALSE(Ctx.cmpStr(Empty, "true"));
  EXPECT_TRUE(Ctx.cmpStr(Empty, ""));
  Ctx.setExitCode(0);
  RunResult RR = Ctx.takeResult();
  ASSERT_EQ(RR.Comparisons.size(), 2u);
  EXPECT_TRUE(RR.Comparisons[0].Taint.empty());
  EXPECT_FALSE(RR.Comparisons[0].Matched);
  EXPECT_TRUE(RR.Comparisons[1].Matched);
}

TEST(RunResultTest, TracePositionOrdersComparisonsAndBranches) {
  ExecutionContext Ctx("ab");
  TChar A = Ctx.nextChar();
  Ctx.recordBranch(0, Ctx.cmpEq(A, 'a'));
  TChar B = Ctx.nextChar();
  Ctx.recordBranch(1, Ctx.cmpEq(B, 'z'));
  Ctx.setExitCode(1);
  RunResult RR = Ctx.takeResult();
  ASSERT_EQ(RR.Comparisons.size(), 2u);
  // Each comparison fires before its branch is recorded.
  EXPECT_EQ(RR.Comparisons[0].TracePosition, 0u);
  EXPECT_EQ(RR.Comparisons[1].TracePosition, 1u);
}

TEST(RunResultTest, RepeatedEofAccessesAllRecorded) {
  ExecutionContext Ctx("");
  Ctx.nextChar();
  Ctx.nextChar();
  Ctx.peekChar();
  Ctx.setExitCode(1);
  RunResult RR = Ctx.takeResult();
  EXPECT_EQ(RR.EofAccesses.size(), 3u);
  // nextChar advances even past the end, so indices grow.
  EXPECT_EQ(RR.EofAccesses[0].AccessIndex, 0u);
  EXPECT_EQ(RR.EofAccesses[1].AccessIndex, 1u);
  EXPECT_EQ(RR.EofAccesses[2].AccessIndex, 2u);
}

TEST(RunResultTest, TakeResultMovesState) {
  ExecutionContext Ctx("a");
  Ctx.recordBranch(0, true);
  Ctx.setExitCode(0);
  RunResult First = Ctx.takeResult();
  EXPECT_EQ(First.BranchTrace.size(), 1u);
}
