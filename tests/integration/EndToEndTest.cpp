//===- tests/integration/EndToEndTest.cpp - Cross-module tests ------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests spanning fuzzers, subjects, token accounting and the
/// campaign harness — small-budget versions of the paper's comparisons
/// whose *shape* must already be visible.
///
//===----------------------------------------------------------------------===//

#include "eval/Campaign.h"
#include "subjects/Subject.h"
#include "tokens/TokenCoverage.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(EndToEndTest, RegistryExposesTheFiveEvaluationSubjects) {
  auto Subjects = evaluationSubjects();
  ASSERT_EQ(Subjects.size(), 5u);
  EXPECT_EQ(Subjects[0]->name(), "ini");
  EXPECT_EQ(Subjects[1]->name(), "csv");
  EXPECT_EQ(Subjects[2]->name(), "json");
  EXPECT_EQ(Subjects[3]->name(), "tinyc");
  EXPECT_EQ(Subjects[4]->name(), "mjs");
  EXPECT_EQ(findSubject("json"), Subjects[2]);
  EXPECT_EQ(findSubject("nope"), nullptr);
}

TEST(EndToEndTest, EverySubjectHasInventoryAndTokenizer) {
  for (const Subject *S : allSubjects()) {
    const TokenInventory &Inv = TokenInventory::forSubject(S->name());
    EXPECT_GT(Inv.size(), 0u) << S->name();
    TokenCoverage Cov(S->name());
    Cov.addInput("1;{}[]");
    SUCCEED();
  }
}

TEST(EndToEndTest, PFuzzerBeatsAflOnJsonKeywords) {
  // The central claim, miniature version: with comparable effort pFuzzer
  // finds long tokens on json that AFL does not.
  CampaignResult P =
      runCampaign(ToolKind::PFuzzer, jsonSubject(), 25000, 1, 1);
  CampaignResult A =
      runCampaign(ToolKind::Afl, jsonSubject(), 50000, 1, 1);
  TokenCoverage PCov("json"), ACov("json");
  for (const std::string &Tok : P.TokensFound)
    EXPECT_TRUE(TokenInventory::forSubject("json").contains(Tok));
  int PLong = 0, ALong = 0;
  for (const std::string &Tok : P.TokensFound)
    if (TokenInventory::forSubject("json").lengthOf(Tok) > 3)
      ++PLong;
  for (const std::string &Tok : A.TokensFound)
    if (TokenInventory::forSubject("json").lengthOf(Tok) > 3)
      ++ALong;
  EXPECT_GT(PLong, ALong);
}

TEST(EndToEndTest, ValidityOracleAgreesWithExitCode) {
  // accepts() (Off mode) and execute() (Full mode) must agree everywhere;
  // fuzzers rely on this.
  const char *Probes[] = {"", " ", "1", "a=1;", "[1]", "x;", "[sec]",
                          "a,b", "(1)", "while(0);", "tru", "{"};
  for (const Subject *S : allSubjects())
    for (const char *Probe : Probes)
      EXPECT_EQ(S->accepts(Probe), S->execute(Probe).ExitCode == 0)
          << S->name() << " on " << Probe;
}

TEST(EndToEndTest, InstrumentationModesAgreeOnExitCode) {
  const char *Probes[] = {"{\"a\":[true]}", "bad{", "while(a<2)a=a+1;"};
  for (const Subject *S : allSubjects()) {
    for (const char *Probe : Probes) {
      int Full = S->execute(Probe, InstrumentationMode::Full).ExitCode;
      int Cov = S->execute(Probe, InstrumentationMode::CoverageOnly).ExitCode;
      int Off = S->execute(Probe, InstrumentationMode::Off).ExitCode;
      EXPECT_EQ(Full, Cov) << S->name() << " on " << Probe;
      EXPECT_EQ(Full, Off) << S->name() << " on " << Probe;
    }
  }
}

TEST(EndToEndTest, SubjectsAreStatelessAcrossRuns) {
  // Repeated executions of the same input yield identical results (no
  // hidden global state — important because fuzzers run millions).
  for (const Subject *S : allSubjects()) {
    RunResult A = S->execute("x=1;");
    RunResult B = S->execute("x=1;");
    EXPECT_EQ(A.ExitCode, B.ExitCode) << S->name();
    EXPECT_EQ(A.BranchTrace, B.BranchTrace) << S->name();
    EXPECT_EQ(A.Comparisons.size(), B.Comparisons.size()) << S->name();
  }
}

TEST(EndToEndTest, DistinctBranchSiteSpacesPerSubject) {
  // Branch site ids are per-subject (per-TU counters); each subject's
  // sites must stay within its own registered range.
  for (const Subject *S : allSubjects()) {
    RunResult RR = S->execute("{\"a\":1} x=1; while(1)");
    for (uint32_t Entry : RR.BranchTrace)
      EXPECT_LT(Entry >> 1, S->numBranchSites()) << S->name();
  }
}
