//===- tests/integration/StabilityTest.cpp - Crash-safety sweeps ----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness sweeps: every subject must terminate (accept or reject, no
/// crash, no hang) on arbitrary byte strings — fuzzers feed them millions
/// of hostile inputs. Parameterised over seeds for breadth.
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

std::string randomBytes(Rng &R, size_t MaxLen) {
  std::string Out;
  size_t Len = R.below(MaxLen + 1);
  Out.reserve(Len);
  for (size_t I = 0; I != Len; ++I)
    Out.push_back(static_cast<char>(R.nextByte()));
  return Out;
}

/// Hostile structured fragments that historically break parsers.
const char *const NastyInputs[] = {
    "\"\\", "\"\\u", "\"\\uD8", "((((((((((", "}}}}}}}}", "[[[[{{{{",
    "while while while", "if(if(if(", "0x", "1e+", "--", "++", "\\",
    "'\\''", "/**/", "\xef\xbb\xbf", "\xff\xfe", "\0\0\0", "=,=,=",
    "[;[;[;", "do do do", "1..1..1", ">>>>>>=", "&&&&&&", "\"\"\"\"",
};

} // namespace

class StabilitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StabilitySweep, RandomBytesNeverCrash) {
  Rng R(GetParam());
  for (const Subject *S : allSubjects()) {
    for (int I = 0; I != 300; ++I) {
      std::string Input = randomBytes(R, 48);
      // All three instrumentation modes must agree and terminate.
      int Full = S->execute(Input, InstrumentationMode::Full).ExitCode;
      int Off = S->execute(Input, InstrumentationMode::Off).ExitCode;
      ASSERT_EQ(Full, Off) << S->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StabilitySweep,
                         ::testing::Values(101, 202, 303, 404));

TEST(StabilityTest, NastyInputsTerminate) {
  for (const Subject *S : allSubjects())
    for (const char *Input : NastyInputs)
      (void)S->execute(Input); // must not crash or hang
  SUCCEED();
}

TEST(StabilityTest, LongHomogeneousInputsTerminate) {
  for (const Subject *S : allSubjects()) {
    for (char C : {'(', '[', '{', '"', 'a', '0', ' ', ';', '\n'}) {
      std::string Input(256, C);
      (void)S->execute(Input);
    }
  }
  SUCCEED();
}

TEST(StabilityTest, EmbeddedNulBytesHandled) {
  for (const Subject *S : allSubjects()) {
    std::string Input = "a";
    Input.push_back('\0');
    Input += "b";
    int Code = S->execute(Input).ExitCode;
    // Re-running gives the same verdict (no hidden state).
    EXPECT_EQ(S->execute(Input).ExitCode, Code) << S->name();
  }
}
