//===- tests/ll1/Ll1TableTest.cpp - Parse table tests ---------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ll1/Ll1Table.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

Cfg balancedParens() {
  Cfg G;
  int32_t S = G.addNonTerminal("S");
  G.addProductionSpec(S, "(<S>)<S>");
  G.addProductionSpec(S, "");
  return G;
}

} // namespace

TEST(Ll1TableTest, BuildsForLl1Grammar) {
  Cfg G = balancedParens();
  std::string Error;
  auto Table = Ll1Table::build(G, &Error);
  ASSERT_TRUE(Table.has_value()) << Error;
  int32_t S = G.addNonTerminal("S");
  // '(' selects the recursive production, ')' and EOF the epsilon one.
  EXPECT_EQ(Table->lookup(S, '('), 0);
  EXPECT_EQ(Table->lookup(S, ')'), 1);
  EXPECT_EQ(Table->lookup(S, '\0'), 1);
  // Unrelated characters hit error cells.
  EXPECT_EQ(Table->lookup(S, 'x'), -1);
}

TEST(Ll1TableTest, DetectsFirstFirstConflict) {
  Cfg G;
  int32_t S = G.addNonTerminal("S");
  G.addProductionSpec(S, "ab");
  G.addProductionSpec(S, "ac"); // both start with 'a'
  std::string Error;
  EXPECT_FALSE(Ll1Table::build(G, &Error).has_value());
  EXPECT_NE(Error.find("conflict"), std::string::npos);
}

TEST(Ll1TableTest, DetectsFirstFollowConflict) {
  // S -> A a; A -> a | eps: 'a' is in FIRST(A) and FOLLOW(A).
  Cfg G;
  int32_t S = G.addNonTerminal("S");
  G.addProductionSpec(S, "<A>a");
  int32_t A = G.addNonTerminal("A");
  G.addProductionSpec(A, "a");
  G.addProductionSpec(A, "");
  std::string Error;
  EXPECT_FALSE(Ll1Table::build(G, &Error).has_value());
}

TEST(Ll1TableTest, ExpectedSetListsNonErrorColumns) {
  Cfg G = balancedParens();
  auto Table = Ll1Table::build(G, nullptr);
  ASSERT_TRUE(Table.has_value());
  const std::vector<char> &Expected = Table->expectedFor(0);
  // '\0', '(' and ')' in sorted order.
  ASSERT_EQ(Expected.size(), 3u);
  EXPECT_EQ(Expected[0], '\0');
  EXPECT_EQ(Expected[1], '(');
  EXPECT_EQ(Expected[2], ')');
}

TEST(Ll1TableTest, CellIndexDense) {
  Cfg G = balancedParens();
  auto Table = Ll1Table::build(G, nullptr);
  ASSERT_TRUE(Table.has_value());
  EXPECT_EQ(Table->numCells(), 129u); // one nonterminal row
  EXPECT_LT(Table->cellIndex(0, '('), Table->numCells());
  EXPECT_LT(Table->cellIndex(0, '\0'), Table->numCells());
}
