//===- tests/ll1/CfgTest.cpp - CFG analysis tests -------------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ll1/Cfg.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

/// The dragon-book running example:
///   E  -> T E'
///   E' -> + T E' | eps
///   T  -> F T'
///   T' -> * F T' | eps
///   F  -> ( E ) | a
Cfg dragonGrammar() {
  Cfg G;
  int32_t E = G.addNonTerminal("E");
  int32_t Ep = G.addNonTerminal("E'");
  int32_t T = G.addNonTerminal("T");
  int32_t Tp = G.addNonTerminal("T'");
  int32_t F = G.addNonTerminal("F");
  G.addProductionSpec(E, "<T><E'>");
  G.addProductionSpec(Ep, "+<T><E'>");
  G.addProductionSpec(Ep, "");
  G.addProductionSpec(T, "<F><T'>");
  G.addProductionSpec(Tp, "*<F><T'>");
  G.addProductionSpec(Tp, "");
  G.addProductionSpec(F, "(<E>)");
  G.addProductionSpec(F, "a");
  return G;
}

std::set<char> setOf(std::initializer_list<char> Chars) {
  return std::set<char>(Chars);
}

} // namespace

TEST(CfgTest, NonTerminalInterning) {
  Cfg G;
  int32_t A = G.addNonTerminal("A");
  int32_t B = G.addNonTerminal("B");
  EXPECT_NE(A, B);
  EXPECT_EQ(G.addNonTerminal("A"), A);
  EXPECT_EQ(G.numNonTerminals(), 2u);
  EXPECT_EQ(G.nameOf(A), "A");
}

TEST(CfgTest, NullableComputation) {
  Cfg G = dragonGrammar();
  EXPECT_FALSE(G.isNullable(G.addNonTerminal("E")));
  EXPECT_TRUE(G.isNullable(G.addNonTerminal("E'")));
  EXPECT_TRUE(G.isNullable(G.addNonTerminal("T'")));
  EXPECT_FALSE(G.isNullable(G.addNonTerminal("F")));
}

TEST(CfgTest, FirstSetsMatchDragonBook) {
  Cfg G = dragonGrammar();
  EXPECT_EQ(G.firstOf(G.addNonTerminal("E")), setOf({'(', 'a'}));
  EXPECT_EQ(G.firstOf(G.addNonTerminal("T")), setOf({'(', 'a'}));
  EXPECT_EQ(G.firstOf(G.addNonTerminal("F")), setOf({'(', 'a'}));
  EXPECT_EQ(G.firstOf(G.addNonTerminal("E'")), setOf({'+'}));
  EXPECT_EQ(G.firstOf(G.addNonTerminal("T'")), setOf({'*'}));
}

TEST(CfgTest, FollowSetsMatchDragonBook) {
  Cfg G = dragonGrammar();
  // FOLLOW(E) = FOLLOW(E') = { ), $ }; $ is '\0' here.
  EXPECT_EQ(G.followOf(G.addNonTerminal("E")), setOf({')', '\0'}));
  EXPECT_EQ(G.followOf(G.addNonTerminal("E'")), setOf({')', '\0'}));
  // FOLLOW(T) = FOLLOW(T') = { +, ), $ }.
  EXPECT_EQ(G.followOf(G.addNonTerminal("T")), setOf({'+', ')', '\0'}));
  // FOLLOW(F) = { +, *, ), $ }.
  EXPECT_EQ(G.followOf(G.addNonTerminal("F")),
            setOf({'+', '*', ')', '\0'}));
}

TEST(CfgTest, FirstOfSequence) {
  Cfg G = dragonGrammar();
  bool Nullable = false;
  // FIRST(E' T) = {+} U FIRST(T) because E' is nullable.
  std::vector<CfgSymbol> Seq = {
      CfgSymbol::nonTerminal(G.addNonTerminal("E'")),
      CfgSymbol::nonTerminal(G.addNonTerminal("T"))};
  EXPECT_EQ(G.firstOfSequence(Seq, Nullable), setOf({'+', '(', 'a'}));
  EXPECT_FALSE(Nullable);
  // A sequence of nullables is nullable.
  std::vector<CfgSymbol> Nulls = {
      CfgSymbol::nonTerminal(G.addNonTerminal("E'")),
      CfgSymbol::nonTerminal(G.addNonTerminal("T'"))};
  G.firstOfSequence(Nulls, Nullable);
  EXPECT_TRUE(Nullable);
}

TEST(CfgTest, ProductionSpecParsesMixedSymbols) {
  Cfg G;
  int32_t S = G.addNonTerminal("S");
  G.addProductionSpec(S, "a<S>b");
  ASSERT_EQ(G.productions().size(), 1u);
  const auto &Rhs = G.productions()[0].Rhs;
  ASSERT_EQ(Rhs.size(), 3u);
  EXPECT_TRUE(Rhs[0].IsTerminal);
  EXPECT_EQ(Rhs[0].Terminal, 'a');
  EXPECT_FALSE(Rhs[1].IsTerminal);
  EXPECT_TRUE(Rhs[2].IsTerminal);
}

TEST(CfgTest, RecursiveNullableChain) {
  // A -> B, B -> C, C -> eps: all nullable through the chain.
  Cfg G;
  int32_t A = G.addNonTerminal("A");
  G.addProductionSpec(A, "<B>");
  G.addProductionSpec(G.addNonTerminal("B"), "<C>");
  G.addProductionSpec(G.addNonTerminal("C"), "");
  EXPECT_TRUE(G.isNullable(A));
}
