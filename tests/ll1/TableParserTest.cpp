//===- tests/ll1/TableParserTest.cpp - Table-driven parser tests ----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ll1/TableParser.h"

#include "core/PFuzzer.h"
#include "subjects/Subject.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

class Ll1ArithAccepts : public ::testing::TestWithParam<const char *> {};
class Ll1ArithRejects : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(Ll1ArithAccepts, Valid) {
  EXPECT_TRUE(ll1ArithSubject().accepts(GetParam())) << GetParam();
}

TEST_P(Ll1ArithRejects, Invalid) {
  EXPECT_FALSE(ll1ArithSubject().accepts(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Paper, Ll1ArithAccepts,
                         ::testing::Values("1", "11", "+1", "-1", "1+1",
                                           "1-1", "(1)", "(2-94)",
                                           "((42))", "-(1)+2"));

INSTANTIATE_TEST_SUITE_P(Basic, Ll1ArithRejects,
                         ::testing::Values("", "A", "(", ")", "+", "1+",
                                           "(1", "1)", "()", "1 1",
                                           "1++1"));

TEST(TableParserTest, AgreesWithRecursiveDescentOnRandomInputs) {
  // The table-driven and recursive-descent parsers implement the same
  // language: cross-validate on random strings over the alphabet.
  Rng R(7);
  const char Alphabet[] = "0123456789+-()";
  for (int I = 0; I != 2000; ++I) {
    std::string Input;
    for (uint64_t J = 0, N = R.below(10); J != N; ++J)
      Input.push_back(Alphabet[R.below(sizeof(Alphabet) - 1)]);
    EXPECT_EQ(arithSubject().accepts(Input),
              ll1ArithSubject().accepts(Input))
        << "disagreement on: " << Input;
  }
}

TEST(TableParserTest, TerminalComparisonsAreTracked) {
  // Section 7.1: "the implicit paths and character comparisons do also
  // exist in a table driven parser" — a rejected input must still leave
  // comparison events for the fuzzer.
  RunResult RR = ll1ArithSubject().execute("A");
  EXPECT_NE(RR.ExitCode, 0);
  bool SawParen = false, SawDigit = false;
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (RR.expected(E) == "(")
      SawParen = true;
    if (RR.expected(E) == "7")
      SawDigit = true;
  }
  EXPECT_TRUE(SawParen);
  EXPECT_TRUE(SawDigit);
}

TEST(TableParserTest, TableElementCoverageRecorded) {
  // Coverage sites are table cells; a parse covers the consulted cells.
  RunResult RR = ll1ArithSubject().execute("(1)+2");
  EXPECT_EQ(RR.ExitCode, 0);
  EXPECT_GT(RR.coveredBranches().size(), 8u);
  for (uint32_t Entry : RR.BranchTrace)
    EXPECT_LT(Entry >> 1, ll1ArithSubject().numBranchSites());
}

TEST(TableParserTest, EofAccessSignalsExtension) {
  RunResult RR = ll1ArithSubject().execute("(1");
  EXPECT_NE(RR.ExitCode, 0);
  EXPECT_TRUE(RR.hitEof());
}

TEST(TableParserTest, HighBytesRejected) {
  std::string Input = "1";
  Input.push_back(static_cast<char>(0xC3));
  EXPECT_FALSE(ll1ArithSubject().accepts(Input));
}

TEST(TableParserTest, PFuzzerWorksOnTableDrivenParser) {
  // The Section 7.1 claim: the search heuristic still works when coverage
  // means table elements.
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 1;
  Opts.MaxExecutions = 6000;
  FuzzReport R = Tool.run(ll1ArithSubject(), Opts);
  ASSERT_FALSE(R.ValidInputs.empty());
  for (const std::string &Input : R.ValidInputs)
    EXPECT_TRUE(ll1ArithSubject().accepts(Input));
  // Structural diversity: parentheses or operators appear.
  bool Structured = false;
  for (const std::string &Input : R.ValidInputs)
    if (Input.find_first_of("()+-") != std::string::npos)
      Structured = true;
  EXPECT_TRUE(Structured);
}

TEST(TableParserTest, PFuzzerOutputsAcceptedByRecursiveDescentTwin) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 2;
  Opts.MaxExecutions = 5000;
  FuzzReport R = Tool.run(ll1ArithSubject(), Opts);
  for (const std::string &Input : R.ValidInputs)
    EXPECT_TRUE(arithSubject().accepts(Input)) << Input;
}

TEST(TableParserTest, EpsilonStartAcceptsEmptyInput) {
  // S -> ( S ) S | eps accepts the empty string through the EOF column.
  Cfg G;
  int32_t S = G.addNonTerminal("S");
  G.addProductionSpec(S, "(<S>)<S>");
  G.addProductionSpec(S, "");
  auto Table = Ll1Table::build(G, nullptr);
  ASSERT_TRUE(Table.has_value());
  ExecutionContext Ctx("");
  EXPECT_EQ(parseWithTable(Ctx, G, *Table), 0);
  ExecutionContext Ctx2("(())()");
  EXPECT_EQ(parseWithTable(Ctx2, G, *Table), 0);
  ExecutionContext Ctx3("(()");
  EXPECT_NE(parseWithTable(Ctx3, G, *Table), 0);
}

TEST(TableParserTest, PFuzzerOutputsAreAllValid) {
  PFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = 9;
  Opts.MaxExecutions = 3000;
  FuzzReport R = Tool.run(ll1ArithSubject(), Opts);
  for (const std::string &Input : R.ValidInputs)
    EXPECT_TRUE(ll1ArithSubject().accepts(Input));
}
