//===- tests/baselines/AflCtpTest.cpp - AFL-CTP mode tests ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Section 6.2 comparison-progress feedback modes of the
/// AFL baseline (laf-intel / AFL-CTP and the paper's per-keyword
/// hypothetical).
///
//===----------------------------------------------------------------------===//

#include "baselines/AflFuzzer.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

FuzzReport fuzz(const Subject &S, CmpFeedback Cmp, uint64_t Execs,
                uint64_t Seed = 1) {
  AflOptions Options;
  Options.Cmp = Cmp;
  AflFuzzer Tool(Options);
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  return Tool.run(S, Opts);
}

} // namespace

TEST(AflCtpTest, AllModesRunAndRespectBudget) {
  for (CmpFeedback Cmp : {CmpFeedback::None, CmpFeedback::SharedSite,
                          CmpFeedback::PerKeyword}) {
    FuzzReport R = fuzz(jsonSubject(), Cmp, 2000);
    EXPECT_LE(R.Executions, 2000u);
    EXPECT_GT(R.Executions, 0u);
  }
}

TEST(AflCtpTest, DeterministicForSameSeed) {
  FuzzReport A = fuzz(jsonSubject(), CmpFeedback::PerKeyword, 3000, 5);
  FuzzReport B = fuzz(jsonSubject(), CmpFeedback::PerKeyword, 3000, 5);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
}

TEST(AflCtpTest, ReportedInputsAreValid) {
  FuzzReport R = fuzz(jsonSubject(), CmpFeedback::PerKeyword, 10000);
  for (const std::string &Input : R.ValidInputs)
    EXPECT_TRUE(jsonSubject().accepts(Input));
}

TEST(AflCtpTest, FeedbackModesDivergeFromPlainAfl) {
  // The extra virgin-map features change the queue schedule, so the
  // campaigns drift apart (weak but deterministic sanity check).
  FuzzReport None = fuzz(tinycSubject(), CmpFeedback::None, 8000, 3);
  FuzzReport PerKw = fuzz(tinycSubject(), CmpFeedback::PerKeyword, 8000, 3);
  EXPECT_NE(None.ValidInputs, PerKw.ValidInputs);
}
