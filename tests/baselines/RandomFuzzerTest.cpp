//===- tests/baselines/RandomFuzzerTest.cpp - Random baseline tests -------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/RandomFuzzer.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

FuzzReport fuzz(const Subject &S, uint64_t Execs, uint64_t Seed = 1) {
  RandomFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  return Tool.run(S, Opts);
}

} // namespace

TEST(RandomFuzzerTest, FindsValidInputsOnPermissiveSubjects) {
  FuzzReport R = fuzz(csvSubject(), 5000);
  EXPECT_FALSE(R.ValidInputs.empty());
}

TEST(RandomFuzzerTest, StrugglesOnStructuredSubjects) {
  // Keywords are out of reach for pure random generation (1 : 26^5).
  FuzzReport R = fuzz(tinycSubject(), 20000);
  for (const std::string &I : R.ValidInputs)
    EXPECT_EQ(I.find("while"), std::string::npos);
}

TEST(RandomFuzzerTest, ReportedInputsAreValid) {
  FuzzReport R = fuzz(iniSubject(), 5000);
  for (const std::string &Input : R.ValidInputs)
    EXPECT_TRUE(iniSubject().accepts(Input));
}

TEST(RandomFuzzerTest, DeterministicForSameSeed) {
  FuzzReport A = fuzz(csvSubject(), 2000, 4);
  FuzzReport B = fuzz(csvSubject(), 2000, 4);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
  EXPECT_EQ(A.Executions, B.Executions);
}

TEST(RandomFuzzerTest, ExactBudget) {
  FuzzReport R = fuzz(csvSubject(), 1234);
  EXPECT_EQ(R.Executions, 1234u);
}
