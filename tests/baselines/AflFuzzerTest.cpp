//===- tests/baselines/AflFuzzerTest.cpp - AFL baseline tests -------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/AflFuzzer.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

FuzzReport fuzz(const Subject &S, uint64_t Execs, uint64_t Seed = 1) {
  AflFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  return Tool.run(S, Opts);
}

} // namespace

TEST(AflFuzzerTest, FindsValidInputsOnShallowSubjects) {
  // ini/csv accept almost anything — AFL's home turf (Section 5.2).
  FuzzReport Ini = fuzz(iniSubject(), 20000);
  EXPECT_FALSE(Ini.ValidInputs.empty());
  FuzzReport Csv = fuzz(csvSubject(), 20000);
  EXPECT_FALSE(Csv.ValidInputs.empty());
}

TEST(AflFuzzerTest, ReportedInputsAreValid) {
  FuzzReport R = fuzz(csvSubject(), 10000);
  for (const std::string &Input : R.ValidInputs)
    EXPECT_TRUE(csvSubject().accepts(Input));
}

TEST(AflFuzzerTest, RespectsBudget) {
  FuzzReport R = fuzz(iniSubject(), 1000);
  EXPECT_LE(R.Executions, 1000u);
}

TEST(AflFuzzerTest, DeterministicForSameSeed) {
  FuzzReport A = fuzz(csvSubject(), 3000, 5);
  FuzzReport B = fuzz(csvSubject(), 3000, 5);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
}

TEST(AflFuzzerTest, CoverageGrowsOverTime) {
  FuzzReport R = fuzz(jsonSubject(), 20000);
  ASSERT_GE(R.CoverageTimeline.size(), 2u);
  EXPECT_GE(R.CoverageTimeline.back().second,
            R.CoverageTimeline.front().second);
  EXPECT_GT(R.ValidBranches.size(), 0u);
}

TEST(AflFuzzerTest, FindsShortJsonTokensButNotKeywords) {
  // The paper: "AFL misses all json keywords" while covering the
  // single-character structure. With a modest budget the same shape
  // appears here.
  FuzzReport R = fuzz(jsonSubject(), 30000);
  bool SawKeyword = false;
  for (const std::string &I : R.ValidInputs)
    if (I.find("true") != std::string::npos ||
        I.find("false") != std::string::npos ||
        I.find("null") != std::string::npos)
      SawKeyword = true;
  EXPECT_FALSE(SawKeyword);
  EXPECT_FALSE(R.ValidInputs.empty());
}
