//===- tests/baselines/KleeFuzzerTest.cpp - KLEE baseline tests -----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/KleeFuzzer.h"

#include "tokens/TokenCoverage.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

FuzzReport fuzz(const Subject &S, uint64_t Execs, uint64_t Seed = 1) {
  KleeFuzzer Tool;
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = Execs;
  return Tool.run(S, Opts);
}

bool anyContains(const std::vector<std::string> &Inputs,
                 std::string_view Needle) {
  for (const std::string &I : Inputs)
    if (I.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(KleeFuzzerTest, SolvesJsonKeywordsViaPathConstraints) {
  // "As KLEE works symbolically, it only needs to find a valid path with
  // a keyword on it; solving the path constraints is then easy" (§5.3).
  FuzzReport R = fuzz(jsonSubject(), 20000);
  EXPECT_TRUE(anyContains(R.ValidInputs, "true"));
  EXPECT_TRUE(anyContains(R.ValidInputs, "null"));
}

TEST(KleeFuzzerTest, BreadthFirstFindsShortValidInputsFirst) {
  FuzzReport R = fuzz(arithSubject(), 500);
  ASSERT_FALSE(R.ValidInputs.empty());
  EXPECT_LE(R.ValidInputs.front().size(), 2u);
}

TEST(KleeFuzzerTest, PathExplosionOnMjs) {
  // With the same budget that nearly exhausts json, mjs keeps KLEE
  // shallow: almost no language structure is reached (the paper: "KLEE
  // finds almost no valid inputs for mjs"). Length is no measure here —
  // comments allow arbitrarily long trivial inputs — so token coverage
  // is compared instead.
  FuzzReport Json = fuzz(jsonSubject(), 15000);
  EXPECT_GT(Json.ValidInputs.size(), 0u);
  FuzzReport Mjs = fuzz(mjsSubject(), 15000);
  TokenCoverage Tokens("mjs");
  for (const std::string &I : Mjs.ValidInputs)
    Tokens.addInput(I);
  EXPECT_LE(Tokens.found().size(), 8u); // out of 98
  EXPECT_DOUBLE_EQ(Tokens.longTokenRatio(), 0.0);
}

TEST(KleeFuzzerTest, SeesImplicitComparisons) {
  // Unlike pFuzzer, the symbolic baseline can satisfy the implicit hex
  // checks behind \u escapes and reach the UTF-16 conversion (§5.2).
  FuzzReport R = fuzz(jsonSubject(), 60000, 3);
  EXPECT_TRUE(anyContains(R.ValidInputs, "\\u"));
}

TEST(KleeFuzzerTest, EmitsOnlyNewCoverageInputs) {
  // KLEE is configured to "only output values if they cover new code".
  FuzzReport R = fuzz(jsonSubject(), 10000);
  EXPECT_LT(R.ValidInputs.size(), 200u);
}

TEST(KleeFuzzerTest, DeterministicForSameSeed) {
  FuzzReport A = fuzz(jsonSubject(), 3000, 9);
  FuzzReport B = fuzz(jsonSubject(), 3000, 9);
  EXPECT_EQ(A.ValidInputs, B.ValidInputs);
}

TEST(KleeFuzzerTest, RespectsBudget) {
  FuzzReport R = fuzz(mjsSubject(), 2000);
  EXPECT_LE(R.Executions, 2000u);
}
