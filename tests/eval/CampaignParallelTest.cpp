//===- tests/eval/CampaignParallelTest.cpp - Jobs determinism tests -------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract of the parallel campaign executor: any Jobs value yields
/// results byte-identical to a sequential run. Every seed run owns its
/// fuzzer, Rng and token accounting, and the best-run reduction folds in
/// seed order, so thread scheduling can never leak into the outcome.
///
//===----------------------------------------------------------------------===//

#include "eval/Campaign.h"
#include "support/Scheduler.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

/// Asserts that two campaign results agree on everything deterministic
/// (wall-clock timing is diagnostic and excluded by design).
void expectIdentical(const CampaignResult &A, const CampaignResult &B) {
  EXPECT_EQ(A.SubjectName, B.SubjectName);
  EXPECT_EQ(A.Tool, B.Tool);
  EXPECT_EQ(A.Report.Executions, B.Report.Executions);
  EXPECT_EQ(A.TotalExecutions, B.TotalExecutions);
  EXPECT_EQ(A.Report.ValidInputs, B.Report.ValidInputs);
  EXPECT_EQ(A.Report.ValidBranches, B.Report.ValidBranches);
  EXPECT_EQ(A.Report.CoverageTimeline, B.Report.CoverageTimeline);
  EXPECT_EQ(A.TokensFound, B.TokensFound);
}

} // namespace

TEST(CampaignParallelTest, PFuzzerJobs4IdenticalToJobs1OnDyck) {
  CampaignResult Seq =
      runCampaign(ToolKind::PFuzzer, dyckSubject(), 3000, 7, 4, /*Jobs=*/1);
  CampaignResult Par =
      runCampaign(ToolKind::PFuzzer, dyckSubject(), 3000, 7, 4, /*Jobs=*/4);
  expectIdentical(Seq, Par);
}

TEST(CampaignParallelTest, PFuzzerJobs4IdenticalToJobs1OnJson) {
  CampaignResult Seq =
      runCampaign(ToolKind::PFuzzer, jsonSubject(), 2500, 1, 4, /*Jobs=*/1);
  CampaignResult Par =
      runCampaign(ToolKind::PFuzzer, jsonSubject(), 2500, 1, 4, /*Jobs=*/4);
  expectIdentical(Seq, Par);
}

TEST(CampaignParallelTest, AflJobs4IdenticalToJobs1OnDyck) {
  CampaignResult Seq =
      runCampaign(ToolKind::Afl, dyckSubject(), 8000, 3, 4, /*Jobs=*/1);
  CampaignResult Par =
      runCampaign(ToolKind::Afl, dyckSubject(), 8000, 3, 4, /*Jobs=*/4);
  expectIdentical(Seq, Par);
}

TEST(CampaignParallelTest, AflJobs4IdenticalToJobs1OnJson) {
  CampaignResult Seq =
      runCampaign(ToolKind::Afl, jsonSubject(), 8000, 5, 4, /*Jobs=*/1);
  CampaignResult Par =
      runCampaign(ToolKind::Afl, jsonSubject(), 8000, 5, 4, /*Jobs=*/4);
  expectIdentical(Seq, Par);
}

TEST(CampaignParallelTest, JobsZeroMeansHardwareConcurrency) {
  // Jobs=0 (all hardware threads) must also match the sequential result.
  CampaignResult Seq =
      runCampaign(ToolKind::PFuzzer, arithSubject(), 2000, 2, 3, /*Jobs=*/1);
  CampaignResult Par =
      runCampaign(ToolKind::PFuzzer, arithSubject(), 2000, 2, 3, /*Jobs=*/0);
  expectIdentical(Seq, Par);
}

TEST(CampaignParallelTest, GridMatchesPerCellCampaigns) {
  std::vector<CampaignCell> Cells = {
      {ToolKind::PFuzzer, &dyckSubject(), 2000},
      {ToolKind::Afl, &jsonSubject(), 6000},
      {ToolKind::Random, &arithSubject(), 5000},
  };
  std::vector<CampaignResult> Grid = runCampaignGrid(Cells, 1, 2, /*Jobs=*/4);
  ASSERT_EQ(Grid.size(), Cells.size());
  for (size_t I = 0; I != Cells.size(); ++I) {
    CampaignResult Direct = runCampaign(Cells[I].Tool, *Cells[I].S,
                                        Cells[I].Executions, 1, 2, /*Jobs=*/1);
    // Grid results come back in cell order and match per-cell campaigns.
    expectIdentical(Grid[I], Direct);
  }
}

TEST(CampaignParallelTest, GridTracksTimingPerCell) {
  std::vector<CampaignCell> Cells = {
      {ToolKind::Random, &arithSubject(), 4000},
  };
  std::vector<CampaignResult> Grid = runCampaignGrid(Cells, 1, 2, /*Jobs=*/2);
  ASSERT_EQ(Grid.size(), 1u);
  EXPECT_EQ(Grid[0].TotalExecutions, 8000u);
  EXPECT_GT(Grid[0].WallSeconds, 0.0);
  EXPECT_GT(Grid[0].execsPerSec(), 0.0);
}

TEST(CampaignParallelTest, JobsAndSpeculationShareOnePool) {
  // The unified-scheduler contract: seed-level Jobs and per-campaign
  // speculation draw from ONE worker pool, not a hard partition of
  // dedicated threads. A private two-worker scheduler runs a Jobs=2
  // campaign whose seeds each speculate; afterwards the same pool must
  // have executed both Jobs-class and Speculation-class tasks — and the
  // result must still match a sequential, non-speculating run.
  CampaignResult Seq =
      runCampaign(ToolKind::PFuzzer, dyckSubject(), 2000, 5, 2, /*Jobs=*/1);
  Scheduler Sched(2);
  ToolOptions Tools;
  Tools.Sched = &Sched;
  Tools.PFuzzerSpeculation = 2;
  CampaignResult Par = runCampaign(ToolKind::PFuzzer, dyckSubject(), 2000, 5,
                                   2, /*Jobs=*/2, Tools);
  expectIdentical(Seq, Par);
  SchedulerStats Stats = Sched.stats();
  EXPECT_EQ(Stats.Submitted[0], 2u) << "one Jobs task per seed run";
  EXPECT_GT(Stats.Submitted[2], 0u) << "speculation flowed to the same pool";
  EXPECT_EQ(Stats.submitted(),
            Stats.executed() + Stats.RanInline + Stats.Cancelled)
      << "every task was executed somewhere or retracted";
}

TEST(CampaignParallelTest, BudgetScaleSaturatesInsteadOfWrapping) {
  CampaignBudgets B;
  B.scale(UINT64_MAX / 2);
  // Every budget would overflow 2^64; the checked multiply must clamp to
  // UINT64_MAX rather than wrapping to a tiny budget.
  EXPECT_EQ(B.PFuzzerExecs, UINT64_MAX);
  EXPECT_EQ(B.AflExecs, UINT64_MAX);
  EXPECT_EQ(B.KleeExecs, UINT64_MAX);
  EXPECT_EQ(B.RandomExecs, UINT64_MAX);
  // Scaling by zero still works exactly.
  CampaignBudgets Z;
  Z.scale(0);
  EXPECT_EQ(Z.PFuzzerExecs, 0u);
}
