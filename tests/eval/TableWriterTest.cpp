//===- tests/eval/TableWriterTest.cpp - Table output tests ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/TableWriter.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace pfuzz;

namespace {

/// Captures TableWriter output through a temporary stream.
std::string render(const TableWriter &T) {
  std::FILE *Tmp = std::tmpfile();
  EXPECT_NE(Tmp, nullptr);
  T.print(Tmp);
  std::fflush(Tmp);
  long Size = std::ftell(Tmp);
  std::rewind(Tmp);
  std::string Out(static_cast<size_t>(Size), '\0');
  size_t Read = std::fread(Out.data(), 1, Out.size(), Tmp);
  Out.resize(Read);
  std::fclose(Tmp);
  return Out;
}

} // namespace

TEST(TableWriterTest, HeaderAndSeparator) {
  TableWriter T({"A", "B"});
  std::string Out = render(T);
  EXPECT_NE(Out.find("A  B"), std::string::npos);
  EXPECT_NE(Out.find("----"), std::string::npos);
}

TEST(TableWriterTest, ColumnsAligned) {
  TableWriter T({"Name", "N"});
  T.addRow({"x", "100"});
  T.addRow({"longer", "2"});
  std::string Out = render(T);
  // "longer" defines the first column width; "x" row pads to it.
  EXPECT_NE(Out.find("longer  2"), std::string::npos);
  EXPECT_NE(Out.find("x       100"), std::string::npos);
}

TEST(TableWriterTest, RaggedRowsHandled) {
  TableWriter T({"A"});
  T.addRow({"1", "extra"});
  std::string Out = render(T);
  EXPECT_NE(Out.find("extra"), std::string::npos);
}

TEST(TableWriterTest, BarFullAndEmpty) {
  std::FILE *Tmp = std::tmpfile();
  ASSERT_NE(Tmp, nullptr);
  printBar(Tmp, "full", 1.0, 10);
  printBar(Tmp, "empty", 0.0, 10);
  printBar(Tmp, "clamped", 1.7, 10);
  std::fflush(Tmp);
  std::rewind(Tmp);
  char Buf[256];
  std::string Out;
  while (std::fgets(Buf, sizeof(Buf), Tmp) != nullptr)
    Out += Buf;
  std::fclose(Tmp);
  EXPECT_NE(Out.find("##########"), std::string::npos);
  EXPECT_NE(Out.find(".........."), std::string::npos);
  EXPECT_NE(Out.find("100.0%"), std::string::npos);
}

TEST(TableWriterTest, SeriesRendersScaledLevels) {
  std::FILE *Tmp = std::tmpfile();
  ASSERT_NE(Tmp, nullptr);
  std::vector<std::pair<uint64_t, uint64_t>> Samples;
  for (uint64_t I = 0; I <= 100; ++I)
    Samples.emplace_back(I, I);
  printSeries(Tmp, "grow", Samples, 100, 20);
  printSeries(Tmp, "flat", {{0, 0}, {1, 0}}, 100, 20);
  printSeries(Tmp, "empty", {}, 100, 20);
  std::fflush(Tmp);
  std::rewind(Tmp);
  char Buf[256];
  std::string Out;
  while (std::fgets(Buf, sizeof(Buf), Tmp) != nullptr)
    Out += Buf;
  std::fclose(Tmp);
  // The growing series ends at the top level and reports the final value.
  EXPECT_NE(Out.find("@|"), std::string::npos);
  EXPECT_NE(Out.find("100 outcomes"), std::string::npos);
  // Flat/empty series render all-blank rows without crashing.
  EXPECT_NE(Out.find("0 outcomes"), std::string::npos);
}
