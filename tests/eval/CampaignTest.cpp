//===- tests/eval/CampaignTest.cpp - Campaign runner tests ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Campaign.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(CampaignTest, FactoryProducesAllTools) {
  for (ToolKind Kind : {ToolKind::PFuzzer, ToolKind::Afl, ToolKind::Klee,
                        ToolKind::Random}) {
    auto Tool = makeFuzzer(Kind);
    ASSERT_NE(Tool, nullptr);
    EXPECT_FALSE(Tool->name().empty());
  }
}

TEST(CampaignTest, ToolNames) {
  EXPECT_EQ(toolName(ToolKind::PFuzzer), "pFuzzer");
  EXPECT_EQ(toolName(ToolKind::Afl), "AFL");
  EXPECT_EQ(toolName(ToolKind::Klee), "KLEE");
  EXPECT_EQ(toolName(ToolKind::Random), "Random");
}

TEST(CampaignTest, BudgetsScaleUniformly) {
  CampaignBudgets B;
  uint64_t P = B.PFuzzerExecs, A = B.AflExecs;
  B.scale(3);
  EXPECT_EQ(B.PFuzzerExecs, 3 * P);
  EXPECT_EQ(B.AflExecs, 3 * A);
  EXPECT_EQ(B.executionsFor(ToolKind::Afl), B.AflExecs);
  EXPECT_EQ(B.executionsFor(ToolKind::PFuzzer), B.PFuzzerExecs);
}

TEST(CampaignTest, RunCampaignCollectsTokens) {
  CampaignResult R =
      runCampaign(ToolKind::PFuzzer, arithSubject(), 4000, 1, 1);
  EXPECT_EQ(R.SubjectName, "arith");
  EXPECT_GT(R.Report.Executions, 0u);
  EXPECT_FALSE(R.TokensFound.empty());
  EXPECT_TRUE(R.TokensFound.count("number"));
}

TEST(CampaignTest, BestOfRunsNotWorseThanSingle) {
  CampaignResult Single =
      runCampaign(ToolKind::PFuzzer, jsonSubject(), 2500, 1, 1);
  CampaignResult BestOf3 =
      runCampaign(ToolKind::PFuzzer, jsonSubject(), 2500, 1, 3);
  EXPECT_GE(BestOf3.Report.ValidBranches.size(),
            Single.Report.ValidBranches.size());
}

TEST(CampaignTest, CoverageRatioBounded) {
  CampaignResult R =
      runCampaign(ToolKind::Afl, csvSubject(), 5000, 1, 1);
  double Ratio = R.coverageRatio(csvSubject());
  EXPECT_GE(Ratio, 0.0);
  EXPECT_LE(Ratio, 1.0);
  EXPECT_GT(Ratio, 0.1); // csv is shallow; AFL must cover something real
}
