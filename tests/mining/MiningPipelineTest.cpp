//===- tests/mining/MiningPipelineTest.cpp - Pipeline tests ---------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mining/MiningPipeline.h"

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(MiningPipelineTest, ArithEndToEnd) {
  PipelineResult R = runMiningPipeline(arithSubject(), 6000, 300, 1);
  EXPECT_FALSE(R.SeedInputs.empty());
  EXPECT_GT(R.GrammarNonTerminals, 1u);
  EXPECT_EQ(R.Generated, 300u);
  EXPECT_GT(R.validRatio(), 0.5);
  // The Section 7.4 motivation: the grammar phase produces longer
  // (recursive) valid inputs than exploration alone.
  EXPECT_GT(R.MaxGeneratedValidLen, R.MaxSeedLen);
}

TEST(MiningPipelineTest, CoverageNeverShrinks) {
  PipelineResult R = runMiningPipeline(jsonSubject(), 8000, 200, 2);
  EXPECT_GE(R.CombinedBranches, R.SeedBranches);
}

TEST(MiningPipelineTest, DeterministicForSeed) {
  PipelineResult A = runMiningPipeline(arithSubject(), 2000, 100, 5);
  PipelineResult B = runMiningPipeline(arithSubject(), 2000, 100, 5);
  EXPECT_EQ(A.SeedInputs, B.SeedInputs);
  EXPECT_EQ(A.GeneratedValid, B.GeneratedValid);
  EXPECT_EQ(A.CombinedBranches, B.CombinedBranches);
}

TEST(MiningPipelineTest, NoSeedsNoGrammar) {
  // With a zero exploration budget there is nothing to mine; the grammar
  // degenerates and generation yields nothing valid.
  PipelineResult R = runMiningPipeline(jsonSubject(), 0, 10, 1);
  EXPECT_TRUE(R.SeedInputs.empty());
  EXPECT_EQ(R.GeneratedValid, 0u);
}
