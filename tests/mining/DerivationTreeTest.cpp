//===- tests/mining/DerivationTreeTest.cpp - Derivation tree tests --------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mining/DerivationTree.h"

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

TEST(DerivationTreeTest, EmptyTraceYieldsNothing) {
  RunResult RR;
  EXPECT_FALSE(DerivationTree::fromRun(RR, "x").has_value());
}

TEST(DerivationTreeTest, HandRolledTrace) {
  // parse [0,3) { lex [0,1), lex [2,3) } over "a b".
  RunResult RR;
  RR.FunctionNames = {"parse", "lex"};
  RR.CallTrace = {{0, 0}, {1, 0}, {-1, 1}, {1, 2}, {-1, 3}, {-1, 3}};
  auto Tree = DerivationTree::fromRun(RR, "a b");
  ASSERT_TRUE(Tree.has_value());
  // Root + parse + 2 lex activations.
  ASSERT_EQ(Tree->nodes().size(), 4u);
  const DerivationNode &Root = Tree->root();
  EXPECT_EQ(Tree->functionNames()[Root.NameId], "<start>");
  EXPECT_EQ(Root.Begin, 0u);
  EXPECT_EQ(Root.End, 3u);
  ASSERT_EQ(Root.Children.size(), 1u);
  const DerivationNode &Parse = Tree->nodes()[Root.Children[0]];
  EXPECT_EQ(Tree->functionNames()[Parse.NameId], "parse");
  ASSERT_EQ(Parse.Children.size(), 2u);
  const DerivationNode &Lex1 = Tree->nodes()[Parse.Children[0]];
  EXPECT_EQ(Tree->textOf(Lex1), "a");
  const DerivationNode &Lex2 = Tree->nodes()[Parse.Children[1]];
  EXPECT_EQ(Tree->textOf(Lex2), "b");
}

TEST(DerivationTreeTest, UnbalancedTraceRejected) {
  RunResult RR;
  RR.FunctionNames = {"f"};
  RR.CallTrace = {{0, 0}}; // enter without exit
  EXPECT_FALSE(DerivationTree::fromRun(RR, "x").has_value());
  RR.CallTrace = {{-1, 0}}; // exit without enter
  EXPECT_FALSE(DerivationTree::fromRun(RR, "x").has_value());
}

TEST(DerivationTreeTest, CursorPastEndClamped) {
  RunResult RR;
  RR.FunctionNames = {"f"};
  RR.CallTrace = {{0, 0}, {-1, 99}}; // parser read past the end
  auto Tree = DerivationTree::fromRun(RR, "ab");
  ASSERT_TRUE(Tree.has_value());
  EXPECT_EQ(Tree->nodes()[1].End, 2u);
}

TEST(DerivationTreeTest, ArithRunProducesSensibleTree) {
  RunResult RR = arithSubject().execute("(2-94)");
  ASSERT_EQ(RR.ExitCode, 0);
  auto Tree = DerivationTree::fromRun(RR, "(2-94)");
  ASSERT_TRUE(Tree.has_value());
  // The whole input is spanned and parseExpr/parseOperand appear.
  EXPECT_EQ(Tree->textOf(Tree->root()), "(2-94)");
  bool SawExpr = false, SawOperand = false;
  for (const std::string &Name : Tree->functionNames()) {
    if (Name == "parseExpr")
      SawExpr = true;
    if (Name == "parseOperand")
      SawOperand = true;
  }
  EXPECT_TRUE(SawExpr);
  EXPECT_TRUE(SawOperand);
}

TEST(DerivationTreeTest, NestedSpansAreContained) {
  RunResult RR = jsonSubject().execute("{\"a\":[1,2]}");
  ASSERT_EQ(RR.ExitCode, 0);
  auto Tree = DerivationTree::fromRun(RR, "{\"a\":[1,2]}");
  ASSERT_TRUE(Tree.has_value());
  for (const DerivationNode &Node : Tree->nodes()) {
    EXPECT_LE(Node.Begin, Node.End);
    for (uint32_t ChildIdx : Node.Children) {
      const DerivationNode &Child = Tree->nodes()[ChildIdx];
      EXPECT_GE(Child.Begin, Node.Begin);
      EXPECT_LE(Child.End, Node.End);
    }
  }
}

TEST(DerivationTreeTest, DumpRendersEveryNode) {
  RunResult RR = arithSubject().execute("1+2");
  auto Tree = DerivationTree::fromRun(RR, "1+2");
  ASSERT_TRUE(Tree.has_value());
  std::string Dump = Tree->dump();
  EXPECT_NE(Dump.find("<start>"), std::string::npos);
  EXPECT_NE(Dump.find("parseExpr"), std::string::npos);
}

TEST(DerivationTreeTest, TokenizingSubjectsStillYieldBalancedTrees) {
  // tinyc/mjs call traces include the interleaved lexer; the trees must
  // still reconstruct (spans may include lookahead, see Section 7.2).
  for (const char *Name : {"tinyc", "mjs"}) {
    const Subject *S = findSubject(Name);
    const char *Program = Name[0] == 't' ? "if(1)a=2;" : "var x=1;";
    RunResult RR = S->execute(Program);
    ASSERT_EQ(RR.ExitCode, 0) << Name;
    auto Tree = DerivationTree::fromRun(RR, Program);
    ASSERT_TRUE(Tree.has_value()) << Name;
    EXPECT_GT(Tree->nodes().size(), 3u) << Name;
  }
}

TEST(DerivationTreeTest, EmptySpanActivationsAllowed) {
  // A function that consumes nothing (pure lookahead) still becomes a
  // node with an empty span.
  RunResult RR;
  RR.FunctionNames = {"peeker"};
  RR.CallTrace = {{0, 1}, {-1, 1}};
  auto Tree = DerivationTree::fromRun(RR, "abc");
  ASSERT_TRUE(Tree.has_value());
  EXPECT_EQ(Tree->nodes()[1].Begin, Tree->nodes()[1].End);
  EXPECT_EQ(Tree->textOf(Tree->nodes()[1]), "");
}
