//===- tests/mining/GrammarGeneratorTest.cpp - Generator tests ------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mining/GrammarGenerator.h"
#include "mining/MiningPipeline.h"

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

/// Fraction of generated sentences the subject accepts.
double validRatio(const Subject &S, Grammar &G, int Count,
                  size_t *MaxValidLen = nullptr) {
  GrammarGenerator Gen(G, 42);
  int Valid = 0;
  for (int I = 0; I != Count; ++I) {
    std::string Sentence = Gen.generate();
    if (S.accepts(Sentence)) {
      ++Valid;
      if (MaxValidLen != nullptr)
        *MaxValidLen = std::max(*MaxValidLen, Sentence.size());
    }
  }
  return static_cast<double>(Valid) / Count;
}

} // namespace

TEST(GrammarGeneratorTest, ArithSentencesAreMostlyValid) {
  Grammar G = mineGrammar(arithSubject(),
                          {"1", "(2-94)", "1+1", "-5", "12", "(1)+2"});
  size_t MaxLen = 0;
  double Ratio = validRatio(arithSubject(), G, 200, &MaxLen);
  EXPECT_GT(Ratio, 0.8);
  // Recursion payoff: generated inputs exceed every seed's length.
  EXPECT_GT(MaxLen, 8u);
}

TEST(GrammarGeneratorTest, JsonSentencesAreMostlyValid) {
  Grammar G = mineGrammar(jsonSubject(), {"1", "[1]", "[]", "{}",
                                          "{\"a\":1}", "\"s\"", "true",
                                          "[1,2]", "[[1]]"});
  size_t MaxLen = 0;
  double Ratio = validRatio(jsonSubject(), G, 200, &MaxLen);
  EXPECT_GT(Ratio, 0.6);
  EXPECT_GT(MaxLen, 10u);
}

TEST(GrammarGeneratorTest, DeterministicForSeed) {
  Grammar G = mineGrammar(arithSubject(), {"1", "(1)", "1+1"});
  GrammarGenerator A(G, 7), B(G, 7);
  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(A.generate(), B.generate());
}

TEST(GrammarGeneratorTest, DepthBudgetClosesRecursion) {
  Grammar G = mineGrammar(arithSubject(), {"(1)", "((1))", "1"});
  GrammarGenerator Gen(G, 3);
  for (int I = 0; I != 100; ++I) {
    std::string Sentence = Gen.generate(/*MaxDepth=*/6, /*MaxLen=*/400);
    EXPECT_LE(Sentence.size(), 400u);
  }
}

TEST(GrammarGeneratorTest, MaxLenTruncates) {
  Grammar G = mineGrammar(jsonSubject(), {"[[1,1]]", "[1]", "1"});
  GrammarGenerator Gen(G, 5);
  for (int I = 0; I != 50; ++I)
    EXPECT_LE(Gen.generate(/*MaxDepth=*/30, /*MaxLen=*/64).size(), 64u);
}

TEST(GrammarGeneratorTest, WorkBudgetBoundsWideGrammars) {
  // Epsilon-heavy rules with many nonterminals per alternative must not
  // explode combinatorially: generation stays fast and bounded even with
  // a deep free-choice phase.
  Grammar G = mineGrammar(mjsSubject(),
                          {"var a=[1,2];a.push(3);", "if(1){x=1;}",
                           "for(var i=0;i<2;i++)x=i;", "x=1;", ";"});
  GrammarGenerator Gen(G, 11);
  for (int I = 0; I != 200; ++I) {
    std::string Sentence = Gen.generate(/*MaxDepth=*/32, /*MaxLen=*/4000);
    EXPECT_LE(Sentence.size(), 4000u);
  }
}
