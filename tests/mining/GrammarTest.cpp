//===- tests/mining/GrammarTest.cpp - Grammar mining tests ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mining/Grammar.h"
#include "mining/MiningPipeline.h"

#include "subjects/Subject.h"

#include <gtest/gtest.h>

using namespace pfuzz;

namespace {

Grammar mineFrom(const Subject &S, std::vector<std::string> Inputs) {
  return mineGrammar(S, Inputs);
}

} // namespace

TEST(GrammarTest, MinesNonTerminalsFromArith) {
  Grammar G = mineFrom(arithSubject(), {"1", "(2-94)", "1+1"});
  EXPECT_GE(G.numNonTerminals(), 3u); // <start>, parseExpr, parseOperand
  EXPECT_GT(G.numAlternatives(), 0u);
  EXPECT_EQ(G.nameOf(G.start()), "<start>");
}

TEST(GrammarTest, DuplicateLayoutsCollapse) {
  Grammar Once = mineFrom(arithSubject(), {"1"});
  Grammar Twice = mineFrom(arithSubject(), {"1", "1"});
  EXPECT_EQ(Once.numAlternatives(), Twice.numAlternatives());
}

TEST(GrammarTest, MoreInputsMoreAlternatives) {
  Grammar Small = mineFrom(arithSubject(), {"1"});
  Grammar Large = mineFrom(arithSubject(), {"1", "(2-94)", "1+1", "-5"});
  EXPECT_GT(Large.numAlternatives(), Small.numAlternatives());
}

TEST(GrammarTest, InvalidInputsAreIgnored) {
  Grammar G = mineFrom(arithSubject(), {"((", "1", "+-"});
  Grammar OnlyValid = mineFrom(arithSubject(), {"1"});
  EXPECT_EQ(G.numAlternatives(), OnlyValid.numAlternatives());
}

TEST(GrammarTest, MinDepthComputed) {
  Grammar G = mineFrom(arithSubject(), {"1", "(1)"});
  // Every mined nonterminal must be productive.
  for (size_t NT = 0; NT != G.numNonTerminals(); ++NT)
    EXPECT_LT(G.minDepthOf(static_cast<int32_t>(NT)), 1u << 30)
        << G.nameOf(static_cast<int32_t>(NT));
  // The start symbol derives through at least one level.
  EXPECT_GE(G.minDepthOf(G.start()), 1u);
}

TEST(GrammarTest, ToStringContainsRulesAndTerminals) {
  Grammar G = mineFrom(arithSubject(), {"(1)"});
  std::string Text = G.toString();
  EXPECT_NE(Text.find("::="), std::string::npos);
  EXPECT_NE(Text.find("parseOperand"), std::string::npos);
  EXPECT_NE(Text.find("\"(\""), std::string::npos);
}

TEST(GrammarTest, SymbolOrderingIsStrictWeak) {
  GrammarSymbol T1 = GrammarSymbol::terminal("a");
  GrammarSymbol T2 = GrammarSymbol::terminal("b");
  GrammarSymbol N1 = GrammarSymbol::nonTerminal(1);
  EXPECT_TRUE(T1 < T2);
  EXPECT_FALSE(T2 < T1);
  EXPECT_TRUE(N1 < T1); // nonterminals sort before terminals
  EXPECT_TRUE(T1 == GrammarSymbol::terminal("a"));
}

TEST(GrammarTest, JsonGrammarCapturesStructure) {
  Grammar G = mineFrom(jsonSubject(),
                       {"1", "[1]", "[]", "{}", "{\"a\":1}", "\"s\"",
                        "true", "[1,2]"});
  bool SawValue = false, SawString = false;
  for (size_t NT = 0; NT != G.numNonTerminals(); ++NT) {
    const std::string &Name = G.nameOf(static_cast<int32_t>(NT));
    if (Name == "parseValue")
      SawValue = true;
    if (Name == "parseString")
      SawString = true;
  }
  EXPECT_TRUE(SawValue);
  EXPECT_TRUE(SawString);
}
