//===- core/ShardSync.cpp - Sharded-campaign synchronization --------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ShardSync.h"

using namespace pfuzz;

ShardHub::ShardHub(uint32_t NumShards) {
  size_t N = NumShards;
  Rings.resize(N * N);
  for (size_t P = 0; P != N; ++P)
    for (size_t C = 0; C != N; ++C)
      if (P != C)
        Rings[P * N + C] = std::make_unique<ShardPacketRing>();
  Endpoints.reserve(N);
  for (size_t S = 0; S != N; ++S) {
    auto E = std::make_unique<ShardEndpoint>();
    E->Index = static_cast<uint32_t>(S);
    // Peer order is ascending shard index with self skipped — identical
    // on every shard and every run, which keeps the collect order (and
    // therefore every merge interleaving) deterministic.
    for (size_t Peer = 0; Peer != N; ++Peer) {
      if (Peer == S)
        continue;
      ShardEndpoint::PeerState PS;
      PS.In = Rings[Peer * N + S].get();
      PS.Out = Rings[S * N + Peer].get();
      E->Peers.push_back(PS);
    }
    Endpoints.push_back(std::move(E));
  }
}

uint32_t ShardEndpoint::peerCount() const {
  return static_cast<uint32_t>(Peers.size());
}

void ShardEndpoint::publish(const ShardPacket &P) {
  ++Stats.SyncPoints;
  for (PeerState &Peer : Peers) {
    ShardPacket Copy = P;
    Peer.Out->push(std::move(Copy));
    ++Stats.DeltasPublished;
    if (P.HasCandidate)
      ++Stats.MigrationsOffered;
  }
}

void ShardEndpoint::consumeOne(PeerState &Peer, const PacketHandler &Handler) {
  ShardPacket P;
  Peer.In->pop(P);
  ++Stats.DeltasMerged;
  Peer.ConsumedEpoch = P.Epoch;
  if (P.Final)
    Peer.Done = true;
  Handler(P);
}

void ShardEndpoint::collectThrough(uint64_t Through,
                                   const PacketHandler &Handler) {
  for (PeerState &Peer : Peers) {
    while (!Peer.Done && Peer.ConsumedEpoch < Through)
      consumeOne(Peer, Handler);
    // Frontier lag at this merge point: how far the joint frontier this
    // shard sees trails its own position. Through is own epoch - 1, so
    // steady state is a lag of 1; a finished peer's lag stops being
    // meaningful and is not counted.
    if (!Peer.Done && Through + 1 > Peer.ConsumedEpoch) {
      uint64_t Lag = Through + 1 - Peer.ConsumedEpoch;
      if (Lag > Stats.MaxFrontierLag)
        Stats.MaxFrontierLag = Lag;
    }
  }
}

void ShardEndpoint::drainAll(const PacketHandler &Handler) {
  // Opportunistic sweep first: packets already buffered are consumed
  // without sleeping, which lets peers blocked on a full ring proceed
  // before this shard commits to blocking waits.
  for (PeerState &Peer : Peers)
    while (!Peer.Done) {
      ShardPacket P;
      if (!Peer.In->tryPop(P))
        break;
      ++Stats.DeltasMerged;
      Peer.ConsumedEpoch = P.Epoch;
      if (P.Final)
        Peer.Done = true;
      Handler(P);
    }
  for (PeerState &Peer : Peers)
    while (!Peer.Done)
      consumeOne(Peer, Handler);
}
