//===- core/Heuristic.h - Algorithm 1 search heuristic -----------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The candidate-priority heuristic of Algorithm 1 (procedure `heur`,
/// lines 47-51):
///
///   cov =   |branches \ vBr|            (new coverage of the parent run)
///         - len(input)                  (avoid depth-first blowup)
///         + 2 * len(replacement)        (favour string-comparison splices)
///         - avgStackSize                (prefer inputs that close structures)
///         - numParents                  (prefer short substitution chains)
///         - pathPenalty                 (prefer unseen parse paths, §3.2)
///
/// Note on numParents: the paper's pseudocode adds it, but the prose says
/// "inputs with fewer parents but the same coverage should be ranked
/// higher", which under a pop-max queue requires subtraction; we follow
/// the prose. Every term can be disabled for the ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_CORE_HEURISTIC_H
#define PFUZZ_CORE_HEURISTIC_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pfuzz {

/// Feature switches for the heuristic terms (all on by default; the
/// ablation bench turns them off one at a time).
struct HeuristicOptions {
  bool LengthPenalty = true;
  bool ReplacementBonus = true;
  bool StackSizeTerm = true;
  bool ParentCountTerm = true;
  bool PathNovelty = true;
};

/// Inputs to one heuristic evaluation.
struct HeuristicInputs {
  /// |branches \ vBr| of the parent run, counted up to the last accepted
  /// character (Section 3.1).
  uint32_t NewBranches = 0;
  uint32_t InputLen = 0;
  uint32_t ReplacementLen = 0;
  double AvgStackSize = 0;
  uint32_t NumParents = 0;
  /// How many previous runs took the same parse path.
  uint32_t PathCount = 0;
};

/// Computes the candidate score; the queue pops the maximum.
double heuristicScore(const HeuristicInputs &In, const HeuristicOptions &Opt);

/// A queued candidate as the compact store describes it: the same terms
/// as HeuristicInputs, but with the path-novelty count already resolved
/// by the caller (the store keeps path hashes, not counts — the campaign
/// owns the path table). Both the campaign's push-time scoring and the
/// store's rescore pass go through this one function, so a candidate's
/// score is computed identically no matter which layer asks.
struct CandidateFeatures {
  uint32_t NewBranches = 0;
  uint32_t InputLen = 0;
  uint32_t ReplacementLen = 0;
  double AvgStackSize = 0;
  uint32_t NumParents = 0;
  uint32_t PathCount = 0;
};

/// Scores a candidate described by its compact record features.
double heuristicScore(const CandidateFeatures &F, const HeuristicOptions &Opt);

/// Path-compressed radix trie ordering a batch of candidate inputs for
/// prefix locality. The equal-score front of the heuristic queue is
/// inserted with opaque tags, and dfsOrder() emits the tags in
/// depth-first, lexicographic-by-bytes order — inputs sharing a prefix
/// come out adjacent (a key that is a prefix of another precedes its
/// extensions), so executing them back-to-back keeps the resumption
/// engine's checkpoints for that prefix hot. The order depends only on
/// the key *bytes*, never on insertion order: sibling edges are kept
/// sorted by first byte, which is the deterministic tie-break the
/// batched scheduler relies on.
///
/// Duplicate keys keep the first tag inserted (one execution serves
/// every duplicate). Nodes live in recycled flat arenas — clear() keeps
/// the buffers, so a per-refill batch allocates nothing in steady state.
class PrefixOrderTrie {
public:
  /// Empties the trie, keeping node and label storage.
  void clear();

  /// Inserts \p Key with \p Tag. Returns true when the key is new, false
  /// for a duplicate (whose original tag is kept).
  bool insert(std::string_view Key, uint32_t Tag);

  /// Appends the stored tags to \p Out in DFS order (see class comment).
  void dfsOrder(std::vector<uint32_t> &Out) const;

  /// Number of distinct keys stored.
  size_t size() const { return Keys; }

private:
  struct Node {
    /// Edge label: a slice of the shared Labels arena.
    uint32_t LabelOff = 0;
    uint32_t LabelLen = 0;
    /// Tag of the key ending at this node, or -1.
    int32_t Tag = -1;
    /// First child (smallest leading byte) and next sibling (ascending
    /// leading bytes), or -1.
    int32_t FirstChild = -1;
    int32_t NextSibling = -1;
  };

  int32_t newNode(std::string_view Label);
  std::string_view labelOf(const Node &N) const {
    return std::string_view(Labels).substr(N.LabelOff, N.LabelLen);
  }

  std::vector<Node> Nodes;
  std::string Labels;
  size_t Keys = 0;
  /// DFS scratch, recycled across dfsOrder calls.
  mutable std::vector<int32_t> Stack;
};

} // namespace pfuzz

#endif // PFUZZ_CORE_HEURISTIC_H
