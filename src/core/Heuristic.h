//===- core/Heuristic.h - Algorithm 1 search heuristic -----------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The candidate-priority heuristic of Algorithm 1 (procedure `heur`,
/// lines 47-51):
///
///   cov =   |branches \ vBr|            (new coverage of the parent run)
///         - len(input)                  (avoid depth-first blowup)
///         + 2 * len(replacement)        (favour string-comparison splices)
///         - avgStackSize                (prefer inputs that close structures)
///         - numParents                  (prefer short substitution chains)
///         - pathPenalty                 (prefer unseen parse paths, §3.2)
///
/// Note on numParents: the paper's pseudocode adds it, but the prose says
/// "inputs with fewer parents but the same coverage should be ranked
/// higher", which under a pop-max queue requires subtraction; we follow
/// the prose. Every term can be disabled for the ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_CORE_HEURISTIC_H
#define PFUZZ_CORE_HEURISTIC_H

#include <cstdint>

namespace pfuzz {

/// Feature switches for the heuristic terms (all on by default; the
/// ablation bench turns them off one at a time).
struct HeuristicOptions {
  bool LengthPenalty = true;
  bool ReplacementBonus = true;
  bool StackSizeTerm = true;
  bool ParentCountTerm = true;
  bool PathNovelty = true;
};

/// Inputs to one heuristic evaluation.
struct HeuristicInputs {
  /// |branches \ vBr| of the parent run, counted up to the last accepted
  /// character (Section 3.1).
  uint32_t NewBranches = 0;
  uint32_t InputLen = 0;
  uint32_t ReplacementLen = 0;
  double AvgStackSize = 0;
  uint32_t NumParents = 0;
  /// How many previous runs took the same parse path.
  uint32_t PathCount = 0;
};

/// Computes the candidate score; the queue pops the maximum.
double heuristicScore(const HeuristicInputs &In, const HeuristicOptions &Opt);

} // namespace pfuzz

#endif // PFUZZ_CORE_HEURISTIC_H
