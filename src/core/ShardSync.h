//===- core/ShardSync.h - Sharded-campaign synchronization ------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exchange layer of the sharded campaign engine (PFuzzerOptions::
/// Shards): N shard loops — each a full Algorithm 1 campaign with its own
/// candidate store, run cache and resume ladder — periodically trade two
/// things through per-pair SPSC packet rings:
///
///   1. *Coverage-frontier deltas*: the branch outcomes a shard's valid
///      inputs newly covered since its last packet (exported from the
///      BranchCoverageMap journal). Receivers fold them into their own
///      vBr, so the heuristic's NewBranches term and the valid-input
///      novelty test see the joint frontier instead of re-deriving it
///      N times.
///   2. *Candidate migration*: the publisher's top-of-heap candidate
///      (full bytes + run features). Importers rescore it against their
///      own coverage and path counts, so a keyword discovery propagates
///      instead of waiting to be rediscovered.
///
/// Synchronization is asynchronous but *deterministic*: packets are
/// tagged with logical epochs counted in shard-local executions (one
/// boundary every PFuzzerOptions::ShardSyncInterval executions), never in
/// wall-clock. At boundary E a shard first publishes its packet E, then
/// consumes every peer's packets through epoch E-1 — blocking briefly if
/// a peer has not reached E-1 yet. Both the content of every packet and
/// the exact merge points in every shard's execution stream are pure
/// functions of (seed, shard count, interval), so sharded reports are
/// bit-reproducible while no shard ever takes a lock on its per-execution
/// hot path (ring transfers are acquire/release atomics; a mutex+condvar
/// pair backstops only the blocking waits at epoch boundaries).
///
/// Lifetimes end at different times (budgets split unevenly, valid-input
/// work varies), so a finishing shard publishes a terminal Final packet
/// carrying its last delta and then drains every incoming ring until each
/// peer's Final packet has been consumed. Globally, every published
/// packet is therefore consumed exactly once — the published == merged
/// ShardStats invariant the benches check.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_CORE_SHARDSYNC_H
#define PFUZZ_CORE_SHARDSYNC_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pfuzz {

/// Diagnostic counters of one shard's sync endpoint. Aggregated across
/// shards by the engine (see accumulate) and flowing through
/// eval/Campaign into BenchJson. Observational only — the search
/// trajectory is a function of the packet protocol, not of these counts.
struct ShardStats {
  /// Packets pushed into peer rings (one per packet per receiving peer).
  uint64_t DeltasPublished = 0;
  /// Packets consumed from peer rings (loop merges + end-of-campaign
  /// drain). Summed across all shards this equals DeltasPublished once
  /// every shard has drained.
  uint64_t DeltasMerged = 0;
  /// Branch outcomes newly covered here because a peer's delta carried
  /// them first.
  uint64_t BranchesImported = 0;
  /// Migration candidates offered to peers (one per carried candidate
  /// per receiving peer).
  uint64_t MigrationsOffered = 0;
  /// Offered candidates this shard enqueued into its own store.
  uint64_t MigrationsAccepted = 0;
  /// Offered candidates this shard declined (already enqueued locally,
  /// over the length cap, or arriving after its campaign ended).
  /// Accepted + Rejected == Offered across all shards once drained.
  uint64_t MigrationsRejected = 0;
  /// Epoch boundaries this shard crossed (packets it published).
  uint64_t SyncPoints = 0;
  /// Worst frontier lag observed at any merge point: own epoch minus the
  /// newest peer epoch consumed there. Bounded by the lag-1 protocol
  /// (steady-state 1; finished peers stop counting).
  uint64_t MaxFrontierLag = 0;

  /// Sums counters (maxes MaxFrontierLag) — the sharded engine folds
  /// per-shard endpoints into one campaign total, and the campaign
  /// runners fold per-seed totals into one per-cell total.
  void accumulate(const ShardStats &Other) {
    DeltasPublished += Other.DeltasPublished;
    DeltasMerged += Other.DeltasMerged;
    BranchesImported += Other.BranchesImported;
    MigrationsOffered += Other.MigrationsOffered;
    MigrationsAccepted += Other.MigrationsAccepted;
    MigrationsRejected += Other.MigrationsRejected;
    SyncPoints += Other.SyncPoints;
    MaxFrontierLag = MaxFrontierLag > Other.MaxFrontierLag
                         ? MaxFrontierLag
                         : Other.MaxFrontierLag;
  }
};

/// One epoch's worth of shard-to-peer exchange.
struct ShardPacket {
  /// Logical boundary number (1, 2, ...); strictly increasing per
  /// producer, so a ring always holds packets in epoch order.
  uint64_t Epoch = 0;
  /// Terminal packet: the producer's campaign is over and no further
  /// packets will ever arrive from it.
  bool Final = false;
  /// Coverage-frontier delta: branch outcomes the producer newly covered
  /// since its previous packet (journal slice; full resync after a
  /// clear).
  std::vector<uint32_t> Branches;

  /// Candidate migration payload; absent when the producer's queue was
  /// empty at the boundary (or on Final packets).
  bool HasCandidate = false;
  std::string CandidateBytes;
  /// FNV-1a hash of CandidateBytes (the campaign's dedup/run-cache key).
  uint64_t CandidateHash = 0;
  /// The candidate run's new-branch list as the producer last filtered
  /// it; importers re-filter against their own vBr.
  std::vector<uint32_t> CandidateBranches;
  double CandidateAvgStack = 0;
  uint64_t CandidatePathHash = 0;
  uint32_t CandidateNumParents = 0;
  uint32_t CandidateReplacementLen = 0;
};

/// Bounded single-producer single-consumer packet ring. The transfer
/// itself is lock-free (acquire/release on the head and tail indices);
/// the mutex+condvar pair exists only so a producer finding the ring full
/// or a consumer finding it empty can sleep instead of spinning — both
/// happen at epoch boundaries only, never per execution. Capacity 8 is
/// generous: the lag-1 protocol bounds steady-state occupancy to two
/// packets plus the terminal drain.
class ShardPacketRing {
public:
  static constexpr size_t Capacity = 8;

  /// Producer side; blocks while full.
  void push(ShardPacket &&P) {
    while (!tryPush(std::move(P))) {
      std::unique_lock<std::mutex> Lock(WaitMutex);
      WaitCv.wait(Lock, [this] {
        return Tail.load(std::memory_order_relaxed) -
                   Head.load(std::memory_order_acquire) <
               Capacity;
      });
    }
  }

  /// Consumer side; blocks while empty.
  void pop(ShardPacket &P) {
    while (!tryPop(P)) {
      std::unique_lock<std::mutex> Lock(WaitMutex);
      WaitCv.wait(Lock, [this] {
        return Head.load(std::memory_order_relaxed) !=
               Tail.load(std::memory_order_acquire);
      });
    }
  }

  /// Non-blocking pop (the end-of-campaign drain peeks opportunistically
  /// before committing to a blocking wait).
  bool tryPop(ShardPacket &P) {
    size_t T = Tail.load(std::memory_order_acquire);
    size_t H = Head.load(std::memory_order_relaxed);
    if (H == T)
      return false;
    P = std::move(Slots[H % Capacity]);
    Head.store(H + 1, std::memory_order_release);
    notify();
    return true;
  }

private:
  bool tryPush(ShardPacket &&P) {
    size_t H = Head.load(std::memory_order_acquire);
    size_t T = Tail.load(std::memory_order_relaxed);
    if (T - H == Capacity)
      return false;
    Slots[T % Capacity] = std::move(P);
    Tail.store(T + 1, std::memory_order_release);
    notify();
    return true;
  }

  /// Wakes the peer possibly sleeping on the other end. Taking the mutex
  /// before notifying closes the check-then-sleep race: a waiter that
  /// observed the old index either holds the mutex (and will be
  /// notified) or has not re-checked yet (and will see the new index).
  void notify() {
    std::lock_guard<std::mutex> Lock(WaitMutex);
    WaitCv.notify_all();
  }

  ShardPacket Slots[Capacity];
  /// Consumer-owned read index; producer reads it to detect full.
  std::atomic<size_t> Head{0};
  /// Producer-owned write index; consumer reads it to detect empty.
  std::atomic<size_t> Tail{0};
  std::mutex WaitMutex;
  std::condition_variable WaitCv;
};

class ShardHub;

/// One shard's view of the exchange: publish at boundaries, collect
/// peers' packets through a target epoch, drain at campaign end. Owned by
/// the hub; used by exactly one shard thread.
class ShardEndpoint {
public:
  /// Consumed-packet callback; receives every packet exactly once.
  using PacketHandler = std::function<void(const ShardPacket &)>;

  ShardStats Stats;

  /// This shard's index within the campaign.
  uint32_t index() const { return Index; }

  /// Number of peers (shards - 1).
  uint32_t peerCount() const;

  /// Publishes \p P to every peer (blocking while a ring is full, which
  /// the lag-1 protocol makes transient). Call with strictly increasing
  /// epochs; the Final packet must be the last.
  void publish(const ShardPacket &P);

  /// Consumes every peer's packets with epoch <= \p Through, in peer
  /// order, blocking until each peer has produced them (or consumed its
  /// Final packet, after which the peer is exempt). \p Handler runs on
  /// the calling shard's thread for each packet.
  void collectThrough(uint64_t Through, const PacketHandler &Handler);

  /// End-of-campaign drain: consumes every remaining packet of every
  /// peer, through each peer's Final. After all shards return from
  /// drainAll, every published packet has been consumed exactly once.
  void drainAll(const PacketHandler &Handler);

private:
  friend class ShardHub;

  /// Per-peer consumption cursor.
  struct PeerState {
    /// Ring carrying the peer's packets to this shard.
    ShardPacketRing *In = nullptr;
    /// Ring carrying this shard's packets to the peer.
    ShardPacketRing *Out = nullptr;
    /// Newest epoch consumed from this peer (packets arrive in epoch
    /// order, so this is also a count).
    uint64_t ConsumedEpoch = 0;
    /// The peer's Final packet has been consumed; nothing more will come.
    bool Done = false;
  };

  /// Consumes one packet from \p Peer (blocking) and runs the shared
  /// bookkeeping + \p Handler.
  void consumeOne(PeerState &Peer, const PacketHandler &Handler);

  uint32_t Index = 0;
  std::vector<PeerState> Peers;
};

/// Owns the N*(N-1) rings and N endpoints of one sharded campaign.
/// Construct before the shard threads start; destroy after they join.
class ShardHub {
public:
  explicit ShardHub(uint32_t NumShards);

  uint32_t shardCount() const {
    return static_cast<uint32_t>(Endpoints.size());
  }

  ShardEndpoint &endpoint(uint32_t Shard) { return *Endpoints[Shard]; }

private:
  /// Ring from producer P to consumer C lives at [P * N + C]; the
  /// diagonal is unused. unique_ptrs keep ring addresses stable (rings
  /// hold a mutex and are neither movable nor copyable).
  std::vector<std::unique_ptr<ShardPacketRing>> Rings;
  std::vector<std::unique_ptr<ShardEndpoint>> Endpoints;
};

} // namespace pfuzz

#endif // PFUZZ_CORE_SHARDSYNC_H
