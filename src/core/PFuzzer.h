//===- core/PFuzzer.h - Parser-directed fuzzer -------------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// pFuzzer — the paper's contribution (Section 3, Algorithm 1). Grows
/// inputs one character at a time: EOF accesses trigger appends, rejected
/// characters are replaced with values the parser compared them against
/// (keyword strcmps splice whole keywords), and a branch-coverage-based
/// heuristic queue chooses which candidate to execute next. Every valid
/// input that covers new code is emitted.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_CORE_PFUZZER_H
#define PFUZZ_CORE_PFUZZER_H

#include "core/CandidateStore.h"
#include "core/Fuzzer.h"
#include "core/Heuristic.h"
#include "core/ShardSync.h"
#include "runtime/PrefixResumeCache.h"
#include "support/Scheduler.h"

namespace pfuzz {

class HeartbeatEmitter;

/// Diagnostic counters of the speculative prefetcher (see
/// PFuzzerOptions::SpeculationThreads). Purely observational: none of
/// these feed back into the search, so they can vary across worker
/// counts while the FuzzReport stays byte-identical.
struct SpeculationStats {
  /// Prefetch-table probes: one per runCheck that missed the run cache.
  uint64_t Lookups = 0;
  /// Speculative executions handed to the worker pool.
  uint64_t Submitted = 0;
  /// runCheck lookups that consumed a speculated result (prefetch hits).
  uint64_t Hits = 0;
  /// Hits whose execution had already finished when consumed (no wait).
  uint64_t HitsReady = 0;
  /// Mispredicted tasks retracted before they started running.
  uint64_t Cancelled = 0;
  /// Mispredicted completed runs recycled into the LRU run cache.
  uint64_t Recycled = 0;
  /// Completed speculative runs discarded without any reuse.
  uint64_t Discarded = 0;

  /// Fraction of submitted work that was never consumed or cancelled.
  double wasteRate() const {
    return Submitted == 0
               ? 0
               : static_cast<double>(Submitted - Hits - Cancelled) /
                     static_cast<double>(Submitted);
  }

  /// Sums \p Other into this — the sharded engine aggregates per-shard
  /// prefetcher counters into one campaign total.
  void accumulate(const SpeculationStats &Other) {
    Lookups += Other.Lookups;
    Submitted += Other.Submitted;
    Hits += Other.Hits;
    HitsReady += Other.HitsReady;
    Cancelled += Other.Cancelled;
    Recycled += Other.Recycled;
    Discarded += Other.Discarded;
  }
};

/// Diagnostic counters of the trie-batched locality scheduler (see
/// PFuzzerOptions::LocalityBatch). Purely observational — none feed back
/// into the search, so they can vary across batch sizes while the
/// FuzzReport stays byte-identical.
struct LocalityStats {
  /// Queue-front drains that pre-executed at least one candidate.
  uint64_t Batches = 0;
  /// Candidates inspected across all equal-score fronts.
  uint64_t TieFront = 0;
  /// Warm pre-executions performed in trie DFS order.
  uint64_t Batched = 0;
  /// Pre-executed results the pop loop consumed.
  uint64_t Consumed = 0;
  /// Stale pre-executions recycled into the LRU run cache.
  uint64_t Recycled = 0;
  /// Pre-executions dropped at campaign end without reuse.
  uint64_t Discarded = 0;

  /// Fraction of batched work the pop loop actually consumed.
  double consumeRate() const {
    return Batched == 0 ? 0 : static_cast<double>(Consumed) / Batched;
  }

  /// Sums \p Other into this — campaign runners aggregate per-seed
  /// counters into one per-cell total.
  void accumulate(const LocalityStats &Other) {
    Batches += Other.Batches;
    TieFront += Other.TieFront;
    Batched += Other.Batched;
    Consumed += Other.Consumed;
    Recycled += Other.Recycled;
    Discarded += Other.Discarded;
  }
};

/// One coherent tree of every diagnostic counter a campaign exports —
/// the per-layer `*StatsOut` structs (speculation, resume ladder,
/// locality batcher, candidate store, shard sync, scheduler) plus the
/// campaign-level counts none of them carry (executions, frontier size,
/// run-cache hit counters). Filled from the *same* per-layer sources the
/// individual `*StatsOut` pointers read, at the same point in the
/// campaign, so the old sinks are thin views over this tree: requesting
/// both always yields field-identical values. Purely observational —
/// never part of the report, never feeds back into the search.
struct TelemetrySnapshot {
  /// Subject executions performed (== FuzzReport::Executions).
  uint64_t Executions = 0;
  /// Valid inputs emitted (== FuzzReport::ValidInputs.size()).
  uint64_t ValidInputs = 0;
  /// Covered branch outcomes in the final frontier. Accumulation takes
  /// the max — frontiers of different runs overlap, so a sum would
  /// double-count; the max reports the largest single-run frontier.
  uint64_t FrontierSize = 0;
  /// Memoized-run LRU cache probes (counted while the cache is enabled).
  uint64_t RunCacheLookups = 0;
  /// Probes that replayed a recorded result.
  uint64_t RunCacheHits = 0;

  SpeculationStats Speculation;
  ResumeStats Resume;
  LocalityStats Locality;
  QueueStats Queue;
  ShardStats Sharding;
  /// Scheduler-counter delta over the campaign, read from the pool the
  /// campaign submitted to (the shared process pool unless an explicit
  /// Sched was wired in). Campaigns sharing that pool overlap in time,
  /// so a task can be attributed to every campaign whose delta covers
  /// it — an upper bound, observational only.
  SchedulerStats Sched;

  double runCacheHitRate() const {
    return RunCacheLookups == 0 ? 0
                                : static_cast<double>(RunCacheHits) /
                                      static_cast<double>(RunCacheLookups);
  }

  /// Folds \p Other into this: counters sum, FrontierSize takes the max.
  /// The sharded engine folds per-shard snapshots into one campaign
  /// total; campaign runners fold per-seed totals into one per-cell
  /// total — mirroring exactly how each embedded stats struct was
  /// already aggregated through its own sink.
  void accumulate(const TelemetrySnapshot &Other) {
    Executions += Other.Executions;
    ValidInputs += Other.ValidInputs;
    FrontierSize =
        FrontierSize > Other.FrontierSize ? FrontierSize : Other.FrontierSize;
    RunCacheLookups += Other.RunCacheLookups;
    RunCacheHits += Other.RunCacheHits;
    Speculation.accumulate(Other.Speculation);
    Resume.accumulate(Other.Resume);
    Locality.accumulate(Other.Locality);
    Queue.accumulate(Other.Queue);
    Sharding.accumulate(Other.Sharding);
    Sched.accumulate(Other.Sched);
  }
};

/// pFuzzer configuration beyond the heuristic terms.
struct PFuzzerOptions {
  HeuristicOptions Heur;

  /// Section 2 offers two continuations after a valid input: "we may
  /// decide to output the string and reset the prefix to empty string,
  /// or continue with the generated prefix". The default continues;
  /// setting this stops expanding valid inputs (their substitution
  /// children and re-extensions are not enqueued).
  bool ResetOnValid = false;

  /// Capacity (in entries) of the memoized-run LRU cache; 0 disables it.
  /// The search re-executes identical inputs routinely (requeued
  /// prefixes, candidates regenerated after a queue trim); a hit replays
  /// the recorded RunResult instead of re-running the subject. Replay is
  /// behavior-invariant: a hit still counts against the execution budget
  /// and performs identical bookkeeping, so FuzzReports are byte-for-byte
  /// unchanged at any cache size.
  uint32_t RunCacheSize = 64;

  /// Soft parallelism hint of the speculative prefetcher; 0 (the
  /// default) keeps the Algorithm 1 loop single-threaded. With N > 0,
  /// the campaign executes the top-ranked queue candidates on the shared
  /// work-stealing scheduler (see Sched below) while the sequential loop
  /// processes the current run; when the loop pops an input that was
  /// speculated, it consumes the prefetched RunResult instead of
  /// re-running the subject. The value no longer sizes a dedicated pool —
  /// workers are shared process-wide and flow to whichever campaign has
  /// runnable work — it only enables the prefetcher and scales its
  /// default in-flight depth (see SpeculationDepth). All bookkeeping
  /// (budget counting, vBr growth, OnValidInput, rescoring, RNG draws)
  /// stays on the sequential thread and consumes results in pop order,
  /// so FuzzReports are byte-identical at any worker count.
  uint32_t SpeculationThreads = 0;

  /// How many queue candidates the prefetcher keeps in flight; 0 (auto)
  /// picks 2 * SpeculationThreads + 2. Deeper speculation raises the hit
  /// rate (candidates submitted iterations ahead are ready when popped)
  /// at the cost of more wasted executions on mispredictions.
  uint32_t SpeculationDepth = 0;

  /// Optional out-param: filled with the prefetcher's diagnostic
  /// counters when the campaign finishes. Never part of the report.
  SpeculationStats *StatsOut = nullptr;

  /// Capacity (in suspended runs) of the prefix-resumption pool; 0
  /// disables the engine. With N > 0, executions of resume-safe subjects
  /// run on a fiber, checkpoint themselves at their first past-end read,
  /// and later candidates extending a cached prefix resume from the
  /// checkpoint instead of re-executing the prefix (see
  /// runtime/PrefixResumeCache.h). Resumed runs record byte-for-byte
  /// what cold runs record, so FuzzReports are unchanged at any cache
  /// size — including on builds without fiber support, where the engine
  /// silently degrades to full re-execution.
  uint32_t ResumeCacheSize = 0;

  /// Inputs shorter than this run off the engine's fast path: no fiber,
  /// no checkpoint. The search executes short inputs by the thousands
  /// and each is cheaper to interpret than to checkpoint, so the engine
  /// pays for itself only past a break-even length (~16 bytes on the
  /// built-in subjects). Throughput knob only — reports are identical at
  /// any value.
  uint32_t ResumeMinLength = 16;

  /// Byte stride of the resumption engine's checkpoint ladder: besides
  /// the past-end checkpoint, a run mints a checkpoint at the first read
  /// crossing each multiple of this stride (up to ResumeRungs per run).
  /// Ladder rungs let candidates spliced *below* their parent's EOF
  /// point — every substitution candidate — resume near their splice
  /// instead of running cold. 0 disables mid-run checkpoints. Throughput
  /// knob only — reports are identical at any value.
  uint32_t ResumeStride = 16;

  /// Per-run cap on ladder checkpoints (see ResumeStride).
  uint32_t ResumeRungs = 3;

  /// Maximum equal-score queue-front candidates the locality scheduler
  /// drains per iteration; 0 (the default) disables it. With N > 0,
  /// candidates tied with the best score — which the heap would
  /// otherwise pop in arbitrary sibling order — are pre-executed in
  /// radix-trie DFS order. With the resumption engine active they run
  /// inline through it, so inputs sharing a warm prefix run back-to-back
  /// while its checkpoint is hot; without an engine (TSan builds,
  /// non-resume-safe subjects) they fan out as cold executions on the
  /// shared work-stealing scheduler at Locality priority. Only
  /// score-ties are reordered and their results are consumed in pop
  /// order with identical bookkeeping, so the search trajectory and
  /// FuzzReports stay byte-identical at any batch size.
  uint32_t LocalityBatch = 0;

  /// Optional out-param: the resumption engine's diagnostic counters
  /// (hit rate, bytes skipped). Never part of the report.
  ResumeStats *ResumeStatsOut = nullptr;

  /// Optional out-param: the locality scheduler's diagnostic counters.
  /// Never part of the report.
  LocalityStats *LocalityStatsOut = nullptr;

  /// Queue cap: when a push or rescore finds more candidates than this,
  /// the next re-rank drops the worst-scored half (the paper's prototype
  /// lets the queue grow; we bound memory). Also caps the path-count
  /// table, whose entries decay when it outgrows the cap. A knob mainly
  /// so tests can exercise trim pressure and path decay on small
  /// campaigns; the default matches the historical constant.
  size_t MaxQueue = 100000;

  /// Store candidates as full by-value strings (the pre-store
  /// representation) instead of compact prefix-suffix records. The
  /// search trajectory is byte-identical either way — this exists so the
  /// identity sweep test and the queue benches can compare the two
  /// representations honestly.
  bool ReferenceQueue = false;

  /// Optional out-param: the candidate store's diagnostic counters
  /// (pushes, rescore count/time, peak bytes). Never part of the report.
  QueueStats *QueueStatsOut = nullptr;

  /// Work-stealing scheduler the prefetcher and the locality batcher's
  /// engine-less pre-executions submit to. Null (the default) lazily
  /// resolves to the process-global Scheduler::global() when either
  /// feature is enabled; campaign runners pass their own pool through
  /// here so seed-level Jobs and per-campaign speculation share one set
  /// of workers instead of multiplying threads. Purely a placement knob:
  /// reports are byte-identical for any scheduler and worker count.
  Scheduler *Sched = nullptr;

  /// Shard count of the campaign. 1 (the default) runs the plain
  /// sequential Algorithm 1 loop, byte-identical to every prior engine.
  /// With N > 1 the campaign splits into N concurrent shard loops — each
  /// a full pFuzzer with its own candidate store, run cache and resume
  /// ladder, on its own dedicated thread — that exchange coverage-
  /// frontier deltas and migrate top candidates through core/ShardSync
  /// at deterministic execution-count epochs. The execution budget is
  /// split across shards and the shard reports are merged in stable
  /// shard order, so for a fixed (seed, N) the merged report is
  /// bit-reproducible; different N values explore differently (sharding
  /// is the one perf layer that is *not* behavior-invariant across its
  /// settings — it changes the search, deterministically).
  ///
  /// Shard loops run on dedicated threads rather than as tasks of the
  /// work-stealing scheduler: a shard blocks at epoch boundaries waiting
  /// for peers, and a blocking task would hold its worker hostage —
  /// with fewer workers than shards the waited-on peer could never be
  /// scheduled at all. Each shard's inner speculation and locality
  /// layers still submit to the shared scheduler as usual.
  uint32_t Shards = 1;

  /// Executions per shard between synchronization epochs (delta publish
  /// + peer merge + candidate migration). Smaller intervals tighten the
  /// joint frontier at more sync overhead. Part of the deterministic
  /// protocol: changing it changes the (reproducible) sharded search.
  uint32_t ShardSyncInterval = 512;

  /// Optional out-param: aggregated ShardSync counters of the campaign
  /// (all zero when Shards <= 1). Never part of the report.
  ShardStats *ShardStatsOut = nullptr;

  /// Internal wiring of the sharded engine: the sync endpoint of the
  /// shard campaign being constructed. Callers never set this — the
  /// engine fills it for each shard it spawns.
  ShardEndpoint *SyncEndpoint = nullptr;

  /// Optional out-param: the consolidated telemetry tree, filled when
  /// the campaign finishes from the same sources as the individual
  /// `*StatsOut` sinks above (which remain as thin views). Never part of
  /// the report; filling it changes no report byte.
  TelemetrySnapshot *TelemetryOut = nullptr;

  /// Optional heartbeat stream (see support/Telemetry.h): every
  /// HeartbeatEmitter::interval() executions the campaign samples its
  /// shard-local state and emits one NDJSON record. Shared across shard
  /// loops — they tick one common execution counter. Read-only with
  /// respect to the search: one branch per execution when null, one
  /// relaxed increment when armed, reports byte-identical either way.
  HeartbeatEmitter *Heartbeat = nullptr;
};

/// The parser-directed fuzzer.
class PFuzzer final : public Fuzzer {
public:
  explicit PFuzzer(HeuristicOptions Heur = HeuristicOptions());
  explicit PFuzzer(PFuzzerOptions Options);

  std::string_view name() const override { return "pfuzzer"; }

  FuzzReport run(const Subject &S, const FuzzerOptions &Opts) override;

private:
  PFuzzerOptions Options;
};

} // namespace pfuzz

#endif // PFUZZ_CORE_PFUZZER_H
