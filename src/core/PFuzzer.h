//===- core/PFuzzer.h - Parser-directed fuzzer -------------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// pFuzzer — the paper's contribution (Section 3, Algorithm 1). Grows
/// inputs one character at a time: EOF accesses trigger appends, rejected
/// characters are replaced with values the parser compared them against
/// (keyword strcmps splice whole keywords), and a branch-coverage-based
/// heuristic queue chooses which candidate to execute next. Every valid
/// input that covers new code is emitted.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_CORE_PFUZZER_H
#define PFUZZ_CORE_PFUZZER_H

#include "core/Fuzzer.h"
#include "core/Heuristic.h"

namespace pfuzz {

/// pFuzzer configuration beyond the heuristic terms.
struct PFuzzerOptions {
  HeuristicOptions Heur;

  /// Section 2 offers two continuations after a valid input: "we may
  /// decide to output the string and reset the prefix to empty string,
  /// or continue with the generated prefix". The default continues;
  /// setting this stops expanding valid inputs (their substitution
  /// children and re-extensions are not enqueued).
  bool ResetOnValid = false;

  /// Capacity (in entries) of the memoized-run LRU cache; 0 disables it.
  /// The search re-executes identical inputs routinely (requeued
  /// prefixes, candidates regenerated after a queue trim); a hit replays
  /// the recorded RunResult instead of re-running the subject. Replay is
  /// behavior-invariant: a hit still counts against the execution budget
  /// and performs identical bookkeeping, so FuzzReports are byte-for-byte
  /// unchanged at any cache size.
  uint32_t RunCacheSize = 64;
};

/// The parser-directed fuzzer.
class PFuzzer final : public Fuzzer {
public:
  explicit PFuzzer(HeuristicOptions Heur = HeuristicOptions());
  explicit PFuzzer(PFuzzerOptions Options);

  std::string_view name() const override { return "pfuzzer"; }

  FuzzReport run(const Subject &S, const FuzzerOptions &Opts) override;

private:
  PFuzzerOptions Options;
};

} // namespace pfuzz

#endif // PFUZZ_CORE_PFUZZER_H
