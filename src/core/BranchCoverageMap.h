//===- core/BranchCoverageMap.h - Dense branch-outcome bitmap ----*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bitmap over branch outcomes, keyed by (SiteId << 1) | Taken —
/// the same keys the runtime's branch trace carries. Branch-site ids are
/// small, dense, per-subject compile-time counters, so a bitmap turns the
/// fuzzer's hottest operation (was this outcome already covered by a
/// valid input?) from an std::set lookup into a single word test. The
/// epoch counter lets consumers cache derived data (e.g. a candidate's
/// filtered new-branch list) and skip recomputation while coverage has
/// not grown.
///
/// The map also keeps an append-only journal of the keys in the order
/// they were first set. Because every newly set key advances the epoch by
/// exactly one, an epoch value doubles as a journal position, and
/// exportDelta(SinceEpoch) hands out precisely the keys set after that
/// epoch — the coverage-frontier packets the sharded campaign engine
/// (core/ShardSync.h) exchanges between shards. The journal costs four
/// bytes per distinct covered outcome (a few KB on the paper subjects)
/// and is reset by clear(), after which deltas reaching back past the
/// clear degrade to a full-content resync.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_CORE_BRANCHCOVERAGEMAP_H
#define PFUZZ_CORE_BRANCHCOVERAGEMAP_H

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

namespace pfuzz {

/// Dense set of branch outcomes ((SiteId << 1) | Taken keys).
class BranchCoverageMap {
public:
  /// Sets \p Key; returns true iff it was not set before. Every newly set
  /// bit advances the epoch.
  bool set(uint32_t Key) {
    size_t Word = Key >> 6;
    if (Word >= Words.size())
      Words.resize(Word + 1, 0);
    uint64_t Bit = 1ull << (Key & 63);
    if (Words[Word] & Bit)
      return false;
    Words[Word] |= Bit;
    Journal.push_back(Key);
    ++Count;
    ++Epoch;
    return true;
  }

  /// True iff \p Key is set.
  bool test(uint32_t Key) const {
    size_t Word = Key >> 6;
    return Word < Words.size() && (Words[Word] & (1ull << (Key & 63))) != 0;
  }

  /// Inserts every key in [First, Last).
  template <typename It> void insert(It First, It Last) {
    for (; First != Last; ++First)
      set(*First);
  }

  /// Number of set keys (maintained incrementally; no popcount scan).
  size_t size() const { return Count; }

  bool empty() const { return Count == 0; }

  /// Monotone counter that advances whenever a new key is set. Equal
  /// epochs guarantee the map content has not changed in between.
  uint64_t epoch() const { return Epoch; }

  void clear() {
    Words.clear();
    Count = 0;
    ++Epoch;
    // The journal restarts here: deltas anchored before the clear can no
    // longer be served incrementally and degrade to a full resync.
    Journal.clear();
    JournalBaseEpoch = Epoch;
  }

  /// Appends to \p Out every key set after \p SinceEpoch, in the order
  /// they were first set. \p SinceEpoch is a value previously returned by
  /// epoch(); passing the current epoch appends nothing. When the anchor
  /// predates a clear() the incremental journal is gone, so the entire
  /// current content is appended instead (a superset of the true delta —
  /// merging is idempotent, so over-sending is safe). Returns the number
  /// of keys appended.
  size_t exportDelta(uint64_t SinceEpoch, std::vector<uint32_t> &Out) const {
    if (SinceEpoch < JournalBaseEpoch) {
      // Full resync: the journal no longer reaches back to the anchor.
      std::vector<uint32_t> All = values();
      Out.insert(Out.end(), All.begin(), All.end());
      return All.size();
    }
    // Journal entry I was recorded when the epoch advanced to
    // JournalBaseEpoch + I + 1, so an anchor of E maps to index
    // E - JournalBaseEpoch. clear() is the only non-set epoch advance and
    // it rebases the journal, so the mapping is exact.
    size_t From = static_cast<size_t>(SinceEpoch - JournalBaseEpoch);
    if (From >= Journal.size())
      return 0;
    Out.insert(Out.end(), Journal.begin() + static_cast<ptrdiff_t>(From),
               Journal.end());
    return Journal.size() - From;
  }

  /// Sets every key of [First, Last) — a delta another map exported —
  /// and returns how many were newly set here. Duplicates (keys this map
  /// already covers, or repeated resync content) merge silently.
  template <typename It> size_t mergeDelta(It First, It Last) {
    size_t Fresh = 0;
    for (; First != Last; ++First)
      if (set(*First))
        ++Fresh;
    return Fresh;
  }

  /// The set keys in ascending order.
  std::vector<uint32_t> values() const {
    std::vector<uint32_t> Out;
    Out.reserve(Count);
    for (size_t W = 0; W != Words.size(); ++W) {
      uint64_t Word = Words[W];
      while (Word != 0) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Word));
        Out.push_back(static_cast<uint32_t>((W << 6) + Bit));
        Word &= Word - 1;
      }
    }
    return Out;
  }

  /// std::set view for callers that diff against set-based bookkeeping
  /// (tests, grammar mining).
  std::set<uint32_t> toSet() const {
    std::vector<uint32_t> Vals = values();
    return std::set<uint32_t>(Vals.begin(), Vals.end());
  }

  friend bool operator==(const BranchCoverageMap &A,
                         const BranchCoverageMap &B) {
    if (A.Count != B.Count)
      return false;
    size_t Common = A.Words.size() < B.Words.size() ? A.Words.size()
                                                    : B.Words.size();
    for (size_t I = 0; I != Common; ++I)
      if (A.Words[I] != B.Words[I])
        return false;
    // Trailing words of the longer map must be empty (sizes may differ
    // when one map briefly saw-and-cleared higher keys).
    const std::vector<uint64_t> &Longer =
        A.Words.size() > B.Words.size() ? A.Words : B.Words;
    for (size_t I = Common; I != Longer.size(); ++I)
      if (Longer[I] != 0)
        return false;
    return true;
  }

  friend bool operator!=(const BranchCoverageMap &A,
                         const BranchCoverageMap &B) {
    return !(A == B);
  }

private:
  std::vector<uint64_t> Words;
  size_t Count = 0;
  uint64_t Epoch = 0;
  /// Keys in first-set order; see exportDelta. Holds each set key exactly
  /// once (set() appends only on a fresh bit).
  std::vector<uint32_t> Journal;
  /// Epoch value at which the journal begins (advanced by clear()).
  /// Invariant: Epoch == JournalBaseEpoch + Journal.size().
  uint64_t JournalBaseEpoch = 0;
};

} // namespace pfuzz

#endif // PFUZZ_CORE_BRANCHCOVERAGEMAP_H
