//===- core/CandidateStore.cpp - Compact candidate queue store ------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CandidateStore.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <unordered_set>

using namespace pfuzz;

namespace {

/// Score-only comparators — the single comparator property the
/// determinism argument rests on: for equal scores they return exactly
/// what the by-value queue's comparator returned, so every positional
/// heap algorithm produces the same permutation.
struct EntryScoreLess {
  template <typename T> bool operator()(const T &A, const T &B) const {
    return A.Score < B.Score;
  }
};
struct EntryScoreGreater {
  template <typename T> bool operator()(const T &A, const T &B) const {
    return A.Score > B.Score;
  }
};

} // namespace

void QueueStats::accumulate(const QueueStats &Other) {
  Pushes += Other.Pushes;
  Rescores += Other.Rescores;
  RescoreNanos += Other.RescoreNanos;
  GroupsFiltered += Other.GroupsFiltered;
  Trims += Other.Trims;
  TrimmedCandidates += Other.TrimmedCandidates;
  Compactions += Other.Compactions;
  ArenaBytesReclaimed += Other.ArenaBytesReclaimed;
  PathDecays += Other.PathDecays;
  PeakBytes = std::max(PeakBytes, Other.PeakBytes);
  PeakCandidates = std::max(PeakCandidates, Other.PeakCandidates);
  PeakArenaBytes = std::max(PeakArenaBytes, Other.PeakArenaBytes);
  PeakGroups = std::max(PeakGroups, Other.PeakGroups);
  PeakPathTable = std::max(PeakPathTable, Other.PeakPathTable);
}

CandidateStore::CandidateStore(bool Reference, size_t MaxQueue)
    : Reference(Reference), MaxQueue(MaxQueue) {}

CandidateStore::~CandidateStore() = default;

//===----------------------------------------------------------------------===//
// Record and group slabs
//===----------------------------------------------------------------------===//

uint32_t CandidateStore::allocRecord() {
  if (FreeHead != None) {
    uint32_t Id = FreeHead;
    FreeHead = Records[Id].Parent; // the intrusive free-list link
    Records[Id] = Record();
    return Id;
  }
  // Slabs at this size grow by 1.25x, not the libstdc++ 2x: the record
  // slab is the store's largest block and a doubling overshoot at
  // 100k-candidate scale wastes megabytes against a 25% one.
  if (Records.size() == Records.capacity())
    Records.reserve(Records.capacity() + Records.capacity() / 4 + 64);
  Records.emplace_back();
  return static_cast<uint32_t>(Records.size()) - 1;
}

void CandidateStore::freeRecord(uint32_t Id) {
  Record &R = Records[Id];
  ArenaGarbage += R.SuffixLen;
  unlinkGroup(Id);
  R.Refs = 0;
  R.SuffixLen = 0;   // compaction walks Refs>0 only, but keep it inert
  R.Parent = FreeHead; // freed slots chain through their Parent field
  FreeHead = Id;
}

uint32_t CandidateStore::allocGroup() {
  uint32_t Id;
  if (!FreeGroups.empty()) {
    Id = FreeGroups.back();
    FreeGroups.pop_back();
  } else {
    if (Groups.size() == Groups.capacity())
      Groups.reserve(Groups.capacity() + Groups.capacity() / 4 + 16);
    Groups.emplace_back();
    Id = static_cast<uint32_t>(Groups.size()) - 1;
    if (Reference)
      RefShared.resize(Groups.size());
  }
  Group &G = Groups[Id];
  G.Branches.clear(); // keeps capacity: a recycled group copies its run's
                      // list into an already-sized buffer
  if (Reference)
    RefShared[Id].reset();
  G.FilterEpoch = 0;
  G.PathHash = 0;
  G.AvgStack = 0;
  G.NumParentsBase = 0;
  G.Members = 0;
  G.RunPinned = false;
  ++LiveGroups;
  return Id;
}

void CandidateStore::maybeFreeGroup(uint32_t GroupId) {
  Group &G = Groups[GroupId];
  if (G.RunPinned || G.Members > 0)
    return;
  if (Reference)
    RefShared[GroupId].reset();
  // Recycled slots keep small buffers (steady-state lists are a handful
  // of branches, so reuse skips the realloc) but release outliers: early
  // runs discover dozens of branches at once, and without the cap every
  // slot ratchets up to the largest list it ever held.
  if (G.Branches.capacity() > 16)
    std::vector<uint32_t>().swap(G.Branches);
  else
    G.Branches.clear();
  FreeGroups.push_back(GroupId);
  --LiveGroups;
}

void CandidateStore::unlinkGroup(uint32_t Id) {
  Record &R = Records[Id];
  if (R.Group == None)
    return;
  uint32_t GroupId = R.Group;
  R.Group = None;
  --Groups[GroupId].Members;
  maybeFreeGroup(GroupId);
}

//===----------------------------------------------------------------------===//
// Lineage
//===----------------------------------------------------------------------===//

uint32_t CandidateStore::internRoot(std::string_view Input, uint64_t Hash) {
  if (Reference)
    return None;
  uint32_t Id = allocRecord();
  Record &R = Records[Id];
  R.InputHash = Hash;
  R.Parent = None;
  R.SpliceAt = 0;
  R.SuffixOfs = Arena.append(Input);
  R.SuffixLen = static_cast<uint32_t>(Input.size());
  R.Refs = 1;
  return Id;
}

uint32_t CandidateStore::internChild(uint32_t Parent, size_t SpliceAt,
                                     std::string_view ParentInput,
                                     std::string_view Suffix, uint64_t Hash) {
  if (Reference)
    return None;
  if (Parent != None)
    maybeRebase(Parent, ParentInput);
  uint32_t Id = allocRecord();
  Record &R = Records[Id];
  R.InputHash = Hash;
  R.Parent = Parent;
  if (Parent != None) {
    ++Records[Parent].Refs;
    R.Depth = static_cast<uint8_t>(Records[Parent].Depth + 1);
  }
  R.SpliceAt = static_cast<uint32_t>(SpliceAt);
  R.SuffixOfs = Arena.append(Suffix);
  R.SuffixLen = static_cast<uint32_t>(Suffix.size());
  R.Refs = 1;
  return Id;
}

void CandidateStore::maybeRebase(uint32_t Id, std::string_view Input) {
  // About to become a parent at the chain-depth cap: rewrite the record
  // as a root holding its full bytes. Purely a storage change — the
  // record's materialized bytes, hash, input length (SpliceAt+SuffixLen)
  // and group are all unchanged, and records gaining children are never
  // queue members — so scores and pop order cannot move. The lineage pin
  // on the old parent drops, releasing ancestry nothing else holds.
  Record &R = Records[Id];
  if (R.Depth < MaxChainDepth)
    return;
  assert(Input.size() == R.SpliceAt + R.SuffixLen &&
         "rebase input must be the record's materialized bytes");
  ArenaGarbage += R.SuffixLen;
  uint32_t OldParent = R.Parent;
  R.SuffixOfs = Arena.append(Input);
  R.SuffixLen = static_cast<uint32_t>(Input.size());
  R.SpliceAt = 0;
  R.Parent = None;
  R.Depth = 0;
  release(OldParent);
}

void CandidateStore::release(uint32_t Id) {
  // The cascade is what keeps chains from leaking: freeing a record drops
  // its parent pin, which may free the parent, and so on up to the root.
  // A record queued anywhere below keeps its whole ancestry alive.
  while (Id != None) {
    Record &R = Records[Id];
    if (--R.Refs > 0)
      return;
    uint32_t Parent = R.Parent;
    freeRecord(Id);
    Id = Parent;
  }
}

//===----------------------------------------------------------------------===//
// Run lifecycle
//===----------------------------------------------------------------------===//

uint32_t CandidateStore::makeRun(const std::vector<uint32_t> &NewBranches,
                                 uint64_t FilterEpoch, double AvgStack,
                                 uint64_t PathHash, uint32_t NumParentsBase) {
  uint32_t Id = allocGroup();
  Group &G = Groups[Id];
  if (Reference)
    RefShared[Id] = std::make_shared<const std::vector<uint32_t>>(NewBranches);
  else
    G.Branches = NewBranches;
  G.FilterEpoch = FilterEpoch;
  G.PathHash = PathHash;
  G.AvgStack = AvgStack;
  G.NumParentsBase = NumParentsBase;
  G.RunPinned = true;
  return Id;
}

void CandidateStore::releaseRun(uint32_t Run) {
  if (Run == None)
    return;
  Groups[Run].RunPinned = false;
  maybeFreeGroup(Run);
}

//===----------------------------------------------------------------------===//
// Queue operations
//===----------------------------------------------------------------------===//

void CandidateStore::push(uint32_t Run, uint32_t Parent,
                          std::string_view ParentInput, size_t SpliceAt,
                          std::string_view Suffix, uint64_t Hash,
                          uint32_t ReplacementLen, uint32_t ParentDelta,
                          double Score) {
  ++Stats.Pushes;
  Group &G = Groups[Run];
  if (Reference) {
    RefCandidate C;
    C.Input.reserve(SpliceAt + Suffix.size());
    C.Input.assign(ParentInput.substr(0, SpliceAt));
    C.Input.append(Suffix);
    C.NumParents = G.NumParentsBase + ParentDelta;
    C.AvgStack = G.AvgStack;
    C.ReplacementLen = ReplacementLen;
    C.NewBranches = RefShared[Run];
    C.FilterEpoch = G.FilterEpoch;
    C.PathHash = G.PathHash;
    C.InputHash = Hash;
    C.Score = Score;
    RefQueue.push_back(std::move(C));
    std::push_heap(RefQueue.begin(), RefQueue.end(), EntryScoreLess());
  } else {
    if (Parent != None)
      maybeRebase(Parent, ParentInput);
    // Dead rebased roots and released ancestry can pile up whole-input
    // blocks in the arena between trims, so garbage collection cannot
    // wait for trim pressure alone; the threshold check makes the
    // periodic call nearly free.
    if ((PushTick & 255) == 0)
      maybeCompactArena();
    uint32_t Id = allocRecord();
    Record &R = Records[Id];
    R.InputHash = Hash;
    R.Parent = Parent;
    if (Parent != None) {
      ++Records[Parent].Refs;
      R.Depth = static_cast<uint8_t>(Records[Parent].Depth + 1);
    }
    R.SpliceAt = static_cast<uint32_t>(SpliceAt);
    R.SuffixOfs = Arena.append(Suffix);
    R.SuffixLen = static_cast<uint32_t>(Suffix.size());
    R.Group = Run;
    ++G.Members;
    R.Refs = 1; // the queue entry's pin; pop transfers it to the caller
    // Replacements are comparison operands (single chars or string-equality
    // literals); 64 KiB headroom is far beyond any grammar token, and the
    // identity sweep would flag a truncation as a score divergence.
    R.ReplacementLen = static_cast<uint16_t>(ReplacementLen);
    R.ParentDelta = static_cast<uint8_t>(ParentDelta);
    // The caller trims past MaxQueue, so the heap never outgrows
    // MaxQueue + 1 entries — clamp growth there instead of letting the
    // final doubling overshoot the cap by nearly 2x.
    if (Entries.size() == Entries.capacity())
      Entries.reserve(std::min(MaxQueue + 1, Entries.capacity() +
                                                 Entries.capacity() / 4 + 64));
    Entries.push_back(Entry{Score, Id});
    std::push_heap(Entries.begin(), Entries.end(), EntryScoreLess());
  }
  if ((++PushTick & 1023) == 0)
    samplePeaks();
}

void CandidateStore::materialize(uint32_t Id, std::string &Out) const {
  const Record &Top = Records[Id];
  size_t Take = Top.SpliceAt + Top.SuffixLen;
  Out.resize(Take);
  // Walk up the chain copying each record's suffix segment into its
  // [SpliceAt, SpliceAt + SuffixLen) window, clipped to the bytes the
  // descendants have not already overridden (Take). Every visited record
  // satisfies Take <= SpliceAt + SuffixLen — a child's splice point never
  // exceeds its parent's length — so the loop terminates with Take == 0
  // at or before the chain root.
  uint32_t Cur = Id;
  while (Take > 0) {
    const Record &R = Records[Cur];
    if (R.SpliceAt < Take) {
      size_t Copy = std::min<size_t>(R.SuffixLen, Take - R.SpliceAt);
      std::memcpy(&Out[R.SpliceAt], Arena.data() + R.SuffixOfs, Copy);
      Take = R.SpliceAt;
    }
    if (R.Parent == None)
      break;
    Cur = R.Parent;
  }
}

CandidateStore::Popped CandidateStore::pop(std::string &InputOut) {
  Popped P;
  if (Reference) {
    std::pop_heap(RefQueue.begin(), RefQueue.end(), EntryScoreLess());
    RefCandidate &Best = RefQueue.back();
    P.Score = Best.Score;
    P.InputHash = Best.InputHash;
    P.NumParents = Best.NumParents;
    P.ReplacementLen = Best.ReplacementLen;
    P.NewBranchCount =
        Best.NewBranches ? static_cast<uint32_t>(Best.NewBranches->size()) : 0;
    InputOut = std::move(Best.Input);
    RefQueue.pop_back();
    return P;
  }
  std::pop_heap(Entries.begin(), Entries.end(), EntryScoreLess());
  Entry E = Entries.back();
  Entries.pop_back();
  Record &R = Records[E.Id];
  Group &G = Groups[R.Group];
  P.Id = E.Id;
  P.Score = E.Score;
  P.InputHash = R.InputHash;
  P.NumParents = G.NumParentsBase + R.ParentDelta;
  P.ReplacementLen = R.ReplacementLen;
  P.NewBranchCount = static_cast<uint32_t>(G.Branches.size());
  // The popped input is about to execute; its branch list has served its
  // purpose, so leave the group now and let it die with its last queued
  // member instead of with this record's whole ancestry.
  unlinkGroup(E.Id);
  materialize(E.Id, InputOut);
  return P; // the queue pin transfers to the caller — no Refs change
}

size_t CandidateStore::queueSize() const {
  return Reference ? RefQueue.size() : Entries.size();
}

double CandidateStore::scoreAt(size_t Pos) const {
  return Reference ? RefQueue[Pos].Score : Entries[Pos].Score;
}

uint64_t CandidateStore::hashAt(size_t Pos) const {
  return Reference ? RefQueue[Pos].InputHash
                   : Records[Entries[Pos].Id].InputHash;
}

void CandidateStore::materializeAt(size_t Pos, std::string &Out) const {
  if (Reference)
    Out = RefQueue[Pos].Input;
  else
    materialize(Entries[Pos].Id, Out);
}

void CandidateStore::exportAt(size_t Pos, Exported &Out) const {
  if (Reference) {
    const RefCandidate &C = RefQueue[Pos];
    Out.Bytes = C.Input;
    Out.Hash = C.InputHash;
    if (C.NewBranches)
      Out.Branches = *C.NewBranches;
    else
      Out.Branches.clear();
    Out.AvgStack = C.AvgStack;
    Out.PathHash = C.PathHash;
    Out.NumParents = C.NumParents;
    Out.ReplacementLen = C.ReplacementLen;
    return;
  }
  const Record &R = Records[Entries[Pos].Id];
  const Group &G = Groups[R.Group];
  materialize(Entries[Pos].Id, Out.Bytes);
  Out.Hash = R.InputHash;
  Out.Branches = G.Branches;
  Out.AvgStack = G.AvgStack;
  Out.PathHash = G.PathHash;
  Out.NumParents = G.NumParentsBase + R.ParentDelta;
  Out.ReplacementLen = R.ReplacementLen;
}

//===----------------------------------------------------------------------===//
// Rescore
//===----------------------------------------------------------------------===//

double CandidateStore::scoreRecord(const Record &R, const Group &G,
                                   const PathCountMap &PathCounts,
                                   const HeuristicOptions &Heur) const {
  CandidateFeatures F;
  F.NewBranches = static_cast<uint32_t>(G.Branches.size());
  F.InputLen = R.SpliceAt + R.SuffixLen;
  F.ReplacementLen = R.ReplacementLen;
  F.AvgStackSize = G.AvgStack;
  F.NumParents = G.NumParentsBase + R.ParentDelta;
  auto It = PathCounts.find(G.PathHash);
  F.PathCount = It == PathCounts.end() ? 0 : It->second;
  return heuristicScore(F, Heur);
}

bool CandidateStore::rescore(const BranchCoverageMap &VBr,
                             const PathCountMap &PathCounts,
                             const HeuristicOptions &Heur) {
  auto Begin = std::chrono::steady_clock::now();
  ++Stats.Rescores;
  bool Trimmed = false;
  uint64_t Now = VBr.epoch();
  if (Reference) {
    // The pre-store pass, verbatim: vBr only grows, so each candidate's
    // not-yet-covered list only shrinks. Candidates spawned from the same
    // run share one immutable list, so filter each distinct list once
    // (copy-on-rescore) and hand the filtered copy back to every sharer;
    // the epoch check skips even that when coverage has not grown since
    // the list was built.
    struct FilterEntry {
      SharedBranches Original; // pins the key's address for this pass
      SharedBranches Replacement;
    };
    std::unordered_map<const void *, FilterEntry> Filtered;
    for (RefCandidate &C : RefQueue) {
      if (C.NewBranches && !C.NewBranches->empty() && C.FilterEpoch != Now) {
        FilterEntry &Slot = Filtered[C.NewBranches.get()];
        if (!Slot.Replacement) {
          Slot.Original = C.NewBranches;
          auto Kept = std::make_shared<std::vector<uint32_t>>();
          Kept->reserve(C.NewBranches->size());
          for (uint32_t B : *C.NewBranches)
            if (!VBr.test(B))
              Kept->push_back(B);
          Slot.Replacement = std::move(Kept);
          ++Stats.GroupsFiltered;
        }
        C.NewBranches = Slot.Replacement;
      }
      C.FilterEpoch = Now;
      CandidateFeatures F;
      F.NewBranches =
          C.NewBranches ? static_cast<uint32_t>(C.NewBranches->size()) : 0;
      F.InputLen = static_cast<uint32_t>(C.Input.size());
      F.ReplacementLen = C.ReplacementLen;
      F.AvgStackSize = C.AvgStack;
      F.NumParents = C.NumParents;
      auto It = PathCounts.find(C.PathHash);
      F.PathCount = It == PathCounts.end() ? 0 : It->second;
      C.Score = heuristicScore(F, Heur);
    }
    if (RefQueue.size() > MaxQueue) {
      TELEMETRY_SPAN("trim");
      std::nth_element(RefQueue.begin(), RefQueue.begin() + MaxQueue / 2,
                       RefQueue.end(), EntryScoreGreater());
      Stats.TrimmedCandidates += RefQueue.size() - MaxQueue / 2;
      ++Stats.Trims;
      RefQueue.resize(MaxQueue / 2);
      Trimmed = true;
    }
    std::make_heap(RefQueue.begin(), RefQueue.end(), EntryScoreLess());
  } else {
    // Group-sliced pass: each distinct branch list is filtered exactly
    // once per rescore — the group's filter epoch is the memo, replacing
    // the per-pass pointer-keyed map. Filtering is in place; see the
    // header for why that is observationally identical to
    // copy-on-rescore.
    for (Entry &E : Entries) {
      Record &R = Records[E.Id];
      Group &G = Groups[R.Group];
      if (G.FilterEpoch != Now) {
        if (!G.Branches.empty()) {
          size_t Kept = 0;
          for (uint32_t B : G.Branches)
            if (!VBr.test(B))
              G.Branches[Kept++] = B;
          G.Branches.resize(Kept);
          ++Stats.GroupsFiltered;
        }
        G.FilterEpoch = Now;
      }
      E.Score = scoreRecord(R, G, PathCounts, Heur);
    }
    if (Entries.size() > MaxQueue) {
      TELEMETRY_SPAN("trim");
      // Same positional nth_element + resize as the by-value queue; it
      // sees the same score sequence at the same positions, so the same
      // candidates survive. The dropped ids release their suffix bytes
      // and (via the pin cascade) any ancestry nothing else holds.
      std::nth_element(Entries.begin(), Entries.begin() + MaxQueue / 2,
                       Entries.end(), EntryScoreGreater());
      for (size_t I = MaxQueue / 2, N = Entries.size(); I < N; ++I)
        release(Entries[I].Id);
      Stats.TrimmedCandidates += Entries.size() - MaxQueue / 2;
      ++Stats.Trims;
      Entries.resize(MaxQueue / 2);
      Trimmed = true;
      maybeCompactArena();
    }
    std::make_heap(Entries.begin(), Entries.end(), EntryScoreLess());
  }
  Stats.RescoreNanos += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Begin)
          .count());
  samplePeaks();
  return Trimmed;
}

//===----------------------------------------------------------------------===//
// Arena compaction
//===----------------------------------------------------------------------===//

void CandidateStore::maybeCompactArena() {
  // Rebuild when over half the arena is dead suffix bytes (and enough of
  // them to be worth a pass). Live records are exactly those with pins;
  // their offsets are patched to the fresh arena.
  if (ArenaGarbage <= 4096 || ArenaGarbage <= Arena.size() / 2)
    return;
  ByteArena Fresh;
  Fresh.reserve(Arena.size() - ArenaGarbage);
  for (Record &R : Records) {
    if (R.Refs == 0)
      continue;
    R.SuffixOfs = Fresh.append(Arena.view(R.SuffixOfs, R.SuffixLen));
  }
  Stats.ArenaBytesReclaimed += Arena.size() - Fresh.size();
  ++Stats.Compactions;
  Arena.swap(Fresh);
  ArenaGarbage = 0;
}

//===----------------------------------------------------------------------===//
// Accounting
//===----------------------------------------------------------------------===//

size_t CandidateStore::bytesInUse() const {
  if (Reference) {
    // The honest by-value footprint: candidate structs, each string's
    // heap block (capacity + NUL when it outgrew the small-string
    // buffer), and each distinct shared branch list (control block +
    // vector head + payload) counted once.
    size_t Bytes = RefQueue.capacity() * sizeof(RefCandidate);
    constexpr size_t SharedListOverhead =
        sizeof(std::vector<uint32_t>) + 32; // vector head + control block
    std::unordered_set<const void *> Seen;
    for (const RefCandidate &C : RefQueue) {
      if (C.Input.capacity() > 15)
        Bytes += C.Input.capacity() + 1;
      if (C.NewBranches && Seen.insert(C.NewBranches.get()).second)
        Bytes +=
            SharedListOverhead + C.NewBranches->capacity() * sizeof(uint32_t);
    }
    return Bytes;
  }
  size_t Bytes = Records.capacity() * sizeof(Record) +
                 Entries.capacity() * sizeof(Entry) + Arena.capacity() +
                 Groups.capacity() * sizeof(Group) +
                 FreeGroups.capacity() * sizeof(uint32_t);
  for (const Group &G : Groups)
    Bytes += G.Branches.capacity() * sizeof(uint32_t);
  return Bytes;
}

void CandidateStore::samplePeaks() {
  Stats.PeakBytes =
      std::max<uint64_t>(Stats.PeakBytes, static_cast<uint64_t>(bytesInUse()));
  Stats.PeakCandidates = std::max<uint64_t>(Stats.PeakCandidates, queueSize());
  Stats.PeakArenaBytes = std::max<uint64_t>(Stats.PeakArenaBytes, Arena.size());
  Stats.PeakGroups = std::max<uint64_t>(Stats.PeakGroups, LiveGroups);
}
