//===- core/PFuzzer.cpp - Parser-directed fuzzer --------------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/PFuzzer.h"

#include "core/ShardSync.h"
#include "support/Rng.h"
#include "support/Scheduler.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

using namespace pfuzz;

Fuzzer::~Fuzzer() = default;

PFuzzer::PFuzzer(HeuristicOptions Heur) { Options.Heur = Heur; }

PFuzzer::PFuzzer(PFuzzerOptions Options) : Options(Options) {}

namespace {

uint64_t hashBranches(const std::vector<uint32_t> &Branches) {
  uint64_t H = 0xCBF29CE484222325ULL;
  for (uint32_t B : Branches) {
    H ^= B;
    H *= 0x100000001B3ULL;
  }
  return H;
}

constexpr uint64_t FnvBasis = 0xCBF29CE484222325ULL;
constexpr uint64_t FnvPrime = 0x100000001B3ULL;

/// Folds \p Bytes into the running FNV-1a state \p H. FNV-1a is strictly
/// left-to-right, so extending the hash of a prefix with the replacement
/// bytes yields exactly the hash of prefix + replacement — addInputs
/// hashes candidates without ever building their strings.
uint64_t extendHash(uint64_t H, std::string_view Bytes) {
  for (char C : Bytes) {
    H ^= static_cast<unsigned char>(C);
    H *= FnvPrime;
  }
  return H;
}

/// FNV-1a over input bytes; keys both the run cache and the
/// seen-candidate dedup set.
uint64_t hashInput(std::string_view Input) {
  return extendHash(FnvBasis, Input);
}

/// Bounded LRU memoization of bare subject runs, keyed by input bytes.
/// Subjects are deterministic, so a recorded RunResult *is* the result of
/// re-executing the input; the fuzzer replays it without running the
/// subject. Entries verify the stored input on lookup, so a 64-bit hash
/// collision degrades to a miss, never to a wrong replay. Evicted entries
/// are recycled in place (RunResult::assignFrom reuses their buffer
/// capacities), so a warm cache performs no steady-state allocation.
class RunCache {
public:
  explicit RunCache(uint32_t Capacity) : Capacity(Capacity) {}

  /// Telemetry only (heartbeat hit rate, TelemetrySnapshot): probes of
  /// an enabled cache and how many replayed a recorded result. Never
  /// read by the search.
  uint64_t Lookups = 0;
  uint64_t Hits = 0;

  /// Returns the recorded result of running \p Input, or nullptr. The
  /// pointer is valid until the next insert(). \p Hash must be
  /// hashInput(Input) — the caller computes it once and shares it with
  /// insert().
  const RunResult *lookup(uint64_t Hash, std::string_view Input) {
    if (Capacity == 0)
      return nullptr;
    ++Lookups;
    auto It = Index.find(Hash);
    if (It == Index.end())
      return nullptr;
    Entry &E = Entries[It->second];
    if (E.Input != Input)
      return nullptr; // hash collision: treat as a miss
    touch(It->second);
    ++Hits;
    return &E.Result;
  }

  /// Non-mutating probe: true when the recorded result of \p Input is
  /// stored. Unlike lookup(), does not touch the LRU order — the
  /// speculative prefetcher uses this to skip predicting inputs whose
  /// result is already memoized.
  bool contains(uint64_t Hash, std::string_view Input) const {
    if (Capacity == 0)
      return false;
    auto It = Index.find(Hash);
    return It != Index.end() && Entries[It->second].Input == Input;
  }

  /// Records \p RR as the result of running \p Input, evicting the least
  /// recently used entry when full.
  ///
  /// Most inputs the search executes are unique, and storing a result
  /// copies its full traces — paid on every miss, recouped only on a
  /// later hit. The doorkeeper makes storage lazy: the first sighting of
  /// an input only records its hash, and the result is stored from the
  /// second execution on. Repeating inputs (requeued prefixes, revisited
  /// candidates) repeat again, so the hits that matter survive while the
  /// unique-input stream pays one hash probe instead of a trace copy.
  void insert(uint64_t H, std::string_view Input, const RunResult &RR) {
    if (Capacity == 0)
      return;
    if (Index.find(H) == Index.end() && Doorkeeper.insert(H).second)
      return; // first sighting: note the hash, defer the copy
    store(H, Input, RR);
  }

  /// Doorkeeper-bypassing insert: stores \p RR unconditionally. The
  /// prefetcher recycles mispredicted speculative runs through this —
  /// the trace copy was already paid by the worker, so the lazy-storage
  /// argument does not apply.
  void insertForced(uint64_t H, std::string_view Input, const RunResult &RR) {
    if (Capacity == 0)
      return;
    Doorkeeper.insert(H); // keep first-sighting bookkeeping consistent
    store(H, Input, RR);
  }

private:
  static constexpr uint32_t None = ~0u;

  /// Shared storage path of insert()/insertForced(): adopts the slot of a
  /// colliding hash, else takes a fresh or least-recently-used entry.
  void store(uint64_t H, std::string_view Input, const RunResult &RR) {
    auto It = Index.find(H);
    if (It != Index.end()) {
      // Hash already present (same input again, or a collision with a
      // different input): the slot adopts the newer run.
      Entry &E = Entries[It->second];
      E.Input.assign(Input);
      E.Result.assignFrom(RR);
      touch(It->second);
      return;
    }
    uint32_t Idx;
    if (Entries.size() < Capacity) {
      Idx = static_cast<uint32_t>(Entries.size());
      Entries.emplace_back();
      pushFront(Idx);
    } else {
      Idx = Tail;
      Index.erase(Entries[Idx].Hash);
      touch(Idx);
    }
    Entry &E = Entries[Idx];
    E.Hash = H;
    E.Input.assign(Input);
    E.Result.assignFrom(RR);
    Index.emplace(H, Idx);
  }

  struct Entry {
    uint64_t Hash = 0;
    std::string Input;
    RunResult Result;
    uint32_t Prev = None;
    uint32_t Next = None;
  };

  void unlink(uint32_t Idx) {
    Entry &E = Entries[Idx];
    if (E.Prev != None)
      Entries[E.Prev].Next = E.Next;
    else
      Head = E.Next;
    if (E.Next != None)
      Entries[E.Next].Prev = E.Prev;
    else
      Tail = E.Prev;
  }

  void pushFront(uint32_t Idx) {
    Entry &E = Entries[Idx];
    E.Prev = None;
    E.Next = Head;
    if (Head != None)
      Entries[Head].Prev = Idx;
    Head = Idx;
    if (Tail == None)
      Tail = Idx;
  }

  void touch(uint32_t Idx) {
    if (Head == Idx)
      return;
    unlink(Idx);
    pushFront(Idx);
  }

  uint32_t Capacity;
  std::vector<Entry> Entries;
  std::unordered_map<uint64_t, uint32_t> Index;
  /// Hashes of every input ever executed; grows with the campaign like
  /// the fuzzer's own Enqueued set (8 bytes per distinct input).
  std::unordered_set<uint64_t> Doorkeeper;
  uint32_t Head = None;
  uint32_t Tail = None;
};

class Speculator;

/// Trie-batched locality scheduler: drains the equal-score front of the
/// heuristic queue and pre-executes it in radix-trie DFS order. With a
/// prefix-resumption engine the pre-executions run inline through it, so
/// candidates sharing a warm prefix run back-to-back while the engine's
/// checkpoints for that prefix are hot (and each run's own ladder rungs
/// immediately serve its siblings). Without an engine — TSan builds,
/// non-resume-safe subjects — the DFS-ordered front fans out as cold
/// executions on the shared work-stealing scheduler at Locality priority
/// instead, overlapping the sequential loop.
///
/// Determinism discipline: only candidates *tied with the best score* are
/// pre-executed — the heap would pop them in arbitrary sibling order
/// anyway, and which of them it pops next is decided by the heap alone,
/// never by this scheduler. Pre-executions burn no execution budget,
/// draw no RNG, and their results are consumed by runCheck in pop order
/// with identical bookkeeping; since resumed executions are
/// byte-identical to cold ones, reports cannot tell a batched campaign
/// from a sequential one at any batch size.
class LocalityBatcher {
public:
  /// Exactly one of \p Engine and \p Sched drives the pre-executions:
  /// engine-inline when a resumption engine exists (its checkpoint reuse
  /// is the whole point of the DFS order), scheduler fan-out otherwise.
  LocalityBatcher(RunCache &Cache, const Subject &S,
                  PrefixResumeEngine *Engine, Scheduler *Sched,
                  uint32_t MaxBatch)
      : Cache(Cache), S(S), Engine(Engine), Sched(Sched), MaxBatch(MaxBatch) {
  }

  ~LocalityBatcher() { shutdown(); }

  LocalityStats Stats;

  /// True when a pre-executed result of \p Input is held. The speculator
  /// checks this before submitting to a worker — waste avoidance only.
  bool holds(uint64_t Hash, std::string_view Input) const {
    auto It = Ready.find(Hash);
    return It != Ready.end() && It->second->Input == Input;
  }

  /// Drains the equal-score front of \p Queue (up to the batch cap) into
  /// the trie and pre-executes it in DFS order, materializing each front
  /// candidate's bytes from the store into recycled scratch strings.
  /// \p Spec, when present, marks inputs already speculated on a worker.
  /// Defined after Speculator (it peeks at the in-flight table).
  void refill(const CandidateStore &Queue, const Speculator *Spec);

  /// Consumes the pre-executed result of \p Input if held: copies it
  /// into \p RR and returns true. On the scheduler path the execution
  /// may still be pending or in flight; a pending one is claimed and run
  /// on this thread (never waited for — waiting on unclaimed work while
  /// campaigns occupy the shared pool could deadlock it), a running one
  /// is awaited (bounded: a claimed execution always terminates). Stored
  /// inputs are verified, so a 64-bit hash collision degrades to a miss,
  /// never a wrong result.
  bool consume(uint64_t Hash, std::string_view Input, RunResult &RR) {
    auto It = Ready.find(Hash);
    if (It == Ready.end() || It->second->Input != Input)
      return false;
    std::unique_ptr<Slot> Sl = std::move(It->second);
    Ready.erase(It);
    if (Sl->Task.valid() && !Sl->Task.ran() && !Sl->Task.runInline())
      Sl->Task.wait();
    if (Sl->Task.valid() && !Sl->Task.ran()) {
      // Unreachable in practice (only this thread cancels); a defensive
      // miss beats reading an unwritten result.
      ++Stats.Discarded;
      Free.push_back(std::move(Sl));
      return false;
    }
    RR.assignFrom(Sl->Result);
    Free.push_back(std::move(Sl));
    ++Stats.Consumed;
    return true;
  }

  /// Campaign end: counts the leftovers nothing will ever consume.
  /// Scheduler-path slots are cancelled or awaited first so no worker
  /// outlives the slot its task writes into.
  void shutdown() {
    for (auto &KV : Ready) {
      Slot &Sl = *KV.second;
      if (Sl.Task.valid() && !Sl.Task.cancel())
        Sl.Task.wait();
    }
    Stats.Discarded += Ready.size();
    for (auto &KV : Ready)
      Free.push_back(std::move(KV.second));
    Ready.clear();
  }

private:
  struct Slot {
    uint64_t Hash = 0;
    /// refill() tick of last appearance in the front; eviction retires
    /// the stalest.
    uint64_t Tick = 0;
    std::string Input;
    /// Engine path: written inline by refill. Scheduler path: written
    /// only by the task claimed for this slot, read after ran() (the
    /// release/acquire edge is the task's Done publication).
    RunResult Result;
    /// Scheduler path only; invalid on the engine path.
    TaskHandle Task;
  };

  /// Evicts the stalest held result not re-batched this tick. A completed
  /// pre-execution is recycled into the LRU run cache (the execution was
  /// already paid, and front candidates often get popped many iterations
  /// later); a still-pending scheduler task is cancelled outright.
  bool evictOne() {
    auto Victim = Ready.end();
    for (auto It = Ready.begin(); It != Ready.end(); ++It) {
      if (It->second->Tick == Tick)
        continue;
      if (Victim == Ready.end() || It->second->Tick < Victim->second->Tick)
        Victim = It;
    }
    if (Victim == Ready.end())
      return false;
    Slot &Sl = *Victim->second;
    if (Sl.Task.valid() && Sl.Task.cancel()) {
      ++Stats.Discarded; // never ran; nothing to recycle
    } else {
      if (Sl.Task.valid())
        Sl.Task.wait();
      Cache.insertForced(Sl.Hash, Sl.Input, Sl.Result);
      ++Stats.Recycled;
    }
    Free.push_back(std::move(Victim->second));
    Ready.erase(Victim);
    return true;
  }

  RunCache &Cache;
  const Subject &S;
  PrefixResumeEngine *Engine;
  Scheduler *Sched;
  uint32_t MaxBatch;
  uint64_t Tick = 0;
  /// Pre-executed results awaiting their pop, keyed by input hash.
  std::unordered_map<uint64_t, std::unique_ptr<Slot>> Ready;
  /// Retired slots for reuse (their RunResult buffers stay warm).
  std::vector<std::unique_ptr<Slot>> Free;
  /// Scratch, recycled across refills. FrontInputs holds the
  /// materialized bytes of the tied front (one recycled string per
  /// slot), the only point where batched candidates exist as strings.
  std::vector<uint32_t> FrontIdx;
  std::vector<uint32_t> HeapStack;
  std::vector<uint32_t> Order;
  std::vector<std::string> FrontInputs;
  PrefixOrderTrie Trie;
  RunResult Scratch;
};

/// Speculative execution prefetcher: runs the top-ranked queue
/// candidates on the shared work-stealing scheduler (Speculation
/// priority, the lowest — prefetch never displaces campaigns or locality
/// batches) while the sequential Algorithm 1 loop processes the current
/// run. Subject executions are pure functions of the input
/// (deterministic, no shared mutable state — see the thread-safety
/// contract in runtime/ExecutionContext.h), so a prefetched RunResult
/// *is* the result the loop would have produced by executing the input
/// itself; consuming it instead of re-running the subject cannot change
/// any report byte.
///
/// Determinism discipline: the sequential thread makes every decision —
/// which inputs to speculate (refill), which results to consume
/// (consume, in pop order), and what to do with mispredictions (cancel,
/// or recycle completed runs into the LRU run cache). Workers only ever
/// call Subject::execute into a slot they exclusively own; they never
/// touch the queue, the Rng, vBr or the report. Thread scheduling can
/// therefore only affect *wall-clock* (and the HitsReady diagnostic),
/// never the search.
class Speculator {
public:
  /// \p Warmth (optional) ranks prediction-window ties by how deep a
  /// cached resume checkpoint reaches into each candidate — candidates
  /// extending a warm prefix belong to the lineage the loop is working
  /// on right now, so they are the likeliest next pops. \p Batch
  /// (optional) marks inputs the locality scheduler already holds
  /// pre-executed; submitting those would be pure waste. Both are
  /// wall-clock levers only: they reorder speculative work, never its
  /// consumption.
  Speculator(const Subject &S, RunCache &Cache, Scheduler &Sched,
             uint32_t Threads, uint32_t Depth,
             const PrefixResumeEngine *Warmth, const LocalityBatcher *Batch)
      : S(S), Cache(Cache), Sched(Sched), Warmth(Warmth), Batch(Batch),
        Depth(Depth != 0 ? Depth : 2 * Threads + 2) {}

  ~Speculator() { shutdown(); }

  SpeculationStats Stats;

  /// Predicts the likely next pops from the max-heap \p Queue and tops
  /// the in-flight set up to Depth speculative executions. Position 0 —
  /// the *exact* next pop — is always submitted first; the rest of the
  /// prediction window covers the heap's top levels, where the following
  /// pops almost always live. Entries predicted again are kept warm;
  /// stale mispredictions are evicted (cancelled if not started,
  /// recycled into the run cache if complete). The window's candidate
  /// bytes are materialized from the store into recycled scratch strings
  /// — the prediction handoff is one of the few points where a queued
  /// candidate needs to exist as a string at all.
  void refill(const CandidateStore &Queue) {
    size_t Size = Queue.queueSize();
    if (Size == 0)
      return;
    ++Tick;
    size_t Window = std::min(Size, size_t(4) * Depth);
    if (WindowInputs.size() < Window)
      WindowInputs.resize(Window);
    Scratch.clear();
    for (size_t I = 0; I != Window; ++I) {
      Queue.materializeAt(I, WindowInputs[I]);
      Scratch.push_back(
          {Queue.scoreAt(I),
           Warmth ? Warmth->warmPrefixLength(WindowInputs[I]) : 0, I});
    }
    size_t Want = std::min<size_t>(Depth, Scratch.size());
    // Score ties break towards the deepest cached resume prefix: a deep
    // warm prefix means the candidate extends a lineage the loop just
    // executed, which is exactly the region of the heap the next pops
    // come from — warmth is a pop-likelihood signal that scores cannot
    // see. Index last makes the order fully deterministic.
    std::partial_sort(Scratch.begin(),
                      Scratch.begin() + static_cast<ptrdiff_t>(Want),
                      Scratch.end(), [](const Pick &A, const Pick &B) {
                        if (A.Score != B.Score)
                          return A.Score > B.Score;
                        if (A.Warm != B.Warm)
                          return A.Warm > B.Warm;
                        return A.Idx < B.Idx;
                      });
    // Position 0 is popped next no matter how score ties resolve in the
    // partial sort; force it into the prediction set.
    maybeSubmit(Queue.hashAt(0), WindowInputs[0]);
    for (size_t I = 0; I != Want; ++I)
      maybeSubmit(Queue.hashAt(Scratch[I].Idx), WindowInputs[Scratch[I].Idx]);
  }

  /// True when \p Input is speculated (in flight or completed but not
  /// yet consumed). The locality batcher checks this before
  /// pre-executing — waste avoidance only, no determinism impact.
  bool holds(uint64_t Hash, std::string_view Input) const {
    auto It = InFlight.find(Hash);
    return It != InFlight.end() && It->second->Input == Input;
  }

  /// Consumes the speculated result of \p Input if one is in flight:
  /// a still-pending task is claimed and executed on this thread (never
  /// waited for — waiting on unclaimed work while campaigns occupy the
  /// shared pool could deadlock it), a running one is awaited (bounded:
  /// a claimed execution always terminates), and either way the result
  /// is copied into \p RR and true returned. Stored inputs are verified,
  /// so a 64-bit hash collision degrades to a miss, never a wrong
  /// result.
  bool consume(uint64_t Hash, std::string_view Input, RunResult &RR) {
    ++Stats.Lookups;
    auto It = InFlight.find(Hash);
    if (It == InFlight.end() || It->second->Input != Input)
      return false;
    std::unique_ptr<Slot> Sl = std::move(It->second);
    InFlight.erase(It);
    bool Ready = Sl->Task.ran();
    if (!Ready && !Sl->Task.runInline())
      Sl->Task.wait();
    if (!Sl->Task.ran()) {
      // Cancelled shell that had not drained yet: a miss.
      Free.push_back(std::move(Sl));
      return false;
    }
    RR.assignFrom(Sl->Result);
    ++Stats.Hits;
    if (Ready)
      ++Stats.HitsReady;
    Free.push_back(std::move(Sl));
    return true;
  }

  /// Retires every in-flight speculation: pending work is cancelled,
  /// running work is awaited and discarded. Called once at campaign end
  /// (and from the destructor) so workers never outlive the slots they
  /// write into.
  void shutdown() {
    for (auto &KV : InFlight) {
      Slot &Sl = *KV.second;
      if (Sl.Task.cancel()) {
        ++Stats.Cancelled;
        continue;
      }
      Sl.Task.wait();
      if (Sl.Task.ran())
        ++Stats.Discarded;
    }
    for (auto &KV : InFlight)
      Free.push_back(std::move(KV.second));
    InFlight.clear();
  }

private:
  struct Slot {
    uint64_t Hash = 0;
    /// refill() tick of last prediction; eviction retires the stalest.
    uint64_t Tick = 0;
    std::string Input;
    /// Written only by the thread that claimed this slot's task (a
    /// scheduler worker, or the sequential thread via runInline); read
    /// by the sequential thread after ran() (release/acquire through
    /// the task's Done publication). Recycled across speculations, so a
    /// warm slot executes without trace-buffer allocation, like the
    /// loop's own pooled RunResults.
    RunResult Result;
    TaskHandle Task;
  };

  void maybeSubmit(uint64_t Hash, const std::string &Input) {
    auto It = InFlight.find(Hash);
    if (It != InFlight.end()) {
      if (It->second->Input == Input)
        It->second->Tick = Tick; // predicted again: keep warm
      return;
    }
    if (Cache.contains(Hash, Input))
      return; // the loop will replay it for free anyway
    if (Batch && Batch->holds(Hash, Input))
      return; // the locality scheduler already ran it warm
    if (InFlight.size() >= 2 * size_t(Depth) && !evictOne())
      return;
    std::unique_ptr<Slot> Sl;
    if (!Free.empty()) {
      Sl = std::move(Free.back());
      Free.pop_back();
    } else {
      Sl = std::make_unique<Slot>();
    }
    Sl->Hash = Hash;
    Sl->Tick = Tick;
    Sl->Input = Input;
    Slot *Raw = Sl.get();
    const Subject *Subj = &S;
    Sl->Task = Sched.submit(TaskClass::Speculation, [Subj, Raw] {
      Subj->execute(Raw->Input, InstrumentationMode::Full, Raw->Result);
    });
    ++Stats.Submitted;
    InFlight.emplace(Raw->Hash, std::move(Sl));
  }

  /// Evicts the stalest in-flight entry not re-predicted this tick.
  /// Pending work is cancelled outright; completed work is recycled into
  /// the LRU run cache (the trace copy was already paid, and candidates
  /// often get popped many iterations after they stop being top-ranked).
  bool evictOne() {
    auto Victim = InFlight.end();
    for (auto It = InFlight.begin(); It != InFlight.end(); ++It) {
      if (It->second->Tick == Tick)
        continue;
      if (Victim == InFlight.end() ||
          It->second->Tick < Victim->second->Tick)
        Victim = It;
    }
    if (Victim == InFlight.end())
      return false;
    Slot &Sl = *Victim->second;
    if (Sl.Task.cancel()) {
      ++Stats.Cancelled;
    } else {
      Sl.Task.wait();
      if (Sl.Task.ran()) {
        Cache.insertForced(Sl.Hash, Sl.Input, Sl.Result);
        ++Stats.Recycled;
      }
    }
    Free.push_back(std::move(Victim->second));
    InFlight.erase(Victim);
    return true;
  }

  /// refill()'s selection record: heap score, warm resume-prefix depth,
  /// queue index.
  struct Pick {
    double Score;
    size_t Warm;
    size_t Idx;
  };

  const Subject &S;
  RunCache &Cache;
  /// The shared pool. Not owned: shutdown() cancels or awaits every
  /// in-flight task before the slots their lambdas point into are freed,
  /// so no destruction-order coupling with the scheduler is needed.
  Scheduler &Sched;
  const PrefixResumeEngine *Warmth;
  const LocalityBatcher *Batch;
  uint32_t Depth;
  uint64_t Tick = 0;
  /// In-flight and completed-but-unconsumed speculations, keyed by input
  /// hash; owned and mutated only by the sequential thread.
  std::unordered_map<uint64_t, std::unique_ptr<Slot>> InFlight;
  /// Retired slots for reuse (their RunResult buffers stay warm).
  std::vector<std::unique_ptr<Slot>> Free;
  /// Selection scratch for refill().
  std::vector<Pick> Scratch;
  /// Materialized prediction-window inputs, one recycled string per
  /// window slot.
  std::vector<std::string> WindowInputs;
};

void LocalityBatcher::refill(const CandidateStore &Queue,
                             const Speculator *Spec) {
  size_t Size = Queue.queueSize();
  if (Size < 2)
    return;
  // Collect the equal-score front. In a max-heap every candidate tied
  // with the root's score forms a root-connected subtree (a tied node's
  // parent scores >= it, and <= the root by the heap property, so the
  // whole ancestor chain is tied too); walking children 2i+1/2i+2 while
  // the score matches position 0 exactly enumerates the tie.
  double Top = Queue.scoreAt(0);
  FrontIdx.clear();
  HeapStack.clear();
  HeapStack.push_back(0);
  while (!HeapStack.empty() && FrontIdx.size() < MaxBatch) {
    uint32_t I = HeapStack.back();
    HeapStack.pop_back();
    if (Queue.scoreAt(I) != Top)
      continue;
    FrontIdx.push_back(I);
    size_t L = size_t(2) * I + 1;
    if (L < Size)
      HeapStack.push_back(static_cast<uint32_t>(L));
    if (L + 1 < Size)
      HeapStack.push_back(static_cast<uint32_t>(L + 1));
  }
  Stats.TieFront += FrontIdx.size();
  if (FrontIdx.size() < 2)
    return; // a front of one has no siblings to group
  ++Tick;
  // Trie DFS turns the heap's arbitrary sibling order into
  // lexicographic-by-bytes order: inputs sharing a prefix come out
  // adjacent, and a duplicate input keeps its first tag (one execution
  // serves every copy). The front's bytes are materialized here, into
  // recycled strings — the trie copies label bytes into its own arena,
  // so the scratch can be reused next refill.
  if (FrontInputs.size() < FrontIdx.size())
    FrontInputs.resize(FrontIdx.size());
  Trie.clear();
  for (size_t J = 0; J != FrontIdx.size(); ++J) {
    Queue.materializeAt(FrontIdx[J], FrontInputs[J]);
    Trie.insert(FrontInputs[J], static_cast<uint32_t>(J));
  }
  Order.clear();
  Trie.dfsOrder(Order);
  bool Ran = false;
  for (uint32_t J : Order) {
    const std::string &CInput = FrontInputs[J];
    uint64_t CHash = Queue.hashAt(FrontIdx[J]);
    auto It = Ready.find(CHash);
    if (It != Ready.end()) {
      if (It->second->Input == CInput)
        It->second->Tick = Tick; // still in the front: keep warm
      continue;
    }
    if (Cache.contains(CHash, CInput))
      continue; // the loop will replay it for free anyway
    if (Spec && Spec->holds(CHash, CInput))
      continue; // a worker is already executing it
    if (Ready.size() >= 2 * size_t(MaxBatch) && !evictOne())
      break;
    std::unique_ptr<Slot> Sl;
    if (!Free.empty()) {
      Sl = std::move(Free.back());
      Free.pop_back();
    } else {
      Sl = std::make_unique<Slot>();
    }
    Sl->Hash = CHash;
    Sl->Tick = Tick;
    Sl->Input = CInput;
    if (Engine) {
      // The engine's result may live in its pooled slot; copy it out
      // while the reference is valid (it dies at the next execute). The
      // engine is confined to this sequential thread, so warm execution
      // stays inline — its minted ladder rungs immediately serve the
      // next DFS sibling, which is the locality win itself.
      Sl->Task = TaskHandle();
      Sl->Result.assignFrom(Engine->execute(Sl->Input, Scratch));
    } else {
      // Cold pre-execution on the shared pool, still submitted in DFS
      // order so workers execute prefix-adjacent inputs back-to-back
      // (cache locality in the subject itself). The slot outlives the
      // task: consume/evict/shutdown all cancel-or-await before retiring
      // it, and a recycled slot's previous task is always terminal.
      const Subject *Subj = &S;
      Slot *Raw = Sl.get();
      Sl->Task = Sched->submit(TaskClass::Locality, [Subj, Raw] {
        Subj->execute(Raw->Input, InstrumentationMode::Full, Raw->Result);
      });
    }
    ++Stats.Batched;
    Ran = true;
    Ready.emplace(Sl->Hash, std::move(Sl));
  }
  if (Ran)
    ++Stats.Batches;
}

/// One pFuzzer campaign against one subject.
class Campaign {
public:
  Campaign(const Subject &S, const FuzzerOptions &Opts,
           const PFuzzerOptions &Config)
      : S(S), Opts(Opts), Config(Config), Heur(Config.Heur), R(Opts.Seed),
        Cache(Config.RunCacheSize),
        Store(Config.ReferenceQueue, Config.MaxQueue) {
    // The prefix-resumption engine: only for subjects audited as safe to
    // checkpoint, and only when this build can switch stacks — anything
    // else falls back to plain full re-execution, which records the
    // same bytes. The engine is owned by (and confined to) this
    // sequential loop; speculation workers re-execute cold instead of
    // sharing suspended runs.
    if (Config.ResumeCacheSize > 0 && S.resumeSafe() &&
        PrefixResumeEngine::available())
      Resume = std::make_unique<PrefixResumeEngine>(
          [Subj = &S](ExecutionContext &Ctx) { return Subj->run(Ctx); },
          Config.ResumeCacheSize, Config.ResumeMinLength,
          Config.ResumeStride, Config.ResumeRungs);
    // Resolve the shared pool once: an explicit Config.Sched wins
    // (campaign runners thread theirs through so Jobs and speculation
    // share workers), otherwise the process-global scheduler — but only
    // when something will actually submit to it, so plain sequential
    // campaigns never spin up threads.
    Scheduler *Sched = Config.Sched;
    bool WantSched = Config.SpeculationThreads > 0 ||
                     (Config.LocalityBatch > 0 && !Resume);
    if (!Sched && WantSched)
      Sched = &Scheduler::global();
    // The locality batcher pre-executes through the resumption engine
    // when one exists (warm, inline, rungs hot for DFS siblings);
    // without one it fans cold executions out on the scheduler instead.
    if (Config.LocalityBatch > 0)
      Batch = std::make_unique<LocalityBatcher>(
          Cache, S, Resume.get(), Resume ? nullptr : Sched,
          Config.LocalityBatch);
    if (Config.SpeculationThreads > 0)
      Spec = std::make_unique<Speculator>(S, Cache, *Sched,
                                          Config.SpeculationThreads,
                                          Config.SpeculationDepth,
                                          Resume.get(), Batch.get());
    Sync = Config.SyncEndpoint;
  }

  FuzzReport run();

private:
  /// Runs \p Input; on a valid run with new coverage performs the
  /// validInp bookkeeping and sets \p Valid (line 27-35). Returns the
  /// run's result, which may live in \p Scratch, the run cache, or the
  /// resumption engine's pool — read it through the returned pointer
  /// only, which stays valid until the next runCheck call.
  /// \p Hash must be hashInput(Input); candidates carry it precomputed.
  const RunResult *runCheck(const std::string &Input, uint64_t Hash,
                            RunResult &Scratch, bool &Valid);

  /// Appends an (Executions, |vBr|) sample unless it duplicates the last
  /// one — runCheck's valid-input sample and the budget-interval sampler
  /// can otherwise emit the same pair back-to-back.
  void sampleTimeline() {
    std::pair<uint64_t, uint64_t> Sample(Report.Executions, VBr.size());
    if (!Report.CoverageTimeline.empty() &&
        Report.CoverageTimeline.back() == Sample)
      return;
    Report.CoverageTimeline.push_back(Sample);
  }

  /// Heuristic-relevant facts extracted from one run. The run's
  /// new-branch list lives in the store as a group (one list shared by
  /// every candidate the run spawns); Run is its handle, released at the
  /// end of the iteration that executed it. NewBranchCount is the list
  /// size captured at creation — push-time scores use it even if a
  /// mid-iteration rescore filters the queued copies, exactly as the
  /// by-value queue scored pushes from its unfiltered RunStats list.
  struct RunStats {
    uint32_t Run = CandidateStore::None;
    uint32_t NewBranchCount = 0;
    double AvgStack = 0;
    uint64_t PathHash = 0;
    uint32_t LastIdx = 0;
    bool HaveIdx = false;
  };

  /// Computes coverage/stack/path statistics of \p RR per Section 3.1
  /// (coverage only up to the first comparison of the last character)
  /// and opens the run's group in the store. \p ParentCount becomes the
  /// group's parent-chain base (substitution candidates add one).
  RunStats computeStats(const RunResult &RR, uint32_t ParentCount);

  /// Generates substitution candidates from the comparisons of \p RR on
  /// \p Input (procedure addInputs, lines 19-25). \p ParentRec is the
  /// store record of \p Input (the candidates' materialization parent).
  void addInputs(const std::string &Input, const RunResult &RR,
                 const RunStats &Stats, uint32_t ParentCount,
                 uint32_t ParentRec);

  /// Puts \p Input back into the queue after a run that tried to read
  /// past the end: the parser wants more input, so the prefix deserves
  /// further random extensions (Section 2: "continue with the generated
  /// prefix"). Path-novelty decay keeps this from looping forever.
  void requeuePrefix(const std::string &Input, uint64_t Hash,
                     const RunStats &Stats, uint32_t ParentCount,
                     uint32_t ParentRec);

  /// Recomputes all queue scores against the grown vBr (lines 40-43) and
  /// enforces the queue cap; a trim also resets oversized requeue
  /// counters, as before.
  void rescoreQueue() {
    TELEMETRY_SPAN("rescore");
    if (Store.rescore(VBr, PathCounts, Heur) &&
        RequeueCounts.size() > Config.MaxQueue)
      RequeueCounts.clear();
  }

  /// Samples this shard's local state and writes one heartbeat record.
  /// Called by the runCheck whose tick crossed an interval boundary;
  /// reads only shard-confined state (plus scheduler counters, which are
  /// atomics), so concurrent shard emissions need no shared locks beyond
  /// the emitter's own.
  void emitHeartbeat() {
    HeartbeatSample HS;
    HS.Shard = Sync ? Sync->index() : 0;
    HS.Frontier = VBr.size();
    HS.QueueBytes = Store.bytesInUse();
    HS.RunCacheHitRate =
        Cache.Lookups == 0 ? 0
                           : static_cast<double>(Cache.Hits) /
                                 static_cast<double>(Cache.Lookups);
    if (Resume)
      HS.ResumeHitRate = Resume->stats().hitRate();
    HS.SchedStealRate =
        (Config.Sched ? Config.Sched->stats() : Scheduler::globalStats())
            .stealSuccessRate();
    HS.ShardLag = Sync ? Sync->Stats.MaxFrontierLag : 0;
    Config.Heartbeat->emit(HS);
  }

  /// Counts one execution of the parse path \p PathHash, decaying the
  /// table when it outgrows the queue cap. The table previously grew
  /// without bound over a campaign (8+4 bytes per distinct path);
  /// halving all counts and dropping the zeros keeps it capped while
  /// preserving the ranking's shape — hot paths stay hot relative to
  /// cold ones, and a count that decayed to zero had already stopped
  /// mattering (the score term saturates at 24). Both queue modes share
  /// this table, so decay cannot break compact-vs-reference identity.
  void notePath(uint64_t PathHash) {
    ++PathCounts[PathHash];
    Store.Stats.PeakPathTable =
        std::max<uint64_t>(Store.Stats.PeakPathTable, PathCounts.size());
    if (PathCounts.size() <= Config.MaxQueue)
      return;
    for (auto It = PathCounts.begin(); It != PathCounts.end();) {
      It->second /= 2;
      if (It->second == 0)
        It = PathCounts.erase(It);
      else
        ++It;
    }
    ++Store.Stats.PathDecays;
  }

  /// The possible replacement strings a comparison admits. \p RR owns the
  /// arena the event's operand slices resolve against.
  std::vector<std::string> expansions(const RunResult &RR,
                                      const ComparisonEvent &E);

  /// Push-time candidate score; the store's rescore pass recomputes the
  /// same features through the same heuristicScore overload, so a
  /// candidate's score is identical no matter which layer computes it.
  double scoreCandidate(uint32_t NewBranchCount, size_t InputLen,
                        size_t ReplacementLen, double AvgStack,
                        uint32_t NumParents, uint64_t PathHash) {
    CandidateFeatures F;
    F.NewBranches = NewBranchCount;
    F.InputLen = static_cast<uint32_t>(InputLen);
    F.ReplacementLen = static_cast<uint32_t>(ReplacementLen);
    F.AvgStackSize = AvgStack;
    F.NumParents = NumParents;
    auto It = PathCounts.find(PathHash);
    F.PathCount = It == PathCounts.end() ? 0 : It->second;
    return heuristicScore(F, Heur);
  }

  /// Crosses every epoch boundary the execution count has passed:
  /// publishes this shard's packet (coverage delta + top-of-heap
  /// candidate), then merges peers' packets through the previous epoch —
  /// the lag-1 discipline that makes every merge point and packet content
  /// a pure function of execution counts. No-op when unsharded.
  void shardSyncPoints();

  /// Builds and publishes the packet of epoch EpochsDone. Final packets
  /// carry the last coverage delta and never a candidate.
  void publishShardPacket(bool Final);

  /// Bookkeeping of one consumed peer packet: folds the coverage delta
  /// into vBr and imports the migrated candidate (rescored against this
  /// shard's own coverage and path counts). \p Alive distinguishes
  /// in-loop merges from the end-of-campaign drain, where candidates are
  /// counted rejected — the campaign is over and cannot execute them.
  void handleShardPacket(const ShardPacket &P, bool Alive);

  char randomChar() {
    // "A random character from the set of all ASCII characters"; we skew
    // towards printables with occasional whitespace/control bytes.
    uint64_t Roll = R.below(16);
    if (Roll == 0)
      return '\n';
    if (Roll == 1)
      return '\t';
    return R.nextPrintable();
  }

  const Subject &S;
  const FuzzerOptions &Opts;
  const PFuzzerOptions &Config;
  const HeuristicOptions &Heur;
  Rng R;
  FuzzReport Report;
  /// Branches covered by valid inputs (Algorithm 1's vBr, line 2); lives
  /// directly in the report. A dense bitmap: the test-per-branch loops in
  /// runCheck/computeStats/rescoreQueue are the campaign's hottest code.
  BranchCoverageMap &VBr = Report.ValidBranches;
  /// Per-path execution counts, bounded by notePath's decay.
  std::unordered_map<uint64_t, uint32_t> PathCounts;
  /// Seen-candidate dedup keyed by 64-bit input hash instead of the input
  /// bytes. A colliding hash drops a genuinely new candidate; tolerated —
  /// at ~1e5 live entries the odds are ~1e-9 per insert, the search is
  /// redundant by design, and the set costs 8 bytes per entry instead of
  /// a stored string.
  std::unordered_set<uint64_t> Enqueued;
  /// Memoized bare runs; see PFuzzerOptions::RunCacheSize.
  RunCache Cache;
  /// The candidate priority queue (max-heap by score): compact
  /// prefix-suffix records by default, by-value strings when
  /// Config.ReferenceQueue — see core/CandidateStore.h.
  CandidateStore Store;
  /// Speculative prefetcher, or null when SpeculationThreads == 0.
  std::unique_ptr<Speculator> Spec;
  /// Prefix-resumption engine, or null when disabled/ineligible; see
  /// PFuzzerOptions::ResumeCacheSize.
  std::unique_ptr<PrefixResumeEngine> Resume;
  /// Trie-batched locality scheduler, or null when LocalityBatch == 0
  /// or the resumption engine is off; see PFuzzerOptions::LocalityBatch.
  std::unique_ptr<LocalityBatcher> Batch;
  /// How often each prefix was re-enqueued for another random extension;
  /// bounded so retired prefixes stop consuming budget. Keyed by the
  /// prefix's 64-bit input hash (the campaign already carries it)
  /// instead of the prefix bytes: no O(len) copy + hash per requeue, 12
  /// bytes per entry instead of a stored string. A colliding hash merges
  /// two prefixes' retry counters; tolerated for the same reason as the
  /// Enqueued set above.
  std::unordered_map<uint64_t, uint32_t> RequeueCounts;
  uint64_t LastRescore = 0;
  /// Reusable scratch for per-run distinct-branch extraction; cleared,
  /// never reallocated, on each execution.
  std::vector<uint32_t> CoveredScratch;
  std::vector<uint32_t> UpToScratch;
  /// Per-run not-yet-covered list, handed to the store's makeRun;
  /// recycled across runs (the store copies it).
  std::vector<uint32_t> FreshScratch;
  /// Rolling FNV-1a prefix hashes of the current addInputs input:
  /// PrefixHashes[i] hashes the first i bytes, so a candidate's hash is
  /// extendHash(PrefixHashes[SpliceAt], Rep) — no string is built.
  std::vector<uint64_t> PrefixHashes;
  /// Shard-sync endpoint, or null when this campaign is unsharded.
  ShardEndpoint *Sync = nullptr;
  /// Epoch boundaries crossed so far (== packets published).
  uint64_t EpochsDone = 0;
  /// vBr epoch at the last publish: the exportDelta anchor, so each
  /// packet carries exactly the outcomes covered since the previous one.
  uint64_t LastPublishedMark = 0;
  /// Scratch of publishShardPacket / handleShardPacket (recycled).
  CandidateStore::Exported ExportScratch;
  std::vector<uint32_t> ImportFilterScratch;
};

} // namespace

FuzzReport Campaign::run() {
  std::string Input(1, randomChar()); // line 4
  uint64_t InputHash = hashInput(Input);
  uint32_t ParentCount = 0;
  // The current input's store record: candidates spawned from it
  // reference it as their materialization parent instead of copying its
  // bytes. Popping a candidate hands over its (already pinned) record;
  // campaign starts and restarts intern a fresh root.
  uint32_t CurId = Store.internRoot(Input, InputHash);
  uint64_t SampleEvery = std::max<uint64_t>(1, Opts.MaxExecutions / 256);
  // The two RunResults live across the whole campaign: each execution
  // recycles their trace buffers (Subject::execute clears contents but
  // keeps capacity), so the steady state allocates nothing per run.
  RunResult RR, RE;
  while (Report.Executions < Opts.MaxExecutions) {
    bool Valid = false;
    const RunResult *Run = runCheck(Input, InputHash, RR, Valid); // line 7
    RunStats Stats = computeStats(*Run, ParentCount);
    notePath(Stats.PathHash);
    // Captured now: *Run may point into the resumption engine's pool,
    // which the extension run below recycles.
    bool WantsMore = Run->hitEof();
    // The extension input's record, when this iteration makes one; its
    // substitution children splice below its one-char suffix.
    uint32_t EId = CandidateStore::None;
    if (Valid) {
      if (!Config.ResetOnValid)
        addInputs(Input, *Run, Stats, ParentCount,
                  CurId); // via validInp, line 44
    } else {
      // "After every rejection, we satisfy the comparisons leading to
      // rejection": substitutions from the bare run first. (A random
      // extension could merge into the last token -- e.g. a letter after
      // a keyword -- and hide these alternatives.)
      addInputs(Input, *Run, Stats, ParentCount, CurId);
      if (Report.Executions >= Opts.MaxExecutions) {
        Store.releaseRun(Stats.Run);
        break;
      }
      // Early refill: the bare run's substitutions are enqueued, so the
      // heap's top already names the likely next pops. Handing them to
      // the workers *before* the sequential extension run below lets the
      // speculative executions overlap it.
      if (Spec)
        Spec->refill(Store);
      std::string EInp = Input + randomChar(); // line 15
      uint64_t EHash = hashInput(EInp);
      // Line 9-12: run the extended input; whether it turned out valid or
      // not, its comparisons seed the next substitutions.
      bool EValid = false;
      const RunResult *ERun = runCheck(EInp, EHash, RE, EValid);
      RunStats EStats = computeStats(*ERun, ParentCount);
      notePath(EStats.PathHash);
      EId = Store.internChild(CurId, Input.size(), Input,
                              std::string_view(EInp).substr(Input.size()),
                              EHash);
      addInputs(EInp, *ERun, EStats, ParentCount, EId);
      Store.releaseRun(EStats.Run);
    }
    // A run that read past the end wants more input: keep the prefix
    // alive so it receives further random extensions (unless valid
    // inputs are configured to reset instead of continue).
    if (WantsMore && Input.size() < Opts.MaxInputLen &&
        !(Valid && Config.ResetOnValid))
      requeuePrefix(Input, InputHash, Stats, ParentCount, CurId);
    Store.releaseRun(Stats.Run);
    if (Report.Executions / SampleEvery !=
        (Report.Executions + 1) / SampleEvery)
      sampleTimeline();
    // Path-novelty decay: candidate scores embed the path counts of their
    // creation time; refresh them periodically so lineages that keep
    // re-executing the same parse path sink in the queue (Section 3.2's
    // "ranking those highest that cover new paths").
    if (Report.Executions >= LastRescore + 384) {
      LastRescore = Report.Executions;
      rescoreQueue();
    }
    // Shard synchronization at deterministic execution-count boundaries.
    // Before the empty-queue check: a migrated candidate can rescue an
    // exhausted queue instead of forcing a random restart.
    if (Sync)
      shardSyncPoints();
    if (Store.empty()) {
      // Search exhausted (tiny languages): restart from a fresh random
      // character to keep exploring different seeds.
      Store.release(EId);
      Store.release(CurId);
      Input.assign(1, randomChar());
      InputHash = hashInput(Input);
      ParentCount = 0;
      CurId = Store.internRoot(Input, InputHash);
      continue;
    }
    // Locality batching runs at the iteration boundary, when the queue
    // front is final for this pop: the tied front — whichever of it the
    // heap happens to pop next — is pre-executed in trie order while its
    // shared prefixes are warm. Before the speculator refill, so workers
    // skip what the batcher holds.
    if (Batch)
      Batch->refill(Store, Spec.get());
    // Final refill for this iteration: the queue now also holds the
    // extension run's candidates, and position 0 is the exact input
    // popped next, so its execution is guaranteed to be speculated.
    if (Spec)
      Spec->refill(Store);
    CandidateStore::Popped Best = Store.pop(Input); // line 14
    if (Opts.Verbose)
      std::fprintf(stderr,
                   "pop score=%.1f new=%zu len=%zu rep=%u par=%u [%s]\n",
                   Best.Score, static_cast<size_t>(Best.NewBranchCount),
                   Input.size(), Best.ReplacementLen, Best.NumParents,
                   Input.c_str());
    // The old current input (and this iteration's extension) stop being
    // potential parents; their pins drop and the popped record's takes
    // over. Any queued descendant keeps the needed ancestry alive.
    Store.release(EId);
    Store.release(CurId);
    CurId = Best.Id;
    InputHash = Best.InputHash;
    ParentCount = Best.NumParents;
  }
  sampleTimeline();
  // Terminal exchange: the Final packet carries the last coverage delta
  // and tells peers to stop waiting for this shard; the drain consumes
  // every remaining peer packet so that globally every published packet
  // is merged exactly once (late migrations count as rejected — the
  // campaign cannot execute them anymore).
  if (Sync) {
    ++EpochsDone;
    publishShardPacket(/*Final=*/true);
    Sync->drainAll(
        [this](const ShardPacket &P) { handleShardPacket(P, false); });
  }
  Store.samplePeaks();
  if (Spec) {
    Spec->shutdown();
    if (Config.StatsOut)
      *Config.StatsOut = Spec->Stats;
  } else if (Config.StatsOut) {
    *Config.StatsOut = SpeculationStats();
  }
  if (Config.ResumeStatsOut)
    *Config.ResumeStatsOut = Resume ? Resume->stats() : ResumeStats();
  if (Batch)
    Batch->shutdown();
  if (Config.LocalityStatsOut)
    *Config.LocalityStatsOut = Batch ? Batch->Stats : LocalityStats();
  if (Config.QueueStatsOut)
    *Config.QueueStatsOut = Store.Stats;
  // The consolidated tree is filled from the very sources the individual
  // sinks above just read (after every shutdown finalized them), so the
  // old `*StatsOut` pointers are thin views over this snapshot: both
  // always report field-identical values. The scheduler delta is filled
  // one level up in PFuzzer::run, which brackets the whole campaign.
  if (Config.TelemetryOut) {
    TelemetrySnapshot &T = *Config.TelemetryOut;
    T = TelemetrySnapshot();
    T.Executions = Report.Executions;
    T.ValidInputs = Report.ValidInputs.size();
    T.FrontierSize = VBr.size();
    T.RunCacheLookups = Cache.Lookups;
    T.RunCacheHits = Cache.Hits;
    if (Spec)
      T.Speculation = Spec->Stats;
    if (Resume)
      T.Resume = Resume->stats();
    if (Batch)
      T.Locality = Batch->Stats;
    T.Queue = Store.Stats;
    if (Sync)
      T.Sharding = Sync->Stats;
  }
  return std::move(Report);
}

const RunResult *Campaign::runCheck(const std::string &Input, uint64_t Hash,
                                    RunResult &Scratch, bool &Valid) {
  TELEMETRY_SPAN("run");
  Valid = false;
  const RunResult *Run;
  // Memoized replay: the search re-executes identical inputs routinely
  // (requeued prefixes, candidates regenerated after a queue trim). A hit
  // reads the recorded result in place instead of re-running the subject,
  // still counts against the execution budget, and flows through the
  // identical bookkeeping below — the report cannot tell a replay from a
  // run.
  if (const RunResult *Cached = Cache.lookup(Hash, Input)) {
    Run = Cached;
  } else if (Batch && Batch->consume(Hash, Input, Scratch)) {
    // Pre-executed by the locality batcher while its prefix checkpoint
    // was warm; resumed runs are byte-identical to cold ones, so this is
    // the result re-running would produce. Flows into the cache exactly
    // like a fresh execution.
    Cache.insert(Hash, Input, Scratch);
    Run = &Scratch;
  } else if (Spec && Spec->consume(Hash, Input, Scratch)) {
    // Speculated: a worker already executed this input, and subjects are
    // deterministic, so the prefetched result is what re-running would
    // produce.
    Cache.insert(Hash, Input, Scratch);
    Run = &Scratch;
  } else if (Resume) {
    // Resume-from-checkpoint when a cached prefix matches, cold run on
    // the fiber otherwise; either way the result is byte-identical to a
    // plain execution and flows into the run cache the same. The engine
    // may return a reference into its checkpoint pool rather than
    // Scratch — all downstream reads go through Run.
    const RunResult &Res = Resume->execute(Input, Scratch);
    Cache.insert(Hash, Input, Res);
    Run = &Res;
  } else {
    // Recycles Scratch's buffers.
    S.execute(Input, InstrumentationMode::Full, Scratch);
    Cache.insert(Hash, Input, Scratch);
    Run = &Scratch;
  }
  ++Report.Executions;
  // Heartbeat: one branch when disabled, one relaxed increment when
  // armed. The claiming tick samples and emits; nothing here reads back
  // into the search.
  if (Config.Heartbeat && Config.Heartbeat->tick())
    emitHeartbeat();
  if (Run->ExitCode != 0)
    return Run;
  if (Opts.OnValidInput)
    Opts.OnValidInput(Input);
  Run->coveredBranches(CoveredScratch);
  bool NewCoverage = false;
  for (uint32_t B : CoveredScratch) {
    if (!VBr.test(B)) {
      NewCoverage = true;
      break;
    }
  }
  if (!NewCoverage)
    return Run; // line 29: valid requires exit 0 AND new branches
  // validInp (lines 37-45): print, grow vBr, re-rank the queue.
  Report.ValidInputs.push_back(Input);
  VBr.insert(CoveredScratch.begin(), CoveredScratch.end());
  sampleTimeline();
  rescoreQueue();
  Valid = true;
  return Run;
}

std::vector<std::string> Campaign::expansions(const RunResult &RR,
                                              const ComparisonEvent &E) {
  std::string_view Expected = RR.expected(E);
  std::vector<std::string> Out;
  switch (E.Kind) {
  case CompareKind::CharEq:
    Out.push_back(std::string(Expected));
    break;
  case CompareKind::CharSet:
    for (char C : Expected)
      Out.push_back(std::string(1, C));
    break;
  case CompareKind::CharRange: {
    unsigned Lo = static_cast<unsigned char>(Expected[0]);
    unsigned Hi = static_cast<unsigned char>(Expected[1]);
    // An inverted range (a subject comparing with swapped bounds) admits
    // no character at all; without this guard Hi - Lo + 1 underflows into
    // a huge sample bound and fabricates out-of-range candidates.
    if (Hi < Lo)
      break;
    if (Hi - Lo + 1 <= 16) {
      for (unsigned C = Lo; C <= Hi; ++C)
        Out.push_back(std::string(1, static_cast<char>(C)));
    } else {
      // Large range: the boundaries plus a deterministic random sample.
      Out.push_back(std::string(1, static_cast<char>(Lo)));
      Out.push_back(std::string(1, static_cast<char>(Hi)));
      for (int I = 0; I < 6; ++I)
        Out.push_back(std::string(
            1, static_cast<char>(Lo + R.below(Hi - Lo + 1))));
    }
    break;
  }
  case CompareKind::StrEq:
    Out.push_back(std::string(Expected));
    break;
  }
  return Out;
}

Campaign::RunStats Campaign::computeStats(const RunResult &RR,
                                          uint32_t ParentCount) {
  RunStats Stats;
  // The last compared input position: substitutions always happen at the
  // last index where a comparison took place (Section 3). Comparisons on
  // the EOF sentinel are excluded -- "an attempt to access a character
  // beyond the length of the input" means the parser wants *more* input,
  // which Algorithm 1 serves with the random extension (line 15), not
  // with substitution. Implicit-flow events are invisible to the
  // taint-based extraction and are skipped as well.
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Implicit || E.OnEof || E.Taint.empty())
      continue;
    Stats.LastIdx = std::max(Stats.LastIdx, E.Taint.maxIndex());
    Stats.HaveIdx = true;
  }

  // Coverage credit for the heuristic: Section 3.1 counts coverage only
  // "up to the last accepted character" so error-handling code after the
  // rejection point earns nothing. Operationally we cut the trace right
  // after the run's last comparison: once the parser stops examining
  // input, everything that follows is error unwinding. (This also gives
  // runs that accepted a whole keyword credit for the parser progress the
  // keyword unlocked, which a cut at the *first* comparison of the last
  // character would discard.)
  uint32_t Cutoff = static_cast<uint32_t>(RR.BranchTrace.size());
  for (const ComparisonEvent &E : RR.Comparisons)
    if (!E.Implicit)
      Cutoff = E.TracePosition + 1;
  RR.coveredBranchesUpTo(Cutoff, UpToScratch);
  // One list per run, stored as a group in the candidate store; every
  // candidate spawned from this run references the group instead of
  // carrying a copy.
  FreshScratch.clear();
  for (uint32_t B : UpToScratch)
    if (!VBr.test(B))
      FreshScratch.push_back(B);
  Stats.NewBranchCount = static_cast<uint32_t>(FreshScratch.size());
  Stats.PathHash = hashBranches(UpToScratch);

  // Average stack size between the second-last and last comparison.
  const ComparisonEvent *Last = nullptr, *SecondLast = nullptr;
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Implicit)
      continue;
    SecondLast = Last;
    Last = &E;
  }
  if (Last != nullptr)
    Stats.AvgStack = SecondLast != nullptr
                         ? (Last->StackDepth + SecondLast->StackDepth) / 2.0
                         : Last->StackDepth;
  Stats.Run = Store.makeRun(FreshScratch, VBr.epoch(), Stats.AvgStack,
                            Stats.PathHash, ParentCount);
  return Stats;
}

void Campaign::addInputs(const std::string &Input, const RunResult &RR,
                         const RunStats &Stats, uint32_t ParentCount,
                         uint32_t ParentRec) {
  if (!Stats.HaveIdx)
    return;
  // Rolling prefix hashes, computed once per call: candidate hashes are
  // derived from them without building any candidate string — the
  // allocation the by-value queue paid per candidate is gone entirely.
  PrefixHashes.resize(Input.size() + 1);
  uint64_t H = FnvBasis;
  PrefixHashes[0] = H;
  for (size_t I = 0; I != Input.size(); ++I) {
    H ^= static_cast<unsigned char>(Input[I]);
    H *= FnvPrime;
    PrefixHashes[I + 1] = H;
  }
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Implicit || E.OnEof || E.Taint.empty())
      continue;
    // Substitutions happen at the last compared index -- except for
    // string comparisons, which are always worth satisfying ("values that
    // stem from string comparisons ... will likely lead to the complex
    // input structures we want to cover", Section 3). Runtime keyword and
    // member-name strcmps (tinyc/mjs execute the program) fire *after*
    // parse-time comparisons at later indices, so a strict last-index
    // rule would drop them.
    if (E.Taint.maxIndex() != Stats.LastIdx &&
        E.Kind != CompareKind::StrEq)
      continue;
    size_t SpliceAt = std::min<size_t>(E.Taint.minIndex(), Input.size());
    for (std::string &Rep : expansions(RR, E)) {
      // The candidate is Input[0, SpliceAt) + Rep; compare and hash it
      // against the parent in place.
      size_t NewLen = SpliceAt + Rep.size();
      if ((NewLen == Input.size() &&
           Input.compare(SpliceAt, Rep.size(), Rep) == 0) ||
          NewLen > Opts.MaxInputLen)
        continue;
      // One FNV-1a extension serves the dedup set here, the run-cache key
      // and the prefetcher's in-flight table later: the hash rides on the
      // record instead of being recomputed at pop time.
      uint64_t Hash = extendHash(PrefixHashes[SpliceAt], Rep);
      if (!Enqueued.insert(Hash).second)
        continue;
      double Score =
          scoreCandidate(Stats.NewBranchCount, NewLen, Rep.size(),
                         Stats.AvgStack, ParentCount + 1, Stats.PathHash);
      Store.push(Stats.Run, ParentRec, Input, SpliceAt, Rep, Hash,
                 static_cast<uint32_t>(Rep.size()), /*ParentDelta=*/1, Score);
      if (Store.queueSize() > Config.MaxQueue)
        rescoreQueue();
    }
  }
}

void Campaign::requeuePrefix(const std::string &Input, uint64_t Hash,
                             const RunStats &Stats, uint32_t ParentCount,
                             uint32_t ParentRec) {
  uint32_t &Count = RequeueCounts[Hash];
  if (Count >= 12)
    return; // retired: this prefix had its chances
  ++Count;
  // Deliberately bypasses the Enqueued dedup: the same prefix re-enters
  // once per execution so a fresh random extension gets its chance; each
  // round costs it an extra score point so retries drain gradually.
  double Score = scoreCandidate(Stats.NewBranchCount, Input.size(), 1,
                                Stats.AvgStack, ParentCount, Stats.PathHash) -
                 Count;
  if (Opts.Verbose)
    std::fprintf(stderr, "requeue score=%.1f count=%u [%s]\n", Score, Count,
                 Input.c_str());
  // An empty-suffix record spliced at the full length: the requeued
  // candidate *is* its parent, byte for byte, at zero stored bytes.
  Store.push(Stats.Run, ParentRec, Input, Input.size(), std::string_view(),
             Hash, /*ReplacementLen=*/1, /*ParentDelta=*/0, Score);
  if (Store.queueSize() > Config.MaxQueue)
    rescoreQueue();
}

void Campaign::shardSyncPoints() {
  uint64_t Interval = std::max<uint64_t>(1, Config.ShardSyncInterval);
  // An iteration can cross more than one boundary (two executions per
  // iteration at a tiny interval); every crossed boundary publishes its
  // own packet so the per-producer epoch sequence stays gapless — the
  // collect protocol counts on packets arriving as 1, 2, 3, ...
  while (Report.Executions >= (EpochsDone + 1) * Interval) {
    TELEMETRY_SPAN("shard_sync");
    ++EpochsDone;
    publishShardPacket(/*Final=*/false);
    // Lag-1 merge: consume peers through the previous epoch. Publishing
    // *before* collecting keeps the protocol deadlock-free — every shard
    // makes its packet available before it waits on anyone else's.
    Sync->collectThrough(EpochsDone - 1, [this](const ShardPacket &P) {
      handleShardPacket(P, /*Alive=*/true);
    });
  }
}

void Campaign::publishShardPacket(bool Final) {
  ShardPacket P;
  P.Epoch = EpochsDone;
  P.Final = Final;
  VBr.exportDelta(LastPublishedMark, P.Branches);
  LastPublishedMark = VBr.epoch();
  // Migration payload: the exact next pop of this shard's heap — its
  // best-scored lead, worth propagating instead of re-deriving N times.
  // Final packets skip it (peers may already be draining).
  if (!Final && !Store.empty()) {
    Store.exportAt(0, ExportScratch);
    P.HasCandidate = true;
    P.CandidateBytes = ExportScratch.Bytes;
    P.CandidateHash = ExportScratch.Hash;
    P.CandidateBranches = ExportScratch.Branches;
    P.CandidateAvgStack = ExportScratch.AvgStack;
    P.CandidatePathHash = ExportScratch.PathHash;
    P.CandidateNumParents = ExportScratch.NumParents;
    P.CandidateReplacementLen = ExportScratch.ReplacementLen;
  }
  Sync->publish(P);
}

void Campaign::handleShardPacket(const ShardPacket &P, bool Alive) {
  // Foreign coverage folds straight into vBr: the valid-input novelty
  // test and the heuristic's NewBranches term now measure against the
  // joint frontier, so shards stop re-earning each other's discoveries.
  // vBr stays grow-only, which is all the store's monotone group
  // filtering assumes.
  Sync->Stats.BranchesImported +=
      VBr.mergeDelta(P.Branches.begin(), P.Branches.end());
  if (!P.HasCandidate)
    return;
  if (!Alive || P.CandidateBytes.size() > Opts.MaxInputLen ||
      !Enqueued.insert(P.CandidateHash).second) {
    // Already enqueued here (or previously migrated in), oversize, or
    // arriving after this campaign's budget ended.
    ++Sync->Stats.MigrationsRejected;
    return;
  }
  // Rescore against *this* shard's coverage: the carried branch list is
  // re-filtered against local vBr and the score recomputed with local
  // path counts, so an import competes in the local queue on local
  // merit.
  ImportFilterScratch.clear();
  for (uint32_t B : P.CandidateBranches)
    if (!VBr.test(B))
      ImportFilterScratch.push_back(B);
  uint32_t Run = Store.makeRun(ImportFilterScratch, VBr.epoch(),
                               P.CandidateAvgStack, P.CandidatePathHash,
                               P.CandidateNumParents);
  double Score = scoreCandidate(
      static_cast<uint32_t>(ImportFilterScratch.size()),
      P.CandidateBytes.size(), P.CandidateReplacementLen, P.CandidateAvgStack,
      P.CandidateNumParents, P.CandidatePathHash);
  // Root-shaped push: no parent record, splice at 0, the full bytes as
  // the suffix — the one record shape that materializes identically in
  // both queue representations.
  Store.push(Run, CandidateStore::None, P.CandidateBytes, /*SpliceAt=*/0,
             P.CandidateBytes, P.CandidateHash, P.CandidateReplacementLen,
             /*ParentDelta=*/0, Score);
  Store.releaseRun(Run);
  ++Sync->Stats.MigrationsAccepted;
  if (Store.queueSize() > Config.MaxQueue)
    rescoreQueue();
}

namespace {

/// Per-shard seed: a SplitMix64 finalizer over (seed, shard) so shard
/// streams are decorrelated. Deliberately maps shard 0 away from the
/// campaign seed — a sharded search differs from the unsharded one
/// anyway, and distinct streams avoid N shards racing through identical
/// opening moves.
uint64_t mixShardSeed(uint64_t Seed, uint32_t Shard) {
  uint64_t Z = Seed + 0x9E3779B97F4A7C15ULL * (uint64_t(Shard) + 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// The sharded campaign engine: N full shard campaigns on dedicated
/// threads, exchanging frontier deltas and candidates through a ShardHub,
/// reduced into one FuzzReport in stable shard order. Deterministic for
/// fixed (seed, N, interval): per-shard seeds and budgets are computed,
/// sync points are execution-count epochs, and the reduce never looks at
/// completion order.
FuzzReport runSharded(const Subject &S, const FuzzerOptions &Opts,
                      const PFuzzerOptions &Config) {
  uint32_t N = Config.Shards;
  ShardHub Hub(N);
  // Option blocks and stat sinks live here so the campaign-held
  // references stay valid for the threads' whole lifetime.
  std::vector<FuzzerOptions> ShardOpts(N);
  std::vector<PFuzzerOptions> ShardConfigs(N);
  std::vector<SpeculationStats> SpecStats(N);
  std::vector<ResumeStats> ResumeStats_(N);
  std::vector<LocalityStats> LocalityStats_(N);
  std::vector<QueueStats> QueueStats_(N);
  std::vector<TelemetrySnapshot> Telemetry_(N);
  std::vector<FuzzReport> Reports(N);
  // OnValidInput is caller-supplied and not required to be thread-safe;
  // serialize it. Callback order across shards is timing-dependent, but
  // every caller in the tree accumulates commutatively (token sets), and
  // the FuzzReport itself never depends on the callback.
  std::mutex ValidMutex;
  for (uint32_t I = 0; I != N; ++I) {
    FuzzerOptions &SO = ShardOpts[I];
    SO = Opts;
    SO.Seed = mixShardSeed(Opts.Seed, I);
    // Budget split: first MaxExecutions % N shards take the remainder,
    // so the shard budgets are a deterministic partition of the total.
    SO.MaxExecutions =
        Opts.MaxExecutions / N + (I < Opts.MaxExecutions % N ? 1 : 0);
    if (Opts.OnValidInput) {
      auto Inner = Opts.OnValidInput;
      SO.OnValidInput = [&ValidMutex, Inner](std::string_view Input) {
        std::lock_guard<std::mutex> Lock(ValidMutex);
        Inner(Input);
      };
    }
    PFuzzerOptions &SC = ShardConfigs[I];
    SC = Config;
    SC.Shards = 1;
    SC.SyncEndpoint = &Hub.endpoint(I);
    SC.StatsOut = &SpecStats[I];
    SC.ResumeStatsOut = &ResumeStats_[I];
    SC.LocalityStatsOut = &LocalityStats_[I];
    SC.QueueStatsOut = &QueueStats_[I];
    SC.ShardStatsOut = nullptr;
    SC.TelemetryOut = Config.TelemetryOut ? &Telemetry_[I] : nullptr;
  }
  // Dedicated threads by design — see PFuzzerOptions::Shards. Shard
  // loops block at epoch boundaries; their speculation and locality
  // sublayers still share the work-stealing scheduler.
  std::vector<std::thread> Threads;
  Threads.reserve(N);
  for (uint32_t I = 0; I != N; ++I)
    Threads.emplace_back([&S, &ShardOpts, &ShardConfigs, &Reports, I] {
      Reports[I] = Campaign(S, ShardOpts[I], ShardConfigs[I]).run();
    });
  for (std::thread &T : Threads)
    T.join();

  // Aggregate the optional diagnostic sinks.
  if (Config.StatsOut) {
    *Config.StatsOut = SpeculationStats();
    for (const SpeculationStats &St : SpecStats)
      Config.StatsOut->accumulate(St);
  }
  if (Config.ResumeStatsOut) {
    *Config.ResumeStatsOut = ResumeStats();
    for (const ResumeStats &St : ResumeStats_)
      Config.ResumeStatsOut->accumulate(St);
  }
  if (Config.LocalityStatsOut) {
    *Config.LocalityStatsOut = LocalityStats();
    for (const LocalityStats &St : LocalityStats_)
      Config.LocalityStatsOut->accumulate(St);
  }
  if (Config.QueueStatsOut) {
    *Config.QueueStatsOut = QueueStats();
    for (const QueueStats &St : QueueStats_)
      Config.QueueStatsOut->accumulate(St);
  }
  if (Config.ShardStatsOut) {
    *Config.ShardStatsOut = ShardStats();
    for (uint32_t I = 0; I != N; ++I)
      Config.ShardStatsOut->accumulate(Hub.endpoint(I).Stats);
  }
  if (Config.TelemetryOut) {
    // Fold per-shard snapshots in stable shard order, exactly as the
    // individual sinks above fold their per-shard vectors.
    *Config.TelemetryOut = TelemetrySnapshot();
    for (uint32_t I = 0; I != N; ++I)
      Config.TelemetryOut->accumulate(Telemetry_[I]);
  }

  // Deterministic reduce, stable shard order (never completion order).
  FuzzReport Merged;
  uint64_t Offset = 0;
  uint64_t RunningCoverage = 0;
  for (uint32_t I = 0; I != N; ++I) {
    FuzzReport &R = Reports[I];
    Merged.Executions += R.Executions;
    for (std::string &Input : R.ValidInputs)
      Merged.ValidInputs.push_back(std::move(Input));
    // Union of per-shard frontiers. Every foreign branch a shard merged
    // was genuinely covered by its origin shard, so the union equals the
    // coverage of the concatenated valid-input stream.
    std::vector<uint32_t> Values = R.ValidBranches.values();
    Merged.ValidBranches.insert(Values.begin(), Values.end());
    // Timeline: concatenate with per-shard execution offsets, forcing
    // the coverage coordinate monotone (shards overlap in wall-clock, so
    // a serialized timeline is an approximate diagnostic, not a report
    // invariant — documented in docs/TUNING.md).
    for (const std::pair<uint64_t, uint64_t> &Sample : R.CoverageTimeline) {
      uint64_t Cov = std::max(RunningCoverage, Sample.second);
      RunningCoverage = Cov;
      if (!Merged.CoverageTimeline.empty() &&
          Merged.CoverageTimeline.back() ==
              std::make_pair(Offset + Sample.first, Cov))
        continue;
      Merged.CoverageTimeline.emplace_back(Offset + Sample.first, Cov);
    }
    Offset += R.Executions;
  }
  std::pair<uint64_t, uint64_t> FinalSample(Merged.Executions,
                                            Merged.ValidBranches.size());
  if (Merged.CoverageTimeline.empty() ||
      Merged.CoverageTimeline.back() != FinalSample)
    Merged.CoverageTimeline.push_back(FinalSample);
  // The merged union is the campaign's real frontier; per-shard
  // accumulation above only kept the largest single-shard view of it.
  if (Config.TelemetryOut)
    Config.TelemetryOut->FrontierSize = Merged.ValidBranches.size();
  return Merged;
}

} // namespace

FuzzReport PFuzzer::run(const Subject &S, const FuzzerOptions &Opts) {
  // The scheduler delta brackets the whole campaign (all shards, all
  // sublayers submit to the same pool). Read only when requested, so
  // campaigns without telemetry never force the global pool into
  // existence.
  SchedulerStats SchedBefore;
  if (Options.TelemetryOut)
    SchedBefore =
        Options.Sched ? Options.Sched->stats() : Scheduler::globalStats();
  FuzzReport R;
  if (Options.Shards > 1) {
    R = runSharded(S, Opts, Options);
  } else {
    // Unsharded: the plain sequential engine, untouched — --shards=1 is
    // byte-identical to every prior release by construction.
    if (Options.ShardStatsOut)
      *Options.ShardStatsOut = ShardStats();
    R = Campaign(S, Opts, Options).run();
  }
  if (Options.TelemetryOut)
    Options.TelemetryOut->Sched =
        (Options.Sched ? Options.Sched->stats() : Scheduler::globalStats())
            .minus(SchedBefore);
  return R;
}
