//===- core/Heuristic.cpp - Algorithm 1 search heuristic ------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Heuristic.h"

#include <algorithm>

using namespace pfuzz;

double pfuzz::heuristicScore(const HeuristicInputs &In,
                             const HeuristicOptions &Opt) {
  double Cov = In.NewBranches;
  if (Opt.LengthPenalty)
    Cov -= In.InputLen;
  if (Opt.ReplacementBonus)
    Cov += 2.0 * In.ReplacementLen;
  if (Opt.StackSizeTerm)
    Cov -= In.AvgStackSize;
  if (Opt.ParentCountTerm)
    Cov -= In.NumParents;
  // Path-novelty ranking (Section 3.2): inputs whose parse path was seen
  // often sink in the queue. Capped so a hot path cannot dominate the
  // coverage signal entirely.
  if (Opt.PathNovelty)
    Cov -= std::min<uint32_t>(In.PathCount, 24);
  return Cov;
}

double pfuzz::heuristicScore(const CandidateFeatures &F,
                             const HeuristicOptions &Opt) {
  HeuristicInputs In;
  In.NewBranches = F.NewBranches;
  In.InputLen = F.InputLen;
  In.ReplacementLen = F.ReplacementLen;
  In.AvgStackSize = F.AvgStackSize;
  In.NumParents = F.NumParents;
  In.PathCount = F.PathCount;
  return heuristicScore(In, Opt);
}

//===----------------------------------------------------------------------===//
// PrefixOrderTrie
//===----------------------------------------------------------------------===//

void PrefixOrderTrie::clear() {
  Nodes.clear();
  Labels.clear();
  Keys = 0;
}

int32_t PrefixOrderTrie::newNode(std::string_view Label) {
  Node N;
  N.LabelOff = static_cast<uint32_t>(Labels.size());
  N.LabelLen = static_cast<uint32_t>(Label.size());
  Labels.append(Label);
  Nodes.push_back(N);
  return static_cast<int32_t>(Nodes.size()) - 1;
}

bool PrefixOrderTrie::insert(std::string_view Key, uint32_t Tag) {
  if (Nodes.empty())
    Nodes.push_back(Node()); // root: empty label
  int32_t Cur = 0;
  std::string_view Rest = Key;
  for (;;) {
    if (Rest.empty()) {
      if (Nodes[Cur].Tag >= 0)
        return false; // duplicate key: first tag wins
      Nodes[Cur].Tag = static_cast<int32_t>(Tag);
      ++Keys;
      return true;
    }
    // Walk the sibling chain, which is kept sorted by leading byte — the
    // sort is what makes the DFS order a pure function of the key bytes.
    unsigned char Lead = static_cast<unsigned char>(Rest[0]);
    int32_t Prev = -1, Child = Nodes[Cur].FirstChild;
    while (Child != -1 &&
           static_cast<unsigned char>(labelOf(Nodes[Child])[0]) < Lead) {
      Prev = Child;
      Child = Nodes[Child].NextSibling;
    }
    if (Child == -1 ||
        static_cast<unsigned char>(labelOf(Nodes[Child])[0]) != Lead) {
      // No edge shares the leading byte: a fresh leaf carries the whole
      // remainder, linked into its sorted sibling position.
      int32_t Leaf = newNode(Rest);
      Nodes[Leaf].Tag = static_cast<int32_t>(Tag);
      Nodes[Leaf].NextSibling = Child;
      if (Prev == -1)
        Nodes[Cur].FirstChild = Leaf;
      else
        Nodes[Prev].NextSibling = Leaf;
      ++Keys;
      return true;
    }
    // Shared leading byte: find where the edge label and the key diverge.
    uint32_t COff = Nodes[Child].LabelOff, CLen = Nodes[Child].LabelLen;
    size_t Lim = std::min<size_t>(CLen, Rest.size());
    size_t Common = 1;
    while (Common < Lim && Labels[COff + Common] == Rest[Common])
      ++Common;
    if (Common == CLen) {
      // The whole edge matched: descend.
      Cur = Child;
      Rest.remove_prefix(Common);
      continue;
    }
    // Split the edge: Child keeps the common part, a new node adopts the
    // label suffix (sharing the same arena bytes) plus Child's payload.
    Node SuffixNode;
    SuffixNode.LabelOff = COff + static_cast<uint32_t>(Common);
    SuffixNode.LabelLen = CLen - static_cast<uint32_t>(Common);
    Nodes.push_back(SuffixNode);
    int32_t Suffix = static_cast<int32_t>(Nodes.size()) - 1;
    Nodes[Suffix].Tag = Nodes[Child].Tag;
    Nodes[Suffix].FirstChild = Nodes[Child].FirstChild;
    Nodes[Child].LabelLen = static_cast<uint32_t>(Common);
    Nodes[Child].Tag = -1;
    Nodes[Child].FirstChild = Suffix;
    if (Common == Rest.size()) {
      // The key ends exactly at the split point.
      Nodes[Child].Tag = static_cast<int32_t>(Tag);
      ++Keys;
      return true;
    }
    int32_t Leaf = newNode(Rest.substr(Common));
    Nodes[Leaf].Tag = static_cast<int32_t>(Tag);
    unsigned char A =
        static_cast<unsigned char>(Labels[Nodes[Suffix].LabelOff]);
    unsigned char B = static_cast<unsigned char>(Rest[Common]);
    if (B < A) {
      Nodes[Child].FirstChild = Leaf;
      Nodes[Leaf].NextSibling = Suffix;
    } else {
      Nodes[Suffix].NextSibling = Leaf;
    }
    ++Keys;
    return true;
  }
}

void PrefixOrderTrie::dfsOrder(std::vector<uint32_t> &Out) const {
  if (Nodes.empty())
    return;
  Stack.clear();
  Stack.push_back(0);
  // Pre-order DFS with an explicit stack: the sibling is pushed before
  // the first child, so the child's whole subtree drains first (LIFO) —
  // and a key that is a prefix of another is emitted before it.
  while (!Stack.empty()) {
    const Node &N = Nodes[Stack.back()];
    Stack.pop_back();
    if (N.NextSibling != -1)
      Stack.push_back(N.NextSibling);
    if (N.Tag >= 0)
      Out.push_back(static_cast<uint32_t>(N.Tag));
    if (N.FirstChild != -1)
      Stack.push_back(N.FirstChild);
  }
}
