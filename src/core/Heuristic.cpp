//===- core/Heuristic.cpp - Algorithm 1 search heuristic ------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Heuristic.h"

#include <algorithm>

using namespace pfuzz;

double pfuzz::heuristicScore(const HeuristicInputs &In,
                             const HeuristicOptions &Opt) {
  double Cov = In.NewBranches;
  if (Opt.LengthPenalty)
    Cov -= In.InputLen;
  if (Opt.ReplacementBonus)
    Cov += 2.0 * In.ReplacementLen;
  if (Opt.StackSizeTerm)
    Cov -= In.AvgStackSize;
  if (Opt.ParentCountTerm)
    Cov -= In.NumParents;
  // Path-novelty ranking (Section 3.2): inputs whose parse path was seen
  // often sink in the queue. Capped so a hot path cannot dominate the
  // coverage signal entirely.
  if (Opt.PathNovelty)
    Cov -= std::min<uint32_t>(In.PathCount, 24);
  return Cov;
}
