//===- core/CandidateStore.h - Compact candidate queue store -----*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The candidate priority queue of Algorithm 1, stored compactly: a
/// queued candidate is a 40-byte POD record (parent id, splice point,
/// suffix slice in a shared byte arena, input hash) instead of an owned
/// std::string, and the heap itself is an array of 16-byte
/// (Score, CandidateId) pairs. A candidate's full input bytes exist only
/// on demand — materialize() walks the parent chain and reassembles the
/// prefix + suffix segments — so queue memory is O(candidates +
/// distinct-suffix-bytes) instead of O(candidates x input-length), and
/// pushing a candidate allocates nothing in steady state.
///
/// Records that share one parent run's new-branch list are chained into a
/// *group* holding the list plus the run-constant heuristic terms
/// (average stack depth, path hash, parent-chain base). A rescore then
/// filters each distinct list exactly once — the group's filter epoch is
/// the memo — instead of hashing shared_ptr addresses into a per-pass
/// map the way the original implementation did.
///
/// Determinism contract: the heap uses the exact positional
/// std::push_heap / std::pop_heap / std::make_heap / std::nth_element
/// calls and the same score-only comparator as the string-backed queue,
/// so with identical scores the permutations — and therefore the pop
/// sequence, trim survivors, and every FuzzReport byte — are identical.
/// Scores are identical because (a) push-time scores are computed by the
/// campaign from the run's captured (unfiltered) branch count, exactly
/// as the string-backed queue scores pushes after a mid-iteration
/// rescore, and (b) in-place group filtering is observationally
/// equivalent to copy-on-rescore: vBr only grows, so
/// filter(filter(L, vBr1), vBr2) == filter(L, vBr2) whenever vBr1 is a
/// subset of vBr2 — a list filtered early yields the same count at every
/// later rescore as the original list filtered late. See DESIGN.md §14.
///
/// Constructed with Reference = true the store instead keeps a faithful
/// by-value candidate heap (owned std::string + shared_ptr branch list +
/// copy-on-rescore map — the pre-store implementation, preserved
/// verbatim) behind the same interface. The identity sweep test runs
/// both modes and asserts byte-identical reports; the benches use it for
/// honest before/after memory and throughput numbers.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_CORE_CANDIDATESTORE_H
#define PFUZZ_CORE_CANDIDATESTORE_H

#include "core/BranchCoverageMap.h"
#include "core/Heuristic.h"
#include "support/ByteArena.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pfuzz {

/// How often each parse path was taken; owned by the campaign (which
/// also decays it), read by the store's rescore pass.
using PathCountMap = std::unordered_map<uint64_t, uint32_t>;

/// Diagnostic counters of the candidate store. Purely observational:
/// none feed back into the search, so they can vary while the FuzzReport
/// stays byte-identical. Byte figures are sampled (every rescore, every
/// 1024th push, and at campaign end), so PeakBytes is a high-water mark
/// of the sampled points, not of every instant.
struct QueueStats {
  /// Candidates pushed into the queue (substitutions + requeues).
  uint64_t Pushes = 0;
  /// Full rescore passes over the queue.
  uint64_t Rescores = 0;
  /// Wall time spent inside rescore passes.
  uint64_t RescoreNanos = 0;
  /// Distinct branch lists filtered across all rescores (group slices in
  /// the compact store, copy-on-rescore map entries in reference mode).
  uint64_t GroupsFiltered = 0;
  /// Overflow trims (worst-scored half dropped).
  uint64_t Trims = 0;
  /// Candidates dropped by trims.
  uint64_t TrimmedCandidates = 0;
  /// Suffix-arena compactions after trims.
  uint64_t Compactions = 0;
  /// Arena bytes reclaimed by compactions.
  uint64_t ArenaBytesReclaimed = 0;
  /// Path-table decays performed by the campaign (see
  /// PFuzzer.cpp:notePath).
  uint64_t PathDecays = 0;
  /// Sampled high-water mark of total queue memory (records + arena +
  /// heap + group lists; reference mode counts strings and shared lists).
  uint64_t PeakBytes = 0;
  /// High-water mark of queued candidates.
  uint64_t PeakCandidates = 0;
  /// High-water mark of suffix-arena bytes (0 in reference mode).
  uint64_t PeakArenaBytes = 0;
  /// High-water mark of live groups (distinct parent runs with queued
  /// candidates or a live run handle).
  uint64_t PeakGroups = 0;
  /// High-water mark of the campaign's path table.
  uint64_t PeakPathTable = 0;

  /// Sums counters and maxes high-water marks — campaign runners
  /// aggregate per-seed stats into one per-cell total.
  void accumulate(const QueueStats &Other);
};

/// The candidate queue. See the file comment for the two storage modes.
class CandidateStore {
public:
  /// Null record/run id.
  static constexpr uint32_t None = ~0u;

  /// What pop() hands the campaign, besides the materialized input: the
  /// popped record's pin (compact mode; the caller releases it when the
  /// input stops being a potential parent) and the fields the verbose
  /// trace and the next iteration's bookkeeping need.
  struct Popped {
    uint32_t Id = None;
    double Score = 0;
    uint64_t InputHash = 0;
    uint32_t NumParents = 0;
    uint32_t ReplacementLen = 0;
    uint32_t NewBranchCount = 0;
  };

  CandidateStore(bool Reference, size_t MaxQueue);
  ~CandidateStore();

  CandidateStore(const CandidateStore &) = delete;
  CandidateStore &operator=(const CandidateStore &) = delete;

  /// Mutable so the campaign can fold its own counters (path decays,
  /// path-table peak) into the same sink.
  QueueStats Stats;

  //===--------------------------------------------------------------------===//
  // Lineage (compact mode; no-ops returning None in reference mode)
  //===--------------------------------------------------------------------===//

  /// Interns \p Input as a chain root (campaign start / restart) and
  /// returns its pinned record id.
  uint32_t internRoot(std::string_view Input, uint64_t Hash);

  /// Interns parent[0, SpliceAt) + \p Suffix as a pinned record — the
  /// campaign's random-extension input, so the extension's substitution
  /// children can reference it as their parent. \p ParentInput must be
  /// the parent's full materialized bytes (used to rebase a deep chain,
  /// see maybeRebase).
  uint32_t internChild(uint32_t Parent, size_t SpliceAt,
                       std::string_view ParentInput, std::string_view Suffix,
                       uint64_t Hash);

  /// Drops one pin of \p Id. A record with no pins left is freed and the
  /// release cascades up its parent chain. release(None) is a no-op.
  void release(uint32_t Id);

  //===--------------------------------------------------------------------===//
  // Run lifecycle
  //===--------------------------------------------------------------------===//

  /// Opens a group for one executed run: \p NewBranches (copied; the
  /// campaign's scratch is reusable afterwards) plus the run-constant
  /// heuristic terms every candidate of this run shares. The group is
  /// pinned until releaseRun and lives on while queued members reference
  /// it.
  uint32_t makeRun(const std::vector<uint32_t> &NewBranches,
                   uint64_t FilterEpoch, double AvgStack, uint64_t PathHash,
                   uint32_t NumParentsBase);

  /// Drops the run pin of \p Run (end of the loop iteration that
  /// executed it). releaseRun(None) is a no-op.
  void releaseRun(uint32_t Run);

  //===--------------------------------------------------------------------===//
  // Queue operations
  //===--------------------------------------------------------------------===//

  /// Pushes the candidate parent[0, SpliceAt) + \p Suffix with
  /// \p Score, attached to \p Run's group. \p Hash must be the FNV-1a
  /// hash of the full candidate bytes (the campaign derives it from a
  /// prefix-hash array without building the string). \p ParentDelta is
  /// the candidate's parent-chain growth over the group's base (1 for
  /// substitutions, 0 for requeued prefixes). Compact mode stores a
  /// record + suffix bytes; reference mode builds the full string from
  /// \p ParentInput. The caller checks queueSize() against its cap and
  /// triggers rescore, mirroring the original push-then-maybe-trim
  /// order.
  void push(uint32_t Run, uint32_t Parent, std::string_view ParentInput,
            size_t SpliceAt, std::string_view Suffix, uint64_t Hash,
            uint32_t ReplacementLen, uint32_t ParentDelta, double Score);

  /// Pops the best-scored candidate: materializes its input into
  /// \p InputOut and returns its metadata. In compact mode the record
  /// stays pinned (the queue pin transfers to the caller).
  Popped pop(std::string &InputOut);

  size_t queueSize() const;
  bool empty() const { return queueSize() == 0; }

  /// Re-filters every queued candidate's new-branch list against \p VBr
  /// and recomputes all scores (Algorithm 1 lines 40-43); enforces the
  /// queue cap by dropping the worst-scored half when exceeded. Returns
  /// true when a trim happened (the campaign resets its requeue counters
  /// on trim, as before).
  bool rescore(const BranchCoverageMap &VBr, const PathCountMap &PathCounts,
               const HeuristicOptions &Heur);

  //===--------------------------------------------------------------------===//
  // Positional heap accessors (speculative prefetcher, locality batcher)
  //===--------------------------------------------------------------------===//

  /// Heap-array position access: \p Pos indexes the heap layout (0 is
  /// the next pop; children of i at 2i+1 / 2i+2), exactly as the
  /// prefetcher and the locality batcher walked the by-value queue.
  double scoreAt(size_t Pos) const;
  uint64_t hashAt(size_t Pos) const;
  void materializeAt(size_t Pos, std::string &Out) const;

  /// Everything a candidate needs to cross a shard boundary (see
  /// core/ShardSync.h): full bytes, hash, and the run features an
  /// importing shard rescores against its own coverage. Branches is the
  /// candidate's group list as last filtered *here* — importers re-filter
  /// it against their own vBr, which monotone filtering makes exact.
  struct Exported {
    std::string Bytes;
    uint64_t Hash = 0;
    std::vector<uint32_t> Branches;
    double AvgStack = 0;
    uint64_t PathHash = 0;
    uint32_t NumParents = 0;
    uint32_t ReplacementLen = 0;
  };

  /// Copies the candidate at heap position \p Pos (0 = the next pop) out
  /// of the store. String buffers of \p Out are recycled across calls.
  void exportAt(size_t Pos, Exported &Out) const;

  //===--------------------------------------------------------------------===//
  // Accounting
  //===--------------------------------------------------------------------===//

  /// Exact current queue memory: records, suffix arena, heap entries and
  /// group lists in compact mode; candidate structs, string heap
  /// allocations and distinct shared branch lists in reference mode.
  size_t bytesInUse() const;

  /// Folds the current footprint into the Peak* stats. Called
  /// internally at every rescore and every 1024th push; the campaign
  /// calls it once more at the end.
  void samplePeaks();

private:
  /// Immutable branch list shared between every reference-mode candidate
  /// spawned from the same parent run (the pre-store representation).
  using SharedBranches = std::shared_ptr<const std::vector<uint32_t>>;

  /// A compact queued candidate: input = parent[0, SpliceAt) + suffix.
  /// Refs counts pins (one per queue entry, campaign handle, or child
  /// record); a record is freed when it reaches zero.
  struct Record {
    uint64_t InputHash = 0;
    uint32_t Parent = None;
    uint32_t SpliceAt = 0;
    uint32_t SuffixOfs = 0;
    uint32_t SuffixLen = 0;
    uint32_t Group = None;
    uint32_t Refs = 0;
    uint16_t ReplacementLen = 0;
    uint8_t ParentDelta = 0;
    /// Parent-chain length to the nearest root. Bounded by MaxChainDepth:
    /// a record about to gain children at the cap is rebased first (see
    /// maybeRebase), so materialize never walks more than MaxChainDepth+1
    /// records and deep lineages cannot accumulate one ~40-byte ancestry
    /// record per historical byte. Fits the struct's existing padding.
    uint8_t Depth = 0;
  };

  /// Chain-depth cap. Rebasing copies the record's full bytes into the
  /// arena once per MaxChainDepth generations of a lineage — amortized
  /// len/MaxChainDepth arena bytes per record versus one ~40-byte record
  /// per chain link without it — and bounds the materialize walk.
  static constexpr uint8_t MaxChainDepth = 4;

  static_assert(sizeof(Record) == 40,
                "Record outgrew its slot; the queue-memory math in "
                "DESIGN.md section 14 assumes 40-byte records");

  /// One heap element; the comparator reads Score only, so heap
  /// permutations match the by-value queue's exactly.
  struct Entry {
    double Score = 0;
    uint32_t Id = 0;
  };

  /// Run-constant data shared by all candidates of one executed run.
  /// Reference mode's shared_ptr list lives in the parallel RefShared
  /// vector, not here: with a few candidates per group the group slab is
  /// a real fraction of compact-mode memory, and a 16-byte field only
  /// reference mode reads would inflate it for nothing.
  struct Group {
    /// Compact mode: the run's new-branch list, filtered in place at
    /// rescores (see the file comment for why that is equivalent to
    /// copy-on-rescore).
    std::vector<uint32_t> Branches;
    uint64_t FilterEpoch = 0;
    uint64_t PathHash = 0;
    double AvgStack = 0;
    uint32_t NumParentsBase = 0;
    uint32_t Members = 0;
    bool RunPinned = false;
  };

  /// A reference-mode candidate — the pre-store by-value layout,
  /// preserved field for field so its memory footprint is the honest
  /// baseline.
  struct RefCandidate {
    std::string Input;
    uint32_t NumParents = 0;
    double AvgStack = 0;
    uint32_t ReplacementLen = 1;
    SharedBranches NewBranches;
    uint64_t FilterEpoch = 0;
    uint64_t PathHash = 0;
    uint64_t InputHash = 0;
    double Score = 0;
  };

  uint32_t allocRecord();
  void freeRecord(uint32_t Id);
  void maybeRebase(uint32_t Id, std::string_view Input);
  uint32_t allocGroup();
  void maybeFreeGroup(uint32_t GroupId);
  void unlinkGroup(uint32_t Id);
  void materialize(uint32_t Id, std::string &Out) const;
  double scoreRecord(const Record &R, const Group &G,
                     const PathCountMap &PathCounts,
                     const HeuristicOptions &Heur) const;
  void maybeCompactArena();

  const bool Reference;
  const size_t MaxQueue;

  // Compact mode state.
  std::vector<Record> Records;
  /// Head of the intrusive free list threaded through freed records'
  /// Parent fields — no side vector of free ids.
  uint32_t FreeHead = None;
  std::vector<Entry> Entries;
  std::vector<Group> Groups;
  std::vector<uint32_t> FreeGroups;
  ByteArena Arena;
  /// Suffix bytes owned by freed records; compaction reclaims them.
  size_t ArenaGarbage = 0;
  size_t LiveGroups = 0;
  uint64_t PushTick = 0;

  // Reference mode state.
  std::vector<RefCandidate> RefQueue;
  /// Per-group shared immutable branch list (indexed by group id);
  /// populated in reference mode only — see the Group comment.
  std::vector<SharedBranches> RefShared;
};

} // namespace pfuzz

#endif // PFUZZ_CORE_CANDIDATESTORE_H
