//===- core/Fuzzer.h - Common fuzzer interface -------------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface shared by pFuzzer and the baseline fuzzers (AFL-style,
/// KLEE-style, random), plus the campaign options and the report every
/// campaign produces. The evaluation harness (src/eval) treats all tools
/// uniformly through this interface.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_CORE_FUZZER_H
#define PFUZZ_CORE_FUZZER_H

#include "core/BranchCoverageMap.h"
#include "subjects/Subject.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pfuzz {

/// Options for one fuzzing campaign. The paper ran 48 h wall-clock
/// campaigns; we use execution budgets so the benches reproduce the same
/// comparisons in minutes.
struct FuzzerOptions {
  /// PRNG seed; identical seeds give identical campaigns.
  uint64_t Seed = 1;

  /// Budget: number of subject executions.
  uint64_t MaxExecutions = 20000;

  /// Safety cap on generated input length.
  uint32_t MaxInputLen = 256;

  /// Log search decisions to stderr (debugging aid).
  bool Verbose = false;

  /// Invoked for every *valid* (exit 0) input executed, including
  /// duplicates; used by the harness for token-coverage accounting without
  /// storing millions of inputs.
  std::function<void(std::string_view)> OnValidInput;
};

/// What one campaign produced.
struct FuzzReport {
  /// Number of subject executions performed.
  uint64_t Executions = 0;

  /// The inputs the tool reports: valid inputs that covered new code, in
  /// discovery order (pFuzzer prints exactly these; for the baselines this
  /// is the interesting-valid-input subset).
  std::vector<std::string> ValidInputs;

  /// Distinct branch outcomes (SiteId << 1 | Taken) covered by valid
  /// inputs — the Figure 2 metric. A dense bitmap: membership tests are
  /// the per-execution hot path of every tool.
  BranchCoverageMap ValidBranches;

  /// Coverage growth samples: (executions, |ValidBranches|).
  std::vector<std::pair<uint64_t, uint64_t>> CoverageTimeline;

  /// Branch coverage of valid inputs as a fraction of all branch outcomes
  /// of \p S (two outcomes per site).
  double coverageRatio(const Subject &S) const {
    uint64_t Denominator = 2ull * S.numBranchSites();
    if (Denominator == 0)
      return 0;
    return static_cast<double>(ValidBranches.size()) / Denominator;
  }
};

/// A test generator for instrumented subjects.
class Fuzzer {
public:
  virtual ~Fuzzer();

  /// Tool identifier ("pfuzzer", "afl", "klee", "random").
  virtual std::string_view name() const = 0;

  /// Runs one campaign against \p S.
  virtual FuzzReport run(const Subject &S, const FuzzerOptions &Opts) = 0;
};

} // namespace pfuzz

#endif // PFUZZ_CORE_FUZZER_H
