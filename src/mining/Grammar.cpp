//===- mining/Grammar.cpp - Mined context-free grammars -------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mining/Grammar.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace pfuzz;

int32_t GrammarMiner::internName(const std::string &Name) {
  auto [It, Inserted] =
      NameIds.try_emplace(Name, static_cast<int32_t>(Names.size()));
  if (Inserted) {
    Names.push_back(Name);
    Rules.emplace_back();
  }
  return It->second;
}

void GrammarMiner::addTree(const DerivationTree &Tree) {
  ++Trees;
  // Map the tree's local name ids to the miner's global ids.
  std::vector<int32_t> Local(Tree.functionNames().size());
  for (size_t I = 0; I != Local.size(); ++I)
    Local[I] = internName(Tree.functionNames()[I]);

  for (const DerivationNode &Node : Tree.nodes()) {
    GrammarRule Rule;
    uint32_t Cursor = Node.Begin;
    auto FlushTerminal = [&](uint32_t Until) {
      if (Until > Cursor)
        Rule.Symbols.push_back(GrammarSymbol::terminal(std::string(
            std::string_view(Tree.input()).substr(Cursor, Until - Cursor))));
      Cursor = std::max(Cursor, Until);
    };
    for (uint32_t ChildIdx : Node.Children) {
      const DerivationNode &Child = Tree.nodes()[ChildIdx];
      FlushTerminal(Child.Begin);
      Rule.Symbols.push_back(
          GrammarSymbol::nonTerminal(Local[Child.NameId]));
      Cursor = std::max(Cursor, Child.End);
    }
    FlushTerminal(Node.End);
    Rules[Local[Node.NameId]].insert(std::move(Rule));
  }
}

Grammar GrammarMiner::build() const {
  std::vector<std::vector<GrammarRule>> Alternatives;
  Alternatives.reserve(Rules.size());
  for (const std::set<GrammarRule> &Set : Rules)
    Alternatives.emplace_back(Set.begin(), Set.end());
  auto StartIt = NameIds.find("<start>");
  int32_t Start = StartIt == NameIds.end() ? 0 : StartIt->second;
  return Grammar(Names, std::move(Alternatives), Start);
}

Grammar::Grammar(std::vector<std::string> NonTerminalNames,
                 std::vector<std::vector<GrammarRule>> Alternatives,
                 int32_t Start)
    : Names(std::move(NonTerminalNames)),
      Alternatives(std::move(Alternatives)), Start(Start) {
  assert(Names.size() == this->Alternatives.size() &&
         "name/alternative count mismatch");
  // Fixpoint for minimum expansion depth. Unproductive nonterminals (none
  // should exist in mined grammars) keep a large sentinel depth.
  constexpr uint32_t Unknown = 1u << 30;
  MinDepth.assign(Names.size(), Unknown);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t NT = 0; NT != Names.size(); ++NT) {
      uint32_t Best = Unknown;
      for (const GrammarRule &Rule : this->Alternatives[NT]) {
        uint32_t Deepest = 0;
        for (const GrammarSymbol &Sym : Rule.Symbols) {
          if (Sym.IsTerminal)
            continue;
          Deepest = std::max(Deepest, MinDepth[Sym.NonTerminal]);
        }
        if (Deepest != Unknown)
          Best = std::min(Best, Deepest + 1);
      }
      if (Best < MinDepth[NT]) {
        MinDepth[NT] = Best;
        Changed = true;
      }
    }
  }
}

size_t Grammar::numAlternatives() const {
  size_t Total = 0;
  for (const auto &Alts : Alternatives)
    Total += Alts.size();
  return Total;
}

std::string Grammar::toString() const {
  std::string Out;
  for (size_t NT = 0; NT != Names.size(); ++NT) {
    Out += Names[NT];
    Out += " ::=";
    bool FirstAlt = true;
    for (const GrammarRule &Rule : Alternatives[NT]) {
      Out += FirstAlt ? " " : "\n    | ";
      FirstAlt = false;
      if (Rule.Symbols.empty())
        Out += "<empty>";
      for (size_t I = 0; I != Rule.Symbols.size(); ++I) {
        if (I != 0)
          Out += " ";
        const GrammarSymbol &Sym = Rule.Symbols[I];
        if (Sym.IsTerminal)
          Out += "\"" + escapeString(Sym.Text) + "\"";
        else
          Out += Names[Sym.NonTerminal];
      }
    }
    Out += "\n";
  }
  return Out;
}
