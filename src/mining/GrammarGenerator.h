//===- mining/GrammarGenerator.h - Grammar-based generation ------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random sentence generation from a mined grammar — the back half of the
/// Section 7.4 pipeline ("use the mined grammar for generating longer and
/// more complex sequences that contain recursive structures"). Expansion
/// is depth-budgeted: while budget remains, alternatives are chosen
/// uniformly; once it runs out, the generator switches to minimum-depth
/// alternatives so every sentence closes.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_MINING_GRAMMARGENERATOR_H
#define PFUZZ_MINING_GRAMMARGENERATOR_H

#include "mining/Grammar.h"
#include "support/Rng.h"

namespace pfuzz {

/// Random sentence generator over a mined grammar.
class GrammarGenerator {
public:
  GrammarGenerator(const Grammar &G, uint64_t Seed) : G(G), R(Seed) {}

  /// Generates one sentence. \p MaxDepth bounds the free-choice phase;
  /// \p MaxLen truncates pathological blowups (a truncated sentence is
  /// still returned; callers validate against the subject anyway). A
  /// work budget additionally bounds the total number of expansions, so
  /// grammars with wide epsilon-heavy rules cannot explode.
  std::string generate(uint32_t MaxDepth = 16, uint32_t MaxLen = 400);

private:
  void expand(int32_t NonTerminal, uint32_t Depth, uint32_t MaxDepth,
              uint32_t MaxLen, std::string &Out);

  const Grammar &G;
  Rng R;
  uint32_t WorkBudget = 0;
};

} // namespace pfuzz

#endif // PFUZZ_MINING_GRAMMARGENERATOR_H
