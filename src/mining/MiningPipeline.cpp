//===- mining/MiningPipeline.cpp - The Section 7.4 pipeline ---------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mining/MiningPipeline.h"

#include "core/PFuzzer.h"
#include "mining/GrammarGenerator.h"

#include <algorithm>
#include <set>

using namespace pfuzz;

Grammar pfuzz::mineGrammar(const Subject &S,
                           const std::vector<std::string> &ValidInputs) {
  GrammarMiner Miner;
  for (const std::string &Input : ValidInputs) {
    RunResult RR = S.execute(Input, InstrumentationMode::Full);
    if (RR.ExitCode != 0)
      continue; // defensive: mine only from accepted inputs
    if (std::optional<DerivationTree> Tree =
            DerivationTree::fromRun(RR, Input))
      Miner.addTree(*Tree);
  }
  return Miner.build();
}

PipelineResult pfuzz::runMiningPipeline(const Subject &S,
                                        uint64_t ExploreExecs,
                                        uint64_t GenerateCount,
                                        uint64_t Seed) {
  PipelineResult Result;

  // Phase 1: parser-directed exploration.
  PFuzzer Explorer;
  FuzzerOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxExecutions = ExploreExecs;
  FuzzReport Report = Explorer.run(S, Opts);
  Result.SeedInputs = Report.ValidInputs;
  BranchCoverageMap Covered = Report.ValidBranches;
  Result.SeedBranches = Covered.size();
  for (const std::string &Input : Result.SeedInputs)
    Result.MaxSeedLen = std::max(Result.MaxSeedLen, Input.size());

  // Phase 2: grammar mining from the explored valid inputs.
  Grammar G = mineGrammar(S, Result.SeedInputs);
  Result.GrammarNonTerminals = G.numNonTerminals();
  Result.GrammarAlternatives = G.numAlternatives();

  // Phase 3: grammar-based generation of longer, recursive inputs.
  GrammarGenerator Generator(G, Seed + 0x9E3779B9);
  for (uint64_t I = 0; I != GenerateCount; ++I) {
    std::string Sentence = Generator.generate();
    ++Result.Generated;
    RunResult RR = S.execute(Sentence, InstrumentationMode::CoverageOnly);
    if (RR.ExitCode != 0)
      continue;
    ++Result.GeneratedValid;
    Result.MaxGeneratedValidLen =
        std::max(Result.MaxGeneratedValidLen, Sentence.size());
    for (uint32_t B : RR.coveredBranches())
      Covered.set(B);
  }
  Result.CombinedBranches = Covered.size();
  return Result;
}
