//===- mining/GrammarGenerator.cpp - Grammar-based generation -------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mining/GrammarGenerator.h"

#include <cassert>

using namespace pfuzz;

std::string GrammarGenerator::generate(uint32_t MaxDepth, uint32_t MaxLen) {
  std::string Out;
  WorkBudget = 4096;
  if (G.numNonTerminals() != 0)
    expand(G.start(), 0, MaxDepth, MaxLen, Out);
  return Out;
}

void GrammarGenerator::expand(int32_t NonTerminal, uint32_t Depth,
                              uint32_t MaxDepth, uint32_t MaxLen,
                              std::string &Out) {
  const std::vector<GrammarRule> &Alts = G.alternativesOf(NonTerminal);
  if (Alts.empty() || Out.size() >= MaxLen || WorkBudget == 0)
    return;
  --WorkBudget;
  const GrammarRule *Chosen = nullptr;
  // Once the work budget runs low, stop free exploration and close.
  if (Depth < MaxDepth && WorkBudget > 512) {
    Chosen = &Alts[R.below(Alts.size())];
  } else {
    // Budget exhausted: close the derivation along a minimum-depth
    // alternative (ties broken randomly).
    uint32_t Best = ~0u;
    uint32_t Count = 0;
    for (const GrammarRule &Rule : Alts) {
      uint32_t Deepest = 0;
      for (const GrammarSymbol &Sym : Rule.Symbols)
        if (!Sym.IsTerminal)
          Deepest = std::max(Deepest, G.minDepthOf(Sym.NonTerminal));
      if (Deepest < Best) {
        Best = Deepest;
        Chosen = &Rule;
        Count = 1;
      } else if (Deepest == Best && R.below(++Count) == 0) {
        Chosen = &Rule;
      }
    }
  }
  assert(Chosen != nullptr && "nonterminal without alternatives");
  for (const GrammarSymbol &Sym : Chosen->Symbols) {
    if (Out.size() >= MaxLen)
      return;
    if (Sym.IsTerminal)
      Out += Sym.Text;
    else
      expand(Sym.NonTerminal, Depth + 1, MaxDepth, MaxLen, Out);
  }
}
