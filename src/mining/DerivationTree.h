//===- mining/DerivationTree.h - Trees from call traces ----------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derivation trees recovered from instrumented runs, after Höschele &
/// Zeller's AutoGram (the paper's Section 7.4: "use a tool to mine the
/// grammar from the resulting sequences"): each parser-function activation
/// becomes a node whose span is the input range the activation consumed;
/// characters consumed directly (not by callees) become terminals.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_MINING_DERIVATIONTREE_H
#define PFUZZ_MINING_DERIVATIONTREE_H

#include "runtime/ExecutionContext.h"

#include <optional>
#include <string>
#include <vector>

namespace pfuzz {

/// One activation in the derivation tree.
struct DerivationNode {
  /// Index into DerivationTree::FunctionNames.
  int32_t NameId = -1;
  /// Consumed input span [Begin, End), clamped to the input length.
  uint32_t Begin = 0;
  uint32_t End = 0;
  /// Indices of child nodes, in consumption order.
  std::vector<uint32_t> Children;
};

/// The derivation tree of one (typically valid) run.
class DerivationTree {
public:
  /// Rebuilds the tree from \p RR's call trace over \p Input. Returns
  /// nullopt when the trace is empty or unbalanced (e.g. the run was not
  /// executed in Full mode).
  static std::optional<DerivationTree> fromRun(const RunResult &RR,
                                               std::string_view Input);

  /// Node 0 is a synthetic root labelled "<start>" spanning the whole
  /// input.
  const std::vector<DerivationNode> &nodes() const { return Nodes; }
  const std::vector<std::string> &functionNames() const { return Names; }

  const DerivationNode &root() const { return Nodes.front(); }
  const std::string &input() const { return Input; }

  /// The text a node's span covers.
  std::string_view textOf(const DerivationNode &Node) const {
    return std::string_view(Input).substr(Node.Begin, Node.End - Node.Begin);
  }

  /// Renders the tree with indentation (debugging / examples).
  std::string dump() const;

private:
  std::vector<DerivationNode> Nodes;
  std::vector<std::string> Names;
  std::string Input;
};

} // namespace pfuzz

#endif // PFUZZ_MINING_DERIVATIONTREE_H
