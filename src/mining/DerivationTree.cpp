//===- mining/DerivationTree.cpp - Trees from call traces -----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mining/DerivationTree.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace pfuzz;

std::optional<DerivationTree>
DerivationTree::fromRun(const RunResult &RR, std::string_view Input) {
  if (RR.CallTrace.empty())
    return std::nullopt;
  DerivationTree Tree;
  Tree.Input = std::string(Input);
  Tree.Names.push_back("<start>");
  // Function name ids shift by one because of the synthetic root.
  for (std::string_view Name : RR.FunctionNames)
    Tree.Names.push_back(std::string(Name));

  uint32_t Len = static_cast<uint32_t>(Input.size());
  auto Clamp = [Len](uint32_t Cursor) { return std::min(Cursor, Len); };

  Tree.Nodes.push_back({/*NameId=*/0, 0, Len, {}});
  std::vector<uint32_t> Stack = {0};
  for (const CallEvent &Event : RR.CallTrace) {
    if (Event.NameId >= 0) {
      uint32_t NodeIdx = static_cast<uint32_t>(Tree.Nodes.size());
      Tree.Nodes.push_back({Event.NameId + 1, Clamp(Event.Cursor),
                            Clamp(Event.Cursor), {}});
      Tree.Nodes[Stack.back()].Children.push_back(NodeIdx);
      Stack.push_back(NodeIdx);
      continue;
    }
    if (Stack.size() <= 1)
      return std::nullopt; // unbalanced: exit without matching enter
    DerivationNode &Done = Tree.Nodes[Stack.back()];
    Done.End = std::max(Done.Begin, Clamp(Event.Cursor));
    Stack.pop_back();
    // A parent's span covers at least its children's spans.
    DerivationNode &Parent = Tree.Nodes[Stack.back()];
    if (Stack.back() != 0)
      Parent.End = std::max(Parent.End, Done.End);
  }
  if (Stack.size() != 1)
    return std::nullopt; // unbalanced: enter without exit
  return Tree;
}

static void dumpNode(const DerivationTree &Tree, uint32_t NodeIdx,
                     unsigned Indent, std::string &Out) {
  const DerivationNode &Node = Tree.nodes()[NodeIdx];
  Out.append(Indent * 2, ' ');
  Out += Tree.functionNames()[Node.NameId];
  Out += "[" + std::to_string(Node.Begin) + "," + std::to_string(Node.End) +
         ") \"" + escapeString(Tree.textOf(Node)) + "\"\n";
  for (uint32_t Child : Node.Children)
    dumpNode(Tree, Child, Indent + 1, Out);
}

std::string DerivationTree::dump() const {
  std::string Out;
  dumpNode(*this, 0, 0, Out);
  return Out;
}
