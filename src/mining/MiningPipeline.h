//===- mining/MiningPipeline.h - The Section 7.4 pipeline --------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full Section 7.4 pipeline: "rely on parser-directed fuzzing for
/// initial exploration, use a tool to mine the grammar from the resulting
/// sequences, and use the mined grammar for generating longer and more
/// complex sequences that contain recursive structures."
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_MINING_MININGPIPELINE_H
#define PFUZZ_MINING_MININGPIPELINE_H

#include "core/Fuzzer.h"
#include "mining/Grammar.h"

namespace pfuzz {

/// Outcome of one pipeline run.
struct PipelineResult {
  /// Valid inputs pFuzzer discovered during exploration.
  std::vector<std::string> SeedInputs;

  /// The grammar mined from the seeds' derivation trees.
  size_t GrammarNonTerminals = 0;
  size_t GrammarAlternatives = 0;

  /// Grammar-generated sentences and how many the subject accepted.
  uint64_t Generated = 0;
  uint64_t GeneratedValid = 0;

  /// Longest valid inputs from each phase (recursion payoff measure).
  size_t MaxSeedLen = 0;
  size_t MaxGeneratedValidLen = 0;

  /// Branch outcomes covered by valid inputs: exploration only, and after
  /// adding the grammar-generated phase.
  size_t SeedBranches = 0;
  size_t CombinedBranches = 0;

  double validRatio() const {
    return Generated == 0 ? 0
                          : static_cast<double>(GeneratedValid) / Generated;
  }
};

/// Mines a grammar from \p ValidInputs by re-executing each against \p S
/// and harvesting derivation trees.
Grammar mineGrammar(const Subject &S,
                    const std::vector<std::string> &ValidInputs);

/// Runs the whole pipeline: pFuzzer exploration with \p ExploreExecs, then
/// \p GenerateCount grammar-based sentences (validated against \p S).
PipelineResult runMiningPipeline(const Subject &S, uint64_t ExploreExecs,
                                 uint64_t GenerateCount, uint64_t Seed);

} // namespace pfuzz

#endif // PFUZZ_MINING_MININGPIPELINE_H
