//===- mining/Grammar.h - Mined context-free grammars ------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-free grammars mined from derivation trees (Section 7.4): one
/// nonterminal per parser function, one alternative per distinct child
/// layout observed across valid runs. GrammarMiner accumulates trees;
/// Grammar is the immutable result used by the generator.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_MINING_GRAMMAR_H
#define PFUZZ_MINING_GRAMMAR_H

#include "mining/DerivationTree.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pfuzz {

/// A terminal string or a nonterminal reference.
struct GrammarSymbol {
  bool IsTerminal = true;
  std::string Text;         // terminal text (may be empty)
  int32_t NonTerminal = -1; // nonterminal id when !IsTerminal

  static GrammarSymbol terminal(std::string Text) {
    GrammarSymbol S;
    S.IsTerminal = true;
    S.Text = std::move(Text);
    return S;
  }
  static GrammarSymbol nonTerminal(int32_t Id) {
    GrammarSymbol S;
    S.IsTerminal = false;
    S.NonTerminal = Id;
    return S;
  }
  bool operator==(const GrammarSymbol &O) const {
    return IsTerminal == O.IsTerminal && Text == O.Text &&
           NonTerminal == O.NonTerminal;
  }
  bool operator<(const GrammarSymbol &O) const {
    if (IsTerminal != O.IsTerminal)
      return IsTerminal < O.IsTerminal;
    if (NonTerminal != O.NonTerminal)
      return NonTerminal < O.NonTerminal;
    return Text < O.Text;
  }
};

/// One alternative of a nonterminal.
struct GrammarRule {
  std::vector<GrammarSymbol> Symbols;
  bool operator<(const GrammarRule &O) const { return Symbols < O.Symbols; }
};

/// An immutable mined grammar.
class Grammar {
public:
  Grammar(std::vector<std::string> NonTerminalNames,
          std::vector<std::vector<GrammarRule>> Alternatives, int32_t Start);

  int32_t start() const { return Start; }
  size_t numNonTerminals() const { return Names.size(); }
  const std::string &nameOf(int32_t Id) const { return Names[Id]; }
  const std::vector<GrammarRule> &alternativesOf(int32_t Id) const {
    return Alternatives[Id];
  }
  size_t numAlternatives() const;

  /// Minimum expansion depth of a nonterminal (1 = has an alternative of
  /// terminals only). Used by the generator to close recursion.
  uint32_t minDepthOf(int32_t Id) const { return MinDepth[Id]; }

  /// BNF-style rendering.
  std::string toString() const;

private:
  std::vector<std::string> Names;
  std::vector<std::vector<GrammarRule>> Alternatives;
  int32_t Start;
  std::vector<uint32_t> MinDepth;
};

/// Accumulates derivation trees into a grammar.
class GrammarMiner {
public:
  /// Harvests one derivation tree; duplicate rule layouts collapse.
  void addTree(const DerivationTree &Tree);

  /// Number of trees harvested so far.
  size_t numTrees() const { return Trees; }

  /// Builds the grammar; the start symbol is the synthetic "<start>".
  Grammar build() const;

private:
  int32_t internName(const std::string &Name);

  std::map<std::string, int32_t> NameIds;
  std::vector<std::string> Names;
  std::vector<std::set<GrammarRule>> Rules;
  size_t Trees = 0;
};

} // namespace pfuzz

#endif // PFUZZ_MINING_GRAMMAR_H
