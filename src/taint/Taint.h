//===- taint/Taint.h - Dynamic taint labels ----------------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic taint labels. Section 4 of the paper: "When read, each character
/// is associated with a unique identifier; this taint is later passed on to
/// values derived from that character. If a value is derived from several
/// characters, it accumulates their taints."
///
/// A TaintSet is the set of input indices a value is derived from. The
/// fuzzer uses it to map a comparison back to the input position(s) it
/// constrains.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_TAINT_TAINT_H
#define PFUZZ_TAINT_TAINT_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pfuzz {

/// The set of input indices a runtime value is derived from.
///
/// Stored as a sorted, deduplicated vector; taint sets in parsers are tiny
/// (usually one index, a handful for tokens), so a sorted vector beats any
/// node-based set.
class TaintSet {
public:
  /// Creates the empty (untainted) set.
  TaintSet() = default;

  /// Creates a singleton set for input index \p Index.
  static TaintSet forIndex(uint32_t Index) {
    TaintSet Set;
    Set.Indices.push_back(Index);
    return Set;
  }

  /// Creates a set covering the half-open index range [\p Begin, \p End).
  static TaintSet forRange(uint32_t Begin, uint32_t End);

  bool empty() const { return Indices.empty(); }
  size_t size() const { return Indices.size(); }

  /// Returns true if \p Index is in the set.
  bool contains(uint32_t Index) const;

  /// Smallest tainted index. Must not be called on the empty set.
  uint32_t minIndex() const {
    assert(!empty() && "minIndex of empty taint set");
    return Indices.front();
  }

  /// Largest tainted index. Must not be called on the empty set.
  uint32_t maxIndex() const {
    assert(!empty() && "maxIndex of empty taint set");
    return Indices.back();
  }

  /// Merges \p Other into this set (value derivation accumulates taints).
  void mergeWith(const TaintSet &Other);

  /// Returns the union of \p A and \p B.
  static TaintSet merged(const TaintSet &A, const TaintSet &B);

  const std::vector<uint32_t> &indices() const { return Indices; }

  bool operator==(const TaintSet &Other) const {
    return Indices == Other.Indices;
  }

private:
  std::vector<uint32_t> Indices;
};

} // namespace pfuzz

#endif // PFUZZ_TAINT_TAINT_H
