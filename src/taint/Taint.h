//===- taint/Taint.h - Dynamic taint labels ----------------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic taint labels. Section 4 of the paper: "When read, each character
/// is associated with a unique identifier; this taint is later passed on to
/// values derived from that character. If a value is derived from several
/// characters, it accumulates their taints."
///
/// A TaintSet is the set of input indices a value is derived from. The
/// fuzzer uses it to map a comparison back to the input position(s) it
/// constrains.
///
/// Parser taints are almost always *contiguous*: a character read taints
/// one index, and token accumulation merges adjacent indices into a run.
/// The representation exploits that with three canonical forms, in order
/// of preference:
///
///  - Interval: the half-open contiguous range [Lo, Hi) — covers the
///    empty set, every singleton and every token-shaped run. Inline, no
///    heap.
///  - Pair: exactly two non-adjacent indices {Lo, Hi}. Inline, no heap.
///  - Spill: three or more genuinely scattered indices in a sorted,
///    deduplicated heap vector. Only reached through unusual derivation
///    patterns (e.g. checksums over non-adjacent bytes).
///
/// Reads, copies and contiguous merges — the instrumented runtime's hot
/// path — never allocate. The representation is canonical (a contiguous
/// result of a spill merge collapses back to Interval), so operator==
/// can compare fields directly.
///
/// TaintSets are plain values with no shared or global state, so
/// concurrent executions (parallel campaign seeds, speculative prefetch
/// workers) propagate taint with no synchronization at all.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_TAINT_TAINT_H
#define PFUZZ_TAINT_TAINT_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pfuzz {

/// The set of input indices a runtime value is derived from.
class TaintSet {
public:
  /// Creates the empty (untainted) set.
  TaintSet() = default;

  /// Creates a singleton set for input index \p Index.
  static TaintSet forIndex(uint32_t Index) {
    TaintSet Set;
    Set.Lo = Index;
    Set.Hi = Index + 1;
    return Set;
  }

  /// Creates a set covering the half-open index range [\p Begin, \p End).
  static TaintSet forRange(uint32_t Begin, uint32_t End) {
    assert(Begin <= End && "inverted taint range");
    TaintSet Set;
    Set.Lo = Begin;
    Set.Hi = End;
    return Set;
  }

  bool empty() const { return Kind == Rep::Interval && Lo == Hi; }

  size_t size() const {
    switch (Kind) {
    case Rep::Interval:
      return Hi - Lo;
    case Rep::Pair:
      return 2;
    case Rep::Spill:
      return Heap.size();
    }
    return 0;
  }

  /// Returns true if \p Index is in the set.
  bool contains(uint32_t Index) const;

  /// Smallest tainted index. Must not be called on the empty set.
  uint32_t minIndex() const {
    assert(!empty() && "minIndex of empty taint set");
    return Lo; // Spill caches its front here
  }

  /// Largest tainted index. Must not be called on the empty set.
  uint32_t maxIndex() const {
    assert(!empty() && "maxIndex of empty taint set");
    return Kind == Rep::Interval ? Hi - 1 : Hi;
  }

  /// Merges \p Other into this set (value derivation accumulates taints).
  /// Contiguous-to-contiguous merges — the token-accumulation hot path —
  /// stay inline; scattered results spill to the heap vector.
  void mergeWith(const TaintSet &Other) {
    if (Other.empty())
      return;
    if (empty()) {
      *this = Other;
      return;
    }
    if (Kind == Rep::Interval && Other.Kind == Rep::Interval) {
      // Overlapping or touching intervals union into one interval.
      if (Lo <= Other.Hi && Other.Lo <= Hi) {
        Lo = Lo < Other.Lo ? Lo : Other.Lo;
        Hi = Hi > Other.Hi ? Hi : Other.Hi;
        return;
      }
      // Two disjoint singletons stay inline as a Pair.
      if (Hi - Lo == 1 && Other.Hi - Other.Lo == 1) {
        uint32_t A = Lo, B = Other.Lo;
        Kind = Rep::Pair;
        Lo = A < B ? A : B;
        Hi = A < B ? B : A;
        return;
      }
    } else if (Kind == Rep::Pair && Other.Kind == Rep::Interval &&
               Other.Hi - Other.Lo == 1 &&
               (Other.Lo == Lo || Other.Lo == Hi)) {
      return; // singleton already present in the pair
    } else if (Kind == Rep::Pair && Other.Kind == Rep::Pair &&
               Lo == Other.Lo && Hi == Other.Hi) {
      return;
    }
    spillMerge(Other);
  }

  /// Returns the union of \p A and \p B.
  static TaintSet merged(const TaintSet &A, const TaintSet &B) {
    TaintSet Result = A;
    Result.mergeWith(B);
    return Result;
  }

  /// Materializes the indices as a sorted vector (allocates; for tests
  /// and diagnostics — the fuzzing hot paths only use min/max/empty).
  std::vector<uint32_t> indices() const;

  bool operator==(const TaintSet &Other) const {
    // Representations are canonical, so fields compare directly.
    return Kind == Other.Kind && Lo == Other.Lo && Hi == Other.Hi &&
           (Kind != Rep::Spill || Heap == Other.Heap);
  }

  /// Representation introspection (tests and benches).
  bool isInterval() const { return Kind == Rep::Interval; }
  bool isPair() const { return Kind == Rep::Pair; }
  bool isSpilled() const { return Kind == Rep::Spill; }

private:
  enum class Rep : uint8_t {
    Interval, ///< contiguous [Lo, Hi); empty when Lo == Hi
    Pair,     ///< exactly {Lo, Hi} with Hi > Lo + 1
    Spill,    ///< Heap holds >= 3 scattered indices; Lo/Hi cache min/max
  };

  /// Appends this set's indices, in ascending order, to \p Out.
  void appendTo(std::vector<uint32_t> &Out) const;

  /// Slow-path union through materialization; re-canonicalizes so a
  /// contiguous result collapses back to Interval.
  void spillMerge(const TaintSet &Other);

  Rep Kind = Rep::Interval;
  uint32_t Lo = 0;
  uint32_t Hi = 0;
  std::vector<uint32_t> Heap; // Spill only; sorted, deduplicated
};

} // namespace pfuzz

#endif // PFUZZ_TAINT_TAINT_H
