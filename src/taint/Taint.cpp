//===- taint/Taint.cpp - Dynamic taint labels -----------------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "taint/Taint.h"

#include <algorithm>

using namespace pfuzz;

bool TaintSet::contains(uint32_t Index) const {
  switch (Kind) {
  case Rep::Interval:
    return Index >= Lo && Index < Hi;
  case Rep::Pair:
    return Index == Lo || Index == Hi;
  case Rep::Spill:
    if (Index < Lo || Index > Hi)
      return false;
    return std::binary_search(Heap.begin(), Heap.end(), Index);
  }
  return false;
}

void TaintSet::appendTo(std::vector<uint32_t> &Out) const {
  switch (Kind) {
  case Rep::Interval:
    for (uint32_t I = Lo; I != Hi; ++I)
      Out.push_back(I);
    break;
  case Rep::Pair:
    Out.push_back(Lo);
    Out.push_back(Hi);
    break;
  case Rep::Spill:
    Out.insert(Out.end(), Heap.begin(), Heap.end());
    break;
  }
}

std::vector<uint32_t> TaintSet::indices() const {
  std::vector<uint32_t> Out;
  Out.reserve(size());
  appendTo(Out);
  return Out;
}

void TaintSet::spillMerge(const TaintSet &Other) {
  // Containment short-cuts keep repeated merges of the same token's
  // indices from materializing anything.
  if (Other.size() <= 2) {
    bool Covered = true;
    if (Other.Kind == Rep::Interval) {
      for (uint32_t I = Other.Lo; Covered && I != Other.Hi; ++I)
        Covered = contains(I);
    } else {
      Covered = contains(Other.Lo) && contains(Other.Hi);
    }
    if (Covered)
      return;
  }

  std::vector<uint32_t> Mine, Theirs;
  Mine.reserve(size());
  Theirs.reserve(Other.size());
  appendTo(Mine);
  Other.appendTo(Theirs);
  std::vector<uint32_t> Merged;
  Merged.reserve(Mine.size() + Theirs.size());
  std::set_union(Mine.begin(), Mine.end(), Theirs.begin(), Theirs.end(),
                 std::back_inserter(Merged));

  // Canonicalize: contiguous results collapse back to the inline
  // Interval form, two scattered indices to Pair.
  bool Contiguous = static_cast<uint64_t>(Merged.back()) - Merged.front() + 1 ==
                    Merged.size();
  if (Contiguous) {
    Kind = Rep::Interval;
    Lo = Merged.front();
    Hi = Merged.back() + 1;
    Heap.clear();
    return;
  }
  if (Merged.size() == 2) {
    Kind = Rep::Pair;
    Lo = Merged.front();
    Hi = Merged.back();
    Heap.clear();
    return;
  }
  Kind = Rep::Spill;
  Lo = Merged.front();
  Hi = Merged.back();
  Heap = std::move(Merged);
}
