//===- taint/Taint.cpp - Dynamic taint labels -----------------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "taint/Taint.h"

#include <algorithm>

using namespace pfuzz;

TaintSet TaintSet::forRange(uint32_t Begin, uint32_t End) {
  assert(Begin <= End && "inverted taint range");
  TaintSet Set;
  Set.Indices.reserve(End - Begin);
  for (uint32_t I = Begin; I != End; ++I)
    Set.Indices.push_back(I);
  return Set;
}

bool TaintSet::contains(uint32_t Index) const {
  return std::binary_search(Indices.begin(), Indices.end(), Index);
}

void TaintSet::mergeWith(const TaintSet &Other) {
  if (Other.empty())
    return;
  if (empty()) {
    Indices = Other.Indices;
    return;
  }
  std::vector<uint32_t> Merged;
  Merged.reserve(Indices.size() + Other.Indices.size());
  std::set_union(Indices.begin(), Indices.end(), Other.Indices.begin(),
                 Other.Indices.end(), std::back_inserter(Merged));
  Indices = std::move(Merged);
}

TaintSet TaintSet::merged(const TaintSet &A, const TaintSet &B) {
  TaintSet Result = A;
  Result.mergeWith(B);
  return Result;
}
