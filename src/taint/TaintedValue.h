//===- taint/TaintedValue.h - Tainted chars and strings ----------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tainted runtime values. Subjects read TChar values from the input
/// stream; string-building operations (token accumulation, strcpy-style
/// wrappers in the paper) propagate taints automatically through TString.
///
/// An explicit dropTaint() models *implicit* information flow: the paper's
/// prototype does not track control-dependent flows ("naively tainting all
/// implicit information flows can lead to large overtainting", citing
/// DTA++), and the cJSON UTF-16 decoding misses coverage because of it. Our
/// json subject reproduces that by routing the decoded code point through
/// dropTaint().
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_TAINT_TAINTEDVALUE_H
#define PFUZZ_TAINT_TAINTEDVALUE_H

#include "taint/Taint.h"

#include <string>
#include <string_view>

namespace pfuzz {

/// The sentinel value a read past the end of input yields (EOF).
constexpr int EofChar = -1;

/// A character (or EOF) together with the input indices it derives from.
class TChar {
public:
  TChar() = default;
  TChar(int Value, TaintSet Taint) : Value(Value), Taint(std::move(Taint)) {}

  /// Creates an untainted constant (e.g. a literal in the subject).
  static TChar constant(int Value) { return TChar(Value, TaintSet()); }

  int value() const { return Value; }
  bool isEof() const { return Value == EofChar; }
  char ch() const { return static_cast<char>(Value); }
  const TaintSet &taint() const { return Taint; }

  /// Returns a copy whose taint has been discarded — models implicit flow
  /// through control dependences, which the prototype does not track.
  TChar dropTaint() const { return TChar(Value, TaintSet()); }

  /// Derives a new value from this one (keeps the taint). Used for case
  /// folding and arithmetic on characters.
  TChar derive(int NewValue) const { return TChar(NewValue, Taint); }

private:
  int Value = EofChar;
  TaintSet Taint;
};

/// A string whose bytes carry taints; mirrors the paper's wrapped C string
/// functions which "propagate taints automatically".
class TString {
public:
  TString() = default;

  void clear() {
    Bytes.clear();
    Taint = TaintSet();
  }

  bool empty() const { return Bytes.empty(); }
  size_t size() const { return Bytes.size(); }

  /// Appends \p C, accumulating its taint.
  void push_back(const TChar &C) {
    Bytes.push_back(C.ch());
    Taint.mergeWith(C.taint());
  }

  /// Appends an untainted literal character.
  void appendLiteral(char C) { Bytes.push_back(C); }

  /// The concrete bytes.
  const std::string &str() const { return Bytes; }
  std::string_view view() const { return Bytes; }

  /// Union of the taints of all bytes.
  const TaintSet &taint() const { return Taint; }

  bool operator==(std::string_view Other) const { return Bytes == Other; }

private:
  std::string Bytes;
  TaintSet Taint;
};

} // namespace pfuzz

#endif // PFUZZ_TAINT_TAINTEDVALUE_H
