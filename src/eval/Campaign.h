//===- eval/Campaign.h - Tool x subject campaign runner ----------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one fuzzer against one subject under an execution budget while
/// accounting token coverage over every valid input, and repeats the
/// campaign over several seeds reporting the best run — the paper's
/// evaluation protocol (Section 5.1: three runs, best reported; budgets
/// replace the 48 h wall-clock).
///
/// The evaluation is embarrassingly parallel: every (tool, subject, seed)
/// run owns its fuzzer, Rng and TokenCoverage and shares nothing mutable,
/// so runCampaign fans the seeds out over the shared work-stealing
/// scheduler (support/Scheduler.h) and runCampaignGrid fans out whole
/// tool x subject cells. Seed-level Jobs, per-campaign speculation, and
/// locality pre-execution all draw from the same worker pool at
/// descending priorities, so the process never oversubscribes the
/// machine with Jobs x SpeculationThreads threads. Results are reduced
/// in seed order, never completion order, so any Jobs value produces
/// results identical to Jobs=1.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_EVAL_CAMPAIGN_H
#define PFUZZ_EVAL_CAMPAIGN_H

#include "core/Fuzzer.h"
#include "core/PFuzzer.h"
#include "core/ShardSync.h"
#include "runtime/PrefixResumeCache.h"
#include "tokens/TokenCoverage.h"

#include <memory>

namespace pfuzz {

/// The tools of the evaluation.
enum class ToolKind {
  PFuzzer,
  Afl,
  Klee,
  Random,
};

/// Per-tool configuration the campaign runners thread through to the
/// fuzzer instances they create. Everything here is behavior-invariant
/// for reports (performance knobs only), so the defaults are safe for
/// every caller.
struct ToolOptions {
  /// PFuzzerOptions::RunCacheSize for pFuzzer campaigns: memoized-run
  /// LRU capacity, 0 disables. Reports are byte-identical at any value.
  uint32_t PFuzzerRunCache = 64;

  /// Speculative-prefetch parallelism hint per pFuzzer campaign
  /// (PFuzzerOptions::SpeculationThreads). 0 (default) disables
  /// speculation; N > 0 requests depth-N prefetch per campaign; -1 means
  /// auto — divide the hardware threads left over by the Jobs layer
  /// among the concurrently running campaigns. Since every campaign
  /// submits to one shared work-stealing scheduler, this no longer sizes
  /// a dedicated pool; arbitration (see arbitrateSpeculation) merely
  /// scales each campaign's in-flight prefetch depth so mispredicted
  /// speculative work stays proportionate to the cores actually
  /// available. Reports are byte-identical at any value.
  int PFuzzerSpeculation = 0;

  /// PFuzzerOptions::SpeculationDepth (0 = auto).
  uint32_t PFuzzerSpeculationDepth = 0;

  /// PFuzzerOptions::ResumeCacheSize for pFuzzer campaigns: prefix-
  /// resumption checkpoints kept per campaign, 0 disables. Reports are
  /// byte-identical at any value; subjects that are not resume-safe and
  /// builds without fiber support silently run cold.
  uint32_t PFuzzerResumeCache = 64;

  /// PFuzzerOptions::ResumeStride: byte stride of the engine's
  /// checkpoint ladder (0 = past-end checkpoints only). Reports are
  /// byte-identical at any value.
  uint32_t PFuzzerResumeStride = 16;

  /// PFuzzerOptions::ResumeRungs: per-run cap on ladder checkpoints.
  uint32_t PFuzzerResumeRungs = 3;

  /// PFuzzerOptions::LocalityBatch: equal-score queue-front candidates
  /// the trie-batched locality scheduler pre-executes per iteration
  /// (0 disables). Reports are byte-identical at any value.
  uint32_t PFuzzerLocality = 0;

  /// When set, receives the resume-engine counters of a pFuzzer run
  /// (zeroes when the engine never engaged). The campaign runners manage
  /// this per seed run and aggregate into CampaignResult::Resume; leave
  /// null when constructing fuzzers directly unless you own the pointee
  /// for the fuzzer's whole run.
  ResumeStats *PFuzzerResumeStatsOut = nullptr;

  /// Like PFuzzerResumeStatsOut, for the locality scheduler's counters
  /// (aggregated into CampaignResult::Locality).
  LocalityStats *PFuzzerLocalityStatsOut = nullptr;

  /// PFuzzerOptions::ReferenceQueue: store candidates as full by-value
  /// strings instead of compact prefix-suffix records. Reports are
  /// byte-identical either way; the identity sweep test and the queue
  /// benches flip this for honest before/after comparisons.
  bool PFuzzerReferenceQueue = false;

  /// PFuzzerOptions::MaxQueue: candidate-queue cap (trims drop the
  /// worst-scored half past it). 0 keeps the PFuzzerOptions default.
  /// Unlike the knobs above this one is score-visible in principle —
  /// both queue representations share it, so compact-vs-reference
  /// comparisons stay valid at any value.
  size_t PFuzzerMaxQueue = 0;

  /// Like PFuzzerResumeStatsOut, for the candidate store's counters
  /// (aggregated into CampaignResult::Queue).
  QueueStats *PFuzzerQueueStatsOut = nullptr;

  /// PFuzzerOptions::Shards: shard loops per pFuzzer campaign. 1 (the
  /// default) is the plain engine, byte-identical to every prior
  /// release; N > 1 runs the sharded engine — deterministic for fixed
  /// (seed, N) but a different search than unsharded.
  uint32_t PFuzzerShards = 1;

  /// PFuzzerOptions::ShardSyncInterval. 0 keeps the engine default.
  uint32_t PFuzzerShardSyncInterval = 0;

  /// Like PFuzzerResumeStatsOut, for the shard-sync counters
  /// (aggregated into CampaignResult::Shards).
  ShardStats *PFuzzerShardStatsOut = nullptr;

  /// Like PFuzzerResumeStatsOut, for the consolidated telemetry snapshot
  /// (aggregated into CampaignResult::Telemetry). The campaign runners
  /// manage a per-seed sink automatically, so callers normally leave
  /// this null and read CampaignResult::Telemetry instead.
  TelemetrySnapshot *PFuzzerTelemetryOut = nullptr;

  /// Heartbeat emitter threaded through to every pFuzzer the runners
  /// create (PFuzzerOptions::Heartbeat). Unlike the stats sinks this is
  /// shared, not per-seed: the emitter is internally synchronized and
  /// stamps each record with the shard index, so concurrent seed runs
  /// interleave records in one NDJSON stream. Null disables heartbeats.
  /// Purely observational: reports are byte-identical with or without.
  HeartbeatEmitter *PFuzzerHeartbeat = nullptr;

  /// Work-stealing scheduler the campaign runners fan seed runs out on
  /// and thread through to every fuzzer they create
  /// (PFuzzerOptions::Sched). Null (the default) uses the process-global
  /// Scheduler::global(). Benches pass a private pool here to measure a
  /// specific worker count without touching global state. Purely a
  /// placement knob: reports are byte-identical for any scheduler.
  Scheduler *Sched = nullptr;
};

/// What arbitrateSpeculation decided for one campaign.
struct SpeculationHint {
  /// Effective PFuzzerOptions::SpeculationThreads: a soft prefetch-depth
  /// hint on the shared scheduler, not a thread count (no pool is sized
  /// from it). 0 disables speculation for the campaign.
  unsigned Threads = 0;
  /// True when an explicit request was reduced to the per-campaign fair
  /// share because several campaigns run concurrently.
  bool Capped = false;
};

/// Arbitrates the speculation hint between the seed-level Jobs layer and
/// per-campaign prefetching: returns the effective hint for one pFuzzer
/// campaign when \p Workers campaigns run concurrently on \p Hardware
/// cores (0 = ask the scheduler). \p Requested < 0 (auto) yields the
/// leftover hardware threads divided among the workers — zero on a
/// saturated machine. An explicit request is honored as-is when
/// Workers <= 1 and otherwise capped at max(1, Hardware / Workers), with
/// Capped set when that reduced it. Since all work shares one
/// work-stealing pool, this is a soft hint bounding wasted speculative
/// executions, not a hard core partition — an idle worker always steals
/// whatever is runnable. Speculation is behavior-invariant, so
/// arbitration affects wall-clock only, never reports.
SpeculationHint arbitrateSpeculation(int Requested, size_t Workers,
                                     unsigned Hardware = 0);

/// Creates a fresh fuzzer instance for \p Kind.
std::unique_ptr<Fuzzer> makeFuzzer(ToolKind Kind,
                                   const ToolOptions &Tools = {});

/// Display name ("pFuzzer", "AFL", "KLEE", "Random").
std::string_view toolName(ToolKind Kind);

/// Per-tool execution budgets. AFL gets a larger budget than pFuzzer,
/// mirroring the throughput gap the paper reports ("generating 1,000
/// times more inputs than pFuzzer" under equal wall-clock).
struct CampaignBudgets {
  uint64_t PFuzzerExecs = 100000;
  uint64_t AflExecs = 1000000;
  uint64_t KleeExecs = 50000;
  uint64_t RandomExecs = 1000000;

  uint64_t executionsFor(ToolKind Kind) const;

  /// Scales every budget by \p Factor (the --budget-scale bench flag).
  /// The multiply is overflow-checked: a budget that would exceed 2^64-1
  /// saturates at UINT64_MAX (an effectively unbounded campaign) instead
  /// of silently wrapping to a tiny budget.
  void scale(uint64_t Factor);
};

/// The outcome of the best run of a tool on a subject.
struct CampaignResult {
  ToolKind Tool = ToolKind::PFuzzer;
  std::string SubjectName;
  FuzzReport Report;
  /// Distinct inventory tokens found across the best run's valid inputs.
  std::set<std::string> TokensFound;

  /// Aggregate compute time across every run of the cell (the sum of the
  /// per-seed wall-clocks, so the value is comparable across Jobs
  /// settings). Timing is diagnostic only — it is never part of the
  /// deterministic result.
  double WallSeconds = 0;

  /// Executions summed over every run of the cell (the best run's own
  /// count stays in Report.Executions).
  uint64_t TotalExecutions = 0;

  /// Prefix-resumption counters summed over every run of the cell; all
  /// zero when the engine was disabled, unavailable, or the subject is
  /// not resume-safe. Like WallSeconds, diagnostic only — never part of
  /// the deterministic result.
  ResumeStats Resume;

  /// Locality-scheduler counters summed over every run of the cell; all
  /// zero when batching was disabled. Diagnostic only.
  LocalityStats Locality;

  /// Candidate-store counters summed over every run of the cell (peak
  /// byte figures are maxed, not summed — see QueueStats::accumulate).
  /// Diagnostic only.
  QueueStats Queue;

  /// Shard-sync counters summed over every run of the cell (lag figures
  /// are maxed — see ShardStats::accumulate); all zero for unsharded
  /// campaigns. Diagnostic only.
  ShardStats Shards;

  /// Consolidated telemetry accumulated over every run of the cell: the
  /// one tree holding executions plus the Speculation/Resume/Locality/
  /// Queue/Sharding/Sched subtrees (see TelemetrySnapshot::accumulate
  /// for the per-field sum/max semantics). Diagnostic only.
  TelemetrySnapshot Telemetry;

  /// Throughput over all runs of the cell; 0 when nothing was timed.
  double execsPerSec() const {
    return WallSeconds > 0 ? static_cast<double>(TotalExecutions) / WallSeconds
                           : 0;
  }

  double coverageRatio(const Subject &S) const {
    return Report.coverageRatio(S);
  }
};

/// Runs \p Kind on \p S for \p Runs seeds (Seed, Seed+1, ...), each with
/// \p Executions budget, and returns the run with the highest valid-input
/// branch coverage (ties: most tokens).
///
/// \p Jobs caps how many seed runs execute concurrently on the shared
/// scheduler (Tools.Sched, or Scheduler::global()): 1 (the default) runs
/// inline on the calling thread, 0 means no cap beyond the pool's worker
/// count. Each seed's run is fully self-contained, and the best run is
/// selected by reducing in seed order, so every Jobs value returns a
/// result identical to Jobs=1.
CampaignResult runCampaign(ToolKind Kind, const Subject &S,
                           uint64_t Executions, uint64_t Seed, int Runs,
                           int Jobs = 1, const ToolOptions &Tools = {});

/// One tool x subject cell of an evaluation grid.
struct CampaignCell {
  ToolKind Tool = ToolKind::PFuzzer;
  const Subject *S = nullptr;
  uint64_t Executions = 0;
};

/// Runs every cell of \p Cells for \p Runs seeds each, fanning all
/// (cell, seed) tasks out over the shared scheduler with at most \p Jobs
/// running concurrently (0 = no cap beyond the pool's worker count, the
/// default). Returns one best-run result per cell, in the order of
/// \p Cells; like runCampaign, the reduction is deterministic in seed
/// order regardless of Jobs.
std::vector<CampaignResult>
runCampaignGrid(const std::vector<CampaignCell> &Cells, uint64_t Seed,
                int Runs, int Jobs = 0, const ToolOptions &Tools = {});

} // namespace pfuzz

#endif // PFUZZ_EVAL_CAMPAIGN_H
