//===- eval/Campaign.h - Tool x subject campaign runner ----------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one fuzzer against one subject under an execution budget while
/// accounting token coverage over every valid input, and repeats the
/// campaign over several seeds reporting the best run — the paper's
/// evaluation protocol (Section 5.1: three runs, best reported; budgets
/// replace the 48 h wall-clock).
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_EVAL_CAMPAIGN_H
#define PFUZZ_EVAL_CAMPAIGN_H

#include "core/Fuzzer.h"
#include "tokens/TokenCoverage.h"

#include <memory>

namespace pfuzz {

/// The tools of the evaluation.
enum class ToolKind {
  PFuzzer,
  Afl,
  Klee,
  Random,
};

/// Creates a fresh fuzzer instance for \p Kind.
std::unique_ptr<Fuzzer> makeFuzzer(ToolKind Kind);

/// Display name ("pFuzzer", "AFL", "KLEE", "Random").
std::string_view toolName(ToolKind Kind);

/// Per-tool execution budgets. AFL gets a larger budget than pFuzzer,
/// mirroring the throughput gap the paper reports ("generating 1,000
/// times more inputs than pFuzzer" under equal wall-clock).
struct CampaignBudgets {
  uint64_t PFuzzerExecs = 100000;
  uint64_t AflExecs = 1000000;
  uint64_t KleeExecs = 50000;
  uint64_t RandomExecs = 1000000;

  uint64_t executionsFor(ToolKind Kind) const;

  /// Scales every budget by \p Factor (the --budget-scale bench flag).
  void scale(uint64_t Factor);
};

/// The outcome of the best run of a tool on a subject.
struct CampaignResult {
  ToolKind Tool = ToolKind::PFuzzer;
  std::string SubjectName;
  FuzzReport Report;
  /// Distinct inventory tokens found across the best run's valid inputs.
  std::set<std::string> TokensFound;

  double coverageRatio(const Subject &S) const {
    return Report.coverageRatio(S);
  }
};

/// Runs \p Kind on \p S for \p Runs seeds (Seed, Seed+1, ...), each with
/// \p Executions budget, and returns the run with the highest valid-input
/// branch coverage (ties: most tokens).
CampaignResult runCampaign(ToolKind Kind, const Subject &S,
                           uint64_t Executions, uint64_t Seed, int Runs);

} // namespace pfuzz

#endif // PFUZZ_EVAL_CAMPAIGN_H
