//===- eval/Campaign.h - Tool x subject campaign runner ----------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one fuzzer against one subject under an execution budget while
/// accounting token coverage over every valid input, and repeats the
/// campaign over several seeds reporting the best run — the paper's
/// evaluation protocol (Section 5.1: three runs, best reported; budgets
/// replace the 48 h wall-clock).
///
/// The evaluation is embarrassingly parallel: every (tool, subject, seed)
/// run owns its fuzzer, Rng and TokenCoverage and shares nothing mutable,
/// so runCampaign fans the seeds out over a thread pool and
/// runCampaignGrid fans out whole tool x subject cells. Results are
/// reduced in seed order, never completion order, so any Jobs value
/// produces results identical to Jobs=1.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_EVAL_CAMPAIGN_H
#define PFUZZ_EVAL_CAMPAIGN_H

#include "core/Fuzzer.h"
#include "core/PFuzzer.h"
#include "runtime/PrefixResumeCache.h"
#include "tokens/TokenCoverage.h"

#include <memory>

namespace pfuzz {

/// The tools of the evaluation.
enum class ToolKind {
  PFuzzer,
  Afl,
  Klee,
  Random,
};

/// Per-tool configuration the campaign runners thread through to the
/// fuzzer instances they create. Everything here is behavior-invariant
/// for reports (performance knobs only), so the defaults are safe for
/// every caller.
struct ToolOptions {
  /// PFuzzerOptions::RunCacheSize for pFuzzer campaigns: memoized-run
  /// LRU capacity, 0 disables. Reports are byte-identical at any value.
  uint32_t PFuzzerRunCache = 64;

  /// Speculative-prefetch workers per pFuzzer campaign
  /// (PFuzzerOptions::SpeculationThreads). 0 (default) disables
  /// speculation; N > 0 requests N workers per campaign; -1 means auto —
  /// divide the hardware threads left over by the Jobs layer among the
  /// concurrently running campaigns. Explicit requests are honored for a
  /// lone campaign and capped at the per-campaign fair share when
  /// several seed runs execute concurrently (see arbitrateSpeculation),
  /// so the two parallelism layers cannot multiply into Jobs x N
  /// threads. Reports are byte-identical at any value.
  int PFuzzerSpeculation = 0;

  /// PFuzzerOptions::SpeculationDepth (0 = auto).
  uint32_t PFuzzerSpeculationDepth = 0;

  /// PFuzzerOptions::ResumeCacheSize for pFuzzer campaigns: prefix-
  /// resumption checkpoints kept per campaign, 0 disables. Reports are
  /// byte-identical at any value; subjects that are not resume-safe and
  /// builds without fiber support silently run cold.
  uint32_t PFuzzerResumeCache = 64;

  /// PFuzzerOptions::ResumeStride: byte stride of the engine's
  /// checkpoint ladder (0 = past-end checkpoints only). Reports are
  /// byte-identical at any value.
  uint32_t PFuzzerResumeStride = 16;

  /// PFuzzerOptions::ResumeRungs: per-run cap on ladder checkpoints.
  uint32_t PFuzzerResumeRungs = 3;

  /// PFuzzerOptions::LocalityBatch: equal-score queue-front candidates
  /// the trie-batched locality scheduler pre-executes per iteration
  /// (0 disables). Reports are byte-identical at any value.
  uint32_t PFuzzerLocality = 0;

  /// When set, receives the resume-engine counters of a pFuzzer run
  /// (zeroes when the engine never engaged). The campaign runners manage
  /// this per seed run and aggregate into CampaignResult::Resume; leave
  /// null when constructing fuzzers directly unless you own the pointee
  /// for the fuzzer's whole run.
  ResumeStats *PFuzzerResumeStatsOut = nullptr;

  /// Like PFuzzerResumeStatsOut, for the locality scheduler's counters
  /// (aggregated into CampaignResult::Locality).
  LocalityStats *PFuzzerLocalityStatsOut = nullptr;
};

/// Arbitrates cores between the seed-level Jobs layer and per-campaign
/// speculation: returns the effective SpeculationThreads for one pFuzzer
/// campaign when \p Workers campaigns run concurrently. \p Requested < 0
/// (auto) yields the leftover hardware threads divided among the
/// workers — zero on a saturated machine. An explicit request is honored
/// as-is when Workers <= 1 and otherwise capped at max(1, hardware /
/// Workers). Speculation is behavior-invariant, so arbitration affects
/// wall-clock only, never reports.
unsigned arbitrateSpeculation(int Requested, size_t Workers);

/// Creates a fresh fuzzer instance for \p Kind.
std::unique_ptr<Fuzzer> makeFuzzer(ToolKind Kind,
                                   const ToolOptions &Tools = {});

/// Display name ("pFuzzer", "AFL", "KLEE", "Random").
std::string_view toolName(ToolKind Kind);

/// Per-tool execution budgets. AFL gets a larger budget than pFuzzer,
/// mirroring the throughput gap the paper reports ("generating 1,000
/// times more inputs than pFuzzer" under equal wall-clock).
struct CampaignBudgets {
  uint64_t PFuzzerExecs = 100000;
  uint64_t AflExecs = 1000000;
  uint64_t KleeExecs = 50000;
  uint64_t RandomExecs = 1000000;

  uint64_t executionsFor(ToolKind Kind) const;

  /// Scales every budget by \p Factor (the --budget-scale bench flag).
  /// The multiply is overflow-checked: a budget that would exceed 2^64-1
  /// saturates at UINT64_MAX (an effectively unbounded campaign) instead
  /// of silently wrapping to a tiny budget.
  void scale(uint64_t Factor);
};

/// The outcome of the best run of a tool on a subject.
struct CampaignResult {
  ToolKind Tool = ToolKind::PFuzzer;
  std::string SubjectName;
  FuzzReport Report;
  /// Distinct inventory tokens found across the best run's valid inputs.
  std::set<std::string> TokensFound;

  /// Aggregate compute time across every run of the cell (the sum of the
  /// per-seed wall-clocks, so the value is comparable across Jobs
  /// settings). Timing is diagnostic only — it is never part of the
  /// deterministic result.
  double WallSeconds = 0;

  /// Executions summed over every run of the cell (the best run's own
  /// count stays in Report.Executions).
  uint64_t TotalExecutions = 0;

  /// Prefix-resumption counters summed over every run of the cell; all
  /// zero when the engine was disabled, unavailable, or the subject is
  /// not resume-safe. Like WallSeconds, diagnostic only — never part of
  /// the deterministic result.
  ResumeStats Resume;

  /// Locality-scheduler counters summed over every run of the cell; all
  /// zero when batching was disabled. Diagnostic only.
  LocalityStats Locality;

  /// Throughput over all runs of the cell; 0 when nothing was timed.
  double execsPerSec() const {
    return WallSeconds > 0 ? static_cast<double>(TotalExecutions) / WallSeconds
                           : 0;
  }

  double coverageRatio(const Subject &S) const {
    return Report.coverageRatio(S);
  }
};

/// Runs \p Kind on \p S for \p Runs seeds (Seed, Seed+1, ...), each with
/// \p Executions budget, and returns the run with the highest valid-input
/// branch coverage (ties: most tokens).
///
/// \p Jobs caps the worker threads used to run seeds concurrently: 1 (the
/// default) runs inline on the calling thread, 0 means all hardware
/// threads. Each seed's run is fully self-contained, and the best run is
/// selected by reducing in seed order, so every Jobs value returns a
/// result identical to Jobs=1.
CampaignResult runCampaign(ToolKind Kind, const Subject &S,
                           uint64_t Executions, uint64_t Seed, int Runs,
                           int Jobs = 1, const ToolOptions &Tools = {});

/// One tool x subject cell of an evaluation grid.
struct CampaignCell {
  ToolKind Tool = ToolKind::PFuzzer;
  const Subject *S = nullptr;
  uint64_t Executions = 0;
};

/// Runs every cell of \p Cells for \p Runs seeds each, fanning all
/// (cell, seed) tasks out over one pool of \p Jobs workers (0 = all
/// hardware threads, the default). Returns one best-run result per cell,
/// in the order of \p Cells; like runCampaign, the reduction is
/// deterministic in seed order regardless of Jobs.
std::vector<CampaignResult>
runCampaignGrid(const std::vector<CampaignCell> &Cells, uint64_t Seed,
                int Runs, int Jobs = 0, const ToolOptions &Tools = {});

} // namespace pfuzz

#endif // PFUZZ_EVAL_CAMPAIGN_H
