//===- eval/TableWriter.h - Fixed-width table output -------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width text tables and horizontal ASCII bar charts, used by every
/// bench binary to print the paper's tables and figures.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_EVAL_TABLEWRITER_H
#define PFUZZ_EVAL_TABLEWRITER_H

#include <cstdint>
#include <cstdio>
#include <utility>
#include <string>
#include <vector>

namespace pfuzz {

/// Collects rows and prints them with per-column widths.
class TableWriter {
public:
  explicit TableWriter(std::vector<std::string> Header);

  void addRow(std::vector<std::string> Cells);

  /// Prints the table (header, separator, rows) to \p Out.
  void print(std::FILE *Out) const;

private:
  std::vector<std::vector<std::string>> Rows; // Rows[0] is the header
};

/// Prints one horizontal bar scaled so that 100% is \p Width characters.
void printBar(std::FILE *Out, const std::string &Label, double Fraction,
              int Width = 50);

/// Prints a coverage-over-time series as a sparkline-style row: one
/// character per sample, scaled to \p MaxValue.
void printSeries(std::FILE *Out, const std::string &Label,
                 const std::vector<std::pair<uint64_t, uint64_t>> &Samples,
                 uint64_t MaxValue, int Width = 50);

/// Formats a wall-clock duration compactly: "850ms", "12.4s", "3m12s".
std::string formatSeconds(double Seconds);

/// Formats a throughput as "execs/s" with k/M suffixes: "12.3k/s".
/// Returns "-" when \p Seconds is not positive.
std::string formatExecsPerSec(uint64_t Execs, double Seconds);

} // namespace pfuzz

#endif // PFUZZ_EVAL_TABLEWRITER_H
