//===- eval/TableWriter.cpp - Fixed-width table output --------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/TableWriter.h"

#include <algorithm>

using namespace pfuzz;

TableWriter::TableWriter(std::vector<std::string> Header) {
  Rows.push_back(std::move(Header));
}

void TableWriter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void TableWriter::print(std::FILE *Out) const {
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Widths.size() < Row.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  }
  for (size_t RowIdx = 0; RowIdx != Rows.size(); ++RowIdx) {
    const auto &Row = Rows[RowIdx];
    std::string Line;
    for (size_t I = 0; I != Row.size(); ++I) {
      Line += Row[I];
      if (I + 1 != Row.size())
        Line += std::string(Widths[I] - Row[I].size() + 2, ' ');
    }
    std::fprintf(Out, "%s\n", Line.c_str());
    if (RowIdx == 0) {
      size_t Total = 0;
      for (size_t I = 0; I != Widths.size(); ++I)
        Total += Widths[I] + (I + 1 != Widths.size() ? 2 : 0);
      std::fprintf(Out, "%s\n", std::string(Total, '-').c_str());
    }
  }
}

void pfuzz::printBar(std::FILE *Out, const std::string &Label,
                     double Fraction, int Width) {
  int Filled = static_cast<int>(Fraction * Width + 0.5);
  Filled = std::clamp(Filled, 0, Width);
  std::string Bar(static_cast<size_t>(Filled), '#');
  Bar += std::string(static_cast<size_t>(Width - Filled), '.');
  std::fprintf(Out, "  %-10s |%s| %5.1f%%\n", Label.c_str(), Bar.c_str(),
               Fraction * 100.0);
}

void pfuzz::printSeries(
    std::FILE *Out, const std::string &Label,
    const std::vector<std::pair<uint64_t, uint64_t>> &Samples,
    uint64_t MaxValue, int Width) {
  static const char *const Levels[] = {" ", ".", ":", "-", "=", "+",
                                       "*", "#", "%", "@"};
  std::string Row;
  for (int I = 0; I != Width; ++I) {
    size_t Idx = Samples.empty()
                     ? 0
                     : (static_cast<size_t>(I) * Samples.size()) / Width;
    uint64_t Value = Samples.empty() ? 0 : Samples[Idx].second;
    size_t Level =
        MaxValue == 0 ? 0 : (Value * 9 + MaxValue / 2) / MaxValue;
    Row += Levels[std::min<size_t>(Level, 9)];
  }
  uint64_t Final = Samples.empty() ? 0 : Samples.back().second;
  std::fprintf(Out, "  %-10s |%s| %llu outcomes\n", Label.c_str(),
               Row.c_str(), static_cast<unsigned long long>(Final));
}

std::string pfuzz::formatSeconds(double Seconds) {
  char Buf[64];
  if (Seconds < 0)
    Seconds = 0;
  if (Seconds < 1.0)
    std::snprintf(Buf, sizeof(Buf), "%.0fms", Seconds * 1000.0);
  else if (Seconds < 60.0)
    std::snprintf(Buf, sizeof(Buf), "%.1fs", Seconds);
  else
    std::snprintf(Buf, sizeof(Buf), "%dm%02ds",
                  static_cast<int>(Seconds) / 60,
                  static_cast<int>(Seconds) % 60);
  return Buf;
}

std::string pfuzz::formatExecsPerSec(uint64_t Execs, double Seconds) {
  if (Seconds <= 0)
    return "-";
  double Rate = static_cast<double>(Execs) / Seconds;
  char Buf[64];
  if (Rate >= 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.1fM/s", Rate / 1e6);
  else if (Rate >= 1e3)
    std::snprintf(Buf, sizeof(Buf), "%.1fk/s", Rate / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.0f/s", Rate);
  return Buf;
}
