//===- eval/Campaign.cpp - Tool x subject campaign runner -----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Campaign.h"

#include "baselines/AflFuzzer.h"
#include "baselines/KleeFuzzer.h"
#include "baselines/RandomFuzzer.h"
#include "core/PFuzzer.h"
#include "support/ThreadPool.h"

#include <chrono>

using namespace pfuzz;

unsigned pfuzz::arbitrateSpeculation(int Requested, size_t Workers) {
  if (Requested == 0)
    return 0;
  size_t HW = ThreadPool::hardwareThreads();
  if (Workers < 1)
    Workers = 1;
  if (Requested < 0) // auto: leftover cores, divided evenly
    return HW > Workers ? static_cast<unsigned>((HW - Workers) / Workers) : 0;
  unsigned Req = static_cast<unsigned>(Requested);
  if (Workers <= 1)
    return Req;
  // Explicit request under a parallel seed fan-out: cap at the fair
  // share (floor 1 so the speculation machinery stays engaged even on
  // small machines — determinism never depends on the worker count).
  return std::min<unsigned>(
      Req, static_cast<unsigned>(std::max<size_t>(1, HW / Workers)));
}

std::unique_ptr<Fuzzer> pfuzz::makeFuzzer(ToolKind Kind,
                                          const ToolOptions &Tools) {
  switch (Kind) {
  case ToolKind::PFuzzer: {
    PFuzzerOptions Options;
    Options.RunCacheSize = Tools.PFuzzerRunCache;
    // Direct construction counts as one lone campaign; the campaign
    // runners pre-arbitrate and pass a resolved (>= 0) value instead.
    Options.SpeculationThreads = arbitrateSpeculation(Tools.PFuzzerSpeculation,
                                                      /*Workers=*/1);
    Options.SpeculationDepth = Tools.PFuzzerSpeculationDepth;
    Options.ResumeCacheSize = Tools.PFuzzerResumeCache;
    Options.ResumeStride = Tools.PFuzzerResumeStride;
    Options.ResumeRungs = Tools.PFuzzerResumeRungs;
    Options.LocalityBatch = Tools.PFuzzerLocality;
    Options.ResumeStatsOut = Tools.PFuzzerResumeStatsOut;
    Options.LocalityStatsOut = Tools.PFuzzerLocalityStatsOut;
    return std::make_unique<PFuzzer>(Options);
  }
  case ToolKind::Afl:
    return std::make_unique<AflFuzzer>();
  case ToolKind::Klee:
    return std::make_unique<KleeFuzzer>();
  case ToolKind::Random:
    return std::make_unique<RandomFuzzer>();
  }
  return nullptr;
}

std::string_view pfuzz::toolName(ToolKind Kind) {
  switch (Kind) {
  case ToolKind::PFuzzer:
    return "pFuzzer";
  case ToolKind::Afl:
    return "AFL";
  case ToolKind::Klee:
    return "KLEE";
  case ToolKind::Random:
    return "Random";
  }
  return "?";
}

uint64_t CampaignBudgets::executionsFor(ToolKind Kind) const {
  switch (Kind) {
  case ToolKind::PFuzzer:
    return PFuzzerExecs;
  case ToolKind::Afl:
    return AflExecs;
  case ToolKind::Klee:
    return KleeExecs;
  case ToolKind::Random:
    return RandomExecs;
  }
  return 0;
}

/// Saturating multiply: campaigns cap at UINT64_MAX executions instead of
/// wrapping when --budget-scale is huge.
static uint64_t mulSaturating(uint64_t A, uint64_t B) {
  if (A != 0 && B > UINT64_MAX / A)
    return UINT64_MAX;
  return A * B;
}

void CampaignBudgets::scale(uint64_t Factor) {
  PFuzzerExecs = mulSaturating(PFuzzerExecs, Factor);
  AflExecs = mulSaturating(AflExecs, Factor);
  KleeExecs = mulSaturating(KleeExecs, Factor);
  RandomExecs = mulSaturating(RandomExecs, Factor);
}

namespace {

/// What one (tool, subject, seed) run produced; the unit of parallelism.
struct SeedRunOutcome {
  FuzzReport Report;
  std::set<std::string> TokensFound;
  double WallSeconds = 0;
  ResumeStats Resume;
  LocalityStats Locality;
};

/// Runs one seed of one cell. Everything mutable (fuzzer, Rng, token
/// accounting) is owned by this call, so any number of seed runs can
/// execute concurrently.
SeedRunOutcome runOneSeed(ToolKind Kind, const Subject &S,
                          uint64_t Executions, uint64_t RunSeed,
                          const ToolOptions &Tools) {
  SeedRunOutcome Out;
  // Each seed run gets its own stats sink: concurrent runs must not
  // share whatever pointer the caller put in Tools.
  ToolOptions SeedTools = Tools;
  SeedTools.PFuzzerResumeStatsOut = &Out.Resume;
  SeedTools.PFuzzerLocalityStatsOut = &Out.Locality;
  std::unique_ptr<Fuzzer> Tool = makeFuzzer(Kind, SeedTools);
  TokenCoverage Tokens(S.name());
  FuzzerOptions Opts;
  Opts.Seed = RunSeed;
  Opts.MaxExecutions = Executions;
  Opts.OnValidInput = [&Tokens](std::string_view Input) {
    Tokens.addInput(Input);
  };
  auto Start = std::chrono::steady_clock::now();
  Out.Report = Tool->run(S, Opts);
  Out.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Out.TokensFound = Tokens.found();
  return Out;
}

/// Folds the runs of one cell, in seed order, into the best-run result —
/// the paper's "best of three" protocol. Seed-order reduction is what
/// keeps parallel campaigns bit-identical to sequential ones.
CampaignResult reduceCell(ToolKind Kind, const Subject &S,
                          std::vector<SeedRunOutcome> &Outcomes) {
  CampaignResult Best;
  Best.Tool = Kind;
  Best.SubjectName = S.name();
  bool HaveBest = false;
  for (SeedRunOutcome &Out : Outcomes) {
    Best.WallSeconds += Out.WallSeconds;
    Best.TotalExecutions += Out.Report.Executions;
    Best.Resume.accumulate(Out.Resume);
    Best.Locality.accumulate(Out.Locality);
    bool Better =
        !HaveBest ||
        Out.Report.ValidBranches.size() > Best.Report.ValidBranches.size() ||
        (Out.Report.ValidBranches.size() ==
             Best.Report.ValidBranches.size() &&
         Out.TokensFound.size() > Best.TokensFound.size());
    if (Better) {
      Best.Report = std::move(Out.Report);
      Best.TokensFound = std::move(Out.TokensFound);
      HaveBest = true;
    }
  }
  return Best;
}

} // namespace

CampaignResult pfuzz::runCampaign(ToolKind Kind, const Subject &S,
                                  uint64_t Executions, uint64_t Seed,
                                  int Runs, int Jobs,
                                  const ToolOptions &Tools) {
  std::vector<SeedRunOutcome> Outcomes(std::max(Runs, 0));
  // Resolve the speculation request against the number of seed runs that
  // will actually execute concurrently, so the Jobs layer and the
  // per-campaign prefetcher share the machine instead of multiplying.
  ToolOptions SeedTools = Tools;
  if (Jobs == 1 || Runs <= 1) {
    SeedTools.PFuzzerSpeculation =
        static_cast<int>(arbitrateSpeculation(Tools.PFuzzerSpeculation, 1));
    // Inline fast path: no pool, no thread handoff.
    for (int RunIdx = 0; RunIdx < Runs; ++RunIdx)
      Outcomes[RunIdx] =
          runOneSeed(Kind, S, Executions, Seed + static_cast<uint64_t>(RunIdx),
                     SeedTools);
  } else {
    ThreadPool Pool(Jobs <= 0 ? 0 : static_cast<unsigned>(Jobs));
    SeedTools.PFuzzerSpeculation = static_cast<int>(arbitrateSpeculation(
        Tools.PFuzzerSpeculation, std::min(Pool.size(), Outcomes.size())));
    Pool.parallelFor(0, Outcomes.size(), [&](size_t RunIdx) {
      Outcomes[RunIdx] =
          runOneSeed(Kind, S, Executions, Seed + RunIdx, SeedTools);
    });
  }
  return reduceCell(Kind, S, Outcomes);
}

std::vector<CampaignResult>
pfuzz::runCampaignGrid(const std::vector<CampaignCell> &Cells, uint64_t Seed,
                       int Runs, int Jobs, const ToolOptions &Tools) {
  size_t NumRuns = static_cast<size_t>(std::max(Runs, 0));
  std::vector<std::vector<SeedRunOutcome>> Outcomes(Cells.size());
  for (std::vector<SeedRunOutcome> &Cell : Outcomes)
    Cell.resize(NumRuns);
  // One flat (cell, seed) task list over one pool: a slow cell (AFL's
  // 10x budget) overlaps with every other cell instead of serialising
  // the grid.
  size_t Total = Cells.size() * NumRuns;
  ToolOptions SeedTools = Tools;
  auto RunTask = [&](size_t TaskIdx) {
    size_t CellIdx = TaskIdx / NumRuns;
    size_t RunIdx = TaskIdx % NumRuns;
    const CampaignCell &Cell = Cells[CellIdx];
    Outcomes[CellIdx][RunIdx] = runOneSeed(Cell.Tool, *Cell.S,
                                           Cell.Executions, Seed + RunIdx,
                                           SeedTools);
  };
  if (Jobs == 1 || Total <= 1) {
    SeedTools.PFuzzerSpeculation =
        static_cast<int>(arbitrateSpeculation(Tools.PFuzzerSpeculation, 1));
    for (size_t TaskIdx = 0; TaskIdx != Total; ++TaskIdx)
      RunTask(TaskIdx);
  } else {
    ThreadPool Pool(Jobs <= 0 ? 0 : static_cast<unsigned>(Jobs));
    SeedTools.PFuzzerSpeculation = static_cast<int>(arbitrateSpeculation(
        Tools.PFuzzerSpeculation, std::min(Pool.size(), Total)));
    Pool.parallelFor(0, Total, RunTask);
  }
  std::vector<CampaignResult> Results;
  Results.reserve(Cells.size());
  for (size_t CellIdx = 0; CellIdx != Cells.size(); ++CellIdx)
    Results.push_back(reduceCell(Cells[CellIdx].Tool, *Cells[CellIdx].S,
                                 Outcomes[CellIdx]));
  return Results;
}
