//===- eval/Campaign.cpp - Tool x subject campaign runner -----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Campaign.h"

#include "baselines/AflFuzzer.h"
#include "baselines/KleeFuzzer.h"
#include "baselines/RandomFuzzer.h"
#include "core/PFuzzer.h"
#include "support/Scheduler.h"
#include "support/Telemetry.h"

#include <chrono>

using namespace pfuzz;

SpeculationHint pfuzz::arbitrateSpeculation(int Requested, size_t Workers,
                                            unsigned Hardware) {
  TELEMETRY_SPAN("speculation_arbitration");
  SpeculationHint Hint;
  if (Requested == 0)
    return Hint;
  size_t HW = Hardware != 0 ? Hardware : Scheduler::hardwareThreads();
  if (Workers < 1)
    Workers = 1;
  if (Requested < 0) { // auto: leftover cores, divided evenly
    Hint.Threads =
        HW > Workers ? static_cast<unsigned>((HW - Workers) / Workers) : 0;
    return Hint;
  }
  unsigned Req = static_cast<unsigned>(Requested);
  if (Workers <= 1) {
    Hint.Threads = Req;
    return Hint;
  }
  // Explicit request under a parallel seed fan-out: soften to the fair
  // share (floor 1 so the speculation machinery stays engaged even on
  // small machines — determinism never depends on the worker count).
  // Merely a hint bounding in-flight prefetch depth: the shared pool
  // lets any idle worker steal any campaign's speculation regardless.
  unsigned Fair = static_cast<unsigned>(std::max<size_t>(1, HW / Workers));
  Hint.Threads = std::min(Req, Fair);
  Hint.Capped = Hint.Threads < Req;
  return Hint;
}

std::unique_ptr<Fuzzer> pfuzz::makeFuzzer(ToolKind Kind,
                                          const ToolOptions &Tools) {
  switch (Kind) {
  case ToolKind::PFuzzer: {
    PFuzzerOptions Options;
    Options.RunCacheSize = Tools.PFuzzerRunCache;
    // Direct construction counts as one lone campaign; the campaign
    // runners pre-arbitrate and pass a resolved (>= 0) value instead.
    Options.SpeculationThreads =
        arbitrateSpeculation(Tools.PFuzzerSpeculation, /*Workers=*/1).Threads;
    Options.SpeculationDepth = Tools.PFuzzerSpeculationDepth;
    Options.Sched = Tools.Sched;
    Options.ResumeCacheSize = Tools.PFuzzerResumeCache;
    Options.ResumeStride = Tools.PFuzzerResumeStride;
    Options.ResumeRungs = Tools.PFuzzerResumeRungs;
    Options.LocalityBatch = Tools.PFuzzerLocality;
    Options.ResumeStatsOut = Tools.PFuzzerResumeStatsOut;
    Options.LocalityStatsOut = Tools.PFuzzerLocalityStatsOut;
    Options.ReferenceQueue = Tools.PFuzzerReferenceQueue;
    if (Tools.PFuzzerMaxQueue != 0)
      Options.MaxQueue = Tools.PFuzzerMaxQueue;
    Options.QueueStatsOut = Tools.PFuzzerQueueStatsOut;
    Options.Shards = std::max(1u, Tools.PFuzzerShards);
    if (Tools.PFuzzerShardSyncInterval != 0)
      Options.ShardSyncInterval = Tools.PFuzzerShardSyncInterval;
    Options.ShardStatsOut = Tools.PFuzzerShardStatsOut;
    Options.TelemetryOut = Tools.PFuzzerTelemetryOut;
    Options.Heartbeat = Tools.PFuzzerHeartbeat;
    return std::make_unique<PFuzzer>(Options);
  }
  case ToolKind::Afl:
    return std::make_unique<AflFuzzer>();
  case ToolKind::Klee:
    return std::make_unique<KleeFuzzer>();
  case ToolKind::Random:
    return std::make_unique<RandomFuzzer>();
  }
  return nullptr;
}

std::string_view pfuzz::toolName(ToolKind Kind) {
  switch (Kind) {
  case ToolKind::PFuzzer:
    return "pFuzzer";
  case ToolKind::Afl:
    return "AFL";
  case ToolKind::Klee:
    return "KLEE";
  case ToolKind::Random:
    return "Random";
  }
  return "?";
}

uint64_t CampaignBudgets::executionsFor(ToolKind Kind) const {
  switch (Kind) {
  case ToolKind::PFuzzer:
    return PFuzzerExecs;
  case ToolKind::Afl:
    return AflExecs;
  case ToolKind::Klee:
    return KleeExecs;
  case ToolKind::Random:
    return RandomExecs;
  }
  return 0;
}

/// Saturating multiply: campaigns cap at UINT64_MAX executions instead of
/// wrapping when --budget-scale is huge.
static uint64_t mulSaturating(uint64_t A, uint64_t B) {
  if (A != 0 && B > UINT64_MAX / A)
    return UINT64_MAX;
  return A * B;
}

void CampaignBudgets::scale(uint64_t Factor) {
  PFuzzerExecs = mulSaturating(PFuzzerExecs, Factor);
  AflExecs = mulSaturating(AflExecs, Factor);
  KleeExecs = mulSaturating(KleeExecs, Factor);
  RandomExecs = mulSaturating(RandomExecs, Factor);
}

namespace {

/// What one (tool, subject, seed) run produced; the unit of parallelism.
struct SeedRunOutcome {
  FuzzReport Report;
  std::set<std::string> TokensFound;
  double WallSeconds = 0;
  ResumeStats Resume;
  LocalityStats Locality;
  QueueStats Queue;
  ShardStats Shards;
  TelemetrySnapshot Telemetry;
};

/// Runs one seed of one cell. Everything mutable (fuzzer, Rng, token
/// accounting) is owned by this call, so any number of seed runs can
/// execute concurrently.
SeedRunOutcome runOneSeed(ToolKind Kind, const Subject &S,
                          uint64_t Executions, uint64_t RunSeed,
                          const ToolOptions &Tools) {
  SeedRunOutcome Out;
  // Each seed run gets its own stats sink: concurrent runs must not
  // share whatever pointer the caller put in Tools.
  ToolOptions SeedTools = Tools;
  SeedTools.PFuzzerResumeStatsOut = &Out.Resume;
  SeedTools.PFuzzerLocalityStatsOut = &Out.Locality;
  SeedTools.PFuzzerQueueStatsOut = &Out.Queue;
  SeedTools.PFuzzerShardStatsOut = &Out.Shards;
  SeedTools.PFuzzerTelemetryOut = &Out.Telemetry;
  std::unique_ptr<Fuzzer> Tool = makeFuzzer(Kind, SeedTools);
  TokenCoverage Tokens(S.name());
  FuzzerOptions Opts;
  Opts.Seed = RunSeed;
  Opts.MaxExecutions = Executions;
  Opts.OnValidInput = [&Tokens](std::string_view Input) {
    Tokens.addInput(Input);
  };
  auto Start = std::chrono::steady_clock::now();
  Out.Report = Tool->run(S, Opts);
  Out.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Out.TokensFound = Tokens.found();
  return Out;
}

/// Folds the runs of one cell, in seed order, into the best-run result —
/// the paper's "best of three" protocol. Seed-order reduction is what
/// keeps parallel campaigns bit-identical to sequential ones.
CampaignResult reduceCell(ToolKind Kind, const Subject &S,
                          std::vector<SeedRunOutcome> &Outcomes) {
  CampaignResult Best;
  Best.Tool = Kind;
  Best.SubjectName = S.name();
  bool HaveBest = false;
  for (SeedRunOutcome &Out : Outcomes) {
    Best.WallSeconds += Out.WallSeconds;
    Best.TotalExecutions += Out.Report.Executions;
    Best.Resume.accumulate(Out.Resume);
    Best.Locality.accumulate(Out.Locality);
    Best.Queue.accumulate(Out.Queue);
    Best.Shards.accumulate(Out.Shards);
    Best.Telemetry.accumulate(Out.Telemetry);
    bool Better =
        !HaveBest ||
        Out.Report.ValidBranches.size() > Best.Report.ValidBranches.size() ||
        (Out.Report.ValidBranches.size() ==
             Best.Report.ValidBranches.size() &&
         Out.TokensFound.size() > Best.TokensFound.size());
    if (Better) {
      Best.Report = std::move(Out.Report);
      Best.TokensFound = std::move(Out.TokensFound);
      HaveBest = true;
    }
  }
  return Best;
}

/// Resolves the caller's ToolOptions for seed runs fanned out on
/// \p Sched with \p Campaigns of them executing concurrently: arbitrates
/// the speculation request down to a per-campaign hint and pins the
/// scheduler, so every fuzzer the runners create shares the one pool.
/// The single place the Jobs layer and the speculation layer meet —
/// keep the policy here, not at the call sites.
ToolOptions resolveSeedTools(const ToolOptions &Tools, size_t Campaigns,
                             Scheduler *Sched) {
  ToolOptions Seed = Tools;
  Seed.PFuzzerSpeculation = static_cast<int>(
      arbitrateSpeculation(Tools.PFuzzerSpeculation, Campaigns).Threads);
  Seed.Sched = Sched;
  return Seed;
}

} // namespace

CampaignResult pfuzz::runCampaign(ToolKind Kind, const Subject &S,
                                  uint64_t Executions, uint64_t Seed,
                                  int Runs, int Jobs,
                                  const ToolOptions &Tools) {
  std::vector<SeedRunOutcome> Outcomes(std::max(Runs, 0));
  if (Jobs == 1 || Runs <= 1) {
    // Inline fast path: no pool handoff for the seed layer (speculation
    // may still engage the scheduler from within the campaign).
    ToolOptions SeedTools = resolveSeedTools(Tools, 1, Tools.Sched);
    for (int RunIdx = 0; RunIdx < Runs; ++RunIdx)
      Outcomes[RunIdx] =
          runOneSeed(Kind, S, Executions, Seed + static_cast<uint64_t>(RunIdx),
                     SeedTools);
  } else {
    Scheduler &Sch = Tools.Sched ? *Tools.Sched : Scheduler::global();
    size_t Cap = Jobs <= 0 ? static_cast<size_t>(Sch.size())
                           : static_cast<size_t>(Jobs);
    ToolOptions SeedTools = resolveSeedTools(
        Tools,
        std::min({static_cast<size_t>(Sch.size()), Cap, Outcomes.size()}),
        &Sch);
    Sch.parallelFor(
        0, Outcomes.size(),
        [&](size_t RunIdx) {
          Outcomes[RunIdx] =
              runOneSeed(Kind, S, Executions, Seed + RunIdx, SeedTools);
        },
        Jobs <= 0 ? 0 : static_cast<size_t>(Jobs), TaskClass::Jobs);
  }
  return reduceCell(Kind, S, Outcomes);
}

std::vector<CampaignResult>
pfuzz::runCampaignGrid(const std::vector<CampaignCell> &Cells, uint64_t Seed,
                       int Runs, int Jobs, const ToolOptions &Tools) {
  size_t NumRuns = static_cast<size_t>(std::max(Runs, 0));
  std::vector<std::vector<SeedRunOutcome>> Outcomes(Cells.size());
  for (std::vector<SeedRunOutcome> &Cell : Outcomes)
    Cell.resize(NumRuns);
  // One flat (cell, seed) task list over the shared pool: a slow cell
  // (AFL's 10x budget) overlaps with every other cell instead of
  // serialising the grid.
  size_t Total = Cells.size() * NumRuns;
  ToolOptions SeedTools;
  auto RunTask = [&](size_t TaskIdx) {
    size_t CellIdx = TaskIdx / NumRuns;
    size_t RunIdx = TaskIdx % NumRuns;
    const CampaignCell &Cell = Cells[CellIdx];
    Outcomes[CellIdx][RunIdx] = runOneSeed(Cell.Tool, *Cell.S,
                                           Cell.Executions, Seed + RunIdx,
                                           SeedTools);
  };
  if (Jobs == 1 || Total <= 1) {
    SeedTools = resolveSeedTools(Tools, 1, Tools.Sched);
    for (size_t TaskIdx = 0; TaskIdx != Total; ++TaskIdx)
      RunTask(TaskIdx);
  } else {
    Scheduler &Sch = Tools.Sched ? *Tools.Sched : Scheduler::global();
    size_t Cap = Jobs <= 0 ? static_cast<size_t>(Sch.size())
                           : static_cast<size_t>(Jobs);
    SeedTools = resolveSeedTools(
        Tools, std::min({static_cast<size_t>(Sch.size()), Cap, Total}), &Sch);
    Sch.parallelFor(0, Total, RunTask,
                    Jobs <= 0 ? 0 : static_cast<size_t>(Jobs),
                    TaskClass::Jobs);
  }
  std::vector<CampaignResult> Results;
  Results.reserve(Cells.size());
  for (size_t CellIdx = 0; CellIdx != Cells.size(); ++CellIdx)
    Results.push_back(reduceCell(Cells[CellIdx].Tool, *Cells[CellIdx].S,
                                 Outcomes[CellIdx]));
  return Results;
}
