//===- eval/Campaign.cpp - Tool x subject campaign runner -----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Campaign.h"

#include "baselines/AflFuzzer.h"
#include "baselines/KleeFuzzer.h"
#include "baselines/RandomFuzzer.h"
#include "core/PFuzzer.h"

using namespace pfuzz;

std::unique_ptr<Fuzzer> pfuzz::makeFuzzer(ToolKind Kind) {
  switch (Kind) {
  case ToolKind::PFuzzer:
    return std::make_unique<PFuzzer>();
  case ToolKind::Afl:
    return std::make_unique<AflFuzzer>();
  case ToolKind::Klee:
    return std::make_unique<KleeFuzzer>();
  case ToolKind::Random:
    return std::make_unique<RandomFuzzer>();
  }
  return nullptr;
}

std::string_view pfuzz::toolName(ToolKind Kind) {
  switch (Kind) {
  case ToolKind::PFuzzer:
    return "pFuzzer";
  case ToolKind::Afl:
    return "AFL";
  case ToolKind::Klee:
    return "KLEE";
  case ToolKind::Random:
    return "Random";
  }
  return "?";
}

uint64_t CampaignBudgets::executionsFor(ToolKind Kind) const {
  switch (Kind) {
  case ToolKind::PFuzzer:
    return PFuzzerExecs;
  case ToolKind::Afl:
    return AflExecs;
  case ToolKind::Klee:
    return KleeExecs;
  case ToolKind::Random:
    return RandomExecs;
  }
  return 0;
}

void CampaignBudgets::scale(uint64_t Factor) {
  PFuzzerExecs *= Factor;
  AflExecs *= Factor;
  KleeExecs *= Factor;
  RandomExecs *= Factor;
}

CampaignResult pfuzz::runCampaign(ToolKind Kind, const Subject &S,
                                  uint64_t Executions, uint64_t Seed,
                                  int Runs) {
  CampaignResult Best;
  Best.Tool = Kind;
  Best.SubjectName = S.name();
  bool HaveBest = false;
  for (int RunIdx = 0; RunIdx < Runs; ++RunIdx) {
    std::unique_ptr<Fuzzer> Tool = makeFuzzer(Kind);
    TokenCoverage Tokens(S.name());
    FuzzerOptions Opts;
    Opts.Seed = Seed + static_cast<uint64_t>(RunIdx);
    Opts.MaxExecutions = Executions;
    Opts.OnValidInput = [&Tokens](std::string_view Input) {
      Tokens.addInput(Input);
    };
    FuzzReport Report = Tool->run(S, Opts);
    bool Better =
        !HaveBest ||
        Report.ValidBranches.size() > Best.Report.ValidBranches.size() ||
        (Report.ValidBranches.size() == Best.Report.ValidBranches.size() &&
         Tokens.found().size() > Best.TokensFound.size());
    if (Better) {
      Best.Report = std::move(Report);
      Best.TokensFound = Tokens.found();
      HaveBest = true;
    }
  }
  return Best;
}
