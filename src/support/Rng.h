//===- support/Rng.h - Deterministic random number generator ---*- C++ -*-===//
//
// Part of the pfuzz project, a reproduction of "Parser-Directed Fuzzing"
// (Mathis et al., PLDI 2019). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xoshiro256** seeded via SplitMix64).
/// Every stochastic component of the fuzzers draws from an explicitly
/// seeded Rng so that campaigns are reproducible run-to-run.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUPPORT_RNG_H
#define PFUZZ_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace pfuzz {

/// Deterministic pseudo-random number generator.
///
/// Not cryptographically secure; used only to drive fuzzing decisions.
class Rng {
public:
  /// Creates a generator whose entire stream is determined by \p Seed.
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via SplitMix64.
  void reseed(uint64_t Seed);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t next();

  /// Returns a uniform value in [0, \p Bound). \p Bound must be non-zero.
  uint64_t below(uint64_t Bound);

  /// Returns true with probability \p Num / \p Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den != 0 && "probability with zero denominator");
    return below(Den) < Num;
  }

  /// Returns a uniform printable ASCII character (0x20..0x7E).
  char nextPrintable() { return static_cast<char>(0x20 + below(0x5F)); }

  /// Returns a uniform byte over the full 0..255 range.
  uint8_t nextByte() { return static_cast<uint8_t>(below(256)); }

  /// Returns a reference to a uniformly chosen element of \p Elems.
  template <typename T> const T &pick(const std::vector<T> &Elems) {
    assert(!Elems.empty() && "pick from empty vector");
    return Elems[below(Elems.size())];
  }

private:
  uint64_t State[4];
};

} // namespace pfuzz

#endif // PFUZZ_SUPPORT_RNG_H
