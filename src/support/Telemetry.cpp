//===- support/Telemetry.cpp - Process-wide metrics registry --------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <cstdlib>

using namespace pfuzz;

RegistrySnapshot RegistrySnapshot::minus(const RegistrySnapshot &Base) const {
  auto Sub = [](uint64_t A, uint64_t B) { return A > B ? A - B : 0; };
  RegistrySnapshot Delta;
  for (const auto &[Name, Value] : Counters)
    Delta.Counters[Name] = Sub(Value, Base.counter(Name));
  Delta.Gauges = Gauges;
  for (const auto &[Name, Hist] : Histograms) {
    HistogramData D;
    const HistogramData *B = Base.histogram(Name);
    D.Count = Sub(Hist.Count, B ? B->Count : 0);
    D.Sum = Sub(Hist.Sum, B ? B->Sum : 0);
    for (size_t I = 0; I != HistogramData::BucketCount; ++I)
      D.Buckets[I] = Sub(Hist.Buckets[I], B ? B->Buckets[I] : 0);
    Delta.Histograms[Name] = D;
  }
  return Delta;
}

namespace {
/// Never recycled, so a thread-local shard cache entry left over from a
/// destroyed registry can never match a live one.
std::atomic<uint64_t> NextRegistryId{1};
} // namespace

TelemetryRegistry::TelemetryRegistry()
    : UniqueId(NextRegistryId.fetch_add(1, std::memory_order_relaxed)) {}

TelemetryRegistry::~TelemetryRegistry() = default;

MetricId TelemetryRegistry::registerMetric(const std::string &Name, Kind K,
                                           size_t Cells) {
  std::lock_guard<std::mutex> Lock(RegMutex);
  auto It = ByName.find(Name);
  if (It != ByName.end()) {
    if (It->second.first != K) {
      std::fprintf(stderr,
                   "telemetry: metric '%s' re-registered under a different "
                   "kind\n",
                   Name.c_str());
      std::abort();
    }
    return It->second.second;
  }
  size_t Slot;
  if (K == Kind::Gauge) {
    if (NextGauge + 1 > MaxGauges) {
      std::fprintf(stderr, "telemetry: gauge capacity exhausted at '%s'\n",
                   Name.c_str());
      std::abort();
    }
    Slot = NextGauge;
    NextGauge += 1;
  } else {
    if (NextCell + Cells > MaxCells) {
      std::fprintf(stderr, "telemetry: cell capacity exhausted at '%s'\n",
                   Name.c_str());
      std::abort();
    }
    Slot = NextCell;
    NextCell += Cells;
  }
  MetricId Id{static_cast<uint32_t>(Slot)};
  ByName.emplace(Name, std::make_pair(K, Id));
  return Id;
}

MetricId TelemetryRegistry::counter(const std::string &Name) {
  return registerMetric(Name, Kind::Counter, 1);
}

MetricId TelemetryRegistry::gauge(const std::string &Name) {
  return registerMetric(Name, Kind::Gauge, 1);
}

MetricId TelemetryRegistry::histogram(const std::string &Name) {
  return registerMetric(Name, Kind::Histogram, HistogramData::BucketCount + 2);
}

TelemetryRegistry::Shard *TelemetryRegistry::localShard() {
  // Single-digit registries per process (the global one plus test
  // locals), so a tiny linear cache beats a hash map and never
  // allocates on the hot path after a thread's first touch.
  thread_local std::vector<std::pair<uint64_t, Shard *>> Cache;
  for (const auto &[Id, S] : Cache)
    if (Id == UniqueId)
      return S;
  Shard *S;
  {
    std::lock_guard<std::mutex> Lock(RegMutex);
    Shards.push_back(std::make_unique<Shard>());
    S = Shards.back().get();
  }
  Cache.emplace_back(UniqueId, S);
  return S;
}

RegistrySnapshot TelemetryRegistry::snapshot() const {
  RegistrySnapshot Snap;
  std::lock_guard<std::mutex> Lock(RegMutex);
  auto SumCells = [this](size_t Slot) {
    uint64_t Total = 0;
    for (const auto &S : Shards)
      Total += S->Cells[Slot].load(std::memory_order_relaxed);
    return Total;
  };
  for (const auto &[Name, Entry] : ByName) {
    const auto &[K, Id] = Entry;
    switch (K) {
    case Kind::Counter:
      Snap.Counters[Name] = SumCells(Id.Slot);
      break;
    case Kind::Gauge:
      Snap.Gauges[Name] = GaugeCells[Id.Slot].load(std::memory_order_relaxed);
      break;
    case Kind::Histogram: {
      HistogramData D;
      for (size_t I = 0; I != HistogramData::BucketCount; ++I)
        D.Buckets[I] = SumCells(Id.Slot + I);
      D.Sum = SumCells(Id.Slot + HistogramData::BucketCount);
      D.Count = SumCells(Id.Slot + HistogramData::BucketCount + 1);
      Snap.Histograms[Name] = D;
      break;
    }
    }
  }
  return Snap;
}

TelemetryRegistry &TelemetryRegistry::global() {
  // Leaked: spans may fire from scheduler workers that outlive main's
  // static destructors.
  static TelemetryRegistry *Global = new TelemetryRegistry();
  return *Global;
}

bool HeartbeatEmitter::open(const std::string &Path, uint64_t Every) {
  close();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (F == nullptr)
    return false;
  std::lock_guard<std::mutex> Lock(EmitMutex);
  Out = F;
  EveryN = Every == 0 ? 1 : Every;
  Execs.store(0, std::memory_order_relaxed);
  Beat = 0;
  LastExecs = 0;
  StartTime = LastTime = std::chrono::steady_clock::now();
  WriteError = false;
  Armed.store(true, std::memory_order_release);
  return true;
}

void HeartbeatEmitter::emit(const HeartbeatSample &S) {
  std::lock_guard<std::mutex> Lock(EmitMutex);
  if (Out == nullptr)
    return;
  // Re-read the shared counter under the lock: whatever interleaving of
  // shard ticks happened, successive records see a non-decreasing count.
  uint64_t ExecsNow = Execs.load(std::memory_order_relaxed);
  auto Now = std::chrono::steady_clock::now();
  double WallS = std::chrono::duration<double>(Now - StartTime).count();
  double IntervalS = std::chrono::duration<double>(Now - LastTime).count();
  double Rate = IntervalS > 0
                    ? static_cast<double>(ExecsNow - LastExecs) / IntervalS
                    : 0;
  uint64_t TsMs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  ++Beat;
  int Rc = std::fprintf(
      Out,
      "{\"ts_ms\": %llu, \"beat\": %llu, \"shard\": %u,"
      " \"executions\": %llu, \"wall_s\": %.3f, \"execs_per_sec\": %.1f,"
      " \"frontier\": %llu, \"queue_bytes\": %llu,"
      " \"run_cache_hit_rate\": %.4f, \"resume_hit_rate\": %.4f,"
      " \"sched_steal_rate\": %.4f, \"shard_lag\": %llu}\n",
      static_cast<unsigned long long>(TsMs),
      static_cast<unsigned long long>(Beat), S.Shard,
      static_cast<unsigned long long>(ExecsNow), WallS, Rate,
      static_cast<unsigned long long>(S.Frontier),
      static_cast<unsigned long long>(S.QueueBytes), S.RunCacheHitRate,
      S.ResumeHitRate, S.SchedStealRate,
      static_cast<unsigned long long>(S.ShardLag));
  if (Rc < 0 || std::fflush(Out) != 0)
    WriteError = true;
  LastExecs = ExecsNow;
  LastTime = Now;
}

uint64_t HeartbeatEmitter::beats() const {
  std::lock_guard<std::mutex> Lock(EmitMutex);
  return Beat;
}

bool HeartbeatEmitter::close() {
  Armed.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(EmitMutex);
  if (Out == nullptr)
    return !WriteError;
  if (std::fclose(Out) != 0)
    WriteError = true;
  Out = nullptr;
  return !WriteError;
}
