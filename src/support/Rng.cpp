//===- support/Rng.cpp - Deterministic random number generator -----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

using namespace pfuzz;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  uint64_t Mix = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(Mix);
  // xoshiro must not be seeded with the all-zero state.
  if (State[0] == 0 && State[1] == 0 && State[2] == 0 && State[3] == 0)
    State[0] = 1;
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound != 0 && "below() with zero bound");
  // Rejection sampling to avoid modulo bias; the loop terminates with
  // probability 1 and in expectation after < 2 iterations.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}
