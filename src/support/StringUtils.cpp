//===- support/StringUtils.cpp - Small string helpers --------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include "support/Ascii.h"

#include <cstdio>

using namespace pfuzz;

std::string pfuzz::escapeString(std::string_view Input) {
  std::string Out;
  Out.reserve(Input.size());
  for (char C : Input) {
    switch (C) {
    case '\n':
      Out += "\\n";
      continue;
    case '\t':
      Out += "\\t";
      continue;
    case '\r':
      Out += "\\r";
      continue;
    case '\\':
      Out += "\\\\";
      continue;
    default:
      break;
    }
    if (isAsciiPrintable(C)) {
      Out += C;
      continue;
    }
    char Buf[8];
    std::snprintf(Buf, sizeof(Buf), "\\x%02x",
                  static_cast<unsigned>(static_cast<unsigned char>(C)));
    Out += Buf;
  }
  return Out;
}

std::string pfuzz::join(const std::vector<std::string> &Parts,
                        std::string_view Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string pfuzz::formatDouble(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

bool pfuzz::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

std::vector<std::string> pfuzz::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0, E = Text.size(); I != E; ++I) {
    if (Text[I] != Sep)
      continue;
    Out.emplace_back(Text.substr(Start, I - Start));
    Start = I + 1;
  }
  Out.emplace_back(Text.substr(Start));
  return Out;
}
