//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace pfuzz;

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = hardwareThreads();
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::packaged_task<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return Stopping || QueueHead < Queue.size(); });
      if (QueueHead == Queue.size()) {
        // Stopping and the queue is drained: exit. (Stopping with tasks
        // still queued keeps draining — destruction never drops work.)
        return;
      }
      Task = std::move(Queue[QueueHead]);
      ++QueueHead;
      // Compact occasionally so a long-lived pool does not accumulate
      // moved-out task shells.
      if (QueueHead == Queue.size()) {
        Queue.clear();
        QueueHead = 0;
      } else if (QueueHead > 1024 && QueueHead * 2 > Queue.size()) {
        Queue.erase(Queue.begin(), Queue.begin() + QueueHead);
        QueueHead = 0;
      }
    }
    Task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> Task) {
  std::packaged_task<void()> Packaged(std::move(Task));
  std::future<void> Future = Packaged.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Packaged));
  }
  WorkAvailable.notify_one();
  return Future;
}

bool CancellableTask::cancel() {
  if (!State)
    return false;
  int Expected = Pending;
  return State->Phase.compare_exchange_strong(Expected, Cancelled);
}

void CancellableTask::wait() {
  if (State)
    State->Future.wait();
}

bool CancellableTask::ran() const {
  return State && State->Phase.load(std::memory_order_acquire) == Done;
}

CancellableTask ThreadPool::submitCancellable(std::function<void()> Task) {
  CancellableTask Handle;
  Handle.State = std::make_shared<CancellableTask::Shared>();
  std::shared_ptr<CancellableTask::Shared> State = Handle.State;
  Handle.State->Future =
      submit([State, Task = std::move(Task)] {
        // Claim the task; a concurrent cancel() that won the race turns
        // this queue slot into a no-op.
        int Expected = CancellableTask::Pending;
        if (!State->Phase.compare_exchange_strong(Expected,
                                                  CancellableTask::Running))
          return;
        Task();
        State->Phase.store(CancellableTask::Done, std::memory_order_release);
      });
  return Handle;
}

void ThreadPool::parallelFor(size_t Begin, size_t End,
                             const std::function<void(size_t)> &Fn) {
  if (Begin >= End)
    return;
  std::vector<std::future<void>> Futures;
  Futures.reserve(End - Begin);
  for (size_t I = Begin; I != End; ++I)
    Futures.push_back(submit([&Fn, I] { Fn(I); }));
  // Wait for everything first so all iterations complete even when an
  // early one threw; then surface the first exception in index order.
  for (std::future<void> &F : Futures)
    F.wait();
  for (std::future<void> &F : Futures)
    F.get();
}
