//===- support/ThreadPool.h - Fixed-size worker pool -------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool: a FIFO queue drained by N workers
/// under one mutex, no work stealing, no task dependency graph. Since
/// support/Scheduler.h landed, the campaign runners and the speculative
/// prefetcher run on the work-stealing scheduler instead; this pool
/// remains as the simple alternative for callers that want strict FIFO
/// dispatch, and as the baseline the bench/micro_queue sweep measures
/// the scheduler against. Callers that require determinism reduce
/// results in submission order, never in completion order.
///
/// Cancellation-vs-dispatch audit (the race Scheduler must solve
/// lock-free): here, retraction is trivially race-free because the
/// global Mutex serializes it against dispatch — a worker marks a task
/// Running while holding the lock, and cancel()'s Pending->Cancelled
/// CAS runs against that single ordered timeline, so "cancelled but
/// also executed" cannot happen and a cancelled slot drains O(1) as a
/// no-op. The cost is that every dispatch and every retraction takes
/// the same lock. Scheduler keeps the identical Phase state machine but
/// drops the lock: a task sitting in a lock-free deque can be *stolen*
/// concurrently with being cancelled, and the claim CAS
/// (Pending->Running by the thief or inliner, Pending->Cancelled by the
/// canceller) is the sole arbiter — exactly one side wins, stolen
/// shells of lost cancellations drain O(1), and the TSan CI job runs
/// SchedulerTest.CancellationArbitratesCorrectlyUnderStealing to pin
/// that protocol.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUPPORT_THREADPOOL_H
#define PFUZZ_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pfuzz {

/// Handle to a task submitted via ThreadPool::submitCancellable. Allows
/// best-effort cancellation of work that has not started yet: speculative
/// callers (the pFuzzer prefetcher) retract mispredicted tasks so queued
/// slots drain in O(1) instead of executing a run nobody will consume.
class CancellableTask {
public:
  CancellableTask() = default;

  /// True when this handle refers to a submitted task.
  bool valid() const { return State != nullptr; }

  /// Attempts to cancel. Returns true when the task had not started and
  /// will never run (its queue slot still drains, as a no-op). Returns
  /// false when the task is already running or finished.
  bool cancel();

  /// Blocks until the task finished running or its cancelled shell
  /// drained from the queue. No-op on an invalid handle.
  void wait();

  /// Non-blocking: true when the task ran to completion (as opposed to
  /// still pending/running, or cancelled).
  bool ran() const;

private:
  friend class ThreadPool;

  enum Phase : int { Pending = 0, Running = 1, Done = 2, Cancelled = 3 };

  struct Shared {
    std::atomic<int> Phase{Pending};
    std::future<void> Future;
  };

  std::shared_ptr<Shared> State;
};

/// A fixed-size pool of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// Creates \p Threads workers; 0 means hardwareThreads(). A pool of
  /// size 1 executes tasks strictly in submission order.
  explicit ThreadPool(unsigned Threads = 0);

  /// Drains every queued task, then joins the workers. Tasks submitted
  /// before destruction are guaranteed to run.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  size_t size() const { return Workers.size(); }

  /// Enqueues \p Task; the future resolves when it finishes and carries
  /// any exception the task threw.
  std::future<void> submit(std::function<void()> Task);

  /// Enqueues \p Task and returns a handle that can retract it while it
  /// is still queued (CancellableTask::cancel). A cancelled task's queue
  /// slot still drains — as a no-op — so cancellation never blocks and
  /// never reorders other tasks.
  CancellableTask submitCancellable(std::function<void()> Task);

  /// Runs Fn(I) for every I in [Begin, End) across the pool and blocks
  /// until all calls finished. The first exception thrown by any call is
  /// rethrown in the caller (the remaining iterations still run).
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t)> &Fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0).
  static unsigned hardwareThreads();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::vector<std::packaged_task<void()>> Queue;
  size_t QueueHead = 0; // Queue[0..QueueHead) already dispatched
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  bool Stopping = false;
};

} // namespace pfuzz

#endif // PFUZZ_SUPPORT_THREADPOOL_H
