//===- support/ThreadPool.h - Fixed-size worker pool -------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the evaluation harness to fan
/// out independent fuzzing campaigns. There is deliberately no work
/// stealing and no task dependency graph: campaign cells are large,
/// independent, and deterministic, so a FIFO queue drained by N workers
/// is all the machinery needed. Callers that require determinism reduce
/// results in submission order, never in completion order.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUPPORT_THREADPOOL_H
#define PFUZZ_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pfuzz {

/// A fixed-size pool of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// Creates \p Threads workers; 0 means hardwareThreads(). A pool of
  /// size 1 executes tasks strictly in submission order.
  explicit ThreadPool(unsigned Threads = 0);

  /// Drains every queued task, then joins the workers. Tasks submitted
  /// before destruction are guaranteed to run.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  size_t size() const { return Workers.size(); }

  /// Enqueues \p Task; the future resolves when it finishes and carries
  /// any exception the task threw.
  std::future<void> submit(std::function<void()> Task);

  /// Runs Fn(I) for every I in [Begin, End) across the pool and blocks
  /// until all calls finished. The first exception thrown by any call is
  /// rethrown in the caller (the remaining iterations still run).
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t)> &Fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0).
  static unsigned hardwareThreads();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::vector<std::packaged_task<void()>> Queue;
  size_t QueueHead = 0; // Queue[0..QueueHead) already dispatched
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  bool Stopping = false;
};

} // namespace pfuzz

#endif // PFUZZ_SUPPORT_THREADPOOL_H
