//===- support/ByteArena.h - Append-only byte arena --------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat append-only byte arena: callers append slices and address them
/// by (offset, length) instead of owning a string each. The candidate
/// store keeps every queued candidate's suffix bytes here, so a hundred
/// thousand candidates cost one allocation-amortized buffer instead of a
/// hundred thousand std::string heads. Offsets are stable until the
/// owner rebuilds the arena (compaction swaps in a fresh one and patches
/// its own offsets), so views must not be cached across a compaction.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUPPORT_BYTEARENA_H
#define PFUZZ_SUPPORT_BYTEARENA_H

#include <cstdint>
#include <string>
#include <string_view>

namespace pfuzz {

/// Append-only byte storage addressed by (offset, length) slices.
class ByteArena {
public:
  /// Appends \p Bytes and returns the offset of the copy.
  uint32_t append(std::string_view Bytes) {
    uint32_t Ofs = static_cast<uint32_t>(Bytes_.size());
    Bytes_.append(Bytes);
    return Ofs;
  }

  /// The slice stored at [\p Ofs, \p Ofs + \p Len). Valid until the next
  /// append that reallocates or a swap/clear.
  std::string_view view(uint32_t Ofs, uint32_t Len) const {
    return std::string_view(Bytes_).substr(Ofs, Len);
  }

  const char *data() const { return Bytes_.data(); }
  size_t size() const { return Bytes_.size(); }
  size_t capacity() const { return Bytes_.capacity(); }

  void clear() { Bytes_.clear(); }

  /// Reserves storage up front (compaction sizes the replacement arena
  /// from the live-byte count).
  void reserve(size_t Bytes) { Bytes_.reserve(Bytes); }

  void swap(ByteArena &Other) { Bytes_.swap(Other.Bytes_); }

private:
  std::string Bytes_;
};

} // namespace pfuzz

#endif // PFUZZ_SUPPORT_BYTEARENA_H
