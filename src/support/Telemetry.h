//===- support/Telemetry.h - Process-wide metrics registry ------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability substrate of a production campaign: one process-wide
/// registry of named monotonic counters, gauges, and fixed-bucket
/// histograms, plus the heartbeat emitter that streams epoch-stamped
/// NDJSON records while a campaign runs.
///
/// Hot-path discipline: counter increments and histogram samples land in
/// per-worker shards of relaxed atomics — no locks, no allocation after a
/// thread's first touch — and are only consolidated when someone takes a
/// snapshot. Gauges are single last-writer-wins atomics. Registration
/// (name -> MetricId) takes a mutex and is meant to happen once per call
/// site, cached in a static local (see TELEMETRY_SPAN).
///
/// Telemetry is read-only with respect to fuzzing decisions: nothing in
/// this file feeds back into the search, so FuzzReports are byte-identical
/// with telemetry on, off, or compiled out. Defining PFUZZ_NO_TELEMETRY
/// turns TELEMETRY_SPAN into a no-op statement and the registry's
/// hot-path mutators into empty inlines; the heartbeat emitter (explicit
/// opt-in via --telemetry, off the per-execution path beyond one branch
/// and one relaxed increment) stays functional either way.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUPPORT_TELEMETRY_H
#define PFUZZ_SUPPORT_TELEMETRY_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pfuzz {

/// Opaque handle to a registered metric. Cheap to copy; obtained once per
/// call site from TelemetryRegistry::counter/gauge/histogram and reused
/// for every update.
struct MetricId {
  uint32_t Slot = UINT32_MAX;
  bool valid() const { return Slot != UINT32_MAX; }
};

/// Consolidated histogram contents: power-of-two value buckets (bucket I
/// counts samples with bit_width I, i.e. in [2^(I-1), 2^I)), plus exact
/// sum and count so snapshots can report true means.
struct HistogramData {
  static constexpr size_t BucketCount = 40;

  uint64_t Count = 0;
  uint64_t Sum = 0;
  std::array<uint64_t, BucketCount> Buckets{};

  double mean() const {
    return Count == 0 ? 0 : static_cast<double>(Sum) / static_cast<double>(Count);
  }

  void accumulate(const HistogramData &Other) {
    Count += Other.Count;
    Sum += Other.Sum;
    for (size_t I = 0; I != BucketCount; ++I)
      Buckets[I] += Other.Buckets[I];
  }
};

/// Point-in-time consolidation of a registry: every metric by name.
/// Plain value type so tests can diff two snapshots with minus().
class RegistrySnapshot {
public:
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, uint64_t> Gauges;
  std::map<std::string, HistogramData> Histograms;

  uint64_t counter(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  uint64_t gauge(const std::string &Name) const {
    auto It = Gauges.find(Name);
    return It == Gauges.end() ? 0 : It->second;
  }

  const HistogramData *histogram(const std::string &Name) const {
    auto It = Histograms.find(Name);
    return It == Histograms.end() ? nullptr : &It->second;
  }

  /// Per-interval delta against an earlier snapshot of the same registry:
  /// counters and histograms subtract (saturating at 0 per field); gauges
  /// keep this snapshot's value. Lets tests isolate one campaign's spans
  /// on the process-global registry.
  RegistrySnapshot minus(const RegistrySnapshot &Base) const;
};

/// Process-wide metrics registry. All methods are thread-safe;
/// add/set/record are lock-free after a thread's first touch.
class TelemetryRegistry {
public:
  /// Total metric cells (counters cost 1, histograms BucketCount + 2)
  /// one registry can hold. Registration past the cap aborts — the
  /// metric namespace is static, sized by call sites, not by data.
  static constexpr size_t MaxCells = 1024;
  /// Gauge slots per registry (gauges live outside the sharded cells).
  static constexpr size_t MaxGauges = 64;

  TelemetryRegistry();
  ~TelemetryRegistry();
  TelemetryRegistry(const TelemetryRegistry &) = delete;
  TelemetryRegistry &operator=(const TelemetryRegistry &) = delete;

  /// Registers (or looks up) a monotonic counter. Idempotent per name;
  /// re-registering a name under a different kind aborts.
  MetricId counter(const std::string &Name);
  /// Registers (or looks up) a last-writer-wins gauge.
  MetricId gauge(const std::string &Name);
  /// Registers (or looks up) a fixed-bucket histogram.
  MetricId histogram(const std::string &Name);

  /// Adds \p Delta to a counter on this thread's shard.
  void add(MetricId Id, uint64_t Delta = 1) {
#ifndef PFUZZ_NO_TELEMETRY
    if (Id.valid())
      localShard()->Cells[Id.Slot].fetch_add(Delta, std::memory_order_relaxed);
#else
    (void)Id;
    (void)Delta;
#endif
  }

  /// Stores \p Value into a gauge (last writer wins).
  void set(MetricId Id, uint64_t Value) {
#ifndef PFUZZ_NO_TELEMETRY
    if (Id.valid())
      GaugeCells[Id.Slot].store(Value, std::memory_order_relaxed);
#else
    (void)Id;
    (void)Value;
#endif
  }

  /// Records one histogram sample on this thread's shard.
  void record(MetricId Id, uint64_t Value) {
#ifndef PFUZZ_NO_TELEMETRY
    if (!Id.valid())
      return;
    size_t Bucket = 0;
    for (uint64_t V = Value; V != 0; V >>= 1)
      ++Bucket;
    if (Bucket >= HistogramData::BucketCount)
      Bucket = HistogramData::BucketCount - 1;
    Shard *S = localShard();
    S->Cells[Id.Slot + Bucket].fetch_add(1, std::memory_order_relaxed);
    S->Cells[Id.Slot + HistogramData::BucketCount].fetch_add(
        Value, std::memory_order_relaxed);
    S->Cells[Id.Slot + HistogramData::BucketCount + 1].fetch_add(
        1, std::memory_order_relaxed);
#else
    (void)Id;
    (void)Value;
#endif
  }

  /// Consolidates every metric: sums counter and histogram cells across
  /// all worker shards, reads gauges. Values written by threads joined
  /// before the call are reflected exactly.
  RegistrySnapshot snapshot() const;

  /// The process-global registry every TELEMETRY_SPAN records into.
  /// Leaked on purpose so worker threads may outlive main's statics.
  static TelemetryRegistry &global();

private:
  enum class Kind { Counter, Gauge, Histogram };

  /// One worker's cells. Fixed-size so a shard never reallocates under a
  /// concurrent snapshot; atomics zero-initialize.
  struct Shard {
    std::array<std::atomic<uint64_t>, MaxCells> Cells{};
  };

  MetricId registerMetric(const std::string &Name, Kind K, size_t Cells);
  Shard *localShard();

  /// Never-reused registry identity; keys the thread-local shard cache so
  /// a stale cache entry from a destroyed registry can't alias a new one.
  const uint64_t UniqueId;

  mutable std::mutex RegMutex;
  std::map<std::string, std::pair<Kind, MetricId>> ByName;
  size_t NextCell = 0;
  size_t NextGauge = 0;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::array<std::atomic<uint64_t>, MaxGauges> GaugeCells{};
};

/// RAII phase timer: records elapsed nanoseconds into a histogram on
/// destruction. Use through TELEMETRY_SPAN, which caches the metric
/// registration in a function-local static.
class TelemetrySpan {
public:
  explicit TelemetrySpan(MetricId Id)
      : Id(Id), Start(std::chrono::steady_clock::now()) {}
  TelemetrySpan(const TelemetrySpan &) = delete;
  TelemetrySpan &operator=(const TelemetrySpan &) = delete;
  ~TelemetrySpan() {
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    TelemetryRegistry::global().record(
        Id, Ns < 0 ? 0 : static_cast<uint64_t>(Ns));
  }

private:
  MetricId Id;
  std::chrono::steady_clock::time_point Start;
};

#define PFUZZ_TELEMETRY_CONCAT_IMPL(A, B) A##B
#define PFUZZ_TELEMETRY_CONCAT(A, B) PFUZZ_TELEMETRY_CONCAT_IMPL(A, B)

#ifndef PFUZZ_NO_TELEMETRY
/// Times the enclosing scope into the global histogram "span.NAME"
/// (nanoseconds). NAME must be a string literal. Registration runs once
/// per call site (thread-safe static); each execution costs two
/// steady_clock reads and three relaxed increments.
#define TELEMETRY_SPAN(NAME)                                                   \
  static const ::pfuzz::MetricId PFUZZ_TELEMETRY_CONCAT(TelemetrySpanId,       \
                                                        __LINE__) =            \
      ::pfuzz::TelemetryRegistry::global().histogram("span." NAME);            \
  const ::pfuzz::TelemetrySpan PFUZZ_TELEMETRY_CONCAT(TelemetrySpanObj,        \
                                                      __LINE__)(               \
      PFUZZ_TELEMETRY_CONCAT(TelemetrySpanId, __LINE__))
#else
#define TELEMETRY_SPAN(NAME)                                                   \
  do {                                                                         \
  } while (0)
#endif

/// The per-interval fields a campaign samples for one heartbeat record.
/// Everything the emitter can't derive itself (it owns the execution
/// count, timestamps, and rate).
struct HeartbeatSample {
  /// Shard loop that crossed the heartbeat boundary (0 when unsharded).
  uint32_t Shard = 0;
  /// Covered branch outcomes in the sampling shard's frontier.
  uint64_t Frontier = 0;
  /// Candidate-queue bytes currently held by the sampling shard.
  uint64_t QueueBytes = 0;
  /// Memoized-run LRU hit rate so far (hits / lookups).
  double RunCacheHitRate = 0;
  /// Prefix-resumption engine hit rate so far (hits / probes).
  double ResumeHitRate = 0;
  /// Work-stealing scheduler steal success rate (process-wide).
  double SchedStealRate = 0;
  /// Worst frontier lag this shard has observed, in sync epochs.
  uint64_t ShardLag = 0;
};

/// Streams one NDJSON record every N executions to a file. Shared by all
/// shard loops of a campaign: each loop ticks the common execution
/// counter; the loop whose tick crosses an interval boundary samples its
/// local state and emits. Records carry a stable key set, a wall-clock
/// epoch timestamp, and a monotone execution count (re-read under the
/// emit lock, so concurrent shard emissions never regress).
class HeartbeatEmitter {
public:
  HeartbeatEmitter() = default;
  ~HeartbeatEmitter() { close(); }
  HeartbeatEmitter(const HeartbeatEmitter &) = delete;
  HeartbeatEmitter &operator=(const HeartbeatEmitter &) = delete;

  /// Opens \p Path for writing and arms the emitter to fire every
  /// \p EveryN executions (clamped to >= 1). Returns false (emitter
  /// stays disabled) when the file cannot be opened.
  bool open(const std::string &Path, uint64_t EveryN);

  bool enabled() const { return Armed.load(std::memory_order_acquire); }
  uint64_t interval() const { return EveryN; }

  /// Counts one execution; returns true when this tick crossed an
  /// interval boundary and the caller should sample + emit. Exactly one
  /// caller claims each boundary. One relaxed increment when enabled.
  bool tick() {
    if (!Armed.load(std::memory_order_acquire))
      return false;
    uint64_t N = Execs.fetch_add(1, std::memory_order_relaxed) + 1;
    return N % EveryN == 0;
  }

  /// Writes one heartbeat record. Thread-safe; callers pass the sample
  /// they gathered from their own shard-local state.
  void emit(const HeartbeatSample &S);

  /// Records emitted so far.
  uint64_t beats() const;

  /// Flushes and closes the stream. Returns false if any write failed.
  bool close();

private:
  std::FILE *Out = nullptr;
  /// Published by open() after the stream is ready, cleared by close()
  /// before teardown, so tick() never touches the mutex or the FILE.
  std::atomic<bool> Armed{false};
  uint64_t EveryN = 1;
  std::atomic<uint64_t> Execs{0};

  mutable std::mutex EmitMutex;
  uint64_t Beat = 0;
  uint64_t LastExecs = 0;
  std::chrono::steady_clock::time_point StartTime;
  std::chrono::steady_clock::time_point LastTime;
  bool WriteError = false;
};

} // namespace pfuzz

#endif // PFUZZ_SUPPORT_TELEMETRY_H
