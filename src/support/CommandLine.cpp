//===- support/CommandLine.cpp - Minimal flag parser ----------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstdlib>

using namespace pfuzz;

CommandLine::CommandLine(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (!startsWith(Arg, "--")) {
      Positional.push_back(Arg);
      continue;
    }
    if (Arg == "--") {
      Ok = false;
      return;
    }
    std::string Body = Arg.substr(2);
    size_t Eq = Body.find('=');
    if (Eq == std::string::npos) {
      Values[Body] = "true";
      Queried[Body] = false;
    } else {
      Values[Body.substr(0, Eq)] = Body.substr(Eq + 1);
      Queried[Body.substr(0, Eq)] = false;
    }
  }
}

std::string CommandLine::getString(const std::string &Name,
                                   const std::string &Default) const {
  Queried[Name] = true;
  auto It = Values.find(Name);
  return It == Values.end() ? Default : It->second;
}

int64_t CommandLine::getInt(const std::string &Name, int64_t Default) const {
  Queried[Name] = true;
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  char *End = nullptr;
  errno = 0;
  int64_t Value = std::strtoll(It->second.c_str(), &End, 10);
  // A value past the int64 boundary saturates inside strtoll; returning
  // the saturated LLONG_MAX/LLONG_MIN would make "--execs=1e50 typed as
  // digits" run an effectively unbounded campaign. Treat overflow like
  // any other malformed value and keep the default.
  if (End == It->second.c_str() || *End != '\0' || errno == ERANGE)
    return Default;
  return Value;
}

int64_t CommandLine::getCount(const std::string &Name, int64_t Default,
                              int64_t Min) const {
  Queried[Name] = true;
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  // Silent-wrap protection: where getInt shrugs off garbage, a count
  // flag must reject it — "--jobs=abc" or "--run-cache=-5" running a
  // default-configured campaign hides the typo from the user.
  char *End = nullptr;
  errno = 0;
  int64_t Value = std::strtoll(It->second.c_str(), &End, 10);
  bool Malformed = End == It->second.c_str() || *End != '\0' ||
                   errno == ERANGE || It->second.empty();
  if (Malformed || Value < Min) {
    Errors.push_back("--" + Name + " expects an integer >= " +
                     std::to_string(Min) + ", got '" + It->second + "'");
    return Default;
  }
  return Value;
}

bool CommandLine::getBool(const std::string &Name, bool Default) const {
  Queried[Name] = true;
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  return It->second == "true" || It->second == "1" || It->second.empty();
}

std::vector<std::string> CommandLine::unqueried() const {
  std::vector<std::string> Out;
  for (const auto &[Name, WasQueried] : Queried)
    if (!WasQueried)
      Out.push_back(Name);
  return Out;
}
