//===- support/CommandLine.h - Minimal flag parser ---------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal `--name=value` command-line parser used by the bench and
/// example binaries. Unknown flags are rejected so typos surface instead of
/// silently running a default campaign.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUPPORT_COMMANDLINE_H
#define PFUZZ_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pfuzz {

/// Parsed command line: `--name=value` pairs, bare `--name` flags (value
/// "true"), and positional arguments.
class CommandLine {
public:
  /// Parses \p Argv. On an argument that is neither a flag nor positional
  /// (e.g. a lone "--"), parsing stops and ok() is false.
  CommandLine(int Argc, const char *const *Argv);

  /// False after a malformed argument or a getCount domain violation;
  /// diagnostics are in errors().
  bool ok() const { return Ok && Errors.empty(); }

  /// Returns the string value for \p Name, or \p Default when absent.
  std::string getString(const std::string &Name,
                        const std::string &Default) const;

  /// Returns the integer value for \p Name, or \p Default when absent or
  /// malformed.
  int64_t getInt(const std::string &Name, int64_t Default) const;

  /// Returns the integer value for \p Name, or \p Default when absent —
  /// but unlike getInt, a value that is garbage, has trailing junk, or
  /// lies below \p Min (0 by default: counts of things) is a usage
  /// error: a diagnostic naming the flag is recorded in errors(), ok()
  /// turns false, and \p Default is returned. Flags with a sentinel
  /// (e.g. --speculate's -1 = auto) pass their own floor.
  int64_t getCount(const std::string &Name, int64_t Default,
                   int64_t Min = 0) const;

  /// Diagnostics accumulated by getCount, in query order.
  const std::vector<std::string> &errors() const { return Errors; }

  /// Returns the boolean value for \p Name ("", "1", "true" => true).
  bool getBool(const std::string &Name, bool Default) const;

  bool has(const std::string &Name) const { return Values.count(Name) != 0; }

  const std::vector<std::string> &positional() const { return Positional; }

  /// Returns the flag names that were never queried via get*/has. Benches
  /// call this to reject typos.
  std::vector<std::string> unqueried() const;

private:
  bool Ok = true;
  std::map<std::string, std::string> Values;
  mutable std::map<std::string, bool> Queried;
  mutable std::vector<std::string> Errors;
  std::vector<std::string> Positional;
};

} // namespace pfuzz

#endif // PFUZZ_SUPPORT_COMMANDLINE_H
