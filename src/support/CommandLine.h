//===- support/CommandLine.h - Minimal flag parser ---------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal `--name=value` command-line parser used by the bench and
/// example binaries. Unknown flags are rejected so typos surface instead of
/// silently running a default campaign.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUPPORT_COMMANDLINE_H
#define PFUZZ_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pfuzz {

/// Parsed command line: `--name=value` pairs, bare `--name` flags (value
/// "true"), and positional arguments.
class CommandLine {
public:
  /// Parses \p Argv. On an argument that is neither a flag nor positional
  /// (e.g. a lone "--"), parsing stops and ok() is false.
  CommandLine(int Argc, const char *const *Argv);

  bool ok() const { return Ok; }

  /// Returns the string value for \p Name, or \p Default when absent.
  std::string getString(const std::string &Name,
                        const std::string &Default) const;

  /// Returns the integer value for \p Name, or \p Default when absent or
  /// malformed.
  int64_t getInt(const std::string &Name, int64_t Default) const;

  /// Returns the boolean value for \p Name ("", "1", "true" => true).
  bool getBool(const std::string &Name, bool Default) const;

  bool has(const std::string &Name) const { return Values.count(Name) != 0; }

  const std::vector<std::string> &positional() const { return Positional; }

  /// Returns the flag names that were never queried via get*/has. Benches
  /// call this to reject typos.
  std::vector<std::string> unqueried() const;

private:
  bool Ok = true;
  std::map<std::string, std::string> Values;
  mutable std::map<std::string, bool> Queried;
  std::vector<std::string> Positional;
};

} // namespace pfuzz

#endif // PFUZZ_SUPPORT_COMMANDLINE_H
