//===- support/Ascii.h - Locale-independent character predicates -*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locale-independent ASCII character classification. The subjects must not
/// depend on the host locale (the paper's subjects parse byte streams), so
/// <cctype> is avoided throughout.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUPPORT_ASCII_H
#define PFUZZ_SUPPORT_ASCII_H

namespace pfuzz {

inline bool isAsciiDigit(char C) { return C >= '0' && C <= '9'; }

inline bool isAsciiLower(char C) { return C >= 'a' && C <= 'z'; }

inline bool isAsciiUpper(char C) { return C >= 'A' && C <= 'Z'; }

inline bool isAsciiAlpha(char C) { return isAsciiLower(C) || isAsciiUpper(C); }

inline bool isAsciiAlnum(char C) { return isAsciiAlpha(C) || isAsciiDigit(C); }

inline bool isAsciiSpace(char C) {
  return C == ' ' || C == '\t' || C == '\n' || C == '\r' || C == '\v' ||
         C == '\f';
}

inline bool isAsciiPrintable(char C) { return C >= 0x20 && C <= 0x7E; }

inline bool isIdentStart(char C) { return isAsciiAlpha(C) || C == '_'; }

inline bool isIdentBody(char C) { return isAsciiAlnum(C) || C == '_'; }

inline bool isHexDigit(char C) {
  return isAsciiDigit(C) || (C >= 'a' && C <= 'f') || (C >= 'A' && C <= 'F');
}

/// Returns the numeric value of hex digit \p C, or -1 if not a hex digit.
inline int hexValue(char C) {
  if (isAsciiDigit(C))
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

inline char toAsciiLower(char C) {
  return isAsciiUpper(C) ? static_cast<char>(C - 'A' + 'a') : C;
}

} // namespace pfuzz

#endif // PFUZZ_SUPPORT_ASCII_H
