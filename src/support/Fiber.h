//===- support/Fiber.h - Stackful execution contexts -------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stackful coroutine on a caller-owned stack, built on ucontext. The
/// prefix-resumption engine (runtime/PrefixResumeCache.h) runs subjects on
/// a fiber so the execution state at an end-of-input read can be captured
/// as a FiberCheckpoint: a copy of the live stack region plus the register
/// context at the capture point. A checkpoint is *multi-shot* — restoring
/// writes the saved bytes back onto the same stack addresses and jumps
/// into the saved context, so one checkpoint can seed any number of later
/// continuations while the original run keeps executing to completion.
///
/// This only works because the restored continuation re-enters the exact
/// stack addresses it was captured from: every frame pointer, return
/// address and address-of-local in the saved bytes stays valid. One fiber
/// therefore serves one engine, and everything a restored frame points to
/// outside the stack (the ExecutionContext, the engine itself) must live
/// at a stable address across capture and resume.
///
/// Threading contract: a Fiber belongs to the thread that created it.
/// run/resume/resumeAt switch stacks on the calling thread; nothing here
/// is shared between threads, so fibers need no synchronization — and
/// must never migrate.
///
/// Availability: Linux with ucontext, compiled without PFUZZ_NO_FIBERS
/// and without ThreadSanitizer (TSan does not model user-switched
/// stacks). When unavailable, Fiber::available() is false and callers
/// degrade to full re-execution; the class still compiles so call sites
/// need no #ifdefs beyond checking available().
///
/// Under AddressSanitizer the stack switches carry the sanitizer fiber
/// annotations, and a restore unpoisons the fiber stack (the completed
/// run left redzone poison that does not match the restored frames).
/// ASan's use-after-return fake stack moves locals off the real stack,
/// which would make stack-byte checkpoints incomplete — available()
/// reports false while a fake stack is active (default ASan options
/// leave it off).
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUPPORT_FIBER_H
#define PFUZZ_SUPPORT_FIBER_H

#include <cstddef>
#include <memory>
#include <vector>

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PFUZZ_TSAN 1
#endif
#if __has_feature(address_sanitizer)
#define PFUZZ_ASAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define PFUZZ_TSAN 1
#endif
#if defined(__SANITIZE_ADDRESS__)
#define PFUZZ_ASAN 1
#endif

#if !defined(PFUZZ_NO_FIBERS) && defined(__linux__) && !defined(PFUZZ_TSAN)
#define PFUZZ_FIBERS_AVAILABLE 1
#include <ucontext.h>
#else
#define PFUZZ_FIBERS_AVAILABLE 0
#endif

namespace pfuzz {

/// A point-in-time copy of a fiber's live stack region and the register
/// context to re-enter it. Checkpoints are pinned: the register context
/// holds interior pointers (glibc's uc_mcontext.fpregs points into the
/// struct itself), so a checkpoint must stay at one address from capture
/// to the last resume. Owners heap-allocate or node-store them.
struct FiberCheckpoint {
  FiberCheckpoint() = default;
  FiberCheckpoint(const FiberCheckpoint &) = delete;
  FiberCheckpoint &operator=(const FiberCheckpoint &) = delete;

  /// Saved bytes of [stack base + Offset, stack top).
  std::vector<char> Stack;
  /// Start of the saved region, as an offset from the fiber's stack base.
  size_t Offset = 0;
#if PFUZZ_FIBERS_AVAILABLE
  /// Register context at the capture point inside Fiber::checkpoint.
  ucontext_t At;
#endif
  bool Captured = false;

  /// Releases the saved bytes (an evicted cache entry recycles through
  /// here before re-capture reuses the buffer's capacity).
  void reset() {
    Stack.clear();
    Offset = 0;
    Captured = false;
  }
};

/// One stackful coroutine. See the file comment for the contract.
class Fiber {
public:
  /// Default stack size: generous for the recursive-descent subjects
  /// (bounded-depth parsers), small enough to checkpoint cheaply — only
  /// the live region is ever copied.
  static constexpr size_t DefaultStackSize = 512 * 1024;

  explicit Fiber(size_t StackSize = DefaultStackSize);
  ~Fiber();
  Fiber(const Fiber &) = delete;
  Fiber &operator=(const Fiber &) = delete;

  /// True when this build and process can switch and checkpoint stacks.
  static bool available();

  /// Runs \p Fn(\p Arg) on the fiber stack; returns when Fn returns or
  /// calls yield(). The stack is reused by every run — no per-run
  /// allocation.
  void run(void (*Fn)(void *), void *Arg);

  /// Continues a yielded fiber; returns at the next yield or completion.
  void resume();

  /// On-fiber: suspends, returning control to the caller of run/resume.
  static void yield();

  /// True once the current run's entry function has returned.
  bool finished() const { return Finished; }

  /// On-fiber: captures the live stack region and register context into
  /// \p Out. Returns false on capture (the run continues normally) and
  /// true each time a later resumeAt(\p Out) re-enters here with the
  /// stack restored.
  static bool checkpoint(FiberCheckpoint &Out);

  /// Off-fiber: restores \p Cp's bytes onto this fiber's stack and jumps
  /// into the saved context; returns when the fiber finishes or yields.
  /// \p Cp must have been captured on this fiber, and everything its
  /// frames point to off-stack must still be alive. The checkpoint is
  /// not consumed.
  void resumeAt(const FiberCheckpoint &Cp);

  size_t stackSize() const { return Size; }

private:
#if PFUZZ_FIBERS_AVAILABLE
  static void trampoline();
  void captureStack(FiberCheckpoint &Out, char *FrameHint);
  /// Annotated stack switches (no-ops without ASan).
  void switchIntoFiber(ucontext_t *SaveTo, const ucontext_t *Target);
  void switchOutOfFiber(ucontext_t *SaveTo);
  void finishArrivalOnFiber();

  ucontext_t MainUc;
  ucontext_t FiberUc;
  /// ASan fake-stack handles and the main thread's stack bounds, carried
  /// across switches per the sanitizer fiber protocol.
  void *MainFakeStack = nullptr;
  void *FiberFakeStack = nullptr;
  const void *MainStackBottom = nullptr;
  size_t MainStackSize = 0;
#endif
  std::unique_ptr<char[]> StackMem;
  char *StackBase = nullptr;
  size_t Size = 0;
  void (*Entry)(void *) = nullptr;
  void *Arg = nullptr;
  bool Finished = true;
};

} // namespace pfuzz

#endif // PFUZZ_SUPPORT_FIBER_H
