//===- support/Fiber.cpp - Stackful execution contexts --------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Fiber.h"

#include <cassert>
#include <cstring>

#if defined(PFUZZ_ASAN)
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

using namespace pfuzz;

#if PFUZZ_FIBERS_AVAILABLE

namespace {
/// The fiber whose stack the calling thread is currently executing on,
/// or null when on the thread's own stack. Set around every switch; lets
/// the static on-fiber entry points (yield, checkpoint, trampoline) find
/// their Fiber without threading a pointer through makecontext's int
/// argument splitting.
thread_local Fiber *ActiveFiber = nullptr;
} // namespace

Fiber::Fiber(size_t StackSize)
    : StackMem(new char[StackSize]), StackBase(StackMem.get()),
      Size(StackSize) {}

Fiber::~Fiber() = default;

bool Fiber::available() {
#if defined(PFUZZ_ASAN)
  // With detect_stack_use_after_return the locals of instrumented frames
  // live on a heap-side fake stack that a stack-byte checkpoint cannot
  // capture; refuse rather than restore half a frame.
  if (__asan_get_current_fake_stack() != nullptr)
    return false;
#endif
  return true;
}

void Fiber::trampoline() {
  Fiber *F = ActiveFiber;
  F->finishArrivalOnFiber();
  F->Entry(F->Arg);
  F->Finished = true;
  F->switchOutOfFiber(&F->FiberUc);
  assert(false && "finished fiber resumed");
}

void Fiber::run(void (*Fn)(void *), void *A) {
  assert(ActiveFiber == nullptr && "nested fiber runs are not supported");
  Entry = Fn;
  Arg = A;
  Finished = false;
  getcontext(&FiberUc);
  FiberUc.uc_stack.ss_sp = StackBase;
  FiberUc.uc_stack.ss_size = Size;
  FiberUc.uc_link = &MainUc;
  makecontext(&FiberUc, &Fiber::trampoline, 0);
  switchIntoFiber(&MainUc, &FiberUc);
}

void Fiber::resume() {
  assert(!Finished && "resume of a finished fiber");
  assert(ActiveFiber == nullptr && "resume from on-fiber code");
  switchIntoFiber(&MainUc, &FiberUc);
}

void Fiber::yield() {
  Fiber *F = ActiveFiber;
  assert(F && "yield outside a fiber");
  F->switchOutOfFiber(&F->FiberUc);
  // Resumed: back on the fiber.
  F->finishArrivalOnFiber();
}

bool Fiber::checkpoint(FiberCheckpoint &Out) {
  Fiber *F = ActiveFiber;
  assert(F && "checkpoint outside a fiber");
  // Resumed lives in this frame, inside the captured region: the saved
  // copy carries `true`, so re-entering the saved context lands in the
  // branch below. Volatile — the flag changes across a context jump the
  // compiler cannot see.
  volatile bool Resumed = false;
  char FrameLocal;
  getcontext(&Out.At);
  if (Resumed) {
    // A resumeAt() jumped here with the stack restored.
    F->finishArrivalOnFiber();
    return true;
  }
  Resumed = true;
  F->captureStack(Out, &FrameLocal);
  Out.Captured = true;
  return false;
}

/// The stack pointer saved in \p At: everything at or above it is live.
/// Falls back to a margin below a frame local of the capturing function
/// on targets where the mcontext layout is not known here.
static char *savedStackPointer(const ucontext_t &At, char *FrameHint) {
#if defined(__x86_64__)
  return reinterpret_cast<char *>(At.uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  return reinterpret_cast<char *>(At.uc_mcontext.sp);
#else
  return FrameHint - 1024;
#endif
}

void Fiber::captureStack(FiberCheckpoint &Out, char *FrameHint) {
  char *Sp = savedStackPointer(Out.At, FrameHint);
  if (Sp < StackBase)
    Sp = StackBase;
  char *Top = StackBase + Size;
  assert(Sp <= Top && "capture point outside the fiber stack");
  Out.Offset = static_cast<size_t>(Sp - StackBase);
  Out.Stack.assign(Sp, Top);
}

void Fiber::resumeAt(const FiberCheckpoint &Cp) {
  assert(Cp.Captured && "resumeAt of an empty checkpoint");
  assert(ActiveFiber == nullptr && "resumeAt from on-fiber code");
  assert(Cp.Offset + Cp.Stack.size() == Size && "checkpoint from another fiber");
  std::memcpy(StackBase + Cp.Offset, Cp.Stack.data(), Cp.Stack.size());
#if defined(PFUZZ_ASAN)
  // The previous run's frames poisoned redzones that do not line up with
  // the restored frames; clear the whole stack's shadow. Costs some
  // overflow precision inside resumed frames, never correctness.
  __asan_unpoison_memory_region(StackBase, Size);
#endif
  Finished = false;
  // setcontext reads the target without modifying it, so the pinned
  // checkpoint context is passed directly (a copy would break glibc's
  // interior fpregs pointer). Nothing may touch Cp after the switch: the
  // resumed run is free to evict the very checkpoint that seeded it.
  switchIntoFiber(&MainUc, &Cp.At);
}

void Fiber::switchIntoFiber(ucontext_t *SaveTo, const ucontext_t *Target) {
  ActiveFiber = this;
#if defined(PFUZZ_ASAN)
  __sanitizer_start_switch_fiber(&MainFakeStack, StackBase, Size);
#endif
  swapcontext(SaveTo, Target);
  // Back on the main stack: the fiber finished or yielded.
  ActiveFiber = nullptr;
#if defined(PFUZZ_ASAN)
  __sanitizer_finish_switch_fiber(MainFakeStack, nullptr, nullptr);
#endif
}

void Fiber::switchOutOfFiber(ucontext_t *SaveTo) {
#if defined(PFUZZ_ASAN)
  __sanitizer_start_switch_fiber(Finished ? nullptr : &FiberFakeStack,
                                 MainStackBottom, MainStackSize);
#endif
  swapcontext(SaveTo, &MainUc);
}

void Fiber::finishArrivalOnFiber() {
#if defined(PFUZZ_ASAN)
  __sanitizer_finish_switch_fiber(FiberFakeStack, &MainStackBottom,
                                  &MainStackSize);
  FiberFakeStack = nullptr;
#endif
}

#else // !PFUZZ_FIBERS_AVAILABLE

// Fallback stubs: the class compiles, available() reports false, and the
// switching entry points must not be reached (callers gate on
// available()). Keeps every call site free of #ifdefs.

Fiber::Fiber(size_t StackSize) : Size(StackSize) {}
Fiber::~Fiber() = default;

bool Fiber::available() { return false; }

void Fiber::run(void (*)(void *), void *) {
  assert(false && "Fiber::run without fiber support");
}

void Fiber::resume() { assert(false && "Fiber::resume without fiber support"); }

void Fiber::yield() { assert(false && "Fiber::yield without fiber support"); }

bool Fiber::checkpoint(FiberCheckpoint &) {
  assert(false && "Fiber::checkpoint without fiber support");
  return false;
}

void Fiber::resumeAt(const FiberCheckpoint &) {
  assert(false && "Fiber::resumeAt without fiber support");
}

#endif // PFUZZ_FIBERS_AVAILABLE
