//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the fuzzers, evaluation harness and tools:
/// escaping fuzzer-generated inputs for printing, joining, and numeric
/// formatting.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUPPORT_STRINGUTILS_H
#define PFUZZ_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace pfuzz {

/// Renders \p Input with non-printable bytes as C-style escapes so that
/// fuzzer-generated inputs can be logged on a single line.
std::string escapeString(std::string_view Input);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Formats \p Value with \p Decimals digits after the point.
std::string formatDouble(double Value, int Decimals);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Splits \p Text on \p Sep (single character), keeping empty fields.
std::vector<std::string> splitString(std::string_view Text, char Sep);

} // namespace pfuzz

#endif // PFUZZ_SUPPORT_STRINGUTILS_H
