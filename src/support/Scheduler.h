//===- support/Scheduler.h - Work-stealing task scheduler --------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide work-stealing scheduler: one core pool shared by the
/// campaign Jobs layer, the speculative prefetcher, and the locality
/// batcher's pre-executions. Each worker owns a Chase-Lev deque (lock-free
/// push/pop on the owner path, FIFO steal from the top); external threads
/// submit through per-class injector queues; idle workers steal from
/// victims in randomized order. Priority classes (Jobs > Locality >
/// Speculation) decide which *unclaimed* work a free worker picks first,
/// so cores flow dynamically to whichever campaign has runnable work —
/// the static arbitrateSpeculation core split becomes a soft hint.
///
/// Cancellation vs. stealing: the single arbitration point of a task's
/// fate is a compare-and-swap on its Phase word. A worker (owner or
/// thief) claims by CAS Pending -> Running; TaskHandle::cancel() retracts
/// by CAS Pending -> Cancelled; exactly one of the two ever succeeds, no
/// matter which deque the node sits in or how many times it was stolen.
/// A stolen-then-cancelled node's queue slot drains in O(1): the claim
/// CAS fails and the worker drops the shell without running anything.
/// Unlike the legacy ThreadPool — whose retraction visibility leaned on
/// the single queue mutex — this protocol carries its own release/acquire
/// edges on the Phase word, so it is steal-safe by construction (the TSan
/// job exercises it via SchedulerTest's cancel-under-stealing stress).
///
/// Determinism: the scheduler never decides *what* work means, only
/// *where* it runs. Callers that need byte-identical results keep every
/// decision on their sequential thread and consume results in
/// submission/pop order (see core/PFuzzer.cpp and eval/Campaign.cpp);
/// worker count and steal order then affect wall-clock only.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUPPORT_SCHEDULER_H
#define PFUZZ_SUPPORT_SCHEDULER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace pfuzz {

class Scheduler;

/// Priority classes of scheduler work, scanned by free workers in this
/// order. Jobs are whole seed campaigns (long, mandatory); Locality is
/// the batcher's DFS-ordered pre-execution (short, soon consumed);
/// Speculation is opportunistic prefetch (cheapest to waste).
enum class TaskClass : unsigned { Jobs = 0, Locality = 1, Speculation = 2 };

inline constexpr unsigned NumTaskClasses = 3;

/// Counters of one scheduler, exported via --sched-stats and BenchJson.
/// All counters are cumulative since construction; callers measuring one
/// region snapshot before/after and subtract (see minus()).
struct SchedulerStats {
  /// Tasks submitted, per class.
  uint64_t Submitted[NumTaskClasses] = {0, 0, 0};
  /// Tasks executed on a worker thread, per class (includes stolen ones).
  uint64_t Executed[NumTaskClasses] = {0, 0, 0};
  /// Tasks claimed and executed inline by a consumer thread
  /// (TaskHandle::runInline) instead of waiting for a worker.
  uint64_t RanInline = 0;
  /// Executed tasks that were claimed from another worker's deque.
  uint64_t Stolen = 0;
  /// Tasks retracted by cancel() before any worker claimed them.
  uint64_t Cancelled = 0;
  /// Victim deques probed by idle workers.
  uint64_t StealAttempts = 0;
  /// Probes that yielded a task.
  uint64_t StealHits = 0;
  /// Unclaimed tasks per class at the time stats() was taken (a snapshot,
  /// not a cumulative counter).
  uint64_t QueueDepth[NumTaskClasses] = {0, 0, 0};
  /// Total worker time spent parked waiting for work.
  double IdleSeconds = 0;

  uint64_t submitted() const {
    return Submitted[0] + Submitted[1] + Submitted[2];
  }
  uint64_t executed() const { return Executed[0] + Executed[1] + Executed[2]; }
  double stealSuccessRate() const {
    return StealAttempts == 0 ? 0
                              : static_cast<double>(StealHits) /
                                    static_cast<double>(StealAttempts);
  }

  /// Sums \p Other's counters into this (QueueDepth, a point-in-time
  /// reading, takes the max). Campaign runners fold per-seed scheduler
  /// deltas into one per-cell total; concurrent seeds share one pool, so
  /// the same underlying task can land in several overlapping deltas —
  /// the total is an attribution upper bound, observational only.
  void accumulate(const SchedulerStats &Other) {
    for (unsigned C = 0; C != NumTaskClasses; ++C) {
      Submitted[C] += Other.Submitted[C];
      Executed[C] += Other.Executed[C];
      QueueDepth[C] = QueueDepth[C] > Other.QueueDepth[C]
                          ? QueueDepth[C]
                          : Other.QueueDepth[C];
    }
    RanInline += Other.RanInline;
    Stolen += Other.Stolen;
    Cancelled += Other.Cancelled;
    StealAttempts += Other.StealAttempts;
    StealHits += Other.StealHits;
    IdleSeconds += Other.IdleSeconds;
  }

  /// Counter delta of this snapshot against an earlier one. QueueDepth is
  /// a point-in-time value and keeps this snapshot's reading.
  SchedulerStats minus(const SchedulerStats &Before) const {
    SchedulerStats D = *this;
    for (unsigned C = 0; C != NumTaskClasses; ++C) {
      D.Submitted[C] -= Before.Submitted[C];
      D.Executed[C] -= Before.Executed[C];
    }
    D.RanInline -= Before.RanInline;
    D.Stolen -= Before.Stolen;
    D.Cancelled -= Before.Cancelled;
    D.StealAttempts -= Before.StealAttempts;
    D.StealHits -= Before.StealHits;
    D.IdleSeconds -= Before.IdleSeconds;
    return D;
  }
};

namespace sched_detail {

struct TaskNode;

/// Chase-Lev work-stealing deque of T pointers. The owner thread pushes
/// and pops at the bottom (LIFO, lock-free, no CAS on the common path);
/// any other thread steals from the top (FIFO, one CAS per steal). The
/// ring buffer grows geometrically; retired rings are kept alive until
/// destruction because a slow thief may still be reading a stale buffer
/// pointer (the value it reads is identical at the same logical index,
/// and its Top CAS arbitrates ownership either way).
///
/// Memory ordering: Top and Bottom use seq_cst throughout instead of the
/// fence-based formulation of Le et al. — the owner/thief race on the
/// last element needs the store-load ordering a seq_cst fence would
/// provide, TSan does not model standalone fences, and at this queue's
/// submission rates (thousands of tasks per second, each worth a subject
/// execution) the cost of seq_cst stores is noise. Element *contents*
/// never rely on deque ordering at all: everything cross-thread in a
/// TaskNode is published through its Phase CAS (see Scheduler.cpp).
template <typename T> class WorkStealingDeque {
public:
  explicit WorkStealingDeque(int64_t InitialCapacity = 64) {
    Rings.push_back(std::make_unique<Ring>(InitialCapacity));
    Buf.store(Rings.back().get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

  /// Owner only: pushes \p Item at the bottom.
  void push(T *Item) {
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    Ring *A = Buf.load(std::memory_order_relaxed);
    if (B - Tp >= A->Cap)
      A = grow(A, Tp, B);
    A->put(B, Item);
    Bottom.store(B + 1, std::memory_order_seq_cst);
  }

  /// Owner only: pops the most recently pushed item (LIFO), or null when
  /// empty / the last element was stolen concurrently.
  T *pop() {
    int64_t B = Bottom.load(std::memory_order_seq_cst) - 1;
    Ring *A = Buf.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    if (Tp > B) {
      // Already empty; restore Bottom.
      Bottom.store(B + 1, std::memory_order_seq_cst);
      return nullptr;
    }
    T *Item = A->get(B);
    if (Tp == B) {
      // One element left: race the thieves for it.
      if (!Top.compare_exchange_strong(Tp, Tp + 1,
                                       std::memory_order_seq_cst))
        Item = nullptr; // a thief won
      Bottom.store(B + 1, std::memory_order_seq_cst);
    }
    return Item;
  }

  /// Any thread: steals the oldest item (FIFO), or null when empty or the
  /// race for it was lost.
  T *steal() {
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (Tp >= B)
      return nullptr;
    Ring *A = Buf.load(std::memory_order_acquire);
    T *Item = A->get(Tp);
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst))
      return nullptr; // another thief or the owner took it
    return Item;
  }

  /// Approximate size; only meaningful to the owner or for diagnostics.
  int64_t sizeRelaxed() const {
    return Bottom.load(std::memory_order_relaxed) -
           Top.load(std::memory_order_relaxed);
  }

private:
  struct Ring {
    explicit Ring(int64_t N)
        : Cap(N), Mask(N - 1), Cells(new std::atomic<T *>[size_t(N)]) {}
    const int64_t Cap;
    const int64_t Mask;
    std::unique_ptr<std::atomic<T *>[]> Cells;

    T *get(int64_t I) const {
      return Cells[size_t(I & Mask)].load(std::memory_order_relaxed);
    }
    void put(int64_t I, T *V) {
      Cells[size_t(I & Mask)].store(V, std::memory_order_relaxed);
    }
  };

  /// Owner only: doubles the ring, copying the live range [Tp, B).
  Ring *grow(Ring *Old, int64_t Tp, int64_t B) {
    Rings.push_back(std::make_unique<Ring>(Old->Cap * 2));
    Ring *New = Rings.back().get();
    for (int64_t I = Tp; I != B; ++I)
      New->put(I, Old->get(I));
    Buf.store(New, std::memory_order_release);
    return New;
  }

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::atomic<Ring *> Buf{nullptr};
  /// Current ring last; retired rings stay allocated for slow thieves.
  std::vector<std::unique_ptr<Ring>> Rings;
};

} // namespace sched_detail

/// Refcounted handle to a task submitted via Scheduler::submit. Mirrors
/// the legacy CancellableTask semantics (best-effort retraction of work
/// that has not started; a cancelled task's queue slot drains as a no-op)
/// and adds runInline() so a consumer that needs a still-pending result
/// can claim and execute it itself instead of waiting — the pattern that
/// keeps a shared pool deadlock-free when consumers run *on* the pool.
class TaskHandle {
public:
  TaskHandle() = default;
  ~TaskHandle();
  TaskHandle(const TaskHandle &Other);
  TaskHandle &operator=(const TaskHandle &Other);
  TaskHandle(TaskHandle &&Other) noexcept;
  TaskHandle &operator=(TaskHandle &&Other) noexcept;

  /// True when this handle refers to a submitted task.
  bool valid() const { return Node != nullptr; }

  /// Attempts to cancel. Returns true when the task had not started and
  /// will never run (its queue slot still drains, as a no-op). Returns
  /// false when the task is already running, finished, or claimed inline.
  bool cancel();

  /// Attempts to claim a still-pending task and execute it on the calling
  /// thread. Returns true when this call ran it (ran() is then true);
  /// false when a worker already claimed it, it finished, or it was
  /// cancelled. Never blocks.
  bool runInline();

  /// Blocks until the task reached a terminal state: finished running, or
  /// cancelled (in which case this returns without the shell having to
  /// drain from its queue). Must not be called on a still-pending task
  /// from a scheduler worker — claim it with runInline() or cancel()
  /// first; waiting for an unclaimed task while occupying a worker can
  /// deadlock the pool.
  void wait() const;

  /// wait(), then rethrows the exception the task exited with, if any.
  void get() const;

  /// Non-blocking: true when the task ran to completion without throwing
  /// (as opposed to still pending/running, cancelled, or failed).
  bool ran() const;

private:
  friend class Scheduler;
  explicit TaskHandle(sched_detail::TaskNode *Node) : Node(Node) {}

  sched_detail::TaskNode *Node = nullptr;
};

/// The work-stealing pool. One process-global instance (global()) backs
/// production runs; benches and tests construct private instances to pin
/// worker counts independently of the hardware.
class Scheduler {
public:
  /// Creates \p Workers worker threads; 0 means hardwareThreads().
  /// Worker counts above the hardware are allowed (benches sweep 1/2/4/8
  /// workers regardless of the machine).
  explicit Scheduler(unsigned Workers = 0);

  /// Drains every unclaimed task (cancelled shells just drain), then
  /// joins the workers. Tasks submitted before destruction are
  /// guaranteed to run or to have been cancelled.
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Number of worker threads.
  size_t size() const;

  /// Submits \p Fn under \p Class. Submissions from a worker thread of
  /// this scheduler go to that worker's own deque (lock-free, LIFO-hot);
  /// submissions from any other thread go to the class's injector queue.
  TaskHandle submit(TaskClass Class, std::function<void()> Fn);

  /// Runs Fn(I) for every I in [Begin, End) on the pool and blocks until
  /// all calls finished. At most min(size(), MaxConcurrency) iterations
  /// run concurrently (\p MaxConcurrency 0 = no cap beyond the pool).
  /// The first exception thrown by any call is rethrown in the caller, in
  /// index order; the remaining iterations still run. Call from a
  /// non-worker thread only (the caller blocks without lending a hand).
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t)> &Fn,
                   size_t MaxConcurrency = 0,
                   TaskClass Class = TaskClass::Jobs);

  /// Snapshot of the cumulative counters (plus current queue depths).
  SchedulerStats stats() const;

  /// The process-wide scheduler, created on first use with one worker
  /// per hardware thread. Everything that shares the machine — campaign
  /// runners, speculation, locality pre-execution — defaults to this
  /// instance so the layers share one set of workers instead of
  /// multiplying threads.
  static Scheduler &global();

  /// global().stats() when the global scheduler was ever started, else
  /// all zeroes — lets benches report scheduler counters without spinning
  /// up workers they never used.
  static SchedulerStats globalStats();

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0).
  static unsigned hardwareThreads();

private:
  friend class TaskHandle;

  /// Phase CAS Pending -> Cancelled; on success updates depth counters
  /// and wakes waiters. The one half of the cancel-vs-steal arbitration.
  bool cancelTask(sched_detail::TaskNode &N);

  /// Phase CAS Pending -> Running on the *calling* thread; on success
  /// runs the body inline. The other consumer-side claim path.
  bool inlineTask(sched_detail::TaskNode &N);

  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace pfuzz

#endif // PFUZZ_SUPPORT_SCHEDULER_H
