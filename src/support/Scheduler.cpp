//===- support/Scheduler.cpp - Work-stealing task scheduler ---------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Scheduler.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

using namespace pfuzz;

namespace pfuzz {
namespace sched_detail {

/// One scheduled task. Lifetime is refcounted: one reference held by the
/// queue slot (released when the shell drains), one by the caller's
/// TaskHandle (and its copies). Every cross-thread byte of this struct is
/// published through the Phase word: the claimer's successful CAS
/// acquires what the submitter released, and the Done store releases Fn's
/// results (whatever the body wrote) to whoever observes Done.
struct TaskNode {
  enum : int { Pending = 0, Running = 1, Done = 2, Cancelled = 3 };

  TaskNode(std::function<void()> Fn, TaskClass Class, Scheduler *Sched)
      : Fn(std::move(Fn)), Class(Class), Sched(Sched) {}

  std::function<void()> Fn;
  const TaskClass Class;
  Scheduler *const Sched;
  std::atomic<int> Phase{Pending};
  /// Written by the executing thread before the Done release store; read
  /// by waiters after an acquire load observed Done.
  std::exception_ptr Error;
  std::atomic<int> Refs{2};
  /// Terminal-state waiting. The Phase word stays the lock-free
  /// arbitration point; the mutex/condvar only park waiters (short
  /// speculative tasks are awaited rarely, Jobs slots for seconds — a
  /// spin wait would burn a core either way).
  std::mutex WaitMutex;
  std::condition_variable WaitCv;

  void retain() { Refs.fetch_add(1, std::memory_order_relaxed); }
  void release() {
    if (Refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
      delete this;
  }

  bool terminal() const {
    int P = Phase.load(std::memory_order_acquire);
    return P == Done || P == Cancelled;
  }

  /// Publishes a terminal phase and wakes waiters. The empty critical
  /// section serializes against a waiter that checked the phase under the
  /// mutex but has not entered the condvar wait yet.
  void publishTerminal(int P) {
    Phase.store(P, std::memory_order_release);
    { std::lock_guard<std::mutex> G(WaitMutex); }
    WaitCv.notify_all();
  }
};

/// Per-worker state. Lives in Impl::Workers; a thread-local pointer marks
/// the current thread as a worker so submissions land in its own deque.
struct WorkerState {
  WorkStealingDeque<TaskNode> Deque;
  std::thread Thread;
  /// xorshift state for randomized victim selection.
  uint64_t StealSeed = 0;
  std::atomic<uint64_t> IdleNanos{0};
};

} // namespace sched_detail
} // namespace pfuzz

using sched_detail::TaskNode;
using sched_detail::WorkerState;

namespace {

thread_local WorkerState *CurWorker = nullptr;
thread_local Scheduler *CurOwner = nullptr;

uint64_t xorshift(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return State;
}

} // namespace

struct Scheduler::Impl {
  explicit Impl(Scheduler &Self) : Self(Self) {}

  Scheduler &Self;
  std::vector<std::unique_ptr<WorkerState>> Workers;

  /// Per-class injector queue for submissions from non-worker threads.
  /// A mutex-guarded FIFO is fine here: the lock-free requirement is on
  /// the owner path (worker self-submissions, which bypass this).
  struct InjectorQueue {
    std::mutex M;
    std::deque<TaskNode *> Q;
    /// Approximate size, checked before taking the mutex so empty-queue
    /// scans stay uncontended.
    std::atomic<size_t> Size{0};
  };
  InjectorQueue Injector[NumTaskClasses];

  /// Unclaimed tasks per class (submitted minus claimed/cancelled).
  std::atomic<int64_t> ClassDepth[NumTaskClasses] = {};
  /// Sum over classes; the sleep predicate. seq_cst on this counter and
  /// on Sleepers pairs submitter and sleeper so a wakeup is never missed.
  std::atomic<int64_t> PendingHint{0};

  std::mutex SleepMutex;
  std::condition_variable WorkAvailable;
  std::atomic<unsigned> Sleepers{0};
  std::atomic<bool> Stopping{false};

  // Cumulative counters (relaxed: totals, not synchronization).
  std::atomic<uint64_t> CtrSubmitted[NumTaskClasses] = {};
  std::atomic<uint64_t> CtrExecuted[NumTaskClasses] = {};
  std::atomic<uint64_t> CtrRanInline{0};
  std::atomic<uint64_t> CtrStolen{0};
  std::atomic<uint64_t> CtrCancelled{0};
  std::atomic<uint64_t> CtrStealAttempts{0};
  std::atomic<uint64_t> CtrStealHits{0};

  /// A task left Pending state under this thread's control: balance the
  /// depth counters. Exactly one of claim/cancel ever gets here per task.
  void noteClaimed(const TaskNode &N) {
    ClassDepth[unsigned(N.Class)].fetch_sub(1, std::memory_order_relaxed);
    PendingHint.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Executes a claimed task's body, records its exception, publishes
  /// Done. Runs on whichever thread won the claim CAS.
  void runBody(TaskNode &N) {
    try {
      N.Fn();
    } catch (...) {
      N.Error = std::current_exception();
    }
    N.Fn = nullptr; // drop captured state before waiters resume
    N.publishTerminal(TaskNode::Done);
  }

  /// Worker-side execution: claim (losing means a cancel won — the shell
  /// drains here, in O(1)), run, account.
  void runOnWorker(TaskNode *N, bool Stolen) {
    int Expected = TaskNode::Pending;
    if (!N->Phase.compare_exchange_strong(Expected, TaskNode::Running,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      N->release();
      return;
    }
    noteClaimed(*N);
    if (Stolen)
      CtrStolen.fetch_add(1, std::memory_order_relaxed);
    // Count at claim time, before Done is published: a thread that
    // waited for this task and then snapshots stats() must already see
    // it accounted (executed + inline + cancelled == submitted holds
    // whenever all submitted tasks are terminal).
    CtrExecuted[unsigned(N->Class)].fetch_add(1, std::memory_order_relaxed);
    runBody(*N);
    N->release();
  }

  TaskNode *popInjector(TaskClass C) {
    InjectorQueue &Q = Injector[unsigned(C)];
    if (Q.Size.load(std::memory_order_acquire) == 0)
      return nullptr;
    std::lock_guard<std::mutex> G(Q.M);
    if (Q.Q.empty())
      return nullptr;
    TaskNode *N = Q.Q.front();
    Q.Q.pop_front();
    Q.Size.store(Q.Q.size(), std::memory_order_release);
    return N;
  }

  /// One scheduling decision: injector Jobs first (campaigns must never
  /// starve behind speculation), then the worker's own deque (hot,
  /// lock-free), then the remaining injector classes by priority, then a
  /// randomized pass over the other workers' deques.
  TaskNode *findTask(WorkerState &W, bool &Stolen) {
    Stolen = false;
    if (TaskNode *N = popInjector(TaskClass::Jobs))
      return N;
    if (TaskNode *N = W.Deque.pop())
      return N;
    if (TaskNode *N = popInjector(TaskClass::Locality))
      return N;
    if (TaskNode *N = popInjector(TaskClass::Speculation))
      return N;
    size_t NumW = Workers.size();
    if (NumW > 1) {
      size_t Start = size_t(xorshift(W.StealSeed) % NumW);
      for (size_t I = 0; I != NumW; ++I) {
        WorkerState *Victim = Workers[(Start + I) % NumW].get();
        if (Victim == &W)
          continue;
        CtrStealAttempts.fetch_add(1, std::memory_order_relaxed);
        if (TaskNode *N = Victim->Deque.steal()) {
          CtrStealHits.fetch_add(1, std::memory_order_relaxed);
          Stolen = true;
          return N;
        }
      }
    }
    return nullptr;
  }

  void signalWork() {
    if (Sleepers.load(std::memory_order_seq_cst) == 0)
      return;
    // The empty critical section pairs with the sleeper's predicate
    // check under SleepMutex, so the notify cannot slip between a false
    // predicate and the wait.
    { std::lock_guard<std::mutex> G(SleepMutex); }
    WorkAvailable.notify_one();
  }

  void workerLoop(WorkerState &W) {
    CurWorker = &W;
    CurOwner = &Self;
    for (;;) {
      bool Stolen = false;
      if (TaskNode *N = findTask(W, Stolen)) {
        runOnWorker(N, Stolen);
        continue;
      }
      std::unique_lock<std::mutex> L(SleepMutex);
      Sleepers.fetch_add(1, std::memory_order_seq_cst);
      auto T0 = std::chrono::steady_clock::now();
      WorkAvailable.wait(L, [this] {
        return Stopping.load(std::memory_order_relaxed) ||
               PendingHint.load(std::memory_order_seq_cst) > 0;
      });
      W.IdleNanos.fetch_add(
          uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count()),
          std::memory_order_relaxed);
      Sleepers.fetch_sub(1, std::memory_order_seq_cst);
      // Exit only when stopping *and* nothing is left unclaimed; a task
      // still pending anywhere keeps every worker alive, so submitted
      // work is guaranteed to drain before destruction completes.
      bool Exit = Stopping.load(std::memory_order_relaxed) &&
                  PendingHint.load(std::memory_order_seq_cst) <= 0;
      L.unlock();
      if (Exit)
        return;
    }
  }
};

unsigned Scheduler::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

Scheduler::Scheduler(unsigned Workers) : I(std::make_unique<Impl>(*this)) {
  if (Workers == 0)
    Workers = hardwareThreads();
  I->Workers.reserve(Workers);
  for (unsigned W = 0; W != Workers; ++W) {
    auto State = std::make_unique<WorkerState>();
    // Distinct nonzero xorshift seeds; the constant is splitmix64's.
    State->StealSeed = 0x9E3779B97F4A7C15ULL * (W + 1);
    I->Workers.push_back(std::move(State));
  }
  for (auto &W : I->Workers)
    W->Thread = std::thread([this, Raw = W.get()] { I->workerLoop(*Raw); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> G(I->SleepMutex);
    I->Stopping.store(true, std::memory_order_seq_cst);
  }
  I->WorkAvailable.notify_all();
  for (auto &W : I->Workers)
    W->Thread.join();
  // Workers only exit once nothing is unclaimed, so what remains in the
  // queues are drained-less shells: cancelled or inline-claimed tasks.
  // Release their queue references.
  for (auto &W : I->Workers)
    while (TaskNode *N = W->Deque.pop())
      N->release();
  for (auto &Q : I->Injector)
    for (TaskNode *N : Q.Q)
      N->release();
}

size_t Scheduler::size() const { return I->Workers.size(); }

TaskHandle Scheduler::submit(TaskClass Class, std::function<void()> Fn) {
  auto *N = new TaskNode(std::move(Fn), Class, this);
  unsigned C = unsigned(Class);
  I->CtrSubmitted[C].fetch_add(1, std::memory_order_relaxed);
  I->ClassDepth[C].fetch_add(1, std::memory_order_relaxed);
  I->PendingHint.fetch_add(1, std::memory_order_seq_cst);
  if (CurOwner == this && CurWorker != nullptr) {
    CurWorker->Deque.push(N);
  } else {
    Impl::InjectorQueue &Q = I->Injector[C];
    std::lock_guard<std::mutex> G(Q.M);
    Q.Q.push_back(N);
    Q.Size.store(Q.Q.size(), std::memory_order_release);
  }
  I->signalWork();
  return TaskHandle(N);
}

bool Scheduler::cancelTask(TaskNode &N) {
  int Expected = TaskNode::Pending;
  if (!N.Phase.compare_exchange_strong(Expected, TaskNode::Cancelled,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
    return false;
  I->noteClaimed(N);
  I->CtrCancelled.fetch_add(1, std::memory_order_relaxed);
  // No notify-through-store here: publishTerminal needs the phase store
  // *before* the wake, and the CAS above already stored it.
  { std::lock_guard<std::mutex> G(N.WaitMutex); }
  N.WaitCv.notify_all();
  return true;
}

bool Scheduler::inlineTask(TaskNode &N) {
  int Expected = TaskNode::Pending;
  if (!N.Phase.compare_exchange_strong(Expected, TaskNode::Running,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
    return false;
  I->noteClaimed(N);
  I->CtrRanInline.fetch_add(1, std::memory_order_relaxed);
  I->runBody(N);
  return true;
}

void Scheduler::parallelFor(size_t Begin, size_t End,
                            const std::function<void(size_t)> &Fn,
                            size_t MaxConcurrency, TaskClass Class) {
  if (Begin >= End)
    return;
  size_t N = End - Begin;
  size_t Slots = I->Workers.size();
  if (MaxConcurrency != 0)
    Slots = std::min(Slots, MaxConcurrency);
  Slots = std::min(Slots, N);
  if (Slots < 1)
    Slots = 1;
  // Slot tasks pull indices from a shared counter: min(size, cap) slots
  // bound the concurrency while any free worker can pick up any slot —
  // no per-index task flood, no static index partition to go idle early.
  std::atomic<size_t> Next{Begin};
  std::vector<std::exception_ptr> Errors(N);
  std::vector<TaskHandle> Handles;
  Handles.reserve(Slots);
  for (size_t S = 0; S != Slots; ++S)
    Handles.push_back(submit(Class, [&Fn, &Next, &Errors, Begin, End] {
      for (;;) {
        size_t Idx = Next.fetch_add(1, std::memory_order_relaxed);
        if (Idx >= End)
          return;
        try {
          Fn(Idx);
        } catch (...) {
          Errors[Idx - Begin] = std::current_exception();
        }
      }
    }));
  // Wait for everything first so all iterations complete even when an
  // early one threw; then surface the first exception in index order.
  for (TaskHandle &H : Handles)
    H.wait();
  for (std::exception_ptr &E : Errors)
    if (E)
      std::rethrow_exception(E);
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats S;
  for (unsigned C = 0; C != NumTaskClasses; ++C) {
    S.Submitted[C] = I->CtrSubmitted[C].load(std::memory_order_relaxed);
    S.Executed[C] = I->CtrExecuted[C].load(std::memory_order_relaxed);
    int64_t Depth = I->ClassDepth[C].load(std::memory_order_relaxed);
    S.QueueDepth[C] = Depth > 0 ? uint64_t(Depth) : 0;
  }
  S.RanInline = I->CtrRanInline.load(std::memory_order_relaxed);
  S.Stolen = I->CtrStolen.load(std::memory_order_relaxed);
  S.Cancelled = I->CtrCancelled.load(std::memory_order_relaxed);
  S.StealAttempts = I->CtrStealAttempts.load(std::memory_order_relaxed);
  S.StealHits = I->CtrStealHits.load(std::memory_order_relaxed);
  uint64_t IdleNanos = 0;
  for (const auto &W : I->Workers)
    IdleNanos += W->IdleNanos.load(std::memory_order_relaxed);
  S.IdleSeconds = double(IdleNanos) / 1e9;
  return S;
}

namespace {
std::atomic<bool> GlobalStarted{false};
} // namespace

Scheduler &Scheduler::global() {
  static Scheduler S(0);
  GlobalStarted.store(true, std::memory_order_release);
  return S;
}

SchedulerStats Scheduler::globalStats() {
  if (!GlobalStarted.load(std::memory_order_acquire))
    return SchedulerStats();
  return global().stats();
}

TaskHandle::~TaskHandle() {
  if (Node)
    Node->release();
}

TaskHandle::TaskHandle(const TaskHandle &Other) : Node(Other.Node) {
  if (Node)
    Node->retain();
}

TaskHandle &TaskHandle::operator=(const TaskHandle &Other) {
  if (this == &Other)
    return *this;
  if (Other.Node)
    Other.Node->retain();
  if (Node)
    Node->release();
  Node = Other.Node;
  return *this;
}

TaskHandle::TaskHandle(TaskHandle &&Other) noexcept : Node(Other.Node) {
  Other.Node = nullptr;
}

TaskHandle &TaskHandle::operator=(TaskHandle &&Other) noexcept {
  if (this == &Other)
    return *this;
  if (Node)
    Node->release();
  Node = Other.Node;
  Other.Node = nullptr;
  return *this;
}

bool TaskHandle::cancel() {
  if (!Node)
    return false;
  return Node->Sched->cancelTask(*Node);
}

bool TaskHandle::runInline() {
  if (!Node)
    return false;
  return Node->Sched->inlineTask(*Node);
}

void TaskHandle::wait() const {
  if (!Node || Node->terminal())
    return;
  std::unique_lock<std::mutex> L(Node->WaitMutex);
  Node->WaitCv.wait(L, [this] { return Node->terminal(); });
}

void TaskHandle::get() const {
  wait();
  if (Node && Node->Phase.load(std::memory_order_acquire) == TaskNode::Done &&
      Node->Error)
    std::rethrow_exception(Node->Error);
}

bool TaskHandle::ran() const {
  return Node &&
         Node->Phase.load(std::memory_order_acquire) == TaskNode::Done &&
         !Node->Error;
}
