//===- subjects/Subject.h - Program-under-test interface ---------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Subject interface: a program under test. Mirrors the paper's setup
/// (Section 5.1): each subject reads from its input, aborts parsing with a
/// non-zero exit code on the first error, and exits 0 iff the whole input
/// is valid. Subjects are written against the instrumented runtime, so one
/// execution yields a RunResult with comparisons, EOF accesses and branch
/// coverage.
///
/// The five evaluation subjects correspond to Table 1 of the paper:
/// ini (inih), csv (csvparser), json (cJSON), tinyc (Tiny-C), mjs (mJS).
/// A sixth subject, arith, implements the worked example of Section 2.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_SUBJECTS_SUBJECT_H
#define PFUZZ_SUBJECTS_SUBJECT_H

#include "runtime/ExecutionContext.h"

#include <string_view>
#include <vector>

namespace pfuzz {

/// A program under test.
class Subject {
public:
  virtual ~Subject();

  /// Short identifier ("ini", "csv", "json", "tinyc", "mjs", "arith").
  virtual std::string_view name() const = 0;

  /// Number of static branch sites the subject's instrumentation registers;
  /// the branch-coverage denominator is twice this (both outcomes).
  virtual uint32_t numBranchSites() const = 0;

  /// Parses (and, for tinyc/mjs, executes) the input available through
  /// \p Ctx. Returns 0 iff the input is valid.
  virtual int run(ExecutionContext &Ctx) const = 0;

  /// True if this subject's executions may be suspended at end-of-input
  /// reads and resumed from a stack-byte checkpoint (the prefix-
  /// resumption engine, runtime/PrefixResumeCache.h). Eligible subjects
  /// must hold only trivially restorable state in the frames live at any
  /// input read: plain values, inline taint sets, small-string-optimized
  /// strings — never heap-owning locals, whose handles would dangle when
  /// one continuation frees them and another restores the bytes. They
  /// must also never observe end-of-input except by reading (no atEnd()
  /// before the first past-end read), since a checkpoint must represent
  /// every extension of its prefix. Default false: opting in requires an
  /// audit of the subject's frames.
  virtual bool resumeSafe() const { return false; }

  /// Convenience wrapper: one instrumented execution of \p Input.
  RunResult execute(std::string_view Input,
                    InstrumentationMode Mode = InstrumentationMode::Full) const;

  /// Pooled execution: like execute(), but recycles \p InOut as the
  /// result storage — its contents are cleared, its heap buffers
  /// (BranchTrace, Comparisons, CallTrace, ...) are reused, and the new
  /// result is moved back into it. Campaign loops call this with one
  /// long-lived RunResult so the per-execution hot path allocates
  /// nothing.
  void execute(std::string_view Input, InstrumentationMode Mode,
               RunResult &InOut) const;

  /// Returns true iff \p Input is accepted (exit code 0), using the
  /// cheapest instrumentation mode.
  bool accepts(std::string_view Input) const;
};

/// Accessors for the built-in subjects. Each returns a process-lifetime
/// singleton (lazily constructed; no global constructors).
const Subject &arithSubject();
const Subject &dyckSubject();
const Subject &iniSubject();
const Subject &csvSubject();
const Subject &jsonSubject();
const Subject &ll1ArithSubject();
const Subject &tinycSubject();
const Subject &mjsSubject();

/// mjs with the Section 7.3 semantic checks enabled (reads of undeclared
/// identifiers fail after parsing); not part of the paper's evaluation
/// set.
const Subject &mjsSemSubject();

/// Looks a subject up by name; returns nullptr when unknown.
const Subject *findSubject(std::string_view Name);

/// The five evaluation subjects of Table 1, in the paper's order.
std::vector<const Subject *> evaluationSubjects();

/// All built-in subjects (evaluation subjects plus arith).
std::vector<const Subject *> allSubjects();

} // namespace pfuzz

#endif // PFUZZ_SUBJECTS_SUBJECT_H
