//===- subjects/TinyC.cpp - Tiny-C subject --------------------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Tiny-C compiler/interpreter modelled on Marc Feeley's tiny-c (the
/// gist the paper evaluates). Grammar:
///
///   program   ::= statement <end of input>
///   statement ::= "if" parenExpr statement ["else" statement]
///               | "while" parenExpr statement
///               | "do" statement "while" parenExpr ";"
///               | "{" statement* "}"
///               | expr ";" | ";"
///   expr      ::= test | id "=" expr
///   test      ::= sum ["<" sum]
///   sum       ::= term (("+" | "-") term)*
///   term      ::= id | int | parenExpr
///
/// Identifiers are single letters a..z; keywords (do, else, if, while) are
/// recognised by the lexer via the wrapped strcmp. Tokenization is
/// interleaved with parsing and the parser branches on *untainted* token
/// kinds — the taint break of Section 7.2: only the lexer-level character
/// and keyword comparisons are visible to pFuzzer.
///
/// Valid programs are executed by a tree-walking interpreter (with a step
/// cap replacing the paper's manual while(9); fix), so loop/branch
/// handling code is only covered by inputs that actually contain those
/// constructs — the reason pFuzzer out-covers AFL on this subject.
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include "runtime/Instrument.h"

#include <deque>

using namespace pfuzz;

PF_INSTRUMENT_BEGIN()

namespace {

enum class TokKind {
  Eoi,
  Do,
  Else,
  If,
  While,
  LeftBrace,
  RightBrace,
  LeftParen,
  RightParen,
  Plus,
  Minus,
  Less,
  Semicolon,
  Equal,
  Int,
  Id,
  Error,
};

enum class NodeKind {
  Var,
  Const,
  Add,
  Sub,
  LessThan,
  Assign,
  If1,
  If2,
  WhileLoop,
  DoLoop,
  Empty,
  Seq,
  ExprStmt,
  Prog,
};

struct Node {
  NodeKind Kind;
  int Value = 0; // variable index or constant
  Node *Op1 = nullptr;
  Node *Op2 = nullptr;
  Node *Op3 = nullptr;
};

/// The interpreter aborts after this many evaluation steps; replaces the
/// paper's manual termination fix for generated infinite loops.
constexpr uint64_t TinyCStepLimit = 20000;

class TinyC {
public:
  explicit TinyC(ExecutionContext &Ctx) : Ctx(Ctx) {}

  /// Parses and runs one program. Returns 0 iff the input parses.
  int runProgram() {
    nextToken();
    Node *Prog = parseProgram();
    if (PF_BR(Ctx, Prog == nullptr))
      return 1;
    execute(Prog);
    return 0;
  }

private:
  //===--------------------------------------------------------------------===
  // Lexer — character-level comparisons are tracked; the token kind that
  // the parser consumes is an untainted enum (the taint break).
  //===--------------------------------------------------------------------===

  void nextToken() {
    PF_FUNC(Ctx);
    // Skip whitespace (tiny-c checks ' ' and '\n' explicitly).
    while (PF_IF_SET(Ctx, Ctx.peekChar(), " \n\t"))
      Ctx.nextChar();
    TChar C = Ctx.peekChar();
    if (PF_BR(Ctx, C.isEof())) {
      Tok = TokKind::Eoi;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '{')) {
      Ctx.nextChar();
      Tok = TokKind::LeftBrace;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '}')) {
      Ctx.nextChar();
      Tok = TokKind::RightBrace;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '(')) {
      Ctx.nextChar();
      Tok = TokKind::LeftParen;
      return;
    }
    if (PF_IF_EQ(Ctx, C, ')')) {
      Ctx.nextChar();
      Tok = TokKind::RightParen;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '+')) {
      Ctx.nextChar();
      Tok = TokKind::Plus;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '-')) {
      Ctx.nextChar();
      Tok = TokKind::Minus;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '<')) {
      Ctx.nextChar();
      Tok = TokKind::Less;
      return;
    }
    if (PF_IF_EQ(Ctx, C, ';')) {
      Ctx.nextChar();
      Tok = TokKind::Semicolon;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '=')) {
      Ctx.nextChar();
      Tok = TokKind::Equal;
      return;
    }
    if (PF_IF_RANGE(Ctx, C, '0', '9')) {
      TokValue = 0;
      while (PF_IF_RANGE(Ctx, Ctx.peekChar(), '0', '9')) {
        TChar Digit = Ctx.nextChar();
        TokValue = TokValue * 10 + (Digit.value() - '0');
        if (PF_BR(Ctx, TokValue > 1000000))
          TokValue = 1000000; // saturate, tiny-c ints are small
      }
      Tok = TokKind::Int;
      return;
    }
    if (PF_IF_RANGE(Ctx, C, 'a', 'z')) {
      // Accumulate the identifier; taints flow into the TString so the
      // keyword strcmps below are attributable to input positions.
      TString Word;
      while (PF_IF_RANGE(Ctx, Ctx.peekChar(), 'a', 'z'))
        Word.push_back(Ctx.nextChar());
      if (PF_IF_STR(Ctx, Word, "do")) {
        Tok = TokKind::Do;
        return;
      }
      if (PF_IF_STR(Ctx, Word, "else")) {
        Tok = TokKind::Else;
        return;
      }
      if (PF_IF_STR(Ctx, Word, "if")) {
        Tok = TokKind::If;
        return;
      }
      if (PF_IF_STR(Ctx, Word, "while")) {
        Tok = TokKind::While;
        return;
      }
      if (PF_BR(Ctx, Word.size() == 1)) {
        Tok = TokKind::Id;
        TokValue = Word.str()[0] - 'a';
        return;
      }
      Tok = TokKind::Error; // multi-letter non-keyword
      return;
    }
    Tok = TokKind::Error;
  }

  //===--------------------------------------------------------------------===
  // Parser — branches on untainted token kinds only.
  //===--------------------------------------------------------------------===

  Node *newNode(NodeKind Kind, int Value = 0) {
    Arena.push_back(Node{Kind, Value, nullptr, nullptr, nullptr});
    return &Arena.back();
  }

  /// program ::= statement EOI
  Node *parseProgram() {
    PF_FUNC(Ctx);
    Node *Stmt = parseStatement();
    if (PF_BR(Ctx, Stmt == nullptr))
      return nullptr;
    if (PF_BR(Ctx, Tok != TokKind::Eoi))
      return nullptr;
    Node *Prog = newNode(NodeKind::Prog);
    Prog->Op1 = Stmt;
    return Prog;
  }

  /// parenExpr ::= "(" expr ")"
  Node *parseParenExpr() {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, Tok != TokKind::LeftParen))
      return nullptr;
    nextToken();
    Node *E = parseExpr();
    if (PF_BR(Ctx, E == nullptr))
      return nullptr;
    if (PF_BR(Ctx, Tok != TokKind::RightParen))
      return nullptr;
    nextToken();
    return E;
  }

  Node *parseStatement() {
    PF_FUNC(Ctx);
    // Nesting cap: protects the host stack from fuzzer-generated towers of
    // parentheses/braces (tiny-c itself would segfault).
    if (PF_BR(Ctx, ++Depth > 200))
      return nullptr;
    Node *Stmt = parseStatementImpl();
    --Depth;
    return Stmt;
  }

  Node *parseStatementImpl() {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, Tok == TokKind::If))
      return parseIf();
    if (PF_BR(Ctx, Tok == TokKind::While))
      return parseWhile();
    if (PF_BR(Ctx, Tok == TokKind::Do))
      return parseDo();
    if (PF_BR(Ctx, Tok == TokKind::LeftBrace))
      return parseBlock();
    if (PF_BR(Ctx, Tok == TokKind::Semicolon)) {
      nextToken();
      return newNode(NodeKind::Empty);
    }
    Node *E = parseExpr();
    if (PF_BR(Ctx, E == nullptr))
      return nullptr;
    if (PF_BR(Ctx, Tok != TokKind::Semicolon))
      return nullptr;
    nextToken();
    Node *Stmt = newNode(NodeKind::ExprStmt);
    Stmt->Op1 = E;
    return Stmt;
  }

  Node *parseIf() {
    PF_FUNC(Ctx);
    nextToken(); // consume "if"
    Node *Cond = parseParenExpr();
    if (PF_BR(Ctx, Cond == nullptr))
      return nullptr;
    Node *Then = parseStatement();
    if (PF_BR(Ctx, Then == nullptr))
      return nullptr;
    if (PF_BR(Ctx, Tok == TokKind::Else)) {
      nextToken();
      Node *Else = parseStatement();
      if (PF_BR(Ctx, Else == nullptr))
        return nullptr;
      Node *Stmt = newNode(NodeKind::If2);
      Stmt->Op1 = Cond;
      Stmt->Op2 = Then;
      Stmt->Op3 = Else;
      return Stmt;
    }
    Node *Stmt = newNode(NodeKind::If1);
    Stmt->Op1 = Cond;
    Stmt->Op2 = Then;
    return Stmt;
  }

  Node *parseWhile() {
    PF_FUNC(Ctx);
    nextToken(); // consume "while"
    Node *Cond = parseParenExpr();
    if (PF_BR(Ctx, Cond == nullptr))
      return nullptr;
    Node *Body = parseStatement();
    if (PF_BR(Ctx, Body == nullptr))
      return nullptr;
    Node *Stmt = newNode(NodeKind::WhileLoop);
    Stmt->Op1 = Cond;
    Stmt->Op2 = Body;
    return Stmt;
  }

  /// do statement while parenExpr ;
  Node *parseDo() {
    PF_FUNC(Ctx);
    nextToken(); // consume "do"
    Node *Body = parseStatement();
    if (PF_BR(Ctx, Body == nullptr))
      return nullptr;
    if (PF_BR(Ctx, Tok != TokKind::While))
      return nullptr;
    nextToken();
    Node *Cond = parseParenExpr();
    if (PF_BR(Ctx, Cond == nullptr))
      return nullptr;
    if (PF_BR(Ctx, Tok != TokKind::Semicolon))
      return nullptr;
    nextToken();
    Node *Stmt = newNode(NodeKind::DoLoop);
    Stmt->Op1 = Body;
    Stmt->Op2 = Cond;
    return Stmt;
  }

  Node *parseBlock() {
    PF_FUNC(Ctx);
    nextToken(); // consume "{"
    Node *Block = newNode(NodeKind::Empty);
    while (PF_BR(Ctx, Tok != TokKind::RightBrace)) {
      if (PF_BR(Ctx, Tok == TokKind::Eoi || Tok == TokKind::Error))
        return nullptr;
      Node *Stmt = parseStatement();
      if (PF_BR(Ctx, Stmt == nullptr))
        return nullptr;
      Node *Seq = newNode(NodeKind::Seq);
      Seq->Op1 = Block;
      Seq->Op2 = Stmt;
      Block = Seq;
    }
    nextToken(); // consume "}"
    return Block;
  }

  /// expr ::= test | id "=" expr — resolved with one token of lookahead,
  /// as in tiny-c: parse a test; if it was a bare variable and '=' follows,
  /// it becomes an assignment target.
  Node *parseExpr() {
    PF_FUNC(Ctx);
    Node *T = parseTest();
    if (PF_BR(Ctx, T == nullptr))
      return nullptr;
    if (PF_BR(Ctx, T->Kind == NodeKind::Var && Tok == TokKind::Equal)) {
      nextToken();
      Node *Rhs = parseExpr();
      if (PF_BR(Ctx, Rhs == nullptr))
        return nullptr;
      Node *Set = newNode(NodeKind::Assign, T->Value);
      Set->Op1 = Rhs;
      return Set;
    }
    return T;
  }

  /// test ::= sum ["<" sum]
  Node *parseTest() {
    PF_FUNC(Ctx);
    Node *Lhs = parseSum();
    if (PF_BR(Ctx, Lhs == nullptr))
      return nullptr;
    if (PF_BR(Ctx, Tok != TokKind::Less))
      return Lhs;
    nextToken();
    Node *Rhs = parseSum();
    if (PF_BR(Ctx, Rhs == nullptr))
      return nullptr;
    Node *Lt = newNode(NodeKind::LessThan);
    Lt->Op1 = Lhs;
    Lt->Op2 = Rhs;
    return Lt;
  }

  /// sum ::= term (("+" | "-") term)*
  Node *parseSum() {
    PF_FUNC(Ctx);
    Node *Lhs = parseTerm();
    if (PF_BR(Ctx, Lhs == nullptr))
      return nullptr;
    while (PF_BR(Ctx, Tok == TokKind::Plus || Tok == TokKind::Minus)) {
      NodeKind Kind =
          Tok == TokKind::Plus ? NodeKind::Add : NodeKind::Sub;
      nextToken();
      Node *Rhs = parseTerm();
      if (PF_BR(Ctx, Rhs == nullptr))
        return nullptr;
      Node *Bin = newNode(Kind);
      Bin->Op1 = Lhs;
      Bin->Op2 = Rhs;
      Lhs = Bin;
    }
    return Lhs;
  }

  /// term ::= id | int | parenExpr
  Node *parseTerm() {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, ++Depth > 200))
      return nullptr;
    Node *T = parseTermImpl();
    --Depth;
    return T;
  }

  Node *parseTermImpl() {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, Tok == TokKind::Id)) {
      Node *Var = newNode(NodeKind::Var, TokValue);
      nextToken();
      return Var;
    }
    if (PF_BR(Ctx, Tok == TokKind::Int)) {
      Node *Cst = newNode(NodeKind::Const, TokValue);
      nextToken();
      return Cst;
    }
    return parseParenExpr();
  }

  //===--------------------------------------------------------------------===
  // Interpreter — only reachable through valid programs.
  //===--------------------------------------------------------------------===

  void execute(Node *Prog) {
    PF_FUNC(Ctx);
    Steps = 0;
    eval(Prog);
  }

  int eval(Node *N) {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, ++Steps > TinyCStepLimit))
      return 0; // budget exhausted; treat as a terminated hang
    switch (N->Kind) {
    case NodeKind::Var:
      return Vars[N->Value];
    case NodeKind::Const:
      return N->Value;
    case NodeKind::Add:
      return eval(N->Op1) + eval(N->Op2);
    case NodeKind::Sub:
      return eval(N->Op1) - eval(N->Op2);
    case NodeKind::LessThan:
      return PF_BR(Ctx, eval(N->Op1) < eval(N->Op2)) ? 1 : 0;
    case NodeKind::Assign:
      return Vars[N->Value] = eval(N->Op1);
    case NodeKind::If1:
      if (PF_BR(Ctx, eval(N->Op1) != 0))
        eval(N->Op2);
      return 0;
    case NodeKind::If2:
      if (PF_BR(Ctx, eval(N->Op1) != 0))
        eval(N->Op2);
      else
        eval(N->Op3);
      return 0;
    case NodeKind::WhileLoop:
      while (PF_BR(Ctx, eval(N->Op1) != 0)) {
        if (PF_BR(Ctx, Steps > TinyCStepLimit))
          return 0;
        eval(N->Op2);
      }
      return 0;
    case NodeKind::DoLoop:
      do {
        if (PF_BR(Ctx, Steps > TinyCStepLimit))
          return 0;
        eval(N->Op1);
      } while (PF_BR(Ctx, eval(N->Op2) != 0));
      return 0;
    case NodeKind::Empty:
      return 0;
    case NodeKind::Seq:
      eval(N->Op1);
      eval(N->Op2);
      return 0;
    case NodeKind::ExprStmt:
      return eval(N->Op1);
    case NodeKind::Prog:
      return eval(N->Op1);
    }
    return 0;
  }

  ExecutionContext &Ctx;
  TokKind Tok = TokKind::Eoi;
  int TokValue = 0;
  std::deque<Node> Arena;
  int Vars[26] = {};
  uint64_t Steps = 0;
  uint32_t Depth = 0;
};

} // namespace

PF_INSTRUMENT_END(TinyCNumBranchSites)

namespace {

class TinyCSubject final : public Subject {
public:
  std::string_view name() const override { return "tinyc"; }
  uint32_t numBranchSites() const override { return TinyCNumBranchSites; }
  int run(ExecutionContext &Ctx) const override {
    return TinyC(Ctx).runProgram();
  }
};

} // namespace

const Subject &pfuzz::tinycSubject() {
  static const TinyCSubject Instance;
  return Instance;
}
