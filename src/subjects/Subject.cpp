//===- subjects/Subject.cpp - Program-under-test interface ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

using namespace pfuzz;

Subject::~Subject() = default;

RunResult Subject::execute(std::string_view Input,
                           InstrumentationMode Mode) const {
  ExecutionContext Ctx(Input, Mode);
  int ExitCode = run(Ctx);
  Ctx.setExitCode(ExitCode);
  return Ctx.takeResult();
}

void Subject::execute(std::string_view Input, InstrumentationMode Mode,
                      RunResult &InOut) const {
  ExecutionContext Ctx(Input, Mode, std::move(InOut));
  int ExitCode = run(Ctx);
  Ctx.setExitCode(ExitCode);
  InOut = Ctx.takeResult();
}

bool Subject::accepts(std::string_view Input) const {
  ExecutionContext Ctx(Input, InstrumentationMode::Off);
  return run(Ctx) == 0;
}

const Subject *pfuzz::findSubject(std::string_view Name) {
  for (const Subject *S : allSubjects())
    if (S->name() == Name)
      return S;
  return nullptr;
}

std::vector<const Subject *> pfuzz::evaluationSubjects() {
  return {&iniSubject(), &csvSubject(), &jsonSubject(), &tinycSubject(),
          &mjsSubject()};
}

std::vector<const Subject *> pfuzz::allSubjects() {
  return {&arithSubject(),   &dyckSubject(),  &iniSubject(),
          &csvSubject(),     &jsonSubject(),  &ll1ArithSubject(),
          &tinycSubject(),   &mjsSubject(),   &mjsSemSubject()};
}
