//===- subjects/Ll1Arith.cpp - Table-driven arithmetic subject ------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 2 arithmetic language again — but parsed by a *table-
/// driven* LL(1) parser instead of recursive descent, implementing the
/// Section 7.1 future-work item. The language is identical to the arith
/// subject (cross-checked by tests), and coverage is counted over parse-
/// table elements rather than code branches.
///
/// LL(1) grammar (S is the start symbol; D' and R are right-recursive
/// tail nonterminals; SIGN and the tails are nullable):
///
///   S    -> E
///   E    -> SIGN T R
///   SIGN -> '+' | '-' | epsilon
///   R    -> '+' T R | '-' T R | epsilon
///   T    -> '(' I ')' | N        (I is E without the leading-sign rule
///   I    -> SIGN T R              folded back in; same as E)
///   N    -> D D'
///   D'   -> D D' | epsilon
///   D    -> '0' | ... | '9'
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include "ll1/TableParser.h"

#include <cassert>
#include <memory>

using namespace pfuzz;

namespace {

/// Grammar plus its parse table, built once.
struct Ll1ArithMachine {
  Cfg G;
  Ll1Table Table;

  Ll1ArithMachine(Cfg Grammar, Ll1Table T)
      : G(std::move(Grammar)), Table(std::move(T)) {}

  static const Ll1ArithMachine &instance() {
    static const Ll1ArithMachine Machine = make();
    return Machine;
  }

private:
  static Ll1ArithMachine make() {
    Cfg G;
    int32_t S = G.addNonTerminal("S");
    int32_t E = G.addNonTerminal("E");
    int32_t Sign = G.addNonTerminal("SIGN");
    int32_t R = G.addNonTerminal("R");
    int32_t T = G.addNonTerminal("T");
    int32_t N = G.addNonTerminal("N");
    int32_t DTail = G.addNonTerminal("D'");
    int32_t D = G.addNonTerminal("D");
    G.addProductionSpec(S, "<E>");
    G.addProductionSpec(E, "<SIGN><T><R>");
    G.addProductionSpec(Sign, "+");
    G.addProductionSpec(Sign, "-");
    G.addProductionSpec(Sign, "");
    G.addProductionSpec(R, "+<T><R>");
    G.addProductionSpec(R, "-<T><R>");
    G.addProductionSpec(R, "");
    G.addProductionSpec(T, "(<E>)");
    G.addProductionSpec(T, "<N>");
    G.addProductionSpec(N, "<D><D'>");
    G.addProductionSpec(DTail, "<D><D'>");
    G.addProductionSpec(DTail, "");
    for (char C = '0'; C <= '9'; ++C)
      G.addProductionSpec(D, std::string_view(&C, 1));
    std::string Error;
    std::optional<Ll1Table> Table = Ll1Table::build(G, &Error);
    assert(Table.has_value() && "arith grammar must be LL(1)");
    return Ll1ArithMachine(std::move(G), std::move(*Table));
  }
};

class Ll1ArithSubject final : public Subject {
public:
  std::string_view name() const override { return "ll1arith"; }

  uint32_t numBranchSites() const override {
    // Table cells plus the end-of-input site; see TableParser.
    return Ll1ArithMachine::instance().Table.numCells() + 1;
  }

  int run(ExecutionContext &Ctx) const override {
    const Ll1ArithMachine &M = Ll1ArithMachine::instance();
    return parseWithTable(Ctx, M.G, M.Table);
  }
};

} // namespace

const Subject &pfuzz::ll1ArithSubject() {
  static const Ll1ArithSubject Instance;
  return Instance;
}
