//===- subjects/Mjs.cpp - mJS (JavaScript subset) subject -----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A JavaScript-subset engine modelled on cesanta/mjs, the paper's most
/// complex evaluation subject. It has the full token spectrum of Table 4:
/// single-character punctuation, compound operators up to >>>=, 31
/// keywords from `if` to `instanceof`, plus built-in global and member
/// names (Object, JSON, NaN, undefined, stringify, indexOf, ...) that are
/// resolved at runtime through the wrapped strcmp — which is how pFuzzer
/// synthesises them (Section 5.3 mentions typeof inputs and long keyword
/// coverage).
///
/// Structure mirrors the original: a lexer interleaved with a recursive-
/// descent parser (token kinds are untainted enums — the Section 7.2 taint
/// break), plus a tree-walking evaluator executed on valid programs with
/// semantic checking disabled (undeclared identifiers read as undefined,
/// as the paper's setup requires).
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include "runtime/Instrument.h"
#include "support/Ascii.h"

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <map>
#include <memory>

using namespace pfuzz;

PF_INSTRUMENT_BEGIN()

namespace {

enum class Tok {
  // Single-character punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket, Semi, Comma, Dot,
  Question, Colon, Plus, Minus, Star, Slash, Percent, Lt, Gt, Assign, Not,
  Tilde, Amp, Pipe, Caret,
  // Two-character operators.
  EqEq, NotEq, LtEq, GtEq, AmpAmp, PipePipe, PlusPlus, MinusMinus, PlusEq,
  MinusEq, StarEq, SlashEq, PercentEq, AmpEq, PipeEq, CaretEq, Shl, Shr,
  Arrow,
  // Three- and four-character operators.
  EqEqEq, NotEqEq, ShlEq, ShrEq, Ushr, UshrEq,
  // Literals.
  Number, String, Ident,
  // Keywords.
  KwIf, KwIn, KwDo, KwOf, KwFor, KwLet, KwNew, KwVar, KwTry, KwTrue, KwNull,
  KwVoid, KwWith, KwElse, KwThis, KwCase, KwFalse, KwThrow, KwWhile,
  KwBreak, KwCatch, KwConst, KwReturn, KwDelete, KwTypeof, KwSwitch,
  KwDefault, KwFinally, KwContinue, KwFunction, KwDebugger, KwInstanceof,
  // Sentinels.
  Eoi, Error,
};

enum class NodeKind {
  // Statements.
  Block, VarDecl, ExprStmt, If, While, DoWhile, ForClassic, ForIn, Return,
  Break, Continue, Throw, Try, Switch, SwitchCase, With, FuncDecl, Debugger,
  Empty,
  // Expressions.
  NumberLit, StringLit, BoolLit, NullLit, ThisExpr, Ident, ArrayLit,
  ObjectLit, ObjectProp, FuncExpr, ArrowFn, Unary, Postfix, Binary, Cond,
  AssignExpr, Member, Index, Call, NewExpr, Param,
};

struct Node {
  NodeKind Kind;
  Tok Op = Tok::Error;       // operator for Unary/Postfix/Binary/Assign
  double Num = 0;            // NumberLit value, BoolLit truth
  std::string Str;           // StringLit contents (concrete bytes)
  TString Name;              // identifier / member name, with taints
  std::vector<Node *> Kids;
};

/// Evaluation step budget; generated programs may loop forever.
constexpr uint64_t MjsStepLimit = 30000;
/// Parser and evaluator recursion cap.
constexpr uint32_t MjsDepthLimit = 150;

//===----------------------------------------------------------------------===
// Runtime values
//===----------------------------------------------------------------------===

struct JsObject;

struct JsValue {
  enum class Type {
    Undefined,
    Null,
    Boolean,
    Number,
    String,
    Object,
    Array,
    Function,
  };
  Type Ty = Type::Undefined;
  double Num = 0;
  bool Bool = false;
  std::string Str;
  // Objects live in the engine's per-run arena (freed when the run ends),
  // so cyclic structures like `o.x = o` cannot leak.
  JsObject *Obj = nullptr;                // Object and Array payload
  const Node *Fn = nullptr;               // user function body
  int Builtin = -1;                       // builtin method id

  static JsValue undef() { return JsValue(); }
  static JsValue null() {
    JsValue V;
    V.Ty = Type::Null;
    return V;
  }
  static JsValue boolean(bool B) {
    JsValue V;
    V.Ty = Type::Boolean;
    V.Bool = B;
    return V;
  }
  static JsValue number(double N) {
    JsValue V;
    V.Ty = Type::Number;
    V.Num = N;
    return V;
  }
  static JsValue string(std::string S) {
    JsValue V;
    V.Ty = Type::String;
    V.Str = std::move(S);
    return V;
  }
};

struct JsObject {
  std::map<std::string, JsValue> Props;
  std::vector<JsValue> Elems; // used when the object is an array
  bool IsArray = false;
};

/// Statement completion records (break/continue/return/throw unwinding).
enum class Completion { Normal, Break, Continue, Return, Throw };

struct ExecResult {
  Completion Kind = Completion::Normal;
  JsValue Value;
};

//===----------------------------------------------------------------------===
// Engine
//===----------------------------------------------------------------------===

class Mjs {
public:
  /// \p Semantic enables the post-parse semantic checking the paper
  /// disabled for the evaluation ("we disabled semantic checking in mjs
  /// as this is out of scope") and discusses as a limitation in
  /// Section 7.3: reads of undeclared identifiers become errors that are
  /// "verified after the parsing phase".
  explicit Mjs(ExecutionContext &Ctx, bool Semantic = false)
      : Ctx(Ctx), Semantic(Semantic) {}

  /// Parses the whole input as a program; on success, executes it.
  /// Returns 0 iff the input parses (and, with semantic checking on,
  /// passes the delayed semantic constraints: exit code 2 otherwise).
  int runProgram() {
    nextToken();
    std::vector<Node *> Stmts;
    while (PF_BR(Ctx, CurTok != Tok::Eoi)) {
      Node *S = parseStatement();
      if (PF_BR(Ctx, S == nullptr))
        return 1;
      Stmts.push_back(S);
    }
    execProgram(Stmts);
    if (PF_BR(Ctx, Semantic && SemanticError))
      return 2; // passed the parser, failed the semantic checks (§7.3)
    return 0;
  }

private:
  //===--------------------------------------------------------------------===
  // Lexer
  //===--------------------------------------------------------------------===

  /// Consumes one input character unconditionally.
  void bump() { Ctx.nextChar(); }

  void nextToken() {
    PF_FUNC(Ctx);
    // Skip whitespace and // and /* */ comments, like the original lexer.
    for (;;) {
      while (PF_IF_SET(Ctx, Ctx.peekChar(), " \t\n\r"))
        bump();
      if (!PF_IF_EQ(Ctx, Ctx.peekChar(), '/'))
        break;
      if (PF_IF_EQ(Ctx, Ctx.peekChar(1), '/')) {
        bump();
        bump();
        while (PF_BR(Ctx, !Ctx.peekChar().isEof()) &&
               !PF_IF_EQ(Ctx, Ctx.peekChar(), '\n'))
          bump();
        continue;
      }
      if (PF_IF_EQ(Ctx, Ctx.peekChar(1), '*')) {
        bump();
        bump();
        for (;;) {
          TChar C = Ctx.peekChar();
          if (PF_BR(Ctx, C.isEof())) {
            CurTok = Tok::Error; // unterminated block comment
            return;
          }
          bump();
          if (PF_IF_EQ(Ctx, C, '*') &&
              PF_IF_EQ(Ctx, Ctx.peekChar(), '/')) {
            bump();
            break;
          }
        }
        continue;
      }
      break; // a lone '/' is the division operator
    }
    TChar C = Ctx.peekChar();
    if (PF_BR(Ctx, C.isEof())) {
      CurTok = Tok::Eoi;
      return;
    }
    if (PF_IF_RANGE(Ctx, C, '0', '9')) {
      lexNumber();
      return;
    }
    if (PF_BR(Ctx, isIdentStartChar(C))) {
      lexWord();
      return;
    }
    if (PF_IF_EQ(Ctx, C, '"')) {
      bump();
      lexString('"');
      return;
    }
    if (PF_IF_EQ(Ctx, C, '\'')) {
      bump();
      lexString('\'');
      return;
    }
    lexPunct(C);
  }

  bool isIdentStartChar(const TChar &C) {
    if (Ctx.cmpRange(C, 'a', 'z'))
      return true;
    if (Ctx.cmpRange(C, 'A', 'Z'))
      return true;
    return Ctx.cmpSet(C, "_$");
  }

  bool isIdentBodyChar(const TChar &C) {
    if (Ctx.cmpRange(C, 'a', 'z'))
      return true;
    if (Ctx.cmpRange(C, 'A', 'Z'))
      return true;
    if (Ctx.cmpRange(C, '0', '9'))
      return true;
    return Ctx.cmpSet(C, "_$");
  }

  void lexNumber() {
    PF_FUNC(Ctx);
    double Value = 0;
    while (PF_IF_RANGE(Ctx, Ctx.peekChar(), '0', '9')) {
      TChar D = Ctx.nextChar();
      Value = Value * 10 + (D.value() - '0');
    }
    if (PF_IF_EQ(Ctx, Ctx.peekChar(), '.')) {
      // A fraction needs at least one digit; `1.` is a syntax error here.
      if (PF_IF_RANGE(Ctx, Ctx.peekChar(1), '0', '9')) {
        bump(); // '.'
        double Scale = 0.1;
        while (PF_IF_RANGE(Ctx, Ctx.peekChar(), '0', '9')) {
          TChar D = Ctx.nextChar();
          Value += (D.value() - '0') * Scale;
          Scale *= 0.1;
        }
      }
    }
    CurTok = Tok::Number;
    TokNumber = Value;
  }

  void lexWord() {
    PF_FUNC(Ctx);
    TString Word;
    Word.push_back(Ctx.nextChar());
    while (PF_BR(Ctx, isIdentBodyChar(Ctx.peekChar())))
      Word.push_back(Ctx.nextChar());
    // Keyword recognition via the wrapped strcmp, as in mjs's lexer.
    struct Keyword {
      const char *Text;
      Tok Kind;
    };
    static const Keyword Keywords[] = {
        {"if", Tok::KwIf},
        {"in", Tok::KwIn},
        {"do", Tok::KwDo},
        {"of", Tok::KwOf},
        {"for", Tok::KwFor},
        {"let", Tok::KwLet},
        {"new", Tok::KwNew},
        {"var", Tok::KwVar},
        {"try", Tok::KwTry},
        {"true", Tok::KwTrue},
        {"null", Tok::KwNull},
        {"void", Tok::KwVoid},
        {"with", Tok::KwWith},
        {"else", Tok::KwElse},
        {"this", Tok::KwThis},
        {"case", Tok::KwCase},
        {"false", Tok::KwFalse},
        {"throw", Tok::KwThrow},
        {"while", Tok::KwWhile},
        {"break", Tok::KwBreak},
        {"catch", Tok::KwCatch},
        {"const", Tok::KwConst},
        {"return", Tok::KwReturn},
        {"delete", Tok::KwDelete},
        {"typeof", Tok::KwTypeof},
        {"switch", Tok::KwSwitch},
        {"default", Tok::KwDefault},
        {"finally", Tok::KwFinally},
        {"continue", Tok::KwContinue},
        {"function", Tok::KwFunction},
        {"debugger", Tok::KwDebugger},
        {"instanceof", Tok::KwInstanceof},
    };
    for (const Keyword &K : Keywords) {
      if (PF_BR(Ctx, Ctx.cmpStr(Word, K.Text))) {
        CurTok = K.Kind;
        return;
      }
    }
    CurTok = Tok::Ident;
    TokWord = std::move(Word);
  }

  void lexString(char Quote) {
    PF_FUNC(Ctx);
    std::string Text;
    for (;;) {
      TChar C = Ctx.peekChar();
      if (PF_BR(Ctx, C.isEof())) {
        CurTok = Tok::Error; // unterminated string
        return;
      }
      bump();
      if (PF_BR(Ctx, Ctx.cmpEq(C, Quote))) {
        CurTok = Tok::String;
        TokString = std::move(Text);
        return;
      }
      if (PF_IF_EQ(Ctx, C, '\n')) {
        CurTok = Tok::Error; // raw newline inside a string literal
        return;
      }
      if (PF_IF_EQ(Ctx, C, '\\')) {
        TChar E = Ctx.peekChar();
        if (PF_BR(Ctx, E.isEof())) {
          CurTok = Tok::Error;
          return;
        }
        bump();
        if (PF_IF_SET(Ctx, E, "nrtbf0\\\"'")) {
          Text.push_back(unescape(E.ch()));
          continue;
        }
        Text.push_back(E.ch()); // unknown escapes keep the character
        continue;
      }
      Text.push_back(C.ch());
    }
  }

  static char unescape(char C) {
    switch (C) {
    case 'n':
      return '\n';
    case 'r':
      return '\r';
    case 't':
      return '\t';
    case 'b':
      return '\b';
    case 'f':
      return '\f';
    case '0':
      return '\0';
    default:
      return C;
    }
  }

  void lexPunct(TChar C) {
    PF_FUNC(Ctx);
    bump();
    if (PF_IF_EQ(Ctx, C, '(')) { CurTok = Tok::LParen; return; }
    if (PF_IF_EQ(Ctx, C, ')')) { CurTok = Tok::RParen; return; }
    if (PF_IF_EQ(Ctx, C, '{')) { CurTok = Tok::LBrace; return; }
    if (PF_IF_EQ(Ctx, C, '}')) { CurTok = Tok::RBrace; return; }
    if (PF_IF_EQ(Ctx, C, '[')) { CurTok = Tok::LBracket; return; }
    if (PF_IF_EQ(Ctx, C, ']')) { CurTok = Tok::RBracket; return; }
    if (PF_IF_EQ(Ctx, C, ';')) { CurTok = Tok::Semi; return; }
    if (PF_IF_EQ(Ctx, C, ',')) { CurTok = Tok::Comma; return; }
    if (PF_IF_EQ(Ctx, C, '.')) { CurTok = Tok::Dot; return; }
    if (PF_IF_EQ(Ctx, C, '?')) { CurTok = Tok::Question; return; }
    if (PF_IF_EQ(Ctx, C, ':')) { CurTok = Tok::Colon; return; }
    if (PF_IF_EQ(Ctx, C, '~')) { CurTok = Tok::Tilde; return; }
    if (PF_IF_EQ(Ctx, C, '+')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '+')) {
        bump();
        CurTok = Tok::PlusPlus;
        return;
      }
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        CurTok = Tok::PlusEq;
        return;
      }
      CurTok = Tok::Plus;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '-')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '-')) {
        bump();
        CurTok = Tok::MinusMinus;
        return;
      }
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        CurTok = Tok::MinusEq;
        return;
      }
      CurTok = Tok::Minus;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '*')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        CurTok = Tok::StarEq;
        return;
      }
      CurTok = Tok::Star;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '/')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        CurTok = Tok::SlashEq;
        return;
      }
      CurTok = Tok::Slash;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '%')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        CurTok = Tok::PercentEq;
        return;
      }
      CurTok = Tok::Percent;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '=')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
          bump();
          CurTok = Tok::EqEqEq;
          return;
        }
        CurTok = Tok::EqEq;
        return;
      }
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '>')) {
        bump();
        CurTok = Tok::Arrow;
        return;
      }
      CurTok = Tok::Assign;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '!')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
          bump();
          CurTok = Tok::NotEqEq;
          return;
        }
        CurTok = Tok::NotEq;
        return;
      }
      CurTok = Tok::Not;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '<')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '<')) {
        bump();
        if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
          bump();
          CurTok = Tok::ShlEq;
          return;
        }
        CurTok = Tok::Shl;
        return;
      }
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        CurTok = Tok::LtEq;
        return;
      }
      CurTok = Tok::Lt;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '>')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '>')) {
        bump();
        if (PF_IF_EQ(Ctx, Ctx.peekChar(), '>')) {
          bump();
          if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
            bump();
            CurTok = Tok::UshrEq;
            return;
          }
          CurTok = Tok::Ushr;
          return;
        }
        if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
          bump();
          CurTok = Tok::ShrEq;
          return;
        }
        CurTok = Tok::Shr;
        return;
      }
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        CurTok = Tok::GtEq;
        return;
      }
      CurTok = Tok::Gt;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '&')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '&')) {
        bump();
        CurTok = Tok::AmpAmp;
        return;
      }
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        CurTok = Tok::AmpEq;
        return;
      }
      CurTok = Tok::Amp;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '|')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '|')) {
        bump();
        CurTok = Tok::PipePipe;
        return;
      }
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        CurTok = Tok::PipeEq;
        return;
      }
      CurTok = Tok::Pipe;
      return;
    }
    if (PF_IF_EQ(Ctx, C, '^')) {
      if (PF_IF_EQ(Ctx, Ctx.peekChar(), '=')) {
        bump();
        CurTok = Tok::CaretEq;
        return;
      }
      CurTok = Tok::Caret;
      return;
    }
    CurTok = Tok::Error;
  }

  //===--------------------------------------------------------------------===
  // Parser
  //===--------------------------------------------------------------------===

  Node *newNode(NodeKind Kind) {
    Arena.push_back(Node{});
    Arena.back().Kind = Kind;
    return &Arena.back();
  }

  bool expect(Tok Kind) {
    if (PF_BR(Ctx, CurTok != Kind))
      return false;
    nextToken();
    return true;
  }

  Node *parseStatement() {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, ++Depth > MjsDepthLimit))
      return nullptr;
    Node *S = parseStatementImpl();
    --Depth;
    return S;
  }

  Node *parseStatementImpl() {
    PF_FUNC(Ctx);
    switch (CurTok) {
    case Tok::LBrace:
      return parseBlock();
    case Tok::Semi:
      nextToken();
      return newNode(NodeKind::Empty);
    case Tok::KwIf:
      return parseIf();
    case Tok::KwWhile:
      return parseWhile();
    case Tok::KwDo:
      return parseDoWhile();
    case Tok::KwFor:
      return parseFor();
    case Tok::KwVar:
    case Tok::KwLet:
    case Tok::KwConst: {
      Node *D = parseVarDecl();
      if (PF_BR(Ctx, D == nullptr) || PF_BR(Ctx, !expect(Tok::Semi)))
        return nullptr;
      return D;
    }
    case Tok::KwReturn: {
      nextToken();
      Node *S = newNode(NodeKind::Return);
      if (PF_BR(Ctx, CurTok != Tok::Semi)) {
        Node *E = parseExpression();
        if (PF_BR(Ctx, E == nullptr))
          return nullptr;
        S->Kids.push_back(E);
      }
      if (PF_BR(Ctx, !expect(Tok::Semi)))
        return nullptr;
      return S;
    }
    case Tok::KwBreak:
      nextToken();
      if (PF_BR(Ctx, !expect(Tok::Semi)))
        return nullptr;
      return newNode(NodeKind::Break);
    case Tok::KwContinue:
      nextToken();
      if (PF_BR(Ctx, !expect(Tok::Semi)))
        return nullptr;
      return newNode(NodeKind::Continue);
    case Tok::KwThrow: {
      nextToken();
      Node *E = parseExpression();
      if (PF_BR(Ctx, E == nullptr) || PF_BR(Ctx, !expect(Tok::Semi)))
        return nullptr;
      Node *S = newNode(NodeKind::Throw);
      S->Kids.push_back(E);
      return S;
    }
    case Tok::KwTry:
      return parseTry();
    case Tok::KwSwitch:
      return parseSwitch();
    case Tok::KwWith:
      return parseWith();
    case Tok::KwFunction:
      return parseFunctionDecl();
    case Tok::KwDebugger:
      nextToken();
      if (PF_BR(Ctx, !expect(Tok::Semi)))
        return nullptr;
      return newNode(NodeKind::Debugger);
    default: {
      Node *E = parseExpression();
      if (PF_BR(Ctx, E == nullptr) || PF_BR(Ctx, !expect(Tok::Semi)))
        return nullptr;
      Node *S = newNode(NodeKind::ExprStmt);
      S->Kids.push_back(E);
      return S;
    }
    }
  }

  Node *parseBlock() {
    PF_FUNC(Ctx);
    nextToken(); // consume '{'
    Node *B = newNode(NodeKind::Block);
    while (PF_BR(Ctx, CurTok != Tok::RBrace)) {
      if (PF_BR(Ctx, CurTok == Tok::Eoi || CurTok == Tok::Error))
        return nullptr;
      Node *S = parseStatement();
      if (PF_BR(Ctx, S == nullptr))
        return nullptr;
      B->Kids.push_back(S);
    }
    nextToken(); // consume '}'
    return B;
  }

  Node *parseIf() {
    PF_FUNC(Ctx);
    nextToken();
    if (PF_BR(Ctx, !expect(Tok::LParen)))
      return nullptr;
    Node *Cond = parseExpression();
    if (PF_BR(Ctx, Cond == nullptr) || PF_BR(Ctx, !expect(Tok::RParen)))
      return nullptr;
    Node *Then = parseStatement();
    if (PF_BR(Ctx, Then == nullptr))
      return nullptr;
    Node *S = newNode(NodeKind::If);
    S->Kids = {Cond, Then};
    if (PF_BR(Ctx, CurTok == Tok::KwElse)) {
      nextToken();
      Node *Else = parseStatement();
      if (PF_BR(Ctx, Else == nullptr))
        return nullptr;
      S->Kids.push_back(Else);
    }
    return S;
  }

  Node *parseWhile() {
    PF_FUNC(Ctx);
    nextToken();
    if (PF_BR(Ctx, !expect(Tok::LParen)))
      return nullptr;
    Node *Cond = parseExpression();
    if (PF_BR(Ctx, Cond == nullptr) || PF_BR(Ctx, !expect(Tok::RParen)))
      return nullptr;
    Node *Body = parseStatement();
    if (PF_BR(Ctx, Body == nullptr))
      return nullptr;
    Node *S = newNode(NodeKind::While);
    S->Kids = {Cond, Body};
    return S;
  }

  Node *parseDoWhile() {
    PF_FUNC(Ctx);
    nextToken();
    Node *Body = parseStatement();
    if (PF_BR(Ctx, Body == nullptr))
      return nullptr;
    if (PF_BR(Ctx, CurTok != Tok::KwWhile))
      return nullptr;
    nextToken();
    if (PF_BR(Ctx, !expect(Tok::LParen)))
      return nullptr;
    Node *Cond = parseExpression();
    if (PF_BR(Ctx, Cond == nullptr) || PF_BR(Ctx, !expect(Tok::RParen)) ||
        PF_BR(Ctx, !expect(Tok::Semi)))
      return nullptr;
    Node *S = newNode(NodeKind::DoWhile);
    S->Kids = {Body, Cond};
    return S;
  }

  /// var/let/const name [= expr] (, name [= expr])*
  Node *parseVarDecl() {
    PF_FUNC(Ctx);
    nextToken(); // consume the declaration keyword
    Node *D = newNode(NodeKind::VarDecl);
    for (;;) {
      if (PF_BR(Ctx, CurTok != Tok::Ident))
        return nullptr;
      Node *Binding = newNode(NodeKind::Param);
      Binding->Name = TokWord;
      nextToken();
      if (PF_BR(Ctx, CurTok == Tok::Assign)) {
        nextToken();
        Node *Init = parseAssignment();
        if (PF_BR(Ctx, Init == nullptr))
          return nullptr;
        Binding->Kids.push_back(Init);
      }
      D->Kids.push_back(Binding);
      if (PF_BR(Ctx, CurTok == Tok::Comma)) {
        nextToken();
        continue;
      }
      return D;
    }
  }

  /// Three-form for: classic `for(init;cond;step)`, `for (x in e)`,
  /// `for (x of e)`.
  Node *parseFor() {
    PF_FUNC(Ctx);
    nextToken();
    if (PF_BR(Ctx, !expect(Tok::LParen)))
      return nullptr;
    // for-in / for-of with optional declarator.
    bool Declared = CurTok == Tok::KwVar || CurTok == Tok::KwLet;
    if (PF_BR(Ctx, Declared || CurTok == Tok::Ident)) {
      Tok LoopWord = Declared ? peekAfterDeclIdent() : peekLoopWord();
      if (PF_BR(Ctx, LoopWord == Tok::KwIn || LoopWord == Tok::KwOf)) {
        if (Declared)
          nextToken(); // consume var/let
        if (PF_BR(Ctx, CurTok != Tok::Ident))
          return nullptr;
        Node *Var = newNode(NodeKind::Ident);
        Var->Name = TokWord;
        nextToken(); // consume the identifier
        bool IsOf = CurTok == Tok::KwOf;
        nextToken(); // consume in/of
        Node *Seq = parseExpression();
        if (PF_BR(Ctx, Seq == nullptr) || PF_BR(Ctx, !expect(Tok::RParen)))
          return nullptr;
        Node *Body = parseStatement();
        if (PF_BR(Ctx, Body == nullptr))
          return nullptr;
        Node *S = newNode(NodeKind::ForIn);
        S->Num = IsOf ? 1 : 0;
        S->Kids = {Var, Seq, Body};
        return S;
      }
    }
    // Classic for.
    Node *Init = nullptr;
    if (PF_BR(Ctx, CurTok == Tok::KwVar || CurTok == Tok::KwLet ||
                        CurTok == Tok::KwConst)) {
      Init = parseVarDecl();
      if (PF_BR(Ctx, Init == nullptr))
        return nullptr;
    } else if (PF_BR(Ctx, CurTok != Tok::Semi)) {
      Init = parseExpression();
      if (PF_BR(Ctx, Init == nullptr))
        return nullptr;
    }
    if (PF_BR(Ctx, !expect(Tok::Semi)))
      return nullptr;
    Node *Cond = nullptr;
    if (PF_BR(Ctx, CurTok != Tok::Semi)) {
      Cond = parseExpression();
      if (PF_BR(Ctx, Cond == nullptr))
        return nullptr;
    }
    if (PF_BR(Ctx, !expect(Tok::Semi)))
      return nullptr;
    Node *Step = nullptr;
    if (PF_BR(Ctx, CurTok != Tok::RParen)) {
      Step = parseExpression();
      if (PF_BR(Ctx, Step == nullptr))
        return nullptr;
    }
    if (PF_BR(Ctx, !expect(Tok::RParen)))
      return nullptr;
    Node *Body = parseStatement();
    if (PF_BR(Ctx, Body == nullptr))
      return nullptr;
    Node *S = newNode(NodeKind::ForClassic);
    S->Kids = {Init ? Init : newNode(NodeKind::Empty),
               Cond ? Cond : newNode(NodeKind::Empty),
               Step ? Step : newNode(NodeKind::Empty), Body};
    return S;
  }

  /// With CurTok == Ident, returns the token after it without consuming
  /// anything (used to disambiguate for-in/for-of from classic for).
  Tok peekLoopWord() { return CurTok == Tok::Ident ? NextLoopTok() : CurTok; }

  /// With CurTok == var/let, returns the token after `var ident`.
  Tok peekAfterDeclIdent() { return NextLoopTok2(); }

  // The lexer has no pushback, so the for-header disambiguation scans the
  // raw upcoming characters without instrumentation — a hand-rolled
  // two-token lookahead buffer, like the one the original parser keeps.

  /// With CurTok == Ident (already consumed), classifies the next word.
  Tok NextLoopTok() {
    uint32_t I = Ctx.position();
    return scanForInOf(I);
  }

  /// With CurTok == var/let, classifies the word after `var ident`.
  Tok NextLoopTok2() {
    std::string_view In = Ctx.input();
    uint32_t I = Ctx.position();
    while (I < In.size() && isAsciiSpace(In[I]))
      ++I;
    if (I >= In.size() || !isIdentStart(In[I]))
      return Tok::Error;
    while (I < In.size() && isIdentBody(In[I]))
      ++I;
    return scanForInOf(I);
  }

  Tok scanForInOf(uint32_t I) {
    std::string_view In = Ctx.input();
    while (I < In.size() && isAsciiSpace(In[I]))
      ++I;
    if (I >= In.size())
      return Tok::Error;
    if (In.compare(I, 2, "in") == 0 &&
        (I + 2 >= In.size() || !isIdentBody(In[I + 2])))
      return Tok::KwIn;
    if (In.compare(I, 2, "of") == 0 &&
        (I + 2 >= In.size() || !isIdentBody(In[I + 2])))
      return Tok::KwOf;
    return Tok::Error;
  }

  Node *parseTry() {
    PF_FUNC(Ctx);
    nextToken();
    if (PF_BR(Ctx, CurTok != Tok::LBrace))
      return nullptr;
    Node *Body = parseBlock();
    if (PF_BR(Ctx, Body == nullptr))
      return nullptr;
    Node *S = newNode(NodeKind::Try);
    S->Kids.push_back(Body);
    bool SawHandler = false;
    if (PF_BR(Ctx, CurTok == Tok::KwCatch)) {
      nextToken();
      Node *Param = newNode(NodeKind::Param);
      if (PF_BR(Ctx, CurTok == Tok::LParen)) {
        nextToken();
        if (PF_BR(Ctx, CurTok != Tok::Ident))
          return nullptr;
        Param->Name = TokWord;
        nextToken();
        if (PF_BR(Ctx, !expect(Tok::RParen)))
          return nullptr;
      }
      if (PF_BR(Ctx, CurTok != Tok::LBrace))
        return nullptr;
      Node *Handler = parseBlock();
      if (PF_BR(Ctx, Handler == nullptr))
        return nullptr;
      S->Kids.push_back(Param);
      S->Kids.push_back(Handler);
      SawHandler = true;
    }
    if (PF_BR(Ctx, CurTok == Tok::KwFinally)) {
      nextToken();
      if (PF_BR(Ctx, CurTok != Tok::LBrace))
        return nullptr;
      Node *Fin = parseBlock();
      if (PF_BR(Ctx, Fin == nullptr))
        return nullptr;
      S->Kids.push_back(Fin);
      SawHandler = true;
    }
    if (PF_BR(Ctx, !SawHandler))
      return nullptr; // try requires catch or finally
    return S;
  }

  Node *parseSwitch() {
    PF_FUNC(Ctx);
    nextToken();
    if (PF_BR(Ctx, !expect(Tok::LParen)))
      return nullptr;
    Node *Disc = parseExpression();
    if (PF_BR(Ctx, Disc == nullptr) || PF_BR(Ctx, !expect(Tok::RParen)) ||
        PF_BR(Ctx, CurTok != Tok::LBrace))
      return nullptr;
    nextToken(); // consume '{'
    Node *S = newNode(NodeKind::Switch);
    S->Kids.push_back(Disc);
    bool SawDefault = false;
    while (PF_BR(Ctx, CurTok != Tok::RBrace)) {
      Node *Case = newNode(NodeKind::SwitchCase);
      if (PF_BR(Ctx, CurTok == Tok::KwCase)) {
        nextToken();
        Node *Label = parseExpression();
        if (PF_BR(Ctx, Label == nullptr))
          return nullptr;
        Case->Kids.push_back(Label);
      } else if (PF_BR(Ctx, CurTok == Tok::KwDefault)) {
        if (PF_BR(Ctx, SawDefault))
          return nullptr; // at most one default clause
        SawDefault = true;
        nextToken();
        Case->Num = 1; // marks the default clause
      } else {
        return nullptr;
      }
      if (PF_BR(Ctx, !expect(Tok::Colon)))
        return nullptr;
      while (PF_BR(Ctx, CurTok != Tok::KwCase && CurTok != Tok::KwDefault &&
                            CurTok != Tok::RBrace)) {
        if (PF_BR(Ctx, CurTok == Tok::Eoi || CurTok == Tok::Error))
          return nullptr;
        Node *Stmt = parseStatement();
        if (PF_BR(Ctx, Stmt == nullptr))
          return nullptr;
        Case->Kids.push_back(Stmt);
      }
      S->Kids.push_back(Case);
    }
    nextToken(); // consume '}'
    return S;
  }

  Node *parseWith() {
    PF_FUNC(Ctx);
    nextToken();
    if (PF_BR(Ctx, !expect(Tok::LParen)))
      return nullptr;
    Node *Obj = parseExpression();
    if (PF_BR(Ctx, Obj == nullptr) || PF_BR(Ctx, !expect(Tok::RParen)))
      return nullptr;
    Node *Body = parseStatement();
    if (PF_BR(Ctx, Body == nullptr))
      return nullptr;
    Node *S = newNode(NodeKind::With);
    S->Kids = {Obj, Body};
    return S;
  }

  Node *parseFunctionDecl() {
    PF_FUNC(Ctx);
    nextToken(); // consume "function"
    if (PF_BR(Ctx, CurTok != Tok::Ident))
      return nullptr;
    Node *S = newNode(NodeKind::FuncDecl);
    S->Name = TokWord;
    nextToken();
    if (PF_BR(Ctx, !parseFunctionRest(S)))
      return nullptr;
    return S;
  }

  /// Parses `( params ) { body }` into \p Fn: parameters first, the body
  /// block as the last child.
  bool parseFunctionRest(Node *Fn) {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, !expect(Tok::LParen)))
      return false;
    if (PF_BR(Ctx, CurTok != Tok::RParen)) {
      for (;;) {
        if (PF_BR(Ctx, CurTok != Tok::Ident))
          return false;
        Node *P = newNode(NodeKind::Param);
        P->Name = TokWord;
        Fn->Kids.push_back(P);
        nextToken();
        if (PF_BR(Ctx, CurTok == Tok::Comma)) {
          nextToken();
          continue;
        }
        break;
      }
    }
    if (PF_BR(Ctx, !expect(Tok::RParen)))
      return false;
    if (PF_BR(Ctx, CurTok != Tok::LBrace))
      return false;
    Node *Body = parseBlock();
    if (PF_BR(Ctx, Body == nullptr))
      return false;
    Fn->Kids.push_back(Body);
    return true;
  }

  //===--------------------------------------------------------------------===
  // Expression parsing (precedence climbing)
  //===--------------------------------------------------------------------===

  Node *parseExpression() {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, ++Depth > MjsDepthLimit))
      return nullptr;
    Node *E = parseAssignment();
    --Depth;
    return E;
  }

  static bool isAssignOp(Tok T) {
    switch (T) {
    case Tok::Assign:
    case Tok::PlusEq:
    case Tok::MinusEq:
    case Tok::StarEq:
    case Tok::SlashEq:
    case Tok::PercentEq:
    case Tok::AmpEq:
    case Tok::PipeEq:
    case Tok::CaretEq:
    case Tok::ShlEq:
    case Tok::ShrEq:
    case Tok::UshrEq:
      return true;
    default:
      return false;
    }
  }

  Node *parseAssignment() {
    PF_FUNC(Ctx);
    Node *Lhs = parseConditional();
    if (PF_BR(Ctx, Lhs == nullptr))
      return nullptr;
    // `ident => body` arrow function.
    if (PF_BR(Ctx, Lhs->Kind == NodeKind::Ident && CurTok == Tok::Arrow)) {
      nextToken();
      Node *Fn = newNode(NodeKind::ArrowFn);
      Node *P = newNode(NodeKind::Param);
      P->Name = Lhs->Name;
      Fn->Kids.push_back(P);
      Node *Body =
          CurTok == Tok::LBrace ? parseBlock() : parseAssignment();
      if (PF_BR(Ctx, Body == nullptr))
        return nullptr;
      Fn->Kids.push_back(Body);
      return Fn;
    }
    if (PF_BR(Ctx, isAssignOp(CurTok))) {
      bool Assignable = Lhs->Kind == NodeKind::Ident ||
                        Lhs->Kind == NodeKind::Member ||
                        Lhs->Kind == NodeKind::Index;
      if (PF_BR(Ctx, !Assignable))
        return nullptr;
      Node *A = newNode(NodeKind::AssignExpr);
      A->Op = CurTok;
      nextToken();
      Node *Rhs = parseAssignment();
      if (PF_BR(Ctx, Rhs == nullptr))
        return nullptr;
      A->Kids = {Lhs, Rhs};
      return A;
    }
    return Lhs;
  }

  Node *parseConditional() {
    PF_FUNC(Ctx);
    Node *Cond = parseBinary(0);
    if (PF_BR(Ctx, Cond == nullptr))
      return nullptr;
    if (PF_BR(Ctx, CurTok != Tok::Question))
      return Cond;
    nextToken();
    Node *Then = parseAssignment();
    if (PF_BR(Ctx, Then == nullptr) || PF_BR(Ctx, !expect(Tok::Colon)))
      return nullptr;
    Node *Else = parseAssignment();
    if (PF_BR(Ctx, Else == nullptr))
      return nullptr;
    Node *E = newNode(NodeKind::Cond);
    E->Kids = {Cond, Then, Else};
    return E;
  }

  /// Binary-operator precedence; higher binds tighter. Returns -1 for
  /// non-binary tokens.
  int precedenceOf(Tok T) {
    switch (T) {
    case Tok::PipePipe:
      return 1;
    case Tok::AmpAmp:
      return 2;
    case Tok::Pipe:
      return 3;
    case Tok::Caret:
      return 4;
    case Tok::Amp:
      return 5;
    case Tok::EqEq:
    case Tok::NotEq:
    case Tok::EqEqEq:
    case Tok::NotEqEq:
      return 6;
    case Tok::Lt:
    case Tok::Gt:
    case Tok::LtEq:
    case Tok::GtEq:
    case Tok::KwIn:
    case Tok::KwInstanceof:
      return 7;
    case Tok::Shl:
    case Tok::Shr:
    case Tok::Ushr:
      return 8;
    case Tok::Plus:
    case Tok::Minus:
      return 9;
    case Tok::Star:
    case Tok::Slash:
    case Tok::Percent:
      return 10;
    default:
      return -1;
    }
  }

  Node *parseBinary(int MinPrec) {
    PF_FUNC(Ctx);
    Node *Lhs = parseUnary();
    if (PF_BR(Ctx, Lhs == nullptr))
      return nullptr;
    for (;;) {
      int Prec = precedenceOf(CurTok);
      if (PF_BR(Ctx, Prec < 0 || Prec < MinPrec))
        return Lhs;
      Tok Op = CurTok;
      nextToken();
      Node *Rhs = parseBinary(Prec + 1);
      if (PF_BR(Ctx, Rhs == nullptr))
        return nullptr;
      Node *B = newNode(NodeKind::Binary);
      B->Op = Op;
      B->Kids = {Lhs, Rhs};
      Lhs = B;
    }
  }

  Node *parseUnary() {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, ++Depth > MjsDepthLimit))
      return nullptr;
    Node *E = parseUnaryImpl();
    --Depth;
    return E;
  }

  Node *parseUnaryImpl() {
    PF_FUNC(Ctx);
    switch (CurTok) {
    case Tok::Not:
    case Tok::Tilde:
    case Tok::Plus:
    case Tok::Minus:
    case Tok::PlusPlus:
    case Tok::MinusMinus:
    case Tok::KwTypeof:
    case Tok::KwDelete:
    case Tok::KwVoid: {
      Tok Op = CurTok;
      nextToken();
      Node *Operand = parseUnary();
      if (PF_BR(Ctx, Operand == nullptr))
        return nullptr;
      Node *U = newNode(NodeKind::Unary);
      U->Op = Op;
      U->Kids.push_back(Operand);
      return U;
    }
    case Tok::KwNew: {
      nextToken();
      Node *Target = parseUnary();
      if (PF_BR(Ctx, Target == nullptr))
        return nullptr;
      Node *N = newNode(NodeKind::NewExpr);
      N->Kids.push_back(Target);
      return N;
    }
    default:
      return parsePostfix();
    }
  }

  Node *parsePostfix() {
    PF_FUNC(Ctx);
    Node *E = parsePrimary();
    if (PF_BR(Ctx, E == nullptr))
      return nullptr;
    for (;;) {
      if (PF_BR(Ctx, CurTok == Tok::Dot)) {
        nextToken();
        // Member names may also be keywords (obj.delete is fine in mjs).
        if (PF_BR(Ctx, CurTok != Tok::Ident && !isKeywordTok(CurTok)))
          return nullptr;
        Node *M = newNode(NodeKind::Member);
        M->Name = CurTok == Tok::Ident ? TokWord : keywordWord(CurTok);
        nextToken();
        M->Kids.push_back(E);
        E = M;
        continue;
      }
      if (PF_BR(Ctx, CurTok == Tok::LBracket)) {
        nextToken();
        Node *Idx = parseExpression();
        if (PF_BR(Ctx, Idx == nullptr) || PF_BR(Ctx, !expect(Tok::RBracket)))
          return nullptr;
        Node *I = newNode(NodeKind::Index);
        I->Kids = {E, Idx};
        E = I;
        continue;
      }
      if (PF_BR(Ctx, CurTok == Tok::LParen)) {
        nextToken();
        Node *C = newNode(NodeKind::Call);
        C->Kids.push_back(E);
        if (PF_BR(Ctx, CurTok != Tok::RParen)) {
          for (;;) {
            Node *Arg = parseAssignment();
            if (PF_BR(Ctx, Arg == nullptr))
              return nullptr;
            C->Kids.push_back(Arg);
            if (PF_BR(Ctx, CurTok == Tok::Comma)) {
              nextToken();
              continue;
            }
            break;
          }
        }
        if (PF_BR(Ctx, !expect(Tok::RParen)))
          return nullptr;
        E = C;
        continue;
      }
      if (PF_BR(Ctx, CurTok == Tok::PlusPlus || CurTok == Tok::MinusMinus)) {
        Node *P = newNode(NodeKind::Postfix);
        P->Op = CurTok;
        P->Kids.push_back(E);
        nextToken();
        E = P;
        continue;
      }
      return E;
    }
  }

  static bool isKeywordTok(Tok T) {
    return T >= Tok::KwIf && T <= Tok::KwInstanceof;
  }

  /// Reconstructs the spelled word of a keyword used as a member name.
  /// The taint is lost here, mirroring a real lexer that returns an enum.
  TString keywordWord(Tok T) {
    static const char *const Words[] = {
        "if",     "in",      "do",       "of",       "for",      "let",
        "new",    "var",     "try",      "true",     "null",     "void",
        "with",   "else",    "this",     "case",     "false",    "throw",
        "while",  "break",   "catch",    "const",    "return",   "delete",
        "typeof", "switch",  "default",  "finally",  "continue", "function",
        "debugger", "instanceof"};
    TString W;
    int Index = static_cast<int>(T) - static_cast<int>(Tok::KwIf);
    for (const char *P = Words[Index]; *P; ++P)
      W.appendLiteral(*P);
    return W;
  }

  Node *parsePrimary() {
    PF_FUNC(Ctx);
    switch (CurTok) {
    case Tok::Number: {
      Node *N = newNode(NodeKind::NumberLit);
      N->Num = TokNumber;
      nextToken();
      return N;
    }
    case Tok::String: {
      Node *N = newNode(NodeKind::StringLit);
      N->Str = TokString;
      nextToken();
      return N;
    }
    case Tok::Ident: {
      Node *N = newNode(NodeKind::Ident);
      N->Name = TokWord;
      nextToken();
      return N;
    }
    case Tok::KwTrue: {
      Node *N = newNode(NodeKind::BoolLit);
      N->Num = 1;
      nextToken();
      return N;
    }
    case Tok::KwFalse: {
      Node *N = newNode(NodeKind::BoolLit);
      N->Num = 0;
      nextToken();
      return N;
    }
    case Tok::KwNull:
      nextToken();
      return newNode(NodeKind::NullLit);
    case Tok::KwThis:
      nextToken();
      return newNode(NodeKind::ThisExpr);
    case Tok::LParen: {
      nextToken();
      Node *E = parseExpression();
      if (PF_BR(Ctx, E == nullptr) || PF_BR(Ctx, !expect(Tok::RParen)))
        return nullptr;
      return E;
    }
    case Tok::LBracket: {
      nextToken();
      Node *A = newNode(NodeKind::ArrayLit);
      if (PF_BR(Ctx, CurTok != Tok::RBracket)) {
        for (;;) {
          Node *E = parseAssignment();
          if (PF_BR(Ctx, E == nullptr))
            return nullptr;
          A->Kids.push_back(E);
          if (PF_BR(Ctx, CurTok == Tok::Comma)) {
            nextToken();
            continue;
          }
          break;
        }
      }
      if (PF_BR(Ctx, !expect(Tok::RBracket)))
        return nullptr;
      return A;
    }
    case Tok::LBrace: {
      // Object literal (only reachable in expression position).
      nextToken();
      Node *O = newNode(NodeKind::ObjectLit);
      if (PF_BR(Ctx, CurTok != Tok::RBrace)) {
        for (;;) {
          Node *P = newNode(NodeKind::ObjectProp);
          if (PF_BR(Ctx, CurTok == Tok::Ident)) {
            P->Name = TokWord;
            nextToken();
          } else if (PF_BR(Ctx, CurTok == Tok::String)) {
            for (char C : TokString)
              P->Name.appendLiteral(C);
            nextToken();
          } else {
            return nullptr;
          }
          if (PF_BR(Ctx, !expect(Tok::Colon)))
            return nullptr;
          Node *V = parseAssignment();
          if (PF_BR(Ctx, V == nullptr))
            return nullptr;
          P->Kids.push_back(V);
          O->Kids.push_back(P);
          if (PF_BR(Ctx, CurTok == Tok::Comma)) {
            nextToken();
            continue;
          }
          break;
        }
      }
      if (PF_BR(Ctx, !expect(Tok::RBrace)))
        return nullptr;
      return O;
    }
    case Tok::KwFunction: {
      nextToken();
      Node *Fn = newNode(NodeKind::FuncExpr);
      if (PF_BR(Ctx, CurTok == Tok::Ident)) {
        Fn->Name = TokWord;
        nextToken();
      }
      if (PF_BR(Ctx, !parseFunctionRest(Fn)))
        return nullptr;
      return Fn;
    }
    default:
      return nullptr;
    }
  }

  //===--------------------------------------------------------------------===
  // Evaluator — semantic checking disabled: unknown names read as
  // undefined, operators coerce freely; only reachable on valid programs.
  //===--------------------------------------------------------------------===

  using Scope = std::map<std::string, JsValue>;

  void execProgram(const std::vector<Node *> &Stmts) {
    PF_FUNC(Ctx);
    Steps = 0;
    Scopes.clear();
    Scopes.emplace_back(); // global scope
    for (Node *S : Stmts) {
      ExecResult R = execStatement(S);
      if (PF_BR(Ctx, R.Kind == Completion::Throw))
        return; // uncaught exception terminates the program (exit stays 0:
                // the input parsed; semantic checking is out of scope)
      if (PF_BR(Ctx, Steps > MjsStepLimit))
        return;
    }
  }

  bool outOfBudget() { return ++Steps > MjsStepLimit || EvalDepth > 400; }

  ExecResult execStatement(Node *S) {
    PF_FUNC(Ctx);
    ExecResult R;
    if (PF_BR(Ctx, outOfBudget()))
      return R;
    ++EvalDepth;
    R = execStatementImpl(S);
    --EvalDepth;
    return R;
  }

  ExecResult execStatementImpl(Node *S) {
    PF_FUNC(Ctx);
    ExecResult R;
    switch (S->Kind) {
    case NodeKind::Empty:
    case NodeKind::Debugger:
      return R;
    case NodeKind::Block:
      for (Node *Kid : S->Kids) {
        R = execStatement(Kid);
        if (PF_BR(Ctx, R.Kind != Completion::Normal))
          return R;
      }
      return R;
    case NodeKind::VarDecl:
      for (Node *Binding : S->Kids) {
        JsValue V = Binding->Kids.empty() ? JsValue::undef()
                                          : evalExpr(Binding->Kids[0]);
        setVar(Binding->Name.str(), V);
      }
      return R;
    case NodeKind::ExprStmt:
      evalExpr(S->Kids[0]);
      return R;
    case NodeKind::If:
      if (PF_BR(Ctx, truthy(evalExpr(S->Kids[0]))))
        return execStatement(S->Kids[1]);
      if (PF_BR(Ctx, S->Kids.size() > 2))
        return execStatement(S->Kids[2]);
      return R;
    case NodeKind::While:
      while (PF_BR(Ctx, truthy(evalExpr(S->Kids[0])))) {
        if (PF_BR(Ctx, Steps > MjsStepLimit))
          return R;
        ExecResult Body = execStatement(S->Kids[1]);
        if (PF_BR(Ctx, Body.Kind == Completion::Break))
          return R;
        if (PF_BR(Ctx, Body.Kind == Completion::Return ||
                           Body.Kind == Completion::Throw))
          return Body;
      }
      return R;
    case NodeKind::DoWhile:
      do {
        if (PF_BR(Ctx, Steps > MjsStepLimit))
          return R;
        ExecResult Body = execStatement(S->Kids[0]);
        if (PF_BR(Ctx, Body.Kind == Completion::Break))
          return R;
        if (PF_BR(Ctx, Body.Kind == Completion::Return ||
                           Body.Kind == Completion::Throw))
          return Body;
      } while (PF_BR(Ctx, truthy(evalExpr(S->Kids[1]))));
      return R;
    case NodeKind::ForClassic: {
      Node *Init = S->Kids[0];
      if (PF_BR(Ctx, Init->Kind == NodeKind::VarDecl))
        execStatement(Init);
      else if (PF_BR(Ctx, Init->Kind != NodeKind::Empty))
        evalExpr(Init);
      for (;;) {
        if (PF_BR(Ctx, Steps > MjsStepLimit))
          return R;
        if (PF_BR(Ctx, S->Kids[1]->Kind != NodeKind::Empty &&
                           !truthy(evalExpr(S->Kids[1]))))
          return R;
        ExecResult Body = execStatement(S->Kids[3]);
        if (PF_BR(Ctx, Body.Kind == Completion::Break))
          return R;
        if (PF_BR(Ctx, Body.Kind == Completion::Return ||
                           Body.Kind == Completion::Throw))
          return Body;
        if (PF_BR(Ctx, S->Kids[2]->Kind != NodeKind::Empty))
          evalExpr(S->Kids[2]);
        ++Steps;
      }
    }
    case NodeKind::ForIn: {
      JsValue Seq = evalExpr(S->Kids[1]);
      std::vector<JsValue> Items = enumerate(Seq, /*Values=*/S->Num != 0);
      for (JsValue &Item : Items) {
        if (PF_BR(Ctx, Steps > MjsStepLimit))
          return R;
        setVar(S->Kids[0]->Name.str(), Item);
        ExecResult Body = execStatement(S->Kids[2]);
        if (PF_BR(Ctx, Body.Kind == Completion::Break))
          return R;
        if (PF_BR(Ctx, Body.Kind == Completion::Return ||
                           Body.Kind == Completion::Throw))
          return Body;
      }
      return R;
    }
    case NodeKind::Return:
      R.Kind = Completion::Return;
      if (PF_BR(Ctx, !S->Kids.empty()))
        R.Value = evalExpr(S->Kids[0]);
      return R;
    case NodeKind::Break:
      R.Kind = Completion::Break;
      return R;
    case NodeKind::Continue:
      R.Kind = Completion::Continue;
      return R;
    case NodeKind::Throw:
      R.Kind = Completion::Throw;
      R.Value = evalExpr(S->Kids[0]);
      return R;
    case NodeKind::Try: {
      ExecResult Body = execStatement(S->Kids[0]);
      size_t Next = 1;
      if (PF_BR(Ctx, S->Kids.size() > 2 &&
                         S->Kids[1]->Kind == NodeKind::Param &&
                         S->Kids[2]->Kind == NodeKind::Block)) {
        // catch clause present
        if (PF_BR(Ctx, Body.Kind == Completion::Throw)) {
          if (!S->Kids[1]->Name.empty())
            setVar(S->Kids[1]->Name.str(), Body.Value);
          Body = execStatement(S->Kids[2]);
        }
        Next = 3;
      }
      if (PF_BR(Ctx, Next < S->Kids.size())) {
        ExecResult Fin = execStatement(S->Kids[Next]);
        if (PF_BR(Ctx, Fin.Kind != Completion::Normal))
          return Fin;
      }
      if (PF_BR(Ctx, Body.Kind == Completion::Throw))
        return ExecResult(); // swallowed by try without rethrow semantics
      return Body;
    }
    case NodeKind::Switch: {
      JsValue Disc = evalExpr(S->Kids[0]);
      bool Matched = false;
      for (size_t I = 1, E = S->Kids.size(); I != E; ++I) {
        Node *Case = S->Kids[I];
        size_t FirstStmt = Case->Num != 0 ? 0 : 1;
        if (PF_BR(Ctx, !Matched)) {
          if (PF_BR(Ctx, Case->Num != 0))
            Matched = true; // default clause
          else if (PF_BR(Ctx, strictEquals(Disc, evalExpr(Case->Kids[0]))))
            Matched = true;
        }
        if (PF_BR(Ctx, !Matched))
          continue;
        for (size_t K = FirstStmt, KE = Case->Kids.size(); K != KE; ++K) {
          ExecResult Res = execStatement(Case->Kids[K]);
          if (PF_BR(Ctx, Res.Kind == Completion::Break))
            return R;
          if (PF_BR(Ctx, Res.Kind != Completion::Normal))
            return Res;
        }
      }
      return R;
    }
    case NodeKind::With: {
      // Scoping through the object is a semantic feature; we evaluate the
      // object and the body in the current scope.
      evalExpr(S->Kids[0]);
      return execStatement(S->Kids[1]);
    }
    case NodeKind::FuncDecl: {
      JsValue Fn;
      Fn.Ty = JsValue::Type::Function;
      Fn.Fn = S;
      setVar(S->Name.str(), Fn);
      return R;
    }
    default:
      // Expression node in statement position cannot happen post-parse.
      return R;
    }
  }

  //===--------------------------------------------------------------------===
  // Expression evaluation
  //===--------------------------------------------------------------------===

  JsValue evalExpr(Node *E) {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, outOfBudget()))
      return JsValue::undef();
    ++EvalDepth;
    JsValue V = evalExprImpl(E);
    --EvalDepth;
    return V;
  }

  JsValue evalExprImpl(Node *E);

  /// Builtin member-name ids, resolved via wrapped strcmp chains.
  enum BuiltinMember {
    BmLength,
    BmPush,
    BmPop,
    BmShift,
    BmSlice,
    BmSplit,
    BmMap,
    BmCharAt,
    BmIndexOf,
    BmStringify,
    BmUnknown,
  };

  /// Resolves \p Name against the builtin member table. The comparisons go
  /// through the wrapped strcmp, so the taints of the member name flow
  /// into the events — this is how pFuzzer synthesises indexOf, stringify
  /// and friends (Table 4).
  int resolveMember(const TString &Name) {
    PF_FUNC(Ctx);
    if (PF_IF_STR(Ctx, Name, "length"))
      return BmLength;
    if (PF_IF_STR(Ctx, Name, "push"))
      return BmPush;
    if (PF_IF_STR(Ctx, Name, "pop"))
      return BmPop;
    if (PF_IF_STR(Ctx, Name, "shift"))
      return BmShift;
    if (PF_IF_STR(Ctx, Name, "slice"))
      return BmSlice;
    if (PF_IF_STR(Ctx, Name, "split"))
      return BmSplit;
    if (PF_IF_STR(Ctx, Name, "map"))
      return BmMap;
    if (PF_IF_STR(Ctx, Name, "charAt"))
      return BmCharAt;
    if (PF_IF_STR(Ctx, Name, "indexOf"))
      return BmIndexOf;
    if (PF_IF_STR(Ctx, Name, "stringify"))
      return BmStringify;
    return BmUnknown;
  }

  JsValue lookupGlobal(const TString &Name, bool &Known);
  JsValue memberOf(const JsValue &Base, const TString &Name);
  JsValue callFunction(const JsValue &Callee, const JsValue &ThisVal,
                       std::vector<JsValue> &Args);
  JsValue callBuiltin(int Builtin, const JsValue &ThisVal,
                      std::vector<JsValue> &Args);
  JsValue evalBinary(Tok Op, Node *LhsNode, Node *RhsNode);
  JsValue applyArith(Tok Op, const JsValue &L, const JsValue &R);
  bool looseEquals(const JsValue &A, const JsValue &B);
  std::string jsonStringify(const JsValue &V);

  std::vector<JsValue> enumerate(const JsValue &Seq, bool Values) {
    std::vector<JsValue> Items;
    if (Seq.Ty == JsValue::Type::Object && Seq.Obj) {
      if (Seq.Obj->IsArray) {
        for (size_t I = 0, E = Seq.Obj->Elems.size(); I != E; ++I)
          Items.push_back(Values ? Seq.Obj->Elems[I]
                                 : JsValue::number(static_cast<double>(I)));
      } else {
        for (const auto &[Key, Val] : Seq.Obj->Props)
          Items.push_back(Values ? Val : JsValue::string(Key));
      }
    } else if (Seq.Ty == JsValue::Type::String && Values) {
      for (char C : Seq.Str)
        Items.push_back(JsValue::string(std::string(1, C)));
    }
    return Items;
  }

  bool truthy(const JsValue &V) {
    switch (V.Ty) {
    case JsValue::Type::Undefined:
    case JsValue::Type::Null:
      return false;
    case JsValue::Type::Boolean:
      return V.Bool;
    case JsValue::Type::Number:
      return V.Num != 0 && V.Num == V.Num;
    case JsValue::Type::String:
      return !V.Str.empty();
    default:
      return true;
    }
  }

  double toNumber(const JsValue &V) {
    switch (V.Ty) {
    case JsValue::Type::Number:
      return V.Num;
    case JsValue::Type::Boolean:
      return V.Bool ? 1 : 0;
    case JsValue::Type::String: {
      char *End = nullptr;
      double D = std::strtod(V.Str.c_str(), &End);
      if (End == V.Str.c_str() && !V.Str.empty())
        return std::numeric_limits<double>::quiet_NaN();
      return D;
    }
    case JsValue::Type::Null:
      return 0;
    default:
      return std::numeric_limits<double>::quiet_NaN();
    }
  }

  std::string toStringValue(const JsValue &V);

  bool strictEquals(const JsValue &A, const JsValue &B) {
    if (A.Ty != B.Ty)
      return false;
    switch (A.Ty) {
    case JsValue::Type::Undefined:
    case JsValue::Type::Null:
      return true;
    case JsValue::Type::Boolean:
      return A.Bool == B.Bool;
    case JsValue::Type::Number:
      return A.Num == B.Num;
    case JsValue::Type::String:
      return A.Str == B.Str;
    case JsValue::Type::Object:
    case JsValue::Type::Array:
      return A.Obj == B.Obj;
    case JsValue::Type::Function:
      return A.Fn == B.Fn && A.Builtin == B.Builtin;
    }
    return false;
  }

  JsValue *findVar(const std::string &Name) {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  void setVar(const std::string &Name, const JsValue &V) {
    if (JsValue *Existing = findVar(Name)) {
      *Existing = V;
      return;
    }
    Scopes.back()[Name] = V;
  }

  JsValue evalAssignTo(Node *Lhs, const JsValue &V);

  ExecutionContext &Ctx;
  bool Semantic = false;
  bool SemanticError = false;
  Tok CurTok = Tok::Eoi;
  double TokNumber = 0;
  std::string TokString;
  TString TokWord;
  std::deque<Node> Arena;
  uint32_t Depth = 0;
  uint64_t Steps = 0;
  uint32_t EvalDepth = 0;
  std::vector<Scope> Scopes;
  /// Per-run object arena; owns every JsObject the evaluator creates.
  std::deque<JsObject> ObjectArena;

  JsObject *newObject() {
    ObjectArena.emplace_back();
    return &ObjectArena.back();
  }
};

//===----------------------------------------------------------------------===
// Evaluator implementation
//===----------------------------------------------------------------------===

static int32_t toInt32(double D) {
  if (D != D || D == std::numeric_limits<double>::infinity() ||
      D == -std::numeric_limits<double>::infinity())
    return 0;
  return static_cast<int32_t>(static_cast<int64_t>(D));
}

std::string Mjs::toStringValue(const JsValue &V) {
  switch (V.Ty) {
  case JsValue::Type::Undefined:
    return "undefined";
  case JsValue::Type::Null:
    return "null";
  case JsValue::Type::Boolean:
    return V.Bool ? "true" : "false";
  case JsValue::Type::Number: {
    if (V.Num != V.Num)
      return "NaN";
    if (V.Num == static_cast<double>(static_cast<int64_t>(V.Num))) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(V.Num));
      return Buf;
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", V.Num);
    return Buf;
  }
  case JsValue::Type::String:
    return V.Str;
  case JsValue::Type::Function:
    return "[function]";
  case JsValue::Type::Object:
  case JsValue::Type::Array:
    if (V.Obj && V.Obj->IsArray) {
      std::string Out;
      for (size_t I = 0, E = V.Obj->Elems.size(); I != E; ++I) {
        if (I != 0)
          Out += ",";
        Out += toStringValue(V.Obj->Elems[I]);
      }
      return Out;
    }
    return "[object Object]";
  }
  return "";
}

/// Resolves an unbound identifier against the global table — tracked
/// strcmps, so pFuzzer can synthesise Object/JSON/NaN/undefined.
JsValue Mjs::lookupGlobal(const TString &Name, bool &Known) {
  PF_FUNC(Ctx);
  Known = true;
  if (PF_IF_STR(Ctx, Name, "undefined"))
    return JsValue::undef();
  if (PF_IF_STR(Ctx, Name, "NaN"))
    return JsValue::number(std::numeric_limits<double>::quiet_NaN());
  if (PF_IF_STR(Ctx, Name, "Object")) {
    JsValue V;
    V.Ty = JsValue::Type::Object;
    V.Obj = newObject();
    return V;
  }
  if (PF_IF_STR(Ctx, Name, "JSON")) {
    JsValue V;
    V.Ty = JsValue::Type::Object;
    V.Obj = newObject();
    return V;
  }
  Known = false; // without semantic checking, unknown reads are fine
  return JsValue::undef();
}

JsValue Mjs::memberOf(const JsValue &Base, const TString &Name) {
  PF_FUNC(Ctx);
  int Bm = resolveMember(Name);
  if (PF_BR(Ctx, Bm == BmLength)) {
    if (PF_BR(Ctx, Base.Ty == JsValue::Type::String))
      return JsValue::number(static_cast<double>(Base.Str.size()));
    if (PF_BR(Ctx, Base.Obj && Base.Obj->IsArray))
      return JsValue::number(static_cast<double>(Base.Obj->Elems.size()));
    return JsValue::undef();
  }
  if (PF_BR(Ctx, Bm != BmUnknown)) {
    JsValue Fn;
    Fn.Ty = JsValue::Type::Function;
    Fn.Builtin = Bm;
    return Fn;
  }
  if (PF_BR(Ctx, Base.Ty == JsValue::Type::Object && Base.Obj != nullptr)) {
    auto It = Base.Obj->Props.find(Name.str());
    if (PF_BR(Ctx, It != Base.Obj->Props.end()))
      return It->second;
  }
  return JsValue::undef();
}

JsValue Mjs::callBuiltin(int Builtin, const JsValue &ThisVal,
                         std::vector<JsValue> &Args) {
  PF_FUNC(Ctx);
  switch (Builtin) {
  case BmPush:
    if (PF_BR(Ctx, ThisVal.Obj && ThisVal.Obj->IsArray)) {
      for (JsValue &A : Args)
        ThisVal.Obj->Elems.push_back(A);
      return JsValue::number(
          static_cast<double>(ThisVal.Obj->Elems.size()));
    }
    return JsValue::undef();
  case BmPop:
    if (PF_BR(Ctx, ThisVal.Obj && ThisVal.Obj->IsArray &&
                       !ThisVal.Obj->Elems.empty())) {
      JsValue Last = ThisVal.Obj->Elems.back();
      ThisVal.Obj->Elems.pop_back();
      return Last;
    }
    return JsValue::undef();
  case BmShift:
    if (PF_BR(Ctx, ThisVal.Obj && ThisVal.Obj->IsArray &&
                       !ThisVal.Obj->Elems.empty())) {
      JsValue First = ThisVal.Obj->Elems.front();
      ThisVal.Obj->Elems.erase(ThisVal.Obj->Elems.begin());
      return First;
    }
    return JsValue::undef();
  case BmSlice: {
    double Start = Args.empty() ? 0 : toNumber(Args[0]);
    if (PF_BR(Ctx, ThisVal.Ty == JsValue::Type::String)) {
      size_t From = Start < 0 ? 0 : static_cast<size_t>(Start);
      if (From > ThisVal.Str.size())
        From = ThisVal.Str.size();
      return JsValue::string(ThisVal.Str.substr(From));
    }
    if (PF_BR(Ctx, ThisVal.Obj && ThisVal.Obj->IsArray)) {
      JsValue Out;
      Out.Ty = JsValue::Type::Object;
      Out.Obj = newObject();
      Out.Obj->IsArray = true;
      size_t From = Start < 0 ? 0 : static_cast<size_t>(Start);
      for (size_t I = From, E = ThisVal.Obj->Elems.size(); I < E; ++I)
        Out.Obj->Elems.push_back(ThisVal.Obj->Elems[I]);
      return Out;
    }
    return JsValue::undef();
  }
  case BmSplit:
    if (PF_BR(Ctx, ThisVal.Ty == JsValue::Type::String)) {
      std::string Sep = Args.empty() ? "" : toStringValue(Args[0]);
      JsValue Out;
      Out.Ty = JsValue::Type::Object;
      Out.Obj = newObject();
      Out.Obj->IsArray = true;
      if (PF_BR(Ctx, Sep.empty())) {
        for (char C : ThisVal.Str)
          Out.Obj->Elems.push_back(JsValue::string(std::string(1, C)));
        return Out;
      }
      size_t Pos = 0;
      for (;;) {
        size_t Next = ThisVal.Str.find(Sep, Pos);
        if (Next == std::string::npos)
          break;
        Out.Obj->Elems.push_back(
            JsValue::string(ThisVal.Str.substr(Pos, Next - Pos)));
        Pos = Next + Sep.size();
      }
      Out.Obj->Elems.push_back(JsValue::string(ThisVal.Str.substr(Pos)));
      return Out;
    }
    return JsValue::undef();
  case BmMap:
    if (PF_BR(Ctx, ThisVal.Obj && ThisVal.Obj->IsArray && !Args.empty())) {
      JsValue Out;
      Out.Ty = JsValue::Type::Object;
      Out.Obj = newObject();
      Out.Obj->IsArray = true;
      for (JsValue &Elem : ThisVal.Obj->Elems) {
        std::vector<JsValue> CallArgs = {Elem};
        Out.Obj->Elems.push_back(
            callFunction(Args[0], JsValue::undef(), CallArgs));
        if (PF_BR(Ctx, Steps > MjsStepLimit))
          break;
      }
      return Out;
    }
    return JsValue::undef();
  case BmCharAt:
    if (PF_BR(Ctx, ThisVal.Ty == JsValue::Type::String)) {
      double Idx = Args.empty() ? 0 : toNumber(Args[0]);
      if (PF_BR(Ctx, Idx >= 0 && Idx < ThisVal.Str.size()))
        return JsValue::string(
            std::string(1, ThisVal.Str[static_cast<size_t>(Idx)]));
      return JsValue::string("");
    }
    return JsValue::undef();
  case BmIndexOf: {
    if (PF_BR(Ctx, ThisVal.Ty == JsValue::Type::String)) {
      std::string Needle = Args.empty() ? "" : toStringValue(Args[0]);
      size_t Pos = ThisVal.Str.find(Needle);
      return JsValue::number(
          Pos == std::string::npos ? -1 : static_cast<double>(Pos));
    }
    if (PF_BR(Ctx, ThisVal.Obj && ThisVal.Obj->IsArray && !Args.empty())) {
      for (size_t I = 0, E = ThisVal.Obj->Elems.size(); I != E; ++I)
        if (strictEquals(ThisVal.Obj->Elems[I], Args[0]))
          return JsValue::number(static_cast<double>(I));
      return JsValue::number(-1);
    }
    return JsValue::number(-1);
  }
  case BmStringify:
    if (PF_BR(Ctx, !Args.empty()))
      return JsValue::string(jsonStringify(Args[0]));
    return JsValue::undef();
  default:
    return JsValue::undef();
  }
}

/// Minimal JSON.stringify used by the BmStringify builtin.
std::string Mjs::jsonStringify(const JsValue &V) {
  switch (V.Ty) {
  case JsValue::Type::Undefined:
  case JsValue::Type::Function:
    return "null";
  case JsValue::Type::Null:
    return "null";
  case JsValue::Type::Boolean:
    return V.Bool ? "true" : "false";
  case JsValue::Type::Number:
    return toStringValue(V);
  case JsValue::Type::String:
    return "\"" + V.Str + "\"";
  case JsValue::Type::Object:
  case JsValue::Type::Array: {
    if (!V.Obj)
      return "null";
    std::string Out;
    if (V.Obj->IsArray) {
      Out = "[";
      for (size_t I = 0, E = V.Obj->Elems.size(); I != E; ++I) {
        if (I != 0)
          Out += ",";
        Out += jsonStringify(V.Obj->Elems[I]);
      }
      return Out + "]";
    }
    Out = "{";
    bool FirstProp = true;
    for (const auto &[Key, Val] : V.Obj->Props) {
      if (!FirstProp)
        Out += ",";
      FirstProp = false;
      Out += "\"" + Key + "\":" + jsonStringify(Val);
    }
    return Out + "}";
  }
  }
  return "null";
}

JsValue Mjs::callFunction(const JsValue &Callee, const JsValue &ThisVal,
                          std::vector<JsValue> &Args) {
  PF_FUNC(Ctx);
  if (PF_BR(Ctx, Callee.Ty != JsValue::Type::Function))
    return JsValue::undef(); // calling a non-function: undefined, not error
  if (PF_BR(Ctx, Callee.Builtin >= 0))
    return callBuiltin(Callee.Builtin, ThisVal, Args);
  const Node *Fn = Callee.Fn;
  if (PF_BR(Ctx, Fn == nullptr))
    return JsValue::undef();
  if (PF_BR(Ctx, outOfBudget()))
    return JsValue::undef();
  // Bind parameters (all children except the trailing body).
  Scopes.emplace_back();
  size_t NumParams = Fn->Kids.size() - 1;
  for (size_t I = 0; I != NumParams; ++I)
    Scopes.back()[Fn->Kids[I]->Name.str()] =
        I < Args.size() ? Args[I] : JsValue::undef();
  Node *Body = Fn->Kids.back();
  JsValue Ret;
  if (PF_BR(Ctx, Body->Kind == NodeKind::Block)) {
    ExecResult R = execStatement(Body);
    if (PF_BR(Ctx, R.Kind == Completion::Return))
      Ret = R.Value;
  } else {
    Ret = evalExpr(Body); // arrow function with expression body
  }
  Scopes.pop_back();
  return Ret;
}

JsValue Mjs::evalAssignTo(Node *Lhs, const JsValue &V) {
  PF_FUNC(Ctx);
  if (PF_BR(Ctx, Lhs->Kind == NodeKind::Ident)) {
    setVar(Lhs->Name.str(), V);
    return V;
  }
  if (PF_BR(Ctx, Lhs->Kind == NodeKind::Member)) {
    JsValue Base = evalExpr(Lhs->Kids[0]);
    if (PF_BR(Ctx, Base.Ty == JsValue::Type::Object && Base.Obj != nullptr))
      Base.Obj->Props[Lhs->Name.str()] = V;
    return V;
  }
  if (PF_BR(Ctx, Lhs->Kind == NodeKind::Index)) {
    JsValue Base = evalExpr(Lhs->Kids[0]);
    JsValue Idx = evalExpr(Lhs->Kids[1]);
    if (PF_BR(Ctx, Base.Obj && Base.Obj->IsArray)) {
      double N = toNumber(Idx);
      if (PF_BR(Ctx, N >= 0 && N < 4096)) {
        size_t I = static_cast<size_t>(N);
        if (I >= Base.Obj->Elems.size())
          Base.Obj->Elems.resize(I + 1);
        Base.Obj->Elems[I] = V;
      }
    } else if (PF_BR(Ctx, Base.Ty == JsValue::Type::Object &&
                             Base.Obj != nullptr)) {
      Base.Obj->Props[toStringValue(Idx)] = V;
    }
    return V;
  }
  return V;
}

JsValue Mjs::evalBinary(Tok Op, Node *LhsNode, Node *RhsNode) {
  PF_FUNC(Ctx);
  // Short-circuit operators evaluate the RHS lazily.
  if (PF_BR(Ctx, Op == Tok::AmpAmp)) {
    JsValue L = evalExpr(LhsNode);
    if (PF_BR(Ctx, !truthy(L)))
      return L;
    return evalExpr(RhsNode);
  }
  if (PF_BR(Ctx, Op == Tok::PipePipe)) {
    JsValue L = evalExpr(LhsNode);
    if (PF_BR(Ctx, truthy(L)))
      return L;
    return evalExpr(RhsNode);
  }
  JsValue L = evalExpr(LhsNode);
  JsValue R = evalExpr(RhsNode);
  switch (Op) {
  case Tok::Plus:
    if (PF_BR(Ctx, L.Ty == JsValue::Type::String ||
                       R.Ty == JsValue::Type::String))
      return JsValue::string(toStringValue(L) + toStringValue(R));
    return JsValue::number(toNumber(L) + toNumber(R));
  case Tok::Minus:
    return JsValue::number(toNumber(L) - toNumber(R));
  case Tok::Star:
    return JsValue::number(toNumber(L) * toNumber(R));
  case Tok::Slash:
    return JsValue::number(toNumber(L) / toNumber(R));
  case Tok::Percent: {
    double A = toNumber(L), B = toNumber(R);
    if (PF_BR(Ctx, B == 0 || B != B || A != A))
      return JsValue::number(std::numeric_limits<double>::quiet_NaN());
    return JsValue::number(A - B * static_cast<int64_t>(A / B));
  }
  case Tok::Lt:
  case Tok::Gt:
  case Tok::LtEq:
  case Tok::GtEq: {
    if (PF_BR(Ctx, L.Ty == JsValue::Type::String &&
                       R.Ty == JsValue::Type::String)) {
      int Cmp = L.Str.compare(R.Str);
      return JsValue::boolean(Op == Tok::Lt     ? Cmp < 0
                              : Op == Tok::Gt   ? Cmp > 0
                              : Op == Tok::LtEq ? Cmp <= 0
                                                : Cmp >= 0);
    }
    double A = toNumber(L), B = toNumber(R);
    if (PF_BR(Ctx, A != A || B != B))
      return JsValue::boolean(false);
    return JsValue::boolean(Op == Tok::Lt     ? A < B
                            : Op == Tok::Gt   ? A > B
                            : Op == Tok::LtEq ? A <= B
                                              : A >= B);
  }
  case Tok::EqEq:
  case Tok::NotEq: {
    bool Eq = looseEquals(L, R);
    return JsValue::boolean(Op == Tok::EqEq ? Eq : !Eq);
  }
  case Tok::EqEqEq:
    return JsValue::boolean(strictEquals(L, R));
  case Tok::NotEqEq:
    return JsValue::boolean(!strictEquals(L, R));
  case Tok::Amp:
    return JsValue::number(toInt32(toNumber(L)) & toInt32(toNumber(R)));
  case Tok::Pipe:
    return JsValue::number(toInt32(toNumber(L)) | toInt32(toNumber(R)));
  case Tok::Caret:
    return JsValue::number(toInt32(toNumber(L)) ^ toInt32(toNumber(R)));
  case Tok::Shl:
    return JsValue::number(toInt32(toNumber(L))
                           << (toInt32(toNumber(R)) & 31));
  case Tok::Shr:
    return JsValue::number(toInt32(toNumber(L)) >>
                           (toInt32(toNumber(R)) & 31));
  case Tok::Ushr:
    return JsValue::number(static_cast<uint32_t>(toInt32(toNumber(L))) >>
                           (toInt32(toNumber(R)) & 31));
  case Tok::KwIn:
    if (PF_BR(Ctx, R.Ty == JsValue::Type::Object && R.Obj != nullptr)) {
      if (PF_BR(Ctx, R.Obj->IsArray)) {
        double N = toNumber(L);
        return JsValue::boolean(N >= 0 && N < R.Obj->Elems.size());
      }
      return JsValue::boolean(R.Obj->Props.count(toStringValue(L)) != 0);
    }
    return JsValue::boolean(false);
  case Tok::KwInstanceof:
    // No prototype chains: everything is an instance of nothing.
    return JsValue::boolean(false);
  default:
    return JsValue::undef();
  }
}

bool Mjs::looseEquals(const JsValue &A, const JsValue &B) {
  if (A.Ty == B.Ty)
    return strictEquals(A, B);
  bool ANullish =
      A.Ty == JsValue::Type::Undefined || A.Ty == JsValue::Type::Null;
  bool BNullish =
      B.Ty == JsValue::Type::Undefined || B.Ty == JsValue::Type::Null;
  if (ANullish || BNullish)
    return ANullish && BNullish;
  return toNumber(A) == toNumber(B);
}

JsValue Mjs::evalExprImpl(Node *E) {
  PF_FUNC(Ctx);
  switch (E->Kind) {
  case NodeKind::NumberLit:
    return JsValue::number(E->Num);
  case NodeKind::StringLit:
    return JsValue::string(E->Str);
  case NodeKind::BoolLit:
    return JsValue::boolean(E->Num != 0);
  case NodeKind::NullLit:
    return JsValue::null();
  case NodeKind::ThisExpr:
    return JsValue::undef(); // no receiver semantics at top level
  case NodeKind::Ident: {
    if (JsValue *V = findVar(E->Name.str()))
      return *V;
    bool Known = false;
    JsValue V = lookupGlobal(E->Name, Known);
    // Section 7.3: a delayed, context-sensitive constraint. The parser
    // accepted the identifier long ago; only execution notices the
    // missing declaration.
    if (PF_BR(Ctx, Semantic && !Known))
      SemanticError = true;
    return V;
  }
  case NodeKind::ArrayLit: {
    JsValue V;
    V.Ty = JsValue::Type::Object;
    V.Obj = newObject();
    V.Obj->IsArray = true;
    for (Node *Kid : E->Kids)
      V.Obj->Elems.push_back(evalExpr(Kid));
    return V;
  }
  case NodeKind::ObjectLit: {
    JsValue V;
    V.Ty = JsValue::Type::Object;
    V.Obj = newObject();
    for (Node *Prop : E->Kids)
      V.Obj->Props[Prop->Name.str()] = evalExpr(Prop->Kids[0]);
    return V;
  }
  case NodeKind::FuncExpr:
  case NodeKind::ArrowFn: {
    JsValue V;
    V.Ty = JsValue::Type::Function;
    V.Fn = E;
    return V;
  }
  case NodeKind::Unary: {
    if (PF_BR(Ctx, E->Op == Tok::PlusPlus || E->Op == Tok::MinusMinus)) {
      double N = toNumber(evalExpr(E->Kids[0]));
      JsValue New =
          JsValue::number(E->Op == Tok::PlusPlus ? N + 1 : N - 1);
      return evalAssignTo(E->Kids[0], New);
    }
    JsValue V = evalExpr(E->Kids[0]);
    switch (E->Op) {
    case Tok::Not:
      return JsValue::boolean(!truthy(V));
    case Tok::Tilde:
      return JsValue::number(~toInt32(toNumber(V)));
    case Tok::Plus:
      return JsValue::number(toNumber(V));
    case Tok::Minus:
      return JsValue::number(-toNumber(V));
    case Tok::KwTypeof:
      switch (V.Ty) {
      case JsValue::Type::Undefined:
        return JsValue::string("undefined");
      case JsValue::Type::Null:
        return JsValue::string("object");
      case JsValue::Type::Boolean:
        return JsValue::string("boolean");
      case JsValue::Type::Number:
        return JsValue::string("number");
      case JsValue::Type::String:
        return JsValue::string("string");
      case JsValue::Type::Function:
        return JsValue::string("function");
      default:
        return JsValue::string("object");
      }
    case Tok::KwDelete:
      return JsValue::boolean(true); // property removal is a no-op here
    case Tok::KwVoid:
      return JsValue::undef();
    default:
      return JsValue::undef();
    }
  }
  case NodeKind::Postfix: {
    double N = toNumber(evalExpr(E->Kids[0]));
    evalAssignTo(E->Kids[0], JsValue::number(
                                 E->Op == Tok::PlusPlus ? N + 1 : N - 1));
    return JsValue::number(N);
  }
  case NodeKind::Binary:
    return evalBinary(E->Op, E->Kids[0], E->Kids[1]);
  case NodeKind::Cond:
    return PF_BR(Ctx, truthy(evalExpr(E->Kids[0]))) ? evalExpr(E->Kids[1])
                                                    : evalExpr(E->Kids[2]);
  case NodeKind::AssignExpr: {
    JsValue Rhs = evalExpr(E->Kids[1]);
    if (PF_BR(Ctx, E->Op != Tok::Assign)) {
      // Compound assignment: combine with the current value.
      Tok BinOp;
      switch (E->Op) {
      case Tok::PlusEq: BinOp = Tok::Plus; break;
      case Tok::MinusEq: BinOp = Tok::Minus; break;
      case Tok::StarEq: BinOp = Tok::Star; break;
      case Tok::SlashEq: BinOp = Tok::Slash; break;
      case Tok::PercentEq: BinOp = Tok::Percent; break;
      case Tok::AmpEq: BinOp = Tok::Amp; break;
      case Tok::PipeEq: BinOp = Tok::Pipe; break;
      case Tok::CaretEq: BinOp = Tok::Caret; break;
      case Tok::ShlEq: BinOp = Tok::Shl; break;
      case Tok::ShrEq: BinOp = Tok::Shr; break;
      default: BinOp = Tok::Ushr; break; // UshrEq
      }
      JsValue Cur = evalExpr(E->Kids[0]);
      Rhs = applyArith(BinOp, Cur, Rhs);
    }
    return evalAssignTo(E->Kids[0], Rhs);
  }
  case NodeKind::Member: {
    JsValue Base = evalExpr(E->Kids[0]);
    return memberOf(Base, E->Name);
  }
  case NodeKind::Index: {
    JsValue Base = evalExpr(E->Kids[0]);
    JsValue Idx = evalExpr(E->Kids[1]);
    if (PF_BR(Ctx, Base.Obj && Base.Obj->IsArray)) {
      double N = toNumber(Idx);
      if (PF_BR(Ctx, N >= 0 && N < Base.Obj->Elems.size()))
        return Base.Obj->Elems[static_cast<size_t>(N)];
      return JsValue::undef();
    }
    if (PF_BR(Ctx, Base.Ty == JsValue::Type::String)) {
      double N = toNumber(Idx);
      if (PF_BR(Ctx, N >= 0 && N < Base.Str.size()))
        return JsValue::string(
            std::string(1, Base.Str[static_cast<size_t>(N)]));
      return JsValue::undef();
    }
    if (PF_BR(Ctx, Base.Ty == JsValue::Type::Object && Base.Obj != nullptr)) {
      auto It = Base.Obj->Props.find(toStringValue(Idx));
      if (It != Base.Obj->Props.end())
        return It->second;
    }
    return JsValue::undef();
  }
  case NodeKind::Call: {
    Node *CalleeNode = E->Kids[0];
    JsValue ThisVal;
    JsValue Callee;
    if (PF_BR(Ctx, CalleeNode->Kind == NodeKind::Member)) {
      ThisVal = evalExpr(CalleeNode->Kids[0]);
      Callee = memberOf(ThisVal, CalleeNode->Name);
    } else {
      Callee = evalExpr(CalleeNode);
    }
    std::vector<JsValue> Args;
    for (size_t I = 1, N = E->Kids.size(); I != N; ++I)
      Args.push_back(evalExpr(E->Kids[I]));
    return callFunction(Callee, ThisVal, Args);
  }
  case NodeKind::NewExpr: {
    evalExpr(E->Kids[0]);
    JsValue V;
    V.Ty = JsValue::Type::Object;
    V.Obj = newObject();
    return V;
  }
  default:
    return JsValue::undef();
  }
}

/// Plain arithmetic application used by compound assignment (the operands
/// are already evaluated).
JsValue Mjs::applyArith(Tok Op, const JsValue &L, const JsValue &R) {
  switch (Op) {
  case Tok::Plus:
    if (L.Ty == JsValue::Type::String || R.Ty == JsValue::Type::String)
      return JsValue::string(toStringValue(L) + toStringValue(R));
    return JsValue::number(toNumber(L) + toNumber(R));
  case Tok::Minus:
    return JsValue::number(toNumber(L) - toNumber(R));
  case Tok::Star:
    return JsValue::number(toNumber(L) * toNumber(R));
  case Tok::Slash:
    return JsValue::number(toNumber(L) / toNumber(R));
  case Tok::Percent: {
    double A = toNumber(L), B = toNumber(R);
    if (B == 0 || B != B || A != A)
      return JsValue::number(std::numeric_limits<double>::quiet_NaN());
    return JsValue::number(A - B * static_cast<int64_t>(A / B));
  }
  case Tok::Amp:
    return JsValue::number(toInt32(toNumber(L)) & toInt32(toNumber(R)));
  case Tok::Pipe:
    return JsValue::number(toInt32(toNumber(L)) | toInt32(toNumber(R)));
  case Tok::Caret:
    return JsValue::number(toInt32(toNumber(L)) ^ toInt32(toNumber(R)));
  case Tok::Shl:
    return JsValue::number(toInt32(toNumber(L))
                           << (toInt32(toNumber(R)) & 31));
  case Tok::Shr:
    return JsValue::number(toInt32(toNumber(L)) >>
                           (toInt32(toNumber(R)) & 31));
  case Tok::Ushr:
    return JsValue::number(static_cast<uint32_t>(toInt32(toNumber(L))) >>
                           (toInt32(toNumber(R)) & 31));
  default:
    return JsValue::undef();
  }
}

} // namespace

PF_INSTRUMENT_END(MjsNumBranchSites)

namespace {

class MjsSubject final : public Subject {
public:
  std::string_view name() const override { return "mjs"; }
  uint32_t numBranchSites() const override { return MjsNumBranchSites; }
  int run(ExecutionContext &Ctx) const override {
    return Mjs(Ctx).runProgram();
  }
};

class MjsSemSubject final : public Subject {
public:
  std::string_view name() const override { return "mjssem"; }
  uint32_t numBranchSites() const override { return MjsNumBranchSites; }
  int run(ExecutionContext &Ctx) const override {
    return Mjs(Ctx, /*Semantic=*/true).runProgram();
  }
};

} // namespace

const Subject &pfuzz::mjsSubject() {
  static const MjsSubject Instance;
  return Instance;
}

const Subject &pfuzz::mjsSemSubject() {
  static const MjsSemSubject Instance;
  return Instance;
}
