//===- subjects/Dyck.cpp - Balanced-bracket subject -----------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The well-balanced parenthesis language of Section 3's search-space
/// analysis ("a simple parenthesis input language which require
/// well-balanced open and close parentheses"), extended to the multiple
/// bracket kinds of Section 3.2's generation-loop discussion ("say the
/// parser is able to parse different kinds of brackets (round, square,
/// pointed ...)"). The empty string is not a sentence; each bracket must
/// be closed by its own counterpart.
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include "runtime/Instrument.h"

using namespace pfuzz;

PF_INSTRUMENT_BEGIN()

namespace {

/// Recursive-descent matcher for balanced round/square/pointed brackets.
///
///   input  ::= group+
///   group  ::= '(' group* ')' | '[' group* ']' | '<' group* '>'
class DyckParser {
public:
  explicit DyckParser(ExecutionContext &Ctx) : Ctx(Ctx) {}

  int parse() {
    if (PF_BR(Ctx, !parseGroup()))
      return 1;
    while (PF_BR(Ctx, !Ctx.peekChar().isEof()))
      if (PF_BR(Ctx, !parseGroup()))
        return 1;
    return 0;
  }

private:
  bool parseGroup() {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, ++Depth > 300))
      return false;
    bool Ok = parseGroupImpl();
    --Depth;
    return Ok;
  }

  bool parseGroupImpl() {
    PF_FUNC(Ctx);
    TChar Open = Ctx.peekChar();
    char Close;
    if (PF_IF_EQ(Ctx, Open, '('))
      Close = ')';
    else if (PF_IF_EQ(Ctx, Open, '['))
      Close = ']';
    else if (PF_IF_EQ(Ctx, Open, '<'))
      Close = '>';
    else
      return false;
    Ctx.nextChar();
    for (;;) {
      TChar C = Ctx.peekChar();
      if (PF_BR(Ctx, C.isEof()))
        return false; // unclosed group
      if (PF_BR(Ctx, Ctx.cmpEq(C, Close))) {
        Ctx.nextChar();
        return true;
      }
      // Anything else must start a nested group.
      if (PF_BR(Ctx, !parseGroup()))
        return false;
    }
  }

  ExecutionContext &Ctx;
  uint32_t Depth = 0;
};

} // namespace

PF_INSTRUMENT_END(DyckNumBranchSites)

namespace {

class DyckSubject final : public Subject {
public:
  std::string_view name() const override { return "dyck"; }
  // Audited resume-safe: a pure validator; frames hold only chars and
  // flags, and no taints are ever merged (all stay inline intervals).
  bool resumeSafe() const override { return true; }
  uint32_t numBranchSites() const override { return DyckNumBranchSites; }
  int run(ExecutionContext &Ctx) const override {
    return DyckParser(Ctx).parse();
  }
};

} // namespace

const Subject &pfuzz::dyckSubject() {
  static const DyckSubject Instance;
  return Instance;
}
