//===- subjects/Arith.cpp - Section 2 worked-example subject --------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "mystery program P" of Section 2: a recursive-descent parser for
/// arithmetic expressions over digits, parentheses, '+' and '-'. Valid
/// inputs include "1", "11", "+1", "-1", "1+1", "1-1", "(1)", "(2-94)".
/// The parser reads one character of lookahead and compares it against the
/// alternatives the grammar admits at that point, which is exactly the
/// behaviour Figure 1 of the paper illustrates.
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include "runtime/Instrument.h"

using namespace pfuzz;

PF_INSTRUMENT_BEGIN()

namespace {

/// Recursive-descent parser for the Section 2 expression language.
///
///   input   ::= expr <end of input>
///   expr    ::= ['+' | '-'] operand (('+' | '-') operand)*
///   operand ::= number | '(' expr ')'
///   number  ::= digit+
class ArithParser {
public:
  explicit ArithParser(ExecutionContext &Ctx) : Ctx(Ctx) {}

  /// Returns 0 iff the whole input is one valid expression.
  int parse() {
    if (PF_BR(Ctx, !parseExpr()))
      return 1;
    // Check that nothing follows the expression; the read past the end of
    // a valid input is the EOF probe Figure 1 describes.
    TChar End = Ctx.peekChar();
    if (PF_BR(Ctx, !End.isEof()))
      return 1;
    return 0;
  }

private:
  bool parseExpr() {
    PF_FUNC(Ctx);
    TChar Sign = Ctx.peekChar();
    if (PF_IF_SET(Ctx, Sign, "+-"))
      Ctx.nextChar();
    if (PF_BR(Ctx, !parseOperand()))
      return false;
    for (;;) {
      TChar Op = Ctx.peekChar();
      if (!PF_IF_SET(Ctx, Op, "+-"))
        return true;
      Ctx.nextChar();
      if (PF_BR(Ctx, !parseOperand()))
        return false;
    }
  }

  bool parseOperand() {
    PF_FUNC(Ctx);
    TChar C = Ctx.peekChar();
    if (PF_IF_EQ(Ctx, C, '(')) {
      Ctx.nextChar();
      if (PF_BR(Ctx, !parseExpr()))
        return false;
      TChar Close = Ctx.peekChar();
      if (!PF_IF_EQ(Ctx, Close, ')'))
        return false;
      Ctx.nextChar();
      return true;
    }
    if (!PF_IF_RANGE(Ctx, C, '0', '9'))
      return false;
    while (PF_IF_RANGE(Ctx, Ctx.peekChar(), '0', '9'))
      Ctx.nextChar();
    return true;
  }

  ExecutionContext &Ctx;
};

} // namespace

PF_INSTRUMENT_END(ArithNumBranchSites)

namespace {

class ArithSubject final : public Subject {
public:
  std::string_view name() const override { return "arith"; }
  // Audited resume-safe: a pure validator; frames hold only chars and
  // flags, and no taints are ever merged (all stay inline intervals).
  bool resumeSafe() const override { return true; }
  uint32_t numBranchSites() const override { return ArithNumBranchSites; }
  int run(ExecutionContext &Ctx) const override {
    return ArithParser(Ctx).parse();
  }
};

} // namespace

const Subject &pfuzz::arithSubject() {
  static const ArithSubject Instance;
  return Instance;
}
