//===- subjects/Json.cpp - JSON subject (cJSON-like) ----------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON parser modelled on DaveGamble/cJSON, the paper's third evaluation
/// subject. Full JSON: objects, arrays, strings with escapes (including
/// \uXXXX with surrogate pairs and UTF-8 re-encoding), numbers with
/// fraction and exponent, and the keywords true/false/null (recognised via
/// the wrapped-strcmp primitive, which is how pFuzzer synthesises them —
/// Section 5.3).
///
/// Faithful quirk: the \uXXXX hex digits are validated through *implicit*
/// comparisons and the decoded code point is an untainted integer, so the
/// taint-based extraction never sees the UTF-16 conversion constraints.
/// This reproduces the paper's observation that pFuzzer misses the
/// UTF16-to-UTF8 feature set on cJSON (Section 5.2) while a symbolic
/// executor still covers it.
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include "runtime/Instrument.h"

using namespace pfuzz;

PF_INSTRUMENT_BEGIN()

namespace {

/// Maximum object/array nesting depth (cJSON's CJSON_NESTING_LIMIT).
constexpr uint32_t JsonNestingLimit = 200;

/// Recursive-descent JSON parser over the instrumented runtime.
class JsonParser {
public:
  explicit JsonParser(ExecutionContext &Ctx) : Ctx(Ctx) {}

  /// Returns 0 iff the input is exactly one JSON value with optional
  /// surrounding whitespace. The empty input is invalid (cJSON returns
  /// NULL for it).
  int parse() {
    skipWs();
    if (PF_BR(Ctx, !parseValue()))
      return 1;
    skipWs();
    TChar End = Ctx.peekChar();
    if (PF_BR(Ctx, !End.isEof()))
      return 1;
    return 0;
  }

private:
  /// cJSON skips everything <= ' ' — a range check on the raw byte.
  void skipWs() {
    PF_FUNC(Ctx);
    for (;;) {
      TChar C = Ctx.peekChar();
      if (PF_BR(Ctx, C.isEof()))
        return;
      if (!PF_IF_RANGE_IMPL(Ctx, C, '\x01', ' '))
        return;
      Ctx.nextChar();
    }
  }

  bool parseValue() {
    PF_FUNC(Ctx);
    if (PF_BR(Ctx, Depth >= JsonNestingLimit))
      return false;
    TChar C = Ctx.peekChar();
    if (PF_IF_EQ(Ctx, C, '{'))
      return parseObject();
    if (PF_IF_EQ(Ctx, C, '['))
      return parseArray();
    if (PF_IF_EQ(Ctx, C, '"')) {
      Ctx.nextChar();
      return parseString();
    }
    if (PF_IF_EQ(Ctx, C, 't'))
      return parseLiteral("true");
    if (PF_IF_EQ(Ctx, C, 'f'))
      return parseLiteral("false");
    if (PF_IF_EQ(Ctx, C, 'n'))
      return parseLiteral("null");
    if (PF_IF_EQ(Ctx, C, '-'))
      return parseNumber();
    if (PF_IF_RANGE(Ctx, C, '0', '9'))
      return parseNumber();
    return false;
  }

  /// Matches \p Keyword via the wrapped strcmp: the candidate bytes are
  /// gathered (with their taints) and compared as one string, exactly like
  /// cJSON's strncmp(value, "true", 4).
  bool parseLiteral(std::string_view Keyword) {
    PF_FUNC(Ctx);
    TString Lit;
    for (uint32_t I = 0; I < Keyword.size(); ++I) {
      TChar C = Ctx.peekChar(I);
      if (PF_BR(Ctx, C.isEof()))
        break;
      Lit.push_back(C);
    }
    if (!PF_IF_STR(Ctx, Lit, Keyword))
      return false;
    for (uint32_t I = 0; I < Keyword.size(); ++I)
      Ctx.nextChar();
    return true;
  }

  bool parseObject() {
    PF_FUNC(Ctx);
    Ctx.nextChar(); // consume '{'
    ++Depth;
    bool Ok = parseObjectBody();
    --Depth;
    return Ok;
  }

  bool parseObjectBody() {
    PF_FUNC(Ctx);
    skipWs();
    TChar C = Ctx.peekChar();
    if (PF_IF_EQ(Ctx, C, '}')) {
      Ctx.nextChar();
      return true;
    }
    for (;;) {
      skipWs();
      TChar Quote = Ctx.peekChar();
      if (!PF_IF_EQ(Ctx, Quote, '"'))
        return false; // member name must be a string
      Ctx.nextChar();
      if (PF_BR(Ctx, !parseString()))
        return false;
      skipWs();
      TChar Colon = Ctx.peekChar();
      if (!PF_IF_EQ(Ctx, Colon, ':'))
        return false;
      Ctx.nextChar();
      skipWs();
      if (PF_BR(Ctx, !parseValue()))
        return false;
      skipWs();
      TChar Sep = Ctx.peekChar();
      if (PF_IF_EQ(Ctx, Sep, ',')) {
        Ctx.nextChar();
        continue;
      }
      if (PF_IF_EQ(Ctx, Sep, '}')) {
        Ctx.nextChar();
        return true;
      }
      return false;
    }
  }

  bool parseArray() {
    PF_FUNC(Ctx);
    Ctx.nextChar(); // consume '['
    ++Depth;
    bool Ok = parseArrayBody();
    --Depth;
    return Ok;
  }

  bool parseArrayBody() {
    PF_FUNC(Ctx);
    skipWs();
    TChar C = Ctx.peekChar();
    if (PF_IF_EQ(Ctx, C, ']')) {
      Ctx.nextChar();
      return true;
    }
    for (;;) {
      skipWs();
      if (PF_BR(Ctx, !parseValue()))
        return false;
      skipWs();
      TChar Sep = Ctx.peekChar();
      if (PF_IF_EQ(Ctx, Sep, ',')) {
        Ctx.nextChar();
        continue;
      }
      if (PF_IF_EQ(Ctx, Sep, ']')) {
        Ctx.nextChar();
        return true;
      }
      return false;
    }
  }

  /// Parses the body of a string after the opening quote.
  bool parseString() {
    PF_FUNC(Ctx);
    for (;;) {
      TChar C = Ctx.peekChar();
      if (PF_BR(Ctx, C.isEof()))
        return false; // unterminated string
      Ctx.nextChar();
      if (PF_IF_EQ(Ctx, C, '"'))
        return true;
      if (PF_IF_EQ(Ctx, C, '\\')) {
        if (PF_BR(Ctx, !parseEscape()))
          return false;
        continue;
      }
      // Unescaped control characters are invalid (RFC 8259); checked with
      // a raw byte-range comparison as cJSON does.
      if (PF_IF_RANGE_IMPL(Ctx, C, '\x00', '\x1f'))
        return false;
    }
  }

  bool parseEscape() {
    PF_FUNC(Ctx);
    TChar C = Ctx.peekChar();
    if (PF_BR(Ctx, C.isEof()))
      return false;
    Ctx.nextChar();
    if (PF_IF_EQ(Ctx, C, 'u'))
      return parseUnicodeEscape();
    return PF_IF_SET(Ctx, C, "\"\\/bfnrt");
  }

  /// Decodes the 4 hex digits after \u. The digit validation is a ctype-
  /// style implicit comparison and the decoded value is an untainted int:
  /// the taint tracker loses the connection to the input here.
  bool parseHex4(uint32_t &Value) {
    PF_FUNC(Ctx);
    Value = 0;
    for (int I = 0; I < 4; ++I) {
      TChar C = Ctx.peekChar();
      if (PF_BR(Ctx, C.isEof()))
        return false;
      uint32_t Digit;
      if (PF_IF_RANGE_IMPL(Ctx, C, '0', '9'))
        Digit = static_cast<uint32_t>(C.ch() - '0');
      else if (PF_IF_RANGE_IMPL(Ctx, C, 'a', 'f'))
        Digit = static_cast<uint32_t>(C.ch() - 'a' + 10);
      else if (PF_IF_RANGE_IMPL(Ctx, C, 'A', 'F'))
        Digit = static_cast<uint32_t>(C.ch() - 'A' + 10);
      else
        return false;
      Ctx.nextChar();
      Value = (Value << 4) | Digit;
    }
    return true;
  }

  /// The UTF-16-to-UTF-8 conversion of cJSON's parse_string: surrogate
  /// pair handling plus the 1/2/3/4-byte re-encoding. All comparisons here
  /// operate on the untainted decoded code point — the feature set the
  /// paper reports pFuzzer cannot reach.
  bool parseUnicodeEscape() {
    PF_FUNC(Ctx);
    uint32_t First = 0;
    if (PF_BR(Ctx, !parseHex4(First)))
      return false;
    uint32_t CodePoint = First;
    if (PF_BR(Ctx, First >= 0xDC00 && First <= 0xDFFF))
      return false; // lone low surrogate
    if (PF_BR(Ctx, First >= 0xD800 && First <= 0xDBFF)) {
      // High surrogate: a \uXXXX low surrogate must follow.
      TChar Bs = Ctx.peekChar();
      if (!PF_IF_EQ(Ctx, Bs, '\\'))
        return false;
      Ctx.nextChar();
      TChar U = Ctx.peekChar();
      if (!PF_IF_EQ(Ctx, U, 'u'))
        return false;
      Ctx.nextChar();
      uint32_t Second = 0;
      if (PF_BR(Ctx, !parseHex4(Second)))
        return false;
      if (PF_BR(Ctx, !(Second >= 0xDC00 && Second <= 0xDFFF)))
        return false;
      CodePoint =
          0x10000 + (((First - 0xD800) << 10) | (Second - 0xDC00));
    }
    // UTF-8 length selection; the branch structure mirrors cJSON.
    if (PF_BR(Ctx, CodePoint < 0x80))
      Utf8Bytes += 1;
    else if (PF_BR(Ctx, CodePoint < 0x800))
      Utf8Bytes += 2;
    else if (PF_BR(Ctx, CodePoint < 0x10000))
      Utf8Bytes += 3;
    else
      Utf8Bytes += 4;
    return true;
  }

  bool parseNumber() {
    PF_FUNC(Ctx);
    TChar Sign = Ctx.peekChar();
    if (PF_IF_EQ(Ctx, Sign, '-'))
      Ctx.nextChar();
    // Integer part: '0' alone or a nonzero digit followed by more digits.
    TChar First = Ctx.peekChar();
    if (PF_IF_EQ(Ctx, First, '0')) {
      Ctx.nextChar();
    } else if (PF_IF_RANGE(Ctx, First, '1', '9')) {
      Ctx.nextChar();
      while (PF_IF_RANGE(Ctx, Ctx.peekChar(), '0', '9'))
        Ctx.nextChar();
    } else {
      return false; // '-' without digits
    }
    // Fraction.
    if (PF_IF_EQ(Ctx, Ctx.peekChar(), '.')) {
      Ctx.nextChar();
      if (!PF_IF_RANGE(Ctx, Ctx.peekChar(), '0', '9'))
        return false;
      while (PF_IF_RANGE(Ctx, Ctx.peekChar(), '0', '9'))
        Ctx.nextChar();
    }
    // Exponent.
    if (PF_IF_SET(Ctx, Ctx.peekChar(), "eE")) {
      Ctx.nextChar();
      if (PF_IF_SET(Ctx, Ctx.peekChar(), "+-"))
        Ctx.nextChar();
      if (!PF_IF_RANGE(Ctx, Ctx.peekChar(), '0', '9'))
        return false;
      while (PF_IF_RANGE(Ctx, Ctx.peekChar(), '0', '9'))
        Ctx.nextChar();
    }
    return true;
  }

  ExecutionContext &Ctx;
  uint32_t Depth = 0;
  /// Total UTF-8 bytes produced by \u escapes; keeps the encoder branches
  /// observable without building the decoded string.
  uint32_t Utf8Bytes = 0;
};

} // namespace

PF_INSTRUMENT_END(JsonNumBranchSites)

namespace {

class JsonSubject final : public Subject {
public:
  std::string_view name() const override { return "json"; }
  // Audited resume-safe: a pure recursive-descent validator whose frames
  // hold chars, counters and one <=5-char keyword TString (SSO, with a
  // contiguous inline taint interval) -- no heap-owning locals.
  bool resumeSafe() const override { return true; }
  uint32_t numBranchSites() const override { return JsonNumBranchSites; }
  int run(ExecutionContext &Ctx) const override {
    return JsonParser(Ctx).parse();
  }
};

} // namespace

const Subject &pfuzz::jsonSubject() {
  static const JsonSubject Instance;
  return Instance;
}
