//===- subjects/Csv.cpp - CSV subject (csvparser-like) --------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RFC-4180-style CSV parser modelled on JamesRamm/csv_parser, the paper's
/// second evaluation subject. Grammar:
///
///   file   ::= record ('\n' record)* ['\n']
///   record ::= field (',' field)*
///   field  ::= quoted | bare
///   quoted ::= '"' (qchar | '""')* '"'
///   bare   ::= any char except ',' '"' '\n'
///
/// Errors: a quote inside a bare field, an unterminated quoted field, and
/// garbage between a closing quote and the next delimiter.
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include "runtime/Instrument.h"

using namespace pfuzz;

PF_INSTRUMENT_BEGIN()

namespace {

/// Streaming CSV parser over the instrumented runtime.
class CsvParser {
public:
  explicit CsvParser(ExecutionContext &Ctx) : Ctx(Ctx) {}

  /// Returns 0 iff the input is a well-formed CSV file (the empty file is
  /// one empty record and is accepted).
  int parse() {
    for (;;) {
      if (PF_BR(Ctx, !parseField()))
        return 1;
      TChar C = Ctx.peekChar();
      if (PF_BR(Ctx, C.isEof()))
        return 0;
      Ctx.nextChar();
      if (PF_IF_EQ(Ctx, C, ','))
        continue; // next field in the same record
      if (PF_IF_EQ(Ctx, C, '\n'))
        continue; // next record
      return 1;   // only reachable after a quoted field: stray character
    }
  }

private:
  bool parseField() {
    PF_FUNC(Ctx);
    TChar C = Ctx.peekChar();
    if (PF_IF_EQ(Ctx, C, '"')) {
      Ctx.nextChar();
      return parseQuoted();
    }
    return parseBare();
  }

  /// Consumes a bare field; stops before ',' or '\n' or EOF. A '"' inside
  /// a bare field is an error (csv_parser rejects it).
  bool parseBare() {
    PF_FUNC(Ctx);
    for (;;) {
      TChar C = Ctx.peekChar();
      if (PF_BR(Ctx, C.isEof()))
        return true;
      if (PF_IF_EQ(Ctx, C, ','))
        return true;
      if (PF_IF_EQ(Ctx, C, '\n'))
        return true;
      if (PF_IF_EQ(Ctx, C, '"'))
        return false;
      Ctx.nextChar();
    }
  }

  /// Consumes a quoted field after the opening '"'. A doubled quote is an
  /// escaped quote character.
  bool parseQuoted() {
    PF_FUNC(Ctx);
    for (;;) {
      TChar C = Ctx.peekChar();
      if (PF_BR(Ctx, C.isEof()))
        return false; // unterminated quote
      Ctx.nextChar();
      if (!PF_IF_EQ(Ctx, C, '"'))
        continue;
      TChar Next = Ctx.peekChar();
      if (PF_IF_EQ(Ctx, Next, '"')) {
        Ctx.nextChar(); // escaped quote, stay in the field
        continue;
      }
      return true; // closing quote
    }
  }

  ExecutionContext &Ctx;
};

} // namespace

PF_INSTRUMENT_END(CsvNumBranchSites)

namespace {

class CsvSubject final : public Subject {
public:
  std::string_view name() const override { return "csv"; }
  // Audited resume-safe: a pure validator; frames hold only chars and
  // flags, and no taints are ever merged (all stay inline intervals).
  bool resumeSafe() const override { return true; }
  uint32_t numBranchSites() const override { return CsvNumBranchSites; }
  int run(ExecutionContext &Ctx) const override {
    return CsvParser(Ctx).parse();
  }
};

} // namespace

const Subject &pfuzz::csvSubject() {
  static const CsvSubject Instance;
  return Instance;
}
