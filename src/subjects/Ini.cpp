//===- subjects/Ini.cpp - INI-file subject (inih-like) --------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line-oriented INI parser modelled on benhoyt/inih, the paper's first
/// evaluation subject (Table 1). Grammar:
///
///   file    ::= line*
///   line    ::= ws* (comment | section | pair | "") eol
///   comment ::= ';' any*
///   section ::= '[' name-char* ']' ws* [comment]
///   pair    ::= key-char+ ws* '=' any*
///
/// The most complex structure is the section delimiter (an opening bracket
/// that must be closed on the same line) — the feature the paper notes KLEE
/// misses. Whitespace handling goes through ctype-style implicit
/// comparisons (inih uses isspace()), which the paper's taint extraction
/// cannot see; this is one of the reasons AFL out-covers pFuzzer on ini
/// (Section 5.2).
///
//===----------------------------------------------------------------------===//

#include "subjects/Subject.h"

#include "runtime/Instrument.h"

using namespace pfuzz;

PF_INSTRUMENT_BEGIN()

namespace {

/// Recursive-descent INI parser over the instrumented runtime.
class IniParser {
public:
  explicit IniParser(ExecutionContext &Ctx) : Ctx(Ctx) {}

  /// Returns 0 iff every line is a valid comment, section or key=value
  /// pair. The empty file is valid (inih accepts it).
  int parse() {
    for (;;) {
      if (PF_BR(Ctx, Ctx.peekChar().isEof()))
        return 0;
      if (PF_BR(Ctx, !parseLine()))
        return 1;
    }
  }

private:
  /// Skips spaces and tabs. inih strips whitespace via isspace(), a ctype
  /// table lookup — an implicit flow the taint tracker cannot follow.
  void skipBlanks() {
    PF_FUNC(Ctx);
    while (PF_IF_SET_IMPL(Ctx, Ctx.peekChar(), " \t\r"))
      Ctx.nextChar();
  }

  /// Consumes the rest of the line including the newline (or EOF).
  void skipToEol() {
    PF_FUNC(Ctx);
    for (;;) {
      TChar C = Ctx.peekChar();
      if (PF_BR(Ctx, C.isEof()))
        return;
      Ctx.nextChar();
      if (PF_IF_EQ(Ctx, C, '\n'))
        return;
    }
  }

  /// Consumes the end of a line: optional blanks, optional comment, then a
  /// newline or EOF. Returns false when a stray character follows.
  bool finishLine() {
    PF_FUNC(Ctx);
    skipBlanks();
    TChar C = Ctx.peekChar();
    if (PF_BR(Ctx, C.isEof()))
      return true;
    if (PF_IF_EQ(Ctx, C, '\n')) {
      Ctx.nextChar();
      return true;
    }
    if (PF_IF_EQ(Ctx, C, ';')) {
      skipToEol();
      return true;
    }
    return false;
  }

  bool parseLine() {
    PF_FUNC(Ctx);
    skipBlanks();
    TChar C = Ctx.peekChar();
    if (PF_BR(Ctx, C.isEof()))
      return true;
    if (PF_IF_EQ(Ctx, C, '\n')) { // blank line
      Ctx.nextChar();
      return true;
    }
    if (PF_IF_EQ(Ctx, C, ';')) { // comment line
      skipToEol();
      return true;
    }
    if (PF_IF_EQ(Ctx, C, '[')) {
      Ctx.nextChar();
      return parseSection();
    }
    return parsePair();
  }

  /// `[` name `]` — the name may contain anything but ']' and newline.
  bool parseSection() {
    PF_FUNC(Ctx);
    for (;;) {
      TChar C = Ctx.peekChar();
      if (PF_BR(Ctx, C.isEof()))
        return false; // unterminated section header
      if (PF_IF_EQ(Ctx, C, ']')) {
        Ctx.nextChar();
        return finishLine();
      }
      if (PF_IF_EQ(Ctx, C, '\n'))
        return false; // newline before ']'
      Ctx.nextChar();
    }
  }

  /// key `=` value — the key may not contain '=', newline or ';'.
  bool parsePair() {
    PF_FUNC(Ctx);
    bool SawKeyChar = false;
    for (;;) {
      TChar C = Ctx.peekChar();
      if (PF_BR(Ctx, C.isEof()))
        return false; // key without '='
      if (PF_IF_EQ(Ctx, C, '=')) {
        Ctx.nextChar();
        if (PF_BR(Ctx, !SawKeyChar))
          return false; // empty key
        skipToEol();    // values are unconstrained
        return true;
      }
      if (PF_IF_EQ(Ctx, C, '\n'))
        return false; // line is neither comment, section nor pair
      if (PF_IF_EQ(Ctx, C, ';'))
        return false; // comment may not interrupt a key
      if (PF_BR(Ctx, !isBlank(C)))
        SawKeyChar = true;
      Ctx.nextChar();
    }
  }

  /// isspace()-style check — implicit flow, untracked taint.
  bool isBlank(const TChar &C) {
    return Ctx.cmpSet(C, " \t\r", /*Implicit=*/true);
  }

  ExecutionContext &Ctx;
};

} // namespace

PF_INSTRUMENT_END(IniNumBranchSites)

namespace {

class IniSubject final : public Subject {
public:
  std::string_view name() const override { return "ini"; }
  // Audited resume-safe: a pure validator; frames hold only chars and
  // flags, and no taints are ever merged (all stay inline intervals).
  bool resumeSafe() const override { return true; }
  uint32_t numBranchSites() const override { return IniNumBranchSites; }
  int run(ExecutionContext &Ctx) const override {
    return IniParser(Ctx).parse();
  }
};

} // namespace

const Subject &pfuzz::iniSubject() {
  static const IniSubject Instance;
  return Instance;
}
