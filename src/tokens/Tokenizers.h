//===- tokens/Tokenizers.h - Token extraction from inputs --------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-subject tokenizers for the input-coverage measurement (Section 5.3):
/// given a *valid* input, they return the inventory tokens it contains.
/// "Strings, numbers and identifiers are classified as one token ... any
/// non-token characters (e.g. whitespaces) are ignored."
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_TOKENS_TOKENIZERS_H
#define PFUZZ_TOKENS_TOKENIZERS_H

#include <string>
#include <string_view>
#include <vector>

namespace pfuzz {

/// Tokenizes \p Input with the lexical rules of subject \p SubjectName and
/// returns the canonical inventory names of the tokens that occur (with
/// duplicates; callers deduplicate as needed). Inputs are assumed valid;
/// unrecognised bytes are skipped.
std::vector<std::string> extractTokens(std::string_view SubjectName,
                                       std::string_view Input);

} // namespace pfuzz

#endif // PFUZZ_TOKENS_TOKENIZERS_H
