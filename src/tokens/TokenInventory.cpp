//===- tokens/TokenInventory.cpp - Per-subject token sets -----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tokens/TokenInventory.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace pfuzz;

TokenInventory::TokenInventory(std::vector<TokenDef> TokenList)
    : Tokens(std::move(TokenList)) {
  for (const TokenDef &T : Tokens) {
    assert(LengthByText.count(T.Text) == 0 && "duplicate token definition");
    LengthByText[T.Text] = T.Length;
  }
}

uint32_t TokenInventory::lengthOf(std::string_view Text) const {
  auto It = LengthByText.find(Text);
  return It == LengthByText.end() ? 0 : It->second;
}

std::map<uint32_t, uint32_t> TokenInventory::countsByLength() const {
  std::map<uint32_t, uint32_t> Counts;
  for (const TokenDef &T : Tokens)
    ++Counts[T.Length];
  return Counts;
}

uint32_t TokenInventory::numShort() const {
  uint32_t N = 0;
  for (const TokenDef &T : Tokens)
    if (T.Length <= 3)
      ++N;
  return N;
}

uint32_t TokenInventory::numLong() const {
  uint32_t N = 0;
  for (const TokenDef &T : Tokens)
    if (T.Length > 3)
      ++N;
  return N;
}

/// Expands a space-separated list of literal tokens, each at its own
/// spelled length.
static void addLiterals(std::vector<TokenDef> &Out, std::string_view Words) {
  size_t Start = 0;
  while (Start < Words.size()) {
    size_t End = Words.find(' ', Start);
    if (End == std::string_view::npos)
      End = Words.size();
    if (End > Start) {
      std::string Text(Words.substr(Start, End - Start));
      uint32_t Length = static_cast<uint32_t>(Text.size());
      Out.push_back({std::move(Text), Length});
    }
    Start = End + 1;
  }
}

static TokenInventory makeArithInventory() {
  std::vector<TokenDef> T;
  addLiterals(T, "( ) + -");
  T.push_back({"number", 1});
  return TokenInventory(std::move(T));
}

static TokenInventory makeDyckInventory() {
  std::vector<TokenDef> T;
  addLiterals(T, "( ) [ ] < >");
  return TokenInventory(std::move(T));
}

static TokenInventory makeIniInventory() {
  std::vector<TokenDef> T;
  addLiterals(T, "[ ] = ;");
  T.push_back({"name", 1});
  return TokenInventory(std::move(T));
}

static TokenInventory makeCsvInventory() {
  std::vector<TokenDef> T;
  addLiterals(T, ",");
  T.push_back({"field", 1});
  T.push_back({"string", 2});
  return TokenInventory(std::move(T));
}

/// Table 2: 8 tokens of length 1, string (2), null/true (4), false (5).
static TokenInventory makeJsonInventory() {
  std::vector<TokenDef> T;
  addLiterals(T, "{ } [ ] - : ,");
  T.push_back({"number", 1});
  T.push_back({"string", 2});
  addLiterals(T, "null true false");
  return TokenInventory(std::move(T));
}

/// Table 3: 11 tokens of length 1 (with parentheses in place of the
/// table's brackets — our tiny-c grammar uses parenthesised expressions),
/// if/do (2), else (4), while (5).
static TokenInventory makeTinyCInventory() {
  std::vector<TokenDef> T;
  addLiterals(T, "< + - ; = { } ( )");
  T.push_back({"identifier", 1});
  T.push_back({"number", 1});
  addLiterals(T, "if do else while");
  return TokenInventory(std::move(T));
}

/// Table 4 shape: 26/24/13/10/9/7/3/3/2/1 tokens for lengths 1..10 (the
/// paper's mjs has 27 at length 1; our subset has one punctuation token
/// fewer — recorded in EXPERIMENTS.md).
static TokenInventory makeMjsInventory() {
  std::vector<TokenDef> T;
  // Length 1: 24 punctuation + identifier + number.
  addLiterals(T, "( ) { } [ ] ; , . ? : + - * / % < > = ! & | ^ ~");
  T.push_back({"identifier", 1});
  T.push_back({"number", 1});
  // Length 2: 19 operators + 4 keywords + string.
  addLiterals(T, "== != <= >= && || ++ -- += -= *= /= %= &= |= ^= << >> =>");
  addLiterals(T, "if in do of");
  T.push_back({"string", 2});
  // Length 3: 5 operators + 5 keywords + 3 builtin names.
  addLiterals(T, "=== !== <<= >>= >>>");
  addLiterals(T, "for let new var try NaN pop map");
  // Length 4.
  addLiterals(T, ">>>= true null void with else this case push JSON");
  // Length 5.
  addLiterals(T, "false throw while break catch const slice split shift");
  // Length 6.
  addLiterals(T, "return delete typeof switch Object length charAt");
  // Length 7.
  addLiterals(T, "default finally indexOf");
  // Length 8.
  addLiterals(T, "continue function debugger");
  // Length 9.
  addLiterals(T, "undefined stringify");
  // Length 10.
  addLiterals(T, "instanceof");
  return TokenInventory(std::move(T));
}

const TokenInventory &TokenInventory::forSubject(std::string_view Name) {
  if (Name == "arith" || Name == "ll1arith") {
    static const TokenInventory Inv = makeArithInventory();
    return Inv;
  }
  if (Name == "dyck") {
    static const TokenInventory Inv = makeDyckInventory();
    return Inv;
  }
  if (Name == "ini") {
    static const TokenInventory Inv = makeIniInventory();
    return Inv;
  }
  if (Name == "csv") {
    static const TokenInventory Inv = makeCsvInventory();
    return Inv;
  }
  if (Name == "json") {
    static const TokenInventory Inv = makeJsonInventory();
    return Inv;
  }
  if (Name == "tinyc") {
    static const TokenInventory Inv = makeTinyCInventory();
    return Inv;
  }
  if (Name == "mjs" || Name == "mjssem") {
    static const TokenInventory Inv = makeMjsInventory();
    return Inv;
  }
  std::fprintf(stderr, "error: no token inventory for subject '%.*s'\n",
               static_cast<int>(Name.size()), Name.data());
  std::abort();
}
