//===- tokens/TokenInventory.h - Per-subject token sets ----------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The token inventories behind the paper's input-coverage evaluation
/// (Section 5.3): "we first collected all possible tokens by checking the
/// documentation and source code of all subjects". Tables 2, 3 and 4 give
/// the per-length counts for json, tinyC and mjs; ini and csv have small
/// ad-hoc sets. Strings, numbers and identifiers are one token class each,
/// counted at length 1 (identifier, number) or 2 (string — the two quote
/// characters), following the tables.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_TOKENS_TOKENINVENTORY_H
#define PFUZZ_TOKENS_TOKENINVENTORY_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pfuzz {

/// One token of a subject's input language.
struct TokenDef {
  /// Canonical spelling, or a class name ("identifier", "number",
  /// "string", "field", "name").
  std::string Text;

  /// The length class used by Figure 3 (class tokens use the class's
  /// nominal length, e.g. string = 2).
  uint32_t Length = 1;
};

/// The full token set of one subject's input language.
class TokenInventory {
public:
  explicit TokenInventory(std::vector<TokenDef> Tokens);

  /// The inventory for a built-in subject; aborts on unknown names.
  static const TokenInventory &forSubject(std::string_view SubjectName);

  const std::vector<TokenDef> &tokens() const { return Tokens; }
  size_t size() const { return Tokens.size(); }

  /// Returns the token's length class, or 0 when \p Text is not a token.
  uint32_t lengthOf(std::string_view Text) const;

  bool contains(std::string_view Text) const { return lengthOf(Text) != 0; }

  /// Number of tokens per length class.
  std::map<uint32_t, uint32_t> countsByLength() const;

  /// Number of tokens whose length class satisfies len <= 3 (Short) or
  /// len > 3 (Long) — the paper's two headline aggregates.
  uint32_t numShort() const;
  uint32_t numLong() const;

private:
  std::vector<TokenDef> Tokens;
  std::map<std::string, uint32_t, std::less<>> LengthByText;
};

} // namespace pfuzz

#endif // PFUZZ_TOKENS_TOKENINVENTORY_H
