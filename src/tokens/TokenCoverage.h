//===- tokens/TokenCoverage.h - Input-coverage accumulator -------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulates which inventory tokens appear across a set of valid inputs
/// — the paper's input-coverage metric (Figure 3 and the length <= 3 /
/// length > 3 headline aggregates).
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_TOKENS_TOKENCOVERAGE_H
#define PFUZZ_TOKENS_TOKENCOVERAGE_H

#include "tokens/TokenInventory.h"

#include <set>
#include <string_view>

namespace pfuzz {

/// Token-coverage accumulator for one subject.
class TokenCoverage {
public:
  explicit TokenCoverage(std::string_view SubjectName);

  /// Tokenizes a valid input and records the inventory tokens it contains.
  void addInput(std::string_view Input);

  /// The distinct inventory tokens found so far.
  const std::set<std::string> &found() const { return Found; }

  /// Found tokens per length class (for Figure 3's grouped bars).
  std::map<uint32_t, uint32_t> foundByLength() const;

  /// Found / total for tokens with length class <= 3, as a fraction in
  /// [0, 1]. Returns 0 when the inventory has no short tokens.
  double shortTokenRatio() const;

  /// Found / total for tokens with length class > 3.
  double longTokenRatio() const;

  const TokenInventory &inventory() const { return Inventory; }

private:
  std::string SubjectName;
  const TokenInventory &Inventory;
  std::set<std::string> Found;
};

} // namespace pfuzz

#endif // PFUZZ_TOKENS_TOKENCOVERAGE_H
