//===- tokens/Tokenizers.cpp - Token extraction from inputs ---------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tokens/Tokenizers.h"

#include "support/Ascii.h"

#include <cstdio>
#include <cstdlib>

using namespace pfuzz;

namespace {

/// Shared cursor over the raw input bytes.
class Scanner {
public:
  explicit Scanner(std::string_view Input) : Input(Input) {}

  bool atEnd() const { return Pos >= Input.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Input.size() ? Input[Pos + Ahead] : '\0';
  }
  char get() { return Input[Pos++]; }
  void skip(size_t N = 1) { Pos += N; }
  bool startsWith(std::string_view Prefix) const {
    return Input.compare(Pos, Prefix.size(), Prefix) == 0;
  }

private:
  std::string_view Input;
  size_t Pos = 0;
};

} // namespace

static std::vector<std::string> tokenizeArith(std::string_view Input) {
  std::vector<std::string> Out;
  Scanner S(Input);
  while (!S.atEnd()) {
    char C = S.get();
    if (isAsciiDigit(C)) {
      while (!S.atEnd() && isAsciiDigit(S.peek()))
        S.skip();
      Out.push_back("number");
      continue;
    }
    if (C == '(' || C == ')' || C == '+' || C == '-')
      Out.push_back(std::string(1, C));
  }
  return Out;
}

static std::vector<std::string> tokenizeDyck(std::string_view Input) {
  std::vector<std::string> Out;
  for (char C : Input)
    if (C == '(' || C == ')' || C == '[' || C == ']' || C == '<' ||
        C == '>')
      Out.push_back(std::string(1, C));
  return Out;
}

static std::vector<std::string> tokenizeIni(std::string_view Input) {
  std::vector<std::string> Out;
  Scanner S(Input);
  while (!S.atEnd()) {
    char C = S.get();
    if (isAsciiSpace(C))
      continue;
    if (C == ';') { // comment: the body is not tokens
      Out.push_back(";");
      while (!S.atEnd() && S.peek() != '\n')
        S.skip();
      continue;
    }
    if (C == '[' || C == ']' || C == '=') {
      Out.push_back(std::string(1, C));
      continue;
    }
    // Any other run of non-structural characters is a name.
    while (!S.atEnd() && S.peek() != '[' && S.peek() != ']' &&
           S.peek() != '=' && S.peek() != ';' && !isAsciiSpace(S.peek()))
      S.skip();
    Out.push_back("name");
  }
  return Out;
}

static std::vector<std::string> tokenizeCsv(std::string_view Input) {
  std::vector<std::string> Out;
  Scanner S(Input);
  while (!S.atEnd()) {
    char C = S.get();
    if (C == '\n')
      continue;
    if (C == ',') {
      Out.push_back(",");
      continue;
    }
    if (C == '"') { // quoted field
      while (!S.atEnd()) {
        char Q = S.get();
        if (Q == '"') {
          if (S.peek() == '"') {
            S.skip();
            continue;
          }
          break;
        }
      }
      Out.push_back("string");
      continue;
    }
    while (!S.atEnd() && S.peek() != ',' && S.peek() != '\n')
      S.skip();
    Out.push_back("field");
  }
  return Out;
}

static std::vector<std::string> tokenizeJson(std::string_view Input) {
  std::vector<std::string> Out;
  Scanner S(Input);
  while (!S.atEnd()) {
    char C = S.get();
    if (isAsciiSpace(C))
      continue;
    switch (C) {
    case '{':
    case '}':
    case '[':
    case ']':
    case ':':
    case ',':
    case '-':
      Out.push_back(std::string(1, C));
      continue;
    case '"':
      while (!S.atEnd()) {
        char Q = S.get();
        if (Q == '\\' && !S.atEnd()) {
          S.skip();
          continue;
        }
        if (Q == '"')
          break;
      }
      Out.push_back("string");
      continue;
    default:
      break;
    }
    if (isAsciiDigit(C)) {
      while (!S.atEnd() && (isAsciiDigit(S.peek()) || S.peek() == '.' ||
                            S.peek() == 'e' || S.peek() == 'E' ||
                            S.peek() == '+' || S.peek() == '-'))
        S.skip();
      Out.push_back("number");
      continue;
    }
    if (isAsciiAlpha(C)) {
      std::string Word(1, C);
      while (!S.atEnd() && isAsciiAlpha(S.peek()))
        Word.push_back(S.get());
      if (Word == "true" || Word == "false" || Word == "null")
        Out.push_back(Word);
    }
  }
  return Out;
}

static std::vector<std::string> tokenizeTinyC(std::string_view Input) {
  std::vector<std::string> Out;
  Scanner S(Input);
  while (!S.atEnd()) {
    char C = S.get();
    if (isAsciiSpace(C))
      continue;
    if (isAsciiDigit(C)) {
      while (!S.atEnd() && isAsciiDigit(S.peek()))
        S.skip();
      Out.push_back("number");
      continue;
    }
    if (isAsciiLower(C)) {
      std::string Word(1, C);
      while (!S.atEnd() && isAsciiLower(S.peek()))
        Word.push_back(S.get());
      if (Word == "if" || Word == "do" || Word == "else" || Word == "while")
        Out.push_back(Word);
      else if (Word.size() == 1)
        Out.push_back("identifier");
      continue;
    }
    switch (C) {
    case '<':
    case '+':
    case '-':
    case ';':
    case '=':
    case '{':
    case '}':
    case '(':
    case ')':
      Out.push_back(std::string(1, C));
      continue;
    default:
      continue;
    }
  }
  return Out;
}

static std::vector<std::string> tokenizeMjs(std::string_view Input) {
  // Maximal-munch operator table, longest first.
  static const std::string_view Operators[] = {
      ">>>=", "===", "!==", "<<=", ">>=", ">>>", "==", "!=", "<=", ">=",
      "&&",   "||",  "++",  "--",  "+=",  "-=",  "*=", "/=", "%=", "&=",
      "|=",   "^=",  "<<",  ">>",  "=>",  "(",   ")",  "{",  "}",  "[",
      "]",    ";",   ",",   ".",   "?",   ":",   "+",  "-",  "*",  "/",
      "%",    "<",   ">",   "=",   "!",   "&",   "|",  "^",  "~"};
  // Keywords and builtin names are counted as their own tokens.
  static const std::string_view Words[] = {
      "if",       "in",       "do",        "of",       "for",
      "let",      "new",      "var",       "try",      "NaN",
      "pop",      "map",      "true",      "null",     "void",
      "with",     "else",     "this",      "case",     "push",
      "JSON",     "false",    "throw",     "while",    "break",
      "catch",    "const",    "slice",     "split",    "shift",
      "return",   "delete",   "typeof",    "switch",   "Object",
      "length",   "charAt",   "default",   "finally",  "indexOf",
      "continue", "function", "debugger",  "undefined", "stringify",
      "instanceof"};
  std::vector<std::string> Out;
  Scanner S(Input);
  while (!S.atEnd()) {
    char C = S.peek();
    if (isAsciiSpace(C)) {
      S.skip();
      continue;
    }
    if (C == '/' && S.peek(1) == '/') {
      while (!S.atEnd() && S.peek() != '\n')
        S.skip();
      continue;
    }
    if (C == '/' && S.peek(1) == '*') {
      S.skip(2);
      while (!S.atEnd() && !(S.peek() == '*' && S.peek(1) == '/'))
        S.skip();
      S.skip(2);
      continue;
    }
    if (isAsciiDigit(C)) {
      S.skip();
      while (!S.atEnd() && (isAsciiDigit(S.peek()) || S.peek() == '.'))
        S.skip();
      Out.push_back("number");
      continue;
    }
    if (isIdentStart(C) || C == '$') {
      std::string Word(1, C);
      S.skip();
      while (!S.atEnd() && (isIdentBody(S.peek()) || S.peek() == '$')) {
        Word.push_back(S.peek());
        S.skip();
      }
      bool Known = false;
      for (std::string_view W : Words) {
        if (Word == W) {
          Out.push_back(Word);
          Known = true;
          break;
        }
      }
      if (!Known)
        Out.push_back("identifier");
      continue;
    }
    if (C == '"' || C == '\'') {
      char Quote = C;
      S.skip();
      while (!S.atEnd()) {
        char Q = S.get();
        if (Q == '\\' && !S.atEnd()) {
          S.skip();
          continue;
        }
        if (Q == Quote)
          break;
      }
      Out.push_back("string");
      continue;
    }
    bool Matched = false;
    for (std::string_view Op : Operators) {
      if (S.startsWith(Op)) {
        Out.push_back(std::string(Op));
        S.skip(Op.size());
        Matched = true;
        break;
      }
    }
    if (!Matched)
      S.skip();
  }
  return Out;
}

std::vector<std::string> pfuzz::extractTokens(std::string_view SubjectName,
                                              std::string_view Input) {
  if (SubjectName == "arith" || SubjectName == "ll1arith")
    return tokenizeArith(Input);
  if (SubjectName == "dyck")
    return tokenizeDyck(Input);
  if (SubjectName == "ini")
    return tokenizeIni(Input);
  if (SubjectName == "csv")
    return tokenizeCsv(Input);
  if (SubjectName == "json")
    return tokenizeJson(Input);
  if (SubjectName == "tinyc")
    return tokenizeTinyC(Input);
  if (SubjectName == "mjs" || SubjectName == "mjssem")
    return tokenizeMjs(Input);
  std::fprintf(stderr, "error: no tokenizer for subject '%.*s'\n",
               static_cast<int>(SubjectName.size()), SubjectName.data());
  std::abort();
}
