//===- tokens/TokenCoverage.cpp - Input-coverage accumulator --------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tokens/TokenCoverage.h"

#include "tokens/Tokenizers.h"

using namespace pfuzz;

TokenCoverage::TokenCoverage(std::string_view SubjectName)
    : SubjectName(SubjectName),
      Inventory(TokenInventory::forSubject(SubjectName)) {}

void TokenCoverage::addInput(std::string_view Input) {
  for (std::string &Tok : extractTokens(SubjectName, Input))
    if (Inventory.contains(Tok))
      Found.insert(std::move(Tok));
}

std::map<uint32_t, uint32_t> TokenCoverage::foundByLength() const {
  std::map<uint32_t, uint32_t> Counts;
  for (const std::string &Tok : Found)
    ++Counts[Inventory.lengthOf(Tok)];
  return Counts;
}

double TokenCoverage::shortTokenRatio() const {
  uint32_t Total = Inventory.numShort();
  if (Total == 0)
    return 0;
  uint32_t Hit = 0;
  for (const std::string &Tok : Found)
    if (Inventory.lengthOf(Tok) <= 3)
      ++Hit;
  return static_cast<double>(Hit) / Total;
}

double TokenCoverage::longTokenRatio() const {
  uint32_t Total = Inventory.numLong();
  if (Total == 0)
    return 0;
  uint32_t Hit = 0;
  for (const std::string &Tok : Found)
    if (Inventory.lengthOf(Tok) > 3)
      ++Hit;
  return static_cast<double>(Hit) / Total;
}
