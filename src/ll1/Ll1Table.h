//===- ll1/Ll1Table.h - LL(1) parse table construction -----------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LL(1) parse-table construction from a Cfg, with conflict detection.
/// The table is the "program" of a table-driven parser: Section 7.1 notes
/// that such parsers define their state "based on the table [they read]
/// rather the code [they are] currently executing", so our coverage for
/// them counts *table elements* instead of branch sites.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_LL1_LL1TABLE_H
#define PFUZZ_LL1_LL1TABLE_H

#include "ll1/Cfg.h"

#include <optional>

namespace pfuzz {

/// An LL(1) parse table: (nonterminal, lookahead byte) -> production.
class Ll1Table {
public:
  /// Builds the table; returns nullopt (and fills \p Error) when the
  /// grammar is not LL(1).
  static std::optional<Ll1Table> build(const Cfg &G, std::string *Error);

  /// Production index for (NonTerminal, Lookahead), or -1 on error
  /// entries. Lookahead '\0' is end-of-input.
  int32_t lookup(int32_t NonTerminal, char Lookahead) const {
    return Cells[cellIndex(NonTerminal, Lookahead)];
  }

  /// Dense cell id for coverage accounting (Section 7.1's "coverage of
  /// table elements").
  uint32_t cellIndex(int32_t NonTerminal, char Lookahead) const {
    return static_cast<uint32_t>(NonTerminal) * 129u +
           (Lookahead == '\0' ? 128u
                              : static_cast<unsigned char>(Lookahead) % 128u);
  }

  /// Total number of cells (the coverage denominator contribution).
  uint32_t numCells() const {
    return static_cast<uint32_t>(Cells.size());
  }

  /// The lookahead characters with non-error entries for a nonterminal —
  /// exactly what the table-driven parser compares the input against.
  const std::vector<char> &expectedFor(int32_t NonTerminal) const {
    return Expected[NonTerminal];
  }

private:
  std::vector<int32_t> Cells;          // NumNonTerminals x 129
  std::vector<std::vector<char>> Expected;
};

} // namespace pfuzz

#endif // PFUZZ_LL1_LL1TABLE_H
