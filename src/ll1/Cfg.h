//===- ll1/Cfg.h - Context-free grammars for LL(1) parsing -------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small character-level CFG representation with nullable/FIRST/FOLLOW
/// computation — the front half of the Section 7.1 future-work item
/// (table-driven parsers): "instead of code coverage, one could implement
/// coverage of table elements". Terminals are single characters; the
/// table construction lives in ll1/Ll1Table.h.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_LL1_CFG_H
#define PFUZZ_LL1_CFG_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace pfuzz {

/// A grammar symbol: a terminal character or a nonterminal id.
struct CfgSymbol {
  bool IsTerminal = true;
  char Terminal = '\0';
  int32_t NonTerminal = -1;

  static CfgSymbol terminal(char C) {
    CfgSymbol S;
    S.IsTerminal = true;
    S.Terminal = C;
    return S;
  }
  static CfgSymbol nonTerminal(int32_t Id) {
    CfgSymbol S;
    S.IsTerminal = false;
    S.NonTerminal = Id;
    return S;
  }
};

/// A character-level context-free grammar.
class Cfg {
public:
  /// Adds (or finds) a nonterminal by name; the first added nonterminal
  /// is the start symbol.
  int32_t addNonTerminal(std::string_view Name);

  /// Adds a production NonTerminal -> Symbols (empty = epsilon).
  void addProduction(int32_t NonTerminal, std::vector<CfgSymbol> Symbols);

  /// Convenience: adds a production given a compact right-hand side where
  /// lowercase/punctuation characters are terminals and <Name> references
  /// a nonterminal, e.g. "(<E>)" or "+<T><R>". An empty string is epsilon.
  void addProductionSpec(int32_t NonTerminal, std::string_view Rhs);

  size_t numNonTerminals() const { return Names.size(); }
  const std::string &nameOf(int32_t Id) const { return Names[Id]; }
  int32_t startSymbol() const { return 0; }

  struct Production {
    int32_t Lhs;
    std::vector<CfgSymbol> Rhs;
  };
  const std::vector<Production> &productions() const { return Productions; }

  /// Productions with the given left-hand side (indices into
  /// productions()).
  const std::vector<uint32_t> &productionsOf(int32_t NonTerminal) const {
    return ByLhs[NonTerminal];
  }

  //===--------------------------------------------------------------------===
  // Classic LL analyses (computed on demand, cached).
  //===--------------------------------------------------------------------===

  bool isNullable(int32_t NonTerminal) const;

  /// FIRST set of a nonterminal (terminal characters only).
  const std::set<char> &firstOf(int32_t NonTerminal) const;

  /// FOLLOW set; '\0' denotes end-of-input.
  const std::set<char> &followOf(int32_t NonTerminal) const;

  /// FIRST of a sentential form (sequence of symbols); sets \p Nullable
  /// to whether the whole sequence derives epsilon.
  std::set<char> firstOfSequence(const std::vector<CfgSymbol> &Symbols,
                                 bool &Nullable) const;

private:
  void analyze() const;

  std::vector<std::string> Names;
  std::map<std::string, int32_t, std::less<>> NameIds;
  std::vector<Production> Productions;
  std::vector<std::vector<uint32_t>> ByLhs;

  mutable bool Analyzed = false;
  mutable std::vector<bool> Nullable;
  mutable std::vector<std::set<char>> First;
  mutable std::vector<std::set<char>> Follow;
};

} // namespace pfuzz

#endif // PFUZZ_LL1_CFG_H
