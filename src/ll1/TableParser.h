//===- ll1/TableParser.h - Table-driven parser engine ------------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic table-driven LL(1) parser over the instrumented runtime —
/// the Section 7.1 future-work item. Two properties matter for fuzzing:
///
///  * Character comparisons still exist: matching a predicted terminal
///    against the input, and probing the lookahead against a
///    nonterminal's expected set, go through the tracked comparison
///    primitives ("the implicit paths and character comparisons do also
///    exist in a table driven parser").
///  * Code coverage is useless (the engine is one loop), so coverage is
///    counted over *table elements*: each (nonterminal, lookahead) cell
///    access records a pseudo branch site, as the paper proposes.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_LL1_TABLEPARSER_H
#define PFUZZ_LL1_TABLEPARSER_H

#include "ll1/Ll1Table.h"
#include "runtime/ExecutionContext.h"

namespace pfuzz {

/// Runs the table-driven parse of the input in \p Ctx against grammar
/// \p G with parse table \p Table. Returns 0 iff the whole input is a
/// sentence. Coverage sites [0, Table.numCells()) are table cells;
/// callers report numBranchSites() accordingly.
int parseWithTable(ExecutionContext &Ctx, const Cfg &G,
                   const Ll1Table &Table);

} // namespace pfuzz

#endif // PFUZZ_LL1_TABLEPARSER_H
