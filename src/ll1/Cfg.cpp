//===- ll1/Cfg.cpp - Context-free grammars for LL(1) parsing --------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ll1/Cfg.h"

#include <cassert>

using namespace pfuzz;

int32_t Cfg::addNonTerminal(std::string_view Name) {
  auto It = NameIds.find(Name);
  if (It != NameIds.end())
    return It->second;
  int32_t Id = static_cast<int32_t>(Names.size());
  Names.emplace_back(Name);
  NameIds.emplace(std::string(Name), Id);
  ByLhs.emplace_back();
  Analyzed = false;
  return Id;
}

void Cfg::addProduction(int32_t NonTerminal, std::vector<CfgSymbol> Symbols) {
  assert(NonTerminal >= 0 &&
         static_cast<size_t>(NonTerminal) < Names.size() &&
         "unknown nonterminal");
  ByLhs[NonTerminal].push_back(static_cast<uint32_t>(Productions.size()));
  Productions.push_back({NonTerminal, std::move(Symbols)});
  Analyzed = false;
}

void Cfg::addProductionSpec(int32_t NonTerminal, std::string_view Rhs) {
  std::vector<CfgSymbol> Symbols;
  size_t I = 0;
  while (I < Rhs.size()) {
    if (Rhs[I] == '<') {
      size_t Close = Rhs.find('>', I);
      assert(Close != std::string_view::npos && "unterminated <NonTerm>");
      Symbols.push_back(CfgSymbol::nonTerminal(
          addNonTerminal(Rhs.substr(I + 1, Close - I - 1))));
      I = Close + 1;
      continue;
    }
    Symbols.push_back(CfgSymbol::terminal(Rhs[I]));
    ++I;
  }
  addProduction(NonTerminal, std::move(Symbols));
}

void Cfg::analyze() const {
  if (Analyzed)
    return;
  size_t N = Names.size();
  Nullable.assign(N, false);
  First.assign(N, {});
  Follow.assign(N, {});

  // Nullable and FIRST by joint fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Production &P : Productions) {
      bool AllNullable = true;
      for (const CfgSymbol &Sym : P.Rhs) {
        if (Sym.IsTerminal) {
          if (AllNullable && First[P.Lhs].insert(Sym.Terminal).second)
            Changed = true;
          AllNullable = false;
          break;
        }
        if (AllNullable)
          for (char C : First[Sym.NonTerminal])
            if (First[P.Lhs].insert(C).second)
              Changed = true;
        if (!Nullable[Sym.NonTerminal]) {
          AllNullable = false;
          break;
        }
      }
      if (AllNullable && !Nullable[P.Lhs]) {
        Nullable[P.Lhs] = true;
        Changed = true;
      }
    }
  }

  // FOLLOW fixpoint; '\0' marks end-of-input after the start symbol.
  Follow[0].insert('\0');
  Changed = true;
  while (Changed) {
    Changed = false;
    for (const Production &P : Productions) {
      for (size_t I = 0; I != P.Rhs.size(); ++I) {
        const CfgSymbol &Sym = P.Rhs[I];
        if (Sym.IsTerminal)
          continue;
        bool TailNullable = true;
        for (size_t J = I + 1; J != P.Rhs.size(); ++J) {
          const CfgSymbol &Next = P.Rhs[J];
          if (Next.IsTerminal) {
            if (TailNullable &&
                Follow[Sym.NonTerminal].insert(Next.Terminal).second)
              Changed = true;
            TailNullable = false;
            break;
          }
          if (TailNullable)
            for (char C : First[Next.NonTerminal])
              if (Follow[Sym.NonTerminal].insert(C).second)
                Changed = true;
          if (!Nullable[Next.NonTerminal]) {
            TailNullable = false;
            break;
          }
        }
        if (TailNullable)
          for (char C : Follow[P.Lhs])
            if (Follow[Sym.NonTerminal].insert(C).second)
              Changed = true;
      }
    }
  }
  Analyzed = true;
}

bool Cfg::isNullable(int32_t NonTerminal) const {
  analyze();
  return Nullable[NonTerminal];
}

const std::set<char> &Cfg::firstOf(int32_t NonTerminal) const {
  analyze();
  return First[NonTerminal];
}

const std::set<char> &Cfg::followOf(int32_t NonTerminal) const {
  analyze();
  return Follow[NonTerminal];
}

std::set<char> Cfg::firstOfSequence(const std::vector<CfgSymbol> &Symbols,
                                    bool &SequenceNullable) const {
  analyze();
  std::set<char> Out;
  SequenceNullable = true;
  for (const CfgSymbol &Sym : Symbols) {
    if (Sym.IsTerminal) {
      Out.insert(Sym.Terminal);
      SequenceNullable = false;
      return Out;
    }
    Out.insert(First[Sym.NonTerminal].begin(), First[Sym.NonTerminal].end());
    if (!Nullable[Sym.NonTerminal]) {
      SequenceNullable = false;
      return Out;
    }
  }
  return Out;
}
