//===- ll1/Ll1Table.cpp - LL(1) parse table construction ------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ll1/Ll1Table.h"

#include <algorithm>

using namespace pfuzz;

std::optional<Ll1Table> Ll1Table::build(const Cfg &G, std::string *Error) {
  Ll1Table Table;
  size_t N = G.numNonTerminals();
  Table.Cells.assign(N * 129u, -1);
  Table.Expected.assign(N, {});

  auto Set = [&](int32_t NT, char Lookahead, uint32_t ProdIdx) -> bool {
    uint32_t Cell = Table.cellIndex(NT, Lookahead);
    if (Table.Cells[Cell] != -1 &&
        Table.Cells[Cell] != static_cast<int32_t>(ProdIdx)) {
      if (Error != nullptr)
        *Error = "LL(1) conflict at <" + G.nameOf(NT) + ", '" +
                 std::string(1, Lookahead) + "'>";
      return false;
    }
    Table.Cells[Cell] = static_cast<int32_t>(ProdIdx);
    return true;
  };

  const auto &Productions = G.productions();
  for (uint32_t P = 0; P != Productions.size(); ++P) {
    const Cfg::Production &Prod = Productions[P];
    bool RhsNullable = false;
    std::set<char> FirstSet = G.firstOfSequence(Prod.Rhs, RhsNullable);
    for (char C : FirstSet)
      if (!Set(Prod.Lhs, C, P))
        return std::nullopt;
    if (RhsNullable)
      for (char C : G.followOf(Prod.Lhs))
        if (!Set(Prod.Lhs, C, P))
          return std::nullopt;
  }

  for (size_t NT = 0; NT != N; ++NT) {
    std::set<char> Chars;
    for (unsigned C = 0; C != 129; ++C) {
      if (Table.Cells[NT * 129 + C] == -1)
        continue;
      Chars.insert(C == 128 ? '\0' : static_cast<char>(C));
    }
    Table.Expected[NT].assign(Chars.begin(), Chars.end());
  }
  return Table;
}
