//===- ll1/TableParser.cpp - Table-driven parser engine -------------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ll1/TableParser.h"

#include <string>
#include <vector>

using namespace pfuzz;

int pfuzz::parseWithTable(ExecutionContext &Ctx, const Cfg &G,
                          const Ll1Table &Table) {
  ExecutionContext::FunctionScope Scope(Ctx, "tableParse");
  std::vector<CfgSymbol> Stack;
  Stack.push_back(CfgSymbol::nonTerminal(G.startSymbol()));

  // Generous step bound: each step either consumes input or expands a
  // production; LL(1) tables cannot loop without consuming, but a buggy
  // grammar should fail closed.
  uint64_t Steps = 0;
  const uint64_t MaxSteps = 64 * (Ctx.input().size() + 4) + 1024;

  while (!Stack.empty()) {
    if (++Steps > MaxSteps)
      return 1;
    CfgSymbol Top = Stack.back();
    Stack.pop_back();
    TChar Look = Ctx.peekChar();

    if (Top.IsTerminal) {
      // Predicted terminal: one tracked comparison against the input.
      if (!Ctx.cmpEq(Look, Top.Terminal))
        return 1;
      Ctx.nextChar();
      continue;
    }

    // Nonterminal: probe the lookahead against the row's expected set.
    // A real table parser indexes the row directly (an implicit flow);
    // the probe models the comparisons the row encodes, exactly like the
    // expansion of the row into a switch. Bytes outside the table are
    // errors.
    if (!Look.isEof() && static_cast<unsigned char>(Look.ch()) >= 128)
      return 1;
    char Lookahead = Look.isEof() ? '\0' : Look.ch();
    bool Known = false;
    for (char Expected : Table.expectedFor(Top.NonTerminal)) {
      if (Expected == '\0')
        continue; // EOF column: not a character comparison
      if (Ctx.cmpEq(Look, Expected))
        Known = true;
    }
    (void)Known;
    int32_t ProdIdx = Table.lookup(Top.NonTerminal, Lookahead);
    // Coverage of table elements (Section 7.1): every consulted cell is
    // a site; its outcome bit records hit vs error entry.
    Ctx.recordBranch(Table.cellIndex(Top.NonTerminal, Lookahead),
                     ProdIdx >= 0);
    if (ProdIdx < 0)
      return 1;
    const Cfg::Production &Prod = G.productions()[ProdIdx];
    for (auto It = Prod.Rhs.rbegin(), E = Prod.Rhs.rend(); It != E; ++It)
      Stack.push_back(*It);
  }

  // The stack drained; the input must be exhausted too.
  TChar End = Ctx.peekChar();
  Ctx.recordBranch(Table.numCells(), End.isEof());
  if (!End.isEof())
    return 1;
  return 0;
}
