//===- baselines/AflFuzzer.h - AFL-style mutational fuzzer -------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A coverage-guided mutational fuzzer in the mould of AFL, the paper's
/// "lexical" baseline: a 64 KiB edge-coverage bitmap with logarithmic
/// hit-count buckets, a seed queue favouring small inputs that found new
/// coverage, and a havoc mutation stage (bit flips, interesting bytes,
/// inserts/deletes/copies, splicing). Seeded with a single space character
/// per the paper's setup (Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_BASELINES_AFLFUZZER_H
#define PFUZZ_BASELINES_AFLFUZZER_H

#include "core/Fuzzer.h"

namespace pfuzz {

/// Comparison-progress feedback mode, after the AFL-CTP / laf-intel
/// transformation the paper discusses in Section 6.2.
enum class CmpFeedback {
  /// Plain AFL: edge coverage only.
  None,
  /// AFL-CTP on code-reusing parsers: string-comparison progress is
  /// visible, but "prefixes of different keywords are indistinguishable
  /// regarding coverage" — the feature is the matched prefix length only.
  SharedSite,
  /// The paper's hypothetical: "if indeed it is possible to transform
  /// strcmp() in such a way that for different keywords AFL recognizes
  /// new coverage" — the feature keys on (keyword, prefix length).
  PerKeyword,
};

/// Options for the AFL-style baseline.
struct AflOptions {
  CmpFeedback Cmp = CmpFeedback::None;
};

/// AFL-style baseline fuzzer.
class AflFuzzer final : public Fuzzer {
public:
  explicit AflFuzzer(AflOptions Options = AflOptions());

  std::string_view name() const override { return "afl"; }

  FuzzReport run(const Subject &S, const FuzzerOptions &Opts) override;

private:
  AflOptions Options;
};

} // namespace pfuzz

#endif // PFUZZ_BASELINES_AFLFUZZER_H
