//===- baselines/RandomFuzzer.cpp - Blackbox random fuzzer ----------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/RandomFuzzer.h"

#include "support/Rng.h"

#include <algorithm>

using namespace pfuzz;

FuzzReport RandomFuzzer::run(const Subject &S, const FuzzerOptions &Opts) {
  Rng R(Opts.Seed);
  FuzzReport Report;
  uint64_t SampleEvery = std::max<uint64_t>(1, Opts.MaxExecutions / 256);
  RunResult RR; // recycled across executions
  std::vector<uint32_t> Covered;
  while (Report.Executions < Opts.MaxExecutions) {
    // Geometric-ish length distribution, mostly short inputs.
    size_t Len = R.below(8) == 0 ? R.below(64) : R.below(8);
    std::string Input;
    Input.reserve(Len);
    for (size_t I = 0; I != Len; ++I)
      Input.push_back(R.chance(1, 8) ? static_cast<char>(R.nextByte())
                                     : R.nextPrintable());
    S.execute(Input, InstrumentationMode::CoverageOnly, RR);
    ++Report.Executions;
    if (RR.ExitCode == 0) {
      if (Opts.OnValidInput)
        Opts.OnValidInput(Input);
      bool NewValid = false;
      RR.coveredBranches(Covered);
      for (uint32_t B : Covered)
        if (Report.ValidBranches.set(B))
          NewValid = true;
      if (NewValid)
        Report.ValidInputs.push_back(Input);
    }
    if (Report.Executions % SampleEvery == 0)
      Report.CoverageTimeline.emplace_back(Report.Executions,
                                           Report.ValidBranches.size());
  }
  Report.CoverageTimeline.emplace_back(Report.Executions,
                                       Report.ValidBranches.size());
  return Report;
}
