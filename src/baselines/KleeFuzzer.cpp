//===- baselines/KleeFuzzer.cpp - Constraint-based baseline ---------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/KleeFuzzer.h"

#include "support/Rng.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace pfuzz;

namespace {

/// Hard cap on pending states; beyond it new forks are dropped — the
/// moral equivalent of KLEE spending its memory/time budget on state
/// bookkeeping once paths explode.
constexpr size_t MaxStates = 1 << 19;

class KleeCampaign {
public:
  KleeCampaign(const Subject &S, const FuzzerOptions &Opts)
      : S(S), Opts(Opts), R(Opts.Seed) {}

  FuzzReport run();

private:
  void forkFrom(const std::string &Input, const RunResult &RR,
                bool Prioritise);

  /// Alternative operand values a comparison admits (the satisfying
  /// assignments a solver would produce). \p RR owns the arena the
  /// event's operand slices resolve against.
  std::vector<std::string> solutions(const RunResult &RR,
                                     const ComparisonEvent &E);

  /// \p Prioritise mirrors KLEE's coverage-optimised searcher
  /// (nurs:covnew): states forked from a run that covered new code jump
  /// the queue.
  void pushState(std::string Input, bool Prioritise) {
    if (Input.size() > Opts.MaxInputLen || States.size() >= MaxStates)
      return;
    if (!SeenInputs.insert(Input).second)
      return;
    if (Prioritise)
      States.push_front(std::move(Input));
    else
      States.push_back(std::move(Input));
  }

  const Subject &S;
  const FuzzerOptions &Opts;
  Rng R;
  std::deque<std::string> States;
  std::unordered_set<std::string> SeenInputs;
  BranchCoverageMap AllCovered; // new-code filter for emission
  FuzzReport Report;
  RunResult RR; // recycled across executions
  std::vector<uint32_t> Covered;
};

} // namespace

std::vector<std::string> KleeCampaign::solutions(const RunResult &RR,
                                                 const ComparisonEvent &E) {
  std::string_view Expected = RR.expected(E);
  std::vector<std::string> Out;
  switch (E.Kind) {
  case CompareKind::CharEq:
    Out.push_back(std::string(Expected));
    break;
  case CompareKind::CharSet:
    for (char C : Expected)
      Out.push_back(std::string(1, C));
    break;
  case CompareKind::CharRange: {
    // A range check is a single branch; a solver returns one model per
    // branch outcome, not an enumeration of the range. Three
    // representatives keep the state fan-out KLEE-like while still giving
    // downstream arithmetic (hex decoding) some value diversity.
    unsigned Lo = static_cast<unsigned char>(Expected[0]);
    unsigned Hi = static_cast<unsigned char>(Expected[1]);
    Out.push_back(std::string(1, static_cast<char>(Lo)));
    if (Hi != Lo) {
      Out.push_back(std::string(1, static_cast<char>(Hi)));
      if (Hi - Lo > 1)
        Out.push_back(std::string(1, static_cast<char>(Lo + (Hi - Lo) / 2)));
    }
    break;
  }
  case CompareKind::StrEq:
    Out.push_back(std::string(Expected));
    break;
  }
  return Out;
}

void KleeCampaign::forkFrom(const std::string &Input, const RunResult &RR,
                            bool Prioritise) {
  for (const ComparisonEvent &E : RR.Comparisons) {
    if (E.Taint.empty())
      continue;
    // Branch-negation targeting: the instrumented comparison records its
    // conditional branch right after the event; if the *flipped* outcome
    // was never covered, satisfying this comparison reaches new code and
    // the forked state jumps the queue (KLEE's covnew searcher).
    bool TargetsNewCode =
        E.TracePosition < RR.BranchTrace.size() &&
        !AllCovered.test(RR.BranchTrace[E.TracePosition] ^ 1u);
    size_t Begin = std::min<size_t>(E.Taint.minIndex(), Input.size());
    size_t End = std::min<size_t>(E.Taint.maxIndex() + 1, Input.size());
    for (std::string &Sol : solutions(RR, E)) {
      // Substitute the solved bytes, keep the unconstrained suffix.
      std::string Forked =
          Input.substr(0, Begin) + Sol + Input.substr(End);
      if (Forked != Input)
        pushState(std::move(Forked), Prioritise || TargetsNewCode);
    }
  }
  // Symbolic input length (KLEE's symbolic stdin): a state where the
  // input ends earlier, and -- when the program tried to read further --
  // one where an additional unconstrained byte exists. The filler byte's
  // value is arbitrary; the next run's comparisons constrain it.
  if (!Input.empty())
    pushState(Input.substr(0, Input.size() - 1), /*Prioritise=*/false);
  if (RR.hitEof())
    pushState(Input + 'A', Prioritise);
}

FuzzReport KleeCampaign::run() {
  pushState("", /*Prioritise=*/false);
  uint64_t SampleEvery = std::max<uint64_t>(1, Opts.MaxExecutions / 256);
  while (!States.empty() && Report.Executions < Opts.MaxExecutions) {
    std::string Input = std::move(States.front());
    States.pop_front();
    S.execute(Input, InstrumentationMode::Full, RR);
    ++Report.Executions;
    bool NewCode = false;
    RR.coveredBranches(Covered);
    for (uint32_t B : Covered)
      if (AllCovered.set(B))
        NewCode = true;
    if (RR.ExitCode == 0) {
      if (Opts.OnValidInput)
        Opts.OnValidInput(Input);
      bool NewValid = false;
      for (uint32_t B : Covered)
        if (Report.ValidBranches.set(B))
          NewValid = true;
      if (NewValid || NewCode)
        Report.ValidInputs.push_back(Input);
    }
    forkFrom(Input, RR, NewCode);
    if (Report.Executions % SampleEvery == 0)
      Report.CoverageTimeline.emplace_back(Report.Executions,
                                           Report.ValidBranches.size());
  }
  Report.CoverageTimeline.emplace_back(Report.Executions,
                                       Report.ValidBranches.size());
  return std::move(Report);
}

FuzzReport KleeFuzzer::run(const Subject &S, const FuzzerOptions &Opts) {
  return KleeCampaign(S, Opts).run();
}
