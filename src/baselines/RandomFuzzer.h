//===- baselines/RandomFuzzer.h - Blackbox random fuzzer ---------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Miller-style blackbox fuzzing (the paper's Section 6.1 starting point):
/// inputs of random length and content, no feedback at all. Included as a
/// floor for the comparisons and for the ablation benches.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_BASELINES_RANDOMFUZZER_H
#define PFUZZ_BASELINES_RANDOMFUZZER_H

#include "core/Fuzzer.h"

namespace pfuzz {

/// Feedback-free random-input baseline.
class RandomFuzzer final : public Fuzzer {
public:
  std::string_view name() const override { return "random"; }

  FuzzReport run(const Subject &S, const FuzzerOptions &Opts) override;
};

} // namespace pfuzz

#endif // PFUZZ_BASELINES_RANDOMFUZZER_H
